// Quickstart: build an SDF device, write an 8 MB block to one of its
// exposed channels, read it back in 8 KB pages, and print what the
// asymmetric interface cost in (virtual) time.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"sdf/internal/core"
	"sdf/internal/sim"
)

func main() {
	// Everything happens in virtual time on a simulation environment.
	env := sim.NewEnv()

	// A small SDF card: the production geometry is 44 channels with
	// 2 GB-scale planes; we shrink the per-plane block count so the
	// example starts instantly, keeping all timing parameters.
	cfg := core.DefaultConfig()
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.RetainData = true // store real bytes
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SDF device: %d channels, %d MiB write/erase unit, %d KiB read unit\n",
		dev.Channels(), dev.BlockSize()>>20, dev.PageSize()>>10)
	fmt.Printf("usable capacity: %.1f GiB of %.1f GiB raw (%.1f%%)\n",
		float64(dev.Capacity())/(1<<30), float64(dev.RawCapacity())/(1<<30),
		100*float64(dev.Capacity())/float64(dev.RawCapacity()))

	main := env.Go("quickstart", func(p *sim.Proc) {
		payload := make([]byte, dev.BlockSize())
		rand.New(rand.NewSource(1)).Read(payload)

		// The SDF contract: erase before write, whole blocks only.
		const channel, lbn = 7, 0
		start := env.Now()
		if err := dev.Erase(p, channel, lbn); err != nil {
			log.Fatal(err)
		}
		eraseTime := env.Now() - start

		start = env.Now()
		if err := dev.Write(p, channel, lbn, payload); err != nil {
			log.Fatal(err)
		}
		writeTime := env.Now() - start

		// Reads are page-granular and can address any part of the block.
		start = env.Now()
		page, err := dev.Read(p, channel, lbn, 3*dev.PageSize(), dev.PageSize())
		if err != nil {
			log.Fatal(err)
		}
		readTime := env.Now() - start

		if !bytes.Equal(page, payload[3*dev.PageSize():4*dev.PageSize()]) {
			log.Fatal("read-back mismatch")
		}
		fmt.Printf("erase 8 MiB block: %v\n", eraseTime)
		fmt.Printf("write 8 MiB block: %v (%.1f MB/s per channel)\n",
			writeTime, float64(dev.BlockSize())/writeTime.Seconds()/1e6)
		fmt.Printf("read one 8 KiB page: %v\n", readTime)

		// The device's parallelism lives across channels: writing the
		// same block on every channel at once takes the same time as
		// one write.
		start = env.Now()
		var workers []*sim.Proc
		for ch := 0; ch < dev.Channels(); ch++ {
			ch := ch
			w := env.Go("writer", func(wp *sim.Proc) {
				if err := dev.EraseWrite(wp, ch, 1, payload); err != nil {
					log.Fatal(err)
				}
			})
			workers = append(workers, w)
		}
		for _, w := range workers {
			p.Join(w)
		}
		elapsed := env.Now() - start
		total := dev.Channels() * dev.BlockSize()
		fmt.Printf("44 channels in parallel: %d MiB in %v (%.2f GB/s)\n",
			total>>20, elapsed.Round(1_000_000), float64(total)/elapsed.Seconds()/1e9)
	})
	env.RunUntilDone(main)
	env.Close()
}
