// Kvstore runs the paper's online serving scenario: several CCDB
// slices on one SDF-backed storage server, with batched synchronous
// KV read requests arriving over simulated 10 GbE — the setup of
// Figures 10-12. It prints how throughput responds to the two
// concurrency knobs the paper identifies: slice count and batch size.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/rpcnet"
	"sdf/internal/sim"
	"sdf/internal/workload"
)

func main() {
	const (
		valueSize = 512 << 10 // "images" size class
		nSlices   = 4
	)

	fmt.Println("slices  batch  throughput")
	for _, batch := range []int{1, 8, 44} {
		rate := run(nSlices, batch, valueSize)
		fmt.Printf("%6d  %5d  %.0f MB/s\n", nSlices, batch, rate/1e6)
	}
	fmt.Println("\nThe same device, one slice, batch 1 — the pathological case")
	fmt.Println("the paper warns about (one channel busy at a time):")
	rate := run(1, 1, valueSize)
	fmt.Printf("%6d  %5d  %.0f MB/s\n", 1, 1, rate/1e6)
}

// run builds a fresh storage node with the given slice count, loads
// it, and drives batched reads from one client per slice for a few
// simulated seconds.
func run(nSlices, batch, valueSize int) float64 {
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))

	sliceCfg := ccdb.DefaultConfig()
	sliceCfg.RunsPerTier = 64 // read-only: keep the preload settled
	var slices []*ccdb.Slice
	var keySets []*workload.Keys
	perPatch := (8 << 20) / (valueSize + 64)
	for i := 0; i < nSlices; i++ {
		slices = append(slices, ccdb.NewSlice(env, store, sliceCfg))
		keySets = append(keySets, workload.NewKeys(fmt.Sprintf("img%02d", i),
			perPatch*48/nSlices, int64(i+1)))
	}
	boot := env.Go("preload", func(p *sim.Proc) {
		if err := workload.PreloadParallel(p, env, slices, keySets, valueSize); err != nil {
			log.Fatal(err)
		}
	})
	env.RunUntilDone(boot)

	net := rpcnet.NewNetwork(env, rpcnet.DefaultConfig())
	deadline := env.Now() + 2*time.Second
	var total int64
	for i := range slices {
		slice := slices[i]
		keys := keySets[i]
		client := net.NewClient()
		env.Go("client", func(p *sim.Proc) {
			for env.Now() < deadline {
				subs := make([]rpcnet.SubRequest, batch)
				for j := range subs {
					key := keys.Pick()
					subs[j] = func(sp *sim.Proc) int {
						_, size, err := slice.Get(sp, key)
						if err != nil {
							log.Fatal(err)
						}
						return size
					}
				}
				total += int64(client.Call(p, 256, subs))
			}
		})
	}
	start := env.Now()
	env.RunUntil(deadline + 2*time.Second)
	elapsed := deadline - start
	env.Close()
	return float64(total) / elapsed.Seconds()
}
