// Wearout exercises the reliability machinery the SDF card keeps
// after dropping parity and static wear leveling (§2.2): per-chip BCH
// error correction, dynamic wear leveling, and bad-block retirement.
// It hammers one channel with erase/write cycles on flash whose bit
// error rate grows with wear, until the channel runs out of healthy
// blocks, and reports what the BCH codec absorbed along the way.
//
// Run with:
//
//	go run ./examples/wearout
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"sdf/internal/flashchan"
	"sdf/internal/sim"
)

func main() {
	env := sim.NewEnv()

	cfg := flashchan.DefaultConfig()
	cfg.Nand.BlocksPerPlane = 12
	cfg.Nand.PagesPerBlock = 8 // 64 KB erase blocks to keep the run small
	cfg.Nand.RetainData = true
	cfg.Nand.EraseLimit = 60 // short-lived flash for the demo
	cfg.Nand.BaseBER = 1e-5
	cfg.Nand.WearBER = 3e-4 // errors climb steeply as blocks age
	cfg.SparePerPlane = 3
	cfg.ECC = true
	cfg.Seed = 42

	ch, err := flashchan.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel: %d logical blocks of %d KiB, BCH t=%d per %d B sector\n",
		ch.LogicalBlocks(), ch.BlockSize()>>10, cfg.ECCT, cfg.ECCSector)

	main := env.Go("wearout", func(p *sim.Proc) {
		payload := make([]byte, ch.BlockSize())
		rand.New(rand.NewSource(7)).Read(payload)
		cycles := 0
		for {
			lbn := cycles % ch.LogicalBlocks()
			if err := ch.EraseWrite(p, lbn, payload); err != nil {
				if errors.Is(err, flashchan.ErrOutOfSpace) {
					fmt.Printf("\nchannel wore out after %d erase/write cycles\n", cycles)
					break
				}
				log.Fatal(err)
			}
			if _, err := ch.ReadAt(p, lbn, 0, ch.BlockSize()); err != nil {
				if errors.Is(err, flashchan.ErrUncorrectable) {
					// The rare event the paper reports once across
					// 2000+ cards: BCH gives up and software recovers
					// from a replica (§2.2).
					fmt.Printf("cycle %5d: UNCORRECTABLE sector — replica recovery needed\n", cycles)
				} else {
					log.Fatal(err)
				}
			}
			cycles++
			if cycles%100 == 0 {
				w := ch.Wear()
				corrected, failures := ch.ECCStats()
				fmt.Printf("cycle %5d: wear %d..%d, bad blocks %d, "+
					"BCH corrected %6d bit errors (%d uncorrectable sectors)\n",
					cycles, w.MinErase, w.MaxErase, w.BadBlocks, corrected, failures)
			}
		}
		w := ch.Wear()
		corrected, failures := ch.ECCStats()
		fmt.Printf("final: wear %d..%d across blocks (dynamic leveling kept spread tight)\n",
			w.MinErase, w.MaxErase)
		fmt.Printf("       %d bad blocks retired, %d bit errors corrected, %d uncorrectable\n",
			w.BadBlocks, corrected, failures)
	})
	env.RunUntilDone(main)
	env.Close()
}
