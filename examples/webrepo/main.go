// Webrepo reproduces the paper's central workload (Figure 9): a web
// page repository on CCDB over SDF. A crawler process streams pages
// into a Table slice while an index builder periodically scans the
// repository with six threads to construct the inverted index — the
// exact read pattern of the Figure 13 experiment.
//
// Run with:
//
//	go run ./examples/webrepo
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/sim"
)

func main() {
	env := sim.NewEnv()

	cfg := core.DefaultConfig()
	cfg.Channel.Nand.BlocksPerPlane = 32
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	layer := blocklayer.New(env, dev, blocklayer.DefaultConfig())
	store := ccdb.NewSDFStore(layer)

	// One Table slice holds the page repository; in production a
	// server hosts several and each owns a key range (§2.4).
	repo := ccdb.NewSlice(env, store, ccdb.DefaultConfig())

	const crawlSeconds = 8
	rng := rand.New(rand.NewSource(2026))

	// The crawler: continuously stores fetched pages (~32 KB each).
	crawler := env.Go("crawler", func(p *sim.Proc) {
		deadline := time.Duration(crawlSeconds) * time.Second
		n := 0
		for env.Now() < deadline {
			url := fmt.Sprintf("com.example.site%04d/page%06d", rng.Intn(1000), n)
			size := 16<<10 + rng.Intn(32<<10)
			if err := repo.Put(p, url, nil, size); err != nil {
				log.Fatal(err)
			}
			n++
			p.Wait(time.Duration(rng.Intn(2_000_000))) // crawl pacing
		}
		if err := repo.Flush(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] crawler stored %d pages\n", env.Now().Round(time.Millisecond), n)
	})

	// The index builder: every 2 simulated seconds, scan the whole
	// repository with 6 synchronous reader threads (§3.3.2).
	builder := env.Go("index-builder", func(p *sim.Proc) {
		for round := 1; round <= 4; round++ {
			p.Wait(2 * time.Second)
			start := env.Now()
			bytes, err := repo.Scan(p, 6)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := env.Now() - start
			rate := 0.0
			if elapsed > 0 {
				rate = float64(bytes) / elapsed.Seconds() / 1e6
			}
			fmt.Printf("[%8v] index build %d: scanned %d MiB in %v (%.0f MB/s)\n",
				env.Now().Round(time.Millisecond), round, bytes>>20,
				elapsed.Round(time.Millisecond), rate)
		}
	})

	waiter := env.Go("main", func(p *sim.Proc) {
		p.Join(crawler)
		p.Join(builder)
		st := repo.Stats()
		fmt.Printf("\nrepository: %d puts, %d patches flushed, %d compactions\n",
			st.Puts, st.Flushes, st.Compactions)
		r, w, e := dev.Counters()
		fmt.Printf("device:     %d MiB read, %d MiB written, %d blocks erased\n",
			r>>20, w>>20, e)
	})
	env.RunUntilDone(waiter)
	env.Close()
}
