// Replicated demonstrates why SDF could drop cross-channel parity
// (§2.2): a three-way replica group over SDF-backed CCDB nodes rides
// out flash that has worn far past its error budget. One node's NAND
// corrupts reads beyond what the BCH code can fix; the group fails
// over, repairs the bad copy, and the reliability model (§5 future
// work) puts numbers on how rare that event should be in a healthy
// fleet.
//
// Run with:
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/cluster"
	"sdf/internal/core"
	"sdf/internal/reliability"
	"sdf/internal/sim"
)

// newNode builds one storage server: an SDF device in data mode with
// BCH on, a block layer, and a CCDB slice.
func newNode(env *sim.Env, name string, ber float64) *cluster.Node {
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.Nand.BaseBER = ber
	cfg.Channel.ECC = true
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	slice := ccdb.NewSlice(env, store, ccdb.Config{
		PatchBytes:  store.BlockSize(),
		RunsPerTier: 8,
		DataMode:    true,
	})
	return cluster.NewNode(env, name, slice)
}

func main() {
	env := sim.NewEnv()

	// rack1's card has aged badly: raw BER 1e-2 is ~41 expected errors
	// per 512 B sector, far beyond the BCH t=8 budget.
	sick := newNode(env, "rack1", 1e-2)
	nodes := []*cluster.Node{sick, newNode(env, "rack2", 0), newNode(env, "rack3", 0)}
	group, err := cluster.NewGroup(env, cluster.DefaultConfig(), nodes...)
	if err != nil {
		log.Fatal(err)
	}

	main := env.Go("main", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(1))
		fmt.Println("writing 50 values to a 3-replica group (rack1's flash is corrupt)...")
		values := make(map[string][]byte)
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("obj%03d", i)
			val := make([]byte, 5000+rng.Intn(20000))
			rng.Read(val)
			if err := group.Put(p, key, val, len(val)); err != nil {
				log.Fatal(err)
			}
			values[key] = val
		}
		// Push rack1's copies to its (corrupt) flash.
		if err := sick.Slice.Flush(p); err != nil {
			log.Fatal(err)
		}

		fmt.Println("reading everything back through the group...")
		bad := 0
		for key, want := range values {
			got, _, err := group.Get(p, key)
			if err != nil {
				log.Fatalf("lost %s: %v", key, err)
			}
			if string(got) != string(want) {
				bad++
			}
		}
		p.Wait(5 * time.Second) // let async read-repairs land
		st := group.Stats()
		fmt.Printf("  puts=%d gets=%d failovers=%d repairs=%d lost=%d corrupt=%d\n",
			st.Puts, st.Gets, st.Failovers, st.Repairs, st.Lost, bad)
		if st.Lost > 0 || bad > 0 {
			log.Fatal("replication failed to mask the bad device")
		}
		fmt.Println("  every value served correctly despite rack1's dead flash")
	})
	env.RunUntilDone(main)
	env.Close()

	// What the reliability model says about how often this happens on
	// healthy hardware.
	m := reliability.SDFModel()
	fmt.Printf("\nreliability model: %s\n", m)
	for _, wear := range []int{500, 1500, 3000} {
		fmt.Printf("  wear %4d P/E: P(uncorrectable per 8 KB read) = %.2e\n",
			wear, m.DeviceUCEPerRead(wear, 8192))
	}
	fleet := m.FleetUCEs(1200, 1e12, 2000, 180)
	fmt.Printf("  2000-card fleet at wear 1200, 1 TB/day reads, 6 months: "+
		"%.2f expected uncorrectable events\n", fleet)
	fmt.Println("  (the paper observed exactly one; §2.2)")
}
