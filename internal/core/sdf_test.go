package core

import (
	"math/rand"
	"testing"
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
)

// testConfig is the full 44-channel card with a reduced block count
// per plane so construction stays cheap; timing is unchanged.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Channel.Nand.BlocksPerPlane = 32
	cfg.Channel.SparePerPlane = 2
	return cfg
}

func TestProductionGeometry(t *testing.T) {
	env := sim.NewEnv()
	d, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if d.RawCapacity() != 704<<30 {
		t.Fatalf("raw capacity = %d GiB, want 704", d.RawCapacity()>>30)
	}
	if frac := float64(d.Capacity()) / float64(d.RawCapacity()); frac < 0.99 {
		t.Fatalf("usable fraction %.3f, want >= 0.99 (paper: 99%%)", frac)
	}
	if d.BlockSize() != 8<<20 || d.PageSize() != 8<<10 {
		t.Fatalf("units = %d/%d, want 8 MiB / 8 KiB", d.BlockSize(), d.PageSize())
	}
	// Raw bandwidths from §3.2: 1.67 GB/s read, 1.01 GB/s write.
	if r := d.RawReadBandwidth() / 1e9; r < 1.6 || r < 1.55 || r > 1.75 {
		t.Fatalf("raw read bandwidth %.2f GB/s, want ~1.67", r)
	}
	if w := d.RawWriteBandwidth() / 1e9; w < 0.95 || w > 1.1 {
		t.Fatalf("raw write bandwidth %.2f GB/s, want ~1.01", w)
	}
}

// measure runs one worker per channel: setup once (writing a block so
// reads have data), then a steady-state loop of fn. Throughput counts
// only operations that started inside the window [warmup, deadline],
// eliminating ramp-up and boundary artifacts (slightly conservative:
// at most one op per channel straddles the deadline).
func measure(t *testing.T, cfg Config, warmup, deadline time.Duration, fn func(p *sim.Proc, d *Device, ch int) int) float64 {
	t.Helper()
	env := sim.NewEnv()
	d, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meter := metrics.NewMeter(warmup)
	for ch := 0; ch < d.Channels(); ch++ {
		ch := ch
		env.Go("worker", func(p *sim.Proc) {
			if err := d.EraseWrite(p, ch, 0, nil); err != nil {
				t.Error(err)
				return
			}
			for env.Now() < deadline {
				start := env.Now()
				n := fn(p, d, ch)
				if start >= warmup {
					meter.Add(int64(n))
				}
			}
		})
	}
	env.Run()
	rate := meter.Rate(deadline) / 1e9
	env.Close()
	return rate
}

func TestSequentialReadThroughputMatchesTable4(t *testing.T) {
	cfg := testConfig()
	gbps := measure(t, cfg, 500*time.Millisecond, 4*time.Second,
		func(p *sim.Proc, d *Device, ch int) int {
			if _, err := d.Read(p, ch, 0, 0, d.BlockSize()); err != nil {
				t.Error(err)
				return 0
			}
			return d.BlockSize()
		})
	// Paper Table 4: 1.59 GB/s for 8 MB reads (99% of PCIe).
	if gbps < 1.40 || gbps > 1.65 {
		t.Fatalf("8 MB read throughput %.2f GB/s, want ~1.59", gbps)
	}
}

func TestSmallReadThroughputMatchesTable4(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(11))
	pages := 8 << 20 / (8 << 10)
	gbps := measure(t, cfg, 500*time.Millisecond, 2*time.Second,
		func(p *sim.Proc, d *Device, ch int) int {
			off := rng.Intn(pages) * d.PageSize()
			if _, err := d.Read(p, ch, 0, off, d.PageSize()); err != nil {
				t.Error(err)
				return 0
			}
			return d.PageSize()
		})
	// Paper Table 4: 1.23 GB/s for 8 KB reads with 44 threads.
	if gbps < 1.10 || gbps > 1.35 {
		t.Fatalf("8 KB read throughput %.2f GB/s, want ~1.23", gbps)
	}
}

func TestWriteThroughputMatchesTable4(t *testing.T) {
	cfg := testConfig()
	next := make([]int, cfg.Channels)
	gbps := measure(t, cfg, 500*time.Millisecond, 4*time.Second,
		func(p *sim.Proc, d *Device, ch int) int {
			lbn := next[ch] % d.BlocksPerChannel()
			next[ch]++
			if err := d.EraseWrite(p, ch, lbn, nil); err != nil {
				t.Error(err)
				return 0
			}
			return d.BlockSize()
		})
	// Paper Table 4: 0.96 GB/s for 8 MB writes (94% of raw).
	if gbps < 0.88 || gbps > 1.05 {
		t.Fatalf("8 MB write throughput %.2f GB/s, want ~0.96", gbps)
	}
}

func TestChannelScalingFigure7(t *testing.T) {
	// Throughput grows nearly linearly with active channels until the
	// PCIe ceiling (reads) or flash program limit (writes).
	read := make(map[int]float64)
	for _, n := range []int{4, 22, 44} {
		cfg := testConfig()
		env := sim.NewEnv()
		d, err := New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const warmup = 500 * time.Millisecond
		deadline := 4 * time.Second
		meter := metrics.NewMeter(warmup)
		for ch := 0; ch < n; ch++ {
			ch := ch
			env.Go("worker", func(p *sim.Proc) {
				if err := d.EraseWrite(p, ch, 0, nil); err != nil {
					t.Error(err)
					return
				}
				for env.Now() < deadline {
					start := env.Now()
					if _, err := d.Read(p, ch, 0, 0, d.BlockSize()); err != nil {
						t.Error(err)
						return
					}
					if start >= warmup {
						meter.Add(int64(d.BlockSize()))
					}
				}
			})
		}
		env.Run()
		read[n] = meter.Rate(deadline) / 1e9
		env.Close()
	}
	// 4 channels: ~4 x 37 MB/s = ~0.15 GB/s; linear region.
	if read[4] < 0.10 || read[4] > 0.20 {
		t.Fatalf("4-channel read %.3f GB/s, want ~0.15", read[4])
	}
	// Half the channels roughly halves throughput (still linear).
	if ratio := read[22] / read[4]; ratio < 4.5 || ratio > 6.0 {
		t.Fatalf("22/4 channel ratio %.2f, want ~5.5 (linear scaling)", ratio)
	}
	// Full card within the PCIe ceiling.
	if read[44] < 1.3 || read[44] > 1.65 {
		t.Fatalf("44-channel read %.2f GB/s, want ~1.55", read[44])
	}
}

func TestWriteLatencyConsistencyFigure8(t *testing.T) {
	// SDF's erase+write latency is ~383 ms with little variation
	// (Figure 8, right panel): no GC, no buffer, no interference.
	cfg := testConfig()
	env := sim.NewEnv()
	d, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var series metrics.Series
	for ch := 0; ch < d.Channels(); ch++ {
		ch := ch
		env.Go("writer", func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				start := env.Now()
				if err := d.EraseWrite(p, ch, i, nil); err != nil {
					t.Error(err)
					return
				}
				series.Observe(env.Now() - start)
			}
		})
	}
	env.Run()
	env.Close()
	mean := series.Mean()
	if mean < 340*time.Millisecond || mean > 420*time.Millisecond {
		t.Fatalf("mean erase+write latency %v, want ~383 ms", mean)
	}
	if cv := series.CoeffVar(); cv > 0.05 {
		t.Fatalf("latency CV %.3f, want < 0.05 (consistent)", cv)
	}
}

func TestEraseIsFast(t *testing.T) {
	cfg := testConfig()
	env := sim.NewEnv()
	d, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	env.Go("eraser", func(p *sim.Proc) {
		start := env.Now()
		if err := d.Erase(p, 0, 0); err != nil {
			t.Error(err)
		}
		elapsed = env.Now() - start
	})
	env.Run()
	env.Close()
	// Two planes per chip in sequence: ~6 ms for 8 MB.
	if elapsed < 5*time.Millisecond || elapsed > 8*time.Millisecond {
		t.Fatalf("erase latency %v, want ~6 ms", elapsed)
	}
}

func TestInvalidChannel(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 2
	env := sim.NewEnv()
	d, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.Go("t", func(p *sim.Proc) {
		if err := d.Erase(p, 5, 0); err == nil {
			t.Error("out-of-range channel accepted")
		}
		if _, err := d.Read(p, -1, 0, 0, d.PageSize()); err == nil {
			t.Error("negative channel accepted")
		}
	})
	env.Run()
	env.Close()
}

func TestCountersAggregate(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 2
	env := sim.NewEnv()
	d, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.Go("t", func(p *sim.Proc) {
		for ch := 0; ch < 2; ch++ {
			if err := d.EraseWrite(p, ch, 0, nil); err != nil {
				t.Error(err)
			}
			if _, err := d.Read(p, ch, 0, 0, d.PageSize()); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run()
	env.Close()
	r, w, e := d.Counters()
	if r != 2*int64(d.PageSize()) || w != 2*int64(d.BlockSize()) || e != 2 {
		t.Fatalf("counters = %d/%d/%d", r, w, e)
	}
}

func TestScanFilterMovesOnlyMatchesOverPCIe(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 2
	env := sim.NewEnv()
	d, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := d.EraseWrite(p, 0, 0, nil); err != nil {
			t.Error(err)
			return
		}
		before, _ := d.PCIe().Moved()
		matched, err := d.ScanFilter(p, 0, 0, 0.25)
		if err != nil {
			t.Error(err)
			return
		}
		after, _ := d.PCIe().Moved()
		if matched != d.BlockSize()/4 {
			t.Errorf("matched = %d, want quarter block", matched)
		}
		if got := after - before; got != int64(matched) {
			t.Errorf("PCIe moved %d, want %d (matches only)", got, matched)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
