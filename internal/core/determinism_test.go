package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/sim"
	"sdf/internal/trace"
)

// TestDeterministicReplay runs an identical mixed workload twice and
// requires bit-identical results: same virtual end time, same
// counters, same per-operation trace, and — the strongest form — the
// same SHA-256 over the full kernel-level event trace. This is the
// property that makes the whole evaluation reproducible.
func TestDeterministicReplay(t *testing.T) {
	runOnce := func(channels int) (time.Duration, [3]int64, string, string) {
		env := sim.NewEnv()
		collector := trace.NewCollector()
		collector.SetLevel(trace.LevelFull)
		env.SetTracer(collector)
		cfg := testConfig()
		cfg.Channels = channels
		d, err := New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		opTrace := ""
		for ch := 0; ch < d.Channels(); ch++ {
			ch := ch
			rng := rand.New(rand.NewSource(int64(ch)))
			env.Go("worker", func(p *sim.Proc) {
				for i := 0; i < 5; i++ {
					lbn := rng.Intn(4)
					if err := d.EraseWrite(p, ch, lbn, nil); err != nil {
						t.Error(err)
						return
					}
					if _, err := d.Read(p, ch, lbn, 0, d.PageSize()*int(1+rng.Int31n(8))); err != nil {
						t.Error(err)
						return
					}
					opTrace += fmt.Sprintf("%d:%v;", ch, env.Now())
				}
			})
		}
		env.Run()
		now := env.Now()
		r, w, e := d.Counters()
		env.Close()
		if collector.Len() == 0 {
			t.Fatal("full-level collector recorded no events")
		}
		return now, [3]int64{r, w, e}, opTrace, collector.Hash()
	}
	// Replay several channel counts, not just one: each count yields a
	// different process interleaving, and under `go test -race` (the CI
	// configuration) any goroutine that escaped the scheduler's
	// one-process-at-a-time handoff — the property the rawgo lint rule
	// enforces statically — surfaces as a data race on the shared trace.
	traces := make(map[int]string)
	for _, channels := range []int{8, 5, 3} {
		t1, c1, tr1, h1 := runOnce(channels)
		t2, c2, tr2, h2 := runOnce(channels)
		if t1 != t2 {
			t.Fatalf("channels=%d: end times differ: %v vs %v", channels, t1, t2)
		}
		if c1 != c2 {
			t.Fatalf("channels=%d: counters differ: %v vs %v", channels, c1, c2)
		}
		if tr1 != tr2 {
			t.Fatalf("channels=%d: operation traces differ", channels)
		}
		if tr1 == "" {
			t.Fatalf("channels=%d: empty operation trace", channels)
		}
		if h1 != h2 {
			t.Fatalf("channels=%d: full trace hashes differ: %s vs %s", channels, h1, h2)
		}
		traces[channels] = tr1
	}
	// Different interleavings must actually be different workloads —
	// otherwise the loop above re-ran one schedule three times.
	if traces[8] == traces[5] || traces[5] == traces[3] {
		t.Fatal("distinct channel counts produced identical traces")
	}
}
