// Package core implements the SDF device — the paper's primary
// contribution: a software-defined flash card that exposes each of its
// 44 flash channels to host software as an independent device with an
// asymmetric interface (8 KB read unit, 8 MB write/erase unit, and an
// explicit erase command), no garbage collection, no DRAM write cache,
// no cross-channel parity, and no over-provisioned space (§2).
//
// The host side reaches the device over PCIe 1.1 x8 through a
// user-space IOCTL path (~3 µs per request instead of the kernel
// stack's ~12.9 µs) with completion interrupts merged across channel
// engines (§2.1, §2.4).
package core

import (
	"fmt"
	"time"

	"sdf/internal/flashchan"
	"sdf/internal/hostif"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Config assembles an SDF device.
type Config struct {
	// Channels is the number of independently exposed flash channels
	// (44 on the production card).
	Channels int
	// Channel configures each channel engine and its NAND.
	Channel flashchan.Config
	// Stack is the host software path (BypassStack for SDF).
	Stack hostif.StackParams
}

// DefaultConfig returns the production SDF card: 44 channels, 704 GB
// raw, PCIe 1.1 x8, user-space bypass stack (Table 3).
func DefaultConfig() Config {
	return Config{
		Channels: 44,
		Channel:  flashchan.DefaultConfig(),
		Stack:    hostif.BypassStack(),
	}
}

// Device is a simulated SDF card plugged into a host.
type Device struct {
	cfg      Config
	env      *sim.Env
	channels []*flashchan.Channel
	pcie     *hostif.Interface
	stack    *hostif.Stack
}

// New builds the device and its channel engines on env.
func New(env *sim.Env, cfg Config) (*Device, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("core: need at least one channel")
	}
	d := &Device{
		cfg:   cfg,
		env:   env,
		pcie:  hostif.PCIe11x8(env),
		stack: hostif.NewStack(env, cfg.Stack),
	}
	for i := 0; i < cfg.Channels; i++ {
		chCfg := cfg.Channel
		chCfg.Seed = int64(i + 1)
		ch, err := flashchan.New(env, chCfg)
		if err != nil {
			return nil, err
		}
		ch.SetLabel(fmt.Sprintf("chan%d", i))
		d.channels = append(d.channels, ch)
	}
	return d, nil
}

// DeviceState is the card state that survives a power loss: every
// channel's NAND media and spare-area metadata. Capture it with State
// after PowerLoss and hand it to Mount in a fresh environment.
type DeviceState struct {
	channels []*flashchan.Persistent
}

// PowerLoss cuts power to the whole card at the current instant:
// every channel engine goes offline and in-flight programs and erases
// tear in the media. It is a pure state flip (no parking), so fault
// handlers may call it from scheduler context. There is no power-on;
// recovery is State + Mount + Recover.
func (d *Device) PowerLoss() {
	for _, ch := range d.channels {
		ch.PowerOff()
	}
}

// State captures the device's persistent media. Call only after
// PowerLoss, when no command can mutate it.
func (d *Device) State() *DeviceState {
	st := &DeviceState{}
	for _, ch := range d.channels {
		st.channels = append(st.channels, ch.Persistent())
	}
	return st
}

// Mount rebuilds a device over surviving media in a fresh
// environment, with the same per-channel seeds and labels New would
// assign. The channels come up with empty FTL state; run Recover
// before serving I/O.
func Mount(env *sim.Env, cfg Config, state *DeviceState) (*Device, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("core: need at least one channel")
	}
	if len(state.channels) != cfg.Channels {
		return nil, fmt.Errorf("core: mount with %d channels of media, config wants %d", len(state.channels), cfg.Channels)
	}
	d := &Device{
		cfg:   cfg,
		env:   env,
		pcie:  hostif.PCIe11x8(env),
		stack: hostif.NewStack(env, cfg.Stack),
	}
	for i := 0; i < cfg.Channels; i++ {
		chCfg := cfg.Channel
		chCfg.Seed = int64(i + 1)
		ch, err := flashchan.Mount(env, chCfg, state.channels[i])
		if err != nil {
			return nil, err
		}
		ch.SetLabel(fmt.Sprintf("chan%d", i))
		d.channels = append(d.channels, ch)
	}
	return d, nil
}

// Recover runs every channel's mount-time scan in parallel — the
// card's 44 engines each rebuild their own FTL — and returns the
// per-channel reports, indexed by channel.
func (d *Device) Recover(p *sim.Proc) ([]flashchan.RecoveryReport, error) {
	end := d.beginOp(p, "sdf/recover")
	defer end()
	op := p.Span()
	reports := make([]flashchan.RecoveryReport, len(d.channels))
	errs := make([]error, len(d.channels))
	var workers []*sim.Proc
	for i := range d.channels {
		ci := i
		w := d.env.Go("sdf/recover", func(wp *sim.Proc) {
			wp.SetSpan(op)
			reports[ci], errs[ci] = d.channels[ci].Recover(wp)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: channel %d recovery: %w", i, err)
		}
	}
	return reports, nil
}

// Checkpoint persists every channel's FTL metadata to its dedicated
// checkpoint blocks, in parallel across the channel engines. Requires
// Config.Channel.CheckpointEvery > 0 (DESIGN.md §14); upper layers
// call it to bound the next remount's scan to post-checkpoint
// activity.
func (d *Device) Checkpoint(p *sim.Proc) error {
	end := d.beginOp(p, "sdf/checkpoint")
	defer end()
	op := p.Span()
	errs := make([]error, len(d.channels))
	var workers []*sim.Proc
	for i := range d.channels {
		ci := i
		w := d.env.Go("sdf/checkpoint", func(wp *sim.Proc) {
			wp.SetSpan(op)
			errs[ci] = d.channels[ci].Checkpoint(wp)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("core: channel %d checkpoint: %w", i, err)
		}
	}
	return nil
}

// CheckpointStats sums per-channel checkpoint counters: images
// written, failed attempts, and the worst-case age (write commands
// since the last successful checkpoint on any channel).
func (d *Device) CheckpointStats() (written, failures int64, maxAge int) {
	for _, ch := range d.channels {
		w, f, age := ch.CheckpointStats()
		written += w
		failures += f
		if age > maxAge {
			maxAge = age
		}
	}
	return written, failures, maxAge
}

// beginOp opens the root span of one device operation and reparents p
// under it so every instrumented layer below attributes to this I/O.
// The returned func restores p and closes the span; call it when the
// operation completes (error paths included).
func (d *Device) beginOp(p *sim.Proc, name string) func() {
	t := d.env.Tracer()
	if t == nil {
		return func() {}
	}
	prev := p.Span()
	op := t.Begin(d.env.Now(), prev, name, trace.PhaseOp)
	p.SetSpan(op)
	return func() {
		p.SetSpan(prev)
		t.End(d.env.Now(), op)
	}
}

// StartSampler schedules a periodic time-series sampler that records
// each channel's instantaneous queue depth and busy flag as counter
// events until the given virtual instant. It must be called before
// Run: sampling stops by itself, so it does not keep the event loop
// alive past `until`. No-op without a tracer.
func (d *Device) StartSampler(interval, until time.Duration) {
	t := d.env.Tracer()
	if t == nil || interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		now := d.env.Now()
		for i, ch := range d.channels {
			t.Counter(now, fmt.Sprintf("chan%d/qdepth", i), int64(ch.QueueDepth()))
			busy := int64(0)
			if !ch.Idle() {
				busy = 1
			}
			t.Counter(now, fmt.Sprintf("chan%d/busy", i), busy)
		}
		if now+interval <= until {
			d.env.Schedule(interval, tick)
		}
	}
	d.env.Schedule(0, tick)
}

// Channels returns the number of exposed channels.
func (d *Device) Channels() int { return len(d.channels) }

// Channel returns channel i's engine, by analogy with the /dev/sda0 ..
// /dev/sda43 device nodes the card exposes (§2.3, Figure 5).
func (d *Device) Channel(i int) *flashchan.Channel { return d.channels[i] }

// RegisterMetrics exports the device's observable state against r:
// the host interface and software stack, plus cross-channel
// aggregates (busy channels, total queue depth, cumulative bytes
// moved, ECC failures, dead channels). Per-channel series are left to
// flashchan.Channel.RegisterMetrics — a 44-channel card would
// otherwise flood the sampler with hundreds of mostly-idle series.
func (d *Device) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	d.pcie.RegisterMetrics(r, labels...)
	d.stack.RegisterMetrics(r, labels...)
	r.CounterFunc("device_read_bytes_total", func() int64 {
		var n int64
		for _, ch := range d.channels {
			rd, _, _ := ch.Counters()
			n += rd
		}
		return n
	}, labels...)
	r.CounterFunc("device_written_bytes_total", func() int64 {
		var n int64
		for _, ch := range d.channels {
			_, w, _ := ch.Counters()
			n += w
		}
		return n
	}, labels...)
	r.CounterFunc("device_ecc_failures_total", func() int64 {
		var n int64
		for _, ch := range d.channels {
			_, f := ch.ECCStats()
			n += f
		}
		return n
	}, labels...)
	r.GaugeFunc("device_busy_channels", func() float64 {
		var n int
		for _, ch := range d.channels {
			if !ch.Idle() {
				n++
			}
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("device_queue_depth", func() float64 {
		var n int
		for _, ch := range d.channels {
			n += ch.QueueDepth()
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("device_dead_channels", func() float64 {
		var n int
		for _, ch := range d.channels {
			if !ch.Alive() {
				n++
			}
		}
		return float64(n)
	}, labels...)
	r.CounterFunc("device_checkpoints_total", func() int64 {
		w, _, _ := d.CheckpointStats()
		return w
	}, labels...)
	r.GaugeFunc("device_checkpoint_age_writes", func() float64 {
		_, _, age := d.CheckpointStats()
		return float64(age)
	}, labels...)
	r.GaugeFunc("device_checkpoint_age_seconds", func() float64 {
		var oldest time.Duration
		for _, ch := range d.channels {
			if a := ch.CheckpointAge(); a > oldest {
				oldest = a
			}
		}
		return oldest.Seconds()
	}, labels...)
}

// PageSize returns the read unit (8 KB).
func (d *Device) PageSize() int { return d.channels[0].PageSize() }

// BlockSize returns the write/erase unit (8 MB).
func (d *Device) BlockSize() int { return d.channels[0].BlockSize() }

// BlocksPerChannel returns the logical blocks addressable per channel.
func (d *Device) BlocksPerChannel() int { return d.channels[0].LogicalBlocks() }

// Capacity returns usable capacity in bytes across all channels.
func (d *Device) Capacity() int64 {
	return int64(len(d.channels)) * d.channels[0].Capacity()
}

// RawCapacity returns raw flash capacity in bytes.
func (d *Device) RawCapacity() int64 {
	return int64(len(d.channels)) * d.channels[0].RawCapacity()
}

// RawReadBandwidth returns the aggregate channel-bus-limited read
// bandwidth in bytes/s (the paper's 1.67 GB/s raw figure).
func (d *Device) RawReadBandwidth() float64 {
	cfg := d.cfg.Channel
	page := float64(cfg.Nand.PageSize)
	perPage := cfg.BusOverhead.Seconds() + page/cfg.BusRate
	return float64(len(d.channels)) * page / perPage
}

// RawWriteBandwidth returns the aggregate program-limited write
// bandwidth in bytes/s (the paper's 1.01 GB/s raw figure).
func (d *Device) RawWriteBandwidth() float64 {
	cfg := d.cfg.Channel
	planes := float64(cfg.Chips * cfg.Nand.Planes)
	return float64(len(d.channels)) * planes * float64(cfg.Nand.PageSize) / cfg.Nand.TProg.Seconds()
}

// PCIe returns the host interface, for instrumentation.
func (d *Device) PCIe() *hostif.Interface { return d.pcie }

func (d *Device) checkChannel(ch int) error {
	if ch < 0 || ch >= len(d.channels) {
		return fmt.Errorf("core: channel %d of %d", ch, len(d.channels))
	}
	return nil
}

// Read performs a page-aligned read of size bytes at byte offset off
// within logical block lbn of channel ch. The flash read and the PCIe
// DMA to host memory are streamed concurrently.
func (d *Device) Read(p *sim.Proc, ch, lbn, off, size int) ([]byte, error) {
	if err := d.checkChannel(ch); err != nil {
		return nil, err
	}
	end := d.beginOp(p, "sdf/read")
	defer end()
	d.stack.Submit(p)
	op := p.Span()
	t := d.env.Tracer()
	var data []byte
	var chErr error
	flash := d.env.Go("sdf/read", func(wp *sim.Proc) {
		wp.SetSpan(op)
		data, chErr = d.channels[ch].ReadAt(wp, lbn, off, size)
	})
	// DMA streams pages to host memory as the channel produces them;
	// modelled as a concurrent transfer of the full payload.
	dma := t.Begin(d.env.Now(), op, "pcie/to-host", trace.PhaseBus)
	d.pcie.ToHost(p, size)
	t.End(d.env.Now(), dma)
	p.Join(flash)
	if chErr != nil {
		return nil, chErr
	}
	d.stack.Complete(p)
	return data, nil
}

// Write programs one full logical block on channel ch. The block must
// have been erased. data may be nil in timing-only mode. The write is
// synchronous: it completes only when the flash program finishes
// (SDF has no DRAM write cache; §2.2).
func (d *Device) Write(p *sim.Proc, ch, lbn int, data []byte) error {
	return d.write(p, ch, lbn, data, false, nil)
}

// EraseWrite erases and then programs a logical block as one command,
// the block layer's standard write path.
func (d *Device) EraseWrite(p *sim.Proc, ch, lbn int, data []byte) error {
	return d.write(p, ch, lbn, data, true, nil)
}

// WriteTagged is Write with a 128-bit write ID stamped into the
// out-of-band area of every page, for mount-time recovery.
func (d *Device) WriteTagged(p *sim.Proc, ch, lbn int, data []byte, id flashchan.WriteID) error {
	return d.write(p, ch, lbn, data, false, &id)
}

// EraseWriteTagged is EraseWrite with a write ID (see WriteTagged).
func (d *Device) EraseWriteTagged(p *sim.Proc, ch, lbn int, data []byte, id flashchan.WriteID) error {
	return d.write(p, ch, lbn, data, true, &id)
}

func (d *Device) write(p *sim.Proc, ch, lbn int, data []byte, erase bool, tag *flashchan.WriteID) error {
	if err := d.checkChannel(ch); err != nil {
		return err
	}
	name := "sdf/write"
	if erase {
		name = "sdf/erase-write"
	}
	end := d.beginOp(p, name)
	defer end()
	d.stack.Submit(p)
	op := p.Span()
	t := d.env.Tracer()
	var chErr error
	flash := d.env.Go("sdf/write", func(wp *sim.Proc) {
		wp.SetSpan(op)
		switch {
		case erase && tag != nil:
			chErr = d.channels[ch].EraseWriteTagged(wp, lbn, data, *tag)
		case erase:
			chErr = d.channels[ch].EraseWrite(wp, lbn, data)
		case tag != nil:
			chErr = d.channels[ch].WriteTagged(wp, lbn, data, *tag)
		default:
			chErr = d.channels[ch].Write(wp, lbn, data)
		}
	})
	dma := t.Begin(d.env.Now(), op, "pcie/to-device", trace.PhaseBus)
	d.pcie.ToDevice(p, d.BlockSize())
	t.End(d.env.Now(), dma)
	p.Join(flash)
	if chErr != nil {
		return chErr
	}
	d.stack.Complete(p)
	return nil
}

// ScanFilter performs an in-storage filtered scan of one logical
// block: the channel engine reads and filters the block, and only the
// matching bytes cross PCIe to the host ("moving compute to the
// storage", §5). It returns the matched byte count.
func (d *Device) ScanFilter(p *sim.Proc, ch, lbn int, selectivity float64) (int, error) {
	if err := d.checkChannel(ch); err != nil {
		return 0, err
	}
	end := d.beginOp(p, "sdf/scan-filter")
	defer end()
	d.stack.Submit(p)
	matched, err := d.channels[ch].ScanFilter(p, lbn, selectivity)
	if err != nil {
		return 0, err
	}
	if matched > 0 {
		t := d.env.Tracer()
		dma := t.Begin(d.env.Now(), p.Span(), "pcie/to-host", trace.PhaseBus)
		d.pcie.ToHost(p, matched)
		t.End(d.env.Now(), dma)
	}
	d.stack.Complete(p)
	return matched, nil
}

// Erase invalidates and prepares logical block lbn of channel ch; the
// software schedules these explicitly, typically during idle periods
// (§2.3).
func (d *Device) Erase(p *sim.Proc, ch, lbn int) error {
	if err := d.checkChannel(ch); err != nil {
		return err
	}
	end := d.beginOp(p, "sdf/erase")
	defer end()
	d.stack.Submit(p)
	if err := d.channels[ch].Erase(p, lbn); err != nil {
		return err
	}
	d.stack.Complete(p)
	return nil
}

// Counters sums per-channel traffic.
func (d *Device) Counters() (read, written, erased int64) {
	for _, ch := range d.channels {
		r, w, e := ch.Counters()
		read += r
		written += w
		erased += e
	}
	return read, written, erased
}
