package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/sim"
)

func TestFixedSize(t *testing.T) {
	d := Fixed(512 << 10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := d(rng); got != 512<<10 {
			t.Fatalf("Fixed = %d", got)
		}
	}
}

func TestUniformSizeBounds(t *testing.T) {
	f := func(a, b uint16) bool {
		min, max := int(a)+1, int(b)+1
		d := Uniform(min, max)
		if max < min {
			min, max = max, min
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 50; i++ {
			v := d(rng)
			if v < min || v > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperWriteMixRange(t *testing.T) {
	d := PaperWriteMix()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := d(rng)
		if v < 100<<10 || v > 1<<20 {
			t.Fatalf("size %d outside 100 KB..1 MB", v)
		}
	}
}

func TestKeysUniqueAndPickable(t *testing.T) {
	k := NewKeys("t", 500, 1)
	if k.Len() != 500 {
		t.Fatalf("Len = %d", k.Len())
	}
	seen := make(map[string]bool)
	for _, key := range k.All() {
		if seen[key] {
			t.Fatalf("duplicate key %s", key)
		}
		seen[key] = true
	}
	for i := 0; i < 100; i++ {
		if !seen[k.Pick()] {
			t.Fatal("Pick returned a key outside the population")
		}
	}
}

func TestPreloadMakesKeysReadable(t *testing.T) {
	env := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	cfgSlice := ccdb.Config{PatchBytes: store.BlockSize(), RunsPerTier: 4}
	s1 := ccdb.NewSlice(env, store, cfgSlice)
	s2 := ccdb.NewSlice(env, store, cfgSlice)
	k1 := NewKeys("a", 30, 1)
	k2 := NewKeys("b", 30, 2)
	w := env.Go("t", func(p *sim.Proc) {
		if err := PreloadParallel(p, env, []*ccdb.Slice{s1, s2}, []*Keys{k1, k2}, 10000); err != nil {
			t.Error(err)
			return
		}
		for _, pair := range []struct {
			s *ccdb.Slice
			k *Keys
		}{{s1, k1}, {s2, k2}} {
			for _, key := range pair.k.All() {
				if _, size, err := pair.s.Get(p, key); err != nil || size != 10000 {
					t.Errorf("key %s: size=%d err=%v", key, size, err)
					return
				}
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
