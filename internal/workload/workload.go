// Package workload provides the request generators used by the
// evaluation harness: key populations, value-size distributions
// matching the paper's workloads (web pages ~32 KB, thumbnails
// ~128 KB, images ~512 KB; §3.3.1, and the 100 KB-1 MB mix of
// §3.3.3), and helpers that preload CCDB slices.
package workload

import (
	"fmt"
	"math/rand"

	"sdf/internal/ccdb"
	"sdf/internal/sim"
)

// SizeDist draws value sizes.
type SizeDist func(rng *rand.Rand) int

// Fixed returns a constant-size distribution.
func Fixed(n int) SizeDist {
	return func(*rand.Rand) int { return n }
}

// Uniform returns sizes uniform in [min, max].
func Uniform(min, max int) SizeDist {
	if max < min {
		min, max = max, min
	}
	return func(rng *rand.Rand) int { return min + rng.Intn(max-min+1) }
}

// PaperWriteMix is the Figure 14 workload: "write requests whose sizes
// are primarily in the range between 100 KB and 1 MB".
func PaperWriteMix() SizeDist { return Uniform(100<<10, 1<<20) }

// Keys is a fixed key population with uniform random picks.
type Keys struct {
	keys []string
	rng  *rand.Rand
}

// NewKeys generates n keys with the given prefix.
func NewKeys(prefix string, n int, seed int64) *Keys {
	k := &Keys{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < n; i++ {
		k.keys = append(k.keys, fmt.Sprintf("%s-%08d", prefix, i))
	}
	return k
}

// All returns the population in generation order.
func (k *Keys) All() []string { return k.keys }

// Len returns the population size.
func (k *Keys) Len() int { return len(k.keys) }

// Pick returns a uniformly random key.
func (k *Keys) Pick() string { return k.keys[k.rng.Intn(len(k.keys))] }

// Preload writes every key of the population into the slice with
// values of the given size and flushes, so subsequent reads hit
// storage. Patches land round-robin across the device's channels.
func Preload(p *sim.Proc, s *ccdb.Slice, keys *Keys, valueSize int) error {
	for _, key := range keys.All() {
		if err := s.Put(p, key, nil, valueSize); err != nil {
			return err
		}
	}
	return s.Flush(p)
}

// PreloadParallel preloads several slices concurrently, one loader
// process per slice, and waits for all of them.
func PreloadParallel(p *sim.Proc, env *sim.Env, slices []*ccdb.Slice, keySets []*Keys, valueSize int) error {
	var workers []*sim.Proc
	errs := make([]error, len(slices))
	for i := range slices {
		i := i
		w := env.Go(fmt.Sprintf("workload/preload.%d", i), func(wp *sim.Proc) {
			errs[i] = Preload(wp, slices[i], keySets[i], valueSize)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
