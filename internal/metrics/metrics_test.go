package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(rng.Intn(1000)+1) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// Uniform [1µs,1000µs]: true median ~500µs; log buckets give ~9% error.
	if p50 < 400*time.Microsecond || p50 > 600*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	if h.Quantile(0) < h.Min() {
		t.Fatalf("q0 < min")
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("q1 > max")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v%1e9) + 1)
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(383 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 383*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want 383ms", q, got)
		}
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(0)
	m.Add(100 << 20) // 100 MB
	if got := m.MBps(time.Second); got != 100 {
		t.Fatalf("MBps = %v, want 100", got)
	}
	if got := m.Rate(0); got != 0 {
		t.Fatalf("Rate over zero window = %v, want 0", got)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(0)
	m.Add(1 << 20)
	m.Reset(time.Second)
	m.Add(2 << 20)
	if got := m.MBps(2 * time.Second); got != 2 {
		t.Fatalf("MBps after reset = %v, want 2", got)
	}
}

func TestMeterWindowStart(t *testing.T) {
	m := NewMeter(5 * time.Second)
	m.Add(10 << 20)
	if got := m.MBps(6 * time.Second); got != 10 {
		t.Fatalf("MBps = %v, want 10", got)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []time.Duration{10, 20, 30, 40, 50} {
		s.Observe(v * time.Millisecond)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v, want 30ms", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 50*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 30*time.Millisecond {
		t.Fatalf("p50 = %v, want 30ms", got)
	}
}

func TestSeriesStdDevConstant(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Observe(time.Second)
	}
	if s.StdDev() != 0 {
		t.Fatalf("StdDev of constant series = %v, want 0", s.StdDev())
	}
	if s.CoeffVar() != 0 {
		t.Fatalf("CoeffVar of constant series = %v, want 0", s.CoeffVar())
	}
}

func TestSeriesCoeffVarSpread(t *testing.T) {
	var tight, wide Series
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		tight.Observe(time.Duration(380+rng.Intn(7)) * time.Millisecond)
		wide.Observe(time.Duration(7+rng.Intn(643)) * time.Millisecond)
	}
	if tight.CoeffVar() >= wide.CoeffVar() {
		t.Fatalf("tight CV %.3f should be < wide CV %.3f", tight.CoeffVar(), wide.CoeffVar())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series should report zeros")
	}
}
