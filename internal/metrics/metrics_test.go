package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(rng.Intn(1000)+1) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// Uniform [1µs,1000µs]: true median ~500µs; log buckets give ~9% error.
	if p50 < 400*time.Microsecond || p50 > 600*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	if h.Quantile(0) < h.Min() {
		t.Fatalf("q0 < min")
	}
	if h.Quantile(1) > h.Max() {
		t.Fatalf("q1 > max")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(time.Duration(v%1e9) + 1)
		}
		prev := time.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Observe(383 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 383*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want 383ms", q, got)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 1000 identical observations plus one straggler: interpolated
	// quantiles must track the dense mass, and q=0/q=1 must pin to the
	// exact extremes (the clamp, not the bucket boundary).
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	if got := h.Quantile(0); got != 100*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want exact min 100µs", got)
	}
	if got := h.Quantile(1); got != 10*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want exact max 10ms", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 95*time.Microsecond || p50 > 110*time.Microsecond {
		t.Fatalf("p50 = %v, want ~100µs (within one log bucket)", p50)
	}
	// Interpolation must move within one bucket: a rank early in the
	// bucket's mass must not exceed a rank late in it.
	if h.Quantile(0.1) > h.Quantile(0.9) {
		t.Fatalf("within-bucket interpolation not monotone: q10=%v q90=%v",
			h.Quantile(0.1), h.Quantile(0.9))
	}
}

func TestHistogramSubNanosecond(t *testing.T) {
	// Durations below 1 ns (including 0 and negative artifacts) land in
	// bucket 0 and must not panic or break min/max accounting.
	h := NewHistogram()
	h.Observe(0)
	h.Observe(1) // 1 ns
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1 {
		t.Fatalf("Min/Max = %v/%v, want 0/1ns", h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got < 0 || got > 1 {
			t.Fatalf("Quantile(%v) = %v, want within [0,1ns]", q, got)
		}
	}
	if b := bucketOf(-time.Nanosecond); b != 0 {
		t.Fatalf("bucketOf(-1ns) = %d, want 0", b)
	}
	if b := bucketOf(0); b != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", b)
	}
}

func TestHistogramQuantileOutOfRangeQ(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if got := h.Quantile(-0.5); got != h.Quantile(0) {
		t.Fatalf("Quantile(-0.5) = %v, want clamped to q0 %v", got, h.Quantile(0))
	}
	if got := h.Quantile(1.5); got != h.Quantile(1) {
		t.Fatalf("Quantile(1.5) = %v, want clamped to q1 %v", got, h.Quantile(1))
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter(0)
	m.Add(100 << 20) // 100 MB
	if got := m.MBps(time.Second); got != 100 {
		t.Fatalf("MBps = %v, want 100", got)
	}
	if got := m.Rate(0); got != 0 {
		t.Fatalf("Rate over zero window = %v, want 0", got)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(0)
	m.Add(1 << 20)
	m.Reset(time.Second)
	m.Add(2 << 20)
	if got := m.MBps(2 * time.Second); got != 2 {
		t.Fatalf("MBps after reset = %v, want 2", got)
	}
}

func TestMeterWindowStart(t *testing.T) {
	m := NewMeter(5 * time.Second)
	m.Add(10 << 20)
	if got := m.MBps(6 * time.Second); got != 10 {
		t.Fatalf("MBps = %v, want 10", got)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	for _, v := range []time.Duration{10, 20, 30, 40, 50} {
		s.Observe(v * time.Millisecond)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v, want 30ms", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 50*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 30*time.Millisecond {
		t.Fatalf("p50 = %v, want 30ms", got)
	}
}

func TestSeriesStdDevConstant(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Observe(time.Second)
	}
	if s.StdDev() != 0 {
		t.Fatalf("StdDev of constant series = %v, want 0", s.StdDev())
	}
	if s.CoeffVar() != 0 {
		t.Fatalf("CoeffVar of constant series = %v, want 0", s.CoeffVar())
	}
}

func TestSeriesCoeffVarSpread(t *testing.T) {
	var tight, wide Series
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		tight.Observe(time.Duration(380+rng.Intn(7)) * time.Millisecond)
		wide.Observe(time.Duration(7+rng.Intn(643)) * time.Millisecond)
	}
	if tight.CoeffVar() >= wide.CoeffVar() {
		t.Fatalf("tight CV %.3f should be < wide CV %.3f", tight.CoeffVar(), wide.CoeffVar())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series should report zeros")
	}
}

func TestMeterRateAtWindowStart(t *testing.T) {
	// now == start (and now < start) must not divide by zero.
	m := NewMeter(3 * time.Second)
	m.Add(1 << 30)
	if got := m.Rate(3 * time.Second); got != 0 {
		t.Fatalf("Rate at window start = %v, want 0", got)
	}
	if got := m.MBps(3 * time.Second); got != 0 {
		t.Fatalf("MBps at window start = %v, want 0", got)
	}
	if got := m.Rate(2 * time.Second); got != 0 {
		t.Fatalf("Rate before window start = %v, want 0", got)
	}
}

func TestSeriesPercentileBounds(t *testing.T) {
	var s Series
	for _, v := range []time.Duration{10, 20, 30} {
		s.Observe(v * time.Millisecond)
	}
	if got := s.Percentile(0); got != 10*time.Millisecond {
		t.Fatalf("p0 = %v, want 10ms", got)
	}
	if got := s.Percentile(100); got != 30*time.Millisecond {
		t.Fatalf("p100 = %v, want 30ms", got)
	}
	// Out-of-range percentiles clamp to the extremes instead of
	// indexing out of bounds.
	if got := s.Percentile(-10); got != 10*time.Millisecond {
		t.Fatalf("p-10 = %v, want 10ms", got)
	}
	if got := s.Percentile(250); got != 30*time.Millisecond {
		t.Fatalf("p250 = %v, want 30ms", got)
	}
}

func TestSeriesSingleSample(t *testing.T) {
	var s Series
	s.Observe(383 * time.Millisecond)
	if s.Mean() != 383*time.Millisecond || s.Min() != 383*time.Millisecond || s.Max() != 383*time.Millisecond {
		t.Fatal("single-sample series stats should all equal the sample")
	}
	if s.StdDev() != 0 {
		t.Fatalf("StdDev = %v, want 0", s.StdDev())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 383*time.Millisecond {
			t.Fatalf("Percentile(%v) = %v, want 383ms", p, got)
		}
	}
}
