package metrics

import (
	"testing"
	"time"

	"sdf/internal/sim"
	"sdf/internal/trace"
)

// sloHarness runs a workload against one latency objective and
// returns the engine after the horizon.
func sloHarness(t *testing.T, budget float64, load func(h *Histogram, p *sim.Proc)) *SLO {
	t.Helper()
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	h := r.Histogram("read_latency")
	s := NewSLO(env, r, 100*time.Millisecond, Objective{
		Name: "read_p99", Kind: QuantileBelow, Metric: "read_latency",
		Q: 0.99, Threshold: 0.001, Budget: budget,
	})
	env.Go("load", func(p *sim.Proc) { load(h, p) })
	env.RunUntil(1100 * time.Millisecond)
	return s
}

func TestSLOQuantileMet(t *testing.T) {
	s := sloHarness(t, 0.1, func(h *Histogram, p *sim.Proc) {
		for i := 0; i < 100; i++ {
			h.Observe(500 * time.Microsecond) // well under the 1ms objective
			p.Wait(10 * time.Millisecond)
		}
	})
	rep := s.Report()
	if len(rep) != 1 || !rep[0].Met || rep[0].Violations != 0 {
		t.Fatalf("healthy run missed the SLO: %+v", rep)
	}
	if rep[0].Windows != 10 {
		t.Fatalf("evaluated %d windows, want 10", rep[0].Windows)
	}
}

func TestSLOQuantileBudgetBurn(t *testing.T) {
	// One bad window out of ten fits a 10% budget exactly (burn 100%);
	// the same run misses a zero-budget objective.
	bad := func(h *Histogram, p *sim.Proc) {
		for i := 0; i < 100; i++ {
			d := 500 * time.Microsecond
			if i < 10 { // first window only
				d = 5 * time.Millisecond
			}
			h.Observe(d)
			p.Wait(10 * time.Millisecond)
		}
	}
	s := sloHarness(t, 0.1, bad)
	rep := s.Report()
	if !rep[0].Met || rep[0].Violations != 1 {
		t.Fatalf("one bad window in ten should fit a 10%% budget: %+v", rep[0])
	}
	if rep[0].Burn < 0.99 || rep[0].Burn > 1.01 {
		t.Fatalf("burn %v, want ~1.0", rep[0].Burn)
	}
	s = sloHarness(t, 0, bad)
	if rep = s.Report(); rep[0].Met {
		t.Fatalf("zero-budget objective absorbed a violation: %+v", rep[0])
	}
}

func TestSLOEmptyWindowsSkipped(t *testing.T) {
	s := sloHarness(t, 0, func(h *Histogram, p *sim.Proc) {
		h.Observe(100 * time.Microsecond) // one observation, then silence
	})
	rep := s.Report()
	if rep[0].Windows != 1 {
		t.Fatalf("idle windows were evaluated: %+v", rep[0])
	}
	if !rep[0].Met {
		t.Fatalf("quiet run missed the SLO: %+v", rep[0])
	}
}

func TestSLOAlwaysZeroAndRate(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	lost := r.Counter("lost")
	served := r.Counter("served")
	s := NewSLO(env, r, 100*time.Millisecond,
		Objective{Name: "no_lost_reads", Kind: AlwaysZero, Metric: "lost"},
		Objective{Name: "availability", Kind: RateAbove, Metric: "served", Threshold: 50, Budget: 0.5},
	)
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			served.Inc() // 100/s, above the 50/s floor
			if i == 90 {
				lost.Inc()
			}
			p.Wait(10 * time.Millisecond)
		}
	})
	env.RunUntil(1050 * time.Millisecond)
	rep := s.Report()
	if rep[0].Name != "no_lost_reads" || rep[0].Met {
		t.Fatalf("lost read did not trip the zero objective: %+v", rep[0])
	}
	// The loss lands in the tenth window; every window from there on
	// (10 of 10 evaluated... only the tail) counts it.
	if rep[0].Violations == 0 {
		t.Fatalf("no violations recorded for the loss: %+v", rep[0])
	}
	if !rep[1].Met {
		t.Fatalf("steady service rate missed availability: %+v", rep[1])
	}
}

func TestSLOAlertsAreTraced(t *testing.T) {
	env := sim.NewEnv()
	tr := trace.NewCollector()
	env.SetTracer(tr)
	defer env.Close()
	r := NewRegistry()
	h := r.Histogram("lat")
	s := NewSLO(env, r, 100*time.Millisecond, Objective{
		Name: "p99", Kind: QuantileBelow, Metric: "lat", Q: 0.99, Threshold: 0.001,
	})
	env.Go("load", func(p *sim.Proc) {
		h.Observe(50 * time.Millisecond)
	})
	env.RunUntil(250 * time.Millisecond)
	alerts := s.Alerts()
	if len(alerts) != 1 || alerts[0].Objective != "p99" || alerts[0].At != 100*time.Millisecond {
		t.Fatalf("alerts = %+v, want one p99 alert at 100ms", alerts)
	}
	found := false
	for _, ev := range tr.Events() {
		if ev.Name == "slo/alert:p99" && ev.Phase == trace.PhaseFault {
			found = true
		}
	}
	if !found {
		t.Fatal("violation did not emit a fault-phase trace span")
	}
}
