package metrics

import (
	"sort"
	"time"

	"sdf/internal/sim"
)

// Point is one time-series sample: a virtual-time instant and the
// instrument's value at that instant.
type Point struct {
	T time.Duration
	V float64
}

// Sampler scrapes a registry on a fixed virtual period into a
// windowed per-series store. It runs as an ordinary simulation
// process, so its samples land at deterministic virtual instants and
// two seeded runs produce byte-identical series.
//
// Every registered instrument is reduced to one scalar per scrape
// (counters and meters: running total; gauges: current value,
// invoking GaugeFunc callbacks; histograms: observation count).
// Series whose samples are all zero are suppressed at export time,
// not at scrape time, so a series that becomes non-zero mid-run keeps
// its full history.
type Sampler struct {
	env    *sim.Env
	reg    *Registry
	period time.Duration
	keep   int

	series  map[string][]Point
	scrapes int
}

// NewSampler starts a sampler scraping reg every period of virtual
// time. keep bounds the window: each series retains at most keep most
// recent points (0 keeps everything). A nil registry yields a sampler
// that never records anything.
func NewSampler(env *sim.Env, reg *Registry, period time.Duration, keep int) *Sampler {
	if period <= 0 {
		period = 10 * time.Millisecond
	}
	s := &Sampler{env: env, reg: reg, period: period, keep: keep, series: make(map[string][]Point)}
	env.Go("metrics/sampler", s.loop)
	return s
}

// loop is the scrape process: it samples forever on the fixed period
// and dies with the simulation.
func (s *Sampler) loop(p *sim.Proc) {
	for {
		p.Wait(s.period)
		s.Scrape()
	}
}

// Scrape records one sample of every registered instrument at the
// current virtual instant. The sampler's own process calls this on
// the period; tests and snapshot points may call it directly.
func (s *Sampler) Scrape() {
	now := s.env.Now()
	s.scrapes++
	s.reg.Each(func(in *Instrument) {
		id := in.ID()
		pts := append(s.series[id], Point{T: now, V: in.value()})
		if s.keep > 0 && len(pts) > s.keep {
			pts = pts[len(pts)-s.keep:]
		}
		s.series[id] = pts
	})
}

// Period returns the scrape period.
func (s *Sampler) Period() time.Duration { return s.period }

// Scrapes returns how many scrape rounds have run.
func (s *Sampler) Scrapes() int { return s.scrapes }

// Series returns the recorded points for a series ID (nil if the
// series was never scraped).
func (s *Sampler) Series(id string) []Point { return s.series[id] }

// eachSeries visits the recorded series in sorted-ID order.
func (s *Sampler) eachSeries(fn func(id string, pts []Point)) {
	ids := make([]string, 0, len(s.series))
	for id := range s.series {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fn(id, s.series[id])
	}
}
