package metrics

import (
	"fmt"
	"time"

	"sdf/internal/sim"
	"sdf/internal/trace"
)

// ObjectiveKind selects how an Objective is evaluated each window.
type ObjectiveKind string

const (
	// QuantileBelow evaluates the Q-quantile of the window's new
	// histogram observations (delta between window snapshots) and
	// violates when it exceeds Threshold seconds. Windows with no
	// observations are not evaluated — no traffic is not a violation.
	QuantileBelow ObjectiveKind = "quantile_below"
	// AlwaysZero violates in any window where the counter's running
	// total is non-zero ("zero lost reads": one loss taints every
	// window from then on, matching how a lost read is permanent).
	AlwaysZero ObjectiveKind = "always_zero"
	// RateAbove evaluates the counter/meter delta per window as a
	// units-per-second rate and violates when it falls below
	// Threshold ("availability": the group kept serving").
	RateAbove ObjectiveKind = "rate_above"
)

// Objective is one declarative service-level objective against a
// registered series.
type Objective struct {
	// Name identifies the objective in reports and alert events.
	Name string
	// Kind selects the evaluation rule.
	Kind ObjectiveKind
	// Metric is the canonical series ID in the registry (Instrument.ID).
	Metric string
	// Q is the quantile for QuantileBelow (e.g. 0.99).
	Q float64
	// Threshold is seconds for QuantileBelow, units/second for
	// RateAbove, unused for AlwaysZero.
	Threshold float64
	// Budget is the allowed fraction of evaluated windows that may
	// violate before the objective is missed (the error budget). 0
	// means any violation misses the objective.
	Budget float64
}

// Alert is one deterministic violation event.
type Alert struct {
	At        time.Duration // virtual instant of the window's end
	Objective string
	Value     float64 // measured value that violated
}

// ObjectiveResult is one objective's outcome over the run.
type ObjectiveResult struct {
	Name       string  `json:"name"`
	Metric     string  `json:"metric"`
	Windows    int     `json:"windows"`    // windows evaluated
	Violations int     `json:"violations"` // windows violated
	Budget     float64 `json:"budget"`     // allowed violation fraction
	Burn       float64 `json:"burn"`       // budget consumed: (violations/windows)/budget; >1 is missed
	Met        bool    `json:"met"`
}

// String renders one line of an SLO report.
func (r ObjectiveResult) String() string {
	verdict := "met"
	if !r.Met {
		verdict = "VIOLATED"
	}
	return fmt.Sprintf("%-28s %-8s %3d/%3d windows violated, budget %.0f%%, burn %.0f%%",
		r.Name, verdict, r.Violations, r.Windows, r.Budget*100, r.Burn*100)
}

// objState is one objective's rolling evaluation state.
type objState struct {
	obj        Objective
	prevHist   HistogramState
	prevScalar float64
	windows    int
	violations int
}

// SLO evaluates declarative objectives over rolling virtual-time
// windows. It runs as a simulation process that wakes at every window
// boundary, evaluates each objective against the registry, burns
// error budget on violations, and emits a deterministic fault-phase
// alert span into the trace for each violated window.
type SLO struct {
	env      *sim.Env
	reg      *Registry
	window   time.Duration
	deadline time.Duration
	states   []*objState
	alerts   []Alert
}

// NewSLO starts an engine evaluating objs every window of virtual
// time against reg. Objectives referencing series that are never
// registered evaluate as empty (QuantileBelow skips, AlwaysZero and
// RateAbove read zero).
func NewSLO(env *sim.Env, reg *Registry, window time.Duration, objs ...Objective) *SLO {
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	s := &SLO{env: env, reg: reg, window: window}
	for _, o := range objs {
		s.states = append(s.states, &objState{obj: o})
	}
	env.Go("metrics/slo", s.loop)
	return s
}

// SetDeadline stops evaluation after the given virtual instant (the
// window ending exactly at the deadline is still judged). Experiments
// use it to exclude the post-horizon drain: with the load stopped, a
// RateAbove objective would otherwise violate every idle window.
func (s *SLO) SetDeadline(at time.Duration) { s.deadline = at }

func (s *SLO) loop(p *sim.Proc) {
	for {
		p.Wait(s.window)
		if s.deadline > 0 && s.env.Now() > s.deadline {
			return
		}
		s.evaluate()
	}
}

// evaluate closes one window: each objective is measured over the
// window and checked against its threshold.
func (s *SLO) evaluate() {
	now := s.env.Now()
	for _, st := range s.states {
		in := s.reg.Get(st.obj.Metric)
		switch st.obj.Kind {
		case QuantileBelow:
			var cur HistogramState
			if in != nil && in.Histogram != nil {
				cur = in.Histogram.State()
			}
			delta := cur.Delta(st.prevHist)
			st.prevHist = cur
			if delta.Count() == 0 {
				continue // no observations: nothing to judge
			}
			st.windows++
			if v := delta.Quantile(st.obj.Q).Seconds(); v > st.obj.Threshold {
				s.violate(st, now, v)
			}
		case AlwaysZero:
			st.windows++
			var v float64
			if in != nil {
				v = in.value()
			}
			if v != 0 {
				s.violate(st, now, v)
			}
		case RateAbove:
			var v float64
			if in != nil {
				v = in.value()
			}
			delta := v - st.prevScalar
			st.prevScalar = v
			st.windows++
			if rate := delta / s.window.Seconds(); rate < st.obj.Threshold {
				s.violate(st, now, rate)
			}
		}
	}
}

// violate burns budget for one window and emits the alert.
func (s *SLO) violate(st *objState, now time.Duration, v float64) {
	st.violations++
	s.alerts = append(s.alerts, Alert{At: now, Objective: st.obj.Name, Value: v})
	t := s.env.Tracer()
	span := t.Begin(now, 0, "slo/alert:"+st.obj.Name, trace.PhaseFault)
	t.End(now, span)
}

// Alerts returns every violation event in emission order.
func (s *SLO) Alerts() []Alert { return s.alerts }

// Burn returns the named objective's error-budget burn so far:
// (violations/windows)/budget, the same number Report computes at the
// end of the run, read incrementally. Feedback loops (write admission
// control) poll it to convert SLO pressure into backpressure. Unknown
// or not-yet-evaluated objectives read 0. Park-free.
func (s *SLO) Burn(name string) float64 {
	for _, st := range s.states {
		if st.obj.Name != name {
			continue
		}
		if st.windows == 0 || st.violations == 0 {
			return 0
		}
		frac := float64(st.violations) / float64(st.windows)
		if st.obj.Budget > 0 {
			return frac / st.obj.Budget
		}
		return frac
	}
	return 0
}

// Report returns each objective's outcome in declaration order. An
// objective with no evaluated windows is trivially met (burn 0).
func (s *SLO) Report() []ObjectiveResult {
	var out []ObjectiveResult
	for _, st := range s.states {
		r := ObjectiveResult{
			Name:       st.obj.Name,
			Metric:     st.obj.Metric,
			Windows:    st.windows,
			Violations: st.violations,
			Budget:     st.obj.Budget,
		}
		if st.windows > 0 && st.violations > 0 {
			frac := float64(st.violations) / float64(st.windows)
			if st.obj.Budget > 0 {
				r.Burn = frac / st.obj.Budget
			} else {
				// No budget to burn against: report the raw violation
				// fraction; any violation at all misses the objective.
				r.Burn = frac
			}
		}
		r.Met = st.violations == 0 || (st.obj.Budget > 0 && r.Burn <= 1)
		out = append(out, r)
	}
	return out
}
