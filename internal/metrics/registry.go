package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Label is one name dimension of an instrument. Instruments with the
// same name but different label sets are distinct series, exactly as
// in Prometheus.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count: either incremented
// directly or backed by a callback (see Registry.CounterFunc). The
// zero value is ready to use, and all methods are nil-safe so callers
// can hold a counter that may or may not exist (nil-registry fast
// path).
type Counter struct {
	v  int64
	fn func() int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates n. No-op on callback-backed counters.
func (c *Counter) Add(n int64) {
	if c != nil && c.fn == nil {
		c.v += n
	}
}

// Value returns the current count, invoking the callback if one is
// installed.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.v
}

// Gauge is an instantaneous value: either set explicitly or backed by
// a callback (see Registry.GaugeFunc). All methods are nil-safe.
type Gauge struct {
	v  float64
	fn func() float64
}

// Set replaces the value. Setting a callback-backed gauge is a no-op.
func (g *Gauge) Set(v float64) {
	if g != nil && g.fn == nil {
		g.v = v
	}
}

// Add shifts the value by d. No-op on callback-backed gauges.
func (g *Gauge) Add(d float64) {
	if g != nil && g.fn == nil {
		g.v += d
	}
}

// Value returns the current value, invoking the callback if one is
// installed.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

// Kind tags what an instrument measures.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindMeter
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter, KindMeter:
		// A meter is a cumulative byte/op count with rate helpers; its
		// exported value is the running total, which is a counter.
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Instrument is one registered series: a name, its sorted labels, and
// exactly one of the four instrument types.
type Instrument struct {
	Name   string
	Labels []Label
	Kind   Kind

	Counter   *Counter
	Gauge     *Gauge
	Histogram *Histogram
	Meter     *Meter
}

// ID returns the canonical series identity: name{k1="v1",k2="v2"}
// with labels sorted by key. Two instruments are the same series iff
// their IDs are equal.
func (in *Instrument) ID() string { return seriesID(in.Name, in.Labels) }

func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a labeled instrument namespace with deterministic
// iteration order. A nil *Registry is fully usable: every lookup
// returns a nil instrument whose methods are no-ops, so instrumented
// code pays one nil check when metrics are off.
//
// Registration is create-or-get: asking twice for the same name and
// labels returns the same instrument. Asking for an existing series
// with a different kind panics — that is a naming bug, and silently
// returning a fresh instrument would fork the series.
type Registry struct {
	byID map[string]*Instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byID: make(map[string]*Instrument)} }

// lookup finds or creates the series, panicking on kind collisions.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *Instrument {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	id := seriesID(name, ls)
	if in, ok := r.byID[id]; ok {
		if in.Kind != kind {
			panic(fmt.Sprintf("metrics: series %s registered as %v and requested as %v", id, in.Kind, kind))
		}
		return in
	}
	in := &Instrument{Name: name, Labels: ls, Kind: kind}
	r.byID[id] = in
	return in
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	in := r.lookup(name, KindCounter, labels)
	if in.Counter == nil {
		in.Counter = &Counter{}
	}
	return in.Counter
}

// RegisterCounter adopts an existing counter as the named series, so
// a component's internal stats field and the exported metric are the
// same storage and cannot drift. Adopting over an existing distinct
// counter panics.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	if r == nil || c == nil {
		return
	}
	in := r.lookup(name, KindCounter, labels)
	if in.Counter != nil && in.Counter != c {
		panic(fmt.Sprintf("metrics: series %s already has a different counter", in.ID()))
	}
	in.Counter = c
}

// CounterFunc installs a callback-backed counter, for components that
// already keep a cumulative count and only need to export it. fn must
// be monotone non-decreasing and, like every registry callback, runs
// inline at scrape time: it must compute from in-memory state and
// never park a process (sdflint's inlinepark/parkpath enforce this).
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	in := r.lookup(name, KindCounter, labels)
	if in.Counter != nil && in.Counter.fn == nil {
		panic(fmt.Sprintf("metrics: series %s already registered as a direct counter", in.ID()))
	}
	in.Counter = &Counter{fn: fn}
}

// Gauge returns the named set-style gauge, creating it if needed.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	in := r.lookup(name, KindGauge, labels)
	if in.Gauge == nil {
		in.Gauge = &Gauge{}
	}
	return in.Gauge
}

// GaugeFunc installs a callback-backed gauge: fn is invoked at every
// scrape and snapshot. fn runs inline on whatever goroutine samples
// the registry — like a (*sim.Env).Schedule callback it must compute
// from in-memory state and return; it must never park a process or
// call any blocking simulation API (sdflint's inlinepark/parkpath
// enforce this).
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	in := r.lookup(name, KindGauge, labels)
	if in.Gauge != nil && in.Gauge.fn == nil {
		panic(fmt.Sprintf("metrics: series %s already registered as a set-style gauge", in.ID()))
	}
	in.Gauge = &Gauge{fn: fn}
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	in := r.lookup(name, KindHistogram, labels)
	if in.Histogram == nil {
		in.Histogram = NewHistogram()
	}
	return in.Histogram
}

// RegisterHistogram adopts an existing histogram as the named series.
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	in := r.lookup(name, KindHistogram, labels)
	if in.Histogram != nil && in.Histogram != h {
		panic(fmt.Sprintf("metrics: series %s already has a different histogram", in.ID()))
	}
	in.Histogram = h
}

// Meter returns the named meter, creating it with the given window
// start if needed.
func (r *Registry) Meter(name string, start time.Duration, labels ...Label) *Meter {
	if r == nil {
		return nil
	}
	in := r.lookup(name, KindMeter, labels)
	if in.Meter == nil {
		in.Meter = NewMeter(start)
	}
	return in.Meter
}

// Each visits every instrument in canonical (sorted-ID) order — the
// deterministic iteration the exporters and sampler depend on.
func (r *Registry) Each(fn func(*Instrument)) {
	if r == nil {
		return
	}
	ids := make([]string, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fn(r.byID[id])
	}
}

// Get returns the instrument with the given canonical ID, or nil.
func (r *Registry) Get(id string) *Instrument {
	if r == nil {
		return nil
	}
	return r.byID[id]
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.byID)
}

// value reduces an instrument to the scalar the sampler records:
// counters and meters report their running total, gauges their
// current value, histograms their observation count (the distribution
// itself is exported via the snapshot and the SLO engine's windows).
func (in *Instrument) value() float64 {
	switch in.Kind {
	case KindCounter:
		return float64(in.Counter.Value())
	case KindGauge:
		return in.Gauge.Value()
	case KindHistogram:
		return float64(in.Histogram.Count())
	case KindMeter:
		return float64(in.Meter.Total())
	}
	return 0
}
