package metrics

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// The exporters are determinism gates, like the trace writers: every
// byte they emit is a function of simulation state and virtual time
// only, instruments are visited in canonical sorted-ID order, and
// floats are rendered with strconv's shortest round-trip form — so
// two seeded runs of the same binary produce byte-identical output
// and SnapshotHash/SeriesHash fingerprint a run the way trace.Hash
// does.

// fmtFloat renders a float64 deterministically.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a sorted label set in Prometheus text form.
func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// labelsWith returns labels plus one extra pair, keeping sorted order
// (used for histogram le buckets, which Prometheus sorts last anyway;
// we simply append).
func labelsWith(labels []Label, key, value string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	fmt.Fprintf(&b, "%s=%q", key, value)
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes a text-format snapshot of the registries in
// canonical order: instruments sorted by series ID within each
// registry, registries in argument order (callers pass them in a
// fixed order, e.g. one per simulated device). Histograms export
// cumulative le buckets (upper bounds in seconds) for their non-empty
// buckets plus +Inf, _sum in seconds, and _count. Durations are
// seconds, per Prometheus convention.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	typed := make(map[string]bool)
	for _, reg := range regs {
		var err error
		reg.Each(func(in *Instrument) {
			if err != nil {
				return
			}
			err = writeInstrument(w, in, typed)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func writeInstrument(w io.Writer, in *Instrument, typed map[string]bool) error {
	if !typed[in.Name] {
		typed[in.Name] = true
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.Name, in.Kind); err != nil {
			return err
		}
	}
	ls := promLabels(in.Labels)
	switch in.Kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", in.Name, ls, in.Counter.Value())
		return err
	case KindMeter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", in.Name, ls, in.Meter.Total())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", in.Name, ls, fmtFloat(in.Gauge.Value()))
		return err
	case KindHistogram:
		return writeHistogram(w, in)
	}
	return nil
}

func writeHistogram(w io.Writer, in *Instrument) error {
	h := in.Histogram
	var cum uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		le := math.Pow(bucketBase, float64(b)+1) / float64(time.Second)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			in.Name, labelsWith(in.Labels, "le", fmtFloat(le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		in.Name, labelsWith(in.Labels, "le", "+Inf"), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		in.Name, promLabels(in.Labels), fmtFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", in.Name, promLabels(in.Labels), h.Count())
	return err
}

// Snapshot renders the registries to the Prometheus text snapshot.
func Snapshot(regs ...*Registry) []byte {
	var b strings.Builder
	//sdflint:allow errdrop strings.Builder writes never fail
	_ = WritePrometheus(&b, regs...)
	return []byte(b.String())
}

// WriteSeriesJSONL writes the samplers' time series as one JSON line
// per series: {"series":"<id>","points":[[t_ns,v],...]}. Series are
// sorted by ID within each sampler; samplers appear in argument
// order. Series whose every sample is zero are suppressed — an idle
// instrument scraped 200 times is noise, and dropping it here keeps
// the export (and its hash) focused on series that moved. Timestamps
// are integer virtual nanoseconds, so no float formatting touches the
// time axis.
func WriteSeriesJSONL(w io.Writer, samplers ...*Sampler) error {
	var err error
	for _, s := range samplers {
		if s == nil {
			continue
		}
		s.eachSeries(func(id string, pts []Point) {
			if err != nil || allZero(pts) {
				return
			}
			var b strings.Builder
			fmt.Fprintf(&b, `{"series":%q,"points":[`, id)
			for i, pt := range pts {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "[%d,%s]", int64(pt.T), fmtFloat(pt.V))
			}
			b.WriteString("]}\n")
			_, err = io.WriteString(w, b.String())
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func allZero(pts []Point) bool {
	for _, pt := range pts {
		if pt.V != 0 {
			return false
		}
	}
	return true
}

// SeriesJSONL renders the samplers' series to bytes.
func SeriesJSONL(samplers ...*Sampler) []byte {
	var b strings.Builder
	//sdflint:allow errdrop strings.Builder writes never fail
	_ = WriteSeriesJSONL(&b, samplers...)
	return []byte(b.String())
}

// HashBytes fingerprints an export (snapshot or series stream) the
// way trace.Hash fingerprints an event stream.
func HashBytes(buf []byte) string {
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
