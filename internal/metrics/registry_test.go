package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"sdf/internal/sim"
)

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Microsecond)
	// A single observation must answer every quantile with itself.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 500*time.Microsecond {
			t.Fatalf("single-observation Quantile(%v) = %v, want 500µs", q, got)
		}
	}
	h.Observe(1 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if got := h.Quantile(0); got != 500*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want min", got)
	}
	if got := h.Quantile(1); got != 2*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want max", got)
	}
	// Out-of-range q clamps instead of extrapolating.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Fatal("out-of-range q did not clamp to [0,1]")
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}
}

func TestNilInstrumentFastPaths(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	m := r.Meter("w", 0)
	m.Add(10)
	if m.Total() != 0 || m.Rate(time.Second) != 0 {
		t.Fatal("nil meter accumulated")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	r.RegisterCounter("x", &Counter{})
	r.Each(func(*Instrument) { t.Fatal("nil registry has instruments") })
	if r.Len() != 0 || r.Get("x") != nil {
		t.Fatal("nil registry not empty")
	}
}

func TestRegistryCreateOrGet(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reads", L("dev", "sdf"))
	b := r.Counter("reads", L("dev", "sdf"))
	if a != b {
		t.Fatal("same series returned distinct counters")
	}
	other := r.Counter("reads", L("dev", "gen3"))
	if a == other {
		t.Fatal("distinct label sets shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision did not panic")
		}
	}()
	r.Gauge("reads", L("dev", "sdf"))
}

func TestRegistryAdoptedCounterCannotDrift(t *testing.T) {
	// The consolidation contract: a component's own stats field and
	// the exported series are the same storage.
	r := NewRegistry()
	var internal Counter
	r.RegisterCounter("cluster_failovers", &internal)
	internal.Add(7)
	if got := r.Get("cluster_failovers").Counter.Value(); got != 7 {
		t.Fatalf("registry sees %d, internal counter has 7", got)
	}
	r.Counter("cluster_failovers").Inc()
	if internal.Value() != 8 {
		t.Fatalf("internal counter %d after registry increment, want 8", internal.Value())
	}
}

func TestEachDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta")
	r.Gauge("alpha", L("dev", "b"))
	r.Gauge("alpha", L("dev", "a"))
	r.Histogram("mid")
	var ids []string
	r.Each(func(in *Instrument) { ids = append(ids, in.ID()) })
	want := []string{`alpha{dev="a"}`, `alpha{dev="b"}`, "mid", "zeta"}
	if len(ids) != len(want) {
		t.Fatalf("got %d instruments, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestHistogramDeltaQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	prev := h.State()
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	delta := h.State().Delta(prev)
	if delta.Count() != 100 {
		t.Fatalf("delta count %d, want 100", delta.Count())
	}
	// The delta must see only the slow window, not the fast history.
	if p50 := delta.Quantile(0.5); p50 < 9*time.Millisecond || p50 > 11*time.Millisecond {
		t.Fatalf("delta p50 %v, want ~10ms", p50)
	}
	if empty := h.State().Delta(h.State()); empty.Count() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatal("identical states produced a non-empty delta")
	}
}

func TestSamplerScrapesOnVirtualPeriod(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	c := r.Counter("ops")
	depth := 0
	r.GaugeFunc("queue_depth", func() float64 { return float64(depth) })
	s := NewSampler(env, r, 10*time.Millisecond, 0)
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			c.Inc()
			depth = i
			p.Wait(10 * time.Millisecond)
		}
	})
	env.RunUntil(105 * time.Millisecond)
	pts := s.Series("ops")
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	if pts[0].T != 10*time.Millisecond || pts[9].T != 100*time.Millisecond {
		t.Fatalf("sample instants %v..%v, want 10ms..100ms", pts[0].T, pts[9].T)
	}
	if pts[0].V != 1 || pts[9].V != 10 {
		t.Fatalf("counter samples %v..%v, want 1..10", pts[0].V, pts[9].V)
	}
	gq := s.Series("queue_depth")
	if gq[4].V != 4 {
		t.Fatalf("gauge func sample %v, want 4", gq[4].V)
	}
}

func TestSamplerWindowKeep(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	c := r.Counter("n")
	s := NewSampler(env, r, time.Millisecond, 5)
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			c.Inc()
			p.Wait(time.Millisecond)
		}
	})
	env.RunUntil(25 * time.Millisecond)
	pts := s.Series("n")
	if len(pts) != 5 {
		t.Fatalf("windowed store kept %d points, want 5", len(pts))
	}
	if pts[0].T < 20*time.Millisecond {
		t.Fatalf("oldest kept point at %v; the window should hold only the most recent samples", pts[0].T)
	}
}

func TestPrometheusSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("reads", L("dev", "sdf")).Add(3)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	out := string(Snapshot(r))
	for _, want := range []string{
		"# TYPE depth gauge\n",
		"depth 2.5\n",
		"# TYPE lat histogram\n",
		`lat_bucket{le="+Inf"} 2`,
		"lat_count 2\n",
		"# TYPE reads counter\n",
		`reads{dev="sdf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesJSONLSuppressesZeroSeries(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	r := NewRegistry()
	r.Counter("idle")
	busy := r.Counter("busy")
	s := NewSampler(env, r, time.Millisecond, 0)
	env.Go("load", func(p *sim.Proc) {
		busy.Inc()
		p.Wait(5 * time.Millisecond)
	})
	env.RunUntil(4 * time.Millisecond)
	out := string(SeriesJSONL(s))
	if strings.Contains(out, `"idle"`) {
		t.Fatalf("all-zero series exported:\n%s", out)
	}
	if !strings.Contains(out, `{"series":"busy","points":[[1000000,1],`) {
		t.Fatalf("busy series missing or misencoded:\n%s", out)
	}
}
