// Package metrics provides measurement instruments for simulations:
// latency histograms with logarithmic buckets, throughput meters keyed
// to virtual time, and raw sample recorders for latency traces.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations in logarithmic buckets (multiplicative
// width bucketBase per step) and tracks exact count, sum, min, and max.
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts []uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketBase is the multiplicative bucket width: each bucket covers a
// ~9% range, giving ~2.5% worst-case quantile error.
const bucketBase = 1.09

// numBuckets covers 1 ns to >1 hour at bucketBase growth.
const numBuckets = 340

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, numBuckets), min: math.MaxInt64}
}

func bucketOf(d time.Duration) int {
	if d < 1 {
		return 0
	}
	b := int(math.Log(float64(d)) / math.Log(bucketBase))
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Observe records one duration. A nil histogram drops the sample, so
// callers can observe into an instrument that only exists when a
// metrics registry is attached.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketOf(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1),
// interpolating linearly within the containing log bucket by the
// rank's position among that bucket's observations. Compared to the
// bucket's geometric midpoint this keeps dense quantiles (p50 of a
// tight distribution) from all collapsing onto one midpoint value.
// The result is clamped to [Min, Max], which also keeps it monotone
// in q at the edges.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return 0 // NaN has no rank; 0 beats poisoning the caller's math
	}
	if q <= 0 {
		return h.Min() // exact: the 0-quantile is the smallest observation
	}
	if q >= 1 {
		return h.Max() // exact: the 1-quantile is the largest observation
	}
	rank := uint64(q * float64(h.count-1))
	var seen uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo := math.Pow(bucketBase, float64(b))
			hi := math.Pow(bucketBase, float64(b)+1)
			// Position of the rank within this bucket's c observations,
			// offset half a sample so a lone observation lands mid-bucket.
			frac := (float64(rank-(seen-c)) + 0.5) / float64(c)
			d := time.Duration(lo + frac*(hi-lo))
			if d < h.min {
				d = h.min
			}
			if d > h.max {
				d = h.max
			}
			return d
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Min(), h.Max())
}

// HistogramState is a point-in-time copy of a histogram's cumulative
// buckets, taken with State. Two states bracket a window; Delta
// recovers the distribution of just that window's observations, which
// is what rolling-window quantile evaluation (the SLO engine) needs
// from a cumulative instrument.
type HistogramState struct {
	counts []uint64
	count  uint64
	sum    time.Duration
}

// State snapshots the histogram's buckets. A nil histogram snapshots
// as empty.
func (h *Histogram) State() HistogramState {
	if h == nil {
		return HistogramState{}
	}
	return HistogramState{
		counts: append([]uint64(nil), h.counts...),
		count:  h.count,
		sum:    h.sum,
	}
}

// Count returns the observation count at snapshot time.
func (s HistogramState) Count() uint64 { return s.count }

// Delta returns a histogram holding the observations recorded after
// prev and up to s (both snapshots of the same instrument). Exact
// min/max are not recoverable from cumulative buckets, so the delta's
// extremes are the bucket bounds of its lowest and highest non-empty
// buckets — Quantile's clamping then stays within the window.
func (s HistogramState) Delta(prev HistogramState) *Histogram {
	h := NewHistogram()
	if s.count <= prev.count {
		return h
	}
	h.count = s.count - prev.count
	h.sum = s.sum - prev.sum
	for b := range h.counts {
		var p uint64
		if b < len(prev.counts) {
			p = prev.counts[b]
		}
		if b < len(s.counts) && s.counts[b] > p {
			h.counts[b] = s.counts[b] - p
			hi := time.Duration(math.Pow(bucketBase, float64(b)+1))
			if h.min == math.MaxInt64 {
				h.min = time.Duration(math.Pow(bucketBase, float64(b)))
			}
			if hi > h.max {
				h.max = hi
			}
		}
	}
	return h
}

// Meter accumulates a byte (or operation) count over virtual time and
// reports rates.
type Meter struct {
	total int64
	start time.Duration
}

// NewMeter returns a meter whose window starts at the given virtual time.
func NewMeter(start time.Duration) *Meter { return &Meter{start: start} }

// Add accumulates n units (bytes, ops). Nil-safe, like the registry
// instruments.
func (m *Meter) Add(n int64) {
	if m != nil {
		m.total += n
	}
}

// Total returns the accumulated count.
func (m *Meter) Total() int64 {
	if m == nil {
		return 0
	}
	return m.total
}

// Reset zeroes the count and restarts the window at the given time.
func (m *Meter) Reset(now time.Duration) {
	if m == nil {
		return
	}
	m.total = 0
	m.start = now
}

// Rate returns units per second over [start, now].
func (m *Meter) Rate(now time.Duration) float64 {
	if m == nil {
		return 0
	}
	elapsed := (now - m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.total) / elapsed
}

// MBps returns the rate in binary megabytes per second, the unit used
// throughout the SDF paper's evaluation.
func (m *Meter) MBps(now time.Duration) float64 {
	return m.Rate(now) / (1 << 20)
}

// Series records raw samples (for latency traces like the paper's
// Figure 8, where the individual per-request values matter).
type Series struct {
	samples []time.Duration
}

// Observe appends one sample.
func (s *Series) Observe(d time.Duration) { s.samples = append(s.samples, d) }

// Samples returns the recorded values in observation order.
func (s *Series) Samples() []time.Duration { return s.samples }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Mean returns the average sample, or 0 if empty.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.samples {
		sum += v
	}
	return sum / time.Duration(len(s.samples))
}

// Min returns the smallest sample, or 0 if empty.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	min := s.samples[0]
	for _, v := range s.samples[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest sample, or 0 if empty.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	max := s.samples[0]
	for _, v := range s.samples[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// StdDev returns the population standard deviation of the samples.
func (s *Series) StdDev() time.Duration {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, v := range s.samples {
		d := float64(v) - mean
		acc += d * d
	}
	return time.Duration(math.Sqrt(acc / float64(n)))
}

// CoeffVar returns the coefficient of variation (stddev/mean), a
// dimensionless measure of latency predictability.
func (s *Series) CoeffVar() float64 {
	mean := s.Mean()
	if mean == 0 {
		return 0
	}
	return float64(s.StdDev()) / float64(mean)
}

// Percentile returns the exact p-th percentile (0-100) by sorting a
// copy of the samples.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.samples))
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
