package lint

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	known := analyzerNames()
	cases := []struct {
		name      string
		comment   string
		directive bool // recognized as an sdflint:allow directive at all
		valid     bool // parsed into a usable suppression
		analyzer  string
		reason    string
	}{
		{"canonical", "//sdflint:allow nowallclock host-side timeout", true, true, "nowallclock", "host-side timeout"},
		{"spaced", "// sdflint:allow rawgo bridging to host thread", true, true, "rawgo", "bridging to host thread"},
		{"block", "/*sdflint:allow maporder output sorted by caller*/", true, true, "maporder", "output sorted by caller"},
		{"multiword reason", "//sdflint:allow seededrand jitter is host-side, not replayed", true, true, "seededrand", "jitter is host-side, not replayed"},
		{"tab separated", "//sdflint:allow\tseededrand\thost only", true, true, "seededrand", "host only"},
		{"missing reason", "//sdflint:allow nowallclock", true, false, "", ""},
		{"missing everything", "//sdflint:allow", true, false, "", ""},
		{"unknown analyzer", "//sdflint:allow nosuchthing some reason", true, false, "", ""},
		{"reason but no analyzer", "//sdflint:allow this is not an analyzer", true, false, "", ""},
		{"different directive", "//go:generate stringer", false, false, "", ""},
		{"prose mentioning it", "// use sdflint:allow to waive findings", false, false, "", ""},
		{"prefix collision", "//sdflint:allowance nowallclock x", false, false, "", ""},
		{"plain comment", "// nothing to see", false, false, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, isDirective := parseAllow(tc.comment, known)
			if isDirective != tc.directive {
				t.Fatalf("directive = %v, want %v", isDirective, tc.directive)
			}
			if (d != nil) != tc.valid {
				t.Fatalf("valid = %v, want %v", d != nil, tc.valid)
			}
			if d != nil {
				if d.Analyzer != tc.analyzer {
					t.Errorf("analyzer = %q, want %q", d.Analyzer, tc.analyzer)
				}
				if d.Reason != tc.reason {
					t.Errorf("reason = %q, want %q", d.Reason, tc.reason)
				}
			}
		})
	}
}

// parseTestFile builds a one-file fixture File from source, without a
// surrounding module on disk.
func parseTestFile(t *testing.T, src string) *File {
	t.Helper()
	m := &Module{Fset: token.NewFileSet()}
	astFile, err := parser.ParseFile(m.Fset, "internal/x/x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: "internal/x", Name: astFile.Name.Name}
	f := &File{Module: m, Pkg: pkg, AST: astFile, Path: "internal/x/x.go"}
	pkg.Files = []*File{f}
	return f
}

// TestSuppressionCoverage pins which lines a directive waives: its own
// line and the next, nothing else.
func TestSuppressionCoverage(t *testing.T) {
	f := parseTestFile(t, `package x

//sdflint:allow rawgo reason one
var a = 1

var b = 2
`)
	set, bad := fileSuppressions(f)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed findings: %v", bad)
	}
	if !set.allows("rawgo", 3) || !set.allows("rawgo", 4) {
		t.Error("directive must cover its own line and the next")
	}
	if set.allows("rawgo", 5) || set.allows("rawgo", 6) {
		t.Error("directive must not cover later lines")
	}
	if set.allows("nowallclock", 4) {
		t.Error("directive must only waive the named analyzer")
	}
}

// TestMalformedSuppressionFindings checks that bad directives surface
// as sdflint findings and suppress nothing.
func TestMalformedSuppressionFindings(t *testing.T) {
	f := parseTestFile(t, `package x

//sdflint:allow rawgo
var a = 1

//sdflint:allow unknownthing with a reason
var b = 2
`)
	set, bad := fileSuppressions(f)
	if len(bad) != 2 {
		t.Fatalf("malformed findings = %d, want 2: %v", len(bad), bad)
	}
	for _, fd := range bad {
		if fd.Analyzer != "sdflint" {
			t.Errorf("malformed finding analyzer = %q, want sdflint", fd.Analyzer)
		}
	}
	if bad[0].Line != 3 || bad[1].Line != 6 {
		t.Errorf("malformed finding lines = %d,%d want 3,6", bad[0].Line, bad[1].Line)
	}
	if set.allows("rawgo", 4) {
		t.Error("reasonless directive must not suppress")
	}
}
