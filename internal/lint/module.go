package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Module is one parsed Go module: every buildable package under the
// root, excluding vendor/, testdata/ and hidden directories.
type Module struct {
	Root string // absolute filesystem path of the module root
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by directory
	// Info aggregates type information for all non-test files of all
	// packages that type-checked. Lookups into it degrade to nil for
	// files the checker could not resolve.
	Info *types.Info
	// LoadErrors holds per-file parse failures as findings under the
	// pseudo-analyzer "sdflint": a broken file degrades the suite on
	// that file instead of aborting the whole run.
	LoadErrors []Finding

	cg *callGraph // memoized whole-program call graph
}

// Package is the set of files in one directory. External test packages
// (package foo_test) live in the same Package as foo: analyzers scope
// by file, not by package name.
type Package struct {
	Dir        string // slash-separated, relative to module root ("" = root)
	Name       string // package name of the non-test files
	ImportPath string
	Files      []*File // sorted by path; includes _test.go files
	Types      *types.Package
	localDeps  []string // module-local import paths of non-test files
}

// File is one parsed source file plus its position in the module.
type File struct {
	Module *Module
	Pkg    *Package
	AST    *ast.File
	Path   string // slash-separated, relative to module root

	directives *[]*directive // memoized sdflint:allow comments
}

// IsTest reports whether the file is a _test.go file.
func (f *File) IsTest() bool { return strings.HasSuffix(f.Path, "_test.go") }

// In reports whether the file lives under the given module-root-relative
// directory (e.g. "internal" or "cmd").
func (f *File) In(dir string) bool {
	return f.Path == dir || strings.HasPrefix(f.Path, dir+"/")
}

// Pos converts a token position into a Finding-style location with a
// module-relative path.
func (f *File) Pos(p token.Pos) (file string, line, col int) {
	pos := f.Module.Fset.Position(p)
	return f.Path, pos.Line, pos.Column
}

// finding builds a Finding for the named analyzer at position p.
func (f *File) finding(analyzer string, p token.Pos, format string, args ...any) Finding {
	file, line, col := f.Pos(p)
	return Finding{File: file, Line: line, Col: col, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}

// importAliases returns the identifiers under which pkgPath is imported
// in this file ("rand" for `import "math/rand"`, plus any aliases).
func (f *File) importAliases(pkgPath string) map[string]bool {
	aliases := make(map[string]bool)
	for _, imp := range f.AST.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != pkgPath {
			continue
		}
		switch {
		case imp.Name == nil:
			aliases[path.Base(p)] = true
		case imp.Name.Name == "_" || imp.Name.Name == ".":
			// blank imports bind nothing; dot imports are rejected by
			// the style of this repo and not tracked.
		default:
			aliases[imp.Name.Name] = true
		}
	}
	return aliases
}

// eachPkgRef calls fn for every qualified reference pkg.Sel where pkg
// is bound to pkgPath in this file. With type information available the
// receiver is verified to be the package (not a shadowing variable);
// without it the match is purely syntactic.
func (f *File) eachPkgRef(pkgPath string, fn func(sel *ast.SelectorExpr)) {
	aliases := f.importAliases(pkgPath)
	if len(aliases) == 0 {
		return
	}
	info := f.Module.Info
	ast.Inspect(f.AST, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !aliases[id.Name] {
			return true
		}
		if info != nil {
			if obj, known := info.Uses[id]; known {
				pn, isPkg := obj.(*types.PkgName)
				if !isPkg || pn.Imported().Path() != pkgPath {
					return true
				}
			}
		}
		fn(sel)
		return true
	})
}

// LoadModule parses and type-checks every package under root (which
// must contain go.mod). Parse errors abort the load; type-check errors
// do not — analyzers that need type information degrade gracefully on
// packages that fail to resolve.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root: root,
		Path: modPath,
		Fset: token.NewFileSet(),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}

	dirs, err := goSourceDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Dir < m.Pkgs[j].Dir })
	m.typecheck()
	return m, nil
}

// goSourceDirs returns every directory under root that may hold Go
// source, relative to root, skipping testdata, vendor and hidden trees.
func goSourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	return dirs, err
}

// parseDir parses the .go files of one directory into a Package, or
// returns nil if the directory holds no Go source.
func (m *Module) parseDir(dir string) (*Package, error) {
	abs := filepath.Join(m.Root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if dir != "." {
		importPath = m.Path + "/" + dir
	}
	pkg := &Package{Dir: dir, ImportPath: importPath}
	if dir == "." {
		pkg.Dir = ""
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		full := filepath.Join(abs, name)
		rel := name
		if dir != "." {
			rel = dir + "/" + name
		}
		astFile, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments)
		if err != nil {
			// Graceful degradation on broken trees: the failure becomes
			// a finding, and the partial AST (when the parser salvaged
			// one) still feeds the per-file analyzers.
			m.LoadErrors = append(m.LoadErrors, parseErrorFinding(m, rel, err))
			if astFile == nil {
				continue
			}
		}
		f := &File{Module: m, Pkg: pkg, AST: astFile, Path: rel}
		pkg.Files = append(pkg.Files, f)
		if !f.IsTest() {
			if pkg.Name == "" {
				pkg.Name = astFile.Name.Name
			}
			for _, imp := range astFile.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
						pkg.localDeps = append(pkg.localDeps, p)
					}
				}
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Path < pkg.Files[j].Path })
	return pkg, nil
}

// parseErrorFinding converts a parse failure into a Finding at the
// error's position (line 1 when the error carries none).
func parseErrorFinding(m *Module, rel string, err error) Finding {
	line, col := 1, 1
	msg := err.Error()
	if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
		line, col = list[0].Pos.Line, list[0].Pos.Column
		msg = list[0].Msg
	}
	return Finding{
		File: rel, Line: line, Col: col, Analyzer: "sdflint",
		Message: fmt.Sprintf("parse error: %s (type-aware analyzers degraded for this file)", msg),
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module path", gomod)
}
