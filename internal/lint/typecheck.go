package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
)

// typecheck resolves types for the non-test files of every package, in
// dependency order. Errors are tolerated: a package that fails to check
// simply contributes no entries to m.Info, and type-driven analyzers
// (maporder) skip constructs they cannot resolve. Test files are not
// checked — every analyzer that needs type information excludes them
// by scope anyway.
func (m *Module) typecheck() {
	byPath := make(map[string]*Package, len(m.Pkgs))
	for _, pkg := range m.Pkgs {
		byPath[pkg.ImportPath] = pkg
	}
	imp := &moduleImporter{
		module: byPath,
		std:    importer.Default(),
		srcFor: func() types.Importer { return importer.ForCompiler(m.Fset, "source", nil) },
	}
	cfg := &types.Config{
		Importer:         imp,
		FakeImportC:      true,
		Error:            func(error) {}, // collect what resolves, ignore the rest
		IgnoreFuncBodies: false,
	}
	checked := make(map[*Package]bool)
	var check func(pkg *Package)
	check = func(pkg *Package) {
		if checked[pkg] {
			return
		}
		checked[pkg] = true // pre-mark: tolerate import cycles
		for _, dep := range pkg.localDeps {
			if d := byPath[dep]; d != nil {
				check(d)
			}
		}
		var files []*ast.File
		for _, f := range pkg.Files {
			if !f.IsTest() {
				files = append(files, f.AST)
			}
		}
		if len(files) == 0 {
			return
		}
		// Check never returns a nil package; errors still leave partial
		// type information in m.Info, which is all the analyzers need.
		pkg.Types, _ = cfg.Check(pkg.ImportPath, m.Fset, files, m.Info)
	}
	for _, pkg := range m.Pkgs {
		check(pkg)
	}
}

// moduleImporter resolves module-local packages from the in-memory
// build and everything else from the toolchain: compiled export data
// when available, falling back to type-checking the dependency from
// source under GOROOT.
type moduleImporter struct {
	module map[string]*Package
	std    types.Importer
	srcFor func() types.Importer
	src    types.Importer
	cache  map[string]*types.Package
}

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.module[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("module package %s not yet checked", path)
		}
		return pkg.Types, nil
	}
	if cached, ok := imp.cache[path]; ok {
		return cached, nil
	}
	p, err := imp.std.Import(path)
	if err != nil {
		if imp.src == nil {
			imp.src = imp.srcFor()
		}
		p, err = imp.src.Import(path)
	}
	if err != nil {
		return nil, err
	}
	if imp.cache == nil {
		imp.cache = make(map[string]*types.Package)
	}
	imp.cache[path] = p
	return p, nil
}

// typeOf returns the resolved type of an expression, or nil when the
// checker could not resolve it.
func (m *Module) typeOf(e ast.Expr) types.Type {
	if m.Info == nil {
		return nil
	}
	if tv, ok := m.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := m.Info.Uses[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// objectOf returns the object an identifier denotes, or nil.
func (m *Module) objectOf(id *ast.Ident) types.Object {
	if m.Info == nil {
		return nil
	}
	if obj, ok := m.Info.Uses[id]; ok {
		return obj
	}
	return m.Info.Defs[id]
}

// posWithin reports whether pos falls inside the source range of node.
func posWithin(pos token.Pos, node ast.Node) bool {
	return node != nil && pos >= node.Pos() && pos <= node.End()
}
