package lint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture files. "want(name)"
// expects a finding of analyzer name on the marker's line;
// "want-1(name)" expects it one line above (used where the finding
// lands on a comment line that cannot carry a trailing marker).
var wantRe = regexp.MustCompile(`want([+-]\d+)?\((\w+)\)`)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// fixtureExpectations scans every fixture file for want markers and
// returns the expected findings as sorted "path:line:analyzer" keys.
func fixtureExpectations(t *testing.T, root string) []string {
	t.Helper()
	var want []string
	err := filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				delta := 0
				if m[1] != "" {
					delta, _ = strconv.Atoi(m[1])
				}
				want = append(want, fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), i+1+delta, m[2]))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	return want
}

func findingKeys(fs []Finding) []string {
	keys := make([]string, 0, len(fs))
	for _, f := range fs {
		keys = append(keys, fmt.Sprintf("%s:%d:%s", f.File, f.Line, f.Analyzer))
	}
	sort.Strings(keys)
	return keys
}

// TestFixtureFindings runs the whole suite over the fixture module and
// requires the reported findings to match the want markers exactly —
// every violation caught, every allowed or suppressed case silent.
func TestFixtureFindings(t *testing.T) {
	root := fixtureRoot(t)
	got, err := Run(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys, wantKeys := findingKeys(got), fixtureExpectations(t, root)
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", gotKeys, wantKeys)
	}
}

// TestPerAnalyzerFindings checks each analyzer in isolation against
// the fixture package dedicated to it, table-driven.
func TestPerAnalyzerFindings(t *testing.T) {
	root := fixtureRoot(t)
	cases := []struct {
		analyzer string
		pattern  string
		minHits  int
	}{
		{"nowallclock", "./internal/clockuse", 5},
		{"seededrand", "./internal/randuse", 4},
		{"rawgo", "./internal/spawnuse/...", 3},
		{"maporder", "./internal/mapuse", 4},
		{"inlinepark", "./internal/parkuse", 5},
		{"parkpath", "./internal/parktrans", 3},
		{"spanleak", "./internal/spanuse", 3},
		{"errdrop", "./internal/erruse", 5},
		{"selectnondet", "./internal/seluse", 2},
		{"stalesuppress", "./internal/staleuse", 2},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			got, err := Run(root, []string{tc.pattern})
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, f := range got {
				if f.Analyzer != tc.analyzer {
					t.Errorf("unexpected analyzer in %s: %v", tc.pattern, f)
					continue
				}
				count++
			}
			if count != tc.minHits {
				t.Errorf("%s: got %d findings, want %d", tc.analyzer, count, tc.minHits)
			}
		})
	}
}

// TestScopeExemptions asserts that cmd/, examples/ and _test.go files
// may use the wall clock and the global rand source.
func TestScopeExemptions(t *testing.T) {
	root := fixtureRoot(t)
	for _, pattern := range []string{"./cmd/...", "./examples/...", "./internal/clean", "./internal/sim"} {
		got, err := Run(root, []string{pattern})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("%s: want no findings, got %v", pattern, got)
		}
	}
}

// TestFindingFormat pins the canonical "file:line: [analyzer] message"
// rendering the CI grep and editors rely on.
func TestFindingFormat(t *testing.T) {
	f := Finding{File: "internal/x/x.go", Line: 7, Col: 2, Analyzer: "rawgo", Message: "boom"}
	if got, want := f.String(), "internal/x/x.go:7: [rawgo] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	re := regexp.MustCompile(`^[^:]+\.go:\d+: \[[a-z]+\] .+$`)
	root := fixtureRoot(t)
	findings, err := Run(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range findings {
		if !re.MatchString(fd.String()) {
			t.Errorf("finding %q does not match the canonical format", fd)
		}
	}
}

// TestOrderingStable runs the suite repeatedly over a multi-package
// tree and requires byte-identical, position-sorted output: the linter
// itself must honor the determinism contract it enforces.
func TestOrderingStable(t *testing.T) {
	root := fixtureRoot(t)
	var prev []string
	for run := 0; run < 3; run++ {
		findings, err := Run(root, []string{"./..."})
		if err != nil {
			t.Fatal(err)
		}
		resorted := append([]Finding(nil), findings...)
		sortFindings(resorted)
		if !reflect.DeepEqual(findings, resorted) {
			t.Fatalf("run %d: findings not sorted by position", run)
		}
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		if prev != nil && !reflect.DeepEqual(prev, lines) {
			t.Fatalf("run %d differs from previous run\nprev: %v\n got: %v", run, prev, lines)
		}
		prev = lines
	}
}

// TestPatternFiltering checks dir and dir/... selection over the
// multi-package fixture tree.
func TestPatternFiltering(t *testing.T) {
	root := fixtureRoot(t)
	all, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	internalOnly, err := Run(root, []string{"./internal/..."})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(findingKeys(all), findingKeys(internalOnly)) {
		t.Errorf("all fixture findings are under internal/, so ./... and ./internal/... must agree")
	}
	one, err := Run(root, []string{"./internal/randuse"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range one {
		if !strings.HasPrefix(f.File, "internal/randuse/") {
			t.Errorf("pattern ./internal/randuse leaked finding %v", f)
		}
	}
	if len(one) == 0 {
		t.Error("pattern ./internal/randuse found nothing")
	}
	if _, err := Run(root, []string{"../escape"}); err == nil {
		t.Error("pattern ../escape: want error, got nil")
	}
	if _, err := Run(root, []string{"./internal/doesnotexist"}); err == nil {
		t.Error("pattern matching no packages: want error, got nil (a typo must not pass the gate)")
	}
	if _, err := Run(root, []string{"./internal/clean", "./internal/doesnotexist/..."}); err == nil {
		t.Error("mixed good+dead patterns: want error for the dead one")
	}
}

// TestMainExitCodes drives the command entry point end to end: 1 on
// findings, 0 on a clean selection, 2 on load errors, and -list.
func TestMainExitCodes(t *testing.T) {
	root := fixtureRoot(t)
	var out, errb bytes.Buffer

	if code := Main(root, []string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("dirty tree: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "[nowallclock]") || !strings.Contains(out.String(), "[maporder]") {
		t.Errorf("findings output missing analyzers:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := Main(root, []string{"./internal/clean"}, &out, &errb); code != 0 {
		t.Fatalf("clean package: exit %d, want 0 (stdout: %s)", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package: unexpected output %q", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := Main(t.TempDir(), nil, &out, &errb); code != 2 {
		t.Fatalf("no go.mod: exit %d, want 2", code)
	}

	out.Reset()
	errb.Reset()
	if code := Main(root, []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, a := range Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}
}

// TestRepositoryClean lints the enclosing repository itself. This is
// the acceptance gate: the real tree must stay free of determinism
// violations, with every waiver carrying an explicit reason.
func TestRepositoryClean(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
