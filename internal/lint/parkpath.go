package lint

import (
	"go/ast"
	"strings"
)

// ParkPath is the whole-program upgrade of inlinepark: where the
// syntactic analyzer only sees a blocking construct written directly
// inside an inline scheduler callback, parkpath follows the static
// call graph, so a Proc.Wait hidden two frames below the callback —
// through a helper that blocks on a *stored* or *captured* process
// handle, with no *sim.Proc crossing any call boundary — is still
// reported. Direct blocking inside the literal stays inlinepark's
// territory; parkpath reports only chains of length >= 1, so the two
// analyzers never duplicate a finding.
//
// The traversal uses only non-detached call edges: code inside a
// nested (*sim.Env).Go literal runs as a fresh process where blocking
// is legal, and nested inline callbacks are scanned as callbacks of
// their own. Calls through plain function values are not resolved by
// the graph and are therefore not followed — a deliberate gap shared
// with every static call-graph tool; interface method calls are
// followed conservatively to every implementing method in the module.
var ParkPath = &Analyzer{
	Name: "parkpath",
	Doc:  "forbid transitively-blocking calls inside inline scheduler callbacks (call-graph aware)",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal") && !f.In("internal/sim")
	},
}

// Assigned in init: runParkPath reaches analyzerNames through the
// directive parser, which would otherwise be a static init cycle.
func init() { ParkPath.RunModule = runParkPath }

func runParkPath(m *Module) []Finding {
	g := m.graph()
	var findings []Finding
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if !ParkPath.Applies(f) {
				continue
			}
			findings = append(findings, parkPathFile(g, f)...)
		}
	}
	return findings
}

// parkPathFile scans one file for inline callback literals and checks
// every resolvable call inside them against the call graph.
func parkPathFile(g *callGraph, f *File) []Finding {
	var findings []Finding
	m := f.Module
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		idx, ok := inlineCallbackArg(m, sel, call)
		if !ok {
			return true
		}
		if lit, ok := call.Args[idx].(*ast.FuncLit); ok {
			findings = append(findings, checkCallbackCalls(g, f, sel.Sel.Name, lit)...)
		}
		return true
	})
	return findings
}

// checkCallbackCalls walks one callback literal and, for every call
// that does not block directly (inlinepark's cases), asks the call
// graph whether the callee can reach a blocking construct.
func checkCallbackCalls(g *callGraph, f *File, entry string, lit *ast.FuncLit) []Finding {
	var findings []Finding
	m := f.Module
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Go" {
				if recv := m.typeOf(sel.X); recv == nil || isSimNamed(recv, "Env") {
					return false // fresh process context: blocking is legal below here
				}
			}
			if idx, ok := inlineCallbackArg(m, sel, call); ok {
				if _, ok := call.Args[idx].(*ast.FuncLit); ok {
					return false // a nested inline callback is scanned on its own
				}
			}
		}
		if _, direct := blockingCallSite(m, call); direct {
			return true // inlinepark reports direct blocking; no duplicate
		}
		for _, res := range g.resolve(call) {
			chain := g.blockChain(res.node)
			if chain == nil {
				continue
			}
			findings = append(findings, f.finding("parkpath", call.Pos(),
				"call inside a %s callback reaches blocking %s via %s; the callback runs on "+
					"the scheduler goroutine, so this parks it and deadlocks the simulation — "+
					"spawn a process with (*sim.Env).Go instead",
				entry, chain[len(chain)-1].name, renderChain(funcName(res.node.obj), chain)))
			break // one finding per call site, on the first resolved path
		}
		return true
	})
	return findings
}

// renderChain formats "a → b → <block>" for a finding message. The
// last step is the blocking construct itself, already named in the
// message, so it is dropped from the arrow chain.
func renderChain(first string, chain []chainStep) string {
	parts := []string{first}
	for _, s := range chain[:len(chain)-1] {
		parts = append(parts, s.name)
	}
	return strings.Join(parts, " -> ")
}
