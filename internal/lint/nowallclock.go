package lint

import (
	"go/ast"
)

// wallClockFuncs maps forbidden package time functions to the virtual
// replacement the message should point at. Types like time.Duration and
// pure arithmetic (time.Unix, d.Seconds()) stay legal: only functions
// that read or wait on the host clock break replay identity.
var wallClockFuncs = map[string]string{
	"Now":       "read virtual time via (*sim.Env).Now",
	"Sleep":     "advance virtual time via (*sim.Proc).Wait",
	"After":     "schedule virtual events via (*sim.Env).Schedule",
	"AfterFunc": "schedule virtual events via (*sim.Env).Schedule",
	"Tick":      "schedule repeating virtual events via (*sim.Env).Schedule",
	"NewTimer":  "schedule virtual events via (*sim.Env).Schedule",
	"NewTicker": "schedule repeating virtual events via (*sim.Env).Schedule",
	"Since":     "subtract (*sim.Env).Now values instead",
	"Until":     "subtract (*sim.Env).Now values instead",
}

// NoWallClock forbids wall-clock reads and timers in simulation code.
// The host clock differs between runs, so any value derived from it
// poisons replay identity; cmd/, examples/ and tests run outside the
// simulated world and may use it freely.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Sleep/After/Tick/NewTimer outside cmd/, examples/ and tests",
	Applies: func(f *File) bool {
		return !f.IsTest() && !f.In("cmd") && !f.In("examples")
	},
	Run: runNoWallClock,
}

func runNoWallClock(f *File) []Finding {
	var findings []Finding
	f.eachPkgRef("time", func(sel *ast.SelectorExpr) {
		hint, forbidden := wallClockFuncs[sel.Sel.Name]
		if !forbidden {
			return
		}
		findings = append(findings, f.finding("nowallclock", sel.Pos(),
			"time.%s reads the wall clock, which breaks deterministic replay; %s",
			sel.Sel.Name, hint))
	})
	return findings
}
