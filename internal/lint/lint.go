// Package lint implements sdflint, a static-analysis suite that turns
// the repository's determinism contract into a build-time guarantee.
//
// The whole reproduction rests on the discrete-event simulator being
// bit-deterministic in virtual time (see DESIGN.md, "Determinism
// rules", and internal/core's replay test). That property is easy to
// break by accident from anywhere in the tree: one wall-clock read, an
// unseeded math/rand call, a goroutine that bypasses the scheduler, or
// a map iteration feeding a trace will all produce runs that are no
// longer replayable. Each analyzer in this package enforces one of
// those invariants:
//
//   - nowallclock: no time.Now/Sleep/timers outside cmd/, examples/,
//     and tests — simulation code reads time from sim.Env only.
//   - seededrand: no package-level math/rand functions in non-test
//     internal/ code — randomness flows through an explicit
//     *rand.Rand built from a config-threaded seed.
//   - rawgo: no raw go statements in internal/ packages other than
//     internal/sim itself — concurrency is scheduled via (*sim.Env).Go
//     so process interleaving replays identically.
//   - maporder: no map iteration whose body appends to an outer
//     slice (without a later deterministic sort), sends on a channel,
//     or writes output — Go randomizes map iteration order.
//   - inlinepark: no blocking Proc calls inside inline scheduler
//     callbacks ((*sim.Env).Schedule, (*sim.Timeline).OccupyAsync) —
//     those run on the scheduler goroutine itself, so parking there
//     deadlocks the simulation rather than merely perturbing it.
//
// The v2 suite adds a whole-program layer: every package is loaded and
// type-checked once, a conservative static call graph is built over
// the module (see callgraph.go for exactly what "conservative" means),
// and five more analyzers run over types and the graph instead of over
// isolated files:
//
//   - parkpath: the transitive upgrade of inlinepark — a blocking
//     Proc/Timeline call reachable from a Schedule/OccupyAsync
//     callback through any chain of module-local calls, including
//     blocking on stored or captured process handles that never cross
//     a call boundary.
//   - spanleak: a trace span begun on some path but not ended on every
//     return path — a silent trace-hash divergence.
//   - errdrop: a discarded error result from the crash-consistency-
//     critical APIs (ccdb journal/WAL, nand media persistence,
//     flashchan recovery, the core device layer).
//   - selectnondet: selects with multiple channel cases (the runtime
//     picks among ready cases randomly), and call chains reaching raw
//     go statements outside rawgo's lexical scope.
//   - stalesuppress: //sdflint:allow directives that no longer waive
//     any finding.
//
// The per-file analyzers keep working even when a file fails to parse
// or a package fails to type-check — broken trees degrade to the
// syntactic subset instead of losing the gate entirely.
//
// A finding can be waived with a suppression comment carrying a
// mandatory reason, either on the offending line or the line above:
//
//	//sdflint:allow <analyzer> <reason>
//
// The suite is built only on go/ast, go/parser and go/types; the
// module tree is walked directly so go.mod stays dependency-free.
package lint

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one rule violation at a position in the module.
type Finding struct {
	File     string // slash-separated path relative to the module root
	Line     int
	Col      int
	Analyzer string
	Message  string

	fix *textFix // optional safe suggested edit, applied by -fix
}

// String renders the finding in the canonical "file:line: [analyzer]
// message" form emitted by cmd/sdflint.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// An Analyzer checks one determinism invariant, either file by file
// (Run) or over the whole type-checked module and its call graph
// (RunModule). Exactly one of the two is set, except stalesuppress,
// which the Check pipeline implements itself.
type Analyzer struct {
	Name string
	Doc  string
	// Applies reports whether the file is in the analyzer's scope.
	// Out-of-scope files (generally cmd/, examples/ and tests) may use
	// the forbidden constructs freely. Module analyzers consult it
	// internally for the files they report on.
	Applies func(f *File) bool
	// Run reports violations in an in-scope file.
	Run func(f *File) []Finding
	// RunModule reports violations over the whole module; findings are
	// later filtered to the files selected by the package patterns.
	RunModule func(m *Module) []Finding
}

// Analyzers returns the full suite in stable order: the five per-file
// v1 analyzers, then the five whole-program v2 analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoWallClock, SeededRand, RawGo, MapOrder, InlinePark,
		ParkPath, SpanLeak, ErrDrop, SelectNonDet, StaleSuppress,
	}
}

func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Run loads the module rooted at root, applies every analyzer to the
// files selected by patterns, and returns findings sorted by position.
// Patterns follow the go tool's shape: "./..." (everything), "dir/..."
// (a subtree), or "dir" (one package directory); an empty pattern list
// means "./...".
func Run(root string, patterns []string) ([]Finding, error) {
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return mod.Check(patterns)
}

// Check applies every analyzer to the files selected by patterns and
// returns findings sorted by position. A pattern that selects no
// package is an error, so a typo cannot silently turn the lint gate
// green.
//
// The pipeline runs in five phases: per-file analyzers on each
// selected file; whole-program analyzers over the full module (their
// findings filtered to the selected files — the call graph always sees
// everything, the patterns only scope reporting); suppression, with
// each waived finding marking its directive used; stalesuppress over
// the directives that waived nothing; and finally the parse failures
// recorded at load time.
func (m *Module) Check(patterns []string) ([]Finding, error) {
	pats, err := compilePatterns(patterns)
	if err != nil {
		return nil, err
	}
	selected := make(map[string]bool)
	var files []*File
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			if !pats.match(filepath.ToSlash(filepath.Dir(file.Path))) {
				continue
			}
			selected[file.Path] = true
			files = append(files, file)
		}
	}
	// Parse-failed files without a salvageable AST are in no Package;
	// match their directories too so their load errors are reported and
	// a pattern naming only such a directory still counts as matched.
	for _, fd := range m.LoadErrors {
		pats.match(path.Dir(fd.File))
	}
	if unmatched := pats.unmatched(); len(unmatched) > 0 {
		return nil, fmt.Errorf("no packages match pattern %s", strings.Join(unmatched, ", "))
	}

	// Phase 1: per-file analyzers.
	raw := make(map[string][]Finding)
	for _, f := range files {
		for _, a := range Analyzers() {
			if a.Run == nil {
				continue
			}
			if a.Applies != nil && !a.Applies(f) {
				continue
			}
			raw[f.Path] = append(raw[f.Path], a.Run(f)...)
		}
	}

	// Phase 2: whole-program analyzers.
	for _, a := range Analyzers() {
		if a.RunModule == nil {
			continue
		}
		for _, fd := range a.RunModule(m) {
			if selected[fd.File] {
				raw[fd.File] = append(raw[fd.File], fd)
			}
		}
	}

	// Phase 3: suppression with use-tracking; malformed directives are
	// findings themselves and waive nothing.
	var findings []Finding
	for _, f := range files {
		sup, bad := fileSuppressions(f)
		findings = append(findings, bad...)
		for _, fd := range raw[f.Path] {
			if d := sup.lookup(fd.Analyzer, fd.Line); d != nil {
				d.used = true
				continue
			}
			findings = append(findings, fd)
		}
	}

	// Phase 4: stalesuppress. Runs after every other analyzer has had
	// its chance to consume a directive — including the call graph's
	// rawgo waivers, marked used when the graph was built in phase 2.
	for _, f := range files {
		findings = append(findings, staleFindings(f)...)
	}

	// Phase 5: load errors for the selected scope.
	for _, fd := range m.LoadErrors {
		if selected[fd.File] || pats.match(path.Dir(fd.File)) {
			findings = append(findings, fd)
		}
	}

	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// patternSet matches slash-separated, module-root-relative package
// directories ("" for the root package) against go-tool-style
// patterns, tracking which patterns ever matched.
type patternSet struct {
	pats []struct {
		raw       string
		dir       string
		recursive bool
		hit       bool
	}
}

func compilePatterns(patterns []string) (*patternSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	set := &patternSet{}
	for _, raw := range patterns {
		p := strings.TrimPrefix(filepath.ToSlash(raw), "./")
		recursive := false
		if p == "..." {
			p, recursive = "", true
		} else if strings.HasSuffix(p, "/...") {
			p, recursive = strings.TrimSuffix(p, "/..."), true
		}
		p = strings.Trim(p, "/")
		if strings.Contains(p, "..") {
			return nil, fmt.Errorf("unsupported package pattern %q", raw)
		}
		set.pats = append(set.pats, struct {
			raw       string
			dir       string
			recursive bool
			hit       bool
		}{raw: raw, dir: p, recursive: recursive})
	}
	return set, nil
}

func (s *patternSet) match(dir string) bool {
	if dir == "." {
		dir = ""
	}
	matched := false
	for i := range s.pats {
		p := &s.pats[i]
		if dir == p.dir || (p.recursive && (p.dir == "" || strings.HasPrefix(dir, p.dir+"/"))) {
			p.hit = true
			matched = true
		}
	}
	return matched
}

// unmatched returns the patterns that never selected a package.
func (s *patternSet) unmatched() []string {
	var out []string
	for _, p := range s.pats {
		if !p.hit {
			out = append(out, fmt.Sprintf("%q", p.raw))
		}
	}
	return out
}

// findModuleRoot walks up from dir to the nearest directory holding a
// go.mod file.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod found in any parent directory")
		}
		dir = parent
	}
}

// Main is the command-line entry point shared by cmd/sdflint and the
// tests. It returns the process exit code: 0 for a clean tree, 1 when
// findings were reported, 2 on usage or load errors.
func Main(dir string, args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("sdflint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	jsonOut := flags.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifPath := flags.String("sarif", "", "also write a SARIF 2.1.0 report to `file`")
	fix := flags.Bool("fix", false, "apply safe suggested fixes, then re-check and report what remains")
	flags.Usage = func() {
		fmt.Fprintf(stderr, "usage: sdflint [-list] [-json] [-sarif file] [-fix] [packages]\n\n")
		fmt.Fprintf(stderr, "Checks the enclosing module against the determinism rules in\n")
		fmt.Fprintf(stderr, "DESIGN.md. Packages default to ./... and accept dir or dir/... forms.\n\n")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(stderr, "sdflint: %v\n", err)
		return 2
	}
	findings, err := Run(root, flags.Args())
	if err != nil {
		fmt.Fprintf(stderr, "sdflint: %v\n", err)
		return 2
	}
	if *fix {
		n, err := ApplyFixes(root, findings)
		if err != nil {
			fmt.Fprintf(stderr, "sdflint: applying fixes: %v\n", err)
			return 2
		}
		if n > 0 {
			fmt.Fprintf(stderr, "sdflint: applied %d fix(es)\n", n)
		}
		// Re-check from scratch: the edits moved positions and may have
		// resolved (or, for stale directives, revealed) other findings.
		findings, err = Run(root, flags.Args())
		if err != nil {
			fmt.Fprintf(stderr, "sdflint: %v\n", err)
			return 2
		}
	}
	if *sarifPath != "" {
		fh, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "sdflint: %v\n", err)
			return 2
		}
		werr := writeSARIF(fh, findings)
		if cerr := fh.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "sdflint: writing %s: %v\n", *sarifPath, werr)
			return 2
		}
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "sdflint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sdflint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
