package lint

import (
	"fmt"
	"sort"
)

// StaleSuppress flags //sdflint:allow directives that no longer waive
// any finding. A suppression is a standing claim — "this line violates
// rule X for reason Y" — and when the offending code is later fixed or
// deleted the claim goes stale: it stops documenting anything true and
// silently waives the next violation someone introduces on that line.
// The analyzer is implemented inside the Check pipeline itself (it
// needs every other analyzer's pre-suppression findings to know which
// directives worked), so this declaration only contributes the name,
// the doc line, and the -list entry. Its findings carry a safe -fix
// edit: delete the directive (and its line, when nothing else is on
// it).
//
// A stale directive that is itself intentional — say, kept while a
// flaky refactor settles — can be waived with a directive on the line
// above it: //sdflint:allow stalesuppress <reason>.
var StaleSuppress = &Analyzer{
	Name: "stalesuppress",
	Doc:  "flag //sdflint:allow directives that no longer suppress any finding",
}

// staleFindings reports the file's valid directives that waived
// nothing, once every analyzer has had its chance to consume them.
// Directives are judged in descending line order so that a
// stalesuppress waiver is credited by the directive below it before
// being judged itself; a waiver covers its own line and the next,
// matching ordinary suppression scope.
func staleFindings(f *File) []Finding {
	dirs := fileDirectives(f)
	waiver := make(map[int]*directive)
	for _, d := range dirs {
		if d.d != nil && d.d.Analyzer == "stalesuppress" {
			waiver[d.line] = d
			waiver[d.line+1] = d
		}
	}
	ordered := append([]*directive(nil), dirs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].line > ordered[j].line })
	var out []Finding
	for _, d := range ordered {
		if d.d == nil || d.used {
			continue
		}
		if w := waiver[d.line]; w != nil && w != d {
			w.used = true
			continue
		}
		out = append(out, Finding{
			File: f.Path, Line: d.line, Col: d.col, Analyzer: "stalesuppress",
			Message: fmt.Sprintf("//sdflint:allow %s waives no finding; a stale directive documents "+
				"nothing true and silently covers the next violation on its line — delete it "+
				"(sdflint -fix does) or waive with //sdflint:allow stalesuppress <reason> above it",
				d.d.Analyzer),
			fix: deleteDirectiveFix(f, d),
		})
	}
	return out
}

// deleteDirectiveFix builds the safe edit removing a stale directive:
// the comment's own byte range, expanded at apply time to the whole
// line when nothing else shares it.
func deleteDirectiveFix(f *File, d *directive) *textFix {
	start := f.Module.Fset.Position(d.pos).Offset
	end := f.Module.Fset.Position(d.end).Offset
	if start < 0 || end <= start {
		return nil
	}
	return &textFix{path: f.Path, start: start, end: end, kind: fixDeleteDirective}
}
