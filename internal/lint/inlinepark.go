package lint

import (
	"go/ast"
	"go/types"
)

// InlinePark flags blocking process calls inside inline scheduler
// callbacks. The kernel's fast path ((*sim.Env).Schedule and
// (*sim.Timeline).OccupyAsync) runs the supplied function directly on
// the scheduler goroutine between events: there is no process to park,
// so calling a blocking Proc API from one — Wait, WaitUntil, Await,
// Join, or anything that takes a *sim.Proc such as Acquire, Transfer,
// Occupy or Queue.Get — deadlocks the simulation (see DESIGN.md,
// "Kernel performance"). The metrics registry's callback-backed
// instruments ((*metrics.Registry).GaugeFunc and CounterFunc) carry
// the same contract: the sampler and the exporters invoke those
// callbacks inline — sometimes outside any process, after the run —
// so they must be park-free reads. Spawning a fresh process with
// (*sim.Env).Go from a callback is the legal way to re-enter blocking
// code, so Go literals are not descended into. internal/sim itself is
// exempt: the kernel parks and resumes processes as part of
// implementing them.
var InlinePark = &Analyzer{
	Name: "inlinepark",
	Doc:  "forbid blocking Proc calls inside inline callbacks (Schedule/OccupyAsync/GaugeFunc/CounterFunc)",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal") && !f.In("internal/sim")
	},
	Run: runInlinePark,
}

// blockingProcMethods are the (*sim.Proc) methods that park the
// calling process.
var blockingProcMethods = map[string]bool{
	"Wait": true, "WaitUntil": true, "Await": true, "Join": true,
}

// inlineCallback describes one entry point whose callback argument
// runs inline on the scheduler goroutine (or outside any process
// entirely, for registry instruments read at export time).
type inlineCallback struct {
	arg int    // index of the callback argument
	pkg string // receiver's package name
	typ string // receiver's named type
}

// inlineCallbackMethods maps entry points that run a callback inline
// to the callback argument index and the receiver type that owns the
// method, so an unrelated type's same-named method is not matched.
var inlineCallbackMethods = map[string][]inlineCallback{
	"Schedule":    {{arg: 1, pkg: "sim", typ: "Env"}},          // (*sim.Env).Schedule(d, fn)
	"OccupyAsync": {{arg: 1, pkg: "sim", typ: "Timeline"}},     // (*sim.Timeline).OccupyAsync(hold, fn)
	"GaugeFunc":   {{arg: 1, pkg: "metrics", typ: "Registry"}}, // (*metrics.Registry).GaugeFunc(name, fn, labels...)
	"CounterFunc": {{arg: 1, pkg: "metrics", typ: "Registry"}}, // (*metrics.Registry).CounterFunc(name, fn, labels...)
}

// inlineCallbackArg resolves a call to a registered inline-callback
// entry point and returns the index of its callback argument. With
// type information, the receiver must be the named type the entry
// point belongs to; without it, the name alone matches — a false
// positive is waivable, a missed deadlock is not.
func inlineCallbackArg(m *Module, sel *ast.SelectorExpr, call *ast.CallExpr) (int, bool) {
	cands, ok := inlineCallbackMethods[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	recv := m.typeOf(sel.X)
	for _, c := range cands {
		if c.arg >= len(call.Args) {
			continue
		}
		if recv == nil || isNamed(recv, c.pkg, c.typ) {
			return c.arg, true
		}
	}
	return 0, false
}

func runInlinePark(f *File) []Finding {
	var findings []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		idx, ok := inlineCallbackArg(f.Module, sel, call)
		if !ok {
			return true
		}
		if lit, ok := call.Args[idx].(*ast.FuncLit); ok {
			findings = append(findings, checkInlineCallback(f, sel.Sel.Name, lit)...)
		}
		return true
	})
	return findings
}

// checkInlineCallback walks one callback literal for blocking calls,
// skipping (*sim.Env).Go literals: those bodies run as fresh
// scheduler-owned processes where parking is legal.
func checkInlineCallback(f *File, entry string, lit *ast.FuncLit) []Finding {
	var findings []Finding
	m := f.Module
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Go" {
				if recv := m.typeOf(sel.X); recv == nil || isSimNamed(recv, "Env") {
					return false // new process context: blocking is legal
				}
			}
			if idx, ok := inlineCallbackArg(m, sel, call); ok {
				if _, ok := call.Args[idx].(*ast.FuncLit); ok {
					// A nested inline callback is scanned by the
					// file-level walk; re-scanning it here would
					// duplicate its findings.
					return false
				}
			}
			if blockingProcMethods[sel.Sel.Name] && isSimNamed(m.typeOf(sel.X), "Proc") {
				findings = append(findings, f.finding("inlinepark", call.Pos(),
					"Proc.%s inside a %s callback parks on the scheduler goroutine and deadlocks "+
						"the simulation; spawn a process with (*sim.Env).Go instead", sel.Sel.Name, entry))
				return true
			}
		}
		for _, arg := range call.Args {
			if t := m.typeOf(arg); t != nil && isSimProcPtr(t) {
				findings = append(findings, f.finding("inlinepark", call.Pos(),
					"call passes a *sim.Proc inside a %s callback; blocking APIs like this one park "+
						"the scheduler goroutine and deadlock the simulation — spawn a process with "+
						"(*sim.Env).Go instead", entry))
				break
			}
		}
		return true
	})
	return findings
}

// isNamed reports whether t (or its pointee) is the named type
// <pkg>.<name> — matched by type and package name so the fixture
// module and the real module both qualify.
func isNamed(t types.Type, pkg, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == pkg
}

// isSimNamed reports whether t (or its pointee) is sim.<name>.
func isSimNamed(t types.Type, name string) bool { return isNamed(t, "sim", name) }

// isSimProcPtr reports whether t is *sim.Proc.
func isSimProcPtr(t types.Type) bool {
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return isSimNamed(t, "Proc")
}
