package lint

import (
	"go/ast"
	"go/types"
)

// InlinePark flags blocking process calls inside inline scheduler
// callbacks. The kernel's fast path ((*sim.Env).Schedule and
// (*sim.Timeline).OccupyAsync) runs the supplied function directly on
// the scheduler goroutine between events: there is no process to park,
// so calling a blocking Proc API from one — Wait, WaitUntil, Await,
// Join, or anything that takes a *sim.Proc such as Acquire, Transfer,
// Occupy or Queue.Get — deadlocks the simulation (see DESIGN.md,
// "Kernel performance"). Spawning a fresh process with (*sim.Env).Go
// from a callback is the legal way to re-enter blocking code, so Go
// literals are not descended into. internal/sim itself is exempt: the
// kernel parks and resumes processes as part of implementing them.
var InlinePark = &Analyzer{
	Name: "inlinepark",
	Doc:  "forbid blocking Proc calls inside inline scheduler callbacks (Schedule/OccupyAsync)",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal") && !f.In("internal/sim")
	},
	Run: runInlinePark,
}

// blockingProcMethods are the (*sim.Proc) methods that park the
// calling process.
var blockingProcMethods = map[string]bool{
	"Wait": true, "WaitUntil": true, "Await": true, "Join": true,
}

// inlineCallbackMethods maps scheduler entry points that run a
// callback inline to the argument index of that callback.
var inlineCallbackMethods = map[string]int{
	"Schedule":    1, // (*sim.Env).Schedule(d, fn)
	"OccupyAsync": 1, // (*sim.Timeline).OccupyAsync(hold, fn)
}

func runInlinePark(f *File) []Finding {
	var findings []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		idx, ok := inlineCallbackMethods[sel.Sel.Name]
		if !ok || idx >= len(call.Args) {
			return true
		}
		recv := f.Module.typeOf(sel.X)
		// With type information, require the receiver to be the kernel
		// type the entry point belongs to; without it, match the name
		// alone — a false positive here is waivable, a missed deadlock
		// is not.
		if recv != nil && !isSimNamed(recv, "Env") && !isSimNamed(recv, "Timeline") {
			return true
		}
		if lit, ok := call.Args[idx].(*ast.FuncLit); ok {
			findings = append(findings, checkInlineCallback(f, sel.Sel.Name, lit)...)
		}
		return true
	})
	return findings
}

// checkInlineCallback walks one callback literal for blocking calls,
// skipping (*sim.Env).Go literals: those bodies run as fresh
// scheduler-owned processes where parking is legal.
func checkInlineCallback(f *File, entry string, lit *ast.FuncLit) []Finding {
	var findings []Finding
	m := f.Module
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Go" {
				if recv := m.typeOf(sel.X); recv == nil || isSimNamed(recv, "Env") {
					return false // new process context: blocking is legal
				}
			}
			if idx, ok := inlineCallbackMethods[sel.Sel.Name]; ok && idx < len(call.Args) {
				if _, ok := call.Args[idx].(*ast.FuncLit); ok {
					// A nested inline callback is scanned by the
					// file-level walk; re-scanning it here would
					// duplicate its findings.
					return false
				}
			}
			if blockingProcMethods[sel.Sel.Name] && isSimNamed(m.typeOf(sel.X), "Proc") {
				findings = append(findings, f.finding("inlinepark", call.Pos(),
					"Proc.%s inside a %s callback parks on the scheduler goroutine and deadlocks "+
						"the simulation; spawn a process with (*sim.Env).Go instead", sel.Sel.Name, entry))
				return true
			}
		}
		for _, arg := range call.Args {
			if t := m.typeOf(arg); t != nil && isSimProcPtr(t) {
				findings = append(findings, f.finding("inlinepark", call.Pos(),
					"call passes a *sim.Proc inside a %s callback; blocking APIs like this one park "+
						"the scheduler goroutine and deadlock the simulation — spawn a process with "+
						"(*sim.Env).Go instead", entry))
				break
			}
		}
		return true
	})
	return findings
}

// isSimNamed reports whether t (or its pointee) is the named type
// sim.<name> — matched by type and package name so the fixture module
// and the real module both qualify.
func isSimNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// isSimProcPtr reports whether t is *sim.Proc.
func isSimProcPtr(t types.Type) bool {
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return isSimNamed(t, "Proc")
}
