package lint

import (
	"os"
	"path/filepath"
	"sort"
)

// A fixKind selects how a textFix's replacement is assembled at apply
// time. Fix construction stores only offsets; the replacement text is
// derived from the file's own bytes when the edit is applied, so a fix
// can never splice in content that was not already in the tree.
type fixKind int

const (
	// fixDeleteDirective removes a stale //sdflint:allow comment. When
	// the comment is alone on its line the whole line goes; when it
	// trails code, the comment and the spacing before it go.
	fixDeleteDirective fixKind = iota
	// fixWrapErrReturn rewrites a bare critical call `f(...)` into
	// `if err := f(...); err != nil { return err }`, reusing the
	// statement's own indentation. Only offered when the enclosing
	// function returns exactly one error (see errDropFix).
	fixWrapErrReturn
)

// A textFix is one safe suggested edit: replace data[start:end] of the
// named file according to kind.
type textFix struct {
	path       string // slash-separated, module-root-relative
	start, end int    // byte offsets into the original file
	kind       fixKind
}

// ApplyFixes applies every fix attached to the findings, grouping by
// file and editing in descending offset order so earlier offsets stay
// valid. Overlapping edits keep only the later-offset one. It returns
// the number of edits applied.
func ApplyFixes(root string, findings []Finding) (int, error) {
	byFile := make(map[string][]*textFix)
	for i := range findings {
		if fx := findings[i].fix; fx != nil {
			byFile[fx.path] = append(byFile[fx.path], fx)
		}
	}
	paths := make([]string, 0, len(byFile))
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	applied := 0
	for _, p := range paths {
		fixes := byFile[p]
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].start > fixes[j].start })
		full := filepath.Join(root, filepath.FromSlash(p))
		data, err := os.ReadFile(full)
		if err != nil {
			return applied, err
		}
		prevStart := len(data) + 1
		n := 0
		for _, fx := range fixes {
			if fx.start < 0 || fx.end > len(data) || fx.start >= fx.end || fx.end > prevStart {
				continue
			}
			start, end := fx.start, fx.end
			var repl []byte
			switch fx.kind {
			case fixDeleteDirective:
				start, end = expandDeletion(data, start, end)
			case fixWrapErrReturn:
				call := string(data[start:end])
				indent := lineIndent(data, start)
				repl = []byte("if err := " + call + "; err != nil {\n" +
					indent + "\treturn err\n" + indent + "}")
			}
			out := make([]byte, 0, len(data)-(end-start)+len(repl))
			out = append(out, data[:start]...)
			out = append(out, repl...)
			out = append(out, data[end:]...)
			data = out
			prevStart = start
			n++
		}
		if n == 0 {
			continue
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return applied, err
		}
		applied += n
	}
	return applied, nil
}

// expandDeletion widens a comment's byte range for removal: to the
// whole line (newline included) when only whitespace surrounds it, or
// to also swallow the spacing before a trailing comment.
func expandDeletion(data []byte, start, end int) (int, int) {
	ls := start
	for ls > 0 && data[ls-1] != '\n' {
		ls--
	}
	aloneBefore := true
	for i := ls; i < start; i++ {
		if data[i] != ' ' && data[i] != '\t' {
			aloneBefore = false
			break
		}
	}
	le := end
	for le < len(data) && (data[le] == ' ' || data[le] == '\t') {
		le++
	}
	atEOL := le >= len(data) || data[le] == '\n'
	if aloneBefore && atEOL {
		if le < len(data) {
			le++ // take the newline with the line
		}
		return ls, le
	}
	for start > 0 && (data[start-1] == ' ' || data[start-1] == '\t') {
		start--
	}
	if atEOL {
		end = le
	}
	return start, end
}

// lineIndent returns the leading whitespace of the line containing the
// byte at off.
func lineIndent(data []byte, off int) string {
	ls := off
	for ls > 0 && data[ls-1] != '\n' {
		ls--
	}
	i := ls
	for i < len(data) && (data[i] == ' ' || data[i] == '\t') {
		i++
	}
	return string(data[ls:i])
}
