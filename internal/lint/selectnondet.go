package lint

import (
	"go/ast"
)

// SelectNonDet closes two nondeterminism holes the per-file analyzers
// cannot see:
//
//  1. A select statement with two or more channel cases: when several
//     cases are ready the Go runtime picks one uniformly at random, so
//     the winner — and everything downstream of it — differs between
//     replays. Simulation code must resolve races in virtual time
//     ((*sim.Env).Schedule with an explicit tie-break) rather than in
//     the host scheduler. A single comm case (with or without default)
//     has nothing to race and passes.
//
//  2. A call chain that ends in a raw go statement living outside
//     rawgo's lexical scope. rawgo only matches the `go` keyword in
//     internal/ (minus internal/sim) files; a helper package at the
//     module root — or any other out-of-scope location — can spawn a
//     host goroutine that sim-domain code then reaches with an
//     ordinary call. The call graph follows every module-local edge
//     (including detached contexts: a goroutine spawned from inside a
//     callback is just as unscheduled), skipping internal/sim (the
//     deterministic handoff itself) and go statements waived by an
//     //sdflint:allow rawgo directive (the approved worker pools).
var SelectNonDet = &Analyzer{
	Name: "selectnondet",
	Doc:  "flag multi-case selects and call chains reaching raw go statements rawgo cannot see",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal") && !f.In("internal/sim")
	},
}

// Assigned in init to break the same static init cycle as ParkPath's.
func init() { SelectNonDet.RunModule = runSelectNonDet }

func runSelectNonDet(m *Module) []Finding {
	g := m.graph()
	var findings []Finding
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if !SelectNonDet.Applies(f) {
				continue
			}
			findings = append(findings, selectNonDetFile(g, f)...)
		}
	}
	return findings
}

func selectNonDetFile(g *callGraph, f *File) []Finding {
	var findings []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SelectStmt:
			comm := 0
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				findings = append(findings, f.finding("selectnondet", st.Pos(),
					"select with %d channel cases picks among ready cases pseudorandomly, "+
						"so replays diverge; resolve the race in virtual time with an explicit "+
						"deterministic tie-break instead", comm))
			}
		case *ast.CallExpr:
			findings = append(findings, checkSpawnEscape(g, f, st)...)
		}
		return true
	})
	return findings
}

// checkSpawnEscape reports a call whose callee lives outside rawgo's
// lexical scope and (transitively) executes an unwaived raw go
// statement. Callees inside rawgo's scope are skipped: the go
// statement there is rawgo's finding (or carries its waiver), and the
// intermediate frames each get their own finding at the boundary call.
func checkSpawnEscape(g *callGraph, f *File, call *ast.CallExpr) []Finding {
	var findings []Finding
	for _, res := range g.resolve(call) {
		callee := res.node
		if rawGoScope(callee.file) {
			continue // rawgo's territory: the statement itself is flagged there
		}
		chain := g.spawnChain(callee)
		if chain == nil {
			continue
		}
		findings = append(findings, f.finding("selectnondet", call.Pos(),
			"call to %s reaches a raw go statement (via %s) that rawgo cannot see from "+
				"%s; the goroutine runs under the host scheduler and lands at "+
				"nondeterministic points in virtual time — spawn with (*sim.Env).Go",
			funcName(callee.obj), renderChain(funcName(callee.obj), chain), callee.file.Path))
		break
	}
	return findings
}

// rawGoScope mirrors RawGo.Applies on a file.
func rawGoScope(f *File) bool {
	return f.In("internal") && !f.In("internal/sim")
}
