package lint

import (
	"encoding/json"
	"io"
)

// This file renders findings for machine consumers: a flat JSON array
// for scripting (-json) and SARIF 2.1.0 for code-scanning UIs
// (-sarif). Both are emitted from the same sorted finding list, so
// they inherit the suite's determinism guarantee: identical trees
// produce byte-identical reports.

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as an indented JSON array (never null:
// a clean tree is an empty array).
func writeJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{f.File, f.Line, f.Col, f.Analyzer, f.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 object model — only the properties the format
// requires plus the ones code-scanning UIs actually render.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits a SARIF 2.1.0 report. The rule catalog lists every
// analyzer plus the pseudo-rule "sdflint" (malformed directives and
// parse failures), so every result's ruleId resolves.
func writeSARIF(w io.Writer, findings []Finding) error {
	rules := []sarifRule{{
		ID:               "sdflint",
		ShortDescription: sarifText{Text: "malformed suppression directives and parse failures"},
	}}
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "sdflint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
