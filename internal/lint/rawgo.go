package lint

import (
	"go/ast"
)

// RawGo forbids raw go statements in sim-domain packages. A goroutine
// the scheduler does not know about runs under the host scheduler's
// timing, so its effects land at nondeterministic points in virtual
// time; all concurrency must be spawned via (*sim.Env).Go, which
// parks and resumes processes in strict (time, sequence) order.
// internal/sim itself is the one place allowed to touch the primitive,
// since that is where the deterministic handoff is implemented.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid raw go statements in internal/ packages except internal/sim",
	Applies: func(f *File) bool {
		return f.In("internal") && !f.In("internal/sim")
	},
	Run: runRawGo,
}

func runRawGo(f *File) []Finding {
	var findings []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			findings = append(findings, f.finding("rawgo", g.Pos(),
				"raw go statement bypasses the deterministic scheduler; "+
					"spawn simulation processes with (*sim.Env).Go"))
		}
		return true
	})
	return findings
}
