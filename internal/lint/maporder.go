package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range statements over maps whose body leaks the
// iteration order: appending to a slice declared outside the loop
// (unless a deterministic sort of that slice follows in the same
// block), sending on a channel, or writing to an output sink (fmt
// print family, Write*/Log*/Trace methods). Go randomizes map
// iteration order per run, so any of these turns a replayable trace
// into a roll of the dice. Writes that are order-insensitive —
// counters, min/max folds, building another map — pass untouched.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration feeding slices/traces/channels without a deterministic sort",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal")
	},
	Run: runMapOrder,
}

// outputCallNames are method/function names treated as ordered output
// sinks when called inside a map iteration.
var outputCallNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Log": true, "Logf": true, "Trace": true, "Record": true,
}

// sortCallNames are the sort/slices package functions accepted as a
// deterministic re-ordering of an appended slice.
var sortCallNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

func runMapOrder(f *File) []Finding {
	var findings []Finding
	// Range statements only ever appear inside statement lists, so
	// walking the lists gives us both the loop and the statements that
	// follow it (where a sort may re-establish determinism).
	eachStmtList(f.AST, func(list []ast.Stmt) {
		for i, stmt := range list {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok || !isMapType(f.Module.typeOf(rs.X)) {
				continue
			}
			findings = append(findings, checkMapRange(f, rs, list[i+1:])...)
		}
	})
	return findings
}

// eachStmtList invokes fn on every []ast.Stmt in the file.
func eachStmtList(root ast.Node, fn func([]ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			fn(s.List)
		case *ast.CaseClause:
			fn(s.Body)
		case *ast.CommClause:
			fn(s.Body)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order-leaking sinks.
// rest holds the statements after the loop in the enclosing block,
// scanned for a sort that clears append sinks.
func checkMapRange(f *File, rs *ast.RangeStmt, rest []ast.Stmt) []Finding {
	var findings []Finding
	m := f.Module
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			findings = append(findings, f.finding("maporder", s.Pos(),
				"send on a channel inside map iteration publishes values in random order; "+
					"iterate over sorted keys instead"))
		case *ast.CallExpr:
			if name, ok := outputCall(s); ok {
				findings = append(findings, f.finding("maporder", s.Pos(),
					"%s inside map iteration emits output in random order; "+
						"iterate over sorted keys instead", name))
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				target := appendTarget(s, i, rhs)
				if target == nil {
					continue
				}
				obj := m.objectOf(target)
				if obj != nil && posWithin(obj.Pos(), rs.Body) {
					continue // per-iteration slice; order cannot escape
				}
				if sortedAfter(m, target, obj, rest) {
					continue
				}
				findings = append(findings, f.finding("maporder", rhs.Pos(),
					"append to %q inside map iteration collects elements in random order "+
						"with no deterministic sort afterwards; sort the slice (sort.* / slices.Sort*) "+
						"or iterate over sorted keys", target.Name))
			}
		}
		return true
	})
	return findings
}

// outputCall reports whether the call is an output sink, returning a
// printable name for the message.
func outputCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !outputCallNames[sel.Sel.Name] {
		return "", false
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name, true
	}
	return sel.Sel.Name, true
}

// appendTarget returns the identifier that accumulates an append, for
// assignments shaped like `x = append(x, ...)` / `x := append(y, ...)`.
// Appends assigned through a selector or index expression are treated
// as escaping to an outer variable and returned via their base ident.
func appendTarget(assign *ast.AssignStmt, i int, rhs ast.Expr) *ast.Ident {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if i >= len(assign.Lhs) {
		return nil
	}
	return baseIdent(assign.Lhs[i])
}

// baseIdent strips selectors/indexing/parens down to the base ident.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether any statement after the loop calls a
// sort/slices sorting function over the appended target. Matching is
// by types.Object when available, falling back to the identifier name.
func sortedAfter(m *Module, target *ast.Ident, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !sortCallNames[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if mentionsIdent(m, arg, target, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsIdent reports whether expr references the same object (or,
// without type info, the same name) as target.
func mentionsIdent(m *Module, expr ast.Expr, target *ast.Ident, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj != nil {
			if m.objectOf(id) == obj {
				found = true
			}
		} else if id.Name == target.Name {
			found = true
		}
		return !found
	})
	return found
}
