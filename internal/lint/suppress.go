package lint

import (
	"go/token"
	"strings"
)

// suppressionSet records which analyzers are waived on which lines,
// keeping the directive responsible so the Check pipeline can mark it
// used (stalesuppress flags the ones that never are). A suppression
// comment covers its own line (trailing-comment style) and the line
// immediately below it (comment-above style).
type suppressionSet map[int]map[string]*directive

func (s suppressionSet) allows(analyzer string, line int) bool {
	return s[line][analyzer] != nil
}

// lookup returns the directive waiving analyzer on line, or nil.
func (s suppressionSet) lookup(analyzer string, line int) *directive {
	return s[line][analyzer]
}

func (s suppressionSet) add(d *directive, line int) {
	if s[line] == nil {
		s[line] = make(map[string]*directive)
	}
	if s[line][d.d.Analyzer] == nil {
		s[line][d.d.Analyzer] = d
	}
}

// allowDirective holds one parsed //sdflint:allow comment.
type allowDirective struct {
	Analyzer string
	Reason   string
}

// directive is one sdflint:allow comment found in a file, valid or
// not, with enough position information to report and to delete it.
type directive struct {
	d         *allowDirective // nil when malformed
	line, col int
	pos, end  token.Pos // source range of the comment
	used      bool      // set by Check when the directive waives a finding
}

// parseAllow parses the text of a single comment. It returns
// (nil, false) for comments that are not suppression directives at
// all, and (nil, true) for directives that are malformed — missing
// analyzer, unknown analyzer, or missing reason.
func parseAllow(text string, known map[string]bool) (*allowDirective, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		body, ok = strings.CutPrefix(text, "/*")
		if !ok {
			return nil, false
		}
		body = strings.TrimSuffix(body, "*/")
	}
	// Accept both the directive form //sdflint:allow and the spaced
	// form // sdflint:allow; the directive form is canonical (gofmt
	// keeps it flush, like //go: directives).
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "sdflint:allow")
	if !ok {
		return nil, false
	}
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return nil, false // e.g. sdflint:allowance — not this directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, true // no analyzer
	}
	if !known[fields[0]] {
		return nil, true // unknown analyzer
	}
	if len(fields) < 2 {
		return nil, true // reason is mandatory
	}
	return &allowDirective{Analyzer: fields[0], Reason: strings.Join(fields[1:], " ")}, true
}

// fileDirectives scans every comment in the file for suppression
// directives, memoizing the result on the File.
func fileDirectives(f *File) []*directive {
	if f.directives != nil {
		return *f.directives
	}
	known := analyzerNames()
	dirs := []*directive{}
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			d, isDirective := parseAllow(c.Text, known)
			if !isDirective {
				continue
			}
			_, line, col := f.Pos(c.Pos())
			dirs = append(dirs, &directive{d: d, line: line, col: col, pos: c.Pos(), end: c.End()})
		}
	}
	f.directives = &dirs
	return dirs
}

// fileSuppressions builds the line->analyzer waiver set from the
// file's valid directives and returns the malformed ones as findings
// under the pseudo-analyzer name "sdflint"; those waive nothing.
func fileSuppressions(f *File) (suppressionSet, []Finding) {
	set := make(suppressionSet)
	var bad []Finding
	for _, dir := range fileDirectives(f) {
		if dir.d == nil {
			bad = append(bad, Finding{
				File: f.Path, Line: dir.line, Col: dir.col, Analyzer: "sdflint",
				Message: "malformed suppression: want //sdflint:allow <analyzer> <reason> " +
					"with a known analyzer and a non-empty reason",
			})
			continue
		}
		set.add(dir, dir.line)
		set.add(dir, dir.line+1)
	}
	return set, bad
}
