package lint

import (
	"strings"
)

// suppressionSet records which analyzers are waived on which lines.
// A suppression comment covers its own line (trailing-comment style)
// and the line immediately below it (comment-above style).
type suppressionSet map[int]map[string]bool

func (s suppressionSet) allows(analyzer string, line int) bool {
	return s[line][analyzer]
}

func (s suppressionSet) add(analyzer string, line int) {
	if s[line] == nil {
		s[line] = make(map[string]bool)
	}
	s[line][analyzer] = true
}

// allowDirective holds one parsed //sdflint:allow comment.
type allowDirective struct {
	Analyzer string
	Reason   string
}

// parseAllow parses the text of a single comment. It returns
// (nil, false) for comments that are not suppression directives at
// all, and (nil, true) for directives that are malformed — missing
// analyzer, unknown analyzer, or missing reason.
func parseAllow(text string, known map[string]bool) (*allowDirective, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		body, ok = strings.CutPrefix(text, "/*")
		if !ok {
			return nil, false
		}
		body = strings.TrimSuffix(body, "*/")
	}
	// Accept both the directive form //sdflint:allow and the spaced
	// form // sdflint:allow; the directive form is canonical (gofmt
	// keeps it flush, like //go: directives).
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "sdflint:allow")
	if !ok {
		return nil, false
	}
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return nil, false // e.g. sdflint:allowance — not this directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, true // no analyzer
	}
	if !known[fields[0]] {
		return nil, true // unknown analyzer
	}
	if len(fields) < 2 {
		return nil, true // reason is mandatory
	}
	return &allowDirective{Analyzer: fields[0], Reason: strings.Join(fields[1:], " ")}, true
}

// fileSuppressions scans every comment in the file for suppression
// directives. Malformed directives are returned as findings under the
// pseudo-analyzer name "sdflint" and waive nothing.
func fileSuppressions(f *File) (suppressionSet, []Finding) {
	known := analyzerNames()
	set := make(suppressionSet)
	var bad []Finding
	for _, group := range f.AST.Comments {
		for _, c := range group.List {
			d, isDirective := parseAllow(c.Text, known)
			if !isDirective {
				continue
			}
			_, line, col := f.Pos(c.Pos())
			if d == nil {
				bad = append(bad, Finding{
					File: f.Path, Line: line, Col: col, Analyzer: "sdflint",
					Message: "malformed suppression: want //sdflint:allow <analyzer> <reason> " +
						"with a known analyzer and a non-empty reason",
				})
				continue
			}
			set.add(d.Analyzer, line)
			set.add(d.Analyzer, line+1)
		}
	}
	return set, bad
}
