package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden output files")

// TestInlineParkMissesTransitive is the proof the tentpole rests on:
// the per-file inlinepark analyzer reports nothing in the parktrans
// fixture (the blocking is below a call boundary, on a stored handle),
// while parkpath reports every case. If inlinepark ever learns to see
// these, parkpath's dedup rule needs revisiting — this test will say
// so.
func TestInlineParkMissesTransitive(t *testing.T) {
	root := fixtureRoot(t)
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var file *File
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			if f.Path == "internal/parktrans/parktrans.go" {
				file = f
			}
		}
	}
	if file == nil {
		t.Fatal("fixture internal/parktrans/parktrans.go not loaded")
	}
	if got := InlinePark.Run(file); len(got) != 0 {
		t.Errorf("inlinepark sees the transitive fixture (%v); parkpath's no-duplicate rule is stale", got)
	}
	findings, err := mod.Check([]string{"./internal/parktrans"})
	if err != nil {
		t.Fatal(err)
	}
	park := 0
	for _, f := range findings {
		if f.Analyzer == "parkpath" {
			park++
		}
	}
	if park != 3 {
		t.Errorf("parkpath findings = %d, want 3 (direct chain, interface dispatch, OccupyAsync)", park)
	}
}

// TestGoldenOutput pins the -json and -sarif renderings byte for byte
// over a stable fixture package. Regenerate with `go test -run Golden
// -update ./internal/lint` after a deliberate format change.
func TestGoldenOutput(t *testing.T) {
	root := fixtureRoot(t)
	findings, err := Run(root, []string{"./internal/erruse"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		golden string
		render func(*bytes.Buffer) error
	}{
		{"json", "findings.json.golden", func(b *bytes.Buffer) error { return writeJSON(b, findings) }},
		{"sarif", "findings.sarif.golden", func(b *bytes.Buffer) error { return writeSARIF(b, findings) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.render(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.golden)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file\n got:\n%s\nwant:\n%s", tc.name, buf.Bytes(), want)
			}
		})
	}
}

// writeTree materializes a map of path->source as a module under a
// fresh temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for p, src := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestBrokenTreeDegrades checks graceful degradation: a file that
// fails to parse becomes an "sdflint" finding instead of aborting the
// run, and the per-file analyzers keep working on the healthy files.
func TestBrokenTreeDegrades(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.23\n",
		"internal/broken/broken.go": `package broken

func Oops() {
`,
		"internal/ok/ok.go": `package ok

import "time"

func Now() time.Time { return time.Now() }
`,
	})
	findings, err := Run(root, nil)
	if err != nil {
		t.Fatalf("a parse error must degrade, not abort: %v", err)
	}
	var parseErrs, clockErrs int
	for _, f := range findings {
		switch {
		case f.Analyzer == "sdflint" && strings.HasPrefix(f.File, "internal/broken/"):
			parseErrs++
		case f.Analyzer == "nowallclock" && strings.HasPrefix(f.File, "internal/ok/"):
			clockErrs++
		}
	}
	if parseErrs == 0 {
		t.Errorf("missing sdflint parse-error finding: %v", findings)
	}
	if clockErrs == 0 {
		t.Errorf("per-file analyzers must keep working on healthy files: %v", findings)
	}
}

// TestApplyFixes drives -fix end to end: a stale directive is deleted
// (whole line), a dropped critical error is wrapped in a return, and
// the re-check comes back clean.
func TestApplyFixes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.23\n",
		"internal/ccdb/ccdb.go": `package ccdb

func Sync() error { return nil }
`,
		"internal/use/use.go": `package use

import "tmpmod/internal/ccdb"

//sdflint:allow maporder nothing here iterates anymore
func Flush() error {
	ccdb.Sync()
	return nil
}
`,
	})
	findings, err := Run(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	var haveErrdrop, haveStale bool
	for _, f := range findings {
		switch f.Analyzer {
		case "errdrop":
			haveErrdrop = true
		case "stalesuppress":
			haveStale = true
		}
	}
	if !haveErrdrop || !haveStale {
		t.Fatalf("setup findings wrong (errdrop=%v stale=%v): %v", haveErrdrop, haveStale, findings)
	}
	n, err := ApplyFixes(root, findings)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("applied %d fixes, want 2", n)
	}
	data, err := os.ReadFile(filepath.Join(root, "internal", "use", "use.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if strings.Contains(got, "sdflint:allow") {
		t.Errorf("stale directive not deleted:\n%s", got)
	}
	if !strings.Contains(got, "if err := ccdb.Sync(); err != nil {\n\t\treturn err\n\t}") {
		t.Errorf("dropped error not wrapped:\n%s", got)
	}
	after, err := Run(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 0 {
		t.Errorf("tree not clean after fixes: %v", after)
	}
}

// TestMainOutputModes drives the new flags through the command entry
// point: -json emits a parseable array, -sarif writes a report file,
// and both agree with the text findings on exit status.
func TestMainOutputModes(t *testing.T) {
	root := fixtureRoot(t)
	sarif := filepath.Join(t.TempDir(), "out.sarif")
	var out, errb bytes.Buffer
	if code := Main(root, []string{"-json", "-sarif", sarif, "./internal/erruse"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.HasPrefix(strings.TrimSpace(out.String()), "[") ||
		!strings.Contains(out.String(), `"analyzer": "errdrop"`) {
		t.Errorf("-json output malformed:\n%s", out.String())
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"version": "2.1.0"`, `"ruleId": "errdrop"`, `"uri": "internal/erruse/erruse.go"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF report missing %s", want)
		}
	}

	out.Reset()
	errb.Reset()
	if code := Main(root, []string{"-json", "./internal/clean"}, &out, &errb); code != 0 {
		t.Fatalf("clean package: exit %d, want 0", code)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}
