package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// errDropPkgSuffixes names the packages whose error results must not
// be discarded (module-relative): the crash-consistency-critical path
// — the CCDB journal/WAL and storage path, raw NAND media
// persistence, the flash-channel recovery machinery, and the device
// layer that fronts them — where the whole acked==journaled contract
// (DESIGN.md "Crash consistency & recovery") flows through the error
// results (a dropped error means an unacknowledged-but-assumed write,
// a torn block treated as durable, or a recovery scan that silently
// lost state); and the metrics exporters, whose write errors are the
// only signal that an export is truncated — a half-written snapshot
// with a clean exit would silently break the byte-identity contract.
var errDropPkgSuffixes = []string{
	"internal/ccdb",
	"internal/nand",
	"internal/flashchan",
	"internal/core",
	"internal/metrics",
}

// ErrDrop flags discarded error results from the critical packages: a
// call used as a bare statement, spawned via go/defer, or assigned
// with the error position blanked (`_ =`, `v, _ :=`). Errors that are
// bound to a variable are out of scope — whether the variable is then
// handled sensibly is a judgment the reviewer makes, not this tool.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarding error results from ccdb/nand/flashchan/core/metrics persistence and export APIs",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal")
	},
	Run: runErrDrop,
}

func runErrDrop(f *File) []Finding {
	var findings []Finding
	m := f.Module
	report := func(call *ast.CallExpr, how string, fix *textFix) {
		fn := criticalErrFunc(m, call)
		if fn == nil {
			return
		}
		fd := f.finding("errdrop", call.Pos(),
			"%s discards the error from %s.%s; the crash-consistency contract "+
				"(acked == journaled, DESIGN.md §11) depends on these errors being "+
				"handled — check it, or waive with //sdflint:allow errdrop <reason>",
			how, fn.Pkg().Name(), fn.Name())
		fd.fix = fix
		findings = append(findings, fd)
	}
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				// Keep descending: function literals in the call's
				// arguments carry statements of their own.
				report(call, "call statement", errDropFix(f, call))
			}
		case *ast.GoStmt:
			report(st.Call, "go statement", nil)
		case *ast.DeferStmt:
			report(st.Call, "defer statement", nil)
		case *ast.AssignStmt:
			findings = append(findings, checkErrAssign(f, st)...)
		}
		return true
	})
	return findings
}

// checkErrAssign flags assignments that blank the error position of a
// critical call: `_ = f()`, `v, _ := g()`.
func checkErrAssign(f *File, as *ast.AssignStmt) []Finding {
	var findings []Finding
	m := f.Module
	// Multi-value form: one call, results spread over the LHS.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn := criticalErrFunc(m, call)
		if fn == nil {
			return nil
		}
		if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
			findings = append(findings, f.finding("errdrop", call.Pos(),
				"assignment blanks the error from %s.%s; the crash-consistency contract "+
					"(acked == journaled, DESIGN.md §11) depends on these errors being "+
					"handled — bind and check it, or waive with //sdflint:allow errdrop <reason>",
				fn.Pkg().Name(), fn.Name()))
		}
		return findings
	}
	// Parallel form: position i of the LHS matches position i of the RHS.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		fn := criticalErrFunc(m, call)
		if fn == nil {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			findings = append(findings, f.finding("errdrop", call.Pos(),
				"assignment blanks the error from %s.%s; the crash-consistency contract "+
					"(acked == journaled, DESIGN.md §11) depends on these errors being "+
					"handled — bind and check it, or waive with //sdflint:allow errdrop <reason>",
				fn.Pkg().Name(), fn.Name()))
		}
	}
	return findings
}

// criticalErrFunc resolves a call to a function in one of the critical
// packages whose final result is an error, or nil.
func criticalErrFunc(m *Module, call *ast.CallExpr) *types.Func {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = m.objectOf(fun).(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := m.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = m.objectOf(fun.Sel).(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	critical := false
	for _, suffix := range errDropPkgSuffixes {
		if strings.HasSuffix(path, suffix) {
			critical = true
			break
		}
	}
	if !critical {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return nil
	}
	return fn
}

// errDropFix builds the safe suggested edit for a bare call statement
// whose enclosing function returns exactly one error: wrap the call in
// `if err := ...; err != nil { return err }`. Any other shape gets no
// automatic fix — inventing zero values for extra results is not
// "safe".
func errDropFix(f *File, call *ast.CallExpr) *textFix {
	encl := enclosingFuncType(f, call.Pos())
	if encl == nil || encl.Results == nil || len(encl.Results.List) != 1 {
		return nil
	}
	res := encl.Results.List[0]
	if len(res.Names) > 1 {
		return nil
	}
	if id, ok := res.Type.(*ast.Ident); !ok || id.Name != "error" {
		return nil
	}
	start := f.Module.Fset.Position(call.Pos())
	end := f.Module.Fset.Position(call.End())
	if start.Offset < 0 || end.Offset <= start.Offset {
		return nil
	}
	// The replacement is assembled at apply time from the file's own
	// bytes: the call text is spliced into the wrapper, and the inner
	// lines reuse the statement's own indentation plus one tab.
	return &textFix{
		path:  f.Path,
		start: start.Offset,
		end:   end.Offset,
		kind:  fixWrapErrReturn,
	}
}

// enclosingFuncType returns the type of the innermost function
// declaration or literal containing pos.
func enclosingFuncType(f *File, pos token.Pos) *ast.FuncType {
	var found *ast.FuncType
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if n == nil || !posWithin(pos, n) {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			found = fn.Type
		case *ast.FuncLit:
			found = fn.Type
		}
		return true
	})
	return found
}
