package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanLeak flags trace spans that are begun on some path but not ended
// on every path out of the function. A leaked span never emits its
// KindSpanEnd event, so the trace stream — and with it the SHA-256
// replay fingerprint and every per-stage latency summary — silently
// diverges from the run's real shape; worse, whether the leak happens
// can depend on which branch a fault lands on, turning one missed End
// into a trace-hash heisenbug.
//
// The analysis is flow-sensitive over the AST and deliberately
// conservative in the "assume handled" direction everywhere the span
// value escapes the function's own control: a span that is returned,
// stored (p.SetSpan, a struct field), passed to another function, or
// captured by a function literal (the deferred-closure and
// env.Schedule(d, func(){ t.End(...) }) idioms) is considered handled
// from that statement on. What it refuses to accept is a path that
// reaches a return — or falls off the end of the function — while the
// span value is still confined to a local variable that nothing has
// ended.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "flag trace spans begun on a path but not ended on every return path",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal")
	},
	Run: runSpanLeak,
}

func runSpanLeak(f *File) []Finding {
	var findings []Finding
	// Every function-like body is analyzed independently: spans begun
	// inside a closure must be closed (or escape) within that closure.
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				findings = append(findings, checkSpanBodies(f, fn.Body)...)
			}
		case *ast.FuncLit:
			findings = append(findings, checkSpanBodies(f, fn.Body)...)
		}
		return true
	})
	return findings
}

// checkSpanBodies finds span-begin assignments that are direct
// statements of body (at any block depth, but not inside nested
// function literals — those are analyzed on their own) and runs the
// path check for each.
func checkSpanBodies(f *File, body *ast.BlockStmt) []Finding {
	var findings []Finding
	m := f.Module
	var scanStmts func(list []ast.Stmt)
	var scanStmt func(stmt ast.Stmt)
	scanStmt = func(stmt ast.Stmt) {
		switch st := stmt.(type) {
		case *ast.BlockStmt:
			scanStmts(st.List)
		case *ast.IfStmt:
			scanStmts(st.Body.List)
			if st.Else != nil {
				scanStmt(st.Else)
			}
		case *ast.ForStmt:
			scanStmts(st.Body.List)
		case *ast.RangeStmt:
			scanStmts(st.Body.List)
		case *ast.SwitchStmt:
			scanClauses(scanStmts, st.Body.List)
		case *ast.TypeSwitchStmt:
			scanClauses(scanStmts, st.Body.List)
		case *ast.SelectStmt:
			scanClauses(scanStmts, st.Body.List)
		case *ast.LabeledStmt:
			scanStmt(st.Stmt)
		}
	}
	scanStmts = func(list []ast.Stmt) {
		for i, stmt := range list {
			if as, ok := stmt.(*ast.AssignStmt); ok {
				if obj := spanBeginTarget(m, as); obj != nil {
					if fd := checkSpanPaths(f, obj, as, list[i+1:]); fd != nil {
						findings = append(findings, *fd)
					}
				}
				continue
			}
			scanStmt(stmt)
		}
	}
	scanStmts(body.List)
	return findings
}

// scanClauses applies fn to the body of each case/comm clause.
func scanClauses(fn func([]ast.Stmt), clauses []ast.Stmt) {
	for _, c := range clauses {
		switch cc := c.(type) {
		case *ast.CaseClause:
			fn(cc.Body)
		case *ast.CommClause:
			fn(cc.Body)
		}
	}
}

// spanBeginTarget reports the object bound by `x := c.Begin(...)` on a
// *trace.Collector, for single-target assignments only.
func spanBeginTarget(m *Module, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return nil
	}
	if !isTraceCollector(m.typeOf(sel.X)) {
		return nil
	}
	return m.objectOf(id)
}

// isTraceCollector reports whether t is (a pointer to) trace.Collector,
// matched by type and package name so the fixture module and the real
// module both qualify.
func isTraceCollector(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Collector" && obj.Pkg() != nil && obj.Pkg().Name() == "trace"
}

// checkSpanPaths walks the statements after the Begin assignment and
// reports a finding (anchored at the Begin, so one suppression line
// covers it) if some path exits with the span still open. "Handled"
// at a statement means the statement references the span variable at
// all — an End call, a defer, an escape, a closure capture; the check
// is purely about *reaching an exit with no reference on the path*.
func checkSpanPaths(f *File, span types.Object, begin *ast.AssignStmt, rest []ast.Stmt) *Finding {
	leak := spanScan{f: f, span: span}
	covered := leak.scanList(rest, false)
	if !covered && leak.leakPos == token.NoPos {
		// Fell off the end of the enclosing block with the span open.
		leak.leakPos = begin.End()
	}
	if leak.leakPos == token.NoPos {
		return nil
	}
	_, line, _ := f.Pos(leak.leakPos)
	fd := f.finding("spanleak", begin.Pos(),
		"span %q is begun here but not ended on every path (open at line %d); "+
			"a leaked span never emits its end event, silently corrupting the trace "+
			"hash — End it on all paths, defer the End, or hand the span off",
		span.Name(), line)
	return &fd
}

// spanScan is the per-span path walker. leakPos records the first exit
// reached with the span open (NoPos = none found yet).
type spanScan struct {
	f       *File
	span    types.Object
	leakPos token.Pos
}

// scanList walks one statement list with the given entry coverage and
// returns whether the span is covered at fall-through.
func (s *spanScan) scanList(list []ast.Stmt, covered bool) bool {
	for _, stmt := range list {
		covered = s.scanStmt(stmt, covered)
	}
	return covered
}

// scanStmt processes one statement, recording leaks at uncovered
// returns, and returns the coverage state after it.
func (s *spanScan) scanStmt(stmt ast.Stmt, covered bool) bool {
	switch st := stmt.(type) {
	case *ast.ReturnStmt:
		if s.uses(st) {
			return true // the span is returned: handed off
		}
		if !covered {
			s.leak(st.Pos())
		}
		return covered
	case *ast.IfStmt:
		cond := covered || s.usesExpr(st.Cond) || (st.Init != nil && s.uses(st.Init))
		thenCov := s.scanList(st.Body.List, cond)
		elseCov := cond
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseCov = s.scanList(e.List, cond)
		case *ast.IfStmt:
			elseCov = s.scanStmt(e, cond)
		case nil:
			elseCov = cond
		}
		// A branch that never falls through (ends in return/panic) was
		// checked internally; coverage of the fall-through is the meet
		// of the branches that do fall through. Treating a terminating
		// branch as covered keeps the meet simple and errs toward the
		// happy path being checked by the other branch.
		if terminates(st.Body) {
			thenCov = true
		}
		if eb, ok := st.Else.(*ast.BlockStmt); ok && terminates(eb) {
			elseCov = true
		}
		return thenCov && elseCov
	case *ast.ForStmt:
		bodyCov := s.scanList(st.Body.List, covered)
		return covered || (bodyCov && s.usesNode(st.Body))
	case *ast.RangeStmt:
		bodyCov := s.scanList(st.Body.List, covered)
		return covered || (bodyCov && s.usesNode(st.Body))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return s.scanBranches(stmt, covered)
	case *ast.BlockStmt:
		return s.scanList(st.List, covered)
	case *ast.DeferStmt:
		if s.uses(st) {
			return true // deferred End/closure covers every later exit
		}
		return covered
	case *ast.LabeledStmt:
		return s.scanStmt(st.Stmt, covered)
	default:
		// Any other statement that references the span — an End call,
		// an escape into another call, a closure capture, a store —
		// covers the path from here on.
		if s.uses(stmt) {
			return true
		}
		return covered
	}
}

// scanBranches handles switch/select: each branch is checked with the
// entry state; fall-through is covered only when every branch covers
// and (for switches) a default branch exists.
func (s *spanScan) scanBranches(stmt ast.Stmt, covered bool) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
	}
	all := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		}
		if !s.scanList(body, covered) {
			all = false
		}
	}
	if _, isSelect := stmt.(*ast.SelectStmt); isSelect {
		hasDefault = true // a select blocks until some case runs
	}
	return covered || (all && hasDefault && len(clauses) > 0)
}

// leak records the first uncovered exit.
func (s *spanScan) leak(pos token.Pos) {
	if s.leakPos == token.NoPos {
		s.leakPos = pos
	}
}

func (s *spanScan) uses(n ast.Node) bool     { return s.usesNode(n) }
func (s *spanScan) usesExpr(e ast.Expr) bool { return e != nil && s.usesNode(e) }

// usesNode reports whether the subtree references the span object.
func (s *spanScan) usesNode(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if s.f.Module.objectOf(id) == s.span {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminates reports whether a block always transfers control out
// (ends in return, panic, or a terminating statement) — a syntactic
// approximation of go/types' terminating-statement rules.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto leave the block
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
