package lint

import (
	"go/ast"
)

// globalRandFuncs is the set of package-level math/rand functions that
// draw from the process-global, racily shared source. Constructors
// (New, NewSource, NewZipf) and the *rand.Rand methods reached through
// them are the sanctioned path and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// SeededRand forbids the package-level math/rand functions in non-test
// internal/ code. Those draw from a global source that is seeded once
// per process and shared across goroutines, so two runs (or two tests
// in one binary) interleave differently; determinism requires an
// explicit *rand.Rand built from a config-threaded seed, the way
// internal/nand and internal/workload already do.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid package-level math/rand functions in non-test internal/ code",
	Applies: func(f *File) bool {
		return !f.IsTest() && f.In("internal")
	},
	Run: runSeededRand,
}

func runSeededRand(f *File) []Finding {
	var findings []Finding
	check := func(pkgPath string) {
		f.eachPkgRef(pkgPath, func(sel *ast.SelectorExpr) {
			if !globalRandFuncs[sel.Sel.Name] {
				return
			}
			findings = append(findings, f.finding("seededrand", sel.Pos(),
				"rand.%s uses the global math/rand source; thread a seeded *rand.Rand "+
					"(rand.New(rand.NewSource(seed))) through the config instead",
				sel.Sel.Name))
		})
	}
	check("math/rand")
	check("math/rand/v2")
	return findings
}
