package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the conservative static call graph the whole-program
// analyzers (parkpath, selectnondet) run over. The graph is computed
// once per Module, from the same type information the per-file
// analyzers use, and degrades gracefully: a package that failed to
// type-check simply contributes no nodes, so its functions are neither
// sources nor targets of edges.
//
// Conservatism, precisely:
//
//   - Direct calls to package-level functions and concrete methods are
//     resolved exactly through go/types.
//   - Calls through an interface method add edges to every module
//     method with the same name whose receiver type implements the
//     interface (class-hierarchy style over-approximation).
//   - Calls through plain function values (parameters, struct fields,
//     closures bound to variables) are not resolved; an analyzer that
//     must not miss anything has to treat those by other means (the
//     inline-callback scanners do).
//
// Every edge remembers whether its call site sits inside a detached
// execution context: the body of a raw go statement, or a function
// literal handed to (*sim.Env).Go, (*sim.Env).Schedule, or
// (*sim.Timeline).OccupyAsync. Code in those literals does not run
// synchronously in the enclosing function's process, so path-sensitive
// analyses (parkpath) skip detached edges while whole-program ones
// (selectnondet's goroutine tracking) keep them.

// funcNode is one declared function or method in the module.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl
	file *File
	// edges lists static call sites in source order.
	edges []callEdge
	// blockSites are direct blocking constructs (a blocking *sim.Proc
	// method, or any call passing a *sim.Proc) outside detached
	// contexts, in source order.
	blockSites []blockSite
	// spawnSites are raw go statements in the body that are not waived
	// by an //sdflint:allow rawgo directive (waived ones are approved
	// worker pools), in source order.
	spawnSites []token.Pos
}

// callEdge is one resolved call site.
type callEdge struct {
	callee   *funcNode
	pos      token.Pos
	detached bool // call site runs in a detached context (go stmt / Env.Go / inline callback)
	iface    bool // resolved conservatively through an interface method
}

// blockSite is one direct blocking construct inside a function body.
type blockSite struct {
	pos  token.Pos
	desc string // e.g. "Proc.Wait" or "Resource.Acquire (takes *sim.Proc)"
}

// callGraph is the whole-module graph, memoized on the Module.
type callGraph struct {
	nodes  map[*types.Func]*funcNode
	order  []*funcNode // insertion order: packages sorted, files sorted, decls in source order
	module *Module

	blockMemo  map[*funcNode][]chainStep
	blockState map[*funcNode]int
	spawnMemo  map[*funcNode][]chainStep
	spawnState map[*funcNode]int
}

// graph returns the module's call graph, building it on first use.
func (m *Module) graph() *callGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

func buildCallGraph(m *Module) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*funcNode), module: m}
	// Pass 1: create a node per declared function with a body.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			if f.IsTest() {
				continue // test files are not type-checked
			}
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := m.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue // package did not type-check
				}
				n := &funcNode{obj: obj, decl: fd, file: f}
				g.nodes[obj] = n
				g.order = append(g.order, n)
			}
		}
	}
	// Pass 2: walk bodies for edges, block sites, and spawn sites.
	for _, n := range g.order {
		g.walkBody(n)
	}
	return g
}

// walkBody fills in n.edges, n.blockSites and n.spawnSites.
func (g *callGraph) walkBody(n *funcNode) {
	rawgoWaived := directiveLines(n.file, "rawgo")
	var walk func(node ast.Node, detached bool)
	walk = func(node ast.Node, detached bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.GoStmt:
				_, line, _ := n.file.Pos(s.Pos())
				if d := rawgoWaived[line]; d != nil {
					// The waiver is consumed even outside rawgo's lexical
					// scope, where no rawgo finding exists to consume it:
					// it is what keeps this spawn out of selectnondet's
					// chains, so it is not stale.
					d.used = true
				} else {
					n.spawnSites = append(n.spawnSites, s.Pos())
				}
				// The goroutine body is a detached context: record its
				// edges (a spawned goroutine still calls what it calls)
				// but never its blocking constructs.
				walk(s.Call, true)
				return false
			case *ast.CallExpr:
				g.addCall(n, s, detached, walk)
				return false
			}
			return true
		})
	}
	walk(n.decl.Body, false)
}

// addCall records one call expression: its resolved edges, whether it
// blocks directly, and recurses into its arguments with the right
// detachment for callback literals.
func (g *callGraph) addCall(n *funcNode, call *ast.CallExpr, detached bool, walk func(ast.Node, bool)) {
	m := g.module

	// Descend into the function expression and arguments first,
	// marking function literals handed to detaching entry points.
	walk(call.Fun, detached)
	detachIdx := -1
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if idx, ok := inlineCallbackArg(m, sel, call); ok {
			detachIdx = idx
		}
		if sel.Sel.Name == "Go" {
			if recv := m.typeOf(sel.X); recv == nil || isSimNamed(recv, "Env") {
				detachIdx = 1 // (*sim.Env).Go(name, fn)
			}
		}
	}
	for i, arg := range call.Args {
		if i == detachIdx {
			if lit, ok := arg.(*ast.FuncLit); ok {
				walk(lit.Body, true)
				continue
			}
		}
		walk(arg, detached)
	}

	// Direct blocking constructs, outside detached contexts only.
	if !detached {
		if site, ok := blockingCallSite(m, call); ok {
			n.blockSites = append(n.blockSites, site)
		}
	}

	// Resolve the callee to module nodes.
	for _, res := range g.resolve(call) {
		n.edges = append(n.edges, callEdge{callee: res.node, pos: call.Pos(), detached: detached, iface: res.iface})
	}
}

// blockingCallSite reports whether the call parks the current process:
// a blocking *sim.Proc method, or any call that passes a *sim.Proc.
func blockingCallSite(m *Module, call *ast.CallExpr) (blockSite, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if blockingProcMethods[sel.Sel.Name] && isSimNamed(m.typeOf(sel.X), "Proc") {
			return blockSite{pos: call.Pos(), desc: "Proc." + sel.Sel.Name}, true
		}
	}
	for _, arg := range call.Args {
		if t := m.typeOf(arg); t != nil && isSimProcPtr(t) {
			return blockSite{pos: call.Pos(), desc: callDesc(call) + " (takes *sim.Proc)"}, true
		}
	}
	return blockSite{}, false
}

// callDesc renders a readable name for a call expression's target.
func callDesc(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "call"
}

// resolved is one possible callee of a call site.
type resolved struct {
	node  *funcNode
	iface bool
}

// resolve maps a call expression to its possible module-local callees.
func (g *callGraph) resolve(call *ast.CallExpr) []resolved {
	m := g.module
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := m.objectOf(fun).(*types.Func); ok {
			if n := g.nodes[fn]; n != nil {
				return []resolved{{node: n}}
			}
		}
	case *ast.SelectorExpr:
		// Conversions and package-qualified functions resolve through
		// Uses; concrete and interface methods through Selections.
		if sel, ok := m.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return g.resolveInterface(fn, sel.Recv())
			}
			if n := g.nodes[fn]; n != nil {
				return []resolved{{node: n}}
			}
			return nil
		}
		if fn, ok := m.objectOf(fun.Sel).(*types.Func); ok {
			if n := g.nodes[fn]; n != nil {
				return []resolved{{node: n}}
			}
		}
	}
	return nil
}

// resolveInterface returns every module method with the interface
// method's name whose receiver type implements the interface.
func (g *callGraph) resolveInterface(ifn *types.Func, recv types.Type) []resolved {
	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []resolved
	for _, n := range g.order { // stable: insertion order
		sig, ok := n.obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || n.obj.Name() != ifn.Name() {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) {
			out = append(out, resolved{node: n, iface: true})
		} else if _, isPtr := rt.(*types.Pointer); !isPtr && types.Implements(types.NewPointer(rt), iface) {
			out = append(out, resolved{node: n, iface: true})
		}
	}
	return out
}

// chainStep is one hop of an explanation chain.
type chainStep struct {
	name string // function the hop enters, or the blocking construct
	pos  token.Pos
}

// blockChain returns a sample call chain from n to a direct blocking
// construct through non-detached edges, or nil if no such path exists.
// The result is memoized and deterministic: edges are explored in
// source order.
func (g *callGraph) blockChain(n *funcNode) []chainStep {
	if g.blockMemo == nil {
		g.blockMemo = make(map[*funcNode][]chainStep)
		g.blockState = make(map[*funcNode]int)
	}
	return g.blockChainVisit(n)
}

const (
	visitIdle = iota
	visitActive
	visitDone
)

func (g *callGraph) blockChainVisit(n *funcNode) []chainStep {
	if n.file.In("internal/sim") {
		// The scheduler's own bodies pass *sim.Proc around constantly —
		// to wake processes, not to park them. Blocking enters sim only
		// through call sites outside it (a Proc method, a call passing
		// the caller's own Proc), and those are flagged in the caller.
		return nil
	}
	switch g.blockState[n] {
	case visitActive:
		return nil // cycle: resolved by the outer frame
	case visitDone:
		return g.blockMemo[n]
	}
	g.blockState[n] = visitActive
	var chain []chainStep
	if len(n.blockSites) > 0 {
		chain = []chainStep{{name: n.blockSites[0].desc, pos: n.blockSites[0].pos}}
	} else {
		for _, e := range n.edges {
			if e.detached {
				continue
			}
			if sub := g.blockChainVisit(e.callee); sub != nil {
				chain = append([]chainStep{{name: funcName(e.callee.obj), pos: e.pos}}, sub...)
				break
			}
		}
	}
	g.blockState[n] = visitDone
	g.blockMemo[n] = chain
	return chain
}

// spawnChain returns a sample call chain from n to an unwaived raw go
// statement, through any edges, skipping internal/sim (the one place
// the primitive is the deterministic implementation). Nil if none.
func (g *callGraph) spawnChain(n *funcNode) []chainStep {
	if g.spawnMemo == nil {
		g.spawnMemo = make(map[*funcNode][]chainStep)
		g.spawnState = make(map[*funcNode]int)
	}
	return g.spawnChainVisit(n)
}

func (g *callGraph) spawnChainVisit(n *funcNode) []chainStep {
	if n.file.In("internal/sim") {
		return nil
	}
	switch g.spawnState[n] {
	case visitActive:
		return nil
	case visitDone:
		return g.spawnMemo[n]
	}
	g.spawnState[n] = visitActive
	var chain []chainStep
	if len(n.spawnSites) > 0 {
		chain = []chainStep{{name: "go statement", pos: n.spawnSites[0]}}
	} else {
		for _, e := range n.edges {
			if sub := g.spawnChainVisit(e.callee); sub != nil {
				chain = append([]chainStep{{name: funcName(e.callee.obj), pos: e.pos}}, sub...)
				break
			}
		}
	}
	g.spawnState[n] = visitDone
	g.spawnMemo[n] = chain
	return chain
}

// funcName renders a function or method name for chain messages:
// "Pkg.Func" or "(*Type).Method".
func funcName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			if named, ok := p.Elem().(*types.Named); ok {
				return "(*" + named.Obj().Name() + ")." + fn.Name()
			}
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// directiveLines returns the lines in f covered by a valid
// //sdflint:allow directive for the named analyzer (the directive's
// own line and the line below, matching suppression scope), mapped to
// the directive so callers can mark it used.
func directiveLines(f *File, analyzer string) map[int]*directive {
	lines := make(map[int]*directive)
	for _, d := range fileDirectives(f) {
		if d.d != nil && d.d.Analyzer == analyzer {
			lines[d.line] = d
			lines[d.line+1] = d
		}
	}
	return lines
}
