// Package pool is a module-root helper outside rawgo's lexical scope
// (internal/ minus internal/sim): its raw go statements are invisible
// to the per-file analyzer and reachable only through the call graph,
// which is exactly the hole selectnondet closes.
package pool

// Detach runs fn on a bare host goroutine.
func Detach(fn func()) {
	go fn()
}

// Approved runs fn on a waived worker goroutine — the approved-pool
// pattern: the waiver keeps the spawn out of selectnondet's chains.
func Approved(fn func()) {
	//sdflint:allow rawgo fixture approved worker pool
	go fn()
}
