// Command fixturecmd shows that cmd/ binaries run in wall-clock land:
// nowallclock and seededrand do not apply here.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Intn(10))
}
