// Package seluse exercises the selectnondet analyzer: multi-case
// selects race in the host runtime, and call chains can reach raw go
// statements that live outside rawgo's lexical scope.
package seluse

import "fixture/pool"

// BadSelect races two channels; when both are ready the runtime picks
// pseudorandomly, so replays diverge.
func BadSelect(a, b chan int) int {
	select { // want(selectnondet)
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// GoodSingleCase has nothing to race: one comm case plus default.
func GoodSingleCase(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// BadEscape reaches a raw go statement through a module-root helper
// rawgo never sees.
func BadEscape(fn func()) {
	pool.Detach(fn) // want(selectnondet)
}

// GoodApproved reaches only a waived spawn — an approved worker pool.
func GoodApproved(fn func()) {
	pool.Approved(fn)
}

// Waived shows the suppressed form with its mandatory reason.
func Waived(fn func()) {
	//sdflint:allow selectnondet fixture demonstrating a waiver
	pool.Detach(fn)
}
