// Package nand stands in for raw media persistence; like the ccdb
// stub, its "internal/nand" suffix makes it errdrop-critical.
package nand

// ProgramPage persists one page.
func ProgramPage(block, page int, data []byte) error { return nil }

// ReadPage reads one page back.
func ReadPage(block, page int) ([]byte, error) { return nil, nil }
