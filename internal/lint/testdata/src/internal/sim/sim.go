// Package sim stands in for the real scheduler package: the one place
// where the raw go primitive is legal, because this is where the
// deterministic handoff is implemented. The types below mirror just
// enough of the kernel's surface (Env, Proc, Timeline, Resource) for
// the inlinepark fixtures to type-check.
package sim

// Go runs fn as a (fixture) scheduler-owned process.
func Go(fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}

// Env is the fixture scheduler.
type Env struct{}

// Schedule runs fn inline on the scheduler goroutine after d ticks.
func (e *Env) Schedule(d int, fn func()) { fn() }

// Go spawns fn as a fresh process, where blocking is legal.
func (e *Env) Go(name string, fn func(p *Proc)) { fn(&Proc{}) }

// Proc is one simulated process.
type Proc struct{}

// Wait parks the process for d ticks.
func (p *Proc) Wait(d int) {}

// WaitUntil parks the process until the absolute instant at.
func (p *Proc) WaitUntil(at int) {}

// Await parks the process until s fires.
func (p *Proc) Await(s *Signal) {}

// Join parks until other completes.
func (p *Proc) Join(other *Proc) {}

// Signal is a broadcast wakeup.
type Signal struct{}

// Timeline is a timed-occupancy resource.
type Timeline struct{}

// Occupy parks p until its claim completes.
func (t *Timeline) Occupy(p *Proc, hold int) {}

// OccupyAsync claims hold and runs fn inline at the claim's end.
func (t *Timeline) OccupyAsync(hold int, fn func()) { fn() }

// Reserve claims hold without parking.
func (t *Timeline) Reserve(hold int) (start, end int) { return 0, 0 }

// Resource is a FIFO counted resource.
type Resource struct{}

// Acquire parks p until a unit is free.
func (r *Resource) Acquire(p *Proc) {}

// Release frees a unit.
func (r *Resource) Release() {}
