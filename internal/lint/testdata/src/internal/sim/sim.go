// Package sim stands in for the real scheduler package: the one place
// where the raw go primitive is legal, because this is where the
// deterministic handoff is implemented.
package sim

// Go runs fn as a (fixture) scheduler-owned process.
func Go(fn func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
