// Package randuse exercises the seededrand analyzer: package-level
// math/rand draws are violations, explicit seeded *rand.Rand streams
// are the sanctioned replacement.
package randuse

import "math/rand"

func Global() int {
	return rand.Intn(10) // want(seededrand)
}

func GlobalFloat() float64 {
	return rand.Float64() // want(seededrand)
}

func Reseed() {
	rand.Seed(42) // want(seededrand)
}

func Shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want(seededrand)
}

// Seeded is the correct pattern: a stream built from a threaded seed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

//sdflint:allow seededrand jitter for a host-side poller, not on the replayed path
func Allowed() int { return rand.Int() }
