// Package clockuse exercises the nowallclock analyzer: wall-clock
// reads and timers are violations, pure time.Duration arithmetic is
// not, and suppressions with a reason are honored.
package clockuse

import "time"

// Tick is fine: Duration values are arithmetic, not clock reads.
const Tick = 10 * time.Millisecond

func Deadline() time.Time {
	return time.Now() // want(nowallclock)
}

func Pause() {
	time.Sleep(Tick) // want(nowallclock)
}

func Timers() {
	t := time.NewTimer(time.Second) // want(nowallclock)
	<-t.C
	ch := time.After(time.Second) // want(nowallclock)
	<-ch
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want(nowallclock)
}

//sdflint:allow nowallclock host-side startup stamp, never fed into virtual time
func Allowed() time.Time { return time.Now() }

func AllowedInline() time.Time {
	return time.Now() //sdflint:allow nowallclock log decoration only
}
