package clockuse

import (
	"testing"
	"time"
)

// Tests run on the host clock and are exempt from nowallclock.
func TestWallClockAllowedInTests(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("clock")
	}
}
