// Package metricuse exercises the metrics-aware analyzer rules:
// registry callbacks (GaugeFunc/CounterFunc) are invoked inline at
// scrape and export time — sometimes outside any process, after the
// run — so they must be park-free reads, and the exporters' write
// errors are the only signal that an export is truncated, so they
// must be bound.
package metricuse

import (
	"fixture/internal/metrics"
	"fixture/internal/sim"
)

// BadGaugePark parks a process inside a gauge callback.
func BadGaugePark(reg *metrics.Registry, p *sim.Proc) {
	reg.GaugeFunc("queue_depth", func() float64 {
		p.Wait(1) // want(inlinepark)
		return 0
	})
}

// BadCounterAcquire hands a *sim.Proc to a blocking API inside a
// counter callback.
func BadCounterAcquire(reg *metrics.Registry, res *sim.Resource, p *sim.Proc) {
	reg.CounterFunc("ops_total", func() int64 {
		res.Acquire(p) // want(inlinepark)
		return 0
	})
}

// pump stores the handle it blocks on, so no *sim.Proc crosses the
// call written in the callback — only the call graph sees the park.
type pump struct {
	proc *sim.Proc
}

func (w *pump) drain() {
	w.proc.Wait(1)
}

// BadTransitive blocks one frame below a gauge callback.
func BadTransitive(reg *metrics.Registry, w *pump) {
	reg.GaugeFunc("backlog", func() float64 {
		w.drain() // want(parkpath)
		return 0
	})
}

// BadExport discards the exporter's write error.
func BadExport(reg *metrics.Registry) {
	metrics.WritePrometheus(reg) // want(errdrop)
}

// unrelated has a same-named method; its callbacks are not registry
// callbacks and may block.
type unrelated struct{}

func (unrelated) GaugeFunc(name string, fn func() float64) {}

// Good shows the legal shapes: park-free reads in callbacks, the
// same-named method on an unrelated receiver, and a bound export
// error.
func Good(reg *metrics.Registry, u unrelated, p *sim.Proc, v *int64) error {
	reg.GaugeFunc("free_blocks", func() float64 { return float64(*v) })
	reg.CounterFunc("reads_total", func() int64 { return *v })
	u.GaugeFunc("not_a_registry", func() float64 {
		p.Wait(1) // unrelated receiver: blocking is out of scope
		return 0
	})
	return metrics.WritePrometheus(reg)
}

// Waived shows the suppressed form with its mandatory reason.
func Waived(reg *metrics.Registry, p *sim.Proc) {
	reg.GaugeFunc("waived", func() float64 {
		//sdflint:allow inlinepark fixture demonstrating a waiver
		p.Wait(1)
		return 0
	})
}
