// Package metrics stands in for the real metrics registry: enough of
// the surface (Registry, the callback-backed instruments, and an
// error-returning exporter) for the inlinepark, parkpath and errdrop
// fixtures to type-check.
package metrics

// Label is one name=value dimension on a series.
type Label struct{ Key, Value string }

// Registry holds labeled instruments.
type Registry struct{}

// GaugeFunc registers a gauge whose value is read by calling fn
// inline at scrape and export time; fn must not park.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {}

// CounterFunc registers a counter whose total is read by calling fn
// inline at scrape and export time; fn must not park.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {}

// WritePrometheus writes a text snapshot of the registries and
// reports the writer's error.
func WritePrometheus(regs ...*Registry) error { return nil }
