// Package badsup exercises the suppression parser's failure modes:
// a directive with no reason, and one naming an unknown analyzer.
// Malformed directives are findings themselves and waive nothing.
package badsup

import "time"

//sdflint:allow nowallclock
func MissingReason() time.Time { return time.Now() } // want-1(sdflint) want(nowallclock)

//sdflint:allow notananalyzer because I said so
func UnknownAnalyzer() time.Time { return time.Now() } // want-1(sdflint) want(nowallclock)
