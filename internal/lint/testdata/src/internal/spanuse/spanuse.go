// Package spanuse exercises the spanleak analyzer: a span begun on a
// path must be ended, handed off, or captured on every path out of the
// enclosing function — a leaked span never emits its end event and
// silently corrupts the trace hash.
package spanuse

import (
	"errors"

	"fixture/internal/sim"
	"fixture/internal/trace"
)

var errBoom = errors.New("boom")

// BadReturnPath leaks the span on the early error return.
func BadReturnPath(c *trace.Collector, fail bool) error {
	span := c.Begin(0, 0, "op", trace.PhaseFlash) // want(spanleak)
	if fail {
		return errBoom
	}
	c.End(1, span)
	return nil
}

// BadFallOff ends the span on one branch only and falls off the end
// of the function with it open on the other.
func BadFallOff(c *trace.Collector, n int) {
	span := c.Begin(0, 0, "op", trace.PhaseFlash) // want(spanleak)
	if n > 0 {
		c.End(1, span)
	}
}

// BadInClosure leaks inside a spawned process body: each function
// literal is checked on its own.
func BadInClosure(env *sim.Env, c *trace.Collector, fail bool) {
	env.Go("worker", func(p *sim.Proc) {
		span := c.Begin(0, 0, "op", trace.PhaseFlash) // want(spanleak)
		if fail {
			return
		}
		c.End(1, span)
	})
}

// GoodLinear ends the span on the only path.
func GoodLinear(c *trace.Collector) {
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	c.End(1, span)
}

// GoodDefer covers every later exit with a deferred End.
func GoodDefer(c *trace.Collector, fail bool) error {
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	defer func() { c.End(1, span) }()
	if fail {
		return errBoom
	}
	return nil
}

// GoodBothBranches ends the span before each return.
func GoodBothBranches(c *trace.Collector, fail bool) error {
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	if fail {
		c.End(1, span)
		return errBoom
	}
	c.End(1, span)
	return nil
}

// GoodHandoffClosure hands the span to a scheduled callback — the
// deferred-end-in-virtual-time idiom the real tree uses for faults
// with a duration.
func GoodHandoffClosure(env *sim.Env, c *trace.Collector) {
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	env.Schedule(3, func() { c.End(1, span) })
}

// GoodReturned hands the span to the caller.
func GoodReturned(c *trace.Collector) trace.SpanID {
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	return span
}

// GoodTerminatingBranch ends on the happy path; the error branch
// returns early and is judged on its own (it ends the span too).
func GoodTerminatingBranch(c *trace.Collector, fail bool) error {
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	if fail {
		c.End(1, span)
		return errBoom
	}
	c.End(2, span)
	return nil
}

// Waived shows the suppressed form with its mandatory reason.
func Waived(c *trace.Collector, fail bool) {
	//sdflint:allow spanleak fixture demonstrating a waiver
	span := c.Begin(0, 0, "op", trace.PhaseFlash)
	if fail {
		return
	}
	c.End(1, span)
}
