// Package parktrans exercises the parkpath analyzer with blocking
// that inlinepark provably cannot see: the park hides below a call
// boundary, on a process handle that is stored in a struct — no
// *sim.Proc argument ever crosses the calls written in the callback.
package parktrans

import "fixture/internal/sim"

// worker stores the handle it blocks on.
type worker struct {
	proc *sim.Proc
}

// drain parks on the stored handle.
func (w *worker) drain() {
	w.proc.Wait(1)
}

// settle is an intermediate frame: the park is two hops down from its
// callers.
func (w *worker) settle() {
	w.drain()
}

// stop makes worker satisfy stopper; it blocks one hop down.
func (w *worker) stop() {
	w.drain()
}

// idle is the same shape as settle but never blocks.
func (w *worker) idle() {}

// stopper hides the blocking callee behind an interface: the graph
// resolves the call conservatively to every implementing method.
type stopper interface {
	stop()
}

// BadTransitive blocks two frames below a Schedule callback.
func BadTransitive(env *sim.Env, w *worker) {
	env.Schedule(1, func() {
		w.settle() // want(parkpath)
	})
}

// BadInterface blocks through an interface method call.
func BadInterface(env *sim.Env, s stopper) {
	env.Schedule(1, func() {
		s.stop() // want(parkpath)
	})
}

// BadAsyncOccupy blocks below an OccupyAsync completion callback.
func BadAsyncOccupy(tl *sim.Timeline, w *worker) {
	tl.OccupyAsync(3, func() {
		w.drain() // want(parkpath)
	})
}

// GoodSpawn hands the blocking chain to a fresh process, where
// parking is legal.
func GoodSpawn(env *sim.Env, w *worker) {
	env.Schedule(1, func() {
		env.Go("drain", func(q *sim.Proc) {
			w.settle()
		})
	})
}

// GoodNonBlocking calls through the same depth without parking.
func GoodNonBlocking(env *sim.Env, w *worker) {
	env.Schedule(1, func() {
		w.idle()
	})
}

// GoodOutsideCallback may block transitively on the ordinary process
// path.
func GoodOutsideCallback(w *worker) {
	w.settle()
}

// Waived shows the suppressed form with its mandatory reason.
func Waived(env *sim.Env, w *worker) {
	env.Schedule(1, func() {
		//sdflint:allow parkpath fixture demonstrating a waiver
		w.settle()
	})
}
