package spawnuse

import "testing"

// Raw goroutines desynchronize tests exactly like library code, so
// rawgo applies to _test.go files too.
func TestSpawn(t *testing.T) {
	done := make(chan struct{})
	go func() { // want(rawgo)
		close(done)
	}()
	<-done
}
