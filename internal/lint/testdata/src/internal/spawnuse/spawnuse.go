// Package spawnuse exercises the rawgo analyzer: goroutines outside
// the deterministic scheduler are violations everywhere in internal/
// except the scheduler package itself.
package spawnuse

func Workers(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		go fn(i) // want(rawgo)
	}
}

func Background(fn func()) {
	go func() { // want(rawgo)
		fn()
	}()
}

//sdflint:allow rawgo bridges to a host I/O thread outside the simulation
func Bridge(fn func()) { go fn() }
