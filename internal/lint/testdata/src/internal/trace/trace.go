// Package trace stands in for the real trace collector: just enough
// surface (Collector, SpanID, Begin/End) for the spanleak fixtures to
// type-check. The analyzer matches the Collector type by name and
// package name, so this stub and the real package both qualify.
package trace

// SpanID identifies one span in the event stream.
type SpanID uint64

// Phase classifies a span.
type Phase int

// PhaseFlash marks flash-array occupancy spans.
const PhaseFlash Phase = 1

// Collector receives span events.
type Collector struct{}

// Begin opens a span and returns its id.
func (c *Collector) Begin(now int64, parent SpanID, name string, ph Phase) SpanID { return 1 }

// End closes a span.
func (c *Collector) End(now int64, id SpanID) {}
