// Package ccdb stands in for the real journal/WAL package: errdrop
// matches critical packages by import-path suffix, so this stub's
// "internal/ccdb" suffix makes its error results load-bearing for the
// fixtures without pulling in the real implementation.
package ccdb

// Journal is the fixture write-ahead log.
type Journal struct{}

// Append adds one record; the error is crash-consistency critical.
func (j *Journal) Append(rec []byte) error { return nil }

// Sync makes appended records durable.
func (j *Journal) Sync() error { return nil }

// Open replays the journal at path.
func Open(path string) (*Journal, error) { return &Journal{}, nil }
