// Package parkuse exercises the inlinepark analyzer: inline scheduler
// callbacks run on the scheduler goroutine itself, so any call that
// parks a process from one deadlocks the simulation.
package parkuse

import "fixture/internal/sim"

// BadDirect parks through Proc methods inside inline callbacks.
func BadDirect(env *sim.Env, tl *sim.Timeline, p *sim.Proc, s *sim.Signal) {
	env.Schedule(5, func() {
		p.Wait(1) // want(inlinepark)
	})
	tl.OccupyAsync(3, func() {
		p.WaitUntil(9) // want(inlinepark)
		p.Await(s)     // want(inlinepark)
	})
}

// BadIndirect parks by handing a *sim.Proc to a blocking API.
func BadIndirect(env *sim.Env, tl *sim.Timeline, res *sim.Resource, p *sim.Proc) {
	env.Schedule(1, func() {
		res.Acquire(p) // want(inlinepark)
	})
	env.Schedule(2, func() {
		tl.Occupy(p, 2) // want(inlinepark)
	})
}

// Good shows the legal shapes: rescheduling, non-parking claims,
// spawning a fresh process, and blocking on the normal process path.
func Good(env *sim.Env, tl *sim.Timeline, p *sim.Proc) {
	env.Schedule(5, func() {
		env.Schedule(1, func() {}) // callbacks may chain callbacks
		_, _ = tl.Reserve(4)       // claims without parking are fine
	})
	tl.OccupyAsync(3, func() {
		env.Go("spawned", func(q *sim.Proc) {
			q.Wait(1) // fresh process context: blocking is legal
		})
	})
	p.Wait(5) // the ordinary process path blocks freely
}

// Waived shows a suppressed finding with its mandatory reason.
func Waived(env *sim.Env, p *sim.Proc) {
	env.Schedule(1, func() {
		//sdflint:allow inlinepark fixture demonstrating a waiver
		p.Wait(1)
	})
}
