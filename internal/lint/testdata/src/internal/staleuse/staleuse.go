// Package staleuse exercises the stalesuppress analyzer: a directive
// that waives no finding is a standing false claim and a silent cover
// for the next violation on its line.
package staleuse

// Stale: nothing on or below the directive's line spawns anything.
// want+2(stalesuppress)
//
//sdflint:allow rawgo nothing here spawns anymore
func Quiet() {}

// A live directive stays silent: it waives the rawgo finding below.
//
//sdflint:allow rawgo fixture live waiver on the spawn below
func Live(fn func()) { go fn() }

// A deliberately-kept stale directive can be waived while a refactor
// settles; the stalesuppress waiver is consumed by that waive, so
// both directives are live.
//
//sdflint:allow stalesuppress kept while the spawn refactor settles
//sdflint:allow rawgo the spawn moved out in the refactor
func AlsoQuiet() {}

// A stalesuppress waiver with nothing stale in its scope is itself
// stale.
// want+2(stalesuppress)
//
//sdflint:allow stalesuppress there is nothing stale here
func Third() {}
