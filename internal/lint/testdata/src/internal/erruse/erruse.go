// Package erruse exercises the errdrop analyzer: errors from the
// crash-consistency-critical packages (here the ccdb and nand stubs)
// must be bound, not discarded — a dropped error is an
// unacknowledged-but-assumed write.
package erruse

import (
	"fmt"

	"fixture/internal/ccdb"
	"fixture/internal/nand"
)

// BadBare discards the error as a bare call statement.
func BadBare(j *ccdb.Journal, rec []byte) {
	j.Append(rec) // want(errdrop)
}

// BadBlank blanks the single error result.
func BadBlank(j *ccdb.Journal) {
	_ = j.Sync() // want(errdrop)
}

// BadMulti blanks the error position of a multi-result call.
func BadMulti() []byte {
	data, _ := nand.ReadPage(0, 1) // want(errdrop)
	return data
}

// BadDefer drops the error behind a defer, where no one can see it.
func BadDefer(j *ccdb.Journal) {
	defer j.Sync() // want(errdrop)
}

// BadPkgFunc discards a package-level function's error.
func BadPkgFunc(data []byte) {
	nand.ProgramPage(0, 0, data) // want(errdrop)
}

// Good binds the errors; whether the binding is then handled sensibly
// is the reviewer's judgment, not the analyzer's.
func Good(j *ccdb.Journal, rec []byte) error {
	if err := j.Append(rec); err != nil {
		return err
	}
	return j.Sync()
}

// GoodNonCritical may drop errors from non-critical packages freely.
func GoodNonCritical() {
	fmt.Println("not a persistence API")
}

// Waived shows the suppressed form with its mandatory reason.
func Waived(j *ccdb.Journal) {
	//sdflint:allow errdrop fixture demonstrating a waiver
	_ = j.Sync()
}
