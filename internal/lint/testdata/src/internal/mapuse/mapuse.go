// Package mapuse exercises the maporder analyzer: map iterations that
// leak Go's randomized iteration order into slices, channels or output
// are violations; folds, map-building and the collect-then-sort idiom
// are not.
package mapuse

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys is the canonical clean idiom: collect, then sort.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortedPairs clears the append through sort.Slice too.
func SortedPairs(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Unsorted leaks iteration order into the returned slice.
func Unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want(maporder)
	}
	return out
}

// Dump writes output in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want(maporder)
	}
}

// Send publishes values in iteration order.
func Send(ch chan<- string, m map[string]int) {
	for k := range m {
		ch <- k // want(maporder)
	}
}

// registry carries a slice behind a field; sorting it after the loop
// keeps the field append clean.
type registry struct {
	names []string
}

func (r *registry) Collect(m map[string]bool) {
	for k := range m {
		r.names = append(r.names, k)
	}
	sort.Strings(r.names)
}

func (r *registry) CollectUnsorted(m map[string]bool) {
	for k := range m {
		r.names = append(r.names, k) // want(maporder)
	}
}

// Total is an order-insensitive fold: no finding.
func Total(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert builds another map: insertion order does not matter.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// CopyValues appends only to a slice scoped inside the loop body.
func CopyValues(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		tmp := append([]int(nil), vs...)
		n += len(tmp)
	}
	return n
}

// Stable is allowed by suppression: the caller sorts the result.
func Stable(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //sdflint:allow maporder callers sort; kept raw to test suppression
	}
	return out
}
