// Package clean violates nothing: virtual-time friendly code that the
// suite must pass untouched.
package clean

import (
	"sort"
	"time"
)

// Latency is duration arithmetic, not a clock read.
func Latency(ops int, per time.Duration) time.Duration {
	return time.Duration(ops) * per
}

// Ordered drains a map deterministically.
func Ordered(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
