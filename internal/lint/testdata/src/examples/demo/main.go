// Example binaries are host-side too; the wall clock is fine here.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
