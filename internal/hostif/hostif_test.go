package hostif

import (
	"testing"
	"time"

	"sdf/internal/sim"
)

func TestPCIeFullDuplex(t *testing.T) {
	env := sim.NewEnv()
	pcie := PCIe11x8(env)
	var readEnd, writeEnd time.Duration
	e9 := func(rate float64) int { return int(rate) } // 1 second of traffic
	env.Go("r", func(p *sim.Proc) {
		pcie.ToHost(p, e9(pcie.ReadRate()))
		readEnd = env.Now()
	})
	env.Go("w", func(p *sim.Proc) {
		pcie.ToDevice(p, e9(pcie.WriteRate()))
		writeEnd = env.Now()
	})
	env.Run()
	// Full duplex: both directions complete in ~1 s, not 2 s.
	for _, end := range []time.Duration{readEnd, writeEnd} {
		if end < 999*time.Millisecond || end > 1001*time.Millisecond {
			t.Fatalf("transfer ended at %v, want ~1s", end)
		}
	}
}

func TestPCIeFairSharing(t *testing.T) {
	env := sim.NewEnv()
	pcie := PCIe11x8(env)
	done := 0
	for i := 0; i < 4; i++ {
		env.Go("r", func(p *sim.Proc) {
			pcie.ToHost(p, int(pcie.ReadRate()/4))
			done++
		})
	}
	env.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// 4 quarter-rate transfers sharing the link all end at ~1 s.
	if d := env.Now() - time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("finished at %v, want ~1s", env.Now())
	}
}

func TestSATAHalfDuplex(t *testing.T) {
	env := sim.NewEnv()
	sata := SATA2(env)
	var ends []time.Duration
	n := int(sata.ReadRate()) / 10 // 100 ms of traffic each
	env.Go("r", func(p *sim.Proc) {
		sata.ToHost(p, n)
		ends = append(ends, env.Now())
	})
	env.Go("w", func(p *sim.Proc) {
		sata.ToDevice(p, n)
		ends = append(ends, env.Now())
	})
	env.Run()
	// Half duplex: the second transfer waits for the first.
	if len(ends) != 2 {
		t.Fatalf("ends = %v", ends)
	}
	if ends[1] < 200*time.Millisecond {
		t.Fatalf("second transfer ended at %v, want >= 200ms (serialized)", ends[1])
	}
}

func TestStackCosts(t *testing.T) {
	env := sim.NewEnv()
	s := NewStack(env, StackParams{SubmitCost: 4 * time.Microsecond, CompleteCost: 9 * time.Microsecond, CPUs: 1})
	env.Go("req", func(p *sim.Proc) {
		s.Submit(p)
		s.Complete(p)
	})
	env.Run()
	if env.Now() != 13*time.Microsecond {
		t.Fatalf("stack time = %v, want 13µs", env.Now())
	}
}

func TestInterruptMergingReducesCompletionCost(t *testing.T) {
	env := sim.NewEnv()
	merged := NewStack(env, StackParams{CompleteCost: 8 * time.Microsecond, InterruptMerge: 4, CPUs: 1})
	plain := NewStack(env, StackParams{CompleteCost: 8 * time.Microsecond, CPUs: 1})
	if merged.PerRequestCost() != 2*time.Microsecond {
		t.Fatalf("merged cost = %v, want 2µs", merged.PerRequestCost())
	}
	if plain.PerRequestCost() != 8*time.Microsecond {
		t.Fatalf("plain cost = %v, want 8µs", plain.PerRequestCost())
	}
}

func TestStackCPUBound(t *testing.T) {
	env := sim.NewEnv()
	s := NewStack(env, StackParams{SubmitCost: 10 * time.Microsecond, CPUs: 2})
	for i := 0; i < 4; i++ {
		env.Go("req", func(p *sim.Proc) { s.Submit(p) })
	}
	env.Run()
	// 4 requests on 2 CPUs: 2 batches of 10 µs.
	if env.Now() != 20*time.Microsecond {
		t.Fatalf("elapsed = %v, want 20µs", env.Now())
	}
}

func TestKernelVsBypassGap(t *testing.T) {
	env := sim.NewEnv()
	kernel := NewStack(env, KernelStack())
	bypass := NewStack(env, BypassStack())
	k := kernel.PerRequestCost()
	b := bypass.PerRequestCost()
	if k < 12*time.Microsecond || k > 14*time.Microsecond {
		t.Fatalf("kernel cost = %v, want ~12.9µs", k)
	}
	if b < 2*time.Microsecond || b > 4*time.Microsecond {
		t.Fatalf("bypass cost = %v, want 2-4µs", b)
	}
	if float64(k)/float64(b) < 3 {
		t.Fatalf("kernel/bypass ratio %.1f, want > 3x", float64(k)/float64(b))
	}
}

func TestMovedCounts(t *testing.T) {
	env := sim.NewEnv()
	pcie := PCIe11x8(env)
	env.Go("x", func(p *sim.Proc) {
		pcie.ToHost(p, 1000)
		pcie.ToDevice(p, 500)
	})
	env.Run()
	toHost, toDevice := pcie.Moved()
	if toHost != 1000 || toDevice != 500 {
		t.Fatalf("moved = %d/%d, want 1000/500", toHost, toDevice)
	}
}
