// Package hostif models the host side of a storage device: the
// physical interface (PCIe or SATA) and the per-request software
// overhead of the I/O path.
//
// The paper's two I/O stacks (Figure 6) differ sharply in cost: the
// conventional path through VFS, the block layer, the scheduler, and
// the SCSI/SATA translation costs ~12.9 µs per request on the
// evaluation servers (§4.3, citing Foong et al.), while SDF's
// user-space IOCTL path over a thin PCIe driver costs only 2-4 µs,
// mostly for message-signaled interrupt handling (§2.4).
package hostif

import (
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Interface is the physical host link of a device. PCIe is full
// duplex with DMA interleaving (fair sharing); SATA is a single
// half-duplex serialized link.
type Interface struct {
	name string
	// read moves device-to-host traffic, write host-to-device. For
	// half-duplex interfaces both point at the same underlying link.
	read  transferrer
	write transferrer
}

type transferrer interface {
	Transfer(p *sim.Proc, n int)
	Rate() float64
	Moved() int64
	SetRateFactor(f float64)
	RateFactor() float64
}

// PCIe11x8 returns a PCIe 1.1 x8 interface. The nominal rate is
// 2 GB/s per direction; after 8b/10b coding and TLP overhead the
// effective rates measured in the paper are 1.61 GB/s (read, i.e.
// device to host) and 1.40 GB/s (write) (§3.2).
func PCIe11x8(env *sim.Env) *Interface {
	read := sim.NewSharedLink(env, 1.61e9)
	read.SetName("pcie/to-host")
	write := sim.NewSharedLink(env, 1.40e9)
	write.SetName("pcie/to-device")
	return &Interface{
		name:  "PCIe 1.1 x8",
		read:  read,
		write: write,
	}
}

// SATA2 returns a SATA 2.0 interface: 300 MB/s nominal, ~270 MB/s
// effective after framing, half duplex.
func SATA2(env *sim.Env) *Interface {
	l := sim.NewLink(env, 270e6, 2*time.Microsecond)
	l.SetName("sata")
	return &Interface{name: "SATA 2.0", read: l, write: l}
}

// Name returns a human-readable interface name.
func (i *Interface) Name() string { return i.name }

// ToHost moves n bytes from the device to host memory.
func (i *Interface) ToHost(p *sim.Proc, n int) { i.read.Transfer(p, n) }

// ToDevice moves n bytes from host memory to the device.
func (i *Interface) ToDevice(p *sim.Proc, n int) { i.write.Transfer(p, n) }

// ReadRate returns the device-to-host data rate in bytes per second.
func (i *Interface) ReadRate() float64 { return i.read.Rate() }

// WriteRate returns the host-to-device data rate in bytes per second.
func (i *Interface) WriteRate() float64 { return i.write.Rate() }

// SetRateFactor scales both DMA directions by f (0 < f <= 1 degrades;
// 1 restores full speed). Fault plans use it to model a PCIe card
// renegotiating down to fewer lanes or a lower generation.
func (i *Interface) SetRateFactor(f float64) {
	i.read.SetRateFactor(f)
	if i.write != i.read {
		i.write.SetRateFactor(f)
	}
}

// RateFactor returns the current degradation factor.
func (i *Interface) RateFactor() float64 { return i.read.RateFactor() }

// Moved returns total (toHost, toDevice) bytes.
// RegisterMetrics exports the interface's cumulative byte movement
// and its current rate factor (1 = healthy; fault plans degrade it).
func (i *Interface) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.CounterFunc("hostif_to_host_bytes_total", func() int64 { return i.read.Moved() }, labels...)
	r.CounterFunc("hostif_to_device_bytes_total", func() int64 { return i.write.Moved() }, labels...)
	r.GaugeFunc("hostif_rate_factor", func() float64 { return i.read.RateFactor() }, labels...)
}

func (i *Interface) Moved() (toHost, toDevice int64) {
	if i.read == i.write {
		return i.read.Moved(), i.read.Moved()
	}
	return i.read.Moved(), i.write.Moved()
}

// StackParams describes the per-request software cost of an I/O path.
type StackParams struct {
	// SubmitCost is CPU time to issue one request (syscall, block
	// layer, scheduler, command setup).
	SubmitCost time.Duration
	// CompleteCost is CPU time to handle one completion (interrupt,
	// unwinding the stack back to user space).
	CompleteCost time.Duration
	// InterruptMerge divides the interrupt-handling share of
	// CompleteCost: the SDF controller coalesces completion interrupts
	// across channel engines so the host sees only 1/4 to 1/5 as many
	// interrupts as operations (§2.1). 0 or 1 means no merging.
	InterruptMerge int
	// CPUs bounds how many requests can be in the software path
	// concurrently (cores available for I/O processing).
	CPUs int
}

// KernelStack is the conventional Linux I/O path: 3.8 µs issue +
// 9.1 µs completion = 12.9 µs per request (Foong et al., §4.3).
func KernelStack() StackParams {
	return StackParams{
		SubmitCost:   3800 * time.Nanosecond,
		CompleteCost: 9100 * time.Nanosecond,
		CPUs:         16,
	}
}

// BypassStack is SDF's user-space IOCTL path: ~3 µs per request,
// mostly MSI handling, with 4-way interrupt merging (§2.4).
func BypassStack() StackParams {
	return StackParams{
		SubmitCost:     1 * time.Microsecond,
		CompleteCost:   8 * time.Microsecond,
		InterruptMerge: 4,
		CPUs:           16,
	}
}

// Stack models software-path CPU costs as a bounded resource. CPU
// charges are pure timed holds, so the cores are a sim.Timeline: a
// request parks once for queueing-plus-service instead of taking the
// acquire/wait/release slow path.
type Stack struct {
	env    *sim.Env
	params StackParams
	cpu    *sim.Timeline

	submits  metrics.Counter
	inflight int // requests between Submit and Complete
}

// NewStack builds a stack model on env.
func NewStack(env *sim.Env, params StackParams) *Stack {
	cpus := params.CPUs
	if cpus < 1 {
		cpus = 1
	}
	return &Stack{env: env, params: params, cpu: sim.NewTimeline(env, cpus)}
}

// Params returns the stack's parameters.
func (s *Stack) Params() StackParams { return s.params }

// Submit charges the request-issue cost. The request counts as in
// flight until its Complete.
func (s *Stack) Submit(p *sim.Proc) {
	s.submits.Inc()
	s.inflight++
	span := s.env.Tracer().Begin(s.env.Now(), p.Span(), "stack/submit", trace.PhaseSoftware)
	s.charge(p, s.params.SubmitCost)
	s.env.Tracer().End(s.env.Now(), span)
}

// Complete charges the completion cost, reduced by interrupt merging.
func (s *Stack) Complete(p *sim.Proc) {
	c := s.params.CompleteCost
	if s.params.InterruptMerge > 1 {
		c /= time.Duration(s.params.InterruptMerge)
	}
	span := s.env.Tracer().Begin(s.env.Now(), p.Span(), "stack/complete", trace.PhaseSoftware)
	s.charge(p, c)
	s.env.Tracer().End(s.env.Now(), span)
	if s.inflight > 0 {
		s.inflight--
	}
}

// Inflight returns how many requests are between Submit and Complete.
func (s *Stack) Inflight() int { return s.inflight }

// RegisterMetrics adopts the stack's request counter into r and
// installs an in-flight gauge — the host-side queue depth the paper's
// latency analysis cares about.
func (s *Stack) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.RegisterCounter("hostif_requests_total", &s.submits, labels...)
	r.GaugeFunc("hostif_inflight_requests", func() float64 { return float64(s.inflight) }, labels...)
}

// PerRequestCost returns the total software time per request after
// merging, useful for reporting.
func (s *Stack) PerRequestCost() time.Duration {
	c := s.params.CompleteCost
	if s.params.InterruptMerge > 1 {
		c /= time.Duration(s.params.InterruptMerge)
	}
	return s.params.SubmitCost + c
}

func (s *Stack) charge(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	s.cpu.Occupy(p, d)
}
