package rpcnet

import (
	"errors"
	"testing"
	"time"

	"sdf/internal/sim"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.RPCOverhead = 0
	cfg.SubRequestCPU = 0
	return cfg
}

func TestResponseTransferTime(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env, fastConfig())
	c := n.NewClient()
	var elapsed time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, []SubRequest{func(p *sim.Proc) int { return 1_250_000 }})
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// 1.25 MB over a 1.25 GB/s client NIC: ~1 ms (client NIC is the
	// slower of the two links).
	if elapsed < 990*time.Microsecond || elapsed > 1100*time.Microsecond {
		t.Fatalf("transfer took %v, want ~1ms", elapsed)
	}
}

func TestBatchExecutesConcurrently(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env, fastConfig())
	c := n.NewClient()
	var elapsed time.Duration
	sub := func(p *sim.Proc) int {
		p.Wait(10 * time.Millisecond) // simulated storage work
		return 0
	}
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, []SubRequest{sub, sub, sub, sub})
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// Four 10 ms sub-requests in parallel: ~10 ms, not 40.
	if elapsed > 12*time.Millisecond {
		t.Fatalf("batch took %v, want ~10ms (concurrent)", elapsed)
	}
}

func TestServerNICSharedAcrossClients(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	n := NewNetwork(env, cfg)
	// 4 clients each pulling 1.25 GB/s worth would total 5 GB/s;
	// the 2.5 GB/s server pool halves it.
	const respSize = 12_500_000 // 10 ms at client NIC rate
	done := 0
	for i := 0; i < 4; i++ {
		c := n.NewClient()
		env.Go("client", func(p *sim.Proc) {
			c.Call(p, 0, []SubRequest{func(p *sim.Proc) int { return respSize }})
			done++
		})
	}
	env.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// Server-bound: 4 x 12.5 MB over 2.5 GB/s = 20 ms.
	if env.Now() < 19*time.Millisecond || env.Now() > 22*time.Millisecond {
		t.Fatalf("finished at %v, want ~20ms (server NIC bound)", env.Now())
	}
	env.Close()
}

func TestServerCPUBoundsSubRequests(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.SubRequestCPU = time.Millisecond
	cfg.ServerCPUs = 2
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	var elapsed time.Duration
	noop := func(p *sim.Proc) int { return 0 }
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, []SubRequest{noop, noop, noop, noop})
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// 4 x 1 ms of CPU on 2 cores: 2 ms.
	if elapsed != 2*time.Millisecond {
		t.Fatalf("elapsed = %v, want 2ms", elapsed)
	}
}

func TestDoWithoutLossIsOneCall(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env, fastConfig())
	c := n.NewClient()
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		got, err := c.Do(p, 0, []SubRequest{func(p *sim.Proc) int { return 1_250_000 }})
		if err != nil || got != 1_250_000 {
			t.Errorf("Do = %d/%v", got, err)
		}
		elapsed := env.Now() - start
		if elapsed < 990*time.Microsecond || elapsed > 1100*time.Microsecond {
			t.Errorf("loss-free Do took %v, want ~1ms (same as Call)", elapsed)
		}
	})
	env.RunUntilDone(w)
	env.Close()
	if drops, retries, deadlines := n.Stats(); drops+retries+deadlines != 0 {
		t.Fatalf("loss-free stats = %d/%d/%d, want all 0", drops, retries, deadlines)
	}
}

func TestDoRetriesThroughLoss(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.LossRate = 0.5
	cfg.Seed = 42
	cfg.RequestTimeout = 5 * time.Millisecond
	cfg.RetryBackoff = time.Millisecond
	cfg.DeadlineBudget = time.Second
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	w := env.Go("t", func(p *sim.Proc) {
		ok := 0
		for i := 0; i < 20; i++ {
			got, err := c.Do(p, 100, []SubRequest{func(p *sim.Proc) int { return 1000 }})
			if err == nil && got == 1000 {
				ok++
			}
		}
		if ok < 15 {
			t.Errorf("only %d/20 requests survived 50%% loss with retries", ok)
		}
	})
	env.RunUntilDone(w)
	env.Close()
	drops, retries, _ := n.Stats()
	if drops == 0 || retries == 0 {
		t.Fatalf("stats drops=%d retries=%d, want both > 0 at 50%% loss", drops, retries)
	}
}

func TestDoDeadlineBudget(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.LossRate = 1 // nothing gets through
	cfg.Seed = 7
	cfg.RequestTimeout = 5 * time.Millisecond
	cfg.RetryBackoff = time.Millisecond
	cfg.DeadlineBudget = 30 * time.Millisecond
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		_, err := c.Do(p, 0, nil)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("Do under total loss: %v, want ErrDeadlineExceeded", err)
		}
		if elapsed := env.Now() - start; elapsed > cfg.DeadlineBudget+cfg.RequestTimeout {
			t.Errorf("Do gave up after %v, budget was %v", elapsed, cfg.DeadlineBudget)
		}
	})
	env.RunUntilDone(w)
	env.Close()
	if _, _, deadlines := n.Stats(); deadlines != 1 {
		t.Fatalf("deadlines = %d, want 1", deadlines)
	}
}

func TestRPCOverheadCharged(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.RPCOverhead = 100 * time.Microsecond
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	var elapsed time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, nil)
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	if elapsed != 100*time.Microsecond {
		t.Fatalf("elapsed = %v, want 100µs", elapsed)
	}
}

// TestRetryTimeoutCappedByDeadline is the regression test for the
// retry deadline-accounting fix: each lost attempt's RequestTimeout
// must be capped at the remaining deadline budget, never re-armed in
// full. With a 15 ms budget, a 10 ms timeout, and total loss, the old
// accounting waited 10 ms + 2 ms backoff + 10 ms ≈ 22 ms before giving
// up — past the caller's deadline. The fixed loop truncates the second
// wait so the call returns within the budget.
func TestRetryTimeoutCappedByDeadline(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.LossRate = 1
	cfg.Seed = 11
	cfg.RequestTimeout = 10 * time.Millisecond
	cfg.RetryBackoff = 2 * time.Millisecond
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	const budget = 15 * time.Millisecond
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		_, err := c.DoBudget(p, 0, nil, budget)
		if !errors.Is(err, ErrDeadlineExceeded) {
			t.Errorf("DoBudget under total loss: %v, want ErrDeadlineExceeded", err)
		}
		if elapsed := env.Now() - start; elapsed > budget {
			t.Errorf("DoBudget spent %v, deadline budget was %v: retries re-armed the timeout", elapsed, budget)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
