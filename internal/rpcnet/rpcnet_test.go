package rpcnet

import (
	"testing"
	"time"

	"sdf/internal/sim"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.RPCOverhead = 0
	cfg.SubRequestCPU = 0
	return cfg
}

func TestResponseTransferTime(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env, fastConfig())
	c := n.NewClient()
	var elapsed time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, []SubRequest{func(p *sim.Proc) int { return 1_250_000 }})
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// 1.25 MB over a 1.25 GB/s client NIC: ~1 ms (client NIC is the
	// slower of the two links).
	if elapsed < 990*time.Microsecond || elapsed > 1100*time.Microsecond {
		t.Fatalf("transfer took %v, want ~1ms", elapsed)
	}
}

func TestBatchExecutesConcurrently(t *testing.T) {
	env := sim.NewEnv()
	n := NewNetwork(env, fastConfig())
	c := n.NewClient()
	var elapsed time.Duration
	sub := func(p *sim.Proc) int {
		p.Wait(10 * time.Millisecond) // simulated storage work
		return 0
	}
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, []SubRequest{sub, sub, sub, sub})
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// Four 10 ms sub-requests in parallel: ~10 ms, not 40.
	if elapsed > 12*time.Millisecond {
		t.Fatalf("batch took %v, want ~10ms (concurrent)", elapsed)
	}
}

func TestServerNICSharedAcrossClients(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	n := NewNetwork(env, cfg)
	// 4 clients each pulling 1.25 GB/s worth would total 5 GB/s;
	// the 2.5 GB/s server pool halves it.
	const respSize = 12_500_000 // 10 ms at client NIC rate
	done := 0
	for i := 0; i < 4; i++ {
		c := n.NewClient()
		env.Go("client", func(p *sim.Proc) {
			c.Call(p, 0, []SubRequest{func(p *sim.Proc) int { return respSize }})
			done++
		})
	}
	env.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	// Server-bound: 4 x 12.5 MB over 2.5 GB/s = 20 ms.
	if env.Now() < 19*time.Millisecond || env.Now() > 22*time.Millisecond {
		t.Fatalf("finished at %v, want ~20ms (server NIC bound)", env.Now())
	}
	env.Close()
}

func TestServerCPUBoundsSubRequests(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.SubRequestCPU = time.Millisecond
	cfg.ServerCPUs = 2
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	var elapsed time.Duration
	noop := func(p *sim.Proc) int { return 0 }
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, []SubRequest{noop, noop, noop, noop})
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// 4 x 1 ms of CPU on 2 cores: 2 ms.
	if elapsed != 2*time.Millisecond {
		t.Fatalf("elapsed = %v, want 2ms", elapsed)
	}
}

func TestRPCOverheadCharged(t *testing.T) {
	env := sim.NewEnv()
	cfg := fastConfig()
	cfg.RPCOverhead = 100 * time.Microsecond
	n := NewNetwork(env, cfg)
	c := n.NewClient()
	var elapsed time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		c.Call(p, 0, nil)
		elapsed = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	if elapsed != 100*time.Microsecond {
		t.Fatalf("elapsed = %v, want 100µs", elapsed)
	}
}
