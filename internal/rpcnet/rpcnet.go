// Package rpcnet models the client/server network path of the
// evaluation cluster (Table 2): clients with one 10 GbE NIC each, a
// storage server with two bonded 10 GbE NICs, and batched synchronous
// KV requests — one request carries `batch` sub-requests, the server
// executes the sub-requests concurrently, and the response streams
// back over both the server's and the client's NIC (§3.1, §3.3).
package rpcnet

import (
	"time"

	"sdf/internal/sim"
)

// Config sets the link speeds and per-operation software costs.
type Config struct {
	// ServerBandwidth is the server's aggregate NIC rate in bytes/s
	// (two 10 GbE ports ~ 2.5 GB/s).
	ServerBandwidth float64
	// ClientBandwidth is one client NIC (10 GbE ~ 1.25 GB/s).
	ClientBandwidth float64
	// RPCOverhead is the fixed per-request cost (syscalls, framing,
	// switch latency).
	RPCOverhead time.Duration
	// SubRequestCPU is the server-side cost per sub-request (request
	// parsing, KV dispatch, memory copies).
	SubRequestCPU time.Duration
	// ServerCPUs bounds concurrent sub-request processing.
	ServerCPUs int
}

// DefaultConfig matches the paper's testbed.
func DefaultConfig() Config {
	return Config{
		ServerBandwidth: 2.5e9,
		ClientBandwidth: 1.25e9,
		RPCOverhead:     100 * time.Microsecond,
		SubRequestCPU:   150 * time.Microsecond,
		ServerCPUs:      16,
	}
}

// Network is one storage server reachable by many clients.
type Network struct {
	env    *sim.Env
	cfg    Config
	server *sim.SharedLink
	cpu    *sim.Resource
}

// NewNetwork builds the server side on env.
func NewNetwork(env *sim.Env, cfg Config) *Network {
	if cfg.ServerBandwidth <= 0 || cfg.ClientBandwidth <= 0 {
		panic("rpcnet: link rates must be positive")
	}
	if cfg.ServerCPUs < 1 {
		cfg.ServerCPUs = 1
	}
	return &Network{
		env:    env,
		cfg:    cfg,
		server: sim.NewSharedLink(env, cfg.ServerBandwidth),
		cpu:    sim.NewResource(env, cfg.ServerCPUs),
	}
}

// Client is one closed-loop requester with a dedicated NIC.
type Client struct {
	net *Network
	nic *sim.SharedLink
}

// NewClient attaches a client to the network.
func (n *Network) NewClient() *Client {
	return &Client{net: n, nic: sim.NewSharedLink(n.env, n.cfg.ClientBandwidth)}
}

// SubRequest is one operation within a batched request: the server
// executes Do, which returns the number of response payload bytes.
type SubRequest func(p *sim.Proc) int

// Call performs one synchronous batched request: reqBytes travel to
// the server, the batch executes concurrently (each sub-request pays
// the per-op CPU cost and then its own storage work), and each
// sub-response streams back as soon as it is ready — the server sends
// completed sub-requests while others are still in service (§3.3.1).
// The response traverses the server NIC pool and the client NIC
// concurrently (cut-through at the switch), so the slower link
// dominates. Call returns the total response bytes.
func (c *Client) Call(p *sim.Proc, reqBytes int, batch []SubRequest) int {
	n := c.net
	p.Wait(n.cfg.RPCOverhead)
	if reqBytes > 0 {
		c.nic.Transfer(p, reqBytes)
	}
	respBytes := 0
	var workers []*sim.Proc
	for _, sub := range batch {
		sub := sub
		w := n.env.Go("rpcnet/sub", func(wp *sim.Proc) {
			n.cpu.Acquire(wp)
			wp.Wait(n.cfg.SubRequestCPU)
			n.cpu.Release()
			size := sub(wp)
			respBytes += size
			if size > 0 {
				srv := n.env.Go("rpcnet/srvtx", func(tp *sim.Proc) {
					n.server.Transfer(tp, size)
				})
				c.nic.Transfer(wp, size)
				wp.Join(srv)
			}
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	return respBytes
}

// ServerLink exposes the server NIC pool for instrumentation.
func (n *Network) ServerLink() *sim.SharedLink { return n.server }
