// Package rpcnet models the client/server network path of the
// evaluation cluster (Table 2): clients with one 10 GbE NIC each, a
// storage server with two bonded 10 GbE NICs, and batched synchronous
// KV requests — one request carries `batch` sub-requests, the server
// executes the sub-requests concurrently, and the response streams
// back over both the server's and the client's NIC (§3.1, §3.3).
package rpcnet

import (
	"errors"
	"math/rand"
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// ErrDeadlineExceeded is returned by Do when retries exhaust the
// client's deadline budget.
var ErrDeadlineExceeded = errors.New("rpcnet: deadline budget exhausted")

// Config sets the link speeds and per-operation software costs.
type Config struct {
	// ServerBandwidth is the server's aggregate NIC rate in bytes/s
	// (two 10 GbE ports ~ 2.5 GB/s).
	ServerBandwidth float64
	// ClientBandwidth is one client NIC (10 GbE ~ 1.25 GB/s).
	ClientBandwidth float64
	// RPCOverhead is the fixed per-request cost (syscalls, framing,
	// switch latency).
	RPCOverhead time.Duration
	// SubRequestCPU is the server-side cost per sub-request (request
	// parsing, KV dispatch, memory copies).
	SubRequestCPU time.Duration
	// ServerCPUs bounds concurrent sub-request processing.
	ServerCPUs int

	// LossRate is the probability that a request is dropped on the
	// wire (fault injection). A dropped request burns RPCOverhead, the
	// request transfer, and RequestTimeout at the client before Do
	// retries it. 0 disables loss and performs no RNG draws, so
	// loss-free runs are byte-identical to builds without this knob.
	LossRate float64
	// RequestTimeout is how long a client waits for a response before
	// declaring the request lost.
	RequestTimeout time.Duration
	// RetryBackoff is the wait before the first retry; it doubles per
	// attempt.
	RetryBackoff time.Duration
	// DeadlineBudget bounds the total virtual time Do spends on one
	// logical request across retries; 0 retries without bound.
	DeadlineBudget time.Duration
	// Seed feeds the network's private RNG stream (loss draws).
	Seed int64
}

// DefaultConfig matches the paper's testbed.
func DefaultConfig() Config {
	return Config{
		ServerBandwidth: 2.5e9,
		ClientBandwidth: 1.25e9,
		RPCOverhead:     100 * time.Microsecond,
		SubRequestCPU:   150 * time.Microsecond,
		ServerCPUs:      16,
		RequestTimeout:  10 * time.Millisecond,
		RetryBackoff:    2 * time.Millisecond,
		DeadlineBudget:  500 * time.Millisecond,
	}
}

// Network is one storage server reachable by many clients.
type Network struct {
	env      *sim.Env
	cfg      Config
	server   *sim.SharedLink
	cpu      *sim.Resource
	rng      *rand.Rand
	lossRate float64

	calls     metrics.Counter
	inflight  int // Calls between entry and return
	drops     int64
	retries   int64
	deadlines int64
}

// NewNetwork builds the server side on env.
func NewNetwork(env *sim.Env, cfg Config) *Network {
	if cfg.ServerBandwidth <= 0 || cfg.ClientBandwidth <= 0 {
		panic("rpcnet: link rates must be positive")
	}
	if cfg.ServerCPUs < 1 {
		cfg.ServerCPUs = 1
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Millisecond
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	return &Network{
		env:      env,
		cfg:      cfg,
		server:   sim.NewSharedLink(env, cfg.ServerBandwidth),
		cpu:      sim.NewResource(env, cfg.ServerCPUs),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		lossRate: clampRate(cfg.LossRate),
	}
}

// InjectLoss sets the wire loss probability (clamped to [0, 1]);
// fault plans flip it on for a window and back to 0 to end it.
func (n *Network) InjectLoss(rate float64) { n.lossRate = clampRate(rate) }

// LossRate returns the current wire loss probability.
func (n *Network) LossRate() float64 { return n.lossRate }

// Stats returns (requests dropped, retries performed, deadline
// budgets exhausted).
func (n *Network) Stats() (drops, retries, deadlines int64) {
	return n.drops, n.retries, n.deadlines
}

// RegisterMetrics adopts the server's request counter into r and
// exports its loss-recovery counters plus an in-flight RPC gauge (the
// Calls currently between entry and return across all clients).
func (n *Network) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.RegisterCounter("rpc_calls_total", &n.calls, labels...)
	r.CounterFunc("rpc_drops_total", func() int64 { return n.drops }, labels...)
	r.CounterFunc("rpc_retries_total", func() int64 { return n.retries }, labels...)
	r.CounterFunc("rpc_deadline_exceeded_total", func() int64 { return n.deadlines }, labels...)
	r.GaugeFunc("rpc_inflight", func() float64 { return float64(n.inflight) }, labels...)
}

// dropRequest draws the loss lottery for one attempt. It performs no
// RNG draw at rate 0, keeping loss-free traces bit-identical.
func (n *Network) dropRequest() bool {
	if n.lossRate <= 0 {
		return false
	}
	return n.rng.Float64() < n.lossRate
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Client is one closed-loop requester with a dedicated NIC.
type Client struct {
	net *Network
	nic *sim.SharedLink
}

// NewClient attaches a client to the network.
func (n *Network) NewClient() *Client {
	return &Client{net: n, nic: sim.NewSharedLink(n.env, n.cfg.ClientBandwidth)}
}

// SubRequest is one operation within a batched request: the server
// executes Do, which returns the number of response payload bytes.
type SubRequest func(p *sim.Proc) int

// Call performs one synchronous batched request: reqBytes travel to
// the server, the batch executes concurrently (each sub-request pays
// the per-op CPU cost and then its own storage work), and each
// sub-response streams back as soon as it is ready — the server sends
// completed sub-requests while others are still in service (§3.3.1).
// The response traverses the server NIC pool and the client NIC
// concurrently (cut-through at the switch), so the slower link
// dominates. Call returns the total response bytes.
func (c *Client) Call(p *sim.Proc, reqBytes int, batch []SubRequest) int {
	n := c.net
	n.calls.Inc()
	n.inflight++
	defer func() { n.inflight-- }()
	p.Wait(n.cfg.RPCOverhead)
	if reqBytes > 0 {
		c.nic.Transfer(p, reqBytes)
	}
	respBytes := 0
	var workers []*sim.Proc
	for _, sub := range batch {
		sub := sub
		w := n.env.Go("rpcnet/sub", func(wp *sim.Proc) {
			n.cpu.Acquire(wp)
			wp.Wait(n.cfg.SubRequestCPU)
			n.cpu.Release()
			size := sub(wp)
			respBytes += size
			if size > 0 {
				srv := n.env.Go("rpcnet/srvtx", func(tp *sim.Proc) {
					n.server.Transfer(tp, size)
				})
				c.nic.Transfer(wp, size)
				wp.Join(srv)
			}
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	return respBytes
}

// Do performs one logical request with loss recovery: each attempt
// that the wire drops burns RPCOverhead, the request transfer, and
// RequestTimeout, then retries with exponential backoff while the
// deadline budget lasts. With LossRate 0 it is exactly one Call.
// It returns the total response bytes.
func (c *Client) Do(p *sim.Proc, reqBytes int, batch []SubRequest) (int, error) {
	return c.DoBudget(p, reqBytes, batch, c.net.cfg.DeadlineBudget)
}

// DoBudget is Do with an explicit per-request deadline budget,
// overriding the network-wide Config.DeadlineBudget. Deadline-aware
// callers (cluster read routing) use it to carry one read's
// virtual-time deadline through the loss-recovery loop: every retry
// decrements the original budget. A budget of 0 retries without
// bound.
func (c *Client) DoBudget(p *sim.Proc, reqBytes int, batch []SubRequest, budget time.Duration) (int, error) {
	n := c.net
	var deadline time.Duration
	if budget > 0 {
		deadline = n.env.Now() + budget
	}
	backoff := n.cfg.RetryBackoff
	for {
		if !n.dropRequest() {
			return c.Call(p, reqBytes, batch), nil
		}
		// The request vanished on the wire: the client pays for the
		// send and waits for a response that never comes. The timeout
		// is capped at the request's remaining deadline budget — a
		// retry must never re-arm a fresh RequestTimeout that would
		// carry the total past the original deadline.
		n.drops++
		t := n.env.Tracer()
		span := t.Begin(n.env.Now(), p.Span(), "rpc/loss", trace.PhaseFault)
		p.Wait(n.cfg.RPCOverhead)
		if reqBytes > 0 {
			c.nic.Transfer(p, reqBytes)
		}
		timeout := n.cfg.RequestTimeout
		if deadline > 0 && timeout > deadline-n.env.Now() {
			timeout = deadline - n.env.Now()
		}
		if timeout > 0 {
			p.Wait(timeout)
		}
		t.End(n.env.Now(), span)
		if deadline > 0 && n.env.Now()+backoff >= deadline {
			n.deadlines++
			return 0, ErrDeadlineExceeded
		}
		n.retries++
		p.Wait(backoff)
		backoff *= 2
	}
}

// ServerLink exposes the server NIC pool for instrumentation.
func (n *Network) ServerLink() *sim.SharedLink { return n.server }
