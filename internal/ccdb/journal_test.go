package ccdb

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/sim"
)

// journalRig builds a data-retaining SDF stack with a journaled slice
// for crash-and-remount tests.
func journalRig(t *testing.T, env *sim.Env) (*core.Device, *Journal, *Slice, core.Config) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	j := NewJournal()
	s := NewSlice(env, store, Config{PatchBytes: store.BlockSize(), RunsPerTier: 4, DataMode: true, Journal: j})
	return dev, j, s, cfg
}

// remountSlice crashes nothing further — the device must already be
// powered off and the journal halted — and rebuilds the slice from
// the surviving media in a fresh environment.
func remountSlice(t *testing.T, dev *core.Device, j *Journal, cfg core.Config) (*sim.Env, *Slice, ReplayReport) {
	t.Helper()
	state := dev.State()
	env := sim.NewEnv()
	mounted, err := core.Mount(env, cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	var s *Slice
	var rep ReplayReport
	boot := env.Go("mount", func(p *sim.Proc) {
		layer, _, err := blocklayer.Mount(p, env, mounted, blocklayer.DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		sl, rr, err := MountSlice(p, env, NewSDFStore(layer), Config{
			PatchBytes: layer.BlockSize(), RunsPerTier: 4, DataMode: true, Journal: j,
		})
		if err != nil {
			t.Error(err)
			return
		}
		s, rep = sl, rr
	})
	env.RunUntilDone(boot)
	if s == nil {
		t.Fatal("remount failed")
	}
	return env, s, rep
}

// TestTruncationKeepsUnflushedAckedPut is the journal-truncation
// safety property: a put acknowledged DURING a flush — after the
// flush snapshotted its watermark — must survive the truncation that
// flush performs when its patch lands, and replay after a crash. Only
// the records the patch actually covers may be dropped.
func TestTruncationKeepsUnflushedAckedPut(t *testing.T) {
	env := sim.NewEnv()
	dev, j, s, cfg := journalRig(t, env)

	const n = 24
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 1024) }
	fill := env.Go("fill", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := s.Put(p, fmt.Sprintf("k%02d", i), val(i), 1024); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(fill)

	// The flush's patch write takes milliseconds of virtual time; the
	// straggler put lands in that window, after the watermark.
	env.Go("flush", func(p *sim.Proc) {
		if err := s.Flush(p); err != nil {
			t.Error(err)
		}
	})
	var stragglerAcked bool
	env.Schedule(time.Millisecond, func() {
		env.Go("straggler", func(p *sim.Proc) {
			if err := s.Put(p, "straggler", val(99), 1024); err != nil {
				t.Error(err)
				return
			}
			stragglerAcked = true
		})
	})
	env.Run()
	if !stragglerAcked {
		t.Fatal("straggler put never acknowledged")
	}
	if j.TruncatedPuts() != n {
		t.Fatalf("truncated %d log records, want exactly the %d the patch covered", j.TruncatedPuts(), n)
	}
	if j.putCount() != 1 {
		t.Fatalf("journal holds %d records after truncation, want 1 (the straggler)", j.putCount())
	}

	dev.PowerLoss()
	j.Halt()
	env.Close()

	env2, s2, rep := remountSlice(t, dev, j, cfg)
	defer env2.Close()
	if rep.MemReplayed != 1 {
		t.Fatalf("replayed %d journaled puts, want 1", rep.MemReplayed)
	}
	verify := env2.Go("verify", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			got, _, err := s2.Get(p, fmt.Sprintf("k%02d", i))
			if err != nil || !bytes.Equal(got, val(i)) {
				t.Errorf("flushed key k%02d after remount: %v", i, err)
				return
			}
		}
		got, _, err := s2.Get(p, "straggler")
		if err != nil || !bytes.Equal(got, val(99)) {
			t.Errorf("straggler after remount: %v", err)
		}
	})
	env2.RunUntilDone(verify)
}

// TestManifestCompactionBoundsReplay churns patches through add/del
// cycles and requires the manifest to stay bounded by live state: the
// compactor rewrites it once dead records dominate, and replay over
// the compacted manifest rebuilds exactly the surviving runs.
func TestManifestCompactionBoundsReplay(t *testing.T) {
	j := NewJournal()
	keep := &patch{ref: Ref(9999), keys: []string{"keep"}, offs: []int{0}, sizes: []int{1}}
	if !j.appendRun(1, []*patch{keep}) {
		t.Fatal("appendRun rejected")
	}
	const churn = 400
	for i := 0; i < churn; i++ {
		pt := &patch{ref: Ref(i), keys: []string{"k"}, offs: []int{0}, sizes: []int{1}}
		if !j.appendRun(0, []*patch{pt}) {
			t.Fatal("appendRun rejected")
		}
		j.appendDel(pt.ref)
	}
	if j.Compactions() == 0 {
		t.Fatal("manifest never compacted under churn")
	}
	if got := j.ManifestRecords(); got > 2+manifestSlack {
		t.Fatalf("manifest holds %d records after churn, want <= %d", got, 2+manifestSlack)
	}
	runs := j.replayManifest()
	live := 0
	for _, rr := range runs {
		for _, pt := range rr.r {
			if pt.ref == keep.ref && rr.tier == 1 {
				live++
			}
		}
	}
	if live != 1 {
		t.Fatalf("replay after compaction found the live patch %d times, want 1", live)
	}
}

// TestManifestCompactionSkippedWhileHalted freezes the manifest at
// the crash instant: a halted journal must preserve exactly the
// records the crash left, not rewrite them.
func TestManifestCompactionSkippedWhileHalted(t *testing.T) {
	j := NewJournal()
	for i := 0; i < 10; i++ {
		pt := &patch{ref: Ref(i), keys: []string{"k"}, offs: []int{0}, sizes: []int{1}}
		j.appendRun(0, []*patch{pt})
	}
	j.Halt()
	before := j.ManifestRecords()
	j.maybeCompact()
	if j.ManifestRecords() != before || j.Compactions() != 0 {
		t.Fatalf("halted journal compacted: %d -> %d records, %d compactions",
			before, j.ManifestRecords(), j.Compactions())
	}
}
