package ccdb

import (
	"sort"

	"sdf/internal/sim"
)

// compactLoop is the slice's background compactor: whenever a tier
// reaches the fan-in it merge-sorts all of that tier's runs into one
// run of the next tier. Each merge reads every input patch in full and
// writes fresh output patches — the workload that, combined with
// client writes, defines the Figure 14 experiment. Compaction requests
// share the device with foreground traffic through the ordinary
// queues (the paper leaves priority scheduling as future work; §2.4).
func (s *Slice) compactLoop(p *sim.Proc) {
	for {
		if !s.compactKick.Fired() {
			p.Await(s.compactKick)
		}
		s.compactKick = sim.NewSignal(s.env)
		for {
			tier := s.overfullTier()
			if tier < 0 {
				break
			}
			s.compactBusy = true
			ok := s.compactTier(p, tier)
			s.compactBusy = false
			if !ok {
				// The merge could not write its outputs (dead or
				// powered-off channel). Failed writes consume no
				// virtual time, so retrying at this instant would
				// spin forever; park until the next flush kicks us.
				break
			}
		}
	}
}

// overfullTier returns the lowest tier at or over the fan-in, or -1.
func (s *Slice) overfullTier() int {
	for i, tier := range s.tiers {
		if len(tier) >= s.cfg.RunsPerTier {
			return i
		}
	}
	return -1
}

// compactTier merges every run of the tier into one run of tier+1.
// It reports false when an output write failed; the merge is then
// aborted with the inputs left fully intact.
func (s *Slice) compactTier(p *sim.Proc, tier int) bool {
	// Snapshot the tier's current runs but leave them visible: lookups
	// during the (long) merge must still see this data. New flushes
	// append behind the snapshot and are not part of this merge.
	inputs := append([]run(nil), s.tiers[tier]...)

	// Read every input patch in full (large sequential reads), then
	// merge the in-memory indexes. Later runs are newer and win ties.
	type src struct {
		entries []Entry
		age     int // higher is newer
	}
	var sources []src
	age := 0
	for _, r := range inputs {
		var entries []Entry
		for _, pt := range r {
			//sdflint:allow errdrop a failed patch read degrades its entries to index-only; compaction must merge what it can, not abort on media faults
			data, _ := s.readPatchAll(p, pt)
			for i, k := range pt.keys {
				e := Entry{Key: k, Size: pt.sizes[i]}
				if data != nil {
					e.Value = data[pt.offs[i] : pt.offs[i]+pt.sizes[i]]
				}
				entries = append(entries, e)
			}
			s.stats.CompactionReads++
		}
		sources = append(sources, src{entries: entries, age: age})
		age++
	}

	// K-way merge with newest-wins de-duplication. Inputs are sorted,
	// so a linear merge suffices; for clarity we concatenate and
	// stable-sort by (key, -age): both are O(n log n) on in-memory
	// metadata, which is not the simulated cost (the device reads and
	// writes above and below are).
	type tagged struct {
		Entry
		age int
	}
	var all []tagged
	for _, sc := range sources {
		for _, e := range sc.entries {
			all = append(all, tagged{Entry: e, age: sc.age})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Key != all[j].Key {
			return all[i].Key < all[j].Key
		}
		return all[i].age > all[j].age
	})
	var merged []Entry
	for i, e := range all {
		if i > 0 && all[i-1].Key == e.Key {
			continue // older duplicate
		}
		merged = append(merged, e.Entry)
	}

	// Write the merged run as full patches.
	var out run
	var batch []Entry
	var werr error
	used := 0
	flushBatch := func() {
		if len(batch) == 0 || werr != nil {
			return
		}
		pt, err := s.writePatch(p, batch)
		if err != nil {
			werr = err
		} else {
			out = append(out, pt)
		}
		batch = nil
		used = 0
	}
	for _, e := range merged {
		eb := s.entryBytes(e.Key, e.Size)
		if used+eb > s.cfg.PatchBytes {
			flushBatch()
		}
		batch = append(batch, e)
		used += eb
	}
	flushBatch()
	if werr != nil {
		// Abort: free whatever outputs did land and keep the inputs.
		// Their manifest adds were never written, so crash replay
		// never sees the partial merge either (retire journals a del
		// for a ref that was never added, which replay ignores).
		for _, pt := range out {
			s.retire(p, pt)
		}
		return false
	}

	// The whole output run is durable: manifest it as one atomic
	// group, install it, then drop the merged runs (they are the
	// oldest entries of the tier; newer flushes appended after the
	// snapshot stay) and retire their patches.
	if len(out) > 0 {
		s.cfg.Journal.appendRun(tier+1, out)
		s.insertRun(tier+1, out)
	}
	s.tiers[tier] = s.tiers[tier][len(inputs):]
	for _, r := range inputs {
		for _, pt := range r {
			s.retire(p, pt)
		}
	}
	s.stats.Compactions++
	return true
}

// readPatchAll reads a patch end to end and returns its payload (nil
// in timing mode).
func (s *Slice) readPatchAll(p *sim.Proc, pt *patch) ([]byte, error) {
	if len(pt.keys) == 0 {
		return nil, nil
	}
	last := len(pt.keys) - 1
	span := pt.offs[last] + pt.sizes[last]
	if span == 0 {
		return nil, nil
	}
	return s.store.ReadAt(p, pt.ref, 0, span)
}
