package ccdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"sdf/internal/sim"
)

func TestTableRowRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	tbl := NewTable("webpages", NewSlice(env, store, sliceConfig(store, true)))
	w := env.Go("t", func(p *sim.Proc) {
		fields := map[string][]byte{
			"url":      []byte("http://example.com/a"),
			"abstract": []byte("an example page"),
			"rank":     {42},
		}
		if err := tbl.PutRow(p, "row-0001", fields); err != nil {
			t.Error(err)
			return
		}
		got, err := tbl.GetRow(p, "row-0001")
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 3 {
			t.Errorf("fields = %d, want 3", len(got))
		}
		for k, v := range fields {
			if !bytes.Equal(got[k], v) {
				t.Errorf("field %s mismatch", k)
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestTableRowSurvivesFlush(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	slice := NewSlice(env, store, sliceConfig(store, true))
	tbl := NewTable("x", slice)
	w := env.Go("t", func(p *sim.Proc) {
		if err := tbl.PutRow(p, "r", map[string][]byte{"f": []byte("v")}); err != nil {
			t.Error(err)
			return
		}
		if err := slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		got, err := tbl.GetRow(p, "r")
		if err != nil || string(got["f"]) != "v" {
			t.Errorf("row after flush: %v %v", got, err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestTablesDoNotCollide(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	slice := NewSlice(env, store, sliceConfig(store, true))
	a := NewTable("a", slice)
	b := NewTable("b", slice)
	w := env.Go("t", func(p *sim.Proc) {
		if err := a.PutRow(p, "r", map[string][]byte{"v": []byte("A")}); err != nil {
			t.Error(err)
			return
		}
		if err := b.PutRow(p, "r", map[string][]byte{"v": []byte("B")}); err != nil {
			t.Error(err)
			return
		}
		ga, _ := a.GetRow(p, "r")
		gb, _ := b.GetRow(p, "r")
		if string(ga["v"]) != "A" || string(gb["v"]) != "B" {
			t.Errorf("cross-table collision: %q %q", ga["v"], gb["v"])
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestFSMultiSegmentFile(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	fs := NewFS(NewSlice(env, store, sliceConfig(store, true)), 10_000)
	data := make([]byte, 35_000) // 4 segments
	rand.New(rand.NewSource(5)).Read(data)
	w := env.Go("t", func(p *sim.Proc) {
		if err := fs.WriteFile(p, "images/cat.jpg", data, 0); err != nil {
			t.Error(err)
			return
		}
		got, size, err := fs.ReadFile(p, "images/cat.jpg")
		if err != nil || size != len(data) || !bytes.Equal(got, data) {
			t.Errorf("ReadFile: size=%d err=%v", size, err)
		}
		if n, ok := fs.FileSize("images/cat.jpg"); !ok || n != len(data) {
			t.Errorf("FileSize = %d/%v", n, ok)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestFSEmptyFile(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	fs := NewFS(NewSlice(env, store, sliceConfig(store, true)), 10_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := fs.WriteFile(p, "empty", []byte{}, 0); err != nil {
			t.Error(err)
			return
		}
		_, size, err := fs.ReadFile(p, "empty")
		if err != nil || size != 0 {
			t.Errorf("empty file: size=%d err=%v", size, err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestFSMissingFile(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	fs := NewFS(NewSlice(env, store, sliceConfig(store, true)), 10_000)
	w := env.Go("t", func(p *sim.Proc) {
		if _, _, err := fs.ReadFile(p, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing file: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestFSTimingMode(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, false)
	fs := NewFS(NewSlice(env, store, sliceConfig(store, false)), 50_000)
	w := env.Go("t", func(p *sim.Proc) {
		if err := fs.WriteFile(p, "f", nil, 120_000); err != nil {
			t.Error(err)
			return
		}
		_, size, err := fs.ReadFile(p, "f")
		if err != nil || size != 120_000 {
			t.Errorf("timing-mode file: size=%d err=%v", size, err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestKVFacadeNamespace(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	slice := NewSlice(env, store, sliceConfig(store, true))
	kv := NewKV(slice)
	w := env.Go("t", func(p *sim.Proc) {
		if err := kv.Put(p, "k", []byte("v"), 1); err != nil {
			t.Error(err)
			return
		}
		got, _, err := kv.Get(p, "k")
		if err != nil || string(got) != "v" {
			t.Errorf("KV round trip: %q %v", got, err)
		}
		// The raw keyspace must not see unprefixed keys.
		if _, _, err := slice.Get(p, "k"); !errors.Is(err, ErrNotFound) {
			t.Errorf("namespace leak: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestThreeSubsystemsShareOneSlice(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	slice := NewSlice(env, store, sliceConfig(store, true))
	tbl := NewTable("t", slice)
	fs := NewFS(slice, 20_000)
	kv := NewKV(slice)
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			if err := tbl.PutRow(p, fmt.Sprintf("r%02d", i), map[string][]byte{"d": bytes.Repeat([]byte{1}, 999)}); err != nil {
				t.Error(err)
				return
			}
			if err := fs.WriteFile(p, fmt.Sprintf("f%02d", i), bytes.Repeat([]byte{2}, 3000), 0); err != nil {
				t.Error(err)
				return
			}
			if err := kv.Put(p, fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{3}, 500), 500); err != nil {
				t.Error(err)
				return
			}
		}
		if err := slice.Flush(p); err != nil {
			t.Error(err)
			return
		}
		row, err := tbl.GetRow(p, "r07")
		if err != nil || len(row["d"]) != 999 {
			t.Errorf("table read-back: %v", err)
		}
		f, n, err := fs.ReadFile(p, "f13")
		if err != nil || n != 3000 || f[0] != 2 {
			t.Errorf("fs read-back: %v", err)
		}
		v, _, err := kv.Get(p, "k19")
		if err != nil || len(v) != 500 || v[0] != 3 {
			t.Errorf("kv read-back: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
