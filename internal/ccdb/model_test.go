package ccdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/sim"
)

// TestModelBasedRandomOps drives a slice with a long random sequence
// of Put/Get/Flush operations and checks every observable result
// against a plain map model — across memtable, patches, and
// compactions.
func TestModelBasedRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			env := sim.NewEnv()
			store := sdfStore(t, env, true)
			cfg := sliceConfig(store, true)
			cfg.RunsPerTier = 3
			s := NewSlice(env, store, cfg)
			model := make(map[string][]byte)
			rng := rand.New(rand.NewSource(seed))
			w := env.Go("driver", func(p *sim.Proc) {
				for op := 0; op < 500; op++ {
					switch rng.Intn(10) {
					case 0: // flush
						if err := s.Flush(p); err != nil {
							t.Errorf("op %d flush: %v", op, err)
							return
						}
					case 1, 2, 3, 4: // put
						key := fmt.Sprintf("key%02d", rng.Intn(40))
						val := make([]byte, 200+rng.Intn(2000))
						rng.Read(val)
						if err := s.Put(p, key, val, len(val)); err != nil {
							t.Errorf("op %d put: %v", op, err)
							return
						}
						model[key] = val
					default: // get
						key := fmt.Sprintf("key%02d", rng.Intn(40))
						want, exists := model[key]
						got, size, err := s.Get(p, key)
						if !exists {
							if !errors.Is(err, ErrNotFound) {
								t.Errorf("op %d get %s: want NotFound, got %v", op, key, err)
								return
							}
							continue
						}
						if err != nil {
							t.Errorf("op %d get %s: %v", op, key, err)
							return
						}
						if size != len(want) || !bytes.Equal(got, want) {
							t.Errorf("op %d get %s: wrong value (size %d vs %d)", op, key, size, len(want))
							return
						}
					}
					// Let background compaction interleave.
					if rng.Intn(20) == 0 {
						p.Wait(time.Duration(rng.Intn(500)) * time.Millisecond)
					}
				}
				// Final sweep: everything in the model must be intact.
				p.Wait(10 * time.Second)
				for key, want := range model {
					got, _, err := s.Get(p, key)
					if err != nil || !bytes.Equal(got, want) {
						t.Errorf("final get %s: %v", key, err)
						return
					}
				}
			})
			env.RunUntilDone(w)
			env.Close()
		})
	}
}
