package ccdb

import (
	"fmt"
	"sort"
	"strings"

	"sdf/internal/sim"
)

// The storage system serves three data formats — database tables,
// files, and plain KV pairs — through three subsystems (Table, FS,
// KV) that are all implemented over the same sliced KV substrate
// (§2.4): "In the Table system, the key is the index of a table row,
// and the value is the remaining fields of the row. In the FS system,
// the path name of a file is the key and the data or a segment of
// data of the file is the value."

// Table is the row-oriented facade: one slice holds rows keyed by a
// row index, each row a set of named fields.
type Table struct {
	name  string
	slice *Slice
}

// NewTable wraps a slice as a table.
func NewTable(name string, slice *Slice) *Table {
	return &Table{name: name, slice: slice}
}

// rowKey builds the storage key for a row.
func (t *Table) rowKey(row string) string {
	return "tbl/" + t.name + "/" + row
}

// PutRow stores the fields of a row. In timing-only mode pass nil
// field values with sizes encoded via FieldSizes instead.
func (t *Table) PutRow(p *sim.Proc, row string, fields map[string][]byte) error {
	// Fields serialize deterministically: sorted by name, each as
	// name\0value\0.
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	for _, n := range names {
		buf = append(buf, n...)
		buf = append(buf, 0)
		buf = append(buf, fields[n]...)
		buf = append(buf, 0)
	}
	return t.slice.Put(p, t.rowKey(row), buf, len(buf))
}

// GetRow fetches a row's fields (data mode).
func (t *Table) GetRow(p *sim.Proc, row string) (map[string][]byte, error) {
	val, _, err := t.slice.Get(p, t.rowKey(row))
	if err != nil {
		return nil, err
	}
	fields := make(map[string][]byte)
	for len(val) > 0 {
		i := indexByte(val, 0)
		if i < 0 {
			return nil, fmt.Errorf("ccdb: corrupt row %q", row)
		}
		name := string(val[:i])
		val = val[i+1:]
		j := indexByte(val, 0)
		if j < 0 {
			return nil, fmt.Errorf("ccdb: corrupt row %q", row)
		}
		fields[name] = append([]byte(nil), val[:j]...)
		val = val[j+1:]
	}
	return fields, nil
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// FS is the file facade: a path names a file, stored as fixed-size
// segments so large files span patches.
type FS struct {
	slice   *Slice
	segSize int
	// sizes tracks file lengths; in production this is part of the
	// DRAM-resident metadata.
	sizes map[string]int
}

// NewFS wraps a slice as a file store with the given segment size.
func NewFS(slice *Slice, segSize int) *FS {
	if segSize <= 0 {
		segSize = 1 << 20
	}
	return &FS{slice: slice, segSize: segSize, sizes: make(map[string]int)}
}

// segKey names segment i of a path.
func (fs *FS) segKey(path string, i int) string {
	return fmt.Sprintf("fs/%s/%08d", path, i)
}

// WriteFile stores data under path, replacing any previous content.
// size is used in timing-only mode (data nil).
func (fs *FS) WriteFile(p *sim.Proc, path string, data []byte, size int) error {
	if data != nil {
		size = len(data)
	}
	if strings.Contains(path, "\x00") {
		return fmt.Errorf("ccdb: invalid path")
	}
	for i, off := 0, 0; off < size || i == 0; i, off = i+1, off+fs.segSize {
		n := size - off
		if n > fs.segSize {
			n = fs.segSize
		}
		var seg []byte
		if data != nil {
			seg = data[off : off+n]
		}
		if err := fs.slice.Put(p, fs.segKey(path, i), seg, n); err != nil {
			return err
		}
	}
	fs.sizes[path] = size
	return nil
}

// ReadFile fetches a whole file (data mode returns the bytes; timing
// mode returns nil with the correct size).
func (fs *FS) ReadFile(p *sim.Proc, path string) ([]byte, int, error) {
	size, ok := fs.sizes[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	var out []byte
	got := 0
	for i := 0; got < size || i == 0; i++ {
		val, n, err := fs.slice.Get(p, fs.segKey(path, i))
		if err != nil {
			return nil, 0, err
		}
		if val != nil {
			out = append(out, val...)
		}
		got += n
		if n == 0 {
			break
		}
	}
	return out, got, nil
}

// FileSize reports a file's length without touching storage (the
// metadata is in DRAM).
func (fs *FS) FileSize(path string) (int, bool) {
	n, ok := fs.sizes[path]
	return n, ok
}

// KV is the plain key-value facade — a thin naming wrapper that keeps
// the three subsystems' keyspaces disjoint on a shared slice.
type KV struct {
	slice *Slice
}

// NewKV wraps a slice as a KV store.
func NewKV(slice *Slice) *KV { return &KV{slice: slice} }

// Put stores value under key.
func (kv *KV) Put(p *sim.Proc, key string, value []byte, size int) error {
	return kv.slice.Put(p, "kv/"+key, value, size)
}

// Get fetches key.
func (kv *KV) Get(p *sim.Proc, key string) ([]byte, int, error) {
	return kv.slice.Get(p, "kv/"+key)
}
