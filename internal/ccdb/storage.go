// Package ccdb implements Baidu's CCDB: the log-structured-merge KV
// store that carries the Table, FS, and KV services on top of SDF
// (§2.4). Arriving writes accumulate in an 8 MB in-memory container;
// full containers become immutable "patches" (the analogue of
// BigTable's SSTables) written to storage in exactly the SDF write
// unit. Patches undergo multiple merge-sorts (size-tiered compaction)
// on their way into the final large log. All patch metadata lives in
// DRAM, so a client Get costs exactly one storage read.
package ccdb

import (
	"errors"
	"fmt"

	"sdf/internal/blocklayer"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// Ref names one stored patch block.
type Ref uint64

// ErrStorageFull is returned when no block slots remain.
var ErrStorageFull = errors.New("ccdb: storage full")

// Storage is the block-granular device interface CCDB writes patches
// through: fixed-size block writes, page-aligned reads, and explicit
// frees. SDFStore maps it onto the user-space block layer; SSDStore
// maps it onto a conventional SSD for the paper's baseline runs.
type Storage interface {
	// BlockSize is the fixed patch size in bytes (8 MB).
	BlockSize() int
	// PageSize is the read granularity in bytes.
	PageSize() int
	// Write stores one block. data must be BlockSize long or nil
	// (timing-only mode).
	Write(p *sim.Proc, data []byte) (Ref, error)
	// ReadAt returns size bytes at byte offset off within the block.
	// Unaligned spans are widened to page boundaries internally.
	ReadAt(p *sim.Proc, ref Ref, off, size int) ([]byte, error)
	// Free releases the block.
	Free(p *sim.Proc, ref Ref) error
}

// SDFStore adapts the user-space block layer to CCDB. Block IDs come
// from a monotone counter, standing in for the cluster's ID-generation
// service (§2.4), so consecutive patches land on consecutive channels.
type SDFStore struct {
	layer  *blocklayer.Layer
	nextID uint64
}

// NewSDFStore wraps a block layer. On a remounted layer the ID
// counter resumes above the largest recovered block ID, so fresh
// patches never collide with survivors.
func NewSDFStore(layer *blocklayer.Layer) *SDFStore {
	s := &SDFStore{layer: layer}
	if max, ok := layer.MaxID(); ok {
		s.nextID = uint64(max) + 1
	}
	return s
}

// LiveRefs returns every block ID the layer currently addresses, in
// ascending order — the set MountSlice checks the manifest against to
// free orphaned patches.
func (s *SDFStore) LiveRefs() []Ref {
	ids := s.layer.IDs()
	refs := make([]Ref, len(ids))
	for i, id := range ids {
		refs[i] = Ref(id)
	}
	return refs
}

// BlockSize returns the SDF write unit.
func (s *SDFStore) BlockSize() int { return s.layer.BlockSize() }

// PageSize returns the SDF read unit.
func (s *SDFStore) PageSize() int { return s.layer.PageSize() }

// Write stores one patch block under a fresh ID.
func (s *SDFStore) Write(p *sim.Proc, data []byte) (Ref, error) {
	id := blocklayer.BlockID(s.nextID)
	s.nextID++
	if _, err := s.layer.Write(p, id, data); err != nil {
		return 0, err
	}
	return Ref(id), nil
}

// ReadAt reads a page-aligned span covering [off, off+size).
func (s *SDFStore) ReadAt(p *sim.Proc, ref Ref, off, size int) ([]byte, error) {
	start, end := alignSpan(off, size, s.PageSize(), s.BlockSize())
	data, err := s.layer.Read(p, blocklayer.BlockID(ref), start, end-start)
	if err != nil {
		return nil, err
	}
	if data == nil {
		return nil, nil
	}
	return data[off-start : off-start+size], nil
}

// Free returns the patch's block to the channel pool; the block
// layer's idle-time eraser reclaims it.
func (s *SDFStore) Free(p *sim.Proc, ref Ref) error {
	return s.layer.Free(p, blocklayer.BlockID(ref))
}

// SSDStore adapts a conventional SSD: patches live in fixed 8 MB
// extents of the logical address space; frees become Trims so the
// drive's garbage collector can reclaim the space.
type SSDStore struct {
	dev       *ssd.SSD
	blockSize int
	free      []int64 // extent indices
	used      map[Ref]int64
	nextRef   uint64
}

// NewSSDStore carves the SSD's logical space into blockSize extents.
func NewSSDStore(dev *ssd.SSD, blockSize int) *SSDStore {
	s := &SSDStore{
		dev:       dev,
		blockSize: blockSize,
		used:      make(map[Ref]int64),
	}
	n := dev.Capacity() / int64(blockSize)
	for i := n - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// BlockSize returns the patch size.
func (s *SSDStore) BlockSize() int { return s.blockSize }

// PageSize returns the drive's page size.
func (s *SSDStore) PageSize() int { return s.dev.PageSize() }

// Write stores one patch into a free extent.
func (s *SSDStore) Write(p *sim.Proc, data []byte) (Ref, error) {
	if data != nil && len(data) != s.blockSize {
		return 0, fmt.Errorf("ccdb: write payload %d bytes, want %d", len(data), s.blockSize)
	}
	if len(s.free) == 0 {
		return 0, ErrStorageFull
	}
	ext := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	if err := s.dev.Write(p, ext*int64(s.blockSize), int64(s.blockSize)); err != nil {
		s.free = append(s.free, ext)
		return 0, err
	}
	ref := Ref(s.nextRef)
	s.nextRef++
	s.used[ref] = ext
	return ref, nil
}

// ReadAt reads a page-aligned span covering [off, off+size). The
// conventional SSD model is timing-only, so it returns nil data.
func (s *SSDStore) ReadAt(p *sim.Proc, ref Ref, off, size int) ([]byte, error) {
	ext, ok := s.used[ref]
	if !ok {
		return nil, fmt.Errorf("ccdb: read of unknown ref %d", ref)
	}
	start, end := alignSpan(off, size, s.PageSize(), s.blockSize)
	if err := s.dev.Read(p, ext*int64(s.blockSize)+int64(start), int64(end-start)); err != nil {
		return nil, err
	}
	return nil, nil
}

// Free trims the extent and recycles it.
func (s *SSDStore) Free(p *sim.Proc, ref Ref) error {
	ext, ok := s.used[ref]
	if !ok {
		return fmt.Errorf("ccdb: free of unknown ref %d", ref)
	}
	delete(s.used, ref)
	if err := s.dev.Trim(p, ext*int64(s.blockSize), int64(s.blockSize)); err != nil {
		return err
	}
	s.free = append(s.free, ext)
	return nil
}

// alignSpan widens [off, off+size) to page boundaries, clamped to the
// block.
func alignSpan(off, size, page, block int) (start, end int) {
	start = off / page * page
	end = (off + size + page - 1) / page * page
	if end > block {
		end = block
	}
	return start, end
}
