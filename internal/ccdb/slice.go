package ccdb

import (
	"errors"
	"fmt"
	"sort"

	"sdf/internal/metrics"
	"sdf/internal/sim"
)

// Lookup and write errors.
var (
	ErrNotFound = errors.New("ccdb: key not found")
	ErrTooLarge = errors.New("ccdb: value exceeds patch capacity")
	ErrBadValue = errors.New("ccdb: value length disagrees with declared size")
)

// Config tunes a slice.
type Config struct {
	// PatchBytes is the container/patch capacity — 8 MB, matching the
	// SDF write unit (§2.4).
	PatchBytes int
	// RunsPerTier is the size-tiered compaction fan-in: when a tier
	// accumulates this many runs they are merge-sorted into one run of
	// the next tier.
	RunsPerTier int
	// DataMode stores real value bytes; otherwise only sizes and
	// timing are tracked.
	DataMode bool
	// Journal, when set, models the mirrored log device: Puts append
	// to it before entering the memtable (write-ahead), flushes and
	// compactions record patch-manifest updates on it, and MountSlice
	// rebuilds the slice from it after a power loss. nil keeps the
	// old behavior (no durability tracking).
	Journal *Journal
}

// DefaultConfig returns the production parameters.
func DefaultConfig() Config {
	return Config{PatchBytes: 8 << 20, RunsPerTier: 4}
}

// Entry is one KV pair in the memtable.
type Entry struct {
	Key   string
	Size  int
	Value []byte // nil in timing-only mode
}

// patch is one immutable sorted 8 MB block on storage. Its index
// (keys, offsets, sizes) lives permanently in DRAM, so serving a Get
// costs exactly one storage read (§2.4).
type patch struct {
	ref   Ref
	keys  []string
	offs  []int
	sizes []int
	pins  int
	dead  bool // freed once pins reaches zero
}

func (pt *patch) first() string { return pt.keys[0] }
func (pt *patch) last() string  { return pt.keys[len(pt.keys)-1] }

// find returns the index of key in the patch.
func (pt *patch) find(key string) (int, bool) {
	i := sort.SearchStrings(pt.keys, key)
	if i < len(pt.keys) && pt.keys[i] == key {
		return i, true
	}
	return 0, false
}

// run is a sequence of patches sorted by key with disjoint ranges.
type run []*patch

// findPatch returns the patch that may contain key.
func (r run) findPatch(key string) *patch {
	i := sort.Search(len(r), func(i int) bool { return r[i].last() >= key })
	if i < len(r) && r[i].first() <= key {
		return r[i]
	}
	return nil
}

// Slice is one LSM-tree instance serving a key range — the unit of
// data distribution in Baidu's storage system (§2.4). Methods taking a
// *sim.Proc block in virtual time; a slice may be used by many
// processes concurrently.
type Slice struct {
	env     *sim.Env
	store   Storage
	cfg     Config
	mem     []Entry
	memIdx  map[string]int
	memUsed int
	// flushing holds the swapped-out memtable for the duration of its
	// patch write, keeping those entries readable: without it a key
	// would vanish from lookups for the whole (milliseconds-long)
	// block write, in neither the memtable nor any tier.
	flushing    []Entry
	flushingIdx map[string]int
	tiers       [][]run
	flushMu     *sim.Resource

	compactKick *sim.Signal
	compactBusy bool

	stats Stats
}

// Stats counts slice activity.
type Stats struct {
	Puts            int64
	Gets            int64
	GetsFromMem     int64
	Flushes         int64
	Compactions     int64
	PatchesWritten  int64
	PatchesFreed    int64
	CompactionReads int64 // patches read by merges
}

// NewSlice creates a slice over the given storage and starts its
// background compaction process.
func NewSlice(env *sim.Env, store Storage, cfg Config) *Slice {
	s := newSlice(env, store, cfg)
	env.Go("ccdb/compactor", s.compactLoop)
	return s
}

// newSlice builds the slice without starting the compactor —
// MountSlice rebuilds the tiers first.
func newSlice(env *sim.Env, store Storage, cfg Config) *Slice {
	if cfg.PatchBytes <= 0 {
		cfg.PatchBytes = store.BlockSize()
	}
	if cfg.PatchBytes > store.BlockSize() {
		panic("ccdb: patch larger than storage block")
	}
	if cfg.RunsPerTier < 2 {
		cfg.RunsPerTier = 2
	}
	return &Slice{
		env:         env,
		store:       store,
		cfg:         cfg,
		memIdx:      make(map[string]int),
		flushMu:     sim.NewResource(env, 1),
		compactKick: sim.NewSignal(env),
	}
}

// Stats returns a snapshot of activity counters.
func (s *Slice) Stats() Stats { return s.stats }

// RegisterMetrics exports the slice's activity counters and
// steady-state gauges against r: memtable bytes, journal replay
// backlog, live patch count, and whether compaction is running.
// Callbacks read in-memory state only — park-free, per the registry's
// callback contract.
func (s *Slice) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.CounterFunc("ccdb_puts_total", func() int64 { return s.stats.Puts }, labels...)
	r.CounterFunc("ccdb_gets_total", func() int64 { return s.stats.Gets }, labels...)
	r.CounterFunc("ccdb_gets_from_mem_total", func() int64 { return s.stats.GetsFromMem }, labels...)
	r.CounterFunc("ccdb_flushes_total", func() int64 { return s.stats.Flushes }, labels...)
	r.CounterFunc("ccdb_compactions_total", func() int64 { return s.stats.Compactions }, labels...)
	r.CounterFunc("ccdb_patches_written_total", func() int64 { return s.stats.PatchesWritten }, labels...)
	r.CounterFunc("ccdb_patches_freed_total", func() int64 { return s.stats.PatchesFreed }, labels...)
	r.CounterFunc("ccdb_compaction_reads_total", func() int64 { return s.stats.CompactionReads }, labels...)
	r.GaugeFunc("ccdb_mem_bytes", func() float64 { return float64(s.memUsed) }, labels...)
	r.GaugeFunc("ccdb_journal_bytes", func() float64 { return float64(s.cfg.Journal.Bytes()) }, labels...)
	r.GaugeFunc("ccdb_manifest_records", func() float64 { return float64(s.cfg.Journal.ManifestRecords()) }, labels...)
	r.CounterFunc("ccdb_manifest_compactions_total", func() int64 { return s.cfg.Journal.Compactions() }, labels...)
	r.CounterFunc("ccdb_journal_truncated_puts_total", func() int64 { return s.cfg.Journal.TruncatedPuts() }, labels...)
	r.GaugeFunc("ccdb_patches", func() float64 { return float64(s.Patches()) }, labels...)
	r.GaugeFunc("ccdb_compacting", func() float64 {
		if s.Compacting() {
			return 1
		}
		return 0
	}, labels...)
}

// MemBytes returns the bytes buffered in the container.
func (s *Slice) MemBytes() int { return s.memUsed }

// Compacting reports whether a merge is running or due.
func (s *Slice) Compacting() bool {
	return s.compactBusy || s.overfullTier() >= 0
}

// Patches returns the number of live patches across all tiers.
func (s *Slice) Patches() int {
	n := 0
	for _, tier := range s.tiers {
		for _, r := range tier {
			n += len(r)
		}
	}
	return n
}

// Put stores a KV pair. value may be nil in timing mode, with size
// giving the value length. When the in-memory container reaches the
// patch capacity it is flushed as one 8 MB block write, and Put blocks
// for that write — giving writers the patch-granular rhythm of the
// production system (§3.3.3). With a journal configured the entry is
// appended to the write-ahead log before it enters the memtable, so a
// nil return means the write is durable: it survives a power loss of
// the SDF through mount-time replay. A Put rejected by a halted
// journal was never acknowledged and never becomes visible.
func (s *Slice) Put(p *sim.Proc, key string, value []byte, size int) error {
	if value != nil && len(value) != size {
		return fmt.Errorf("%w: len=%d size=%d", ErrBadValue, len(value), size)
	}
	if s.entryBytes(key, size) > s.cfg.PatchBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	if s.cfg.DataMode && value != nil {
		value = append([]byte(nil), value...)
	}
	if s.memUsed+s.entryBytes(key, size) > s.cfg.PatchBytes {
		if err := s.Flush(p); err != nil {
			return err
		}
	}
	if err := s.cfg.Journal.appendPut(key, value, size); err != nil {
		return err
	}
	if i, ok := s.memIdx[key]; ok {
		s.memUsed += size - s.mem[i].Size
		s.mem[i] = Entry{Key: key, Size: size, Value: value}
	} else {
		s.memIdx[key] = len(s.mem)
		s.mem = append(s.mem, Entry{Key: key, Size: size, Value: value})
		s.memUsed += s.entryBytes(key, size)
	}
	s.stats.Puts++
	return nil
}

// entryBytes is the container space an entry occupies (value plus a
// nominal per-key metadata charge).
func (s *Slice) entryBytes(key string, size int) int {
	return size + len(key) + 16
}

// Flush writes the container out as one patch. It is a no-op on an
// empty container.
func (s *Slice) Flush(p *sim.Proc) error {
	s.flushMu.Acquire(p)
	defer s.flushMu.Release()
	if len(s.mem) == 0 {
		return nil
	}
	entries := s.mem
	watermark := s.cfg.Journal.putCount()
	s.mem = nil
	s.memIdx = make(map[string]int)
	s.memUsed = 0
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	s.flushing = entries
	s.flushingIdx = make(map[string]int, len(entries))
	for i, e := range entries {
		s.flushingIdx[e.Key] = i
	}
	pt, err := s.writePatch(p, entries)
	s.flushing = nil
	s.flushingIdx = nil
	if err != nil {
		// The patch never landed (dead or powered-off channel):
		// return the entries to the memtable so they stay visible and
		// get another chance on the next flush. Keys overwritten by
		// puts that arrived during the failed write keep the newer
		// value.
		s.mergeBack(entries)
		return err
	}
	// The patch is durable; manifest it and truncate the log records
	// it covers. A halted journal skips both together, leaving the
	// entries replayable from the log.
	if s.cfg.Journal.appendRun(0, []*patch{pt}) {
		s.cfg.Journal.truncate(watermark)
	}
	s.insertRun(0, run{pt})
	s.stats.Flushes++
	return nil
}

// mergeBack reinstates entries from a failed patch write.
func (s *Slice) mergeBack(entries []Entry) {
	for _, e := range entries {
		if _, ok := s.memIdx[e.Key]; ok {
			continue
		}
		s.memIdx[e.Key] = len(s.mem)
		s.mem = append(s.mem, e)
		s.memUsed += s.entryBytes(e.Key, e.Size)
	}
}

// writePatch serializes sorted entries into one block write.
func (s *Slice) writePatch(p *sim.Proc, entries []Entry) (*patch, error) {
	pt := &patch{}
	var payload []byte
	if s.cfg.DataMode {
		payload = make([]byte, s.store.BlockSize())
	}
	off := 0
	for _, e := range entries {
		pt.keys = append(pt.keys, e.Key)
		pt.offs = append(pt.offs, off)
		pt.sizes = append(pt.sizes, e.Size)
		if payload != nil && e.Value != nil {
			copy(payload[off:], e.Value)
		}
		off += e.Size
	}
	ref, err := s.store.Write(p, payload)
	if err != nil {
		return nil, err
	}
	pt.ref = ref
	s.stats.PatchesWritten++
	return pt, nil
}

// insertRun adds a run to a tier and wakes the compactor if the tier
// is over its fan-in.
func (s *Slice) insertRun(tier int, r run) {
	for len(s.tiers) <= tier {
		s.tiers = append(s.tiers, nil)
	}
	s.tiers[tier] = append(s.tiers[tier], r)
	if len(s.tiers[tier]) >= s.cfg.RunsPerTier {
		s.compactKick.Fire()
	}
}

// Get returns the value (data mode) and size for key. The lookup
// walks the memtable, then runs from newest to oldest; at most one
// storage read is issued.
func (s *Slice) Get(p *sim.Proc, key string) ([]byte, int, error) {
	s.stats.Gets++
	if i, ok := s.memIdx[key]; ok {
		s.stats.GetsFromMem++
		e := s.mem[i]
		return e.Value, e.Size, nil
	}
	// An entry mid-flush is older than the live memtable but newer
	// than every patch.
	if i, ok := s.flushingIdx[key]; ok {
		s.stats.GetsFromMem++
		e := s.flushing[i]
		return e.Value, e.Size, nil
	}
	// Tier 0 holds the newest data; within a tier, later runs are
	// newer.
	for _, tier := range s.tiers {
		for i := len(tier) - 1; i >= 0; i-- {
			pt := tier[i].findPatch(key)
			if pt == nil {
				continue
			}
			idx, ok := pt.find(key)
			if !ok {
				continue
			}
			return s.readEntry(p, pt, idx)
		}
	}
	return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
}

// readEntry performs the single storage read for entry idx of pt.
func (s *Slice) readEntry(p *sim.Proc, pt *patch, idx int) ([]byte, int, error) {
	pt.pins++
	defer s.unpin(pt)
	data, err := s.store.ReadAt(p, pt.ref, pt.offs[idx], pt.sizes[idx])
	if err != nil {
		return nil, 0, err
	}
	return data, pt.sizes[idx], nil
}

// unpin releases a reader reference, freeing the patch if it was
// retired while being read.
func (s *Slice) unpin(pt *patch) {
	pt.pins--
	if pt.dead && pt.pins == 0 {
		s.env.Go("ccdb/free", func(p *sim.Proc) {
			//sdflint:allow errdrop the manifest del is already durable; a failed free leaves an orphan the next mount's replay reclaims
			_ = s.store.Free(p, pt.ref)
		})
		s.stats.PatchesFreed++
	}
}

// retire frees a patch now or when its last reader finishes. The
// manifest del lands before the (possibly blocking) device free, so a
// crash mid-free leaves at worst an orphan for replay to reclaim.
func (s *Slice) retire(p *sim.Proc, pt *patch) {
	s.cfg.Journal.appendDel(pt.ref)
	pt.dead = true
	if pt.pins == 0 {
		//sdflint:allow errdrop the manifest del is already durable; a failed free leaves an orphan the next mount's replay reclaims
		_ = s.store.Free(p, pt.ref)
		s.stats.PatchesFreed++
	}
}

// Keys returns the number of distinct keys visible (memtable plus all
// patches; duplicates across runs counted once). It is an O(n) DRAM
// walk for tests and tooling.
func (s *Slice) Keys() int {
	seen := make(map[string]bool)
	for _, e := range s.mem {
		seen[e.Key] = true
	}
	for _, e := range s.flushing {
		seen[e.Key] = true
	}
	for _, tier := range s.tiers {
		for _, r := range tier {
			for _, pt := range r {
				for _, k := range pt.keys {
					seen[k] = true
				}
			}
		}
	}
	return len(seen)
}

// Scan reads every live patch in full using the given number of
// concurrent reader processes — the access pattern of inverted-index
// construction (§3.3.2, Figure 13; the production system uses six
// threads per slice). It returns the total bytes read from storage.
func (s *Slice) Scan(p *sim.Proc, threads int) (int64, error) {
	if threads < 1 {
		threads = 1
	}
	var patches []*patch
	for _, tier := range s.tiers {
		for _, r := range tier {
			patches = append(patches, r...)
		}
	}
	for _, pt := range patches {
		pt.pins++
	}
	queue := sim.NewQueue[*patch](s.env)
	for _, pt := range patches {
		queue.Put(pt)
	}
	var total int64
	var firstErr error
	var workers []*sim.Proc
	for i := 0; i < threads; i++ {
		w := s.env.Go("ccdb/scan", func(wp *sim.Proc) {
			for queue.Len() > 0 {
				pt := queue.Get(wp)
				n, err := s.scanPatch(wp, pt)
				if err != nil && firstErr == nil {
					firstErr = err
				}
				total += n
			}
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for _, pt := range patches {
		s.unpin(pt)
	}
	return total, firstErr
}

// scanPatch reads one patch end to end.
func (s *Slice) scanPatch(p *sim.Proc, pt *patch) (int64, error) {
	if len(pt.keys) == 0 {
		return 0, nil
	}
	last := len(pt.keys) - 1
	span := pt.offs[last] + pt.sizes[last]
	if span == 0 {
		return 0, nil
	}
	if _, err := s.store.ReadAt(p, pt.ref, 0, span); err != nil {
		return 0, err
	}
	return int64(span), nil
}
