// Crash durability for CCDB: the write-ahead log, the patch
// manifest, and mount-time replay.
package ccdb

import (
	"errors"
	"fmt"

	"sdf/internal/sim"
	"sdf/internal/trace"
)

// ErrJournalHalted is returned by Put once the journal's log device
// has been lost to a power cut: the write cannot be made durable, so
// it is never acknowledged and never enters the memtable.
var ErrJournalHalted = errors.New("ccdb: journal halted by power loss")

// logRecord is one journaled Put.
type logRecord struct {
	key   string
	size  int
	value []byte // nil in timing mode
}

type manifestOp uint8

const (
	manifestAdd manifestOp = iota
	manifestDel
)

// manifestRecord is one patch lifecycle event. Add records carry the
// patch's full DRAM index (keys, offsets, sizes) plus its run
// placement, so replay rebuilds the tier structure without touching
// the data device; del records name a retired ref.
type manifestRecord struct {
	op    manifestOp
	ref   Ref
	tier  int
	runID uint64
	keys  []string
	offs  []int
	sizes []int
}

// Journal models the separate mirrored log device that carries a
// slice's write-ahead log and patch manifest. Appends are durable the
// moment they return — the log device is mirrored and outlives a
// power loss of the SDF it fronts — so after a crash MountSlice can
// rebuild the slice from it. The log's bandwidth is never the
// bottleneck (it is not the device under study), so the simulation
// charges its appends no virtual time; what the journal defines is
// exactly which state a crash preserves: a Put whose append was
// rejected (Halt already called) is never acknowledged, and a patch
// whose manifest add is missing is an orphan that replay frees.
//
// All methods are safe on a nil receiver, so a slice configured
// without a journal behaves exactly as before.
type Journal struct {
	puts     []logRecord
	manifest []manifestRecord
	nextRun  uint64
	halted   bool
	// compactions counts manifest rewrites; truncatedPuts counts log
	// records dropped at flush watermarks. Both feed the registry.
	compactions   int64
	truncatedPuts int64
}

// manifestSlack is how many dead manifest records are tolerated before
// a rewrite: the manifest is compacted once it exceeds twice the live
// record count plus this slack, so replay work stays proportional to
// live state rather than to lifetime churn.
const manifestSlack = 64

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Halt marks the crash instant: every later append is rejected, so
// writes racing the power cut are never acknowledged. It is a pure
// flag flip, safe to call from scheduler context (an env.Schedule
// callback alongside Device.PowerLoss).
func (j *Journal) Halt() {
	if j != nil {
		j.halted = true
	}
}

// Halted reports whether Halt has been called.
func (j *Journal) Halted() bool { return j != nil && j.halted }

// appendPut journals one write ahead of its memtable insert.
func (j *Journal) appendPut(key string, value []byte, size int) error {
	if j == nil {
		return nil
	}
	if j.halted {
		return ErrJournalHalted
	}
	j.puts = append(j.puts, logRecord{key: key, size: size, value: value})
	return nil
}

// putCount returns the log length — the flush watermark.
func (j *Journal) putCount() int {
	if j == nil {
		return 0
	}
	return len(j.puts)
}

// Bytes returns the replayable write-ahead payload currently held by
// the log (puts appended but not yet truncated by a flush) — the
// journal's replay backlog. Nil-safe, like every Journal method.
func (j *Journal) Bytes() int64 {
	if j == nil {
		return 0
	}
	var n int64
	for _, rec := range j.puts {
		n += int64(rec.size)
	}
	return n
}

// appendRun records freshly written patches as one run of the given
// tier under a new run ID. It reports false — recording nothing —
// when the journal is halted; the caller must then also skip its log
// truncation so the entries stay replayable.
func (j *Journal) appendRun(tier int, pts []*patch) bool {
	if j == nil {
		return true
	}
	if j.halted {
		return false
	}
	id := j.nextRun
	j.nextRun++
	for _, pt := range pts {
		j.manifest = append(j.manifest, manifestRecord{
			op: manifestAdd, ref: pt.ref, tier: tier, runID: id,
			keys: pt.keys, offs: pt.offs, sizes: pt.sizes,
		})
	}
	return true
}

// appendDel records a patch retirement. Dels are what turn manifest
// records dead (the del itself plus the add it cancels), so this is
// the growth edge that triggers compaction.
func (j *Journal) appendDel(ref Ref) {
	if j == nil || j.halted {
		return
	}
	j.manifest = append(j.manifest, manifestRecord{op: manifestDel, ref: ref})
	j.maybeCompact()
}

// truncate drops the oldest n log records once the patch holding
// their entries is durable.
func (j *Journal) truncate(n int) {
	if j == nil || j.halted {
		return
	}
	j.puts = append([]logRecord(nil), j.puts[n:]...)
	j.truncatedPuts += int64(n)
}

// ManifestRecords returns the current manifest length — the replay
// work a mount would do right now.
func (j *Journal) ManifestRecords() int {
	if j == nil {
		return 0
	}
	return len(j.manifest)
}

// Compactions returns how many times the manifest has been rewritten.
func (j *Journal) Compactions() int64 {
	if j == nil {
		return 0
	}
	return j.compactions
}

// TruncatedPuts returns the lifetime count of log records retired at
// flush watermarks.
func (j *Journal) TruncatedPuts() int64 {
	if j == nil {
		return 0
	}
	return j.truncatedPuts
}

// rebuiltRun is one run reassembled from manifest replay, keyed by the
// (tier, run ID) its adds named.
type rebuiltRun struct {
	tier  int
	runID uint64
	r     run
}

// replayManifest folds the manifest into the runs that survive it: an
// add appends its patch to the run named by (tier, run ID) — a new run
// ID opens a new run of its tier, in manifest order, which is the
// original insertion order, so newest-wins lookups keep working — and
// a del removes the patch wherever it lives. A del for an unknown ref
// is a no-op: retiring an aborted compaction output journals a del for
// a ref that was never added.
func (j *Journal) replayManifest() []*rebuiltRun {
	var runs []*rebuiltRun
	for i := range j.manifest {
		rec := &j.manifest[i]
		switch rec.op {
		case manifestAdd:
			var rr *rebuiltRun
			for _, cand := range runs {
				if cand.tier == rec.tier && cand.runID == rec.runID {
					rr = cand
					break
				}
			}
			if rr == nil {
				rr = &rebuiltRun{tier: rec.tier, runID: rec.runID}
				runs = append(runs, rr)
			}
			rr.r = append(rr.r, &patch{ref: rec.ref, keys: rec.keys, offs: rec.offs, sizes: rec.sizes})
		case manifestDel:
		del:
			for _, rr := range runs {
				for k, pt := range rr.r {
					if pt.ref == rec.ref {
						rr.r = append(rr.r[:k], rr.r[k+1:]...)
						break del
					}
				}
			}
		}
	}
	return runs
}

// maybeCompact rewrites the manifest down to its live records once the
// dead fraction dominates. The rewrite replays the current manifest
// and re-emits one add per surviving patch, preserving run grouping
// and order, so a mount replaying the compacted manifest rebuilds
// byte-identical tiers. It is skipped while halted: a compaction
// racing the power cut must not reorder what the crash preserved.
func (j *Journal) maybeCompact() {
	if j == nil || j.halted {
		return
	}
	runs := j.replayManifest()
	live := 0
	for _, rr := range runs {
		live += len(rr.r)
	}
	if len(j.manifest) <= 2*live+manifestSlack {
		return
	}
	compacted := make([]manifestRecord, 0, live)
	for _, rr := range runs {
		for _, pt := range rr.r {
			compacted = append(compacted, manifestRecord{
				op: manifestAdd, ref: pt.ref, tier: rr.tier, runID: rr.runID,
				keys: pt.keys, offs: pt.offs, sizes: pt.sizes,
			})
		}
	}
	j.manifest = compacted
	j.compactions++
}

// ReplayReport summarizes a MountSlice rebuild.
type ReplayReport struct {
	// PatchesRestored and RunsRestored count the manifest survivors
	// readdressed into the tier structure.
	PatchesRestored int
	RunsRestored    int
	// MemReplayed is how many journaled puts were re-applied to the
	// memtable (overflow during replay triggers real flushes).
	MemReplayed int
	// OrphansFreed counts device blocks holding patches whose
	// manifest add never landed — the crash hit between the block
	// write and the manifest append — which replay frees.
	OrphansFreed int
	// ManifestRecords is the total manifest length replayed.
	ManifestRecords int
}

// refLister is implemented by stores that can enumerate the blocks
// the underlying device actually holds; MountSlice uses it to detect
// and free orphaned patches.
type refLister interface{ LiveRefs() []Ref }

// MountSlice rebuilds a slice from its journal over a remounted
// store. The manifest replay restores every durable patch's DRAM
// index and tier placement, orphaned device blocks (written but never
// manifested) are freed, and the journaled puts that had not reached
// a durable patch are re-applied to the memtable. The background
// compactor starts only after the tiers are rebuilt.
func MountSlice(p *sim.Proc, env *sim.Env, store Storage, cfg Config) (*Slice, ReplayReport, error) {
	var rep ReplayReport
	j := cfg.Journal
	if j == nil {
		return nil, rep, errors.New("ccdb: MountSlice requires a journal")
	}
	// The remount brings the log device back online.
	j.halted = false
	s := newSlice(env, store, cfg)
	if t := env.Tracer(); t != nil {
		span := t.Begin(env.Now(), p.Span(), "ccdb/replay", trace.PhaseRecovery)
		defer func() { t.End(env.Now(), span) }()
	}
	rep.ManifestRecords = len(j.manifest)

	// Replay the manifest into the runs that survive it (see
	// replayManifest for the fold semantics).
	runs := j.replayManifest()
	for _, rr := range runs {
		if len(rr.r) == 0 {
			continue
		}
		for len(s.tiers) <= rr.tier {
			s.tiers = append(s.tiers, nil)
		}
		s.tiers[rr.tier] = append(s.tiers[rr.tier], rr.r)
		rep.RunsRestored++
		rep.PatchesRestored += len(rr.r)
	}

	// Free orphans: device blocks the recovered layer still addresses
	// but no live manifest record claims.
	if lr, ok := store.(refLister); ok {
		live := make(map[Ref]bool)
		for _, rr := range runs {
			for _, pt := range rr.r {
				live[pt.ref] = true
			}
		}
		for _, ref := range lr.LiveRefs() {
			if live[ref] {
				continue
			}
			if err := store.Free(p, ref); err != nil {
				return nil, rep, fmt.Errorf("ccdb: replay orphan free: %w", err)
			}
			rep.OrphansFreed++
		}
	}

	// Re-apply the unflushed tail of the write-ahead log. Put
	// re-journals each record (the log was cleared first), so the
	// watermark accounting of any flush triggered mid-replay stays
	// correct.
	pending := j.puts
	j.puts = nil
	for _, r := range pending {
		if err := s.Put(p, r.key, r.value, r.size); err != nil {
			return nil, rep, fmt.Errorf("ccdb: replay put %q: %w", r.key, err)
		}
		rep.MemReplayed++
	}

	env.Go("ccdb/compactor", s.compactLoop)
	if s.overfullTier() >= 0 {
		s.compactKick.Fire()
	}
	return s, rep, nil
}
