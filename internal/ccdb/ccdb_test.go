package ccdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// sdfStore builds a small SDF-backed store; data mode if retain.
func sdfStore(t *testing.T, env *sim.Env, retain bool) *SDFStore {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16 // 128 KB erase block, 512 KB SDF block
	cfg.Channel.Nand.RetainData = retain
	cfg.Channel.SparePerPlane = 2
	d, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewSDFStore(blocklayer.New(env, d, blocklayer.DefaultConfig()))
}

func sliceConfig(store Storage, dataMode bool) Config {
	return Config{PatchBytes: store.BlockSize(), RunsPerTier: 4, DataMode: dataMode}
}

func TestPutGetFromMemtable(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	s := NewSlice(env, store, sliceConfig(store, true))
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Put(p, "alpha", []byte("hello"), 5); err != nil {
			t.Error(err)
			return
		}
		v, size, err := s.Get(p, "alpha")
		if err != nil || size != 5 || !bytes.Equal(v, []byte("hello")) {
			t.Errorf("Get = %q/%d/%v", v, size, err)
		}
	})
	env.RunUntilDone(w)
	st := s.Stats()
	env.Close()
	if st.GetsFromMem != 1 {
		t.Fatalf("GetsFromMem = %d, want 1", st.GetsFromMem)
	}
}

func TestFlushAndGetFromPatch(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	s := NewSlice(env, store, sliceConfig(store, true))
	val := bytes.Repeat([]byte{7}, 1000)
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("key%03d", i)
			if err := s.Put(p, key, val, len(val)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if s.MemBytes() != 0 {
			t.Errorf("MemBytes = %d after flush", s.MemBytes())
		}
		v, size, err := s.Get(p, "key013")
		if err != nil || size != 1000 || !bytes.Equal(v, val) {
			t.Errorf("Get from patch failed: size=%d err=%v", size, err)
		}
	})
	env.RunUntilDone(w)
	st := s.Stats()
	env.Close()
	if st.Flushes != 1 || st.PatchesWritten != 1 {
		t.Fatalf("flushes/patches = %d/%d, want 1/1", st.Flushes, st.PatchesWritten)
	}
}

func TestGetMissingKey(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	s := NewSlice(env, store, sliceConfig(store, true))
	w := env.Go("t", func(p *sim.Proc) {
		if _, _, err := s.Get(p, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing key: %v", err)
		}
		if err := s.Put(p, "real", nil, 100); err != nil {
			t.Error(err)
			return
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if _, _, err := s.Get(p, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing key after flush: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestOverwriteNewestWins(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	s := NewSlice(env, store, sliceConfig(store, true))
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Put(p, "k", []byte("old"), 3); err != nil {
			t.Error(err)
			return
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if err := s.Put(p, "k", []byte("newer"), 5); err != nil {
			t.Error(err)
			return
		}
		v, _, err := s.Get(p, "k")
		if err != nil || string(v) != "newer" {
			t.Errorf("Get = %q/%v, want newer (memtable)", v, err)
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		v, _, err = s.Get(p, "k")
		if err != nil || string(v) != "newer" {
			t.Errorf("Get = %q/%v, want newer (two patches)", v, err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestAutoFlushOnFullContainer(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, false)
	s := NewSlice(env, store, sliceConfig(store, false))
	valSize := store.BlockSize() / 4
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := s.Put(p, fmt.Sprintf("k%02d", i), nil, valSize); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	st := s.Stats()
	env.Close()
	if st.Flushes < 1 {
		t.Fatal("container never auto-flushed")
	}
}

func TestCompactionMergesRuns(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	cfg := sliceConfig(store, true)
	cfg.RunsPerTier = 3
	s := NewSlice(env, store, cfg)
	val := bytes.Repeat([]byte{9}, 2000)
	w := env.Go("t", func(p *sim.Proc) {
		// Three flushes of overlapping key sets trigger one merge.
		for f := 0; f < 3; f++ {
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("key%03d", i*3+f)
				if err := s.Put(p, key, val, len(val)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.Flush(p); err != nil {
				t.Error(err)
				return
			}
		}
		// Let the compactor run.
		p.Wait(5 * time.Second)
		// Every key must remain readable afterwards.
		for i := 0; i < 30; i++ {
			key := fmt.Sprintf("key%03d", i)
			v, _, err := s.Get(p, key)
			if err != nil || !bytes.Equal(v, val) {
				t.Errorf("key %s after compaction: %v", key, err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	st := s.Stats()
	env.Close()
	if st.Compactions < 1 {
		t.Fatal("compaction never ran")
	}
	if st.CompactionReads < 3 {
		t.Fatalf("CompactionReads = %d, want >= 3", st.CompactionReads)
	}
	if st.PatchesFreed < 3 {
		t.Fatalf("PatchesFreed = %d, want >= 3 (inputs retired)", st.PatchesFreed)
	}
}

func TestCompactionDeduplicates(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	cfg := sliceConfig(store, true)
	cfg.RunsPerTier = 2
	s := NewSlice(env, store, cfg)
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Put(p, "dup", []byte("v1"), 2); err != nil {
			t.Error(err)
			return
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if err := s.Put(p, "dup", []byte("v2!"), 3); err != nil {
			t.Error(err)
			return
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		p.Wait(5 * time.Second)
		v, size, err := s.Get(p, "dup")
		if err != nil || size != 3 || string(v) != "v2!" {
			t.Errorf("Get after dedup = %q/%d/%v, want v2!", v, size, err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
	if s.Patches() != 1 {
		t.Fatalf("patches = %d after merge, want 1", s.Patches())
	}
}

func TestKeysVisibleDuringCompaction(t *testing.T) {
	// A Get issued mid-merge must still find its key.
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	cfg := sliceConfig(store, true)
	cfg.RunsPerTier = 2
	s := NewSlice(env, store, cfg)
	w := env.Go("t", func(p *sim.Proc) {
		for f := 0; f < 2; f++ {
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("k%d-%d", f, i)
				if err := s.Put(p, key, []byte("x"), 1); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.Flush(p); err != nil {
				t.Error(err)
				return
			}
		}
		// Compaction is now running; probe continuously while it does.
		for i := 0; i < 50; i++ {
			p.Wait(2 * time.Millisecond)
			if _, _, err := s.Get(p, "k0-3"); err != nil {
				t.Errorf("key invisible at %v: %v", env.Now(), err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestScanReadsEverything(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, false)
	s := NewSlice(env, store, sliceConfig(store, false))
	valSize := 10000
	const n = 100
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := s.Put(p, fmt.Sprintf("key%04d", i), nil, valSize); err != nil {
				t.Error(err)
				return
			}
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		total, err := s.Scan(p, 6)
		if err != nil {
			t.Error(err)
			return
		}
		if total < int64(n*valSize) {
			t.Errorf("Scan read %d bytes, want >= %d", total, n*valSize)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestScanParallelismSpeedsUp(t *testing.T) {
	measure := func(threads int) time.Duration {
		env := sim.NewEnv()
		store := sdfStore(t, env, false)
		s := NewSlice(env, store, sliceConfig(store, false))
		var elapsed time.Duration
		w := env.Go("t", func(p *sim.Proc) {
			// Several patches spread across the 4 channels.
			for f := 0; f < 8; f++ {
				for i := 0; i < 4; i++ {
					key := fmt.Sprintf("k%d-%d", f, i)
					if err := s.Put(p, key, nil, store.BlockSize()/5); err != nil {
						t.Error(err)
						return
					}
				}
				if err := s.Flush(p); err != nil {
					t.Error(err)
					return
				}
			}
			start := env.Now()
			if _, err := s.Scan(p, threads); err != nil {
				t.Error(err)
				return
			}
			elapsed = env.Now() - start
		})
		env.RunUntilDone(w)
		env.Close()
		return elapsed
	}
	one := measure(1)
	six := measure(6)
	if six >= one {
		t.Fatalf("6-thread scan (%v) not faster than 1-thread (%v)", six, one)
	}
}

func TestRejectsBadValues(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	s := NewSlice(env, store, sliceConfig(store, true))
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Put(p, "k", []byte("abc"), 99); !errors.Is(err, ErrBadValue) {
			t.Errorf("size mismatch: %v", err)
		}
		if err := s.Put(p, "k", nil, store.BlockSize()+1); !errors.Is(err, ErrTooLarge) {
			t.Errorf("oversized value: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestSliceOnConventionalSSD(t *testing.T) {
	env := sim.NewEnv()
	prof := ssd.HuaweiGen3(0.25).ScaleBlocks(16)
	dev, err := ssd.New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	store := NewSSDStore(dev, 8<<20)
	s := NewSlice(env, store, sliceConfig(store, false))
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if err := s.Put(p, fmt.Sprintf("key%03d", i), nil, 500_000); err != nil {
				t.Error(err)
				return
			}
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		if _, size, err := s.Get(p, "key007"); err != nil || size != 500_000 {
			t.Errorf("Get = %d/%v", size, err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestSSDStoreFreeRecyclesExtents(t *testing.T) {
	env := sim.NewEnv()
	prof := ssd.HuaweiGen3(0.25).ScaleBlocks(16)
	dev, err := ssd.New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	store := NewSSDStore(dev, 8<<20)
	slots := dev.Capacity() / (8 << 20)
	w := env.Go("t", func(p *sim.Proc) {
		// Write and free more extents than physically exist.
		for i := int64(0); i < slots+5; i++ {
			ref, err := store.Write(p, nil)
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if err := store.Free(p, ref); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestGetLatencyIsOneRead(t *testing.T) {
	// §2.4: all patch metadata is in DRAM, so a Get costs one storage
	// read — for an 8 KB value, roughly one page read plus overheads.
	env := sim.NewEnv()
	store := sdfStore(t, env, false)
	s := NewSlice(env, store, sliceConfig(store, false))
	var lat time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Put(p, "k", nil, 8192); err != nil {
			t.Error(err)
			return
		}
		if err := s.Flush(p); err != nil {
			t.Error(err)
			return
		}
		start := env.Now()
		if _, _, err := s.Get(p, "k"); err != nil {
			t.Error(err)
			return
		}
		lat = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// One or two page reads: well under 1 ms.
	if lat > time.Millisecond {
		t.Fatalf("Get latency %v, want < 1ms (single read)", lat)
	}
}

func TestManyKeysAcrossTiers(t *testing.T) {
	env := sim.NewEnv()
	store := sdfStore(t, env, true)
	cfg := sliceConfig(store, true)
	cfg.RunsPerTier = 3
	s := NewSlice(env, store, cfg)
	rng := rand.New(rand.NewSource(3))
	want := make(map[string]byte)
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("key%03d", rng.Intn(120))
			b := byte(rng.Intn(256))
			val := bytes.Repeat([]byte{b}, 3000)
			if err := s.Put(p, key, val, len(val)); err != nil {
				t.Error(err)
				return
			}
			want[key] = b
			if i%40 == 39 {
				if err := s.Flush(p); err != nil {
					t.Error(err)
					return
				}
			}
		}
		p.Wait(20 * time.Second) // drain compactions
		for key, b := range want {
			v, _, err := s.Get(p, key)
			if err != nil {
				t.Errorf("key %s: %v", key, err)
				return
			}
			if len(v) != 3000 || v[0] != b || v[2999] != b {
				t.Errorf("key %s: wrong value", key)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
	if got := s.Keys(); got != len(want) {
		t.Fatalf("Keys() = %d, want %d", got, len(want))
	}
}
