package flashchan

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/sim"
)

// remount powers the channel off, captures its persistent state, and
// mounts it in a fresh environment, running the recovery scan.
func remount(t *testing.T, ch *Channel, cfg Config) (*sim.Env, *Channel, RecoveryReport) {
	t.Helper()
	ch.PowerOff()
	env := sim.NewEnv()
	ch2, err := Mount(env, cfg, ch.Persistent())
	if err != nil {
		t.Fatal(err)
	}
	var rep RecoveryReport
	boot := env.Go("recover", func(p *sim.Proc) {
		r, err := ch2.Recover(p)
		if err != nil {
			t.Error(err)
			return
		}
		rep = r
	})
	env.RunUntilDone(boot)
	return env, ch2, rep
}

// TestRecoverCleanRemount writes tagged blocks, powers off at idle,
// and remounts: the scan must restore every block with its write ID
// and the payloads must read back byte-for-byte.
func TestRecoverCleanRemount(t *testing.T) {
	cfg := smallConfig()
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	vals := make(map[int][]byte)
	w := env.Go("w", func(p *sim.Proc) {
		for lbn := 0; lbn < 2; lbn++ {
			data := make([]byte, ch.BlockSize())
			rng.Read(data)
			vals[lbn] = data
			if err := ch.EraseWriteTagged(p, lbn, data, WriteID{Lo: uint64(100 + lbn)}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()

	env2, ch2, rep := remount(t, ch, cfg)
	defer env2.Close()
	if len(rep.Recovered) != 2 || rep.TornBlocks != 0 {
		t.Fatalf("recovered %d blocks, %d torn, want 2 and 0", len(rep.Recovered), rep.TornBlocks)
	}
	for i, rb := range rep.Recovered {
		if rb.LBN != i || !rb.Tagged || rb.ID.Lo != uint64(100+i) {
			t.Fatalf("recovered[%d] = %+v, want tagged lbn %d id %d", i, rb, i, 100+i)
		}
	}
	r := env2.Go("r", func(p *sim.Proc) {
		for lbn, want := range vals {
			got, err := ch2.ReadAt(p, lbn, 0, ch2.BlockSize())
			if err != nil {
				t.Errorf("read lbn %d after recovery: %v", lbn, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("lbn %d read wrong bytes after recovery", lbn)
			}
		}
	})
	env2.RunUntilDone(r)
}

// TestRecoverDiscardsTornWrite cuts power inside a block write: the
// scan must drop the incomplete block (no mapping, counted torn), and
// it must not surface any data.
func TestRecoverDiscardsTornWrite(t *testing.T) {
	cfg := smallConfig()
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, ch.BlockSize())
	rand.New(rand.NewSource(3)).Read(data)
	env.Go("w", func(p *sim.Proc) {
		ch.EraseWriteTagged(p, 0, data, WriteID{Lo: 7})
	})
	// The erase takes 3 ms, then 8 program pulses of 1.4 ms per plane:
	// 8 ms is mid-stream.
	env.Schedule(8*time.Millisecond, ch.PowerOff)
	env.Run()
	env.Close()

	env2, ch2, rep := remount(t, ch, cfg)
	defer env2.Close()
	if len(rep.Recovered) != 0 {
		t.Fatalf("recovered %d blocks from a torn write, want 0", len(rep.Recovered))
	}
	if rep.TornBlocks == 0 {
		t.Fatal("scan saw no torn blocks")
	}
	r := env2.Go("r", func(p *sim.Proc) {
		if _, err := ch2.ReadAt(p, 0, 0, ch2.PageSize()); err == nil {
			t.Error("read of a torn logical block succeeded")
		}
	})
	env2.RunUntilDone(r)
}

// TestRecoverStaleFallback overwrites a logical block and tears the
// second generation: the scan must fall back to the intact previous
// generation, not serve the torn one and not lose the block.
func TestRecoverStaleFallback(t *testing.T) {
	cfg := smallConfig()
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	gen1 := make([]byte, ch.BlockSize())
	rng.Read(gen1)
	gen2 := make([]byte, ch.BlockSize())
	rng.Read(gen2)
	w := env.Go("w1", func(p *sim.Proc) {
		if err := ch.EraseWriteTagged(p, 0, gen1, WriteID{Lo: 1}); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(w)
	cut := env.Now() + 8*time.Millisecond
	env.Go("w2", func(p *sim.Proc) {
		ch.EraseWriteTagged(p, 0, gen2, WriteID{Lo: 2})
	})
	env.Schedule(cut-env.Now(), ch.PowerOff)
	env.Run()
	env.Close()

	env2, ch2, rep := remount(t, ch, cfg)
	defer env2.Close()
	if len(rep.Recovered) != 1 || rep.Recovered[0].ID.Lo != 1 {
		t.Fatalf("recovered = %+v, want the gen-1 block", rep.Recovered)
	}
	r := env2.Go("r", func(p *sim.Proc) {
		got, err := ch2.ReadAt(p, 0, 0, ch2.BlockSize())
		if err != nil {
			t.Errorf("read after fallback: %v", err)
			return
		}
		if !bytes.Equal(got, gen1) {
			t.Error("fallback read returned wrong generation")
		}
	})
	env2.RunUntilDone(r)
}

// TestRecoverStaleDiscard overwrites a logical block cleanly: the
// newest generation wins and the superseded one is counted stale.
func TestRecoverStaleDiscard(t *testing.T) {
	cfg := smallConfig()
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	gen2 := make([]byte, ch.BlockSize())
	w := env.Go("w", func(p *sim.Proc) {
		gen1 := make([]byte, ch.BlockSize())
		rng.Read(gen1)
		if err := ch.EraseWriteTagged(p, 0, gen1, WriteID{Lo: 1}); err != nil {
			t.Error(err)
			return
		}
		rng.Read(gen2)
		if err := ch.EraseWriteTagged(p, 0, gen2, WriteID{Lo: 2}); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(w)
	env.Close()

	env2, ch2, rep := remount(t, ch, cfg)
	defer env2.Close()
	if len(rep.Recovered) != 1 || rep.Recovered[0].ID.Lo != 2 {
		t.Fatalf("recovered = %+v, want the gen-2 block", rep.Recovered)
	}
	if rep.StaleBlocks == 0 {
		t.Fatal("superseded generation not counted stale")
	}
	r := env2.Go("r", func(p *sim.Proc) {
		got, err := ch2.ReadAt(p, 0, 0, ch2.BlockSize())
		if err != nil {
			t.Errorf("read after recovery: %v", err)
			return
		}
		if !bytes.Equal(got, gen2) {
			t.Error("recovery served the stale generation")
		}
	})
	env2.RunUntilDone(r)
}

// TestSeedRecoverable stages a block's metadata in zero simulated
// time and verifies the scan restores it like a real write — and that
// seeding is refused in data mode, where payloads would be missing.
func TestSeedRecoverable(t *testing.T) {
	cfg := smallConfig()
	cfg.Nand.RetainData = false // timing-only
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.SeedRecoverable(3, WriteID{Lo: 33}); err != nil {
		t.Fatal(err)
	}
	if err := ch.SeedRecoverable(3, WriteID{Lo: 34}); err == nil {
		t.Fatal("double seed of one logical block succeeded")
	}
	env.Close()
	env2, _, rep := remount(t, ch, cfg)
	defer env2.Close()
	if len(rep.Recovered) != 1 || rep.Recovered[0].LBN != 3 || rep.Recovered[0].ID.Lo != 33 {
		t.Fatalf("recovered = %+v, want seeded lbn 3 id 33", rep.Recovered)
	}

	dataCfg := smallConfig()
	env3 := sim.NewEnv()
	defer env3.Close()
	ch3, err := New(env3, dataCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch3.SeedRecoverable(0, WriteID{Lo: 1}); err == nil {
		t.Fatal("SeedRecoverable in data mode succeeded")
	}
}
