package flashchan

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/sim"
)

// cpConfig is smallConfig with checkpointing on.
func cpConfig(every int) Config {
	cfg := smallConfig()
	cfg.CheckpointEvery = every
	return cfg
}

// TestCheckpointRoundtrip writes enough tagged blocks to trigger an
// automatic checkpoint, remounts, and requires the scan to mount from
// the checkpoint: the vouched blocks validate with a single probe
// each (far fewer probed pages than the full out-of-band walk), and
// every payload reads back byte-for-byte.
func TestCheckpointRoundtrip(t *testing.T) {
	cfg := cpConfig(4)
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	vals := make(map[int][]byte)
	const blocks = 6
	w := env.Go("w", func(p *sim.Proc) {
		for lbn := 0; lbn < blocks; lbn++ {
			data := make([]byte, ch.BlockSize())
			rng.Read(data)
			vals[lbn] = data
			if err := ch.EraseWriteTagged(p, lbn, data, WriteID{Lo: uint64(100 + lbn)}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	if written, failures, _ := ch.CheckpointStats(); written < 1 || failures != 0 {
		t.Fatalf("CheckpointStats = %d written, %d failures; want >= 1 and 0", written, failures)
	}
	env.Close()

	env2, ch2, rep := remount(t, ch, cfg)
	defer env2.Close()
	if !rep.CheckpointFound {
		t.Fatal("remount found no checkpoint")
	}
	if rep.CheckpointHits == 0 {
		t.Fatal("checkpoint vouched for no blocks")
	}
	if len(rep.Recovered) != blocks {
		t.Fatalf("recovered %d blocks, want %d", len(rep.Recovered), blocks)
	}

	// The same media scanned without checkpoint awareness must pay a
	// full walk: the bound the checkpoint exists to beat.
	plain := cfg
	plain.CheckpointEvery = 0
	_, _, full := remount(t, ch, plain)
	if rep.ProbedPages >= full.ProbedPages {
		t.Fatalf("checkpointed scan probed %d pages, full walk %d; want fewer", rep.ProbedPages, full.ProbedPages)
	}

	r := env2.Go("r", func(p *sim.Proc) {
		for lbn, want := range vals {
			got, err := ch2.ReadAt(p, lbn, 0, ch2.BlockSize())
			if err != nil {
				t.Errorf("read lbn %d after checkpointed recovery: %v", lbn, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("lbn %d read wrong bytes after checkpointed recovery", lbn)
			}
		}
	})
	env2.RunUntilDone(r)
}

// TestCheckpointTornWriteFallsBack cuts power inside a checkpoint
// write: the slot being rewritten holds the older image by
// construction, so the remount must fall back to the intact previous
// checkpoint — same generation as before the torn write — and every
// block must still read back byte-for-byte.
func TestCheckpointTornWriteFallsBack(t *testing.T) {
	cfg := cpConfig(2)
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	vals := make(map[int][]byte)
	w := env.Go("w", func(p *sim.Proc) {
		for lbn := 0; lbn < 2; lbn++ {
			data := make([]byte, ch.BlockSize())
			rng.Read(data)
			vals[lbn] = data
			if err := ch.EraseWriteTagged(p, lbn, data, WriteID{Lo: uint64(200 + lbn)}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	written, _, _ := ch.CheckpointStats()
	if written != 1 {
		t.Fatalf("staging wrote %d checkpoints, want exactly 1", written)
	}

	// A second checkpoint, torn mid-erase: the slot erase takes 3 ms,
	// so a cut at 1 ms lands inside it.
	// The scheduled power cut tears this checkpoint on purpose; the
	// remount below must fall back to the previous image.
	env.Go("cp", func(p *sim.Proc) {
		ch.Checkpoint(p)
	})
	env.Schedule(time.Millisecond, ch.PowerOff)
	env.Run()
	env.Close()

	env2, ch2, rep := remount(t, ch, cfg)
	defer env2.Close()
	if !rep.CheckpointFound {
		t.Fatal("remount found no checkpoint after torn rewrite")
	}
	if rep.CheckpointSeq != 1 {
		t.Fatalf("remount loaded checkpoint seq %d, want the pre-tear image (1)", rep.CheckpointSeq)
	}
	r := env2.Go("r", func(p *sim.Proc) {
		for lbn, want := range vals {
			got, err := ch2.ReadAt(p, lbn, 0, ch2.BlockSize())
			if err != nil {
				t.Errorf("read lbn %d after torn-checkpoint recovery: %v", lbn, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("lbn %d read wrong bytes after torn-checkpoint recovery", lbn)
			}
		}
	})
	env2.RunUntilDone(r)
}

// TestCheckpointRequiresSpares rejects a configuration whose spare
// pool cannot host the two checkpoint home blocks.
func TestCheckpointRequiresSpares(t *testing.T) {
	cfg := cpConfig(4)
	cfg.SparePerPlane = 2
	env := sim.NewEnv()
	defer env.Close()
	if _, err := New(env, cfg); err == nil {
		t.Fatal("New accepted CheckpointEvery > 0 with SparePerPlane == 2")
	}
}

// TestCheckpointAgeTrigger sets a write period too large to ever fire
// and a small virtual-time bound, and requires the age trigger to
// checkpoint anyway — plus the age accessor to reset on success.
func TestCheckpointAgeTrigger(t *testing.T) {
	cfg := cpConfig(1 << 30) // count trigger effectively off
	cfg.CheckpointMaxAge = 1 * time.Millisecond
	env := sim.NewEnv()
	defer env.Close()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("w", func(p *sim.Proc) {
		for lbn := 0; lbn < 4; lbn++ {
			if err := ch.EraseWrite(p, lbn, nil); err != nil {
				t.Error(err)
				return
			}
			p.Wait(2 * time.Millisecond) // exceed the age bound between writes
		}
	})
	env.RunUntilDone(w)
	written, failures, _ := ch.CheckpointStats()
	if written < 2 || failures != 0 {
		t.Fatalf("CheckpointStats = %d written, %d failures; want >= 2 and 0", written, failures)
	}
	if age := ch.CheckpointAge(); age >= 3*time.Millisecond {
		t.Fatalf("CheckpointAge = %v after recent checkpoint; want < 3ms", age)
	}
}

// TestCheckpointMaxAgeRequiresEvery rejects an age bound without the
// checkpoint engine enabled.
func TestCheckpointMaxAgeRequiresEvery(t *testing.T) {
	cfg := smallConfig()
	cfg.CheckpointMaxAge = time.Second
	env := sim.NewEnv()
	defer env.Close()
	if _, err := New(env, cfg); err == nil {
		t.Fatal("New accepted CheckpointMaxAge with CheckpointEvery == 0")
	}
}
