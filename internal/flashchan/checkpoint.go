// Checkpointed FTL metadata: the bounded-recovery half of the
// power-loss story (DESIGN.md §14).
//
// Without a checkpoint, the mount-time scan walks the out-of-band
// record of every written page, so remount cost grows linearly with
// device fill. With checkpointing enabled (Config.CheckpointEvery > 0)
// the channel engine periodically persists its FTL state — the
// logical-to-physical block map with each block's write ID and
// command sequence, plus the nextSeq watermark — into two dedicated
// physical blocks on plane 0, alternating A/B. Each checkpoint is
// chunked into pages carrying a sequence number and a whole-payload
// CRC and is crash-atomic: the slot being rewritten is always the
// one holding the *older* checkpoint, and the new image is read back
// and verified before it supersedes the previous one. Power loss at
// any instant therefore leaves at least one intact checkpoint (or
// none early in life, in which case recovery falls back to the full
// scan).
//
// At mount, Recover loads the newest valid checkpoint and trusts it
// for every block whose first-page out-of-band record matches the
// checkpointed identity at a sequence below the watermark: one probe
// instead of a full page walk. Only blocks written after the
// watermark — O(activity since the checkpoint) — pay the walk, so
// remount probe count is flat in fill instead of linear.
package flashchan

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"sdf/internal/nand"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// cpSlots is the number of dedicated checkpoint blocks (A/B
// alternation) reserved at the top of plane 0 when checkpointing is
// enabled.
const cpSlots = 2

// cpMagic marks a checkpoint chunk page ("SDFC").
const cpMagic = 0x53444643

// cpChunkHeader is the per-page chunk envelope: magic(4) + cpSeq(8) +
// idx(2) + count(2) + payloadLen(4) + payloadCRC(4) + chunkLen(4).
const cpChunkHeader = 28

// blockMeta is the engine's in-memory record of a written logical
// block — the identity the write path stamped into the out-of-band
// area, kept in FTL DRAM so checkpoints can be cut without re-reading
// the media.
type blockMeta struct {
	id     WriteID
	tagged bool
	seq    uint64
}

// cpEntry is one logical block in a decoded checkpoint.
type cpEntry struct {
	lbn    int
	id     WriteID
	tagged bool
	seq    uint64
	phys   []int // physical block per plane
}

// checkpointState is a decoded checkpoint image.
type checkpointState struct {
	seq       uint64 // checkpoint generation (newest valid wins)
	watermark uint64 // nextSeq at checkpoint time
	entries   []cpEntry
}

// cpEnabled reports whether the channel reserves checkpoint blocks
// and runs the periodic checkpoint policy.
func (ch *Channel) cpEnabled() bool { return ch.cfg.CheckpointEvery > 0 }

// cpHome reports whether (plane pi, block phys) is a dedicated
// checkpoint block: the top cpSlots indices of plane 0. Fixed indices
// keep the location re-derivable at mount with no bootstrap scan.
func (ch *Channel) cpHome(pi, phys int) bool {
	return ch.cpEnabled() && pi == 0 && phys >= ch.cfg.Nand.BlocksPerPlane-cpSlots
}

// cpBlock returns the physical block index of checkpoint slot s.
func (ch *Channel) cpBlock(s int) int {
	return ch.cfg.Nand.BlocksPerPlane - cpSlots + s
}

// probeCost is the virtual time of one recovery/verification probe: an
// array read plus the bus transfer of n metadata bytes.
func (ch *Channel) probeCost(n int) time.Duration {
	return ch.cfg.Nand.TRead + ch.cfg.BusOverhead + sim.ByteTime(n, ch.cfg.BusRate)
}

// CheckpointStats returns (checkpoints written, failed attempts,
// write commands since the last successful checkpoint).
func (ch *Channel) CheckpointStats() (written, failures int64, age int) {
	return ch.checkpoints, ch.cpFailures, ch.writesSinceCp
}

// Checkpoint persists the channel's FTL state to the next checkpoint
// slot as one engine command. It is also run automatically every
// Config.CheckpointEvery successful write commands.
func (ch *Channel) Checkpoint(p *sim.Proc) error {
	if !ch.cpEnabled() {
		return fmt.Errorf("flashchan: checkpointing disabled (Config.CheckpointEvery = 0)")
	}
	if err := ch.checkAlive(); err != nil {
		return err
	}
	ch.acquire(p, ch.writePrio())
	defer ch.mu.Release()
	if err := ch.checkAlive(); err != nil { // killed while queued
		return err
	}
	return ch.checkpointLocked(p)
}

// maybeCheckpoint runs the periodic checkpoint policy after a
// successful write command (engine held): a checkpoint fires when
// CheckpointEvery writes have accumulated, or — with CheckpointMaxAge
// set — when more than that much virtual time has passed since the
// last successful checkpoint. A failed checkpoint write is counted
// and absorbed: the data write already succeeded, and the previous
// checkpoint still stands — recovery falls back to it.
func (ch *Channel) maybeCheckpoint(p *sim.Proc) {
	if !ch.cpEnabled() {
		return
	}
	ch.writesSinceCp++
	aged := ch.cfg.CheckpointMaxAge > 0 && ch.env.Now()-ch.lastCp >= ch.cfg.CheckpointMaxAge
	if ch.writesSinceCp < ch.cfg.CheckpointEvery && !aged {
		return
	}
	if err := ch.checkpointLocked(p); err != nil {
		// Back off a full period (and a full age window) before retrying.
		ch.writesSinceCp = 0
		ch.lastCp = ch.env.Now()
	}
}

// checkpointLocked writes one checkpoint with the engine held: erase
// the slot holding the older image, program the chunked payload, read
// it back, and only on a verified match advance the generation so the
// new image supersedes the old. Any failure — a torn program at power
// loss, a worn-out slot, a verify mismatch — leaves the previous
// checkpoint authoritative.
func (ch *Channel) checkpointLocked(p *sim.Proc) error {
	t := ch.env.Tracer()
	span := t.Begin(ch.env.Now(), p.Span(), "chan/checkpoint", trace.PhaseRecovery)
	defer func() { t.End(ch.env.Now(), span) }()

	ps := &ch.planes[0]
	phys := ch.cpBlock(ch.cpSlot)
	payload := ch.encodeCheckpointPayload()
	chunks := cpChunks(ch.cpSeq, payload, ch.cfg.Nand.PageSize)
	if len(chunks) > ch.cfg.Nand.PagesPerBlock {
		ch.cpFailures++
		return fmt.Errorf("flashchan: checkpoint payload %d bytes exceeds slot capacity", len(payload))
	}
	if err := ps.plane.Erase(p, phys); err != nil {
		ch.cpFailures++
		return fmt.Errorf("flashchan: checkpoint slot erase: %w", err)
	}
	parent := p.Span()
	for pg, rec := range chunks {
		p.WaitUntil(ch.transferAsync(len(rec), parent))
		if err := ps.plane.ProgramOOB(p, phys, pg, nil, rec); err != nil {
			ch.cpFailures++
			return fmt.Errorf("flashchan: checkpoint program: %w", err)
		}
	}
	// Verify before superseding: read every chunk page back and decode
	// the whole image. The probe stream is sequential on the plane.
	ps.plane.Timeline().Occupy(p, time.Duration(len(chunks))*ch.probeCost(ch.cfg.Nand.PageSize))
	got, _, ok := readCheckpointSlot(ps.plane, phys, len(ch.planes))
	if !ok || got.seq != ch.cpSeq {
		ch.cpFailures++
		return fmt.Errorf("flashchan: checkpoint verify failed on slot %d", ch.cpSlot)
	}
	ch.cpSeq++
	ch.cpSlot = (ch.cpSlot + 1) % cpSlots
	ch.writesSinceCp = 0
	ch.lastCp = ch.env.Now()
	ch.checkpoints++
	return nil
}

// CheckpointAge returns the virtual time elapsed since the last
// successful checkpoint (or since mount, if none has succeeded yet).
func (ch *Channel) CheckpointAge() time.Duration {
	return ch.env.Now() - ch.lastCp
}

// encodeCheckpointPayload serializes the live FTL state: the nextSeq
// watermark and, for every written logical block, its identity and
// per-plane physical placement. Erase counts and bad-block marks are
// not carried — they live in the media itself and survive power loss
// there (DESIGN.md §14).
func (ch *Channel) encodeCheckpointPayload() []byte {
	lbns := make([]int, 0, len(ch.meta))
	for lbn := range ch.meta {
		complete := true
		for i := range ch.planes {
			if _, ok := ch.planes[i].mapping[lbn]; !ok {
				complete = false
				break
			}
		}
		if complete {
			lbns = append(lbns, lbn)
		}
	}
	sort.Ints(lbns)
	entrySize := 4 + 16 + 8 + 1 + 4*len(ch.planes)
	buf := make([]byte, 0, 12+len(lbns)*entrySize)
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:8]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64(ch.nextSeq)
	put32(uint32(len(lbns)))
	for _, lbn := range lbns {
		m := ch.meta[lbn]
		put32(uint32(lbn))
		put64(m.id.Hi)
		put64(m.id.Lo)
		put64(m.seq)
		var flags byte
		if m.tagged {
			flags |= 1
		}
		buf = append(buf, flags)
		for i := range ch.planes {
			put32(uint32(ch.planes[i].mapping[lbn]))
		}
	}
	return buf
}

// decodeCheckpointPayload is the inverse of encodeCheckpointPayload.
func decodeCheckpointPayload(buf []byte, planes int) (*checkpointState, bool) {
	if len(buf) < 12 {
		return nil, false
	}
	cp := &checkpointState{watermark: binary.LittleEndian.Uint64(buf[0:])}
	count := int(binary.LittleEndian.Uint32(buf[8:]))
	entrySize := 4 + 16 + 8 + 1 + 4*planes
	if count < 0 || len(buf) != 12+count*entrySize {
		return nil, false
	}
	off := 12
	for i := 0; i < count; i++ {
		e := cpEntry{
			lbn: int(binary.LittleEndian.Uint32(buf[off:])),
			id: WriteID{
				Hi: binary.LittleEndian.Uint64(buf[off+4:]),
				Lo: binary.LittleEndian.Uint64(buf[off+12:]),
			},
			seq:    binary.LittleEndian.Uint64(buf[off+20:]),
			tagged: buf[off+28]&1 != 0,
		}
		off += 29
		e.phys = make([]int, planes)
		for pl := 0; pl < planes; pl++ {
			e.phys[pl] = int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		cp.entries = append(cp.entries, e)
	}
	return cp, true
}

// cpChunks splits a checkpoint payload into per-page chunk records.
// Every chunk repeats the generation, the chunk count, and the
// whole-payload CRC, so a reader can reject a torn or mixed-
// generation slot from any single intact page.
func cpChunks(cpSeq uint64, payload []byte, pageSize int) [][]byte {
	capacity := pageSize - cpChunkHeader
	count := (len(payload) + capacity - 1) / capacity
	if count == 0 {
		count = 1
	}
	crc := crc32.ChecksumIEEE(payload)
	chunks := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lo := i * capacity
		hi := lo + capacity
		if hi > len(payload) {
			hi = len(payload)
		}
		part := payload[lo:hi]
		rec := make([]byte, cpChunkHeader+len(part))
		binary.LittleEndian.PutUint32(rec[0:], cpMagic)
		binary.LittleEndian.PutUint64(rec[4:], cpSeq)
		binary.LittleEndian.PutUint16(rec[12:], uint16(i))
		binary.LittleEndian.PutUint16(rec[14:], uint16(count))
		binary.LittleEndian.PutUint32(rec[16:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rec[20:], crc)
		binary.LittleEndian.PutUint32(rec[24:], uint32(len(part)))
		copy(rec[cpChunkHeader:], part)
		chunks = append(chunks, rec)
	}
	return chunks
}

// readCheckpointSlot decodes the checkpoint image in one slot block,
// returning the decoded state, the number of pages probed (frontier
// included), and whether the image is intact: all chunks present with
// one generation, payload reassembled, CRC verified. A torn program
// (no spare retained), a partial erase, or a generation mix from an
// interrupted rewrite all fail cleanly here.
func readCheckpointSlot(pl *nand.Plane, phys, planes int) (*checkpointState, int64, bool) {
	probes := int64(1) // frontier probe
	wp := pl.WritePtr(phys)
	if wp <= 0 {
		return nil, probes, false
	}
	var payload []byte
	var seq uint64
	var count, payloadLen int
	var crc uint32
	for pg := 0; pg < wp; pg++ {
		probes++
		rec := pl.Spare(phys, pg)
		if len(rec) < cpChunkHeader || binary.LittleEndian.Uint32(rec[0:]) != cpMagic {
			return nil, probes, false
		}
		idx := int(binary.LittleEndian.Uint16(rec[12:]))
		n := int(binary.LittleEndian.Uint16(rec[14:]))
		chunkLen := int(binary.LittleEndian.Uint32(rec[24:]))
		if idx != pg || chunkLen != len(rec)-cpChunkHeader {
			return nil, probes, false
		}
		if pg == 0 {
			seq = binary.LittleEndian.Uint64(rec[4:])
			count = n
			payloadLen = int(binary.LittleEndian.Uint32(rec[16:]))
			crc = binary.LittleEndian.Uint32(rec[20:])
		} else if binary.LittleEndian.Uint64(rec[4:]) != seq || n != count {
			return nil, probes, false
		}
		payload = append(payload, rec[cpChunkHeader:]...)
		if pg == count-1 {
			break
		}
	}
	if count == 0 || wp < count || len(payload) != payloadLen || crc32.ChecksumIEEE(payload) != crc {
		return nil, probes, false
	}
	cp, ok := decodeCheckpointPayload(payload, planes)
	if !ok {
		return nil, probes, false
	}
	cp.seq = seq
	return cp, probes, true
}

// loadCheckpoint probes both checkpoint slots and returns the newest
// valid image, the slot it came from (-1 if none), and the total probe
// count. The probe stream is charged on plane 0's timeline.
func (ch *Channel) loadCheckpoint(p *sim.Proc) (*checkpointState, int, int64) {
	ps := &ch.planes[0]
	var best *checkpointState
	bestSlot := -1
	var probes int64
	for s := 0; s < cpSlots; s++ {
		cp, n, ok := readCheckpointSlot(ps.plane, ch.cpBlock(s), len(ch.planes))
		probes += n
		if ok && (best == nil || cp.seq > best.seq) {
			best = cp
			bestSlot = s
		}
	}
	ps.plane.Timeline().Occupy(p, time.Duration(probes)*ch.probeCost(ch.cfg.Nand.PageSize))
	return best, bestSlot, probes
}
