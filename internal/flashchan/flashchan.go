// Package flashchan models one SDF flash channel: the asynchronous
// 40 MHz channel bus, its two NAND chips (four planes), and the
// dedicated channel engine that the SDF card implements per channel in
// its Spartan-6 FPGAs (§2.1): block-level address mapping (LA2PA),
// dynamic wear leveling (DWL), bad block management (BBM), and the
// BCH codec protecting each chip.
//
// The channel exposes the paper's asymmetric interface: reads in 8 KB
// pages, writes of one full 8 MB logical block (2 MB erase block per
// plane, striped across the channel's four planes), and an explicit
// erase of a logical block. There is no garbage collection and no
// over-provisioning: every logical block maps to exactly one physical
// block per plane, with only a small spare pool for bad-block
// replacement.
package flashchan

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"sdf/internal/bch"
	"sdf/internal/metrics"
	"sdf/internal/nand"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Interface-contract errors.
var (
	ErrNotErased     = errors.New("flashchan: logical block must be erased before writing")
	ErrBadAlignment  = errors.New("flashchan: offset and size must be page aligned")
	ErrOutOfSpace    = errors.New("flashchan: no healthy physical blocks left")
	ErrUncorrectable = errors.New("flashchan: uncorrectable ECC error")
	ErrBadAddress    = errors.New("flashchan: address out of range")
	// ErrChannelDead is returned by every command while the channel
	// engine is offline (injected fault or controller death). It is a
	// fail-fast error: no virtual time is consumed, so upper layers can
	// quarantine the channel and redirect traffic immediately.
	ErrChannelDead = errors.New("flashchan: channel engine offline")
)

// ErrPowerLoss resolves commands that were in flight when the channel
// lost power (re-exported from the media model so upper layers need
// not import nand).
var ErrPowerLoss = nand.ErrPowerLoss

// Config describes one channel.
type Config struct {
	Chips int         // NAND chips on the channel (2 on the SDF card)
	Nand  nand.Params // per-chip geometry and timing

	// BusRate is the channel data rate in bytes/s (40 MB/s for the
	// async 40 MHz 8-bit bus). BusOverhead is the command/address
	// cycle cost per page transaction.
	BusRate     float64
	BusOverhead time.Duration

	// SparePerPlane physical blocks are withheld from the logical
	// space as bad-block replacements (~0.8% with the default 16).
	SparePerPlane int

	// PrioritizeReads admits queued reads ahead of queued writes and
	// erases on the channel engine — the "on-demand reads take
	// priority over writes and erasures" scheduling the paper plans
	// as future work (§2.4). Non-preemptive: an in-service command
	// completes first.
	PrioritizeReads bool

	// ECC enables the real BCH codec on the data path (requires
	// Nand.RetainData). ECCSector, ECCM and ECCT configure it.
	ECC       bool
	ECCSector int
	ECCM      int
	ECCT      int

	// VerifyCRC checks each page read against the payload CRC the
	// write path stored in the page's out-of-band area, after ECC
	// correction. It catches corruption the BCH code miscorrects and
	// is the crash harness's "never surface corrupt data" tripwire.
	VerifyCRC bool

	// CheckpointEvery enables checkpointed FTL metadata: every
	// CheckpointEvery successful write commands the engine persists
	// its block map and sequence watermark to dedicated checkpoint
	// blocks, so mount-time recovery scans only post-checkpoint
	// activity (DESIGN.md §14). Zero disables checkpointing entirely:
	// no blocks are reserved and recovery is the full scan. Enabling
	// it requires SparePerPlane > 2 (the two checkpoint slots come
	// out of plane 0's spare headroom).
	CheckpointEvery int

	// CheckpointMaxAge adds a virtual-time bound to the checkpoint
	// policy: a write that completes more than CheckpointMaxAge after
	// the last successful checkpoint triggers one immediately, even if
	// fewer than CheckpointEvery writes have accumulated. It bounds
	// recovery cost by elapsed time as well as by activity — a channel
	// receiving a trickle of writes no longer holds a stale checkpoint
	// for arbitrarily long. Zero disables the age trigger; a non-zero
	// value requires CheckpointEvery > 0 (the trigger rides the write
	// path of the checkpoint engine).
	CheckpointMaxAge time.Duration

	Seed int64
}

// DefaultConfig is one channel of the SDF card (Table 3): two 8 GB
// 25 nm MLC chips, 16 GB per channel, 40 MB/s bus.
func DefaultConfig() Config {
	return Config{
		Chips:         2,
		Nand:          nand.MLC25nm(),
		BusRate:       40e6,
		BusOverhead:   10 * time.Microsecond,
		SparePerPlane: 16,
		ECCSector:     512,
		ECCM:          13,
		ECCT:          8,
	}
}

// planeState is the channel engine's per-plane FTL state.
type planeState struct {
	plane   *nand.Plane
	chip    int
	free    wearHeap    // unmapped physical blocks, min-erase-count first
	mapping map[int]int // logical block -> physical block
}

// wearHeap orders physical block indices by erase count (then index,
// for determinism).
type wearHeap struct {
	plane *nand.Plane
	idx   []int
}

func (h wearHeap) Len() int { return len(h.idx) }
func (h wearHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	ea, eb := h.plane.EraseCount(a), h.plane.EraseCount(b)
	if ea != eb {
		return ea < eb
	}
	return a < b
}
func (h wearHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *wearHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *wearHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// Channel is one exposed SDF channel with its engine.
type Channel struct {
	cfg    Config
	env    *sim.Env
	bus    *sim.Link
	chips  []*nand.Chip
	planes []planeState
	mu     *sim.PriorityResource // the engine serves one command at a time
	code   *bch.Code
	parity map[parityKey][][]byte
	dead   bool // engine offline (injected fault); commands fail fast
	// nextSeq is the per-channel write-command sequence number stamped
	// into every page's out-of-band area. Recovery re-derives it as
	// one past the highest sequence found on the media.
	nextSeq uint64
	// meta mirrors the identity stamped on each written logical block
	// (FTL DRAM state), so checkpoints serialize without re-reading
	// the media. Rebuilt by Recover.
	meta map[int]blockMeta
	// Checkpoint engine state (checkpoint.go): next generation to
	// write, next slot to rewrite, and write commands since the last
	// successful checkpoint.
	cpSeq         uint64
	cpSlot        int
	writesSinceCp int
	lastCp        time.Duration // virtual instant of the last successful checkpoint (or mount)

	bytesRead    int64
	bytesWritten int64
	blocksErased int64
	eccCorrected int64
	eccFailures  int64
	deadRejects  int64 // commands refused while offline
	checkpoints  int64 // checkpoints written and verified
	cpFailures   int64 // checkpoint attempts that failed
}

type parityKey struct {
	plane, block, page int
}

// New builds a channel on env.
func New(env *sim.Env, cfg Config) (*Channel, error) {
	if cfg.Chips < 1 {
		return nil, fmt.Errorf("flashchan: need at least one chip")
	}
	if cfg.CheckpointEvery > 0 && cfg.SparePerPlane <= cpSlots {
		return nil, fmt.Errorf("flashchan: checkpointing needs SparePerPlane > %d", cpSlots)
	}
	if cfg.CheckpointMaxAge > 0 && cfg.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("flashchan: CheckpointMaxAge requires CheckpointEvery > 0")
	}
	ch := &Channel{
		cfg:     cfg,
		env:     env,
		bus:     sim.NewLink(env, cfg.BusRate, cfg.BusOverhead),
		mu:      sim.NewPriorityResource(env, 1),
		nextSeq: 1,
		meta:    make(map[int]blockMeta),
		cpSeq:   1,
		lastCp:  env.Now(),
	}
	ch.SetLabel("chan")
	for i := 0; i < cfg.Chips; i++ {
		np := cfg.Nand
		np.Seed = cfg.Seed*1000 + int64(i)
		chip := nand.New(env, np)
		ch.chips = append(ch.chips, chip)
		for pl := 0; pl < chip.Planes(); pl++ {
			pi := len(ch.planes)
			ps := planeState{
				plane:   chip.Plane(pl),
				chip:    i,
				mapping: make(map[int]int),
			}
			ps.free.plane = ps.plane
			for b := 0; b < ps.plane.Blocks(); b++ {
				if !ps.plane.Bad(b) && !ch.cpHome(pi, b) {
					ps.free.idx = append(ps.free.idx, b)
				}
			}
			heap.Init(&ps.free)
			ch.planes = append(ch.planes, ps)
		}
	}
	if cfg.ECC {
		if !cfg.Nand.RetainData {
			return nil, fmt.Errorf("flashchan: ECC requires RetainData")
		}
		code, err := bch.New(cfg.ECCM, cfg.ECCT, cfg.ECCSector)
		if err != nil {
			return nil, err
		}
		ch.code = code
		ch.parity = make(map[parityKey][][]byte)
	}
	return ch, nil
}

// transferAsync claims the bus's next FIFO slot for one page and
// returns the virtual instant the wires go quiet, without blocking or
// parking anything: the channel bus is pure timed occupancy, so the
// old pump process (a park per page on Get plus another inside
// Transfer) collapses into a Timeline reservation. Callers that must
// observe completion wait with WaitUntil. The span brackets wire
// occupancy only (command cycles + data), not the time the transfer
// sat queued behind other pages — identical bounds to what the pump
// recorded, emitted eagerly with the slot's computed timestamps.
func (ch *Channel) transferAsync(n int, parent trace.SpanID) time.Duration {
	start, end := ch.bus.Reserve(n)
	t := ch.env.Tracer()
	span := t.Begin(start, parent, "chan/bus", trace.PhaseBus)
	t.End(end, span)
	return end
}

// Geometry accessors.

// PageSize returns the read unit in bytes (8 KB).
func (ch *Channel) PageSize() int { return ch.cfg.Nand.PageSize }

// Planes returns the number of flash planes on the channel.
func (ch *Channel) Planes() int { return len(ch.planes) }

// BlockSize returns the write/erase unit in bytes: one erase block per
// plane (8 MB on the SDF card).
func (ch *Channel) BlockSize() int {
	return ch.cfg.Nand.BlockBytes() * len(ch.planes)
}

// LogicalBlocks returns the number of addressable logical blocks; all
// but the spare pool are exposed (the paper's 99% usable capacity).
func (ch *Channel) LogicalBlocks() int {
	return ch.cfg.Nand.BlocksPerPlane - ch.cfg.SparePerPlane
}

// Capacity returns the exposed capacity in bytes.
func (ch *Channel) Capacity() int64 {
	return int64(ch.LogicalBlocks()) * int64(ch.BlockSize())
}

// RawCapacity returns the raw flash capacity in bytes.
func (ch *Channel) RawCapacity() int64 {
	return ch.cfg.Nand.ChipBytes() * int64(len(ch.chips))
}

// Idle reports whether the channel engine has no command in progress
// or queued. The block layer uses it to schedule erases into idle
// periods (§2.3).
func (ch *Channel) Idle() bool { return ch.mu.Idle() }

// QueueDepth returns the number of commands waiting for the engine —
// the quantity the utilization sampler records per channel.
func (ch *Channel) QueueDepth() int { return ch.mu.Waiting() }

// SetLabel names the channel's bus and engine in trace output
// (e.g. "chan3"). Devices with many channels call it at build time so
// kernel-level events distinguish channels.
func (ch *Channel) SetLabel(label string) {
	ch.bus.SetName(label + "/bus")
	ch.mu.SetName(label + "/engine")
}

// acquire admits p to the channel engine, recording the wait as a
// queue-phase span.
func (ch *Channel) acquire(p *sim.Proc, prio int) {
	t := ch.env.Tracer()
	span := t.Begin(ch.env.Now(), p.Span(), "chan/queue", trace.PhaseQueue)
	ch.mu.Acquire(p, prio)
	t.End(ch.env.Now(), span)
}

// Counters returns cumulative traffic statistics.
func (ch *Channel) Counters() (read, written, erased int64) {
	return ch.bytesRead, ch.bytesWritten, ch.blocksErased
}

// ECCStats returns (corrected bit errors, uncorrectable sector reads).
func (ch *Channel) ECCStats() (corrected, failures int64) {
	return ch.eccCorrected, ch.eccFailures
}

// RegisterMetrics exports the channel's byte counters, ECC health,
// and live engine state against r. The queue-depth and busy gauges
// are the per-channel load signals the paper's scheduling discussion
// (§3.3.1) watches; sampled on a virtual period they become the
// plane-busy time series. Callbacks read in-memory state only and
// must stay park-free, per the registry's callback contract.
func (ch *Channel) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.CounterFunc("flashchan_read_bytes_total", func() int64 { return ch.bytesRead }, labels...)
	r.CounterFunc("flashchan_written_bytes_total", func() int64 { return ch.bytesWritten }, labels...)
	r.CounterFunc("flashchan_erased_blocks_total", func() int64 { return ch.blocksErased }, labels...)
	r.CounterFunc("flashchan_ecc_corrected_total", func() int64 { return ch.eccCorrected }, labels...)
	r.CounterFunc("flashchan_ecc_failures_total", func() int64 { return ch.eccFailures }, labels...)
	r.CounterFunc("flashchan_dead_rejects_total", func() int64 { return ch.deadRejects }, labels...)
	r.CounterFunc("flashchan_checkpoints_total", func() int64 { return ch.checkpoints }, labels...)
	r.CounterFunc("flashchan_checkpoint_failures_total", func() int64 { return ch.cpFailures }, labels...)
	r.GaugeFunc("flashchan_checkpoint_age_writes", func() float64 { return float64(ch.writesSinceCp) }, labels...)
	r.GaugeFunc("flashchan_checkpoint_age_seconds", func() float64 { return ch.CheckpointAge().Seconds() }, labels...)
	r.GaugeFunc("flashchan_queue_depth", func() float64 { return float64(ch.QueueDepth()) }, labels...)
	r.GaugeFunc("flashchan_busy", func() float64 {
		if ch.Idle() {
			return 0
		}
		return 1
	}, labels...)
	r.GaugeFunc("flashchan_alive", func() float64 {
		if ch.Alive() {
			return 1
		}
		return 0
	}, labels...)
}

// Fault-injection hooks. These are the channel-level failure modes a
// fault plan can fire (DESIGN.md §9); all of them are deterministic
// state flips executed at scheduled virtual instants.

// Kill takes the channel engine offline: every subsequent command
// returns ErrChannelDead without consuming virtual time, modelling a
// dead channel controller or a severed flash bus.
func (ch *Channel) Kill() { ch.dead = true }

// Revive brings a killed channel back online. Mapped data survives
// (the failure was in the engine, not the cells), so reads of blocks
// written before the kill succeed again.
func (ch *Channel) Revive() { ch.dead = false }

// PowerOff cuts power to the channel: the engine goes offline like
// Kill (fail-fast ErrChannelDead, no virtual time) and every chip
// records the cut instant, so in-flight programs and erases resolve
// as torn pages and partially-erased blocks in the media. There is no
// Revive from a power loss; recovery is Persistent + Mount + Recover
// in a fresh environment.
func (ch *Channel) PowerOff() {
	ch.dead = true
	for _, chip := range ch.chips {
		chip.PowerOff()
	}
}

// Alive reports whether the engine is serving commands.
func (ch *Channel) Alive() bool { return !ch.dead }

// DeadRejects returns how many commands were refused while offline.
func (ch *Channel) DeadRejects() int64 { return ch.deadRejects }

// Hang stalls the channel engine for d of virtual time: a process
// seizes the engine at read priority (overtaking queued writes) and
// holds it, so every command queued behind the hang waits it out.
// Non-preemptive, like a firmware-level lockup that recovers.
func (ch *Channel) Hang(d time.Duration) {
	ch.env.Go("flashchan/hang", func(p *sim.Proc) {
		t := ch.env.Tracer()
		span := t.Begin(ch.env.Now(), 0, "chan/hang", trace.PhaseFault)
		ch.mu.Acquire(p, ch.readPrio())
		p.Wait(d)
		ch.mu.Release()
		t.End(ch.env.Now(), span)
	})
}

// GrowBadBlocks retires up to n healthy blocks from the free pools,
// round-robin across planes — grown defects appearing in the field.
// It returns how many blocks were actually retired (bounded by the
// free pool). Mapped blocks are untouched: grown defects surface on
// the next erase cycle, not under live data.
func (ch *Channel) GrowBadBlocks(n int) int {
	marked := 0
	for marked < n {
		progressed := false
		for i := range ch.planes {
			if marked >= n {
				break
			}
			ps := &ch.planes[i]
			if ps.free.Len() == 0 {
				continue
			}
			phys := heap.Pop(&ps.free).(int)
			ps.plane.MarkBad(phys)
			marked++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return marked
}

// SetBERBoost injects an extra raw bit error rate on every chip of
// the channel (an uncorrectable-ECC burst when pushed past the BCH
// correction budget); 0 ends the burst.
func (ch *Channel) SetBERBoost(ber float64) {
	for _, chip := range ch.chips {
		chip.SetBERBoost(ber)
	}
}

// checkAlive fails fast while the engine is offline.
func (ch *Channel) checkAlive() error {
	if ch.dead {
		ch.deadRejects++
		return ErrChannelDead
	}
	return nil
}

// readPrio and writePrio order channel admission: with
// PrioritizeReads, reads (0) overtake writes and erases (1).
func (ch *Channel) readPrio() int { return 0 }

func (ch *Channel) writePrio() int {
	if ch.cfg.PrioritizeReads {
		return 1
	}
	return 0
}

// stripeBytes is the portion of a logical block on one plane.
func (ch *Channel) stripeBytes() int { return ch.cfg.Nand.BlockBytes() }

func (ch *Channel) checkLBN(lbn int) error {
	if lbn < 0 || lbn >= ch.LogicalBlocks() {
		return fmt.Errorf("%w: logical block %d of %d", ErrBadAddress, lbn, ch.LogicalBlocks())
	}
	return nil
}

// Erase prepares a logical block for writing. The engine recycles the
// previously mapped physical blocks into the free pool and maps the
// least-worn free block on each plane (dynamic wear leveling),
// retiring any block that fails to erase (bad block management).
// Erases proceed in parallel across chips but serially within a chip.
func (ch *Channel) Erase(p *sim.Proc, lbn int) error {
	if err := ch.checkLBN(lbn); err != nil {
		return err
	}
	if err := ch.checkAlive(); err != nil {
		return err
	}
	ch.acquire(p, ch.writePrio())
	defer ch.mu.Release()
	if err := ch.checkAlive(); err != nil { // killed while queued
		return err
	}
	return ch.eraseLocked(p, lbn)
}

func (ch *Channel) eraseLocked(p *sim.Proc, lbn int) error {
	// Recycle old mappings first so they are candidates again.
	for i := range ch.planes {
		ps := &ch.planes[i]
		if old, ok := ps.mapping[lbn]; ok {
			heap.Push(&ps.free, old)
			delete(ps.mapping, lbn)
		}
	}
	delete(ch.meta, lbn) // the block's previous identity is gone
	// Spare-exhaustion precheck: a plane with an empty free pool can
	// never complete this command, so fail before burning erase cycles
	// (and endurance) on the planes that still have spares.
	for i := range ch.planes {
		if ch.planes[i].free.Len() == 0 {
			return fmt.Errorf("%w: plane %d spare pool exhausted", ErrOutOfSpace, i)
		}
	}
	// Group planes by chip; erase chips in parallel, planes within a
	// chip sequentially (one erase pulse per die at a time).
	byChip := make(map[int][]int)
	for i := range ch.planes {
		byChip[ch.planes[i].chip] = append(byChip[ch.planes[i].chip], i)
	}
	errs := make([]error, len(ch.planes))
	parent := p.Span()
	var workers []*sim.Proc
	for c := 0; c < len(ch.chips); c++ {
		planeIdxs := byChip[c]
		w := ch.env.Go("flashchan/erase", func(wp *sim.Proc) {
			wp.SetSpan(parent)
			for _, pi := range planeIdxs {
				errs[pi] = ch.erasePlane(wp, pi, lbn)
			}
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for _, err := range errs {
		if err != nil {
			ch.unwindErase(lbn)
			return err
		}
	}
	ch.blocksErased++
	return nil
}

// unwindErase reverts a partially completed erase command: planes
// that already allocated and erased a block for lbn return it to the
// free pool and the logical block ends fully unmapped. Without this,
// a spare-exhaustion failure left a half-erased block whose next
// write failed with a misleading ErrNotErased, and every retry burned
// endurance re-erasing the healthy planes.
func (ch *Channel) unwindErase(lbn int) {
	for i := range ch.planes {
		ps := &ch.planes[i]
		if phys, ok := ps.mapping[lbn]; ok {
			heap.Push(&ps.free, phys)
			delete(ps.mapping, lbn)
		}
	}
}

// erasePlane allocates and erases one physical block on plane pi,
// retiring worn-out blocks until a healthy one is found.
func (ch *Channel) erasePlane(p *sim.Proc, pi, lbn int) error {
	ps := &ch.planes[pi]
	for {
		if ps.free.Len() == 0 {
			return fmt.Errorf("%w: plane %d", ErrOutOfSpace, pi)
		}
		phys := heap.Pop(&ps.free).(int)
		err := ps.plane.Erase(p, phys)
		if err == nil {
			ps.mapping[lbn] = phys
			if ch.parity != nil {
				for pg := 0; pg < ch.cfg.Nand.PagesPerBlock; pg++ {
					delete(ch.parity, parityKey{pi, phys, pg})
				}
			}
			return nil
		}
		if errors.Is(err, nand.ErrWornOut) || errors.Is(err, nand.ErrBadBlock) {
			continue // retired; try the next least-worn block
		}
		return err
	}
}

// Write programs one full logical block. The block must have been
// erased (the software's responsibility under the SDF contract — the
// device keeps no over-provisioned space and never copies data).
// data must be exactly BlockSize bytes, or nil in timing-only mode.
// The four planes program in parallel, fed round-robin over the bus,
// so throughput is program-limited (~23 MB/s per channel).
func (ch *Channel) Write(p *sim.Proc, lbn int, data []byte) error {
	return ch.write(p, lbn, data, nil)
}

// WriteTagged is Write with the caller's 128-bit write ID stamped
// into every page's out-of-band area (§2.4's write-ID hashing). The
// mount-time recovery scan returns tagged blocks with their IDs, so
// the block layer can rebuild its ID-to-block map after power loss.
func (ch *Channel) WriteTagged(p *sim.Proc, lbn int, data []byte, id WriteID) error {
	return ch.write(p, lbn, data, &id)
}

func (ch *Channel) write(p *sim.Proc, lbn int, data []byte, tag *WriteID) error {
	if err := ch.checkLBN(lbn); err != nil {
		return err
	}
	if data != nil && len(data) != ch.BlockSize() {
		return fmt.Errorf("flashchan: write payload %d bytes, want %d", len(data), ch.BlockSize())
	}
	if err := ch.checkAlive(); err != nil {
		return err
	}
	ch.acquire(p, ch.writePrio())
	defer ch.mu.Release()
	if err := ch.checkAlive(); err != nil { // killed while queued
		return err
	}
	if err := ch.writeLocked(p, lbn, data, tag); err != nil {
		return err
	}
	ch.maybeCheckpoint(p)
	return nil
}

func (ch *Channel) writeLocked(p *sim.Proc, lbn int, data []byte, tag *WriteID) error {
	for i := range ch.planes {
		ps := &ch.planes[i]
		phys, ok := ps.mapping[lbn]
		if !ok || ps.plane.WritePtr(phys) != 0 {
			return fmt.Errorf("%w: logical block %d, plane %d", ErrNotErased, lbn, i)
		}
	}
	pageSize := ch.cfg.Nand.PageSize
	pagesPerBlock := ch.cfg.Nand.PagesPerBlock
	stripe := ch.stripeBytes()
	// One sequence number per write command: all planes and pages of
	// this logical block share it, so the recovery scan can tell a
	// complete cross-plane generation from a torn one.
	seq := ch.nextSeq
	ch.nextSeq++
	errs := make([]error, len(ch.planes))
	parent := p.Span()
	var workers []*sim.Proc
	for i := range ch.planes {
		pi := i
		w := ch.env.Go("flashchan/write", func(wp *sim.Proc) {
			wp.SetSpan(parent)
			ps := &ch.planes[pi]
			phys := ps.mapping[lbn]
			// One flash-phase span per plane covers the whole program
			// loop: with cache programming the plane is array-busy
			// nearly end to end, and per-page spans would multiply the
			// event volume 256x for no extra insight.
			t := ch.env.Tracer()
			span := t.Begin(ch.env.Now(), parent, "nand/program", trace.PhaseFlash)
			// Cache programming: while page pg programs from the data
			// register, page pg+1 streams over the bus into the cache
			// register, so sustained writes are program-limited.
			pending := ch.transferAsync(pageSize, parent)
			var bcrc uint32 // running fold of the page CRCs
			// The media model copies the spare synchronously, so one
			// stack buffer serves every page of this worker.
			var oobBuf [oobSize]byte
			for pg := 0; pg < pagesPerBlock; pg++ {
				var payload []byte
				if data != nil {
					off := pi*stripe + pg*pageSize
					payload = data[off : off+pageSize]
				}
				wp.WaitUntil(pending)
				if pg+1 < pagesPerBlock {
					pending = ch.transferAsync(pageSize, parent)
				}
				oob, fold := makePageOOB(tag, seq, lbn, pg, pagesPerBlock, payload, bcrc)
				bcrc = fold
				encodeOOBInto(oob, oobBuf[:])
				if err := ps.plane.ProgramOOB(wp, phys, pg, payload, oobBuf[:]); err != nil {
					errs[pi] = err
					t.End(ch.env.Now(), span)
					return
				}
				if ch.parity != nil && payload != nil {
					ch.storeParity(pi, phys, pg, payload)
				}
			}
			t.End(ch.env.Now(), span)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	ch.bytesWritten += int64(ch.BlockSize())
	m := blockMeta{seq: seq}
	if tag != nil {
		m.id = *tag
		m.tagged = true
	}
	ch.meta[lbn] = m
	return nil
}

// EraseWrite performs the erase-before-write sequence as a single
// channel command, the common path in Baidu's block layer (§2.3).
func (ch *Channel) EraseWrite(p *sim.Proc, lbn int, data []byte) error {
	return ch.eraseWrite(p, lbn, data, nil)
}

// EraseWriteTagged is EraseWrite with a write ID stamped into the
// out-of-band area (see WriteTagged).
func (ch *Channel) EraseWriteTagged(p *sim.Proc, lbn int, data []byte, id WriteID) error {
	return ch.eraseWrite(p, lbn, data, &id)
}

func (ch *Channel) eraseWrite(p *sim.Proc, lbn int, data []byte, tag *WriteID) error {
	if err := ch.checkLBN(lbn); err != nil {
		return err
	}
	if err := ch.checkAlive(); err != nil {
		return err
	}
	ch.acquire(p, ch.writePrio())
	defer ch.mu.Release()
	if err := ch.checkAlive(); err != nil { // killed while queued
		return err
	}
	if err := ch.eraseLocked(p, lbn); err != nil {
		return err
	}
	if err := ch.writeLocked(p, lbn, data, tag); err != nil {
		return err
	}
	ch.maybeCheckpoint(p)
	return nil
}

// ReadAt reads size bytes at byte offset off within logical block lbn.
// Both must be page aligned. Consecutive pages use the NAND cache
// register: the array read of page n+1 overlaps the bus transfer of
// page n, so sustained reads are bus-limited (~38 MB/s per channel).
// The returned buffer is nil in timing-only mode.
func (ch *Channel) ReadAt(p *sim.Proc, lbn int, off, size int) ([]byte, error) {
	if err := ch.checkLBN(lbn); err != nil {
		return nil, err
	}
	pageSize := ch.cfg.Nand.PageSize
	if off%pageSize != 0 || size%pageSize != 0 || size <= 0 {
		return nil, fmt.Errorf("%w: off=%d size=%d page=%d", ErrBadAlignment, off, size, pageSize)
	}
	if off+size > ch.BlockSize() {
		return nil, fmt.Errorf("%w: off %d + size %d > block %d", ErrBadAddress, off, size, ch.BlockSize())
	}
	if err := ch.checkAlive(); err != nil {
		return nil, err
	}
	ch.acquire(p, ch.readPrio())
	defer ch.mu.Release()
	if err := ch.checkAlive(); err != nil { // killed while queued
		return nil, err
	}

	var out []byte
	if ch.cfg.Nand.RetainData {
		out = make([]byte, 0, size)
	}
	t := ch.env.Tracer()
	parent := p.Span()
	stripe := ch.stripeBytes()
	var pending time.Duration // wires-quiet instant of the in-flight page (0 = none)
	lastPi, lastPhys := -1, 0 // mapping lookup cache: pi changes once per stripe
	for done := 0; done < size; {
		pi := (off + done) / stripe
		within := (off + done) % stripe
		pg := within / pageSize
		ps := &ch.planes[pi]
		if pi != lastPi {
			phys, ok := ps.mapping[lbn]
			if !ok {
				return nil, fmt.Errorf("%w: logical block %d never written", ErrBadAddress, lbn)
			}
			lastPi, lastPhys = pi, phys
		}
		phys := lastPhys
		span := t.Begin(ch.env.Now(), parent, "nand/read", trace.PhaseFlash)
		data, err := ps.plane.ReadPage(p, phys, pg)
		if err != nil {
			t.End(ch.env.Now(), span)
			return nil, err
		}
		t.End(ch.env.Now(), span)
		if ch.code != nil {
			data, err = ch.correct(pi, phys, pg, data)
			if err != nil {
				return nil, err
			}
		}
		if ch.cfg.VerifyCRC && data != nil {
			if err := ch.verifyCRC(ps.plane, pi, phys, pg, data); err != nil {
				return nil, err
			}
		}
		if out != nil {
			out = append(out, data...)
		}
		// Wait for the cache register to drain, then ship this page.
		p.WaitUntil(pending)
		pending = ch.transferAsync(pageSize, parent)
		done += pageSize
	}
	p.WaitUntil(pending)
	ch.bytesRead += int64(size)
	return out, nil
}

// storeParity computes and records BCH parity for each ECC sector of a
// freshly programmed page (modelling the out-of-band area).
func (ch *Channel) storeParity(pi, phys, pg int, payload []byte) {
	sector := ch.cfg.ECCSector
	n := len(payload) / sector
	parities := make([][]byte, n)
	for s := 0; s < n; s++ {
		parities[s] = ch.code.Encode(payload[s*sector : (s+1)*sector])
	}
	ch.parity[parityKey{pi, phys, pg}] = parities
}

// correct runs the BCH decoder over each sector of a page read,
// fixing injected bit errors in place.
func (ch *Channel) correct(pi, phys, pg int, data []byte) ([]byte, error) {
	parities, ok := ch.parity[parityKey{pi, phys, pg}]
	if !ok {
		return data, nil // written without ECC (timing-only payloads)
	}
	sector := ch.cfg.ECCSector
	for s := 0; s < len(parities); s++ {
		par := append([]byte(nil), parities[s]...)
		n, err := ch.code.Decode(data[s*sector:(s+1)*sector], par)
		if err != nil {
			ch.eccFailures++
			return nil, fmt.Errorf("%w: plane %d block %d page %d sector %d",
				ErrUncorrectable, pi, phys, pg, s)
		}
		ch.eccCorrected += int64(n)
	}
	return data, nil
}

// ScanFilter reads an entire logical block through the channel and
// applies a predicate inside the channel engine, returning only the
// matching fraction of the data — "computing in storage" using the
// FPGA logic headroom the paper points out (41% of each Spartan-6 is
// unused; §2.1, §5, and the authors' Active SSD work). The NAND and
// channel-bus costs are identical to a full read; the saving is that
// only selectivity*span bytes continue to the host. The predicate is
// abstracted as its selectivity; in data mode the filter returns every
// page whose first byte satisfies pred (a demonstrative predicate).
func (ch *Channel) ScanFilter(p *sim.Proc, lbn int, selectivity float64) (matched int, err error) {
	if err := ch.checkLBN(lbn); err != nil {
		return 0, err
	}
	if selectivity < 0 {
		selectivity = 0
	}
	if selectivity > 1 {
		selectivity = 1
	}
	// The scan is an ordinary full-block read at the channel level.
	if _, err := ch.ReadAt(p, lbn, 0, ch.BlockSize()); err != nil {
		return 0, err
	}
	return int(selectivity * float64(ch.BlockSize())), nil
}

// WearStats summarizes wear leveling effectiveness.
type WearStats struct {
	MinErase, MaxErase int
	TotalErase         int64
	BadBlocks          int
}

// Wear reports erase-count spread and bad blocks across all planes.
func (ch *Channel) Wear() WearStats {
	stats := WearStats{MinErase: 1 << 30}
	for i := range ch.planes {
		pl := ch.planes[i].plane
		for b := 0; b < pl.Blocks(); b++ {
			if pl.Bad(b) {
				stats.BadBlocks++
				continue
			}
			ec := pl.EraseCount(b)
			stats.TotalErase += int64(ec)
			if ec < stats.MinErase {
				stats.MinErase = ec
			}
			if ec > stats.MaxErase {
				stats.MaxErase = ec
			}
		}
	}
	if stats.MinErase == 1<<30 {
		stats.MinErase = 0
	}
	return stats
}

// LBNWear reports the mean erase count of the physical blocks
// currently mapped for logical block lbn, and whether the LBN is
// mapped at all. Static wear leveling uses it to find the coldest
// mapped block on a channel: data parked on low-erase-count media
// keeps those blocks out of circulation until it is migrated off.
func (ch *Channel) LBNWear(lbn int) (int, bool) {
	total, n := 0, 0
	for i := range ch.planes {
		ps := &ch.planes[i]
		phys, ok := ps.mapping[lbn]
		if !ok {
			continue
		}
		total += ps.plane.EraseCount(phys)
		n++
	}
	if n == 0 {
		return 0, false
	}
	return total / n, true
}
