// Mount-time recovery: the channel engine's power-loss story.
//
// Every page the write path programs carries ~41 bytes of out-of-band
// metadata in the NAND spare area: the caller's 128-bit write ID
// (§2.4's write-ID hashing), a per-channel command sequence number, the
// logical block and page, a payload CRC, and — on the last page — a
// block CRC folding the page CRCs. Because pages program strictly in
// order, a torn page is always the last page written, so a physical
// block is provably complete iff its write pointer reached the end and
// its first and last pages decode consistently; the full OOB walk in
// host code is the stream validation the channel FPGA does on the fly,
// while the simulated cost is one probe read per written page.
//
// After a power loss, Persistent captures the media, Mount rebuilds
// the channel over it in a fresh environment, and Recover scans every
// plane to rebuild the LA2PA mapping (newest complete cross-plane
// generation per logical block wins), the wear-leveling heaps (erase
// counts live in the media), and the bad-block list, discarding torn
// and stale physical blocks into the free pool for re-erase.
package flashchan

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"sdf/internal/bch"
	"sdf/internal/nand"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// WriteID is the 128-bit write identifier upper layers stamp on a
// block write. The production system hashes a 128-bit ID per write;
// our block layer uses the low 64 bits.
type WriteID struct {
	Hi, Lo uint64
}

// Out-of-band flag bits.
const (
	oobTagged = 1 << iota // written via WriteTagged (ID is meaningful)
	oobHasCRC             // payload CRC present (data mode)
	oobLast               // last page of the block; block CRC present
)

// oobSize is the encoded out-of-band record: 16 (ID) + 8 (seq) +
// 4 (lbn) + 4 (page) + 4 (page CRC) + 4 (block CRC) + 1 (flags).
const oobSize = 41

// pageOOB is the decoded out-of-band record of one page.
type pageOOB struct {
	id    WriteID
	seq   uint64
	lbn   int
	page  int
	crc   uint32 // payload CRC32 (0 in timing-only mode)
	bcrc  uint32 // fold of the block's page CRCs (last page only)
	flags uint8
}

// makePageOOB builds the record for one page of a write command and
// returns it with the updated block-CRC fold.
func makePageOOB(tag *WriteID, seq uint64, lbn, page, pagesPerBlock int, payload []byte, fold uint32) (pageOOB, uint32) {
	oob := pageOOB{seq: seq, lbn: lbn, page: page}
	if tag != nil {
		oob.id = *tag
		oob.flags |= oobTagged
	}
	if payload != nil {
		oob.crc = crc32.ChecksumIEEE(payload)
		oob.flags |= oobHasCRC
	}
	fold = foldCRC(fold, oob.crc)
	if page == pagesPerBlock-1 {
		oob.flags |= oobLast
		oob.bcrc = fold
	}
	return oob, fold
}

// foldCRC chains one page CRC into the running block CRC. The body is
// crc32.Update(acc, crc32.IEEETable, le32(pageCRC)) unrolled over the
// four little-endian bytes: Update's slice argument defeats escape
// analysis and costs a heap allocation per page on the write path.
func foldCRC(acc, pageCRC uint32) uint32 {
	crc := ^acc
	for i := 0; i < 4; i++ {
		crc = crc32.IEEETable[byte(crc)^byte(pageCRC>>(8*i))] ^ (crc >> 8)
	}
	return ^crc
}

func encodeOOB(oob pageOOB) []byte {
	buf := make([]byte, oobSize)
	encodeOOBInto(oob, buf)
	return buf
}

// encodeOOBInto serializes into a caller-owned buffer of oobSize
// bytes. The write path reuses one stack buffer per worker — the
// media model copies the spare into its arena immediately, so the
// buffer never escapes.
func encodeOOBInto(oob pageOOB, buf []byte) {
	binary.LittleEndian.PutUint64(buf[0:], oob.id.Hi)
	binary.LittleEndian.PutUint64(buf[8:], oob.id.Lo)
	binary.LittleEndian.PutUint64(buf[16:], oob.seq)
	binary.LittleEndian.PutUint32(buf[24:], uint32(oob.lbn))
	binary.LittleEndian.PutUint32(buf[28:], uint32(oob.page))
	binary.LittleEndian.PutUint32(buf[32:], oob.crc)
	binary.LittleEndian.PutUint32(buf[36:], oob.bcrc)
	buf[40] = oob.flags
}

func decodeOOB(buf []byte) (pageOOB, bool) {
	if len(buf) != oobSize {
		return pageOOB{}, false
	}
	return pageOOB{
		id:    WriteID{Hi: binary.LittleEndian.Uint64(buf[0:]), Lo: binary.LittleEndian.Uint64(buf[8:])},
		seq:   binary.LittleEndian.Uint64(buf[16:]),
		lbn:   int(binary.LittleEndian.Uint32(buf[24:])),
		page:  int(binary.LittleEndian.Uint32(buf[28:])),
		crc:   binary.LittleEndian.Uint32(buf[32:]),
		bcrc:  binary.LittleEndian.Uint32(buf[36:]),
		flags: buf[40],
	}, true
}

// verifyCRC checks a page read against the payload CRC stored in its
// out-of-band area. Pages without a CRC record (timing-only payloads,
// raw nand writes) pass: the check only fires where the write path
// left evidence.
func (ch *Channel) verifyCRC(pl *nand.Plane, pi, phys, pg int, data []byte) error {
	oob, ok := decodeOOB(pl.Spare(phys, pg))
	if !ok || oob.flags&oobHasCRC == 0 {
		return nil
	}
	if crc32.ChecksumIEEE(data) != oob.crc {
		ch.eccFailures++
		return fmt.Errorf("%w: plane %d block %d page %d CRC mismatch",
			ErrUncorrectable, pi, phys, pg)
	}
	return nil
}

// Persistent is the channel state that survives a power loss: each
// chip's NAND media plus the BCH parity that lives in the pages'
// spare areas. Capture it with Channel.Persistent after a PowerOff
// and hand it to Mount in a fresh environment.
type Persistent struct {
	media  []*nand.Media
	parity map[parityKey][][]byte
}

// Persistent returns the channel's surviving state. The result shares
// the live media: capture it only after PowerOff, when no further
// commands can mutate it.
func (ch *Channel) Persistent() *Persistent {
	ps := &Persistent{parity: ch.parity}
	for _, chip := range ch.chips {
		ps.media = append(ps.media, chip.Media())
	}
	return ps
}

// Mount rebuilds a channel over persistent state in a fresh
// environment. The channel comes up with empty FTL state — no logical
// mapping, no free pools — and must run Recover before serving I/O.
func Mount(env *sim.Env, cfg Config, state *Persistent) (*Channel, error) {
	if cfg.Chips < 1 {
		return nil, fmt.Errorf("flashchan: need at least one chip")
	}
	if len(state.media) != cfg.Chips {
		return nil, fmt.Errorf("flashchan: mount with %d chips of media, config wants %d", len(state.media), cfg.Chips)
	}
	if cfg.CheckpointEvery > 0 && cfg.SparePerPlane <= cpSlots {
		return nil, fmt.Errorf("flashchan: checkpointing needs SparePerPlane > %d", cpSlots)
	}
	ch := &Channel{
		cfg: cfg,
		env: env,
		bus: sim.NewLink(env, cfg.BusRate, cfg.BusOverhead),
		mu:  sim.NewPriorityResource(env, 1),
		// nextSeq is re-derived by Recover from the media.
		nextSeq: 1,
		meta:    make(map[int]blockMeta),
		cpSeq:   1,
	}
	ch.SetLabel("chan")
	for i := 0; i < cfg.Chips; i++ {
		np := cfg.Nand
		np.Seed = cfg.Seed*1000 + int64(i)
		chip, err := nand.Mount(env, np, state.media[i])
		if err != nil {
			return nil, err
		}
		ch.chips = append(ch.chips, chip)
		for pl := 0; pl < chip.Planes(); pl++ {
			ch.planes = append(ch.planes, planeState{
				plane:   chip.Plane(pl),
				chip:    i,
				mapping: make(map[int]int),
			})
			ps := &ch.planes[len(ch.planes)-1]
			ps.free.plane = ps.plane
		}
	}
	if cfg.ECC {
		if !cfg.Nand.RetainData {
			return nil, fmt.Errorf("flashchan: ECC requires RetainData")
		}
		code, err := bch.New(cfg.ECCM, cfg.ECCT, cfg.ECCSector)
		if err != nil {
			return nil, err
		}
		ch.code = code
		ch.parity = state.parity
		if ch.parity == nil {
			ch.parity = make(map[parityKey][][]byte)
		}
	}
	return ch, nil
}

// RecoveredBlock is one logical block the mount-time scan restored.
type RecoveredBlock struct {
	LBN    int
	ID     WriteID
	Tagged bool
	Seq    uint64
}

// RecoveryReport summarizes one channel's mount-time scan.
type RecoveryReport struct {
	// Recovered lists the restored logical blocks in LBN order.
	Recovered []RecoveredBlock
	// TornBlocks counts physical blocks discarded because their write
	// was incomplete at the crash (torn page, partial block, or
	// metadata chain failure). They return to the free pool and must
	// survive a fresh erase before reuse.
	TornBlocks int
	// StaleBlocks counts complete physical blocks superseded by a
	// newer generation of the same logical block.
	StaleBlocks int
	// PartialErases counts erase pulses the power loss interrupted
	// (wear charged, block needs re-erase).
	PartialErases int
	// BadBlocks counts physical blocks skipped as bad.
	BadBlocks int
	// ScannedBlocks and ProbedPages size the scan; ScanTime is the
	// virtual time the slowest plane's probe stream took.
	ScannedBlocks int
	ProbedPages   int64
	ScanTime      time.Duration
	// CheckpointFound reports whether a valid checkpoint survived;
	// CheckpointSeq is its generation and CheckpointWatermark the
	// sequence number it was cut at. CheckpointHits counts physical
	// blocks the checkpoint vouched for, each validated with a single
	// first-page probe instead of a full out-of-band walk — the
	// mechanism that makes remount cost O(post-checkpoint activity).
	CheckpointFound     bool
	CheckpointSeq       uint64
	CheckpointWatermark uint64
	CheckpointHits      int
}

// planeCand is one complete physical block found by a plane scan.
type planeCand struct {
	phys   int
	id     WriteID
	tagged bool
	seq    uint64
}

// Recover scans every plane's out-of-band metadata and rebuilds the
// channel FTL: logical-to-physical mapping (the newest sequence
// present as a complete block on all planes wins, so a write torn on
// any plane falls back to the intact previous generation), the
// wear-leveling free heaps, and the bad-block list. Planes scan in
// parallel; each plane charges one array read plus one bus transfer
// of the OOB record per probed page.
func (ch *Channel) Recover(p *sim.Proc) (RecoveryReport, error) {
	if ch.dead {
		ch.deadRejects++
		return RecoveryReport{}, ErrChannelDead
	}
	var rep RecoveryReport
	t := ch.env.Tracer()
	span := t.Begin(ch.env.Now(), p.Span(), "chan/recover", trace.PhaseRecovery)
	defer func() { t.End(ch.env.Now(), span) }()

	pagesPerBlock := ch.cfg.Nand.PagesPerBlock
	perProbe := ch.cfg.Nand.TRead + ch.cfg.BusOverhead + sim.ByteTime(oobSize, ch.cfg.BusRate)
	start := ch.env.Now()

	// Load the newest valid checkpoint first (when enabled) and index
	// it by physical block per plane: a checkpointed block whose
	// first-page identity matches is accepted with one probe; only
	// post-watermark activity pays the full out-of-band walk. No valid
	// checkpoint means cpByPhys stays nil and every block takes the
	// full-scan path below.
	cpByPhys := make([]map[int]cpEntry, len(ch.planes))
	var cp *checkpointState
	if ch.cpEnabled() {
		state, slot, cpProbes := ch.loadCheckpoint(p)
		rep.ProbedPages += cpProbes
		cp = state
		if cp != nil {
			rep.CheckpointFound = true
			rep.CheckpointSeq = cp.seq
			rep.CheckpointWatermark = cp.watermark
			ch.cpSeq = cp.seq + 1
			ch.cpSlot = (slot + 1) % cpSlots
			for i := range ch.planes {
				cpByPhys[i] = make(map[int]cpEntry)
			}
			for _, e := range cp.entries {
				for pi, phys := range e.phys {
					if pi < len(ch.planes) {
						cpByPhys[pi][phys] = e
					}
				}
			}
		}
	}

	cands := make([]map[int][]planeCand, len(ch.planes))
	probes := make([]int64, len(ch.planes))
	var maxSeq uint64
	parent := p.Span()
	var workers []*sim.Proc
	for i := range ch.planes {
		pi := i
		w := ch.env.Go("flashchan/recover", func(wp *sim.Proc) {
			wp.SetSpan(parent)
			ps := &ch.planes[pi]
			byLBN := make(map[int][]planeCand)
			var n int64
			for phys := 0; phys < ps.plane.Blocks(); phys++ {
				if ch.cpHome(pi, phys) {
					continue // checkpoint slot, already read above
				}
				if ps.plane.Bad(phys) {
					rep.BadBlocks++
					continue
				}
				rep.ScannedBlocks++
				wp0 := ps.plane.WritePtr(phys)
				if wp0 < 0 {
					continue // never erased, or erase torn by the crash
				}
				n++ // frontier probe
				if wp0 == 0 {
					continue // erased and empty
				}
				if e, hit := cpByPhys[pi][phys]; hit && wp0 == pagesPerBlock && e.seq < cp.watermark {
					// The checkpoint vouches for this block. One probe
					// of the first page confirms the identity (an
					// erase-and-rewrite after the checkpoint would show
					// a different sequence and fall through to the full
					// walk; the extra probe is the price of suspicion).
					n++
					oob, okd := decodeOOB(ps.plane.Spare(phys, 0))
					if okd && oob.seq == e.seq && oob.lbn == e.lbn && oob.id == e.id &&
						(oob.flags&oobTagged != 0) == e.tagged {
						rep.CheckpointHits++
						byLBN[e.lbn] = append(byLBN[e.lbn], planeCand{
							phys:   phys,
							id:     e.id,
							tagged: e.tagged,
							seq:    e.seq,
						})
						continue
					}
				}
				n += int64(wp0) // OOB walk of the written pages
				c, ok := ch.validateBlock(ps.plane, phys, wp0, pagesPerBlock)
				if !ok {
					rep.TornBlocks++
					continue
				}
				byLBN[c.lbn] = append(byLBN[c.lbn], planeCand{
					phys:   phys,
					id:     c.id,
					tagged: c.flags&oobTagged != 0,
					seq:    c.seq,
				})
			}
			cands[pi] = byLBN
			probes[pi] = n
			// The probe stream is strictly sequential on the plane;
			// charge it as one bulk occupancy.
			ps.plane.Timeline().Occupy(wp, time.Duration(n)*perProbe)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for i := range ch.planes {
		rep.ProbedPages += probes[i]
		rep.PartialErases += ch.planes[i].plane.InterruptedErases()
	}

	// Choose one winning generation per logical block: the highest
	// sequence for which every plane holds a complete block with the
	// same ID. A multi-plane write torn on one plane has no common
	// newest sequence, so the scan falls back to the previous intact
	// generation (whose physical blocks were recycled into the free
	// pool but never re-erased).
	for lbn := 0; lbn < ch.LogicalBlocks(); lbn++ {
		first := cands[0][lbn]
		if len(first) == 0 {
			continue
		}
		sort.Slice(first, func(a, b int) bool { return first[a].seq > first[b].seq })
		for _, c0 := range first {
			match := make([]int, len(ch.planes))
			match[0] = c0.phys
			ok := true
			for pi := 1; pi < len(ch.planes); pi++ {
				found := false
				for _, c := range cands[pi][lbn] {
					if c.seq == c0.seq && c.id == c0.id && c.tagged == c0.tagged {
						match[pi] = c.phys
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for pi := range ch.planes {
				ch.planes[pi].mapping[lbn] = match[pi]
			}
			ch.meta[lbn] = blockMeta{id: c0.id, tagged: c0.tagged, seq: c0.seq}
			rep.Recovered = append(rep.Recovered, RecoveredBlock{
				LBN:    lbn,
				ID:     c0.id,
				Tagged: c0.tagged,
				Seq:    c0.seq,
			})
			if c0.seq > maxSeq {
				maxSeq = c0.seq
			}
			break
		}
	}

	// Complete-but-unchosen candidates are stale generations; count
	// them and track the global sequence high-water mark so new writes
	// always supersede everything on the media.
	for pi := range ch.planes {
		ps := &ch.planes[pi]
		mapped := make(map[int]bool, len(ps.mapping))
		for lbn := 0; lbn < ch.LogicalBlocks(); lbn++ {
			if phys, ok := ps.mapping[lbn]; ok {
				mapped[phys] = true
			}
		}
		for lbn := 0; lbn < ch.LogicalBlocks(); lbn++ {
			for _, c := range cands[pi][lbn] {
				if c.seq > maxSeq {
					maxSeq = c.seq
				}
				if !mapped[c.phys] {
					rep.StaleBlocks++
				}
			}
		}
		// Rebuild the wear heap: every healthy, unmapped physical
		// block is allocatable again (erase counts live in the media).
		// Checkpoint home blocks never enter the pool.
		ps.free.idx = ps.free.idx[:0]
		for phys := 0; phys < ps.plane.Blocks(); phys++ {
			if !ps.plane.Bad(phys) && !mapped[phys] && !ch.cpHome(pi, phys) {
				ps.free.idx = append(ps.free.idx, phys)
			}
		}
		heap.Init(&ps.free)
	}
	ch.nextSeq = maxSeq + 1
	if cp != nil && cp.watermark > ch.nextSeq {
		// Every pre-checkpoint write sat below the watermark; if the
		// scan saw less (post-checkpoint writes all torn), the
		// watermark still floors the sequence so new writes supersede
		// anything the media might hold.
		ch.nextSeq = cp.watermark
	}
	rep.ScanTime = ch.env.Now() - start
	return rep, nil
}

// validateBlock checks one physical block's metadata chain: the block
// is complete iff the write pointer reached the last page and every
// page's OOB decodes with consistent ID/sequence/LBN, correct page
// numbers, and a matching block CRC on the last page. Sequential
// programming guarantees a torn page is the last one written, and a
// torn page retains no spare, so incompleteness is always detected.
func (ch *Channel) validateBlock(pl *nand.Plane, phys, writePtr, pagesPerBlock int) (pageOOB, bool) {
	if writePtr != pagesPerBlock {
		return pageOOB{}, false
	}
	first, ok := decodeOOB(pl.Spare(phys, 0))
	if !ok || first.page != 0 || first.lbn < 0 || first.lbn >= ch.LogicalBlocks() {
		return pageOOB{}, false
	}
	var fold uint32
	for pg := 0; pg < pagesPerBlock; pg++ {
		oob, ok := decodeOOB(pl.Spare(phys, pg))
		if !ok || oob.page != pg || oob.lbn != first.lbn ||
			oob.seq != first.seq || oob.id != first.id ||
			oob.flags&oobTagged != first.flags&oobTagged {
			return pageOOB{}, false
		}
		fold = foldCRC(fold, oob.crc)
		if pg == pagesPerBlock-1 && (oob.flags&oobLast == 0 || oob.bcrc != fold) {
			return pageOOB{}, false
		}
	}
	return first, true
}

// SeedRecoverable installs a fully programmed logical block — with
// complete out-of-band metadata but no payloads — directly into the
// media in zero simulated time. It is the recovery analogue of
// nand.Preload: experiments stage a pre-crash fill level whose
// mount-time scan finds real metadata, without simulating the fill
// traffic. Timing-only mode only.
func (ch *Channel) SeedRecoverable(lbn int, id WriteID) error {
	if err := ch.checkLBN(lbn); err != nil {
		return err
	}
	if ch.cfg.Nand.RetainData {
		return fmt.Errorf("flashchan: SeedRecoverable is incompatible with RetainData")
	}
	pagesPerBlock := ch.cfg.Nand.PagesPerBlock
	seq := ch.nextSeq
	ch.nextSeq++
	for i := range ch.planes {
		ps := &ch.planes[i]
		if _, ok := ps.mapping[lbn]; ok {
			return fmt.Errorf("flashchan: logical block %d already seeded", lbn)
		}
		if ps.free.Len() == 0 {
			return fmt.Errorf("%w: plane %d", ErrOutOfSpace, i)
		}
		phys := heap.Pop(&ps.free).(int)
		spares := make([][]byte, pagesPerBlock)
		var fold uint32
		for pg := 0; pg < pagesPerBlock; pg++ {
			oob, f := makePageOOB(&id, seq, lbn, pg, pagesPerBlock, nil, fold)
			fold = f
			spares[pg] = encodeOOB(oob)
		}
		if err := ps.plane.PreloadSpares(phys, spares); err != nil {
			return err
		}
		ps.mapping[lbn] = phys
	}
	ch.meta[lbn] = blockMeta{id: id, tagged: true, seq: seq}
	return nil
}
