package flashchan

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/sim"
)

// smallConfig is a channel with tiny geometry but real timing, data
// mode on, for functional tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Nand.BlocksPerPlane = 32
	cfg.Nand.PagesPerBlock = 8 // 64 KB erase block, 256 KB logical block
	cfg.Nand.RetainData = true
	cfg.SparePerPlane = 4
	cfg.Seed = 1
	return cfg
}

func run(t *testing.T, cfg Config, fn func(env *sim.Env, ch *Channel, p *sim.Proc)) time.Duration {
	t.Helper()
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	body := env.Go("test", func(p *sim.Proc) { fn(env, ch, p) })
	env.Go("waiter", func(p *sim.Proc) { p.Join(body) })
	env.Run()
	now := env.Now()
	env.Close()
	return now
}

func TestGeometry(t *testing.T) {
	env := sim.NewEnv()
	ch, err := New(env, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if ch.BlockSize() != 8<<20 {
		t.Fatalf("BlockSize = %d, want 8 MiB", ch.BlockSize())
	}
	if ch.PageSize() != 8<<10 {
		t.Fatalf("PageSize = %d, want 8 KiB", ch.PageSize())
	}
	if ch.RawCapacity() != 16<<30 {
		t.Fatalf("RawCapacity = %d, want 16 GiB", ch.RawCapacity())
	}
	// 99%+ of raw capacity exposed.
	frac := float64(ch.Capacity()) / float64(ch.RawCapacity())
	if frac < 0.99 {
		t.Fatalf("usable fraction = %.3f, want >= 0.99", frac)
	}
}

func TestWriteRequiresErase(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		err := ch.Write(p, 0, make([]byte, ch.BlockSize()))
		if !errors.Is(err, ErrNotErased) {
			t.Errorf("write without erase: %v, want ErrNotErased", err)
		}
	})
}

func TestEraseWriteReadRoundTrip(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		data := make([]byte, ch.BlockSize())
		rand.New(rand.NewSource(42)).Read(data)
		if err := ch.Erase(p, 3); err != nil {
			t.Fatal(err)
		}
		if err := ch.Write(p, 3, data); err != nil {
			t.Fatal(err)
		}
		got, err := ch.ReadAt(p, 3, 0, ch.BlockSize())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("full-block read-back mismatch")
		}
		// Partial read across the stripe boundary.
		off := ch.stripeBytes() - ch.PageSize()
		got, err = ch.ReadAt(p, 3, off, 2*ch.PageSize())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[off:off+2*ch.PageSize()]) {
			t.Fatal("cross-stripe read mismatch")
		}
	})
}

func TestEraseWriteCombined(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		data := make([]byte, ch.BlockSize())
		for i := range data {
			data[i] = byte(i)
		}
		if err := ch.EraseWrite(p, 0, data); err != nil {
			t.Fatal(err)
		}
		got, err := ch.ReadAt(p, 0, 0, ch.PageSize())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[:ch.PageSize()]) {
			t.Fatal("read-back mismatch after EraseWrite")
		}
	})
}

func TestRewriteRequiresReErase(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := ch.Write(p, 0, nil); !errors.Is(err, ErrNotErased) {
			t.Errorf("overwrite without erase: %v, want ErrNotErased", err)
		}
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Errorf("re-erase-write: %v", err)
		}
	})
}

func TestAlignmentEnforced(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ch.ReadAt(p, 0, 1, ch.PageSize()); !errors.Is(err, ErrBadAlignment) {
			t.Errorf("unaligned offset: %v", err)
		}
		if _, err := ch.ReadAt(p, 0, 0, 100); !errors.Is(err, ErrBadAlignment) {
			t.Errorf("unaligned size: %v", err)
		}
		if _, err := ch.ReadAt(p, 0, 0, ch.BlockSize()+ch.PageSize()); !errors.Is(err, ErrBadAddress) {
			t.Errorf("oversized read: %v", err)
		}
	})
}

func TestBadLBN(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.Erase(p, ch.LogicalBlocks()); !errors.Is(err, ErrBadAddress) {
			t.Errorf("out-of-range erase: %v", err)
		}
		if err := ch.Erase(p, -1); !errors.Is(err, ErrBadAddress) {
			t.Errorf("negative erase: %v", err)
		}
	})
}

func TestDynamicWearLeveling(t *testing.T) {
	cfg := smallConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		// Hammer a single logical block; DWL must spread erases over
		// the whole free pool rather than cycling one physical block.
		for i := 0; i < 3*cfg.Nand.BlocksPerPlane; i++ {
			if err := ch.EraseWrite(p, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		w := ch.Wear()
		if w.MaxErase-w.MinErase > 2 {
			t.Fatalf("wear spread %d..%d too wide for dynamic leveling", w.MinErase, w.MaxErase)
		}
	})
}

func TestBadBlockRetirement(t *testing.T) {
	cfg := smallConfig()
	cfg.Nand.EraseLimit = 6
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		// Wear out blocks; the engine must retire them transparently
		// until the spare pool is exhausted.
		var err error
		writes := 0
		for i := 0; i < 20*cfg.Nand.BlocksPerPlane; i++ {
			if err = ch.EraseWrite(p, i%4, nil); err != nil {
				break
			}
			writes++
		}
		if err == nil {
			t.Fatal("device never wore out")
		}
		if !errors.Is(err, ErrOutOfSpace) {
			t.Fatalf("wear-out error = %v, want ErrOutOfSpace", err)
		}
		w := ch.Wear()
		if w.BadBlocks == 0 {
			t.Fatal("no blocks were retired")
		}
		// Endurance should be roughly fully consumed: with limit 6 and
		// 32 blocks/plane we expect on the order of 32*6 erases per
		// plane before death.
		if writes < 4*cfg.Nand.BlocksPerPlane {
			t.Fatalf("only %d writes before wear-out; DWL/BBM not spreading load", writes)
		}
	})
}

func TestSpareExhaustionTerminal(t *testing.T) {
	cfg := smallConfig()
	cfg.Nand.EraseLimit = 4
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		// Drive the channel to full wear-out.
		var err error
		for i := 0; i < 40*cfg.Nand.BlocksPerPlane; i++ {
			if err = ch.EraseWrite(p, i%4, nil); err != nil {
				break
			}
		}
		if !errors.Is(err, ErrOutOfSpace) {
			t.Fatalf("wear-out error = %v, want ErrOutOfSpace", err)
		}
		// The exhaustion must be terminal for a fresh logical block:
		// every retry reports ErrOutOfSpace immediately, without burning
		// endurance on the planes that still hold spares and without
		// consuming flash time on half-done erases.
		fresh := ch.LogicalBlocks() - 1
		before := ch.Wear()
		start := env.Now()
		for i := 0; i < 5; i++ {
			if err := ch.EraseWrite(p, fresh, nil); !errors.Is(err, ErrOutOfSpace) {
				t.Fatalf("retry %d: %v, want ErrOutOfSpace", i, err)
			}
		}
		if elapsed := env.Now() - start; elapsed >= time.Millisecond {
			t.Fatalf("exhausted retries took %v of flash time; want fail-fast", elapsed)
		}
		after := ch.Wear()
		if after.TotalErase != before.TotalErase || after.BadBlocks != before.BadBlocks {
			t.Fatalf("retries burned endurance: erases %d->%d, bad %d->%d",
				before.TotalErase, after.TotalErase, before.BadBlocks, after.BadBlocks)
		}
		// A write to the unwound block must say "not erased", not panic
		// or pretend a stripe exists.
		if err := ch.Write(p, fresh, nil); !errors.Is(err, ErrNotErased) {
			t.Fatalf("write after failed erase: %v, want ErrNotErased", err)
		}
	})
}

func TestKillRevive(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		data := make([]byte, ch.BlockSize())
		rand.New(rand.NewSource(9)).Read(data)
		if err := ch.EraseWrite(p, 2, data); err != nil {
			t.Fatal(err)
		}
		ch.Kill()
		if ch.Alive() {
			t.Fatal("Alive after Kill")
		}
		start := env.Now()
		if _, err := ch.ReadAt(p, 2, 0, ch.PageSize()); !errors.Is(err, ErrChannelDead) {
			t.Fatalf("read on dead channel: %v, want ErrChannelDead", err)
		}
		if err := ch.EraseWrite(p, 3, nil); !errors.Is(err, ErrChannelDead) {
			t.Fatalf("write on dead channel: %v, want ErrChannelDead", err)
		}
		if env.Now() != start {
			t.Fatalf("dead-channel rejects consumed %v of virtual time", env.Now()-start)
		}
		if ch.DeadRejects() < 2 {
			t.Fatalf("DeadRejects = %d, want >= 2", ch.DeadRejects())
		}
		ch.Revive()
		got, err := ch.ReadAt(p, 2, 0, ch.PageSize())
		if err != nil {
			t.Fatalf("read after revive: %v", err)
		}
		if !bytes.Equal(got, data[:ch.PageSize()]) {
			t.Fatal("data lost across kill/revive")
		}
	})
}

func TestHangStallsQueuedCommands(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		const stall = 50 * time.Millisecond
		ch.Hang(stall)
		p.Wait(time.Millisecond) // let the hang seize the engine
		start := env.Now()
		if _, err := ch.ReadAt(p, 0, 0, ch.PageSize()); err != nil {
			t.Fatal(err)
		}
		if waited := env.Now() - start; waited < stall-2*time.Millisecond {
			t.Fatalf("read finished %v after hang; want >= ~%v", waited, stall)
		}
	})
}

func TestGrowBadBlocksRetiresSpares(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		before := ch.Wear().BadBlocks
		if n := ch.GrowBadBlocks(8); n != 8 {
			t.Fatalf("GrowBadBlocks(8) = %d", n)
		}
		if got := ch.Wear().BadBlocks - before; got != 8 {
			t.Fatalf("bad blocks grew by %d, want 8", got)
		}
		// Retire every remaining spare: the pool is finite, so the count
		// must come back smaller than asked and the channel must report
		// exhaustion for new blocks — while mapped data stays readable.
		if n := ch.GrowBadBlocks(1 << 20); n >= 1<<20 {
			t.Fatalf("GrowBadBlocks unbounded: %d", n)
		}
		if err := ch.EraseWrite(p, 5, nil); !errors.Is(err, ErrOutOfSpace) {
			t.Fatalf("erase-write after total grown failure: %v, want ErrOutOfSpace", err)
		}
		if _, err := ch.ReadAt(p, 0, 0, ch.PageSize()); err != nil {
			t.Fatalf("mapped data unreadable after grown defects: %v", err)
		}
	})
}

func TestBERBoostBurst(t *testing.T) {
	cfg := smallConfig()
	cfg.ECC = true
	cfg.Nand.BaseBER = 0
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		data := make([]byte, ch.BlockSize())
		rand.New(rand.NewSource(11)).Read(data)
		if err := ch.EraseWrite(p, 1, data); err != nil {
			t.Fatal(err)
		}
		ch.SetBERBoost(1e-2) // ~41 errors/sector: far beyond t=8
		if _, err := ch.ReadAt(p, 1, 0, ch.PageSize()); !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("read during ECC burst: %v, want ErrUncorrectable", err)
		}
		ch.SetBERBoost(0)
		got, err := ch.ReadAt(p, 1, 0, ch.PageSize())
		if err != nil {
			t.Fatalf("read after burst ends: %v", err)
		}
		if !bytes.Equal(got, data[:ch.PageSize()]) {
			t.Fatal("data corrupted after transient ECC burst")
		}
	})
}

func TestECCRoundTripUnderErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.ECC = true
	cfg.Nand.BaseBER = 2e-5 // ~0.08 errors/sector: well within t=8
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		data := make([]byte, ch.BlockSize())
		rand.New(rand.NewSource(7)).Read(data)
		if err := ch.EraseWrite(p, 1, data); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			got, err := ch.ReadAt(p, 1, 0, ch.BlockSize())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("ECC failed to restore data")
			}
		}
		corrected, failures := ch.ECCStats()
		if corrected == 0 {
			t.Fatal("expected some corrected bit errors at BER=2e-5")
		}
		if failures != 0 {
			t.Fatalf("unexpected uncorrectable sectors: %d", failures)
		}
	})
}

func TestECCUncorrectableSurfaces(t *testing.T) {
	cfg := smallConfig()
	cfg.ECC = true
	cfg.Nand.BaseBER = 1e-2 // ~41 errors/sector: far beyond t=8
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		data := make([]byte, ch.BlockSize())
		if err := ch.EraseWrite(p, 1, data); err != nil {
			t.Fatal(err)
		}
		_, err := ch.ReadAt(p, 1, 0, ch.PageSize())
		if !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("read at extreme BER: %v, want ErrUncorrectable", err)
		}
		if _, failures := ch.ECCStats(); failures == 0 {
			t.Fatal("failure counter not incremented")
		}
	})
}

func TestECCRequiresDataMode(t *testing.T) {
	cfg := smallConfig()
	cfg.ECC = true
	cfg.Nand.RetainData = false
	env := sim.NewEnv()
	if _, err := New(env, cfg); err == nil {
		t.Fatal("ECC without RetainData accepted")
	}
}

// Timing tests use the full-size channel in timing-only mode.

func timingConfig() Config {
	cfg := DefaultConfig()
	cfg.Nand.BlocksPerPlane = 64 // enough blocks, cheap init
	return cfg
}

func TestSustainedReadBandwidth(t *testing.T) {
	cfg := timingConfig()
	var elapsed time.Duration
	total := 0
	elapsed = run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		for i := 0; i < 4; i++ {
			if _, err := ch.ReadAt(p, 0, 0, ch.BlockSize()); err != nil {
				t.Fatal(err)
			}
			total += ch.BlockSize()
		}
		elapsed = env.Now() - start
		mbps := float64(total) / elapsed.Seconds() / 1e6
		// Bus-limited: ~40 MB/s raw minus command overhead => ~37 MB/s.
		if mbps < 35 || mbps > 40 {
			t.Fatalf("read bandwidth %.1f MB/s, want ~37", mbps)
		}
	})
	_ = elapsed
}

func TestSustainedWriteBandwidth(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		// Pre-erase so we measure pure program bandwidth.
		for i := 0; i < 4; i++ {
			if err := ch.Erase(p, i); err != nil {
				t.Fatal(err)
			}
		}
		start := env.Now()
		for i := 0; i < 4; i++ {
			if err := ch.Write(p, i, nil); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := env.Now() - start
		mbps := float64(4*ch.BlockSize()) / elapsed.Seconds() / 1e6
		// Program-limited: 4 planes x 8 KB / 1.4 ms = ~23.4 MB/s.
		if mbps < 21 || mbps > 25 {
			t.Fatalf("write bandwidth %.1f MB/s, want ~23", mbps)
		}
	})
}

func TestEraseWriteLatency(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		start := env.Now()
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		lat := env.Now() - start
		// Paper: SDF 8 MB erase+write is ~383 ms with little variation
		// (Figure 8). Our calibration gives ~360-370 ms.
		if lat < 340*time.Millisecond || lat > 400*time.Millisecond {
			t.Fatalf("erase+write latency %v, want ~360-383ms", lat)
		}
	})
}

func TestEraseThroughputScale(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		start := env.Now()
		const n = 8
		for i := 0; i < n; i++ {
			if err := ch.Erase(p, i); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := env.Now() - start
		gbps := float64(n*ch.BlockSize()) / elapsed.Seconds() / 1e9
		// One channel erases 8 MB per ~6 ms (two planes per chip in
		// sequence, chips parallel) => ~1.3 GB/s; 44 channels give the
		// paper's ~40 GB/s order of magnitude.
		if gbps < 1.0 || gbps > 1.7 {
			t.Fatalf("erase throughput %.2f GB/s per channel, want ~1.3", gbps)
		}
	})
}

func TestSmallReadLatency(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		if _, err := ch.ReadAt(p, 0, 0, ch.PageSize()); err != nil {
			t.Fatal(err)
		}
		lat := env.Now() - start
		// tRead 75 µs + bus 8 KB at 40 MB/s + 10 µs = ~290 µs.
		want := 75*time.Microsecond + 10*time.Microsecond + sim.ByteTime(8<<10, 40e6)
		if lat < want-time.Microsecond || lat > want+time.Microsecond {
			t.Fatalf("8 KB read latency = %v, want ~%v", lat, want)
		}
	})
}

func TestChannelSerializesRequests(t *testing.T) {
	cfg := timingConfig()
	env := sim.NewEnv()
	ch, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ends []time.Duration
	setup := env.Go("setup", func(p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Error(err)
		}
	})
	for i := 0; i < 2; i++ {
		env.Go("reader", func(p *sim.Proc) {
			p.Join(setup)
			if _, err := ch.ReadAt(p, 0, 0, ch.PageSize()); err != nil {
				t.Error(err)
			}
			ends = append(ends, env.Now())
		})
	}
	env.Run()
	env.Close()
	if len(ends) != 2 {
		t.Fatalf("ends = %v", ends)
	}
	gap := ends[1] - ends[0]
	if gap < 200*time.Microsecond {
		t.Fatalf("second read finished %v after first; engine not serializing", gap)
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	run(t, smallConfig(), func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := ch.ReadAt(p, 0, 0, ch.PageSize()); err != nil {
			t.Fatal(err)
		}
		r, w, e := ch.Counters()
		if r != int64(ch.PageSize()) || w != int64(ch.BlockSize()) || e != 1 {
			t.Fatalf("counters = %d/%d/%d", r, w, e)
		}
	})
}

func TestScanFilterTimingEqualsFullRead(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		if _, err := ch.ReadAt(p, 0, 0, ch.BlockSize()); err != nil {
			t.Fatal(err)
		}
		readTime := env.Now() - start
		start = env.Now()
		matched, err := ch.ScanFilter(p, 0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		scanTime := env.Now() - start
		if scanTime != readTime {
			t.Fatalf("scan %v vs read %v; flash cost must match", scanTime, readTime)
		}
		if matched != ch.BlockSize()/10 {
			t.Fatalf("matched = %d, want %d", matched, ch.BlockSize()/10)
		}
	})
}

func TestScanFilterClampsSelectivity(t *testing.T) {
	cfg := timingConfig()
	run(t, cfg, func(env *sim.Env, ch *Channel, p *sim.Proc) {
		if err := ch.EraseWrite(p, 0, nil); err != nil {
			t.Fatal(err)
		}
		matched, err := ch.ScanFilter(p, 0, 2.5)
		if err != nil || matched != ch.BlockSize() {
			t.Fatalf("selectivity > 1: %d/%v", matched, err)
		}
		matched, err = ch.ScanFilter(p, 0, -1)
		if err != nil || matched != 0 {
			t.Fatalf("selectivity < 0: %d/%v", matched, err)
		}
	})
}
