package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.SetLevel(LevelFull)
	c.SetDev("dev")
	if c.Full() {
		t.Fatal("nil collector must not report Full")
	}
	id := c.Begin(time.Second, 0, "op", PhaseOp)
	if id != 0 {
		t.Fatalf("nil Begin returned %d, want 0", id)
	}
	c.End(2*time.Second, id)
	c.Counter(time.Second, "q", 3)
	c.Emit(time.Second, KindAcquire, 0, 0, "r", "", 1)
	if c.Events() != nil || c.Len() != 0 {
		t.Fatal("nil collector must hold no events")
	}
	if c.Hash() != Hash(nil) {
		t.Fatal("nil collector hash must equal empty hash")
	}
}

func TestCollectorSpans(t *testing.T) {
	c := NewCollector()
	c.SetDev("sdf")
	root := c.Begin(0, 0, "sdf/write", PhaseOp)
	child := c.Begin(time.Millisecond, root, "nand/program", PhaseFlash)
	c.End(2*time.Millisecond, child)
	c.End(3*time.Millisecond, root)
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != KindSpanBegin || evs[0].Span != root || evs[0].Parent != 0 {
		t.Fatalf("bad root begin: %+v", evs[0])
	}
	if evs[1].Parent != root {
		t.Fatalf("child parent = %d, want %d", evs[1].Parent, root)
	}
	if evs[1].Dev != "sdf" {
		t.Fatalf("dev label = %q", evs[1].Dev)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, ev.Seq)
		}
	}
}

func TestLevelGating(t *testing.T) {
	c := NewCollector()
	if c.Full() {
		t.Fatal("default level must be spans-only")
	}
	c.SetLevel(LevelFull)
	if !c.Full() {
		t.Fatal("LevelFull must report Full")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindSpanBegin; k <= KindCounter; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindFromString(name)
		if !ok || got != k {
			t.Fatalf("round trip of %q: got %v ok=%v", name, got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("unknown kind name must not parse")
	}
}

func sampleEvents() []Event {
	c := NewCollector()
	c.SetDev("sdf")
	op := c.Begin(0, 0, "sdf/write", PhaseOp)
	q := c.Begin(time.Microsecond, op, "chan/queue", PhaseQueue)
	c.End(11*time.Microsecond, q)
	f := c.Begin(11*time.Microsecond, op, "nand/program", PhaseFlash)
	c.End(time.Millisecond, f)
	c.Counter(time.Millisecond, "chan0/qdepth", 2)
	c.End(time.Millisecond+time.Microsecond, op)
	return c.Events()
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, back[i], events[i])
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL export is not byte-stable")
	}
	if Hash(events) != Hash(sampleEvents()) {
		t.Fatal("hash of identical streams differs")
	}
	other := sampleEvents()
	other[0].At++
	if Hash(events) == Hash(other) {
		t.Fatal("hash failed to distinguish different streams")
	}
}

func TestSortedEventsCanonicalOrder(t *testing.T) {
	// A collector reused across sequential simulations restarts the
	// clock; exporters must re-sort by (At, Seq).
	events := []Event{
		{At: time.Second, Seq: 1, Kind: KindCounter, Name: "a"},
		{At: time.Millisecond, Seq: 2, Kind: KindCounter, Name: "b"},
		{At: time.Millisecond, Seq: 3, Kind: KindCounter, Name: "c"},
	}
	out := sortedEvents(events)
	if out[0].Name != "b" || out[1].Name != "c" || out[2].Name != "a" {
		t.Fatalf("bad canonical order: %v %v %v", out[0].Name, out[1].Name, out[2].Name)
	}
	// Input untouched.
	if events[0].Name != "a" {
		t.Fatal("sortedEvents mutated its input")
	}
}

func TestWriteChromeValidAndStable(t *testing.T) {
	events := sampleEvents()
	var a, b bytes.Buffer
	if err := WriteChrome(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, events); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("chrome export is not valid JSON:\n%s", a.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export is not byte-stable")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var complete, counter, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "C":
			counter++
		case "M":
			meta++
		}
	}
	// sampleEvents holds 3 spans, 1 counter, and one device label.
	if complete != 3 || counter != 1 || meta != 1 {
		t.Fatalf("chrome events: %d complete, %d counter, %d meta", complete, counter, meta)
	}
}

func TestSummarize(t *testing.T) {
	stats := Summarize(sampleEvents())
	if len(stats) != 3 {
		t.Fatalf("got %d stat rows, want 3", len(stats))
	}
	// Pipeline order: op before queue before flash.
	if stats[0].Phase != PhaseOp || stats[1].Phase != PhaseQueue || stats[2].Phase != PhaseFlash {
		t.Fatalf("bad phase order: %s %s %s", stats[0].Phase, stats[1].Phase, stats[2].Phase)
	}
	q := stats[1]
	if q.Name != "chan/queue" || q.Count != 1 || q.Mean != 10*time.Microsecond {
		t.Fatalf("queue row: %+v", q)
	}
	if q.P50 != 10*time.Microsecond || q.Max != 10*time.Microsecond {
		t.Fatalf("queue percentiles: %+v", q)
	}
	if q.CV != 0 {
		t.Fatalf("single-sample CV = %v, want 0", q.CV)
	}
}

func TestSummarizeIgnoresUnclosed(t *testing.T) {
	c := NewCollector()
	c.Begin(0, 0, "dangling", PhaseOp)
	done := c.Begin(time.Millisecond, 0, "done", PhaseOp)
	c.End(2*time.Millisecond, done)
	stats := Summarize(c.Events())
	if len(stats) != 1 || stats[0].Name != "done" {
		t.Fatalf("unclosed span not ignored: %+v", stats)
	}
}

func TestFormatSummary(t *testing.T) {
	out := FormatSummary(Summarize(sampleEvents()))
	if !strings.Contains(out, "device") || !strings.Contains(out, "phase") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "nand/program") || !strings.Contains(out, "chan/queue") {
		t.Fatalf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
}
