package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// PhaseStat is the latency summary of one (device, phase, span name)
// group: the row of the per-stage breakdown table.
type PhaseStat struct {
	Dev   string
	Phase string
	Name  string
	Count int
	Total time.Duration
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
	// CV is the coefficient of variation (stddev/mean) — the paper's
	// measure of latency predictability (Figure 8).
	CV float64
}

// phaseRank orders phases the way an I/O traverses them.
var phaseRank = map[string]int{
	PhaseOp:       0,
	PhaseSoftware: 1,
	PhaseQueue:    2,
	PhaseBus:      3,
	PhaseFlash:    4,
	PhaseFault:    5,
	PhaseRecovery: 6,
}

// Summarize pairs span begin/end events and aggregates their
// durations per (device, phase, name), sorted by device, then phase
// in pipeline order, then name. Unclosed spans are ignored.
func Summarize(events []Event) []PhaseStat {
	type key struct{ dev, phase, name string }
	begins := make(map[SpanID]Event)
	groups := make(map[key][]time.Duration)
	for _, ev := range sortedEvents(events) {
		switch ev.Kind {
		case KindSpanBegin:
			begins[ev.Span] = ev
		case KindSpanEnd:
			b, ok := begins[ev.Span]
			if !ok {
				continue
			}
			delete(begins, ev.Span)
			k := key{b.Dev, b.Phase, b.Name}
			groups[k] = append(groups[k], ev.At-b.At)
		}
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.dev != b.dev {
			return a.dev < b.dev
		}
		ra, rb := phaseOrder(a.phase), phaseOrder(b.phase)
		if ra != rb {
			return ra < rb
		}
		if a.phase != b.phase {
			return a.phase < b.phase
		}
		return a.name < b.name
	})
	stats := make([]PhaseStat, 0, len(keys))
	for _, k := range keys {
		ds := groups[k]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		mean := total / time.Duration(len(ds))
		var acc float64
		for _, d := range ds {
			diff := float64(d) - float64(mean)
			acc += diff * diff
		}
		cv := 0.0
		if mean > 0 {
			cv = math.Sqrt(acc/float64(len(ds))) / float64(mean)
		}
		stats = append(stats, PhaseStat{
			Dev: k.dev, Phase: k.phase, Name: k.name,
			Count: len(ds), Total: total, Mean: mean,
			P50: percentile(ds, 50), P99: percentile(ds, 99),
			Max: ds[len(ds)-1], CV: cv,
		})
	}
	return stats
}

func phaseOrder(phase string) int {
	if r, ok := phaseRank[phase]; ok {
		return r
	}
	return len(phaseRank)
}

// percentile returns the exact p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FormatSummary renders the breakdown as an aligned table:
// one row per (device, phase, span name), pipeline order.
func FormatSummary(stats []PhaseStat) string {
	var b strings.Builder
	rows := [][]string{{"device", "phase", "span", "count", "total", "mean", "p50", "p99", "max", "cv"}}
	for _, s := range stats {
		rows = append(rows, []string{
			s.Dev, s.Phase, s.Name,
			fmt.Sprintf("%d", s.Count),
			fmtDur(s.Total), fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P99), fmtDur(s.Max),
			fmt.Sprintf("%.2f", s.CV),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtDur renders a duration in fixed units per magnitude so columns
// stay comparable (ns exact below 1 µs, else 3 significant decimals).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(time.Second))
	}
}
