package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// The exporters are deterministic by construction: events are written
// in (At, Seq) order, timestamps are virtual, string fields are
// escaped by encoding/json, and no map is iterated without sorting.
// Two runs of the same seeded simulation therefore produce
// byte-identical files — the property the CI replay-diff step checks.

// jsonEvent is the JSONL wire form of an Event, with a fixed field
// order and the kind spelled out.
type jsonEvent struct {
	At     int64  `json:"at"`
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	Dev    string `json:"dev"`
	Name   string `json:"name"`
	Phase  string `json:"phase"`
	Value  int64  `json:"value"`
}

// sortedEvents returns the events ordered by (At, Seq). Emission
// order already satisfies this (virtual time is nondecreasing within
// one environment), but a collector shared across sequential
// environments restarts the clock, so the exporters re-sort to keep
// the output canonical.
func sortedEvents(events []Event) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteJSONL writes one event per line in canonical (At, Seq) order.
func (c *Collector) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, c.Events())
}

// WriteJSONL writes events as JSON lines in canonical (At, Seq) order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range sortedEvents(events) {
		je := jsonEvent{
			At: int64(ev.At), Seq: ev.Seq, Kind: ev.Kind.String(),
			Span: uint64(ev.Span), Parent: uint64(ev.Parent),
			Dev: ev.Dev, Name: ev.Name, Phase: ev.Phase, Value: ev.Value,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		kind, ok := KindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, je.Kind)
		}
		events = append(events, Event{
			At: time.Duration(je.At), Seq: je.Seq, Kind: kind,
			Span: SpanID(je.Span), Parent: SpanID(je.Parent),
			Dev: je.Dev, Name: je.Name, Phase: je.Phase, Value: je.Value,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Hash returns the hex SHA-256 of the canonical JSONL encoding — the
// replay-identity fingerprint of a run.
func (c *Collector) Hash() string { return Hash(c.Events()) }

// Hash fingerprints an event stream via its canonical JSONL encoding.
func Hash(events []Event) string {
	h := sha256.New()
	// sha256.Write never fails.
	_ = WriteJSONL(h, events)
	return hex.EncodeToString(h.Sum(nil))
}

// micros renders a virtual timestamp as Chrome trace microseconds
// with fixed millinanosecond precision (no float formatting in the
// output path).
func micros(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteChrome writes the events in the Chrome trace-event JSON format
// (loadable in Perfetto or chrome://tracing). Spans become complete
// ("X") events on one track per root operation, counters become "C"
// events, and kernel events become instants. Each device label maps
// to its own process, named via metadata events.
func (c *Collector) WriteChrome(w io.Writer) error {
	return WriteChrome(w, c.Events())
}

// WriteChrome writes events in Chrome trace-event JSON format.
func WriteChrome(w io.Writer, events []Event) error {
	evs := sortedEvents(events)
	bw := bufio.NewWriter(w)

	// Device label -> pid, in first-appearance order (deterministic:
	// the scan below follows the canonical event order).
	pids := make(map[string]int)
	var devs []string
	pidOf := func(dev string) int {
		if p, ok := pids[dev]; ok {
			return p
		}
		p := len(devs) + 1
		pids[dev] = p
		devs = append(devs, dev)
		return p
	}
	for _, ev := range evs {
		pidOf(ev.Dev)
	}

	type openSpan struct {
		begin Event
		root  SpanID
	}
	open := make(map[SpanID]openSpan)
	rootOf := func(parent SpanID) SpanID {
		if os, ok := open[parent]; ok {
			return os.root
		}
		return 0
	}

	if _, err := fmt.Fprint(bw, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	item := func(format string, args ...any) error {
		if !first {
			if _, err := fmt.Fprint(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(bw, format, args...)
		return err
	}
	q := func(s string) string {
		b, _ := json.Marshal(s) // marshaling a string never fails
		return string(b)
	}

	for i, dev := range devs {
		name := dev
		if name == "" {
			name = "sim"
		}
		if err := item(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			i+1, q(name)); err != nil {
			return err
		}
	}
	for _, ev := range evs {
		pid := pidOf(ev.Dev)
		switch ev.Kind {
		case KindSpanBegin:
			root := rootOf(ev.Parent)
			if root == 0 {
				root = ev.Span
			}
			open[ev.Span] = openSpan{begin: ev, root: root}
		case KindSpanEnd:
			os, ok := open[ev.Span]
			if !ok {
				continue // unmatched end: tolerate truncated inputs
			}
			delete(open, ev.Span)
			b := os.begin
			if err := item(`{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"span":%d,"parent":%d}}`,
				q(b.Name), q(b.Phase), micros(b.At), micros(ev.At-b.At),
				pidOf(b.Dev), uint64(os.root), uint64(b.Span), uint64(b.Parent)); err != nil {
				return err
			}
		case KindCounter:
			if err := item(`{"name":%s,"ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"value":%d}}`,
				q(ev.Name), micros(ev.At), pid, ev.Value); err != nil {
				return err
			}
		default:
			if err := item(`{"name":%s,"cat":"kernel","ph":"i","s":"t","ts":%s,"pid":%d,"tid":0,"args":{"kind":%s,"value":%d}}`,
				q(ev.Name), micros(ev.At), pid, q(ev.Kind.String()), ev.Value); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprint(bw, "\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
