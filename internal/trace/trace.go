// Package trace is the deterministic virtual-time tracing subsystem.
//
// A Collector receives typed events from the simulation kernel
// (process spawn/park/resume, resource acquire/release, link
// transfers) and from instrumented device layers (spans decomposing
// one I/O into software, queueing, bus, and flash-array phases). All
// timestamps are virtual (sim.Env.Now offsets), so for a given seed a
// rerun produces a bit-identical event stream — the trace doubles as
// a replay-identity witness, the strongest determinism check in the
// tree (DESIGN.md §8).
//
// Because every event is emitted from scheduler-serialized simulation
// code, the Collector needs no locking: at most one process runs at a
// time, and the (time, seq) order of emissions is itself part of the
// determinism contract.
//
// All Collector methods are safe on a nil receiver (Begin returns the
// zero SpanID, End/Counter/Emit are no-ops), so instrumentation sites
// need no nil checks beyond what the hot path demands.
package trace

import "time"

// Kind classifies an event.
type Kind uint8

// Event kinds. Span and counter events are always recorded; the
// kernel-level kinds (proc/resource/transfer) are only emitted at
// LevelFull, since they multiply the event volume by the number of
// scheduler handoffs.
const (
	// KindSpanBegin/KindSpanEnd bracket a span: one phase of one
	// operation (see the Phase* constants).
	KindSpanBegin Kind = iota
	KindSpanEnd
	// KindProcSpawn marks a simulation process starting.
	KindProcSpawn
	// KindProcPark/KindProcResume mark a process blocking on and
	// returning from a wait (time, signal, resource, queue).
	KindProcPark
	KindProcResume
	// KindAcquire/KindRelease mark resource admission; Value carries
	// the instantaneous queue depth (waiters at acquire time).
	KindAcquire
	KindRelease
	// KindXferBegin/KindXferEnd bracket a link transfer; Value carries
	// the byte count.
	KindXferBegin
	KindXferEnd
	// KindCounter is a time-series sample; Value carries the sampled
	// quantity (queue depth, bytes moved, busy flag).
	KindCounter
)

var kindNames = [...]string{
	"span_begin", "span_end",
	"proc_spawn", "proc_park", "proc_resume",
	"acquire", "release",
	"xfer_begin", "xfer_end",
	"counter",
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Span phases: the latency decomposition of one I/O. These are the
// categories the per-stage breakdown table and the Chrome export
// group by.
const (
	// PhaseOp is a whole operation end-to-end (the root span).
	PhaseOp = "op"
	// PhaseSoftware is host software-stack time (submit/complete).
	PhaseSoftware = "software"
	// PhaseQueue is time waiting for admission: the channel engine,
	// a full DRAM buffer, or a GC-starved free pool.
	PhaseQueue = "queue"
	// PhaseBus is channel-bus and host-interface transfer time.
	PhaseBus = "bus"
	// PhaseFlash is NAND array time (read, program, erase).
	PhaseFlash = "flash"
	// PhaseFault is degraded-mode time: injected failures, retry
	// backoffs, quarantine windows, hedged-read waits. Spans in this
	// phase let Summarize and the Perfetto export show where an
	// availability run lost time to faults rather than to the normal
	// pipeline.
	PhaseFault = "fault"
	// PhaseRecovery is mount-time recovery work after a power loss:
	// channel OOB scans, block-map rebuilds, and CCDB journal replay.
	// It is kept distinct from PhaseFault so the breakdown separates
	// the cost of coming back from the cost of being degraded.
	PhaseRecovery = "recovery"
	// PhaseCoord is co-scheduling time (DESIGN.md §16): granted erase
	// windows, forced-erase hatches, and admission-control delays. A
	// separate phase so the breakdown can tell time spent coordinating
	// from time lost to faults.
	PhaseCoord = "coord"
)

// SpanID identifies a span; 0 means "no span" (used as the parent of
// root spans).
type SpanID uint64

// Event is one trace record. At is virtual time; Seq is the global
// emission sequence (the tiebreak for equal timestamps, mirroring the
// scheduler's own ordering).
type Event struct {
	At     time.Duration
	Seq    uint64
	Kind   Kind
	Span   SpanID
	Parent SpanID
	Dev    string // device label ("sdf", "gen3-8M", ...)
	Name   string // span/process/resource/counter name
	Phase  string // span phase (Phase* constants)
	Value  int64  // bytes, queue depth, or counter sample
}

// Level selects how much the kernel emits.
type Level uint8

const (
	// LevelSpans records spans and counters only (the default).
	LevelSpans Level = iota
	// LevelFull additionally records kernel events: process
	// spawn/park/resume, resource acquire/release, link transfers.
	LevelFull
)

// Chunk sizing for the collector's event storage. Growth is geometric
// from minChunk up to maxChunk, then linear: large traces (the figure 8
// smoke run records 1.3M events) append into fixed 64Ki-event chunks
// instead of repeatedly reallocating and copying one giant slice, so
// steady-state emission cost is one bounded allocation per chunk and
// no event is ever copied more than once (at flatten time).
const (
	minChunk = 1 << 10
	maxChunk = 1 << 16
)

// Collector accumulates events in emission order. Storage is a list of
// append-only chunks; Events flattens on demand and caches the result
// until the next emission.
type Collector struct {
	full     [][]Event // sealed chunks, each len == cap
	cur      []Event   // active chunk
	flat     []Event   // cached flatten; nil when stale
	n        int       // total events emitted
	nextSpan SpanID
	seq      uint64
	dev      string
	level    Level
}

// NewCollector returns an empty collector at LevelSpans.
func NewCollector() *Collector { return &Collector{} }

// SetLevel selects the event detail level.
func (c *Collector) SetLevel(l Level) {
	if c != nil {
		c.level = l
	}
}

// Full reports whether kernel-level events should be emitted. It is
// false on a nil collector, so the kernel's hot paths can guard with
// a single call.
func (c *Collector) Full() bool { return c != nil && c.level == LevelFull }

// SetDev sets the device label stamped on subsequently emitted
// events. Experiments set it before building each simulated device so
// the breakdown table can attribute phases per device.
func (c *Collector) SetDev(dev string) {
	if c != nil {
		c.dev = dev
	}
}

// Emit appends one event, stamping the sequence number and current
// device label. No-op on a nil collector.
func (c *Collector) Emit(at time.Duration, kind Kind, span, parent SpanID, name, phase string, value int64) {
	if c == nil {
		return
	}
	c.seq++
	if len(c.cur) == cap(c.cur) {
		if c.cur != nil {
			c.full = append(c.full, c.cur)
		}
		next := minChunk
		if n := cap(c.cur) * 2; n > next {
			next = n
		}
		if next > maxChunk {
			next = maxChunk
		}
		c.cur = make([]Event, 0, next)
	}
	c.cur = append(c.cur, Event{
		At: at, Seq: c.seq, Kind: kind,
		Span: span, Parent: parent,
		Dev: c.dev, Name: name, Phase: phase, Value: value,
	})
	c.n++
	c.flat = nil
}

// Begin opens a span under parent (0 for a root span) and returns its
// ID. On a nil collector it returns 0, which End ignores.
func (c *Collector) Begin(at time.Duration, parent SpanID, name, phase string) SpanID {
	if c == nil {
		return 0
	}
	c.nextSpan++
	id := c.nextSpan
	c.Emit(at, KindSpanBegin, id, parent, name, phase, 0)
	return id
}

// End closes a span opened by Begin. No-op for id 0 or a nil
// collector.
func (c *Collector) End(at time.Duration, id SpanID) {
	if c == nil || id == 0 {
		return
	}
	c.Emit(at, KindSpanEnd, id, 0, "", "", 0)
}

// Counter records one time-series sample. No-op on a nil collector.
func (c *Collector) Counter(at time.Duration, name string, value int64) {
	c.Emit(at, KindCounter, 0, 0, name, "", value)
}

// Events returns the recorded events in emission order. The slice is
// owned by the collector; callers must not mutate it. While all events
// still fit in one chunk the return is a zero-copy view; otherwise the
// chunks are flattened once and the result cached until the next Emit.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	if len(c.full) == 0 {
		return c.cur
	}
	if c.flat == nil {
		flat := make([]Event, 0, c.n)
		for _, ch := range c.full {
			flat = append(flat, ch...)
		}
		c.flat = append(flat, c.cur...)
	}
	return c.flat
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return c.n
}
