package experiments

import (
	"strings"
	"sync"
	"testing"

	"sdf/internal/metrics"
)

// obsResult fetches the observability payload or fails the test.
func obsResult(t *testing.T, tab Table) *Observability {
	t.Helper()
	if tab.Observability == nil {
		t.Fatal("Faults with Options.Metrics produced no observability payload")
	}
	return tab.Observability
}

// TestFaultsObservabilityDeterministic runs the availability experiment
// twice with the metrics pipeline on and requires byte-identical
// exports: the Prometheus snapshot hash, the series JSONL hash, and
// the SLO report must all match across seeded reruns. This is the
// exporter half of the determinism contract (make metrics-smoke runs
// the same check through sdfbench).
func TestFaultsObservabilityDeterministic(t *testing.T) {
	opts := Options{Quick: true, Metrics: true}
	a := obsResult(t, Faults(opts))
	b := obsResult(t, Faults(opts))
	if a.SnapshotSHA256 != b.SnapshotSHA256 {
		t.Errorf("snapshot hash changed across reruns: %s vs %s", a.SnapshotSHA256, b.SnapshotSHA256)
	}
	if a.SeriesSHA256 != b.SeriesSHA256 {
		t.Errorf("series hash changed across reruns: %s vs %s", a.SeriesSHA256, b.SeriesSHA256)
	}
	if string(a.Snapshot) != string(b.Snapshot) {
		t.Error("prometheus snapshots differ byte-for-byte across reruns")
	}
	if string(a.Series) != string(b.Series) {
		t.Error("series JSONL differs byte-for-byte across reruns")
	}
	if len(a.SLO) == 0 || len(a.SLO) != len(b.SLO) {
		t.Fatalf("SLO report lengths: %d vs %d", len(a.SLO), len(b.SLO))
	}
	for i := range a.SLO {
		if a.SLO[i] != b.SLO[i] {
			t.Errorf("SLO result %d changed across reruns:\n  %v\n  %v", i, a.SLO[i], b.SLO[i])
		}
	}
	if a.Alerts != b.Alerts {
		t.Errorf("alert counts differ: %d vs %d", a.Alerts, b.Alerts)
	}

	// The exports must not be trivially empty.
	if !strings.Contains(string(a.Snapshot), "cluster_gets_total") {
		t.Error("snapshot is missing cluster_gets_total")
	}
	if !strings.Contains(string(a.Series), "cluster_read_latency_seconds") {
		t.Error("series JSONL is missing the read-latency histogram")
	}
}

// TestFaultsSLOSeparation checks the headline observability result:
// under the standard chaos plan the SDF cluster meets the 1ms p99
// read-latency objective while the parity Gen3 cluster violates it,
// and neither loses a read.
func TestFaultsSLOSeparation(t *testing.T) {
	obs := obsResult(t, Faults(Options{Quick: true, Metrics: true}))
	byName := make(map[string]metrics.ObjectiveResult, len(obs.SLO))
	for _, r := range obs.SLO {
		byName[r.Name] = r
	}
	need := []string{"sdf/read_p99", "gen3/read_p99", "sdf/no_lost_reads", "gen3/no_lost_reads", "sdf/availability", "gen3/availability"}
	for _, n := range need {
		if _, ok := byName[n]; !ok {
			t.Fatalf("SLO report is missing objective %q (have %d results)", n, len(obs.SLO))
		}
	}
	if r := byName["sdf/read_p99"]; !r.Met {
		t.Errorf("SDF violated the p99 read-latency SLO: %+v", r)
	}
	if r := byName["gen3/read_p99"]; r.Met {
		t.Errorf("Gen3 unexpectedly met the p99 read-latency SLO: %+v", r)
	}
	for _, dev := range []string{"sdf", "gen3"} {
		if r := byName[dev+"/no_lost_reads"]; !r.Met || r.Violations != 0 {
			t.Errorf("%s lost reads under the chaos plan: %+v", dev, r)
		}
	}
	if r := byName["sdf/availability"]; !r.Met {
		t.Errorf("SDF availability objective missed: %+v", r)
	}
}

// TestFaultsObservabilityUnderParallelRunner runs the metrics-enabled
// availability experiment on a worker pool next to unrelated load and
// requires the export hashes to match a solo sequential run: the
// observability pipeline must not notice host-side concurrency.
func TestFaultsObservabilityUnderParallelRunner(t *testing.T) {
	var mu sync.Mutex
	var snaps, series []string
	entry := Entry{Name: "faults", Run: func(o Options) Table {
		o.Metrics = true
		tab := Faults(o)
		obs := obsResult(t, tab)
		mu.Lock()
		snaps = append(snaps, obs.SnapshotSHA256)
		series = append(series, obs.SeriesSHA256)
		mu.Unlock()
		return tab
	}}
	others := subsetEntries(t)[:3]
	opts := Options{Quick: true}
	RunAll([]Entry{entry}, opts, 1)
	RunAll(append([]Entry{entry}, others...), opts, 4)
	if len(snaps) != 2 {
		t.Fatalf("expected 2 metered runs, got %d", len(snaps))
	}
	if snaps[0] != snaps[1] {
		t.Errorf("snapshot hash changed under the parallel runner: %s vs %s", snaps[0], snaps[1])
	}
	if series[0] != series[1] {
		t.Errorf("series hash changed under the parallel runner: %s vs %s", series[0], series[1])
	}
}
