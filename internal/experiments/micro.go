package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// sdfThroughput measures SDF throughput with one synchronous worker
// per channel (the paper's 44-thread microbenchmark, §3.2): random
// reads of reqSize, or 8 MB erase+writes when reqSize == 0.
func sdfThroughput(opts Options, reqSize int) float64 {
	env := opts.newEnv()
	dev := newSDF(env, 32)
	warmup := opts.scale(500 * time.Millisecond)
	deadline := opts.scale(2 * time.Second)
	if reqSize >= dev.BlockSize() || reqSize == 0 {
		deadline = opts.scale(4 * time.Second)
	}
	m := newMeterCtx(env, warmup, deadline)
	rng := rand.New(rand.NewSource(7))
	for ch := 0; ch < dev.Channels(); ch++ {
		ch := ch
		lbn := 0
		wrote := false
		m.loop("worker", func(p *sim.Proc) int {
			if reqSize == 0 { // write benchmark
				if err := dev.EraseWrite(p, ch, lbn, nil); err != nil {
					return -1
				}
				lbn = (lbn + 1) % dev.BlocksPerChannel()
				return dev.BlockSize()
			}
			if !wrote {
				if err := dev.EraseWrite(p, ch, 0, nil); err != nil {
					return -1
				}
				wrote = true
				return 0
			}
			span := dev.BlockSize() - reqSize
			off := 0
			if span > 0 {
				off = rng.Intn(span/dev.PageSize()+1) * dev.PageSize()
			}
			if _, err := dev.Read(p, ch, 0, off, reqSize); err != nil {
				return -1
			}
			return reqSize
		})
	}
	rate := m.rate()
	env.Close()
	return rate
}

// ssdThroughput measures a conventional SSD with k concurrent workers
// (standing in for one deep-queue AIO thread): random reads of
// reqSize, or 8 MB writes when reqSize == 0.
func ssdThroughput(opts Options, prof ssd.Profile, reqSize, k int) float64 {
	env := opts.newEnv()
	dev := newSSD(env, prof)
	write := reqSize == 0
	if write {
		reqSize = 8 << 20
	} else if err := dev.WarmFill(0.9); err != nil {
		panic(err)
	}
	warmup := opts.scale(500 * time.Millisecond)
	deadline := opts.scale(2 * time.Second)
	if reqSize >= 8<<20 {
		deadline = opts.scale(4 * time.Second)
	}
	m := newMeterCtx(env, warmup, deadline)
	rng := rand.New(rand.NewSource(9))
	page := int64(dev.PageSize())
	slots := dev.Capacity()*9/10/int64(reqSize) - 1
	if slots < 1 {
		slots = 1
	}
	for w := 0; w < k; w++ {
		m.loop("worker", func(p *sim.Proc) int {
			off := rng.Int63n(slots) * int64(reqSize) / page * page
			var err error
			if write {
				err = dev.Write(p, off, int64(reqSize))
			} else {
				err = dev.Read(p, off, int64(reqSize))
			}
			if err != nil {
				return -1
			}
			return reqSize
		})
	}
	rate := m.rate()
	env.Close()
	return rate
}

// Table4 regenerates Table 4: device throughput for random reads of
// 8 KB / 16 KB / 64 KB / 8 MB and 8 MB writes, on SDF (44 synchronous
// threads), the Huawei Gen3, and the Intel 320.
func Table4(opts Options) Table {
	t := Table{
		ID:     "Table 4",
		Title:  "Device throughput by request size (GB/s)",
		Header: []string{"Device", "8K read", "16K read", "64K read", "8M read", "8M write"},
	}
	sizes := []int{8 << 10, 16 << 10, 64 << 10, 8 << 20, 0}
	labels := []string{"read_8k", "read_16k", "read_64k", "read_8m", "write_8m"}

	var sdfRow []string
	sdfRow = append(sdfRow, "Baidu SDF")
	for i, sz := range sizes {
		r := sdfThroughput(opts, sz)
		t.metric("sdf."+labels[i]+".bps", r)
		sdfRow = append(sdfRow, gb(r))
	}
	t.Rows = append(t.Rows, sdfRow)
	t.Rows = append(t.Rows, []string{"  (paper)", "1.23 GB/s", "1.42 GB/s", "1.51 GB/s", "1.59 GB/s", "0.96 GB/s"})

	gen3 := ssd.HuaweiGen3(0.25).ScaleBlocks(16)
	gen3.BufferBytes = 64 << 20
	row := []string{"Huawei Gen3"}
	for i, sz := range sizes {
		r := ssdThroughput(opts, gen3, sz, 32)
		t.metric("gen3."+labels[i]+".bps", r)
		row = append(row, gb(r))
	}
	t.Rows = append(t.Rows, row)
	t.Rows = append(t.Rows, []string{"  (paper)", "0.92 GB/s", "1.02 GB/s", "1.15 GB/s", "1.20 GB/s", "0.67 GB/s"})

	intel := ssd.Intel320(0.125).ScaleBlocks(24)
	row = []string{"Intel 320"}
	for i, sz := range sizes {
		r := ssdThroughput(opts, intel, sz, 16)
		t.metric("intel320."+labels[i]+".bps", r)
		row = append(row, gb(r))
	}
	t.Rows = append(t.Rows, row)
	t.Rows = append(t.Rows, []string{"  (paper)", "0.17 GB/s", "0.20 GB/s", "0.22 GB/s", "0.22 GB/s", "0.13 GB/s"})
	return t
}

// Figure7 regenerates Figure 7: SDF sequential 8 MB read and write
// throughput as the number of active channels grows — near-linear
// until the PCIe ceiling (reads) or the flash program limit (writes).
func Figure7(opts Options) Table {
	t := Table{
		ID:     "Figure 7",
		Title:  "SDF throughput vs active channel count (8 MB sequential)",
		Header: []string{"Channels", "Read", "Write"},
		Notes:  []string{"paper: linear scaling to ~1.55 GB/s read / ~0.96 GB/s write at 44 channels"},
	}
	for _, n := range []int{4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44} {
		read := figure7Point(opts, n, false)
		write := figure7Point(opts, n, true)
		t.metric(fmt.Sprintf("read.%dch.bps", n), read)
		t.metric(fmt.Sprintf("write.%dch.bps", n), write)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), gb(read), gb(write)})
	}
	return t
}

func figure7Point(opts Options, channels int, write bool) float64 {
	env := opts.newEnv()
	dev := newSDF(env, 16)
	warmup := opts.scale(500 * time.Millisecond)
	deadline := opts.scale(3 * time.Second)
	m := newMeterCtx(env, warmup, deadline)
	for ch := 0; ch < channels; ch++ {
		ch := ch
		lbn := 0
		wrote := false
		m.loop("worker", func(p *sim.Proc) int {
			if write {
				if err := dev.EraseWrite(p, ch, lbn, nil); err != nil {
					return -1
				}
				lbn = (lbn + 1) % dev.BlocksPerChannel()
				return dev.BlockSize()
			}
			if !wrote {
				if err := dev.EraseWrite(p, ch, 0, nil); err != nil {
					return -1
				}
				wrote = true
				return 0
			}
			if _, err := dev.Read(p, ch, 0, 0, dev.BlockSize()); err != nil {
				return -1
			}
			return dev.BlockSize()
		})
	}
	rate := m.rate()
	env.Close()
	return rate
}

// Figure8 regenerates Figure 8: write-latency traces on nearly full
// devices. The Gen3 swings between DRAM-buffer hits and GC-throttled
// stalls; SDF pays the erase up front on every write and is flat.
func Figure8(opts Options) Table {
	t := Table{
		ID:     "Figure 8",
		Title:  "Write latency traces on nearly-full devices",
		Header: []string{"Series", "N", "Min", "Mean", "Max", "CV"},
		Notes: []string{
			"paper: Gen3 8 MB spans 7-650 ms (mean 73 ms); Gen3 352 MB mean 2.94 s (CV 0.25); SDF ~383 ms, flat",
			"the Gen3 device and buffer are scaled down ~50x; the contrast in variability is the result under test",
		},
	}
	n := 120
	if opts.Quick {
		n = 60
	}

	gen3 := func(devLabel string, reqBytes int64, count int) metrics.Series {
		prof := ssd.HuaweiGen3(0.10).ScaleBlocks(16)
		prof.BufferBytes = 64 << 20
		env := opts.newEnv()
		opts.Tracer.SetDev(devLabel)
		env.SetTracer(opts.Tracer)
		dev := newSSD(env, prof)
		if err := dev.WarmFillRandom(1.0, 6); err != nil {
			panic(err)
		}
		var series metrics.Series
		rng := rand.New(rand.NewSource(4))
		slots := dev.Capacity() / reqBytes
		w := env.Go("writer", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				off := rng.Int63n(slots) * reqBytes
				start := env.Now()
				if err := dev.Write(p, off, reqBytes); err != nil {
					return
				}
				series.Observe(env.Now() - start)
			}
		})
		env.RunUntilDone(w)
		env.Close()
		return series
	}

	sdfSeries := func(count int) metrics.Series {
		env := opts.newEnv()
		opts.Tracer.SetDev("sdf")
		env.SetTracer(opts.Tracer)
		dev := newSDF(env, 16)
		// Sample per-channel queue depth and utilization through the
		// measured run (it self-terminates, so the event loop drains).
		dev.StartSampler(20*time.Millisecond, 2*time.Second)
		var series metrics.Series
		perCh := (count + dev.Channels() - 1) / dev.Channels()
		var writers []*sim.Proc
		for ch := 0; ch < dev.Channels(); ch++ {
			ch := ch
			w := env.Go("writer", func(p *sim.Proc) {
				for i := 0; i < perCh; i++ {
					start := env.Now()
					if err := dev.EraseWrite(p, ch, i%dev.BlocksPerChannel(), nil); err != nil {
						return
					}
					series.Observe(env.Now() - start)
				}
			})
			writers = append(writers, w)
		}
		waiter := env.Go("wait", func(p *sim.Proc) {
			for _, w := range writers {
				p.Join(w)
			}
		})
		env.RunUntilDone(waiter)
		env.Close()
		return series
	}

	addRow := func(name, key string, s metrics.Series) {
		t.metric(key+".n", float64(s.Len()))
		t.metric(key+".min_ms", float64(s.Min())/1e6)
		t.metric(key+".mean_ms", float64(s.Mean())/1e6)
		t.metric(key+".max_ms", float64(s.Max())/1e6)
		t.metric(key+".p99_ms", float64(s.Percentile(99))/1e6)
		t.metric(key+".cv", s.CoeffVar())
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", s.Len()),
			fmt.Sprintf("%.1f ms", float64(s.Min())/1e6),
			fmt.Sprintf("%.1f ms", float64(s.Mean())/1e6),
			fmt.Sprintf("%.1f ms", float64(s.Max())/1e6),
			fmt.Sprintf("%.2f", s.CoeffVar()),
		})
	}
	addRow("Huawei Gen3, 8 MB writes", "gen3_8m", gen3("gen3-8M", 8<<20, n))
	addRow("Huawei Gen3, 352 MB writes", "gen3_352m", gen3("gen3-352M", 352<<20, n/4))
	addRow("Baidu SDF, 8 MB erase+write", "sdf_8m", sdfSeries(n))
	return t
}
