package experiments

import (
	"strings"
	"testing"
)

// quick runs every experiment in quick mode; these are smoke tests
// that the full bench harness exercises at production durations.
var quick = Options{Quick: true}

func checkTable(t *testing.T, tab Table, wantRows int) {
	t.Helper()
	if len(tab.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want >= %d", tab.ID, len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("%s: row %v has %d cells, header has %d", tab.ID, row, len(row), len(tab.Header))
		}
	}
	if !strings.Contains(tab.String(), tab.ID) {
		t.Fatalf("%s: String() missing ID", tab.ID)
	}
}

func TestSoftwareStackTable(t *testing.T) {
	checkTable(t, SoftwareStack(quick), 2)
}

func TestEraseThroughputTable(t *testing.T) {
	tab := EraseThroughput(quick)
	checkTable(t, tab, 1)
	// The measured value must be tens of GB/s.
	if !strings.Contains(tab.Rows[0][1], "GB/s") {
		t.Fatalf("unexpected cell: %q", tab.Rows[0][1])
	}
}

func TestRecoveryTable(t *testing.T) {
	tab := Recovery(quick)
	checkTable(t, tab, len(recoveryFills))
	// Every fill level must have ridden over real crash damage and
	// recovered its seeded blocks.
	for i, row := range tab.Rows {
		if row[3] == "0" {
			t.Errorf("fill %s: no torn blocks — the mid-write cut missed", row[0])
		}
		if row[2] == "0" {
			t.Errorf("fill %s: nothing recovered", row[0])
		}
		if i > 0 && tab.Metrics[msKey(tab.Rows[i][0])] <= tab.Metrics[msKey(tab.Rows[i-1][0])] {
			t.Errorf("recovery time did not grow from fill %s to %s", tab.Rows[i-1][0], tab.Rows[i][0])
		}
	}
	// The checkpointed axis must beat the full scan at every fill, and
	// its probe count must stay roughly flat across the sweep — the
	// bound the checkpoint exists to provide.
	for _, row := range tab.Rows {
		fill := row[0][:len(row[0])-1]
		full := tab.Metrics["recovery_probed_pages_f"+fill]
		cp := tab.Metrics["recovery_cp_probed_pages_f"+fill]
		if cp <= 0 || full <= 0 || cp >= full {
			t.Errorf("fill %s%%: checkpointed scan probed %.0f pages, full scan %.0f; want fewer", fill, cp, full)
		}
	}
	first, last := tab.Rows[0][0], tab.Rows[len(tab.Rows)-1][0]
	cpLo := tab.Metrics["recovery_cp_probed_pages_f"+first[:len(first)-1]]
	cpHi := tab.Metrics["recovery_cp_probed_pages_f"+last[:len(last)-1]]
	if cpHi > 2*cpLo {
		t.Errorf("checkpointed probes grew %.0f -> %.0f across the fill sweep; want roughly flat", cpLo, cpHi)
	}
	// The journal bound: the mid-stream flush truncated the log, so
	// replay covers only the post-truncation tail of acked puts.
	if tab.Metrics["recovery_journal_truncated_puts"] == 0 {
		t.Error("journal never truncated")
	}
	acked := tab.Metrics["recovery_journal_puts_acked"]
	replayed := tab.Metrics["recovery_journal_replayed"]
	if replayed == 0 || replayed >= acked {
		t.Errorf("journal replayed %.0f of %.0f acked puts; want a bounded, non-empty tail", replayed, acked)
	}
}

// msKey maps a "NN%" fill cell to its recovery_ms metric key.
func msKey(fill string) string {
	return "recovery_ms_f" + fill[:len(fill)-1]
}
