package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/cluster"
	"sdf/internal/coord"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/metrics"
	"sdf/internal/rpcnet"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// DefaultCoDesignPlan is the chaos schedule the co-design experiment's
// availability stage runs: a firmware-style channel stall on the read
// primary, a packet-loss brown-out on the client network, and an
// overlapping power cut + node crash that leaves the slice on a single
// live replica — the graceful-degradation regime where admission
// control must go best-effort rather than shed the writes durability
// depends on.
func DefaultCoDesignPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 5,
		Injections: []fault.Injection{
			{At: 250 * time.Millisecond, Kind: fault.ChannelHang, Target: "r1/chan0", Duration: 60 * time.Millisecond},
			{At: 500 * time.Millisecond, Kind: fault.PacketLoss, Target: "net", Rate: 0.25, Duration: 200 * time.Millisecond},
			{At: 850 * time.Millisecond, Kind: fault.Powerloss, Target: "r2", Duration: 350 * time.Millisecond},
			{At: 950 * time.Millisecond, Kind: fault.NodeCrash, Target: "r3", Duration: 200 * time.Millisecond},
		},
	}
}

// Co-design run geometry and workload. The horizon is not scaled by
// Quick (the chaos plan's instants are absolute); Quick shrinks the
// dataset and the client count instead.
const (
	codesignHorizon      = 1500 * time.Millisecond
	codesignChaosHorizon = 2 * time.Second
	codesignWindow       = 100 * time.Millisecond
)

// codesignP99SLO is this experiment's read-tail objective: 5 ms,
// not the light-load 1 ms of metrics-smoke, because the mixed
// workload's correlated compaction program bursts (1.4 ms a page,
// replicated in lockstep) put a floor under SDF's p99 that no erase
// coordination can remove. 5 ms sits above that floor and below the
// uncoordinated erase-collision tail, so the objective separates the
// two modes: coordination keeps the budget, its absence burns it.
const codesignP99SLO = 0.005

// codesignObjectives declares the SLOs one co-design run is judged
// against; the read-p99 objective doubles as the admission controller's
// burn signal.
func codesignObjectives(devName string) []metrics.Objective {
	sid := func(name string) string { return fmt.Sprintf("%s{dev=%q}", name, devName) }
	return []metrics.Objective{
		{Name: devName + "/read_p99", Kind: metrics.QuantileBelow,
			Metric: sid("cluster_read_latency_seconds"), Q: 0.99,
			Threshold: codesignP99SLO, Budget: 0.1},
		{Name: devName + "/no_lost_reads", Kind: metrics.AlwaysZero,
			Metric: sid("cluster_lost_reads_total")},
	}
}

// codesignResult is one cluster's measured ride through the mixed
// read/write workload.
type codesignResult struct {
	p99, p999    time.Duration
	reads        int64   // completed end-to-end reads
	floor        float64 // worst delivered window, bytes/s
	rpcDeadlines int64
	stats        cluster.Stats
	coord        coord.Stats
	wlMigrations int64
	slo          []metrics.ObjectiveResult
	alerts       int

	reg     *metrics.Registry
	sampler *metrics.Sampler
}

// burnOf extracts one objective's final burn from a report.
func burnOf(rep []metrics.ObjectiveResult, name string) float64 {
	for _, o := range rep {
		if o.Name == name {
			return o.Burn
		}
	}
	return 0
}

// codesignRun drives one 3-replica cluster through the mixed workload:
// open-loop paced readers carry per-read deadlines through the RPC
// layer while a hot-keyset writer keeps compaction — and therefore
// erase pressure — alive. With coordinate set, the replicas share an erase-
// window coordinator (block-layer erases gated, reads routed around
// the replica inside its window) and writes pass SLO admission
// control.
func codesignRun(opts Options, kind deviceKind, coordinate bool, pl *fault.Plan, horizon time.Duration) codesignResult {
	env := opts.newEnv()
	devName := map[deviceKind]string{devSDF: "sdf", devGen3: "gen3"}[kind]
	if kind == devSDF {
		if coordinate {
			devName = "sdf-coord"
		} else {
			devName = "sdf-nocoord"
		}
	}
	if opts.Tracer != nil {
		opts.Tracer.SetDev("codesign/" + devName)
		env.SetTracer(opts.Tracer)
	}
	inj := fault.NewInjector(env)
	// The registry and SLO engine run unconditionally: the admission
	// controller feeds on the SLO's error-budget burn, so observability
	// here is part of the control loop, not just the export pipeline.
	reg := metrics.NewRegistry()
	devLabel := metrics.L("dev", devName)

	var co *coord.Coordinator
	var adm *coord.Admission
	var slo *metrics.SLO
	if coordinate {
		// With three replicas contending continuously, a full window
		// rotation (two peer windows plus drain) runs ~30-40 ms; MaxWait
		// must sit above that so the forced hatch stays an emergency
		// exit, not the steady state.
		co = coord.New(env, coord.Config{
			Window:          5 * time.Millisecond,
			MaxWait:         60 * time.Millisecond,
			ForceFreeBlocks: 1,
		})
		co.RegisterMetrics(reg, devLabel)
		// The writer offers ~33 writes/s; a 40/s bucket admits all of it
		// while the read SLO holds, but burn-scaled throttling (rate/burn,
		// floored at 4/s) bites visibly once the chaos plan sets the
		// error budget on fire.
		adm = coord.NewAdmission(env, coord.DefaultAdmissionConfig(40), func() float64 {
			if slo == nil {
				return 0
			}
			return slo.Burn(devName + "/read_p99")
		})
		adm.RegisterMetrics(reg, devLabel)
	}

	names := []string{"r1", "r2", "r3"}
	var nodes []*cluster.Node
	var slices []*ccdb.Slice
	var layers []*blocklayer.Layer
	for _, name := range names {
		var slice *ccdb.Slice
		var member *coord.Member
		var powerFail func()
		var powerRemount func(p *sim.Proc) (*ccdb.Slice, error)
		switch kind {
		case devSDF:
			// A narrower device than the availability run: 12 channels
			// and 4-page erase blocks. The channel engine is held for a
			// whole command — an erase occupies it ~6 ms (two planes a
			// chip, serial), a block program PagesPerBlock x 1.4 ms — so
			// small blocks keep the program hold (~5.6 ms) just under
			// the erase hold, and the read tail the coordinator can
			// remove (synchronized replica erases) is not drowned out
			// by the tail it cannot.
			cfg := core.DefaultConfig()
			cfg.Channels = 12
			cfg.Channel.Nand.BlocksPerPlane = 96
			cfg.Channel.Nand.PagesPerBlock = 4
			cfg.Channel.SparePerPlane = 2
			// Both SDF modes run the paper's §5 read-over-write
			// scheduling, so queued programs cost a read at most one
			// in-service page; the in-service 3 ms erase is then the
			// tail that only cross-replica coordination can dodge.
			cfg.Channel.PrioritizeReads = true
			dev, err := core.New(env, cfg)
			if err != nil {
				panic(err)
			}
			fault.AttachDevice(inj, name, dev)
			blCfg := blocklayer.DefaultConfig()
			// Static WL runs live here (the crash oracle exercises it
			// under power loss too); at this short horizon the wear
			// spread stays narrow, so the migration counter mostly
			// documents that the knob is on, not that media is aging.
			blCfg.StaticWL = true
			blCfg.WearSpreadThreshold = 4
			if co != nil {
				member = co.Register(name)
				blCfg.EraseGate = member
			}
			bl := blocklayer.New(env, dev, blCfg)
			layers = append(layers, bl)
			store := ccdb.NewSDFStore(bl)
			journal := ccdb.NewJournal()
			// Tight fan-in: two runs per tier keep compaction — and the
			// patch frees that feed the erase backlog — running for the
			// whole horizon.
			sliceCfg := ccdb.Config{PatchBytes: store.BlockSize(), RunsPerTier: 2, Journal: journal}
			slice = ccdb.NewSlice(env, store, sliceCfg)
			dev.RegisterMetrics(reg, devLabel, metrics.L("node", name))
			bl.RegisterMetrics(reg, devLabel, metrics.L("node", name))
			holder := dev
			devCfg := cfg
			remountCfg := blCfg
			powerFail = func() {
				holder.PowerLoss()
				journal.Halt()
			}
			powerRemount = func(p *sim.Proc) (*ccdb.Slice, error) {
				mounted, err := core.Mount(env, devCfg, holder.State())
				if err != nil {
					return nil, err
				}
				l, _, err := blocklayer.Mount(p, env, mounted, remountCfg)
				if err != nil {
					return nil, err
				}
				s, _, err := ccdb.MountSlice(p, env, ccdb.NewSDFStore(l), sliceCfg)
				if err != nil {
					return nil, err
				}
				holder = mounted
				return s, nil
			}
		case devGen3:
			prof := ssd.HuaweiGen3(0.25).ScaleBlocks(12)
			prof.BufferBytes = 8 << 20
			dev := newSSD(env, prof)
			if err := dev.WarmFillRandom(1.0, 7); err != nil {
				panic(err)
			}
			fault.AttachSSD(inj, name, dev)
			slice = ccdb.NewSlice(env, ccdb.NewSSDStore(dev, 1<<20), ccdb.Config{PatchBytes: 1 << 20, RunsPerTier: 4})
			dev.RegisterMetrics(reg, devLabel, metrics.L("node", name))
		}
		slice.RegisterMetrics(reg, devLabel, metrics.L("node", name))
		node := cluster.NewNode(env, name, slice)
		if powerFail != nil {
			node.SetPowerHooks(powerFail, powerRemount)
		}
		if member != nil {
			node.SetWindow(member)
		}
		nodes = append(nodes, node)
		slices = append(slices, slice)
	}
	ccfg := cluster.DefaultConfig()
	// Deadline-aware read routing: a 6 ms per-read deadline, hedged at
	// 2 ms — slow replicas burn the read's one budget, they do not
	// re-arm it per attempt.
	ccfg.HedgeAfter = 2 * time.Millisecond
	ccfg.ReadDeadline = 6 * time.Millisecond
	ccfg.Admission = adm
	group, err := cluster.NewGroup(env, ccfg, nodes...)
	if err != nil {
		panic(err)
	}
	fault.AttachGroup(inj, group)
	group.RegisterMetrics(reg, devLabel)
	inj.RegisterMetrics(reg, devLabel)

	// The client network: reads arrive as batched RPCs whose loss
	// recovery decrements the read's original deadline budget.
	netCfg := rpcnet.DefaultConfig()
	netCfg.RPCOverhead = 20 * time.Microsecond
	netCfg.SubRequestCPU = 10 * time.Microsecond
	netCfg.RequestTimeout = 5 * time.Millisecond
	netCfg.RetryBackoff = time.Millisecond
	netCfg.Seed = 42
	net := rpcnet.NewNetwork(env, netCfg)
	fault.AttachNetwork(inj, "net", net)
	net.RegisterMetrics(reg, devLabel)

	nKeys, nReaders := 768, 4
	if opts.Quick {
		nKeys, nReaders = 384, 2
	}
	const valueSize = 8 << 10
	keys := make([]string, nKeys)
	// The preload is a bulk load, not SLO-bound traffic: it bypasses
	// the admission bucket so the measured delay/shed counters start
	// from zero at t0.
	if adm != nil {
		adm.SetBestEffort(true)
	}
	boot := env.Go("preload", func(p *sim.Proc) {
		for i := range keys {
			keys[i] = fmt.Sprintf("obj%03d", i)
			if err := group.Put(p, keys[i], nil, valueSize); err != nil {
				panic(err)
			}
		}
		for _, s := range slices {
			if err := s.Flush(p); err != nil {
				panic(err)
			}
		}
	})
	env.RunUntilDone(boot)
	if adm != nil {
		adm.SetBestEffort(false)
	}

	t0 := env.Now()
	// Baselines: measured counters exclude the preload phase.
	preload := group.Stats()
	var coordBefore coord.Stats
	if co != nil {
		coordBefore = co.Stats()
	}
	var wlBefore int64
	for _, l := range layers {
		m, _ := l.WearLevelStats()
		wlBefore += m
	}
	if pl != nil {
		if err := inj.Arm(pl); err != nil {
			panic(err)
		}
	}
	var sampler *metrics.Sampler
	if opts.Metrics {
		sampler = metrics.NewSampler(env, reg, 10*time.Millisecond, 0)
	}
	slo = metrics.NewSLO(env, reg, codesignWindow, codesignObjectives(devName)...)
	slo.SetDeadline(t0 + horizon)

	nWindows := int(horizon / codesignWindow)
	windows := make([]float64, nWindows)
	var latencies []time.Duration
	var reads int64
	// Open-loop readers: each paces at a fixed arrival rate, so the
	// offered read load — and, as long as no mode saturates, the
	// delivered throughput — is identical across the three clusters.
	// The coordination delta then shows up purely in the latency tail.
	const readPeriod = time.Millisecond
	for r := 0; r < nReaders; r++ {
		rng := rand.New(rand.NewSource(int64(200 + r)))
		client := net.NewClient()
		env.Go("reader", func(p *sim.Proc) {
			for next := t0; next < t0+horizon; next += readPeriod {
				if now := env.Now(); now < next {
					p.Wait(next - now)
				}
				key := keys[rng.Intn(len(keys))]
				start := env.Now()
				size := 0
				_, err := client.DoBudget(p, 128, []rpcnet.SubRequest{func(wp *sim.Proc) int {
					_, n, err := group.Get(wp, key)
					if err != nil {
						return 0
					}
					size = n
					return n
				}}, 20*time.Millisecond)
				if err != nil || size == 0 {
					continue // deadline-exhausted RPC or lost read
				}
				reads++
				latencies = append(latencies, env.Now()-start)
				if w := int((start - t0) / codesignWindow); w < nWindows {
					windows[w] += float64(size)
				}
			}
		})
	}
	// The writer overwrites a hot keyset: every overwrite obsoletes a
	// previous version, so size-tiered compaction continually merges,
	// frees patches, and feeds the background erasers — the write-side
	// pressure co-scheduling exists to keep away from reads.
	const writeSize = 64 << 10
	wseq := 0
	env.Go("writer", func(p *sim.Proc) {
		for env.Now() < t0+horizon {
			key := fmt.Sprintf("hot%03d", wseq%48)
			wseq++
			// Shed and node-down errors are counted by the group; the
			// writer stream itself never stops.
			_ = group.Put(p, key, nil, writeSize)
			p.Wait(30 * time.Millisecond)
		}
	})

	env.RunUntil(t0 + horizon + time.Second)
	res := codesignResult{stats: group.Stats(), reads: reads, reg: reg, sampler: sampler}
	res.stats.Puts -= preload.Puts
	res.stats.Gets -= preload.Gets
	res.slo = slo.Report()
	res.alerts = len(slo.Alerts())
	if co != nil {
		res.coord = co.Stats()
		res.coord.Grants -= coordBefore.Grants
		res.coord.Deferrals -= coordBefore.Deferrals
		res.coord.Forced -= coordBefore.Forced
		res.coord.Timeouts -= coordBefore.Timeouts
	}
	for _, l := range layers {
		m, _ := l.WearLevelStats()
		res.wlMigrations += m
	}
	res.wlMigrations -= wlBefore
	_, _, res.rpcDeadlines = net.Stats()
	res.floor = -1
	for _, b := range windows {
		if rate := b / codesignWindow.Seconds(); res.floor < 0 || rate < res.floor {
			res.floor = rate
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.p99 = latencies[n*99/100]
		res.p999 = latencies[n*999/1000]
	}
	env.Close()
	return res
}

// CoDesign measures what the erase/write co-scheduler buys: the same
// mixed read/write workload runs against SDF with coordination on
// (erase windows + deadline routing + SLO admission control), SDF with
// coordination off, and the parity Gen3 baseline; then the coordinated
// cluster rides the chaos plan to show graceful degradation — down to
// one live replica, admission goes best-effort and no acknowledged
// data is lost.
func CoDesign(opts Options) Table {
	pl := opts.FaultPlan
	if pl == nil {
		pl = DefaultCoDesignPlan()
	}
	t := Table{
		ID:     "CoDesign",
		Title:  "Deadline-aware erase/write co-scheduling: read tail under mixed load",
		Header: []string{"Metric", "SDF coordinated", "SDF uncoordinated", "Gen3 parity"},
		Notes: []string{
			"coordination = per-slice erase windows (at most one replica erasing), reads routed around the window holder, writes behind SLO admission control",
			"identical workload and deadline config across the three clusters; the only delta is the coordinator",
			fmt.Sprintf("chaos stage: seed %d, %d injections over %v against the coordinated cluster — overlapping node-down windows force best-effort admission",
				pl.Seed, len(pl.Injections), codesignChaosHorizon),
		},
	}
	coordRes := codesignRun(opts, devSDF, true, nil, codesignHorizon)
	nocoord := codesignRun(opts, devSDF, false, nil, codesignHorizon)
	gen3 := codesignRun(opts, devGen3, false, nil, codesignHorizon)

	perSec := func(n int64) float64 { return float64(n) / codesignHorizon.Seconds() }
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	rows := []struct {
		label      string
		c, n, g    string
		key        string
		vc, vn, vg float64
	}{
		{"read p99", coordRes.p99.String(), nocoord.p99.String(), gen3.p99.String(),
			"p99_ms", ms(coordRes.p99), ms(nocoord.p99), ms(gen3.p99)},
		{"read p999", coordRes.p999.String(), nocoord.p999.String(), gen3.p999.String(),
			"p999_ms", ms(coordRes.p999), ms(nocoord.p999), ms(gen3.p999)},
		{"reads/s", fmt.Sprintf("%.0f", perSec(coordRes.reads)), fmt.Sprintf("%.0f", perSec(nocoord.reads)), fmt.Sprintf("%.0f", perSec(gen3.reads)),
			"reads_per_s", perSec(coordRes.reads), perSec(nocoord.reads), perSec(gen3.reads)},
		{"writes acked/s", fmt.Sprintf("%.0f", perSec(coordRes.stats.Puts)), fmt.Sprintf("%.0f", perSec(nocoord.stats.Puts)), fmt.Sprintf("%.0f", perSec(gen3.stats.Puts)),
			"writes_per_s", perSec(coordRes.stats.Puts), perSec(nocoord.stats.Puts), perSec(gen3.stats.Puts)},
		{"erase windows granted / deferred / forced",
			fmt.Sprintf("%d / %d / %d", coordRes.coord.Grants, coordRes.coord.Deferrals, coordRes.coord.Forced), "-", "-",
			"window_grants", float64(coordRes.coord.Grants), 0, 0},
		{"reads routed around erase windows", fmt.Sprintf("%d", coordRes.stats.WindowDeprioritizedReads), "-", "-",
			"window_deprioritized", float64(coordRes.stats.WindowDeprioritizedReads), 0, 0},
		{"writes delayed / shed by admission",
			fmt.Sprintf("%d / %d", coordRes.stats.DelayedWrites, coordRes.stats.ShedWrites), "-", "-",
			"delayed_writes", float64(coordRes.stats.DelayedWrites), 0, 0},
		{"static WL migrations", fmt.Sprintf("%d", coordRes.wlMigrations), fmt.Sprintf("%d", nocoord.wlMigrations), "-",
			"static_wl_migrations", float64(coordRes.wlMigrations), float64(nocoord.wlMigrations), 0},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.label, r.c, r.n, r.g})
		t.metric("coord."+r.key, r.vc)
		t.metric("nocoord."+r.key, r.vn)
		t.metric("gen3."+r.key, r.vg)
	}
	t.metric("coord.deferred", float64(coordRes.coord.Deferrals))
	t.metric("coord.forced", float64(coordRes.coord.Forced))
	t.metric("coord.shed_writes", float64(coordRes.stats.ShedWrites))
	sloCell := func(res codesignResult, name string) string {
		for _, o := range res.slo {
			if o.Name != name {
				continue
			}
			verdict := "met"
			if !o.Met {
				verdict = "VIOLATED"
			}
			return fmt.Sprintf("%s (%d/%d windows, burn %.0f%%)", verdict, o.Violations, o.Windows, o.Burn*100)
		}
		return "not evaluated"
	}
	t.Rows = append(t.Rows, []string{"SLO: window p99 <= 5ms",
		sloCell(coordRes, "sdf-coord/read_p99"), sloCell(nocoord, "sdf-nocoord/read_p99"), sloCell(gen3, "gen3/read_p99")})
	t.metric("coord.slo_p99_burn", burnOf(coordRes.slo, "sdf-coord/read_p99"))
	t.metric("nocoord.slo_p99_burn", burnOf(nocoord.slo, "sdf-nocoord/read_p99"))
	t.metric("gen3.slo_p99_burn", burnOf(gen3.slo, "gen3/read_p99"))

	// Chaos stage: the coordinated cluster under the fault plan — the
	// Figure-9-style availability view, plus the degradation counters.
	chaos := codesignRun(opts, devSDF, true, pl, codesignChaosHorizon)
	t.Rows = append(t.Rows, []string{"chaos: worst delivered window", mb(chaos.floor), "-", "-"})
	t.Rows = append(t.Rows, []string{"chaos: lost reads / acked-write loss", fmt.Sprintf("%d", chaos.stats.Lost), "-", "-"})
	t.Rows = append(t.Rows, []string{"chaos: best-effort / delayed / shed writes",
		fmt.Sprintf("%d / %d / %d", chaos.stats.BestEffortWrites, chaos.stats.DelayedWrites, chaos.stats.ShedWrites), "-", "-"})
	t.Rows = append(t.Rows, []string{"chaos: forced erases / remounts / rpc deadline hits",
		fmt.Sprintf("%d / %d / %d", chaos.coord.Forced, chaos.stats.Remounts, chaos.rpcDeadlines), "-", "-"})
	t.metric("chaos.floor", chaos.floor)
	t.metric("chaos.lost", float64(chaos.stats.Lost))
	t.metric("chaos.best_effort", float64(chaos.stats.BestEffortWrites))
	t.metric("chaos.delayed_writes", float64(chaos.stats.DelayedWrites))
	t.metric("chaos.shed", float64(chaos.stats.ShedWrites))
	t.metric("chaos.forced", float64(chaos.coord.Forced))
	t.metric("chaos.remounts", float64(chaos.stats.Remounts))
	t.metric("chaos.rpc_deadline", float64(chaos.rpcDeadlines))
	t.metric("chaos.window_grants", float64(chaos.coord.Grants))
	t.metric("chaos.slo_p99_burn", burnOf(chaos.slo, "sdf-coord/read_p99"))

	if opts.Metrics {
		snapshot := metrics.Snapshot(coordRes.reg, nocoord.reg, gen3.reg, chaos.reg)
		series := metrics.SeriesJSONL(coordRes.sampler, nocoord.sampler, gen3.sampler, chaos.sampler)
		t.Observability = &Observability{
			SnapshotSHA256: metrics.HashBytes(snapshot),
			SeriesSHA256:   metrics.HashBytes(series),
			SLO: append(append(append(append([]metrics.ObjectiveResult(nil),
				coordRes.slo...), nocoord.slo...), gen3.slo...), chaos.slo...),
			Alerts:   coordRes.alerts + nocoord.alerts + gen3.alerts + chaos.alerts,
			Snapshot: snapshot,
			Series:   series,
		}
	}
	return t
}
