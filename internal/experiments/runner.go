package experiments

import (
	"runtime"
	"sync"
	"time"

	"sdf/internal/sim"
)

// KernelStats aggregates scheduler counters across every sim.Env an
// experiment run creates (Options.newEnv registers them). A nil
// receiver is a no-op, so experiment code registers unconditionally
// and only harnesses that want the numbers pay for them.
type KernelStats struct {
	envs []*sim.Env
}

func (s *KernelStats) track(env *sim.Env) {
	if s != nil {
		s.envs = append(s.envs, env)
	}
}

// Events returns the total number of kernel events fired across the
// tracked environments.
func (s *KernelStats) Events() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	for _, e := range s.envs {
		n += e.Events()
	}
	return n
}

// Envs returns how many simulation environments the run created.
func (s *KernelStats) Envs() int {
	if s == nil {
		return 0
	}
	return len(s.envs)
}

// Result is one experiment's table plus its measured host cost.
type Result struct {
	Name   string
	Table  Table
	Wall   time.Duration // host wall-clock of the run, not virtual time
	Events uint64        // kernel events fired across the run's envs
	Envs   int           // sim.Envs the run created
	// Allocs is the process-wide heap allocation count during the run
	// (runtime.MemStats.Mallocs delta). Only meaningful on a sequential
	// run: with workers > 1 concurrent experiments share the counter.
	Allocs uint64
}

// EventsPerSec returns the run's kernel event throughput.
func (r Result) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// AllocsPerEvent returns heap allocations per kernel event — the
// scheduler-efficiency figure the kernel-round-2 work optimizes. Zero
// when no events fired.
func (r Result) AllocsPerEvent() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Allocs) / float64(r.Events)
}

// RunAll executes entries on a pool of workers goroutines and returns
// results in entry order regardless of completion order. Every
// experiment builds its own sim.Envs and shares no simulation state
// with any other, so the tables and metrics are identical to a
// sequential run — only the host-side wall clocks differ. Callers
// must not pass a shared Tracer in opts when workers > 1 (the
// collector is not synchronized); opts.Stats is replaced with a fresh
// per-experiment collector either way.
func RunAll(entries []Entry, opts Options, workers int) []Result {
	if workers < 1 {
		workers = 1
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	results := make([]Result, len(entries))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//sdflint:allow rawgo host-side worker pool over whole experiments; each owns private sim.Envs, no virtual-time state crosses goroutines
		go func() {
			defer wg.Done()
			for i := range next {
				o := opts
				o.Stats = &KernelStats{}
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				mallocs := ms.Mallocs
				//sdflint:allow nowallclock measures the host cost of the run itself, never feeds into virtual time
				start := time.Now()
				tab := entries[i].Run(o)
				//sdflint:allow nowallclock measures the host cost of the run itself, never feeds into virtual time
				wall := time.Since(start)
				runtime.ReadMemStats(&ms)
				results[i] = Result{
					Name:   entries[i].Name,
					Table:  tab,
					Wall:   wall,
					Events: o.Stats.Events(),
					Envs:   o.Stats.Envs(),
					Allocs: ms.Mallocs - mallocs,
				}
			}
		}()
	}
	for i := range entries {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
