package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sdf/internal/core"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// smallTracedRun executes a short mixed SDF workload under a
// full-level collector and returns the collector.
func smallTracedRun(t *testing.T) *trace.Collector {
	t.Helper()
	env := sim.NewEnv()
	collector := trace.NewCollector()
	collector.SetLevel(trace.LevelFull)
	collector.SetDev("sdf")
	env.SetTracer(collector)
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 8
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev.StartSampler(10*time.Millisecond, time.Second)
	for ch := 0; ch < dev.Channels(); ch++ {
		ch := ch
		env.Go("worker", func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				if err := dev.EraseWrite(p, ch, i, nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := dev.Read(p, ch, i, 0, dev.PageSize()*4); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	env.Run()
	env.Close()
	return collector
}

// TestTracedRunByteIdentical is the tracing determinism contract: the
// same seeded workload exported twice must produce byte-identical
// JSONL and Chrome trace files (the property CI re-checks by diffing
// two full sdfbench runs).
func TestTracedRunByteIdentical(t *testing.T) {
	c1 := smallTracedRun(t)
	c2 := smallTracedRun(t)
	if c1.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if c1.Hash() != c2.Hash() {
		t.Fatalf("trace hashes differ across reruns: %s vs %s", c1.Hash(), c2.Hash())
	}
	var j1, j2, x1, x2 bytes.Buffer
	if err := c1.WriteJSONL(&j1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteJSONL(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSONL exports differ across reruns")
	}
	if err := c1.WriteChrome(&x1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteChrome(&x2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x1.Bytes(), x2.Bytes()) {
		t.Fatal("Chrome exports differ across reruns")
	}
}

// TestTracedRunEventMix checks the full-level collector sees every
// layer: op spans, queue/bus/flash phases, kernel events, and the
// per-channel sampler counters.
func TestTracedRunEventMix(t *testing.T) {
	c := smallTracedRun(t)
	kinds := make(map[trace.Kind]int)
	phases := make(map[string]int)
	counters := 0
	for _, ev := range c.Events() {
		kinds[ev.Kind]++
		if ev.Kind == trace.KindSpanBegin {
			phases[ev.Phase]++
		}
		if ev.Kind == trace.KindCounter && strings.Contains(ev.Name, "/qdepth") {
			counters++
		}
	}
	for _, k := range []trace.Kind{
		trace.KindSpanBegin, trace.KindSpanEnd, trace.KindProcSpawn,
		trace.KindProcPark, trace.KindProcResume,
		trace.KindAcquire, trace.KindRelease,
		trace.KindXferBegin, trace.KindXferEnd, trace.KindCounter,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
	for _, ph := range []string{trace.PhaseOp, trace.PhaseSoftware, trace.PhaseQueue, trace.PhaseBus, trace.PhaseFlash} {
		if phases[ph] == 0 {
			t.Errorf("no spans in phase %q", ph)
		}
	}
	if counters == 0 {
		t.Error("sampler recorded no queue-depth counters")
	}
}

// TestFigure8PhaseAttribution is the paper's claim, made quantitative
// through the tracer: SDF write latency is dominated by the flash
// array (program + erase), while the Gen3's worst-case latency is
// dominated by queueing (full DRAM buffer, GC stalls).
func TestFigure8PhaseAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 8 trace run is slow")
	}
	collector := trace.NewCollector()
	tab := Figure8(Options{Quick: true, Tracer: collector})
	if len(tab.Rows) != 3 {
		t.Fatalf("figure 8 rows = %d", len(tab.Rows))
	}
	for _, key := range []string{"gen3_8m.mean_ms", "gen3_352m.mean_ms", "sdf_8m.mean_ms", "sdf_8m.cv"} {
		if _, ok := tab.Metrics[key]; !ok {
			t.Errorf("missing metric %q", key)
		}
	}
	stats := trace.Summarize(collector.Events())
	totals := make(map[string]map[string]time.Duration) // dev -> phase -> total
	for _, s := range stats {
		if totals[s.Dev] == nil {
			totals[s.Dev] = make(map[string]time.Duration)
		}
		totals[s.Dev][s.Phase] += s.Total
	}
	sdf := totals["sdf"]
	if sdf == nil {
		t.Fatal("no spans attributed to dev sdf")
	}
	if sdf[trace.PhaseFlash] <= sdf[trace.PhaseQueue] {
		t.Errorf("sdf flash %v should dominate queue %v", sdf[trace.PhaseFlash], sdf[trace.PhaseQueue])
	}
	if sdf[trace.PhaseFlash] <= sdf[trace.PhaseSoftware] {
		t.Errorf("sdf flash %v should dominate software %v", sdf[trace.PhaseFlash], sdf[trace.PhaseSoftware])
	}
	gen3 := totals["gen3-352M"]
	if gen3 == nil {
		t.Fatal("no spans attributed to dev gen3-352M")
	}
	if gen3[trace.PhaseQueue] <= gen3[trace.PhaseSoftware] {
		t.Errorf("gen3 queue %v should dominate software %v", gen3[trace.PhaseQueue], gen3[trace.PhaseSoftware])
	}
	var sawStall bool
	for _, s := range stats {
		if strings.HasPrefix(s.Dev, "gen3") && (s.Name == "buffer-full" || s.Name == "gc-stall") {
			sawStall = true
		}
	}
	if !sawStall {
		t.Error("no buffer-full/gc-stall spans on the Gen3 — queue attribution is vacuous")
	}
}
