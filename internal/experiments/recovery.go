package experiments

import (
	"fmt"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/flashchan"
	"sdf/internal/sim"
)

// recoveryFills are the pre-crash fill levels (percent of logical
// blocks holding recoverable data) the recovery experiment sweeps.
var recoveryFills = []int{10, 25, 50, 75, 90}

// recoveryRun is one crash-and-remount cycle at a given fill level.
type recoveryRun struct {
	fill     int
	seeded   int
	stats    blocklayer.MountStats
	scanTime time.Duration
}

// recoveryCycle stages a device at the fill level, tears a few writes
// with a mid-flight power cut, and measures the remount scan. The
// fill is staged with SeedRecoverable — real out-of-band metadata in
// zero simulated time — so the sweep pays only for what it measures:
// the recovery scan itself.
func recoveryCycle(opts Options, fill int) recoveryRun {
	env := opts.newEnv()
	cfg := core.DefaultConfig()
	if opts.Quick {
		cfg.Channels = 8
		cfg.Channel.Nand.BlocksPerPlane = 128
	}
	dev, err := core.New(env, cfg)
	if err != nil {
		panic(err)
	}
	perChan := dev.BlocksPerChannel() * fill / 100
	run := recoveryRun{fill: fill}
	for c := 0; c < dev.Channels(); c++ {
		for lbn := 0; lbn < perChan; lbn++ {
			id := flashchan.WriteID{Lo: uint64(lbn*dev.Channels() + c)}
			if err := dev.Channel(c).SeedRecoverable(lbn, id); err != nil {
				panic(err)
			}
			run.seeded++
		}
	}
	// A handful of real writes are mid-block when the power cut lands,
	// so every fill level also recovers past genuine torn blocks.
	inj := fault.NewInjector(env)
	fault.AttachDevice(inj, "sdf0", dev)
	pl := &fault.Plan{Seed: int64(fill), Injections: []fault.Injection{
		{At: 8 * time.Millisecond, Kind: fault.Powerloss, Target: "sdf0"},
	}}
	if err := inj.Arm(pl); err != nil {
		panic(err)
	}
	for c := 0; c < 4 && c < dev.Channels(); c++ {
		c := c
		env.Go("recovery/torn-writer", func(p *sim.Proc) {
			id := flashchan.WriteID{Lo: uint64(perChan*dev.Channels() + c)}
			//sdflint:allow errdrop the scheduled power cut tears this write on purpose; the mount-time scan below is what the experiment measures
			dev.EraseWriteTagged(p, c, perChan, nil, id)
		})
	}
	env.Run()
	state := dev.State()
	env.Close()

	// Remount in a fresh environment; the scan starts at t=0, so the
	// clock after the mount proc drains is the recovery latency.
	renv := opts.newEnv()
	if opts.Tracer != nil {
		opts.Tracer.SetDev(fmt.Sprintf("recovery/f%02d", fill))
		renv.SetTracer(opts.Tracer)
	}
	mounted, err := core.Mount(renv, cfg, state)
	if err != nil {
		panic(err)
	}
	boot := renv.Go("recovery/mount", func(p *sim.Proc) {
		_, mst, err := blocklayer.Mount(p, renv, mounted, blocklayer.DefaultConfig())
		if err != nil {
			panic(err)
		}
		run.stats = mst
	})
	renv.RunUntilDone(boot)
	run.scanTime = renv.Now()
	renv.Close()
	return run
}

// Recovery measures mount-time recovery latency against device fill
// level: a device is staged at each fill, power is cut mid-write, and
// the remount's full out-of-band scan — block-map rebuild, torn-write
// discard, quarantine — is timed in virtual time. The scan probes
// every written page's metadata, so recovery cost grows with fill
// level, not device size alone.
func Recovery(opts Options) Table {
	tab := Table{
		ID:     "recovery",
		Title:  "mount-time recovery scan vs device fill level",
		Header: []string{"fill", "seeded blocks", "recovered", "torn", "probed pages", "recovery time"},
	}
	for _, fill := range recoveryFills {
		r := recoveryCycle(opts, fill)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d%%", r.fill),
			fmt.Sprintf("%d", r.seeded),
			fmt.Sprintf("%d", r.stats.RecoveredBlocks),
			fmt.Sprintf("%d", r.stats.TornDiscarded),
			fmt.Sprintf("%d", r.stats.ProbedPages),
			fmt.Sprintf("%.2f ms", float64(r.scanTime)/float64(time.Millisecond)),
		})
		tab.metric(fmt.Sprintf("recovery_ms_f%02d", r.fill), float64(r.scanTime)/float64(time.Millisecond))
		tab.metric(fmt.Sprintf("recovery_probed_pages_f%02d", r.fill), float64(r.stats.ProbedPages))
	}
	tab.Notes = append(tab.Notes,
		"each fill level crashes mid-write; torn counts prove the scan rode over real crash damage",
		"scan latency is virtual time from power-on to a serving block layer")
	return tab
}
