package experiments

import (
	"bytes"
	"fmt"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/flashchan"
	"sdf/internal/sim"
)

// recoveryFills are the pre-crash fill levels (percent of logical
// blocks holding recoverable data) the recovery experiment sweeps.
var recoveryFills = []int{10, 25, 50, 75, 90}

// recoveryRun is one crash-and-remount cycle at a given fill level.
type recoveryRun struct {
	fill     int
	seeded   int
	stats    blocklayer.MountStats
	scanTime time.Duration
}

// recoveryCycle stages a device at the fill level, tears a few writes
// with a mid-flight power cut, and measures the remount scan. The
// fill is staged with SeedRecoverable — real out-of-band metadata in
// zero simulated time — so the sweep pays only for what it measures:
// the recovery scan itself.
func recoveryCycle(opts Options, fill int) recoveryRun {
	env := opts.newEnv()
	cfg := core.DefaultConfig()
	if opts.Quick {
		cfg.Channels = 8
		cfg.Channel.Nand.BlocksPerPlane = 128
	}
	dev, err := core.New(env, cfg)
	if err != nil {
		panic(err)
	}
	perChan := dev.BlocksPerChannel() * fill / 100
	run := recoveryRun{fill: fill}
	for c := 0; c < dev.Channels(); c++ {
		for lbn := 0; lbn < perChan; lbn++ {
			id := flashchan.WriteID{Lo: uint64(lbn*dev.Channels() + c)}
			if err := dev.Channel(c).SeedRecoverable(lbn, id); err != nil {
				panic(err)
			}
			run.seeded++
		}
	}
	// A handful of real writes are mid-block when the power cut lands,
	// so every fill level also recovers past genuine torn blocks.
	inj := fault.NewInjector(env)
	fault.AttachDevice(inj, "sdf0", dev)
	pl := &fault.Plan{Seed: int64(fill), Injections: []fault.Injection{
		{At: 8 * time.Millisecond, Kind: fault.Powerloss, Target: "sdf0"},
	}}
	if err := inj.Arm(pl); err != nil {
		panic(err)
	}
	for c := 0; c < 4 && c < dev.Channels(); c++ {
		c := c
		env.Go("recovery/torn-writer", func(p *sim.Proc) {
			id := flashchan.WriteID{Lo: uint64(perChan*dev.Channels() + c)}
			//sdflint:allow errdrop the scheduled power cut tears this write on purpose; the mount-time scan below is what the experiment measures
			dev.EraseWriteTagged(p, c, perChan, nil, id)
		})
	}
	env.Run()
	state := dev.State()
	env.Close()

	// Remount in a fresh environment; the scan starts at t=0, so the
	// clock after the mount proc drains is the recovery latency.
	renv := opts.newEnv()
	if opts.Tracer != nil {
		opts.Tracer.SetDev(fmt.Sprintf("recovery/f%02d", fill))
		renv.SetTracer(opts.Tracer)
	}
	mounted, err := core.Mount(renv, cfg, state)
	if err != nil {
		panic(err)
	}
	boot := renv.Go("recovery/mount", func(p *sim.Proc) {
		_, mst, err := blocklayer.Mount(p, renv, mounted, blocklayer.DefaultConfig())
		if err != nil {
			panic(err)
		}
		run.stats = mst
	})
	renv.RunUntilDone(boot)
	run.scanTime = renv.Now()
	renv.Close()
	return run
}

// recoveryCycleCheckpointed stages the same fill with FTL
// checkpointing enabled: the staged device writes a checkpoint, a
// fixed post-checkpoint delta lands (independent of fill), and a
// scheduled recurring powerloss plan cuts power mid-write. The
// remount recovers from the checkpoint, so its probe count is bounded
// by post-checkpoint activity — roughly flat across the fill sweep —
// instead of growing with every filled block.
func recoveryCycleCheckpointed(opts Options, fill int) recoveryRun {
	env := opts.newEnv()
	cfg := core.DefaultConfig()
	if opts.Quick {
		cfg.Channels = 8
		cfg.Channel.Nand.BlocksPerPlane = 128
	}
	cfg.Channel.CheckpointEvery = 64
	dev, err := core.New(env, cfg)
	if err != nil {
		panic(err)
	}
	perChan := dev.BlocksPerChannel() * fill / 100
	run := recoveryRun{fill: fill}
	for c := 0; c < dev.Channels(); c++ {
		for lbn := 0; lbn < perChan; lbn++ {
			id := flashchan.WriteID{Lo: uint64(lbn*dev.Channels() + c)}
			if err := dev.Channel(c).SeedRecoverable(lbn, id); err != nil {
				panic(err)
			}
			run.seeded++
		}
	}
	// Checkpoint the staged state to completion before arming the
	// chaos plan: the sweep measures recovery from a durable image
	// (mid-checkpoint cuts are the crash oracle's job).
	ckpt := env.Go("recovery/checkpoint", func(p *sim.Proc) {
		if err := dev.Checkpoint(p); err != nil {
			panic(err)
		}
	})
	env.RunUntilDone(ckpt)
	// A fixed post-checkpoint delta — the same two blocks per channel
	// at every fill level — is all the remount should have to walk in
	// full.
	for c := 0; c < dev.Channels(); c++ {
		for _, lbn := range []int{perChan, perChan + 1} {
			id := flashchan.WriteID{Lo: uint64(lbn*dev.Channels() + c)}
			if err := dev.Channel(c).SeedRecoverable(lbn, id); err != nil {
				panic(err)
			}
			run.seeded++
		}
	}
	inj := fault.NewInjector(env)
	fault.AttachDevice(inj, "sdf0", dev)
	// The scheduled plan fires twice (the second cut lands on dead
	// media, a no-op) so the recurring expansion path itself is under
	// the byte-identity smoke.
	pl := &fault.Plan{Seed: int64(fill), Injections: []fault.Injection{
		{At: 8 * time.Millisecond, Kind: fault.Powerloss, Target: "sdf0",
			Every: 4 * time.Millisecond, Repeat: 2},
	}}
	if err := inj.Arm(pl); err != nil {
		panic(err)
	}
	for c := 0; c < 4 && c < dev.Channels(); c++ {
		c := c
		env.Go("recovery/torn-writer", func(p *sim.Proc) {
			id := flashchan.WriteID{Lo: uint64((perChan+2)*dev.Channels() + c)}
			//sdflint:allow errdrop the scheduled power cut tears this write on purpose; the mount-time scan below is what the experiment measures
			dev.EraseWriteTagged(p, c, perChan+2, nil, id)
		})
	}
	env.Run()
	state := dev.State()
	env.Close()

	renv := opts.newEnv()
	if opts.Tracer != nil {
		opts.Tracer.SetDev(fmt.Sprintf("recovery/cp-f%02d", fill))
		renv.SetTracer(opts.Tracer)
	}
	mounted, err := core.Mount(renv, cfg, state)
	if err != nil {
		panic(err)
	}
	boot := renv.Go("recovery/mount", func(p *sim.Proc) {
		_, mst, err := blocklayer.Mount(p, renv, mounted, blocklayer.DefaultConfig())
		if err != nil {
			panic(err)
		}
		run.stats = mst
	})
	renv.RunUntilDone(boot)
	run.scanTime = renv.Now()
	renv.Close()
	return run
}

// journalRun is the write-ahead-log half of the recovery bound.
type journalRun struct {
	putsAcked     int
	bytesAtCrash  int64
	replayed      int
	truncatedPuts int64
}

// recoveryJournal measures the CCDB side of bounded recovery: a
// journaled slice takes a stream of puts, flushes mid-stream (which
// truncates the log at the flush watermark), keeps writing, and then
// crashes. The remount replays only the post-truncation tail — the
// journal bytes at the crash instant, not the whole put history —
// which is the journal analogue of the FTL checkpoint bound.
func recoveryJournal(opts Options) journalRun {
	env := opts.newEnv()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		panic(err)
	}
	store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
	journal := ccdb.NewJournal()
	sliceCfg := ccdb.Config{PatchBytes: store.BlockSize(), RunsPerTier: 8, DataMode: true, Journal: journal}
	slice := ccdb.NewSlice(env, store, sliceCfg)
	run := journalRun{}
	const total = 48
	env.Go("recovery/journal-writer", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			val := bytes.Repeat([]byte{byte(i)}, 4<<10)
			if err := slice.Put(p, fmt.Sprintf("jk%03d", i), val, len(val)); err != nil {
				return
			}
			run.putsAcked++
			// Flush mid-stream: the durable patch lets the journal drop
			// everything up to the flush watermark.
			if i == total/2 {
				if err := slice.Flush(p); err != nil {
					return
				}
			}
			p.Wait(100 * time.Microsecond)
		}
	})
	env.Schedule(100*time.Millisecond, func() {
		dev.PowerLoss()
		journal.Halt()
	})
	env.Run()
	run.bytesAtCrash = journal.Bytes()
	run.truncatedPuts = journal.TruncatedPuts()
	state := dev.State()
	env.Close()

	renv := opts.newEnv()
	mounted, err := core.Mount(renv, cfg, state)
	if err != nil {
		panic(err)
	}
	boot := renv.Go("recovery/journal-mount", func(p *sim.Proc) {
		layer, _, err := blocklayer.Mount(p, renv, mounted, blocklayer.DefaultConfig())
		if err != nil {
			panic(err)
		}
		_, rep, err := ccdb.MountSlice(p, renv, ccdb.NewSDFStore(layer), sliceCfg)
		if err != nil {
			panic(err)
		}
		run.replayed = rep.MemReplayed
	})
	renv.RunUntilDone(boot)
	renv.Close()
	return run
}

// Recovery measures mount-time recovery latency against device fill
// level, on two axes. Without checkpoints the remount's out-of-band
// scan probes every written page's metadata, so recovery cost grows
// with fill; with FTL checkpoints the scan single-probe-validates
// every checkpoint-vouched block and full-walks only post-checkpoint
// activity, so the cost stays roughly flat across the sweep
// (DESIGN.md §14).
func Recovery(opts Options) Table {
	tab := Table{
		ID:    "recovery",
		Title: "mount-time recovery scan vs device fill level",
		Header: []string{"fill", "seeded blocks", "recovered", "torn", "probed pages",
			"recovery time", "cp probed", "cp time", "cp hits"},
	}
	for _, fill := range recoveryFills {
		r := recoveryCycle(opts, fill)
		cp := recoveryCycleCheckpointed(opts, fill)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d%%", r.fill),
			fmt.Sprintf("%d", r.seeded),
			fmt.Sprintf("%d", r.stats.RecoveredBlocks),
			fmt.Sprintf("%d", r.stats.TornDiscarded),
			fmt.Sprintf("%d", r.stats.ProbedPages),
			fmt.Sprintf("%.2f ms", float64(r.scanTime)/float64(time.Millisecond)),
			fmt.Sprintf("%d", cp.stats.ProbedPages),
			fmt.Sprintf("%.2f ms", float64(cp.scanTime)/float64(time.Millisecond)),
			fmt.Sprintf("%d", cp.stats.CheckpointHits),
		})
		tab.metric(fmt.Sprintf("recovery_ms_f%02d", r.fill), float64(r.scanTime)/float64(time.Millisecond))
		tab.metric(fmt.Sprintf("recovery_probed_pages_f%02d", r.fill), float64(r.stats.ProbedPages))
		tab.metric(fmt.Sprintf("recovery_cp_ms_f%02d", cp.fill), float64(cp.scanTime)/float64(time.Millisecond))
		tab.metric(fmt.Sprintf("recovery_cp_probed_pages_f%02d", cp.fill), float64(cp.stats.ProbedPages))
		tab.metric(fmt.Sprintf("recovery_cp_hits_f%02d", cp.fill), float64(cp.stats.CheckpointHits))
	}
	jr := recoveryJournal(opts)
	tab.metric("recovery_journal_puts_acked", float64(jr.putsAcked))
	tab.metric("recovery_journal_bytes_at_crash", float64(jr.bytesAtCrash))
	tab.metric("recovery_journal_replayed", float64(jr.replayed))
	tab.metric("recovery_journal_truncated_puts", float64(jr.truncatedPuts))
	tab.Notes = append(tab.Notes,
		"each fill level crashes mid-write; torn counts prove the scan rode over real crash damage",
		"scan latency is virtual time from power-on to a serving block layer",
		"cp columns remount from an FTL checkpoint: probes are bounded by post-checkpoint writes, flat vs fill",
		fmt.Sprintf("journal: %d puts acked, %d truncated at the mid-stream flush, %d replayed at remount (%d B of log at the crash)",
			jr.putsAcked, jr.truncatedPuts, jr.replayed, jr.bytesAtCrash))
	return tab
}
