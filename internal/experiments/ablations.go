package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// AblationStripeUnit (A1) probes the design choice the paper spends
// §2.3 on: a conventional SSD's small striping unit parallelizes one
// request across channels, but SDF deliberately keeps a request on one
// channel and gets its parallelism from request concurrency instead.
func AblationStripeUnit(opts Options) Table {
	t := Table{
		ID:     "Ablation A1",
		Title:  "Striping unit on the conventional SSD (512 KB random reads)",
		Header: []string{"Stripe unit", "1 reader", "32 readers"},
		Notes: []string{
			"small stripes parallelize a single request; with enough concurrency the unit stops mattering — SDF's premise",
		},
	}
	for _, stripe := range []int{1, 16, 256} {
		prof := ssd.HuaweiGen3(0.25).ScaleBlocks(16)
		prof.StripePages = stripe
		one := ssdThroughput(opts, prof, 512<<10, 1)
		many := ssdThroughput(opts, prof, 512<<10, 32)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d KB", stripe*8), mb(one), mb(many),
		})
	}
	return t
}

// AblationWriteBuffer (A2) isolates the Gen3's DRAM write cache: it
// produces the 7 ms fast path of Figure 8 and much of the variance.
func AblationWriteBuffer(opts Options) Table {
	t := Table{
		ID:     "Ablation A2",
		Title:  "DRAM write buffer on the Gen3 (8 MB writes, nearly full device)",
		Header: []string{"Buffer", "Min", "Mean", "Max", "CV"},
		Notes:  []string{"SDF removes the buffer (and its battery) entirely; §2.2"},
	}
	n := 80
	if opts.Quick {
		n = 40
	}
	for _, buf := range []int64{0, 64 << 20} {
		prof := ssd.HuaweiGen3(0.10).ScaleBlocks(16)
		prof.BufferBytes = buf
		env := opts.newEnv()
		dev := newSSD(env, prof)
		if err := dev.WarmFillRandom(1.0, 6); err != nil {
			panic(err)
		}
		var series metrics.Series
		rng := rand.New(rand.NewSource(4))
		slots := dev.Capacity() / (8 << 20)
		w := env.Go("writer", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				off := rng.Int63n(slots) * (8 << 20)
				start := env.Now()
				if err := dev.Write(p, off, 8<<20); err != nil {
					return
				}
				series.Observe(env.Now() - start)
			}
		})
		env.RunUntilDone(w)
		env.Close()
		name := "none (write-through)"
		if buf > 0 {
			name = "64 MB"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f ms", float64(series.Min())/1e6),
			fmt.Sprintf("%.1f ms", float64(series.Mean())/1e6),
			fmt.Sprintf("%.1f ms", float64(series.Max())/1e6),
			fmt.Sprintf("%.2f", series.CoeffVar()),
		})
	}
	return t
}

// AblationEraseScheduling (A3) compares the block layer's idle-time
// erase scheduling against paying the erase inline with every write
// (§2.3: the explicit erase command exists so software can do this).
func AblationEraseScheduling(opts Options) Table {
	t := Table{
		ID:     "Ablation A3",
		Title:  "Erase scheduling in the block layer (8 MB writes)",
		Header: []string{"Policy", "Write latency", "Inline erases", "Background erases"},
	}
	n := 60
	if opts.Quick {
		n = 30
	}
	for _, background := range []bool{true, false} {
		env := opts.newEnv()
		dev := newSDF(env, 16)
		cfg := blocklayer.DefaultConfig()
		cfg.BackgroundErase = background
		layer := blocklayer.New(env, dev, cfg)
		if background {
			env.RunUntil(3 * time.Second) // pre-erase the pool
		}
		var series metrics.Series
		w := env.Go("writer", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				start := env.Now()
				if _, err := layer.Write(p, blocklayer.BlockID(i), nil); err != nil {
					return
				}
				series.Observe(env.Now() - start)
				if err := layer.Free(p, blocklayer.BlockID(i)); err != nil {
					return
				}
				p.Wait(20 * time.Millisecond) // think time: idle periods exist
			}
		})
		env.RunUntilDone(w)
		_, _, inline, bg := layer.Stats()
		env.Close()
		name := "idle-time (background)"
		if !background {
			name = "inline (erase-before-write)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f ms", float64(series.Mean())/1e6),
			fmt.Sprintf("%d", inline),
			fmt.Sprintf("%d", bg),
		})
	}
	return t
}

// AblationSDFOverProvision (A4) withholds a fraction of SDF's logical
// blocks from use: since there is no garbage collection, reserving
// space buys nothing — the paper's argument for exposing 99% of
// capacity (§2.3).
func AblationSDFOverProvision(opts Options) Table {
	t := Table{
		ID:     "Ablation A4",
		Title:  "Reserved space on SDF (8 MB erase+write, 44 channels)",
		Header: []string{"Reserved", "Write throughput"},
		Notes:  []string{"no GC means no dependence on reserve space; contrast with Figure 1"},
	}
	for _, reserve := range []float64{0, 0.25, 0.50} {
		env := opts.newEnv()
		dev := newSDF(env, 32)
		usable := int(float64(dev.BlocksPerChannel()) * (1 - reserve))
		if usable < 1 {
			usable = 1
		}
		warmup := opts.scale(500 * time.Millisecond)
		deadline := opts.scale(3 * time.Second)
		m := newMeterCtx(env, warmup, deadline)
		for ch := 0; ch < dev.Channels(); ch++ {
			ch := ch
			lbn := 0
			m.loop("writer", func(p *sim.Proc) int {
				if err := dev.EraseWrite(p, ch, lbn, nil); err != nil {
					return -1
				}
				lbn = (lbn + 1) % usable
				return dev.BlockSize()
			})
		}
		rate := m.rate()
		env.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", reserve*100), gb(rate),
		})
	}
	return t
}

// AblationInterruptMerging (A5) measures the completion-interrupt
// coalescing the SDF controller performs across channel engines
// (§2.1), viewed from a single I/O core.
func AblationInterruptMerging(opts Options) Table {
	t := Table{
		ID:     "Ablation A5",
		Title:  "Interrupt merging (8 KB random reads, 44 threads, 1 I/O core)",
		Header: []string{"Merging", "Throughput", "IOPS"},
		Notes:  []string{"the card merges interrupts to 1/4-1/5 of the operation rate; §2.1"},
	}
	for _, merge := range []int{1, 4} {
		cfg := core.DefaultConfig()
		cfg.Channel.Nand.BlocksPerPlane = 16
		cfg.Channel.SparePerPlane = 2
		cfg.Stack.InterruptMerge = merge
		cfg.Stack.CPUs = 1
		env := opts.newEnv()
		dev, err := core.New(env, cfg)
		if err != nil {
			panic(err)
		}
		warmup := opts.scale(500 * time.Millisecond)
		deadline := opts.scale(2 * time.Second)
		m := newMeterCtx(env, warmup, deadline)
		rng := rand.New(rand.NewSource(3))
		pages := dev.BlockSize() / dev.PageSize()
		for ch := 0; ch < dev.Channels(); ch++ {
			ch := ch
			wrote := false
			m.loop("reader", func(p *sim.Proc) int {
				if !wrote {
					if err := dev.EraseWrite(p, ch, 0, nil); err != nil {
						return -1
					}
					wrote = true
					return 0
				}
				off := rng.Intn(pages) * dev.PageSize()
				if _, err := dev.Read(p, ch, 0, off, dev.PageSize()); err != nil {
					return -1
				}
				return dev.PageSize()
			})
		}
		rate := m.rate()
		env.Close()
		name := "off"
		if merge > 1 {
			name = fmt.Sprintf("%d-way", merge)
		}
		t.Rows = append(t.Rows, []string{
			name, gb(rate), fmt.Sprintf("%.0fK", rate/8192/1000),
		})
	}
	return t
}

// AblationParity (A6) removes the Gen3's dedicated parity channels,
// quantifying the ~10% capacity and write-bandwidth tax that SDF
// avoids by relying on BCH plus cross-rack replication (§2.2).
func AblationParity(opts Options) Table {
	t := Table{
		ID:     "Ablation A6",
		Title:  "Cross-channel parity on the Gen3",
		Header: []string{"Parity", "Usable capacity", "Seq write"},
	}
	for _, ratio := range []int{10, 0} {
		prof := ssd.HuaweiGen3(0.25).ScaleBlocks(16)
		prof.ParityRatio = ratio
		prof.BufferBytes = 64 << 20
		env := opts.newEnv()
		dev := newSSD(env, prof)
		capacity := dev.Capacity()
		env.Close()
		rate := seqBandwidth(opts, prof, true, 16)
		name := "1 per 10 channels"
		if ratio == 0 {
			name = "none"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f GB", float64(capacity)/1e9),
			mb(rate),
		})
	}
	return t
}

// AblationStaticWL (A7) toggles static wear leveling on the Gen3: the
// migrations even out wear at the cost of sporadic foreground
// interference — one of the features SDF dropped for predictability
// (§2.2).
func AblationStaticWL(opts Options) Table {
	t := Table{
		ID:     "Ablation A7",
		Title:  "Static wear leveling on the Gen3 (sustained random writes)",
		Header: []string{"Static WL", "Moves", "Wear spread", "p99 latency", "Max latency"},
		Notes: []string{
			"migrations engage under skewed traffic and add background plane/controller work; SDF omits the feature entirely — its blocks cycle via explicit erases, and cache residency keeps data short-lived (sec 2.2)",
		},
	}
	for _, enabled := range []bool{false, true} {
		// A small, heavily skewed device: half the logical space is
		// hot, so without static WL the cold half's blocks never cycle.
		prof := ssd.HuaweiGen3(0.10).ScaleBlocks(8)
		prof.BufferBytes = 0
		prof.StaticWL = enabled
		prof.StaticWLSpread = 2
		env := opts.newEnv()
		dev := newSSD(env, prof)
		if err := dev.WarmFillRandom(1.0, 6); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(8))
		var series metrics.Series
		deadline := opts.scale(20 * time.Second)
		slots := dev.Capacity() / int64(dev.PageSize()) / 2 // hot half only
		for w := 0; w < 16; w++ {
			env.Go("writer", func(p *sim.Proc) {
				for env.Now() < deadline {
					off := rng.Int63n(slots) * int64(dev.PageSize())
					start := env.Now()
					if err := dev.Write(p, off, int64(dev.PageSize())); err != nil {
						return
					}
					series.Observe(env.Now() - start)
				}
			})
		}
		env.RunUntil(deadline)
		st := dev.Stats()
		wmin, wmax := dev.Wear()
		env.Close()
		name := "off"
		if enabled {
			name = "on (spread 2)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", st.StaticWLMoves),
			fmt.Sprintf("%d..%d", wmin, wmax),
			fmt.Sprintf("%.1f ms", float64(series.Percentile(99))/1e6),
			fmt.Sprintf("%.1f ms", float64(series.Max())/1e6),
		})
	}
	return t
}
