package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sdf/internal/hostif"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// seqBandwidth measures sequential throughput on a conventional SSD
// with 2 MB requests from k concurrent workers (the paper reads and
// writes "sequentially in erase-block units" through a deep queue).
func seqBandwidth(opts Options, prof ssd.Profile, write bool, k int) float64 {
	env := opts.newEnv()
	defer env.Close()
	dev := newSSD(env, prof)
	if !write {
		if err := dev.WarmFill(0.9); err != nil {
			panic(err)
		}
	}
	const reqSize = 2 << 20
	warmup := opts.scale(500 * time.Millisecond)
	deadline := opts.scale(4 * time.Second)
	m := newMeterCtx(env, warmup, deadline)
	span := dev.Capacity() / int64(k) / reqSize * reqSize
	for w := 0; w < k; w++ {
		base := int64(w) * span
		off := base
		m.loop("seq", func(p *sim.Proc) int {
			var err error
			if write {
				err = dev.Write(p, off, reqSize)
			} else {
				err = dev.Read(p, off, reqSize)
			}
			if err != nil {
				return -1
			}
			off += reqSize
			if off+reqSize > base+span {
				off = base
			}
			return reqSize
		})
	}
	return m.rate()
}

// Table1 regenerates Table 1: specifications and measured sequential
// bandwidths of the three commodity SSD classes at 20-25% OP.
func Table1(opts Options) Table {
	type row struct {
		prof           ssd.Profile
		iface          string
		rawR, rawW     float64 // vendor raw, bytes/s
		paperR, paperW float64
		workers        int
	}
	rows := []row{
		{ssd.Intel320(0.20).ScaleBlocks(24), "SATA 2.0", 300e6, 300e6, 219e6, 153e6, 8},
		{ssd.HuaweiGen3(0.25).ScaleBlocks(16), "PCIe 1.1x8", 1600e6, 950e6, 1200e6, 460e6, 16},
		{ssd.HighEnd(0.20).ScaleBlocks(12), "PCIe 1.1x8", 1600e6, 1500e6, 1300e6, 620e6, 16},
	}
	t := Table{
		ID:     "Table 1",
		Title:  "Commodity SSD specifications and sequential bandwidths",
		Header: []string{"Device", "Interface", "Raw R/W", "Measured R/W", "Paper R/W"},
		Notes: []string{
			"write runs use a buffer scaled to the shrunken simulated device",
		},
	}
	for _, r := range rows {
		wprof := r.prof
		wprof.BufferBytes = 64 << 20
		gotR := seqBandwidth(opts, r.prof, false, r.workers)
		gotW := seqBandwidth(opts, wprof, true, r.workers)
		t.Rows = append(t.Rows, []string{
			r.prof.Name, r.iface,
			mb(r.rawR) + " / " + mb(r.rawW),
			mb(gotR) + " / " + mb(gotW),
			mb(r.paperR) + " / " + mb(r.paperW),
		})
	}
	return t
}

// Figure1 regenerates Figure 1: 4 KB random-write throughput of the
// low-end SSD as a function of the over-provisioning ratio, starting
// from the steady-state GC block-occupancy distribution.
func Figure1(opts Options) Table {
	t := Table{
		ID:     "Figure 1",
		Title:  "Random 4 KB write throughput vs over-provisioning (Intel 320 model)",
		Header: []string{"Over-provisioning", "Throughput", "Write amplification", "Paper"},
		Notes: []string{
			"paper's 0% point is run at 1% (drives keep a hidden reserve to stay functional)",
			"absolute scale differs from the paper (~3x); the shape — steep loss at low OP — holds",
		},
	}
	paper := map[int]string{1: "~2 MB/s", 7: "~8 MB/s", 25: "~9.7 MB/s", 50: "~11.7 MB/s"}
	for _, opPct := range []int{1, 7, 25, 50} {
		prof := ssd.Intel320(float64(opPct) / 100).ScaleBlocks(64)
		prof.BufferBytes = 0
		env := opts.newEnv()
		dev := newSSD(env, prof)
		if err := dev.WarmFillRandom(1.0, 42); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(42))
		warmup := opts.scale(5 * time.Second)
		deadline := opts.scale(8 * time.Second)
		m := newMeterCtx(env, warmup, deadline)
		slots := dev.Capacity() / 4096
		for w := 0; w < 32; w++ {
			m.loop("writer", func(p *sim.Proc) int {
				off := rng.Int63n(slots) * 4096
				if err := dev.Write(p, off, 4096); err != nil {
					return -1
				}
				return 4096
			})
		}
		rate := m.rate()
		st := dev.Stats()
		env.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", opPct),
			mb(rate),
			fmt.Sprintf("%.2f", st.WriteAmplification()),
			paper[opPct],
		})
	}
	return t
}

// SoftwareStack regenerates the §2.4/§4.3 comparison: per-request
// software cost of the conventional kernel I/O path versus SDF's
// user-space IOCTL path.
func SoftwareStack(opts Options) Table {
	env := opts.newEnv()
	defer env.Close()
	kernel := hostif.NewStack(env, hostif.KernelStack())
	bypass := hostif.NewStack(env, hostif.BypassStack())
	t := Table{
		ID:     "E11 (sec 2.4/4.3)",
		Title:  "Per-request software-path cost",
		Header: []string{"Path", "Submit+complete", "Paper"},
	}
	t.Rows = append(t.Rows, []string{
		"Linux kernel I/O stack",
		kernel.PerRequestCost().String(),
		"~12.9 µs",
	})
	t.Rows = append(t.Rows, []string{
		"SDF user-space IOCTL (merged interrupts)",
		bypass.PerRequestCost().String(),
		"2-4 µs",
	})
	return t
}

// EraseThroughput regenerates the §3.2 aside: the aggregate rate at
// which the 44 exposed channels can erase.
func EraseThroughput(opts Options) Table {
	env := opts.newEnv()
	dev := newSDF(env, 64)
	deadline := opts.scale(2 * time.Second)
	m := newMeterCtx(env, 0, deadline)
	for ch := 0; ch < dev.Channels(); ch++ {
		ch := ch
		lbn := 0
		m.loop("eraser", func(p *sim.Proc) int {
			if err := dev.Erase(p, ch, lbn); err != nil {
				return -1
			}
			lbn = (lbn + 1) % dev.BlocksPerChannel()
			return dev.BlockSize()
		})
	}
	rate := m.rate()
	env.Close()
	return Table{
		ID:     "E12 (sec 3.2)",
		Title:  "SDF aggregate erase throughput",
		Header: []string{"Metric", "Measured", "Paper"},
		Rows: [][]string{{
			"44-channel erase rate", gb(rate), "~40 GB/s",
		}},
		Notes: []string{
			"erases serialize per chip (two planes each); the paper reports the same order of magnitude",
		},
	}
}
