package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/metrics"
	"sdf/internal/sim"
)

// FutureWorkReadPriority implements and evaluates the scheduling the
// paper leaves as future work (§2.4, §5): "coordinate timings for the
// SDF to serve different types of requests so that on-demand reads
// take priority over writes and erasures". Readers share every
// channel with two background write streams; the channel engine
// either serves FIFO (production behaviour) or admits queued reads
// first (non-preemptively).
func FutureWorkReadPriority(opts Options) Table {
	t := Table{
		ID:     "Future work (sec 5)",
		Title:  "Read priority over writes/erases (512 KB reads vs streaming writes)",
		Header: []string{"Scheduling", "Read p50", "Read p99", "Write throughput"},
		Notes: []string{
			"non-preemptive: a read still waits out the write in service, but no longer the queued ones",
		},
	}
	for _, prioritize := range []bool{false, true} {
		cfg := core.DefaultConfig()
		cfg.Channel.Nand.BlocksPerPlane = 16
		cfg.Channel.SparePerPlane = 2
		cfg.Channel.PrioritizeReads = prioritize
		env := opts.newEnv()
		dev, err := core.New(env, cfg)
		if err != nil {
			panic(err)
		}
		deadline := opts.scale(6 * time.Second)
		var lat metrics.Series
		var written int64
		rng := rand.New(rand.NewSource(12))
		for ch := 0; ch < dev.Channels(); ch++ {
			ch := ch
			// Two write streams per channel keep the queue non-empty.
			for wtr := 0; wtr < 2; wtr++ {
				wtr := wtr
				env.Go("writer", func(p *sim.Proc) {
					lbn := wtr * (dev.BlocksPerChannel() / 2)
					for env.Now() < deadline {
						if err := dev.EraseWrite(p, ch, lbn, nil); err != nil {
							return
						}
						written += int64(dev.BlockSize())
						lbn = wtr*(dev.BlocksPerChannel()/2) + (lbn+1)%(dev.BlocksPerChannel()/2)
					}
				})
			}
			env.Go("reader", func(p *sim.Proc) {
				// Read from a block this reader wrote first.
				lbn := dev.BlocksPerChannel() - 1
				if err := dev.EraseWrite(p, ch, lbn, nil); err != nil {
					return
				}
				for env.Now() < deadline {
					p.Wait(time.Duration(rng.Intn(100)) * time.Millisecond)
					start := env.Now()
					if _, err := dev.Read(p, ch, lbn, 0, 512<<10); err != nil {
						return
					}
					lat.Observe(env.Now() - start)
				}
			})
		}
		env.RunUntil(deadline + 2*time.Second)
		env.Close()
		name := "FIFO (production)"
		if prioritize {
			name = "reads first"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f ms", float64(lat.Percentile(50))/1e6),
			fmt.Sprintf("%.0f ms", float64(lat.Percentile(99))/1e6),
			mb(float64(written) / deadline.Seconds()),
		})
	}
	return t
}

// FutureWorkPlacement implements the paper's other future-work item
// (§3.3.1, §5): a load-balance-aware scheduler so SDF reaches peak
// throughput with fewer concurrent requests. Twelve writers with
// random IDs either hash to channels (colliding and idling some) or
// go to the least-loaded channel.
func FutureWorkPlacement(opts Options) Table {
	t := Table{
		ID:     "Future work (sec 3.3.1)",
		Title:  "Write placement with limited concurrency (12 writers, random IDs)",
		Header: []string{"Placement", "Write throughput", "Busy channels (expected)"},
	}
	for _, policy := range []blocklayer.Placement{blocklayer.PlacementHash, blocklayer.PlacementLeastLoaded} {
		env := opts.newEnv()
		dev := newSDF(env, 16)
		lcfg := blocklayer.DefaultConfig()
		lcfg.Placement = policy
		layer := blocklayer.New(env, dev, lcfg)
		env.RunUntil(3 * time.Second) // pre-erase the pools
		rng := rand.New(rand.NewSource(19))
		warmup := env.Now() + opts.scale(time.Second)
		deadline := env.Now() + opts.scale(5*time.Second)
		m := newMeterCtx(env, warmup, deadline)
		for w := 0; w < 12; w++ {
			m.loop("writer", func(p *sim.Proc) int {
				id := blocklayer.BlockID(rng.Uint64())
				if _, err := layer.Write(p, id, nil); err != nil {
					return -1
				}
				if err := layer.Free(p, id); err != nil {
					return -1
				}
				return layer.BlockSize()
			})
		}
		rate := m.rate()
		env.Close()
		name, busy := "hash (production)", "~10.5 of 44"
		if policy == blocklayer.PlacementLeastLoaded {
			name, busy = "least-loaded", "12 of 44"
		}
		t.Rows = append(t.Rows, []string{name, mb(rate), busy})
	}
	return t
}
