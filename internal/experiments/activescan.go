package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sdf/internal/sim"
)

// FutureWorkActiveScan evaluates "moving compute to the storage"
// (§2.1's unused FPGA headroom, §5, and the authors' Active SSD
// paper): a filtering scan runs either on the host (every byte crosses
// PCIe) or inside the channel engines (only matches cross PCIe), while
// a foreground 8 KB random-read service shares the device. In-storage
// filtering frees the PCIe link for the foreground traffic.
func FutureWorkActiveScan(opts Options) Table {
	t := Table{
		ID:     "Future work (sec 5, Active SSD)",
		Title:  "Filtered full-device scan (5% selectivity) beside 8 KB foreground reads",
		Header: []string{"Scan location", "Foreground reads", "Scan rate (flash)", "PCIe bytes for scan"},
		Notes: []string{
			"the flash-side cost of the scan is identical; in-storage filtering moves 20x fewer bytes to the host",
		},
	}
	const selectivity = 0.05
	for _, inStorage := range []bool{false, true} {
		env := opts.newEnv()
		dev := newSDF(env, 16)
		warmup := opts.scale(time.Second)
		deadline := opts.scale(4 * time.Second)
		fg := newMeterCtx(env, warmup, deadline)
		scan := newMeterCtx(env, warmup, deadline)
		var scanPCIe int64
		rng := rand.New(rand.NewSource(23))
		pages := dev.BlockSize() / dev.PageSize()
		for ch := 0; ch < dev.Channels(); ch++ {
			ch := ch
			// Setup plus foreground reader.
			wrote := false
			fg.loop("fg", func(p *sim.Proc) int {
				if !wrote {
					for lbn := 0; lbn < 2; lbn++ {
						if err := dev.EraseWrite(p, ch, lbn, nil); err != nil {
							return -1
						}
					}
					wrote = true
					return 0
				}
				off := rng.Intn(pages) * dev.PageSize()
				if _, err := dev.Read(p, ch, 0, off, dev.PageSize()); err != nil {
					return -1
				}
				return dev.PageSize()
			})
			// Scanner over block 1 of the same channel.
			started := false
			scan.loop("scan", func(p *sim.Proc) int {
				if !started {
					p.Wait(time.Second) // let setup writes land
					started = true
					return 0
				}
				if inStorage {
					matched, err := dev.ScanFilter(p, ch, 1, selectivity)
					if err != nil {
						return -1
					}
					scanPCIe += int64(matched)
				} else {
					if _, err := dev.Read(p, ch, 1, 0, dev.BlockSize()); err != nil {
						return -1
					}
					scanPCIe += int64(dev.BlockSize())
				}
				return dev.BlockSize()
			})
		}
		fgRate := fg.rate()
		scanRate := scan.rate()
		env.Close()
		name := "host-side"
		if inStorage {
			name = "in-storage (channel FPGA)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			gb(fgRate),
			gb(scanRate),
			fmt.Sprintf("%d MiB", scanPCIe>>20),
		})
	}
	return t
}
