package experiments

import "strings"

// Entry is one runnable experiment of the suite.
type Entry struct {
	Name string
	Desc string
	Run  func(Options) Table
}

// Registry returns the full experiment suite in canonical order — the
// order sdfbench runs and prints them. Harnesses must treat the
// returned slice as read-only.
func Registry() []Entry {
	return []Entry{
		{"table1", "commodity SSD raw vs measured bandwidth", Table1},
		{"figure1", "random-write throughput vs over-provisioning", Figure1},
		{"table4", "device throughput by request size", Table4},
		{"figure7", "SDF channel scaling", Figure7},
		{"figure8", "write latency traces", Figure8},
		{"figure10", "one slice, batched 512 KB reads", Figure10},
		{"figure11", "4/8 slices, batched 512 KB reads", Figure11},
		{"figure12", "request size x slice count at batch 44", Figure12},
		{"figure13", "sequential scan vs slice count", Figure13},
		{"figure14", "write + compaction throughput", Figure14},
		{"stack", "kernel vs user-space I/O path cost", SoftwareStack},
		{"erase", "SDF aggregate erase throughput", EraseThroughput},
		{"stripe", "ablation: striping unit", AblationStripeUnit},
		{"buffer", "ablation: DRAM write buffer", AblationWriteBuffer},
		{"erasesched", "ablation: erase scheduling", AblationEraseScheduling},
		{"sdfop", "ablation: over-provisioning on SDF", AblationSDFOverProvision},
		{"interrupts", "ablation: interrupt merging", AblationInterruptMerging},
		{"parity", "ablation: parity channels", AblationParity},
		{"staticwl", "ablation: static wear leveling", AblationStaticWL},
		{"readprio", "future work: reads over writes/erases", FutureWorkReadPriority},
		{"placement", "future work: load-balanced write placement", FutureWorkPlacement},
		{"activescan", "future work: in-storage filtered scan", FutureWorkActiveScan},
		{"faults", "availability under injected faults", Faults},
		{"recovery", "mount-time recovery scan vs fill level", Recovery},
		{"codesign", "deadline-aware erase/write co-scheduling", CoDesign},
	}
}

// Lookup finds a registry entry by case-insensitive name.
func Lookup(name string) (Entry, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return Entry{}, false
}
