package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// codesignObs fetches the CoDesign observability payload or fails.
func codesignObs(t *testing.T, tab Table) *Observability {
	t.Helper()
	if tab.Observability == nil {
		t.Fatal("CoDesign with Options.Metrics produced no observability payload")
	}
	return tab.Observability
}

// TestCoDesignSeparation checks the experiment's headline claims at
// equal offered load (the acceptance bar for the co-scheduling work):
// coordination measurably improves the SDF read tail, throughput stays
// matched across the compared clusters, the protocol never falls back
// to forced erases in the steady-state run, and the chaos stage loses
// no acknowledged data.
func TestCoDesignSeparation(t *testing.T) {
	tab := CoDesign(Options{Quick: true})
	m := tab.Metrics
	need := []string{
		"coord.p99_ms", "nocoord.p99_ms", "gen3.p99_ms",
		"coord.reads_per_s", "nocoord.reads_per_s", "gen3.reads_per_s",
		"coord.window_grants", "coord.window_deprioritized", "coord.forced",
		"chaos.lost", "chaos.floor", "chaos.best_effort",
	}
	for _, k := range need {
		if _, ok := m[k]; !ok {
			t.Fatalf("table is missing metric %q (have %d metrics)", k, len(m))
		}
	}
	if m["coord.p99_ms"] >= m["nocoord.p99_ms"] {
		t.Errorf("coordination did not improve read p99: coord %.3fms vs nocoord %.3fms",
			m["coord.p99_ms"], m["nocoord.p99_ms"])
	}
	// Open-loop paced readers: an apples-to-apples tail comparison is
	// only valid when all clusters absorbed the same read rate.
	base := m["coord.reads_per_s"]
	for _, k := range []string{"nocoord.reads_per_s", "gen3.reads_per_s"} {
		if skew := math.Abs(m[k]-base) / base; skew > 0.15 {
			t.Errorf("%s=%.0f skews %.0f%% from coord=%.0f — tails are not comparable",
				k, m[k], skew*100, base)
		}
	}
	if m["coord.window_grants"] == 0 {
		t.Error("coordinator granted no erase windows — the mechanism never engaged")
	}
	if m["coord.window_deprioritized"] == 0 {
		t.Error("no reads were routed around erase windows")
	}
	if m["coord.forced"] != 0 {
		t.Errorf("%.0f forced erases in the steady-state run: the window rotation is starving members", m["coord.forced"])
	}
	if m["chaos.lost"] != 0 {
		t.Errorf("chaos stage lost %.0f acknowledged reads", m["chaos.lost"])
	}
	if m["chaos.floor"] <= 0 {
		t.Errorf("chaos availability floor %.0f: the cluster went fully dark", m["chaos.floor"])
	}
	if m["chaos.best_effort"] == 0 {
		t.Error("chaos never degraded admission to best-effort despite replica kills")
	}
}

// TestCoDesignObservabilityDeterministic reruns the experiment with
// the metrics pipeline on and requires byte-identical exports — the
// same contract make codesign-smoke enforces through sdfbench.
func TestCoDesignObservabilityDeterministic(t *testing.T) {
	opts := Options{Quick: true, Metrics: true}
	a := codesignObs(t, CoDesign(opts))
	b := codesignObs(t, CoDesign(opts))
	if a.SnapshotSHA256 != b.SnapshotSHA256 {
		t.Errorf("snapshot hash changed across reruns: %s vs %s", a.SnapshotSHA256, b.SnapshotSHA256)
	}
	if a.SeriesSHA256 != b.SeriesSHA256 {
		t.Errorf("series hash changed across reruns: %s vs %s", a.SeriesSHA256, b.SeriesSHA256)
	}
	if string(a.Snapshot) != string(b.Snapshot) {
		t.Error("prometheus snapshots differ byte-for-byte across reruns")
	}
	if string(a.Series) != string(b.Series) {
		t.Error("series JSONL differs byte-for-byte across reruns")
	}
	if len(a.SLO) == 0 || len(a.SLO) != len(b.SLO) {
		t.Fatalf("SLO report lengths: %d vs %d", len(a.SLO), len(b.SLO))
	}
	for i := range a.SLO {
		if a.SLO[i] != b.SLO[i] {
			t.Errorf("SLO result %d changed across reruns:\n  %v\n  %v", i, a.SLO[i], b.SLO[i])
		}
	}
	if a.Alerts != b.Alerts {
		t.Errorf("alert counts differ: %d vs %d", a.Alerts, b.Alerts)
	}
	if !strings.Contains(string(a.Snapshot), "cluster_admission_delayed_writes_total") {
		t.Error("snapshot is missing cluster_admission_delayed_writes_total")
	}
	if !strings.Contains(string(a.Series), "cluster_read_latency_seconds") {
		t.Error("series JSONL is missing the read-latency histogram")
	}
}

// TestCoDesignUnderParallelRunner runs CoDesign alone and alongside
// other experiments on a worker pool; its observability hashes must
// not depend on scheduling neighbors.
func TestCoDesignUnderParallelRunner(t *testing.T) {
	var mu sync.Mutex
	var snaps, series []string
	entry := Entry{Name: "codesign", Run: func(o Options) Table {
		o.Metrics = true
		tab := CoDesign(o)
		obs := codesignObs(t, tab)
		mu.Lock()
		snaps = append(snaps, obs.SnapshotSHA256)
		series = append(series, obs.SeriesSHA256)
		mu.Unlock()
		return tab
	}}
	others := subsetEntries(t)[:3]
	opts := Options{Quick: true}
	RunAll([]Entry{entry}, opts, 1)
	RunAll(append([]Entry{entry}, others...), opts, 4)
	if len(snaps) != 2 {
		t.Fatalf("expected 2 metered runs, got %d", len(snaps))
	}
	if snaps[0] != snaps[1] {
		t.Errorf("snapshot hash changed under the parallel runner: %s vs %s", snaps[0], snaps[1])
	}
	if series[0] != series[1] {
		t.Errorf("series hash changed under the parallel runner: %s vs %s", series[0], series[1])
	}
}
