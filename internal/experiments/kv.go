package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/rpcnet"
	"sdf/internal/sim"
	"sdf/internal/ssd"
	"sdf/internal/workload"
)

// deviceKind selects the storage node's device for the production
// experiments.
type deviceKind int

const (
	devSDF deviceKind = iota
	devGen3
	devIntel
)

func (d deviceKind) String() string {
	switch d {
	case devSDF:
		return "Baidu SDF"
	case devGen3:
		return "Huawei Gen3"
	default:
		return "Intel 320"
	}
}

// kvNode is one storage server: a device, a CCDB store on it, and a
// set of slices (§2.4). All slices share the device, as in production.
type kvNode struct {
	env    *sim.Env
	kind   deviceKind
	sdf    *core.Device
	ssd    *ssd.SSD
	store  ccdb.Storage
	slices []*ccdb.Slice
	keys   []*workload.Keys
}

// newKVNode builds the node and preloads every slice with
// patchesPerSlice patches of valueSize values. Read-only experiments
// pass a large runsPerTier so the preload settles without compaction
// churn; write experiments use the production fan-in.
func newKVNode(env *sim.Env, kind deviceKind, nSlices, patchesPerSlice, valueSize, runsPerTier int) *kvNode {
	n := &kvNode{env: env, kind: kind}
	switch kind {
	case devSDF:
		// Enough logical blocks for the dataset plus churn.
		blocks := (patchesPerSlice*nSlices*2)/44 + 8
		n.sdf = newSDF(env, blocks+16)
		n.store = newSDFStoreFrom(env, n.sdf)
	case devGen3:
		blocks := (patchesPerSlice*nSlices*2*4)/(40*4) + 10
		n.ssd = newSSD(env, ssd.HuaweiGen3(0.25).ScaleBlocks(blocks+8))
		n.store = ccdb.NewSSDStore(n.ssd, 8<<20)
	case devIntel:
		blocks := (patchesPerSlice*nSlices*2*4)/(9*4) + 10
		n.ssd = newSSD(env, ssd.Intel320(0.20).ScaleBlocks(blocks+8))
		n.store = ccdb.NewSSDStore(n.ssd, 8<<20)
	}
	sliceCfg := ccdb.DefaultConfig()
	if runsPerTier > 0 {
		sliceCfg.RunsPerTier = runsPerTier
	}
	for i := 0; i < nSlices; i++ {
		n.slices = append(n.slices, ccdb.NewSlice(env, n.store, sliceCfg))
		perPatch := 1
		if valueSize > 0 {
			perPatch = (8 << 20) / (valueSize + 64)
		}
		n.keys = append(n.keys, workload.NewKeys(fmt.Sprintf("s%02d", i),
			patchesPerSlice*perPatch, int64(i+1)))
	}
	if patchesPerSlice > 0 && valueSize > 0 {
		boot := env.Go("preload", func(p *sim.Proc) {
			if err := workload.PreloadParallel(p, env, n.slices, n.keys, valueSize); err != nil {
				panic(err)
			}
		})
		env.RunUntilDone(boot)
	}
	return n
}

// newSDFStoreFrom wires an existing SDF device through the block layer.
func newSDFStoreFrom(env *sim.Env, dev *core.Device) *ccdb.SDFStore {
	return ccdb.NewSDFStore(blocklayerNew(env, dev))
}

// counters returns cumulative (hostRead, hostWrite) bytes at the
// storage node's device.
func (n *kvNode) counters() (read, written int64) {
	if n.sdf != nil {
		r, w, _ := n.sdf.Counters()
		return r, w
	}
	st := n.ssd.Stats()
	return st.HostReadBytes, st.HostWriteBytes
}

// kvReadRate measures batched random-read throughput: one client per
// slice issues synchronous requests of `batch` sub-reads of valueSize
// values (§3.3.1, Figures 10-12).
func kvReadRate(opts Options, kind deviceKind, nSlices, batch, valueSize int) float64 {
	env := opts.newEnv()
	// Every slice's key range spans all 44 channels, as it would after
	// any real accumulation of data (consecutive patch IDs go to
	// consecutive channels).
	const patchesPerSlice = 44
	node := newKVNode(env, kind, nSlices, patchesPerSlice, valueSize, 1<<20)
	net := rpcnet.NewNetwork(env, rpcnet.DefaultConfig())
	start := env.Now()
	warmup := start + opts.scale(500*time.Millisecond)
	deadline := start + opts.scale(2500*time.Millisecond)
	m := newMeterCtx(env, warmup, deadline)
	for i, slice := range node.slices {
		slice := slice
		keys := node.keys[i]
		client := net.NewClient()
		m.loop("client", func(p *sim.Proc) int {
			subs := make([]rpcnet.SubRequest, batch)
			for j := range subs {
				key := keys.Pick()
				subs[j] = func(sp *sim.Proc) int {
					_, size, err := slice.Get(sp, key)
					if err != nil {
						return 0
					}
					return size
				}
			}
			return client.Call(p, 256, subs)
		})
	}
	rate := m.rate()
	env.Close()
	return rate
}

// Figure10 regenerates Figure 10: one slice, random 512 KB reads,
// batch size swept — SDF needs batched (concurrent) sub-requests to
// reach its channels, while the Gen3's 8 KB striping parallelizes even
// a single request.
func Figure10(opts Options) Table {
	t := Table{
		ID:     "Figure 10",
		Title:  "One slice, random 512 KB reads: throughput vs batch size",
		Header: []string{"Batch", "Baidu SDF", "Huawei Gen3"},
		Notes: []string{
			"paper: SDF grows 38 -> ~740 MB/s; Gen3 starts at 245 MB/s and plateaus near ~700 MB/s",
			"crossover: SDF overtakes Gen3 once the batch reaches ~32",
		},
	}
	for _, batch := range []int{1, 4, 8, 16, 32, 44} {
		sdfRate := kvReadRate(opts, devSDF, 1, batch, 512<<10)
		gen3Rate := kvReadRate(opts, devGen3, 1, batch, 512<<10)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch), mb(sdfRate), mb(gen3Rate),
		})
	}
	return t
}

// Figure11 regenerates Figure 11: four and eight slices with the same
// batch sweep — slice concurrency multiplies SDF's usable channels.
func Figure11(opts Options) Table {
	t := Table{
		ID:     "Figure 11",
		Title:  "Four/eight slices, random 512 KB reads: throughput vs batch size",
		Header: []string{"Batch", "SDF 4 slices", "SDF 8 slices", "Gen3 4 slices", "Gen3 8 slices"},
		Notes: []string{
			"paper: SDF 8-slice throughput reaches ~1.5 GB/s; Gen3 curves for 4 and 8 slices coincide near ~700 MB/s",
		},
	}
	for _, batch := range []int{1, 4, 8, 16, 32, 44} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", batch),
			mb(kvReadRate(opts, devSDF, 4, batch, 512<<10)),
			mb(kvReadRate(opts, devSDF, 8, batch, 512<<10)),
			mb(kvReadRate(opts, devGen3, 4, batch, 512<<10)),
			mb(kvReadRate(opts, devGen3, 8, batch, 512<<10)),
		})
	}
	return t
}

// Figure12 regenerates Figure 12: batch fixed at 44, request size
// (web pages / thumbnails / images) crossed with slice count.
func Figure12(opts Options) Table {
	t := Table{
		ID:     "Figure 12",
		Title:  "Batch 44: throughput by request size and slice count",
		Header: []string{"Config", "32 KB", "128 KB", "512 KB"},
		Notes: []string{
			"paper: with >= 4 slices SDF serves small and large requests at high throughput; 1 slice is concurrency-limited",
		},
	}
	for _, kind := range []deviceKind{devGen3, devSDF} {
		for _, slices := range []int{1, 4, 8} {
			row := []string{fmt.Sprintf("%s, %d slice(s)", kind, slices)}
			for _, size := range []int{32 << 10, 128 << 10, 512 << 10} {
				row = append(row, mb(kvReadRate(opts, kind, slices, 44, size)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Figure13 regenerates Figure 13: inverted-index construction —
// every requested slice scans its whole key range with six threads of
// synchronous sequential reads (§3.3.2).
func Figure13(opts Options) Table {
	t := Table{
		ID:     "Figure 13",
		Title:  "Sequential scan throughput vs slice count (6 threads/slice)",
		Header: []string{"Slices", "Baidu SDF", "Huawei Gen3", "Intel 320"},
		Notes: []string{
			"paper: SDF scales to ~1.5 GB/s at 16 slices; Gen3 stays flat/declining near ~650 MB/s; Intel 320 constant ~200 MB/s",
		},
	}
	patches := 12
	if opts.Quick {
		patches = 8
	}
	for _, slices := range []int{1, 2, 4, 8, 16, 32} {
		row := []string{fmt.Sprintf("%d", slices)}
		for _, kind := range []deviceKind{devSDF, devGen3, devIntel} {
			row = append(row, mb(scanRate(opts, kind, slices, patches)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// scanRate runs one full scan of every slice concurrently and returns
// total bytes / completion time.
func scanRate(opts Options, kind deviceKind, nSlices, patchesPerSlice int) float64 {
	env := opts.newEnv()
	node := newKVNode(env, kind, nSlices, patchesPerSlice, 512<<10, 1<<20)
	start := env.Now()
	var total int64
	var workers []*sim.Proc
	for _, slice := range node.slices {
		slice := slice
		w := env.Go("scanner", func(p *sim.Proc) {
			n, err := slice.Scan(p, 6)
			if err != nil {
				panic(err)
			}
			total += n
		})
		workers = append(workers, w)
	}
	waiter := env.Go("wait", func(p *sim.Proc) {
		for _, w := range workers {
			p.Join(w)
		}
	})
	env.RunUntilDone(waiter)
	elapsed := env.Now() - start
	env.Close()
	if elapsed <= 0 {
		return 0
	}
	return float64(total) / elapsed.Seconds()
}

// Figure14 regenerates Figure 14: one writer client per slice streams
// KV writes (values 100 KB-1 MB) while compaction generates internal
// reads; device-level read and write throughput are reported per
// slice count (§3.3.3).
func Figure14(opts Options) Table {
	t := Table{
		ID:     "Figure 14",
		Title:  "Write workload with compaction: device throughput vs slice count",
		Header: []string{"Slices", "SDF write", "SDF read", "Gen3 write", "Gen3 read"},
		Notes: []string{
			"paper: SDF write+read throughput grows to ~1 GB/s at 16 slices; Gen3 peaks early and its compaction reads starve as slices increase",
		},
	}
	for _, slices := range []int{1, 2, 4, 8, 16, 32} {
		sw, sr := writeCompactionRates(opts, devSDF, slices)
		gw, gr := writeCompactionRates(opts, devGen3, slices)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", slices), mb(sw), mb(sr), mb(gw), mb(gr),
		})
	}
	return t
}

// writeCompactionRates measures device-level write and read rates
// while writer clients stream Puts through CCDB.
func writeCompactionRates(opts Options, kind deviceKind, nSlices int) (write, read float64) {
	env := opts.newEnv()
	// Empty slices, but a device sized for several seconds of write
	// churn plus compaction outputs (~16 GB).
	node := newKVNode(env, kind, nSlices, 2000/nSlices, 0, 0)
	net := rpcnet.NewNetwork(env, rpcnet.DefaultConfig())
	sizes := workload.PaperWriteMix()
	rng := rand.New(rand.NewSource(17))
	warmup := opts.scale(2 * time.Second)
	deadline := opts.scale(6 * time.Second)
	for i, slice := range node.slices {
		slice := slice
		i := i
		client := net.NewClient()
		seq := 0
		env.Go("writer", func(p *sim.Proc) {
			for env.Now() < deadline {
				size := sizes(rng)
				key := fmt.Sprintf("w%02d-%09d", i, seq)
				seq++
				client.Call(p, size, []rpcnet.SubRequest{func(sp *sim.Proc) int {
					if err := slice.Put(sp, key, nil, size); err != nil {
						panic(err)
					}
					return 64
				}})
			}
		})
	}
	env.RunUntil(warmup)
	r0, w0 := node.counters()
	env.RunUntil(deadline)
	r1, w1 := node.counters()
	env.Close()
	window := (deadline - warmup).Seconds()
	return float64(w1-w0) / window, float64(r1-r0) / window
}
