package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/cluster"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// DefaultAvailabilityPlan is the fault schedule the availability
// experiment runs when no plan file is supplied: a permanent channel
// death, a firmware-style channel stall, a node crash with restart,
// and a NIC brown-out, spread over a 2 s virtual horizon.
func DefaultAvailabilityPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 1,
		Injections: []fault.Injection{
			{At: 400 * time.Millisecond, Kind: fault.ChannelKill, Target: "r1/chan2"},
			// The hang hits the first replica in read order, so stalled
			// reads exercise the hedge path (HedgeAfter < hang length).
			{At: 700 * time.Millisecond, Kind: fault.ChannelHang, Target: "r1/chan0", Duration: 80 * time.Millisecond},
			{At: 900 * time.Millisecond, Kind: fault.NodeCrash, Target: "r2", Duration: 300 * time.Millisecond},
			{At: 1500 * time.Millisecond, Kind: fault.LinkDegrade, Target: "r3/nic", Duration: 200 * time.Millisecond, Factor: 0.2},
		},
	}
}

// availHorizon is the virtual length of one availability run. It is
// not scaled by Quick: the fault plan's instants are absolute, so the
// horizon must cover them; Quick instead shrinks the dataset and the
// client count.
const availHorizon = 2 * time.Second

// availWindow is the bandwidth-meter bucket width.
const availWindow = 100 * time.Millisecond

// availResult is one cluster's measured ride through the fault plan.
type availResult struct {
	windows  []float64 // delivered bytes per availWindow bucket
	healthy  float64   // mean window rate before the first fault, bytes/s
	floor    float64   // worst window rate, bytes/s
	tail     float64   // mean rate of the last three windows, bytes/s
	recovery time.Duration
	p99      time.Duration
	stats    cluster.Stats
}

// nodeOnly strips a plan down to the injections a parity-protected
// conventional device can express: whole-node and NIC faults. Channel
// and PCIe-level targets assume SDF's exposed geometry.
func nodeOnly(pl *fault.Plan) *fault.Plan {
	out := &fault.Plan{Seed: pl.Seed}
	for _, in := range pl.Injections {
		if strings.Contains(in.Target, "/chan") || strings.Contains(in.Target, "/pcie") {
			continue
		}
		out.Injections = append(out.Injections, in)
	}
	return out
}

// availabilityRun drives one 3-replica cluster through the plan:
// closed-loop readers and a writer run for the horizon while the
// injector fires, then async repairs drain and the meters settle.
func availabilityRun(opts Options, kind deviceKind, pl *fault.Plan) availResult {
	env := opts.newEnv()
	if opts.Tracer != nil {
		opts.Tracer.SetDev("faults/" + map[deviceKind]string{devSDF: "sdf", devGen3: "gen3"}[kind])
		env.SetTracer(opts.Tracer)
	}
	inj := fault.NewInjector(env)

	names := []string{"r1", "r2", "r3"}
	var nodes []*cluster.Node
	var slices []*ccdb.Slice
	for _, name := range names {
		var slice *ccdb.Slice
		switch kind {
		case devSDF:
			// Full 44-channel geometry (same as the Gen3 profile's
			// channel count) with small erase blocks so the dataset's
			// patches stripe across every channel — a killed channel
			// then takes out a visible slice of one replica.
			cfg := core.DefaultConfig()
			cfg.Channel.Nand.BlocksPerPlane = 24
			cfg.Channel.Nand.PagesPerBlock = 16
			cfg.Channel.SparePerPlane = 2
			dev, err := core.New(env, cfg)
			if err != nil {
				panic(err)
			}
			fault.AttachDevice(inj, name, dev)
			store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
			slice = ccdb.NewSlice(env, store, ccdb.Config{PatchBytes: store.BlockSize(), RunsPerTier: 8})
		case devGen3:
			// The conventional baseline masks channel-level faults with
			// internal parity (and pays that capacity/bandwidth tax
			// always); only node-level faults reach it.
			dev := newSSD(env, ssd.HuaweiGen3(0.25).ScaleBlocks(24))
			slice = ccdb.NewSlice(env, ccdb.NewSSDStore(dev, 8<<20), ccdb.DefaultConfig())
		}
		nodes = append(nodes, cluster.NewNode(env, name, slice))
		slices = append(slices, slice)
	}
	group, err := cluster.NewGroup(env, cluster.DefaultConfig(), nodes...)
	if err != nil {
		panic(err)
	}
	fault.AttachGroup(inj, group)
	if kind != devSDF {
		pl = nodeOnly(pl)
	}

	// Enough keys that the flushed patches cover every channel (one
	// 512 KB patch holds eight 64 KB values).
	nKeys, nReaders := 384, 4
	if opts.Quick {
		nKeys, nReaders = 192, 2
	}
	const valueSize = 64 << 10
	keys := make([]string, nKeys)
	boot := env.Go("preload", func(p *sim.Proc) {
		for i := range keys {
			keys[i] = fmt.Sprintf("obj%03d", i)
			if err := group.Put(p, keys[i], nil, valueSize); err != nil {
				panic(err)
			}
		}
		// Push the dataset out of the memtables so reads exercise the
		// flash path the faults will hit.
		for _, s := range slices {
			if err := s.Flush(p); err != nil {
				panic(err)
			}
		}
	})
	env.RunUntilDone(boot)

	// The measured run starts after the preload settles: plan times and
	// bandwidth windows are both relative to t0 (Arm schedules
	// injections at their offsets from now).
	t0 := env.Now()
	if err := inj.Arm(pl); err != nil {
		panic(err)
	}
	nWindows := int(availHorizon / availWindow)
	windows := make([]float64, nWindows)
	var latencies []time.Duration
	for r := 0; r < nReaders; r++ {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		env.Go("reader", func(p *sim.Proc) {
			for env.Now() < t0+availHorizon {
				key := keys[rng.Intn(len(keys))]
				start := env.Now()
				_, size, err := group.Get(p, key)
				if err != nil {
					// The smoke test asserts Stats().Lost == 0; keep
					// looping so one failure can't stall the meter.
					continue
				}
				latencies = append(latencies, env.Now()-start)
				if w := int((start - t0) / availWindow); w < nWindows {
					windows[w] += float64(size)
				}
			}
		})
	}
	// One writer stream keeps divergence/repair paths warm during the
	// faults (puts against a crashed node mark keys dirty).
	wseq := 0
	env.Go("writer", func(p *sim.Proc) {
		for env.Now() < t0+availHorizon {
			key := fmt.Sprintf("live%04d", wseq)
			wseq++
			group.Put(p, key, nil, valueSize)
			p.Wait(25 * time.Millisecond)
		}
	})

	// Drain reverts, repairs, and re-replication with a bounded horizon:
	// the conventional-SSD baseline runs periodic maintenance loops that
	// never go idle, so a run-until-quiescent drain would not return.
	env.RunUntil(t0 + availHorizon + 2*time.Second)
	res := availResult{stats: group.Stats()}

	perSec := func(bytes float64) float64 { return bytes / availWindow.Seconds() }
	firstFault := availHorizon
	lastFaultEnd := time.Duration(0)
	for _, in := range pl.Injections {
		if in.At < firstFault {
			firstFault = in.At
		}
		if end := in.At + in.Duration; end > lastFaultEnd {
			lastFaultEnd = end
		}
	}
	res.windows = windows
	res.floor = -1
	var healthySum float64
	healthyN := 0
	for w, b := range windows {
		start := time.Duration(w) * availWindow
		if start+availWindow <= firstFault && w > 0 { // skip the cold-start window
			healthySum += b
			healthyN++
		}
		if res.floor < 0 || perSec(b) < res.floor {
			res.floor = perSec(b)
		}
	}
	if healthyN > 0 {
		res.healthy = perSec(healthySum / float64(healthyN))
	}
	tailN := 3
	if tailN > nWindows {
		tailN = nWindows
	}
	var tailSum float64
	for _, b := range windows[nWindows-tailN:] {
		tailSum += b
	}
	res.tail = perSec(tailSum / float64(tailN))

	// Recovery: virtual time from the end of the last fault until the
	// first window whose delivered rate is back within 5% of the
	// degraded-capacity steady state (the tail mean).
	res.recovery = -1
	for w := 0; w < nWindows; w++ {
		start := time.Duration(w) * availWindow
		if start+availWindow <= lastFaultEnd {
			continue
		}
		if perSec(windows[w]) >= 0.95*res.tail {
			res.recovery = start + availWindow - lastFaultEnd
			break
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		res.p99 = latencies[len(latencies)*99/100]
	}
	env.Close()
	return res
}

// Faults regenerates the availability experiment the paper's design
// implies but never plots: SDF drops cross-channel parity and relies
// on CCDB's 3-way replication for fault tolerance (§2.2), so the
// system — not the device — must ride out channel deaths, firmware
// stalls, node crashes, and NIC brown-outs. A fault plan (the default
// above, or one supplied via Options.FaultPlan / sdfbench -faults)
// fires against a 3-replica cluster under closed-loop load; the same
// node-level faults hit a parity-protected Gen3 baseline, whose
// internal redundancy masks channel faults but taxes every byte.
func Faults(opts Options) Table {
	pl := opts.FaultPlan
	if pl == nil {
		pl = DefaultAvailabilityPlan()
	}
	t := Table{
		ID:     "Faults",
		Title:  "Availability under injected faults: 3-way replication vs device parity",
		Header: []string{"Metric", "Baidu SDF (no parity, RF=3)", "Huawei Gen3 (parity, RF=3)"},
		Notes: []string{
			fmt.Sprintf("plan: seed %d, %d injections over %v (channel/PCIe faults reach only SDF; parity masks them on Gen3)",
				pl.Seed, len(pl.Injections), availHorizon),
			"recovery = virtual time from last fault end until delivered bandwidth holds within 5% of the degraded steady state",
			"absolute rates differ by design: unbatched 64 KB reads serialize inside one SDF channel (Figure 10's batch-1 point) while the Gen3 stripes them",
		},
	}
	sdf := availabilityRun(opts, devSDF, pl)
	gen3 := availabilityRun(opts, devGen3, pl)

	dur := func(d time.Duration) string {
		if d < 0 {
			return "not recovered"
		}
		return d.String()
	}
	rows := []struct {
		label    string
		sdf, g3  string
		key      string
		vs, vg   float64
	}{
		{"healthy bandwidth", mb(sdf.healthy), mb(gen3.healthy), "healthy_bw", sdf.healthy, gen3.healthy},
		{"worst window", mb(sdf.floor), mb(gen3.floor), "floor_bw", sdf.floor, gen3.floor},
		{"steady state after faults", mb(sdf.tail), mb(gen3.tail), "tail_bw", sdf.tail, gen3.tail},
		{"recovery after last fault", dur(sdf.recovery), dur(gen3.recovery), "recovery_ms", float64(sdf.recovery.Milliseconds()), float64(gen3.recovery.Milliseconds())},
		{"read p99", sdf.p99.String(), gen3.p99.String(), "p99_ms", float64(sdf.p99.Microseconds()) / 1000, float64(gen3.p99.Microseconds()) / 1000},
		{"failovers / hedges", fmt.Sprintf("%d / %d", sdf.stats.Failovers, sdf.stats.Hedges), fmt.Sprintf("%d / %d", gen3.stats.Failovers, gen3.stats.Hedges), "failovers", float64(sdf.stats.Failovers), float64(gen3.stats.Failovers)},
		{"repairs / re-replications", fmt.Sprintf("%d / %d", sdf.stats.Repairs, sdf.stats.Rereplications), fmt.Sprintf("%d / %d", gen3.stats.Repairs, gen3.stats.Rereplications), "repairs", float64(sdf.stats.Repairs), float64(gen3.stats.Repairs)},
		{"lost reads", fmt.Sprintf("%d", sdf.stats.Lost), fmt.Sprintf("%d", gen3.stats.Lost), "lost", float64(sdf.stats.Lost), float64(gen3.stats.Lost)},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.label, r.sdf, r.g3})
		t.metric("sdf."+r.key, r.vs)
		t.metric("gen3."+r.key, r.vg)
	}
	return t
}
