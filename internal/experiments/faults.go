package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/cluster"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// DefaultAvailabilityPlan is the fault schedule the availability
// experiment runs when no plan file is supplied: a permanent channel
// death, a firmware-style channel stall, a node crash with restart,
// and a NIC brown-out, spread over a 2 s virtual horizon.
func DefaultAvailabilityPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 1,
		Injections: []fault.Injection{
			{At: 400 * time.Millisecond, Kind: fault.ChannelKill, Target: "r1/chan2"},
			// The hang hits the first replica in read order, so stalled
			// reads exercise the hedge path (HedgeAfter < hang length).
			{At: 700 * time.Millisecond, Kind: fault.ChannelHang, Target: "r1/chan0", Duration: 80 * time.Millisecond},
			// A power cut instead of a clean crash: the restart drives
			// the full remount path (device recovery scan, block-layer
			// rebuild, journal replay) under the chaos plan.
			{At: 900 * time.Millisecond, Kind: fault.Powerloss, Target: "r2", Duration: 300 * time.Millisecond},
			{At: 1500 * time.Millisecond, Kind: fault.LinkDegrade, Target: "r3/nic", Duration: 200 * time.Millisecond, Factor: 0.2},
		},
	}
}

// availHorizon is the virtual length of one availability run. It is
// not scaled by Quick: the fault plan's instants are absolute, so the
// horizon must cover them; Quick instead shrinks the dataset and the
// client count.
const availHorizon = 2 * time.Second

// availWindow is the bandwidth-meter bucket width.
const availWindow = 100 * time.Millisecond

// availResult is one cluster's measured ride through the fault plan.
type availResult struct {
	windows  []float64 // delivered bytes per availWindow bucket
	healthy  float64   // mean window rate before the first fault, bytes/s
	floor    float64   // worst window rate, bytes/s
	tail     float64   // mean rate of the last three windows, bytes/s
	recovery time.Duration
	p99      time.Duration
	stats    cluster.Stats

	// Observability pipeline state, populated when Options.Metrics.
	reg     *metrics.Registry
	sampler *metrics.Sampler
	slo     []metrics.ObjectiveResult
	alerts  int
}

// sloReadP99Threshold is the latency objective the availability runs
// are judged against: p99 of each 100 ms window at or under 1 ms.
// SDF meets it through replica failover; the parity baseline's
// degraded-mode stripe reconstruction (~3 ms per 8 KB read) does not.
const sloReadP99Threshold = 0.001 // seconds

// availObjectives declares the run's SLOs against the dev-labeled
// cluster series.
func availObjectives(devName string) []metrics.Objective {
	sid := func(name string) string { return fmt.Sprintf("%s{dev=%q}", name, devName) }
	return []metrics.Objective{
		// A 10% error budget absorbs the windows where an injected
		// fault is mid-flight (hedged reads wait HedgeAfter = 20 ms
		// before trying the next replica), but not a device that serves
		// degraded reads for the rest of the run.
		{Name: devName + "/read_p99", Kind: metrics.QuantileBelow,
			Metric: sid("cluster_read_latency_seconds"), Q: 0.99,
			Threshold: sloReadP99Threshold, Budget: 0.1},
		{Name: devName + "/no_lost_reads", Kind: metrics.AlwaysZero,
			Metric: sid("cluster_lost_reads_total")},
		// Availability floor: the cluster must keep serving reads at
		// 100/s through every fault window.
		{Name: devName + "/availability", Kind: metrics.RateAbove,
			Metric: sid("cluster_gets_total"), Threshold: 100, Budget: 0.1},
	}
}

// availabilityRun drives one 3-replica cluster through the plan:
// closed-loop readers and a writer run for the horizon while the
// injector fires, then async repairs drain and the meters settle.
func availabilityRun(opts Options, kind deviceKind, pl *fault.Plan) availResult {
	env := opts.newEnv()
	devName := map[deviceKind]string{devSDF: "sdf", devGen3: "gen3"}[kind]
	if opts.Tracer != nil {
		opts.Tracer.SetDev("faults/" + devName)
		env.SetTracer(opts.Tracer)
	}
	inj := fault.NewInjector(env)
	var reg *metrics.Registry
	if opts.Metrics {
		reg = metrics.NewRegistry()
	}
	devLabel := metrics.L("dev", devName)

	names := []string{"r1", "r2", "r3"}
	var nodes []*cluster.Node
	var slices []*ccdb.Slice
	for _, name := range names {
		var slice *ccdb.Slice
		var powerFail func()
		var powerRemount func(p *sim.Proc) (*ccdb.Slice, error)
		switch kind {
		case devSDF:
			// Full 44-channel geometry (same as the Gen3 profile's
			// channel count) with small erase blocks so the dataset's
			// patches stripe across every channel — a killed channel
			// then takes out a visible slice of one replica.
			cfg := core.DefaultConfig()
			cfg.Channel.Nand.BlocksPerPlane = 24
			cfg.Channel.Nand.PagesPerBlock = 16
			cfg.Channel.SparePerPlane = 2
			dev, err := core.New(env, cfg)
			if err != nil {
				panic(err)
			}
			fault.AttachDevice(inj, name, dev)
			bl := blocklayer.New(env, dev, blocklayer.DefaultConfig())
			store := ccdb.NewSDFStore(bl)
			// Fan-in high enough that the preloaded dataset never
			// compacts during the horizon: compaction rewrites every
			// patch with fresh placement, which would quietly move the
			// data off the channels the fault plan targets.
			journal := ccdb.NewJournal()
			sliceCfg := ccdb.Config{PatchBytes: store.BlockSize(), RunsPerTier: 64, Journal: journal}
			slice = ccdb.NewSlice(env, store, sliceCfg)
			dev.RegisterMetrics(reg, devLabel, metrics.L("node", name))
			bl.RegisterMetrics(reg, devLabel, metrics.L("node", name))
			// A powerloss injection against this node halts the journal
			// and freezes the media mid-operation; the restart then runs
			// the full remount path — device recovery scan, block-layer
			// rebuild, journal replay — inside the measured run.
			holder := dev
			devCfg := cfg
			powerFail = func() {
				holder.PowerLoss()
				journal.Halt()
			}
			powerRemount = func(p *sim.Proc) (*ccdb.Slice, error) {
				mounted, err := core.Mount(env, devCfg, holder.State())
				if err != nil {
					return nil, err
				}
				l, _, err := blocklayer.Mount(p, env, mounted, blocklayer.DefaultConfig())
				if err != nil {
					return nil, err
				}
				s, _, err := ccdb.MountSlice(p, env, ccdb.NewSDFStore(l), sliceCfg)
				if err != nil {
					return nil, err
				}
				holder = mounted
				return s, nil
			}
		case devGen3:
			// The conventional baseline masks channel-level faults with
			// internal parity, and pays the masking's real price: a
			// killed or hung channel puts its parity group into degraded
			// mode, where every read of a page stored there rebuilds
			// from the surviving stripe peers (fault.AttachSSD). The
			// device also runs in Figure 8's regime — warm-filled near
			// capacity, so flush traffic keeps background GC live under
			// the host reads. SDF pays neither tax by design: no parity
			// to rebuild from, no device GC to collide with.
			prof := ssd.HuaweiGen3(0.25).ScaleBlocks(12)
			prof.BufferBytes = 8 << 20
			dev := newSSD(env, prof)
			if err := dev.WarmFillRandom(1.0, 7); err != nil {
				panic(err)
			}
			fault.AttachSSD(inj, name, dev)
			slice = ccdb.NewSlice(env, ccdb.NewSSDStore(dev, 1<<20), ccdb.Config{PatchBytes: 1 << 20, RunsPerTier: 4})
			dev.RegisterMetrics(reg, devLabel, metrics.L("node", name))
		}
		slice.RegisterMetrics(reg, devLabel, metrics.L("node", name))
		node := cluster.NewNode(env, name, slice)
		if powerFail != nil {
			node.SetPowerHooks(powerFail, powerRemount)
		}
		nodes = append(nodes, node)
		slices = append(slices, slice)
	}
	group, err := cluster.NewGroup(env, cluster.DefaultConfig(), nodes...)
	if err != nil {
		panic(err)
	}
	fault.AttachGroup(inj, group)
	group.RegisterMetrics(reg, devLabel)
	inj.RegisterMetrics(reg, devLabel)

	// Page-sized values, enough keys that the flushed patches cover
	// every channel. Reads at the flash page size are the paper's
	// latency-SLO regime: SDF serves one channel-level page read,
	// while a degraded Gen3 read of the same size rebuilds a whole
	// parity stripe.
	nKeys, nReaders := 1536, 4
	if opts.Quick {
		nKeys, nReaders = 768, 2
	}
	const valueSize = 8 << 10
	keys := make([]string, nKeys)
	boot := env.Go("preload", func(p *sim.Proc) {
		for i := range keys {
			keys[i] = fmt.Sprintf("obj%03d", i)
			if err := group.Put(p, keys[i], nil, valueSize); err != nil {
				panic(err)
			}
		}
		// Push the dataset out of the memtables so reads exercise the
		// flash path the faults will hit.
		for _, s := range slices {
			if err := s.Flush(p); err != nil {
				panic(err)
			}
		}
	})
	env.RunUntilDone(boot)

	// The measured run starts after the preload settles: plan times and
	// bandwidth windows are both relative to t0 (Arm schedules
	// injections at their offsets from now).
	t0 := env.Now()
	if err := inj.Arm(pl); err != nil {
		panic(err)
	}
	// The observability pipeline starts with the measured run, not the
	// preload: sample instants and SLO windows are then at fixed
	// offsets from t0, byte-identical across seeded reruns.
	var sampler *metrics.Sampler
	var slo *metrics.SLO
	if opts.Metrics {
		sampler = metrics.NewSampler(env, reg, 10*time.Millisecond, 0)
		slo = metrics.NewSLO(env, reg, availWindow, availObjectives(devName)...)
		slo.SetDeadline(t0 + availHorizon)
	}
	nWindows := int(availHorizon / availWindow)
	windows := make([]float64, nWindows)
	var latencies []time.Duration
	for r := 0; r < nReaders; r++ {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		env.Go("reader", func(p *sim.Proc) {
			for env.Now() < t0+availHorizon {
				key := keys[rng.Intn(len(keys))]
				start := env.Now()
				_, size, err := group.Get(p, key)
				if err != nil {
					// The smoke test asserts Stats().Lost == 0; keep
					// looping so one failure can't stall the meter.
					continue
				}
				latencies = append(latencies, env.Now()-start)
				if w := int((start - t0) / availWindow); w < nWindows {
					windows[w] += float64(size)
				}
			}
		})
	}
	// One writer stream keeps divergence/repair paths warm during the
	// faults (puts against a crashed node mark keys dirty).
	wseq := 0
	env.Go("writer", func(p *sim.Proc) {
		for env.Now() < t0+availHorizon {
			key := fmt.Sprintf("live%04d", wseq)
			wseq++
			group.Put(p, key, nil, valueSize)
			p.Wait(25 * time.Millisecond)
		}
	})

	// Drain reverts, repairs, and re-replication with a bounded horizon:
	// the conventional-SSD baseline runs periodic maintenance loops that
	// never go idle, so a run-until-quiescent drain would not return.
	env.RunUntil(t0 + availHorizon + 2*time.Second)
	res := availResult{stats: group.Stats()}
	if opts.Metrics {
		res.reg = reg
		res.sampler = sampler
		res.slo = slo.Report()
		res.alerts = len(slo.Alerts())
	}

	perSec := func(bytes float64) float64 { return bytes / availWindow.Seconds() }
	firstFault := availHorizon
	lastFaultEnd := time.Duration(0)
	for _, in := range pl.Injections {
		if in.At < firstFault {
			firstFault = in.At
		}
		if end := in.At + in.Duration; end > lastFaultEnd {
			lastFaultEnd = end
		}
	}
	res.windows = windows
	res.floor = -1
	var healthySum float64
	healthyN := 0
	for w, b := range windows {
		start := time.Duration(w) * availWindow
		if start+availWindow <= firstFault && w > 0 { // skip the cold-start window
			healthySum += b
			healthyN++
		}
		if res.floor < 0 || perSec(b) < res.floor {
			res.floor = perSec(b)
		}
	}
	if healthyN > 0 {
		res.healthy = perSec(healthySum / float64(healthyN))
	}
	tailN := 3
	if tailN > nWindows {
		tailN = nWindows
	}
	var tailSum float64
	for _, b := range windows[nWindows-tailN:] {
		tailSum += b
	}
	res.tail = perSec(tailSum / float64(tailN))

	// Recovery: virtual time from the end of the last fault until the
	// first window whose delivered rate is back within 5% of the
	// degraded-capacity steady state (the tail mean).
	res.recovery = -1
	for w := 0; w < nWindows; w++ {
		start := time.Duration(w) * availWindow
		if start+availWindow <= lastFaultEnd {
			continue
		}
		if perSec(windows[w]) >= 0.95*res.tail {
			res.recovery = start + availWindow - lastFaultEnd
			break
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		res.p99 = latencies[len(latencies)*99/100]
	}
	env.Close()
	return res
}

// Faults regenerates the availability experiment the paper's design
// implies but never plots: SDF drops cross-channel parity and relies
// on CCDB's 3-way replication for fault tolerance (§2.2), so the
// system — not the device — must ride out channel deaths, firmware
// stalls, node crashes, and NIC brown-outs. A fault plan (the default
// above, or one supplied via Options.FaultPlan / sdfbench -faults)
// fires against a 3-replica cluster under closed-loop load; the same
// node-level faults hit a parity-protected Gen3 baseline, whose
// internal redundancy masks channel faults but taxes every byte.
func Faults(opts Options) Table {
	pl := opts.FaultPlan
	if pl == nil {
		pl = DefaultAvailabilityPlan()
	}
	t := Table{
		ID:     "Faults",
		Title:  "Availability under injected faults: 3-way replication vs device parity",
		Header: []string{"Metric", "Baidu SDF (no parity, RF=3)", "Huawei Gen3 (parity, RF=3)"},
		Notes: []string{
			fmt.Sprintf("plan: seed %d, %d injections over %v (channel faults fail SDF over to replicas; Gen3 parity masks them at reconstruction cost)",
				pl.Seed, len(pl.Injections), availHorizon),
			"recovery = virtual time from last fault end until delivered bandwidth holds within 5% of the degraded steady state",
			"page-sized (8 KB) reads are the latency-SLO regime: SDF serves one channel page read, while a degraded Gen3 read rebuilds a parity stripe from the surviving channels",
		},
	}
	sdf := availabilityRun(opts, devSDF, pl)
	gen3 := availabilityRun(opts, devGen3, pl)

	dur := func(d time.Duration) string {
		if d < 0 {
			return "not recovered"
		}
		return d.String()
	}
	rows := []struct {
		label   string
		sdf, g3 string
		key     string
		vs, vg  float64
	}{
		{"healthy bandwidth", mb(sdf.healthy), mb(gen3.healthy), "healthy_bw", sdf.healthy, gen3.healthy},
		{"worst window", mb(sdf.floor), mb(gen3.floor), "floor_bw", sdf.floor, gen3.floor},
		{"steady state after faults", mb(sdf.tail), mb(gen3.tail), "tail_bw", sdf.tail, gen3.tail},
		{"recovery after last fault", dur(sdf.recovery), dur(gen3.recovery), "recovery_ms", float64(sdf.recovery.Milliseconds()), float64(gen3.recovery.Milliseconds())},
		{"read p99", sdf.p99.String(), gen3.p99.String(), "p99_ms", float64(sdf.p99.Microseconds()) / 1000, float64(gen3.p99.Microseconds()) / 1000},
		{"failovers / hedges", fmt.Sprintf("%d / %d", sdf.stats.Failovers, sdf.stats.Hedges), fmt.Sprintf("%d / %d", gen3.stats.Failovers, gen3.stats.Hedges), "failovers", float64(sdf.stats.Failovers), float64(gen3.stats.Failovers)},
		{"repairs / re-replications", fmt.Sprintf("%d / %d", sdf.stats.Repairs, sdf.stats.Rereplications), fmt.Sprintf("%d / %d", gen3.stats.Repairs, gen3.stats.Rereplications), "repairs", float64(sdf.stats.Repairs), float64(gen3.stats.Repairs)},
		{"lost reads", fmt.Sprintf("%d", sdf.stats.Lost), fmt.Sprintf("%d", gen3.stats.Lost), "lost", float64(sdf.stats.Lost), float64(gen3.stats.Lost)},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.label, r.sdf, r.g3})
		t.metric("sdf."+r.key, r.vs)
		t.metric("gen3."+r.key, r.vg)
	}
	if opts.Metrics {
		sloCell := func(rep []metrics.ObjectiveResult, name string) (string, float64) {
			for _, o := range rep {
				if o.Name == name {
					verdict := "met"
					if !o.Met {
						verdict = "VIOLATED"
					}
					return fmt.Sprintf("%s (%d/%d windows, burn %.0f%%)",
						verdict, o.Violations, o.Windows, o.Burn*100), o.Burn
				}
			}
			return "not evaluated", 0
		}
		sCell, sBurn := sloCell(sdf.slo, "sdf/read_p99")
		gCell, gBurn := sloCell(gen3.slo, "gen3/read_p99")
		t.Rows = append(t.Rows, []string{"SLO: window p99 <= 1ms", sCell, gCell})
		t.metric("sdf.slo_p99_burn", sBurn)
		t.metric("gen3.slo_p99_burn", gBurn)
		snapshot := metrics.Snapshot(sdf.reg, gen3.reg)
		series := metrics.SeriesJSONL(sdf.sampler, gen3.sampler)
		t.Observability = &Observability{
			SnapshotSHA256: metrics.HashBytes(snapshot),
			SeriesSHA256:   metrics.HashBytes(series),
			SLO:            append(append([]metrics.ObjectiveResult(nil), sdf.slo...), gen3.slo...),
			Alerts:         sdf.alerts + gen3.alerts,
			Snapshot:       snapshot,
			Series:         series,
		}
	}
	return t
}
