package experiments

import (
	"reflect"
	"sync"
	"testing"

	"sdf/internal/trace"
)

// runnerSubset is a cheap slice of the suite (sub-second experiments
// covering SDF, the conventional SSD, the cluster, and fault
// injection) so the sequential-vs-parallel comparison stays fast
// enough for `go test -race ./...` in CI.
var runnerSubset = []string{"stack", "erase", "erasesched", "placement", "sdfop", "faults", "recovery"}

func subsetEntries(t *testing.T) []Entry {
	t.Helper()
	var entries []Entry
	for _, name := range runnerSubset {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("registry is missing %q", name)
		}
		entries = append(entries, e)
	}
	return entries
}

// TestRunAllParallelMatchesSequential runs the same experiments
// sequentially and on a 4-worker pool and requires byte-identical
// tables, identical raw metrics, and identical kernel event counts —
// the determinism contract that lets sdfbench -parallel N exist.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	entries := subsetEntries(t)
	opts := Options{Quick: true}
	seq := RunAll(entries, opts, 1)
	par := RunAll(entries, opts, 4)
	if len(seq) != len(entries) || len(par) != len(entries) {
		t.Fatalf("result lengths: sequential %d, parallel %d, want %d", len(seq), len(par), len(entries))
	}
	for i := range entries {
		if seq[i].Name != entries[i].Name || par[i].Name != entries[i].Name {
			t.Errorf("result %d out of order: sequential %q, parallel %q, want %q",
				i, seq[i].Name, par[i].Name, entries[i].Name)
		}
		if s, p := seq[i].Table.String(), par[i].Table.String(); s != p {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential\n%s--- parallel\n%s",
				entries[i].Name, s, p)
		}
		if !reflect.DeepEqual(seq[i].Table.Metrics, par[i].Table.Metrics) {
			t.Errorf("%s: parallel metrics differ from sequential", entries[i].Name)
		}
		if seq[i].Events != par[i].Events {
			t.Errorf("%s: event counts differ: sequential %d, parallel %d",
				entries[i].Name, seq[i].Events, par[i].Events)
		}
	}
	// stack is analytical (no virtual time passes), but the rest of the
	// subset simulates; the counters must show it.
	var total uint64
	for _, r := range seq {
		total += r.Events
	}
	if total == 0 {
		t.Error("no kernel events recorded across the subset (newEnv not used?)")
	}
}

// TestRunAllParallelTraceHash runs the traced availability experiment
// on a 4-worker pool next to untraced load and sequentially alone,
// giving each traced run a private collector, and requires the trace
// hashes to match: virtual-time traces must not notice host-side
// concurrency.
func TestRunAllParallelTraceHash(t *testing.T) {
	var mu sync.Mutex
	var hashes []string
	traced := Entry{Name: "faults", Run: func(o Options) Table {
		c := trace.NewCollector()
		o.Tracer = c
		tab := Faults(o)
		mu.Lock()
		hashes = append(hashes, c.Hash())
		mu.Unlock()
		return tab
	}}
	others := subsetEntries(t)[:3]
	opts := Options{Quick: true}
	seqTab := RunAll([]Entry{traced}, opts, 1)[0].Table.String()
	parTab := ""
	for _, r := range RunAll(append([]Entry{traced}, others...), opts, 4) {
		if r.Name == "faults" {
			parTab = r.Table.String()
		}
	}
	if len(hashes) != 2 {
		t.Fatalf("expected 2 traced runs, got %d", len(hashes))
	}
	if hashes[0] != hashes[1] {
		t.Errorf("trace hash changed under the parallel runner: %s vs %s", hashes[0], hashes[1])
	}
	if seqTab != parTab {
		t.Errorf("faults table changed under the parallel runner:\n--- sequential\n%s--- parallel\n%s", seqTab, parTab)
	}
}
