// Package experiments regenerates every table and figure of the SDF
// paper's evaluation (§3) against the simulated devices. Each function
// runs the corresponding workload and returns a Table whose rows put
// our measurements next to the paper's published numbers, so the
// harness (cmd/sdfbench, bench_test.go) can print paper-style output
// and EXPERIMENTS.md can record the comparison.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/ssd"
	"sdf/internal/trace"
)

// Options scales experiment durations.
type Options struct {
	// Quick shortens measurement windows (tests, smoke runs) at some
	// cost in statistical stability.
	Quick bool
	// Tracer, when non-nil, collects virtual-time trace events from
	// experiments that support tracing (currently Figure 8, the
	// latency-decomposition experiment, and Faults). The same collector
	// accumulates across the experiment's sequential simulations;
	// exporters re-sort into canonical order.
	Tracer *trace.Collector
	// FaultPlan overrides the availability experiment's default fault
	// schedule (sdfbench -faults plan.json).
	FaultPlan *fault.Plan
	// Stats, when non-nil, collects kernel counters from every sim.Env
	// the experiment creates; RunAll sets it to report events/sec.
	Stats *KernelStats
	// Metrics enables the observability pipeline in experiments that
	// support it (currently Faults): a per-device metrics registry, a
	// virtual-time sampler, and an SLO engine. The results land in
	// Table.Observability (sdfbench -metrics writes them out).
	Metrics bool
}

// newEnv creates a simulation environment and registers it with the
// harness's kernel-stats collector. Experiment code must use this
// instead of sim.NewEnv so event counts are attributed to the run.
func (o Options) newEnv() *sim.Env {
	env := sim.NewEnv()
	o.Stats.track(env)
	return env
}

// scale returns d, halved in quick mode.
func (o Options) scale(d time.Duration) time.Duration {
	if o.Quick {
		return d / 2
	}
	return d
}

// Table is one regenerated result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics carries the raw measured values behind the formatted
	// rows (bytes/s, milliseconds, ratios), keyed by a stable
	// dot-separated name, for machine-readable bench output.
	Metrics map[string]float64
	// Observability is the metrics/SLO payload collected when
	// Options.Metrics was set and the experiment supports it.
	Observability *Observability
}

// Observability carries an experiment's exported metrics: the
// Prometheus text snapshot, the sampled time series, their SHA-256
// fingerprints (byte-stable across seeded reruns, like trace hashes),
// and the SLO engine's verdicts.
type Observability struct {
	SnapshotSHA256 string                    `json:"snapshot_sha256"`
	SeriesSHA256   string                    `json:"series_sha256"`
	SLO            []metrics.ObjectiveResult `json:"slo,omitempty"`
	Alerts         int                       `json:"alerts"`
	// Raw exports, written to METRICS_<exp>.prom / .jsonl by sdfbench
	// -metrics; excluded from the BENCH JSON (the hashes stand in).
	Snapshot []byte `json:"-"`
	Series   []byte `json:"-"`
}

// metric records one raw measured value.
func (t *Table) metric(key string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[key] = v
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// mb formats a byte rate as MB/s.
func mb(bytesPerSec float64) string {
	return fmt.Sprintf("%.0f MB/s", bytesPerSec/1e6)
}

// gb formats a byte rate as GB/s.
func gb(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
}

// newSDF builds an SDF device scaled to blocksPerPlane.
func newSDF(env *sim.Env, blocksPerPlane int) *core.Device {
	cfg := core.DefaultConfig()
	cfg.Channel.Nand.BlocksPerPlane = blocksPerPlane
	cfg.Channel.SparePerPlane = 2
	d, err := core.New(env, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// blocklayerNew wires the user-space block layer over a device with
// idle-time erase scheduling enabled.
func blocklayerNew(env *sim.Env, dev *core.Device) *blocklayer.Layer {
	return blocklayer.New(env, dev, blocklayer.DefaultConfig())
}

// newSSD builds a conventional SSD from a profile, panicking on
// misconfiguration (experiment profiles are fixed).
func newSSD(env *sim.Env, prof ssd.Profile) *ssd.SSD {
	s, err := ssd.New(env, prof)
	if err != nil {
		panic(err)
	}
	return s
}

// throughputWindow measures the aggregate byte rate of ops that start
// inside [warmup, deadline]: workers is a set of closed-loop processes
// created by spawn, each reporting per-op bytes through the returned
// credit function.
type meterCtx struct {
	env        *sim.Env
	warmup     time.Duration
	deadline   time.Duration
	total      int64
	firstStart time.Duration
	lastEnd    time.Duration
}

func newMeterCtx(env *sim.Env, warmup, deadline time.Duration) *meterCtx {
	return &meterCtx{env: env, warmup: warmup, deadline: deadline, firstStart: -1}
}

// loop runs fn in a closed loop until the deadline, crediting bytes
// for iterations that start inside the measurement window. Credited
// operations run to completion even past the deadline.
func (m *meterCtx) loop(name string, fn func(p *sim.Proc) int) {
	m.env.Go(name, func(p *sim.Proc) {
		for m.env.Now() < m.deadline {
			start := m.env.Now()
			n := fn(p)
			if n < 0 {
				return // worker aborted
			}
			if start >= m.warmup && n > 0 {
				m.total += int64(n)
				if m.firstStart < 0 || start < m.firstStart {
					m.firstStart = start
				}
				if end := m.env.Now(); end > m.lastEnd {
					m.lastEnd = end
				}
			}
		}
	})
}

// rate finishes the run and returns throughput over the busy span of
// credited operations [first credited start, last credited end] —
// unbiased for closed loops even when the window holds few operations.
func (m *meterCtx) rate() float64 {
	m.env.RunUntil(m.deadline + 10*time.Second)
	if m.firstStart < 0 || m.lastEnd <= m.firstStart {
		return 0
	}
	return float64(m.total) / (m.lastEnd - m.firstStart).Seconds()
}
