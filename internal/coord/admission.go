// SLO-driven write admission control: 8 MB block writes are the other
// tail-latency monster besides erases, and when the read-latency error
// budget is burning, the right move is to delay or shed writes rather
// than let them destroy read p99 (DESIGN.md §16).
package coord

import (
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Verdict is one admission decision.
type Verdict int

// Admission verdicts.
const (
	// Admitted let the write through immediately.
	Admitted Verdict = iota
	// Delayed admitted the write after a bounded virtual-time wait.
	Delayed
	// Shed refused the write: admitting it would have required more
	// than MaxDelay of waiting at the current (burn-throttled) rate.
	Shed
)

// AdmissionConfig tunes the write admission controller.
type AdmissionConfig struct {
	// Rate is the sustained admitted-write rate (writes/second of
	// virtual time) while the error budget is intact. 0 disables
	// admission control entirely (every write is Admitted).
	Rate float64
	// Burst is the token bucket depth: how many writes may be admitted
	// back-to-back after an idle stretch. Defaults to 4.
	Burst float64
	// MaxDelay bounds how long one write may be delayed before it is
	// shed instead. Defaults to 5 ms.
	MaxDelay time.Duration
	// MinFactor floors the burn throttle: however badly the error
	// budget is burning, at least Rate*MinFactor survives, so writes
	// are degraded, not starved. Defaults to 0.1.
	MinFactor float64
}

// DefaultAdmissionConfig admits rate writes/second with a burst of 4,
// delays up to 5 ms, and throttles down to 10% under full burn.
func DefaultAdmissionConfig(rate float64) AdmissionConfig {
	return AdmissionConfig{Rate: rate, Burst: 4, MaxDelay: 5 * time.Millisecond, MinFactor: 0.1}
}

// AdmissionStats are the controller's cumulative counters.
type AdmissionStats struct {
	Admitted, Delayed, Shed int64
}

// Admission is a deterministic token bucket whose refill rate is
// modulated by an SLO error-budget burn signal: while burn <= 1 (the
// objective is within budget) writes flow at the configured rate; once
// the budget is overspent the rate scales down as 1/burn (floored at
// MinFactor), converting read-latency SLO pressure into write
// backpressure. Waiters reserve tokens (the bucket goes negative), so
// concurrent writers are delayed in deterministic arrival order.
//
// Best-effort mode bypasses the bucket entirely; the cluster flips it
// on when enough replicas are down that shedding writes would cost
// durability for nothing (graceful degradation).
type Admission struct {
	env        *sim.Env
	cfg        AdmissionConfig
	burn       func() float64
	tokens     float64
	last       time.Duration
	bestEffort bool

	admitted metrics.Counter
	delayed  metrics.Counter
	shed     metrics.Counter
}

// NewAdmission builds the controller. burn supplies the current
// error-budget burn of the protecting objective (metrics.SLO.Burn);
// nil means no SLO feedback (the bucket runs at full rate).
func NewAdmission(env *sim.Env, cfg AdmissionConfig, burn func() float64) *Admission {
	if cfg.Burst <= 0 {
		cfg.Burst = 4
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Millisecond
	}
	if cfg.MinFactor <= 0 {
		cfg.MinFactor = 0.1
	}
	if cfg.MinFactor > 1 {
		cfg.MinFactor = 1
	}
	return &Admission{env: env, cfg: cfg, burn: burn, tokens: cfg.Burst}
}

// SetBestEffort flips best-effort mode: while on, every write is
// Admitted without touching the bucket. Park-free.
func (a *Admission) SetBestEffort(on bool) { a.bestEffort = on }

// BestEffort reports whether best-effort mode is on.
func (a *Admission) BestEffort() bool { return a.bestEffort }

// Stats returns the controller's cumulative counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Admitted: a.admitted.Value(),
		Delayed:  a.delayed.Value(),
		Shed:     a.shed.Value(),
	}
}

// RegisterMetrics adopts the controller's counters into r.
func (a *Admission) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.RegisterCounter("admission_admitted_total", &a.admitted, labels...)
	r.RegisterCounter("admission_delayed_total", &a.delayed, labels...)
	r.RegisterCounter("admission_shed_total", &a.shed, labels...)
	r.GaugeFunc("admission_rate_factor", a.factor, labels...)
}

// factor maps the burn signal to a rate multiplier: full rate within
// budget, 1/burn beyond it, floored at MinFactor.
func (a *Admission) factor() float64 {
	if a.burn == nil {
		return 1
	}
	b := a.burn()
	if b <= 1 {
		return 1
	}
	f := 1 / b
	if f < a.cfg.MinFactor {
		f = a.cfg.MinFactor
	}
	return f
}

// refill credits the bucket for virtual time elapsed at the given
// rate, capped at Burst.
func (a *Admission) refill(rate float64) {
	now := a.env.Now()
	if now > a.last {
		a.tokens += rate * (now - a.last).Seconds()
		if a.tokens > a.cfg.Burst {
			a.tokens = a.cfg.Burst
		}
	}
	a.last = now
}

// Admit gates one write. It returns Admitted immediately when a token
// is available (or admission is off / best-effort), parks for the
// token's arrival when that wait fits in MaxDelay (Delayed), and
// refuses the write otherwise (Shed) — the caller must not perform
// the write after Shed.
func (a *Admission) Admit(p *sim.Proc) Verdict {
	if a.bestEffort || a.cfg.Rate <= 0 {
		a.admitted.Inc()
		return Admitted
	}
	rate := a.cfg.Rate * a.factor()
	a.refill(rate)
	if a.tokens >= 1 {
		a.tokens--
		a.admitted.Inc()
		return Admitted
	}
	wait := time.Duration(float64(time.Second) * (1 - a.tokens) / rate)
	if wait > a.cfg.MaxDelay {
		a.shed.Inc()
		return Shed
	}
	// Reserve the token (the bucket goes negative) so concurrent
	// writers queue behind this one in arrival order.
	a.tokens--
	a.delayed.Inc()
	t := a.env.Tracer()
	span := t.Begin(a.env.Now(), p.Span(), "admission/delay", trace.PhaseCoord)
	p.Wait(wait)
	t.End(a.env.Now(), span)
	return Delayed
}
