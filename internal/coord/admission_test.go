package coord

import (
	"testing"
	"time"

	"sdf/internal/sim"
)

// TestAdmissionBurstThenThrottle: the bucket admits Burst writes
// back-to-back, then a lone writer settles into one delay per token
// interval — its own park time refills the bucket, so it is paced,
// never shed.
func TestAdmissionBurstThenThrottle(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	// 100 writes/s -> one token per 10 ms; burst 2; max delay 15 ms.
	a := NewAdmission(env, AdmissionConfig{Rate: 100, Burst: 2, MaxDelay: 15 * time.Millisecond}, nil)
	var verdicts []Verdict
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			verdicts = append(verdicts, a.Admit(p))
		}
	})
	env.Run()
	want := []Verdict{Admitted, Admitted, Delayed, Delayed, Delayed}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Fatalf("verdicts = %v, want %v", verdicts, want)
		}
	}
	// Three 10 ms delays: the writer is paced at exactly Rate.
	if got, want := env.Now(), 30*time.Millisecond; got != want {
		t.Errorf("writer finished at %v, want %v (paced at Rate)", got, want)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.Delayed != 3 || st.Shed != 0 {
		t.Errorf("stats = %+v, want 2 admitted / 3 delayed / 0 shed", st)
	}
}

// TestAdmissionConcurrentShed: concurrent writers reserve tokens in
// arrival order; the one whose queued wait prices past MaxDelay is
// shed.
func TestAdmissionConcurrentShed(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	a := NewAdmission(env, AdmissionConfig{Rate: 100, Burst: 1, MaxDelay: 15 * time.Millisecond}, nil)
	verdicts := make([]Verdict, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Go("writer", func(p *sim.Proc) { verdicts[i] = a.Admit(p) })
	}
	env.Run()
	want := []Verdict{Admitted, Delayed, Shed}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Fatalf("verdicts = %v, want %v (arrival-order reservation)", verdicts, want)
		}
	}
}

// TestAdmissionBurnThrottles: an overspent error budget scales the
// admitted rate down as 1/burn, floored at MinFactor.
func TestAdmissionBurnThrottles(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	burn := 1.0
	a := NewAdmission(env, AdmissionConfig{
		Rate: 1000, Burst: 1, MaxDelay: time.Second, MinFactor: 0.1,
	}, func() float64 { return burn })
	var gaps []time.Duration
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			before := env.Now()
			a.Admit(p)
			gaps = append(gaps, env.Now()-before)
		}
		p.Wait(10 * time.Millisecond) // let the bucket settle to full
		burn = 4                      // budget overspent: rate drops to 250/s
		for i := 0; i < 3; i++ {
			before := env.Now()
			a.Admit(p)
			gaps = append(gaps, env.Now()-before)
		}
	})
	env.Run()
	// Within budget: 1 ms per token after the 1-deep burst.
	if gaps[1] != time.Millisecond || gaps[2] != time.Millisecond {
		t.Errorf("in-budget gaps = %v, want 1ms steady state", gaps[:3])
	}
	// Burn 4: the burst token goes free, then each token takes 4 ms.
	if gaps[3] != 0 || gaps[4] != 4*time.Millisecond || gaps[5] != 4*time.Millisecond {
		t.Errorf("burned gaps = %v, want [0 4ms 4ms]", gaps[3:])
	}
}

// TestAdmissionBestEffort: best-effort mode admits everything without
// touching the bucket.
func TestAdmissionBestEffort(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	a := NewAdmission(env, AdmissionConfig{Rate: 1, Burst: 1, MaxDelay: time.Microsecond}, nil)
	a.SetBestEffort(true)
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if v := a.Admit(p); v != Admitted {
				t.Errorf("best-effort verdict = %v, want Admitted", v)
			}
		}
		if env.Now() != 0 {
			t.Error("best-effort admission parked")
		}
	})
	env.Run()
	if st := a.Stats(); st.Admitted != 10 || st.Delayed != 0 || st.Shed != 0 {
		t.Errorf("stats = %+v, want 10 admitted only", st)
	}
}
