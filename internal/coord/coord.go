// Package coord is the deterministic erase/write co-scheduling layer
// (DESIGN.md §16). It is the RackBlox-style network-storage co-design
// piece of the stack: the block layer advertises pending background
// erase work as deferrable windows, and a per-slice Coordinator grants
// those windows so no two live replicas of a slice are inside a
// program/erase window at once. The cluster's read routing consults
// the same window state (Member.InWindow) to steer reads away from
// the replica currently paying its 3 ms erases.
//
// Determinism: members are registered in a fixed order, grants walk
// that order round-robin starting just past the previous grantee, and
// every state transition happens either in a simulation process or in
// a park-free scheduled callback — so two seeded runs produce
// byte-identical grant sequences.
//
// Starvation bound: a member whose request is deferred too long
// (MaxWait), or whose free-block pool is about to run dry
// (ForceFreeBlocks), erases anyway through a forced-erase escape
// hatch. Deferral can therefore delay reclaim but never exhaust a
// channel's free blocks; the Forced counter measures how often the
// hatch fired.
package coord

import (
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Config tunes a Coordinator.
type Config struct {
	// Window is how long a granted erase window stays open to new
	// erases from the holder. Erases admitted before the window closes
	// run to completion; the window is handed on once they drain, so
	// its true length is bounded by Window plus one erase.
	Window time.Duration
	// MaxWait is the starvation bound: a member whose window request
	// has been deferred this long erases through the forced hatch
	// instead of waiting further. 0 uses the default.
	MaxWait time.Duration
	// ForceFreeBlocks is the urgency threshold: a caller whose free
	// pool is at or below this many pre-erased blocks skips the grant
	// queue entirely (forced erase), because deferring reclaim any
	// further risks ErrNoSpace on the foreground write path.
	ForceFreeBlocks int
}

// DefaultConfig opens 5 ms windows (a window comfortably fits an
// erase at ~3 ms plus queue drain), bounds deferral at 20 ms, and
// forces erases once a channel is down to its last pre-erased block.
func DefaultConfig() Config {
	return Config{
		Window:          5 * time.Millisecond,
		MaxWait:         20 * time.Millisecond,
		ForceFreeBlocks: 1,
	}
}

// Stats are the coordinator's cumulative counters.
type Stats struct {
	// Grants counts erase windows granted.
	Grants int64
	// Deferrals counts window requests that had to park because a
	// peer replica held the window.
	Deferrals int64
	// Forced counts erases through the escape hatch: the free pool
	// hit ForceFreeBlocks, or a deferred request aged past MaxWait.
	Forced int64
	// Timeouts counts the subset of Forced that came from MaxWait
	// expiring (the starvation bound proper).
	Timeouts int64
}

// Coordinator grants erase windows across the replicas of one slice.
type Coordinator struct {
	env     *sim.Env
	cfg     Config
	members []*Member
	holder  int // index of the member holding the window, -1 if none
	next    int // round-robin scan start for the next grant

	grants    metrics.Counter
	deferrals metrics.Counter
	forced    metrics.Counter
	timeouts  metrics.Counter
}

// New builds a coordinator on env.
func New(env *sim.Env, cfg Config) *Coordinator {
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Millisecond
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 20 * time.Millisecond
	}
	return &Coordinator{env: env, cfg: cfg, holder: -1}
}

// Register adds a member (one replica) to the coordinator. Call order
// is the deterministic grant order; register replicas in placement
// order before the simulation starts.
func (c *Coordinator) Register(name string) *Member {
	m := &Member{c: c, idx: len(c.members), name: name, live: true, urgentAt: -1}
	c.members = append(c.members, m)
	return m
}

// Members returns the registered members in registration order.
func (c *Coordinator) Members() []*Member { return c.members }

// Stats returns the coordinator's cumulative counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Grants:    c.grants.Value(),
		Deferrals: c.deferrals.Value(),
		Forced:    c.forced.Value(),
		Timeouts:  c.timeouts.Value(),
	}
}

// RegisterMetrics adopts the coordinator's counters into r and
// installs a gauge for whether any window is currently open. The
// gauge callback reads plain fields and stays park-free, per the
// GaugeFunc contract.
func (c *Coordinator) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.RegisterCounter("coord_window_grants_total", &c.grants, labels...)
	r.RegisterCounter("coord_deferred_erases_total", &c.deferrals, labels...)
	r.RegisterCounter("coord_forced_erases_total", &c.forced, labels...)
	r.RegisterCounter("coord_grant_timeouts_total", &c.timeouts, labels...)
	r.GaugeFunc("coord_window_open", func() float64 {
		if c.holder >= 0 {
			return 1
		}
		return 0
	}, labels...)
}

// tryGrant hands the window to the next waiting live member in
// round-robin order. No-op while a window is held. Park-free: safe
// from scheduled callbacks.
func (c *Coordinator) tryGrant() {
	if c.holder >= 0 || len(c.members) == 0 {
		return
	}
	n := len(c.members)
	for i := 0; i < n; i++ {
		m := c.members[(c.next+i)%n]
		if m.want && m.live {
			c.grantTo(m)
			return
		}
	}
}

// grantTo opens a window for m.
func (c *Coordinator) grantTo(m *Member) {
	c.holder = m.idx
	c.next = (m.idx + 1) % len(c.members)
	m.want = false
	m.openUntil = c.env.Now() + c.cfg.Window
	c.grants.Inc()
	if t := c.env.Tracer(); t != nil {
		m.span = t.Begin(c.env.Now(), 0, "coord/window."+m.name, trace.PhaseCoord)
	}
	if m.grant != nil {
		m.grant.Fire()
		m.grant = nil
	}
	// The window closes at openUntil if its erases have drained by
	// then; otherwise the last release closes it. Capture openUntil so
	// a later window of the same member cannot be closed by this timer.
	at := m.openUntil
	c.env.Schedule(c.cfg.Window, func() {
		if c.holder == m.idx && m.openUntil == at && m.active == 0 {
			c.close(m)
		}
	})
}

// close releases m's window and grants the next waiter.
func (c *Coordinator) close(m *Member) {
	c.holder = -1
	if t := c.env.Tracer(); t != nil && m.span != 0 {
		t.End(c.env.Now(), m.span)
		m.span = 0
	}
	c.tryGrant()
}

// Member is one replica's handle on the coordinator.
type Member struct {
	c    *Coordinator
	idx  int
	name string
	live bool

	want      bool        // a window request is queued
	grant     *sim.Signal // fired when the queued request is granted
	waiters   int         // concurrent AcquireErase calls parked on grant
	urgentAt  time.Duration
	openUntil time.Duration
	active    int // erases in flight under the current window
	forced    int // forced erases in flight (escape hatch)
	span      trace.SpanID
}

// Name returns the member's registration name.
func (m *Member) Name() string { return m.name }

// InWindow reports whether the replica is currently inside an erase
// window — granted or forced. Read routing deprioritizes members for
// which this is true.
func (m *Member) InWindow() bool {
	return (m.c.holder == m.idx) || m.forced > 0
}

// Live reports the liveness the coordinator believes.
func (m *Member) Live() bool { return m.live }

// SetLive updates the member's liveness. A dead member's open window
// is closed (its in-flight erases will fail on the dead engine
// anyway) and its queued request cancelled, so a crashed replica can
// never block its peers' reclaim. Park-free: safe from fault
// injection callbacks in scheduler context.
func (m *Member) SetLive(alive bool) {
	if m.live == alive {
		return
	}
	m.live = alive
	c := m.c
	if alive {
		c.tryGrant()
		return
	}
	if m.want {
		m.want = false
		if m.grant != nil {
			// Wake the waiter; AcquireErase sees the dead member and
			// returns without a window.
			m.grant.Fire()
			m.grant = nil
		}
	}
	if c.holder == m.idx {
		c.close(m)
	}
}

// AcquireErase claims the right to run one background erase. free is
// the caller's pre-erased pool depth (its urgency). The call parks
// until this member holds the window, joins an already-open window of
// this member immediately, or falls through the forced hatch when the
// pool is at the ForceFreeBlocks floor or the request ages past
// MaxWait. It returns a release func (idempotent; call it when the
// erase completes) and whether the hatch fired.
func (m *Member) AcquireErase(p *sim.Proc, free int) (release func(), forced bool) {
	c := m.c
	// Join the member's open window while it accepts new erases.
	if c.holder == m.idx && c.env.Now() < m.openUntil {
		m.active++
		return m.releaseOnce(), false
	}
	// Urgent: reclaim cannot wait for a turn without risking
	// ErrNoSpace on the foreground write path.
	if free >= 0 && free <= c.cfg.ForceFreeBlocks {
		return m.force(), true
	}
	// The member's channels erase concurrently, so several AcquireErase
	// calls can be queued at once; they all share one grant signal and
	// all join the window the moment it opens.
	m.want = true
	m.waiters++
	if m.grant == nil {
		m.grant = sim.NewSignal(c.env)
	}
	grant := m.grant
	c.tryGrant()
	if !grant.Fired() {
		// Deferred: a peer holds the window — or this member's own
		// previous window is still draining (joins are allowed only
		// while the window accepts new erases, keeping its length
		// bounded; a drain-time request queues like everyone else's).
		c.deferrals.Inc()
		awaitWithin(c.env, p, grant, c.cfg.MaxWait)
	}
	m.waiters--
	if grant.Fired() && c.holder == m.idx {
		m.active++
		return m.releaseOnce(), false
	}
	if m.waiters == 0 && m.grant == grant {
		// Last waiter on this signal gave up: withdraw the request.
		m.want = false
		m.grant = nil
	}
	if !m.live {
		// Woken by SetLive(false): the node died while waiting. No
		// window — the erase will fail fast on the dead engine.
		return func() {}, false
	}
	if c.env.Now() == m.urgentAt {
		// Woken by PoolLow: the caller's pre-erased pool hit the floor
		// while this request was parked. Forced, but not a timeout.
		return m.force(), true
	}
	// Starvation bound: MaxWait elapsed without a grant.
	c.timeouts.Inc()
	return m.force(), true
}

// PoolLow tells the member its caller's pre-erased pool has drained to
// free blocks. If the pool is at the forced-erase floor while erase
// requests are parked waiting for a window, the waiters are woken
// immediately and fall through the forced hatch: a request's urgency
// is re-evaluated as the pool drains beneath it, not only at call
// time, so deferral can never exhaust the free pool (and push the
// foreground write path onto ungated inline erases). Park-free: safe
// to call from the write path on every pool consumption.
func (m *Member) PoolLow(free int) {
	if free > m.c.cfg.ForceFreeBlocks || m.waiters == 0 || m.grant == nil || m.grant.Fired() {
		return
	}
	m.urgentAt = m.c.env.Now()
	grant := m.grant
	m.want = false
	m.grant = nil
	grant.Fire()
}

// force opens the escape hatch for one erase.
func (m *Member) force() func() {
	c := m.c
	m.forced++
	c.forced.Inc()
	released := false
	t := c.env.Tracer()
	if t == nil {
		return func() {
			if !released {
				released = true
				m.forced--
			}
		}
	}
	span := t.Begin(c.env.Now(), 0, "coord/forced."+m.name, trace.PhaseCoord)
	return func() {
		if released {
			return
		}
		released = true
		m.forced--
		t.End(c.env.Now(), span)
	}
}

// releaseOnce returns the idempotent release for one granted erase.
func (m *Member) releaseOnce() func() {
	c := m.c
	released := false
	return func() {
		if released {
			return
		}
		released = true
		m.active--
		if c.holder == m.idx && m.active == 0 && c.env.Now() >= m.openUntil {
			c.close(m)
		}
	}
}

// awaitWithin waits for done to fire, but no longer than d of virtual
// time; it reports whether done fired in time. Both the timer and the
// watcher are one-shot, so neither can keep the event queue alive.
func awaitWithin(env *sim.Env, p *sim.Proc, done *sim.Signal, d time.Duration) bool {
	if done.Fired() {
		return true
	}
	step := sim.NewSignal(env)
	env.Schedule(d, func() { step.Fire() })
	env.Go("coord/await", func(wp *sim.Proc) {
		wp.Await(done)
		step.Fire()
	})
	p.Await(step)
	return done.Fired()
}
