package coord

import (
	"testing"
	"time"

	"sdf/internal/sim"
)

// TestRoundRobinGrantOrder: three members request windows at once; the
// grants must walk registration order deterministically, and no two
// windows may ever overlap.
func TestRoundRobinGrantOrder(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: time.Millisecond, MaxWait: time.Second})
	names := []string{"r1", "r2", "r3"}
	var members []*Member
	for _, n := range names {
		members = append(members, c.Register(n))
	}
	var order []string
	open := 0
	for i, m := range members {
		m, name := m, names[i]
		env.Go("eraser."+name, func(p *sim.Proc) {
			for k := 0; k < 3; k++ {
				release, forced := m.AcquireErase(p, 10)
				if forced {
					t.Errorf("%s erase %d: forced hatch fired with a patient MaxWait", name, k)
				}
				open++
				if open > 1 {
					t.Fatalf("%s erase %d: two erase windows open at once", name, k)
				}
				order = append(order, name)
				p.Wait(500 * time.Microsecond) // the erase itself
				open--
				release()
			}
		})
	}
	env.Run()
	if len(order) != 9 {
		t.Fatalf("got %d erases, want 9", len(order))
	}
	// All three request at t=0; the first grant goes to r1 (scan starts
	// at member 0). Each 1 ms window fits two 500 µs erases (the second
	// joins the open window), then the window rotates round-robin; the
	// last round has one erase left per member.
	want := []string{"r1", "r1", "r2", "r2", "r3", "r3", "r1", "r2", "r3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
	st := c.Stats()
	if st.Forced != 0 || st.Timeouts != 0 {
		t.Errorf("stats %+v: no forced erases expected", st)
	}
	if st.Grants == 0 || st.Deferrals == 0 {
		t.Errorf("stats %+v: want grants and deferrals", st)
	}
}

// TestWindowJoin: erases of the holder issued while its window is open
// join it without a second grant.
func TestWindowJoin(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: 5 * time.Millisecond, MaxWait: time.Second})
	m := c.Register("r1")
	c.Register("r2") // idle peer: never requests
	env.Go("eraser", func(p *sim.Proc) {
		r1, _ := m.AcquireErase(p, 10)
		p.Wait(time.Millisecond)
		r2, forced := m.AcquireErase(p, 10) // window still open: join
		if forced {
			t.Error("join inside own window reported forced")
		}
		p.Wait(time.Millisecond)
		r1()
		r2()
	})
	env.Run()
	if st := c.Stats(); st.Grants != 1 {
		t.Errorf("grants = %d, want 1 (second erase joins the first window)", st.Grants)
	}
	if m.InWindow() {
		t.Error("window still open after all releases and the close timer")
	}
}

// TestForcedEraseOnLowFreePool: a member whose free pool is at the
// floor must bypass a peer's window instead of waiting.
func TestForcedEraseOnLowFreePool(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: 10 * time.Millisecond, MaxWait: time.Second, ForceFreeBlocks: 1})
	m1 := c.Register("r1")
	m2 := c.Register("r2")
	env.Go("holder", func(p *sim.Proc) {
		release, _ := m1.AcquireErase(p, 10)
		p.Wait(8 * time.Millisecond)
		release()
	})
	fired := false
	env.Go("urgent", func(p *sim.Proc) {
		p.Wait(time.Millisecond) // let r1 take the window
		release, forced := m2.AcquireErase(p, 1)
		fired = forced
		if got := env.Now(); got != time.Millisecond {
			t.Errorf("forced erase waited until %v; must not park", got)
		}
		release()
	})
	env.Run()
	if !fired {
		t.Fatal("free pool at floor did not trigger the forced hatch")
	}
	if st := c.Stats(); st.Forced != 1 || st.Timeouts != 0 {
		t.Errorf("stats %+v: want exactly one forced, no timeouts", st)
	}
}

// TestMaxWaitTimeoutForces: the starvation bound — a deferred request
// older than MaxWait erases through the hatch.
func TestMaxWaitTimeoutForces(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: time.Millisecond, MaxWait: 2 * time.Millisecond})
	m1 := c.Register("r1")
	m2 := c.Register("r2")
	env.Go("hog", func(p *sim.Proc) {
		// Holds the grant's release far past the window: the window
		// cannot pass on until the erase drains.
		release, _ := m1.AcquireErase(p, 10)
		p.Wait(20 * time.Millisecond)
		release()
	})
	var forced bool
	var at time.Duration
	env.Go("victim", func(p *sim.Proc) {
		p.Wait(100 * time.Microsecond)
		release, f := m2.AcquireErase(p, 10)
		forced, at = f, env.Now()
		release()
	})
	env.Run()
	if !forced {
		t.Fatal("starved request did not force through after MaxWait")
	}
	if want := 100*time.Microsecond + 2*time.Millisecond; at != want {
		t.Errorf("forced at %v, want %v (request time + MaxWait)", at, want)
	}
	if st := c.Stats(); st.Timeouts != 1 {
		t.Errorf("stats %+v: want exactly one timeout", st)
	}
}

// TestSetLiveCancelsAndReleases: killing the window holder frees the
// window for peers; killing a waiter wakes it without a window.
func TestSetLiveCancelsAndReleases(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: 50 * time.Millisecond, MaxWait: time.Minute})
	m1 := c.Register("r1")
	m2 := c.Register("r2")
	env.Go("holder", func(p *sim.Proc) {
		release, _ := m1.AcquireErase(p, 10)
		defer release()
		p.Wait(time.Minute) // crash strikes mid-erase
	})
	var granted bool
	env.Go("peer", func(p *sim.Proc) {
		p.Wait(time.Millisecond)
		release, forced := m2.AcquireErase(p, 10)
		granted = !forced && env.Now() == 2*time.Millisecond
		release()
	})
	env.Schedule(2*time.Millisecond, func() { m1.SetLive(false) })
	env.RunUntil(3 * time.Minute)
	if !granted {
		t.Error("peer did not inherit the window at the holder's death")
	}
	if m1.InWindow() {
		t.Error("dead member still marked in-window")
	}
}

// TestDeterministicReplay: the full grant/force event sequence must be
// identical across two seeded runs.
func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		env := sim.NewEnv()
		defer env.Close()
		c := New(env, Config{Window: time.Millisecond, MaxWait: 3 * time.Millisecond})
		var log []string
		for i, name := range []string{"a", "b", "c"} {
			m := c.Register(name)
			i, name := i, name
			env.Go("eraser."+name, func(p *sim.Proc) {
				p.Wait(time.Duration(i) * 100 * time.Microsecond)
				for k := 0; k < 5; k++ {
					free := 10
					if k == 3 {
						free = 1 // exercise the urgency hatch
					}
					release, forced := m.AcquireErase(p, free)
					log = append(log, name, env.Now().String(), boolStr(forced))
					p.Wait(700 * time.Microsecond)
					release()
				}
			})
		}
		env.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func boolStr(b bool) string {
	if b {
		return "t"
	}
	return "f"
}
