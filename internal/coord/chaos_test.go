package coord

import (
	"math/rand"
	"testing"
	"time"

	"sdf/internal/sim"
)

// TestPoolLowWakesParkedWaiter: a request parked with a deep pool must
// fall through the forced hatch the moment the pool drains to the
// floor — not MaxWait later.
func TestPoolLowWakesParkedWaiter(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: 50 * time.Millisecond, MaxWait: time.Minute, ForceFreeBlocks: 1})
	m1 := c.Register("r1")
	m2 := c.Register("r2")
	env.Go("hog", func(p *sim.Proc) {
		release, _ := m1.AcquireErase(p, 10)
		p.Wait(40 * time.Millisecond)
		release()
	})
	var forced bool
	var at time.Duration
	env.Go("eraser", func(p *sim.Proc) {
		p.Wait(time.Millisecond)
		// Parked with 5 pre-erased blocks in hand.
		release, f := m2.AcquireErase(p, 5)
		forced, at = f, env.Now()
		release()
	})
	// Foreground writes drain r2's pool while the eraser is parked.
	for i, free := range []int{4, 3, 2, 1} {
		free := free
		env.Schedule(time.Duration(2+i)*time.Millisecond, func() { m2.PoolLow(free) })
	}
	env.Run()
	if !forced {
		t.Fatal("pool drained to the floor but the parked request did not force")
	}
	if want := 5 * time.Millisecond; at != want {
		t.Errorf("forced at %v, want %v (the PoolLow(1) instant)", at, want)
	}
	st := c.Stats()
	if st.Forced != 1 || st.Timeouts != 0 {
		t.Errorf("stats %+v: want one forced erase and no timeouts (urgency, not age)", st)
	}
}

// TestNoOverlapUnderSeededChaos is the integration oracle for the
// coordinator's core invariant: across seeded random erase traffic,
// urgency spikes, and member crash/restart chaos, no two members that
// are both live ever run granted (non-forced) erases concurrently.
// Forced erases are the documented exception — the starvation/urgency
// hatch trades overlap for liveness and is counted, not hidden.
func TestNoOverlapUnderSeededChaos(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	c := New(env, Config{Window: time.Millisecond, MaxWait: 5 * time.Millisecond, ForceFreeBlocks: 1})
	const n = 3
	var members [n]*Member
	for i, name := range []string{"r1", "r2", "r3"} {
		members[i] = c.Register(name)
	}
	// granted[i] counts member i's in-flight granted erases for its
	// current life; a kill zeroes it (epoch bump) because a crashed
	// replica's in-flight erase no longer counts against live peers.
	var granted, epoch [n]int
	violations, grantedTotal, forcedTotal := 0, 0, 0
	for i := 0; i < n; i++ {
		i := i
		for w := 0; w < 3; w++ {
			rng := rand.New(rand.NewSource(int64(10*i + w)))
			env.Go("eraser", func(p *sim.Proc) {
				for k := 0; k < 40; k++ {
					p.Wait(time.Duration(rng.Intn(2000)) * time.Microsecond)
					free := 2 + rng.Intn(8)
					if rng.Intn(12) == 0 {
						free = 1 // urgency hatch fires occasionally
					}
					release, forced := members[i].AcquireErase(p, free)
					counted := false
					myEpoch := epoch[i]
					if forced {
						forcedTotal++
					} else if members[i].Live() {
						granted[i]++
						grantedTotal++
						counted = true
						for j := 0; j < n; j++ {
							if j != i && granted[j] > 0 && members[j].Live() {
								violations++
							}
						}
					}
					p.Wait(time.Duration(500+rng.Intn(500)) * time.Microsecond)
					if counted && epoch[i] == myEpoch {
						granted[i]--
					}
					release()
				}
			})
		}
	}
	// Seeded crash/restart chaos against the coordinator's liveness
	// view: kills strike mid-window, mid-wait, and mid-drain.
	crng := rand.New(rand.NewSource(99))
	for f := 0; f < 12; f++ {
		k := crng.Intn(n)
		at := time.Duration(crng.Intn(80)) * time.Millisecond
		d := time.Duration(1+crng.Intn(5)) * time.Millisecond
		env.Schedule(at, func() {
			if members[k].Live() {
				members[k].SetLive(false)
				epoch[k]++
				granted[k] = 0
			}
		})
		env.Schedule(at+d, func() { members[k].SetLive(true) })
	}
	env.Run()
	if violations != 0 {
		t.Errorf("%d overlapping granted erase windows between live members", violations)
	}
	if grantedTotal == 0 || forcedTotal == 0 {
		t.Fatalf("weak chaos run: %d granted, %d forced — both paths must be exercised", grantedTotal, forcedTotal)
	}
	st := c.Stats()
	if st.Grants == 0 || st.Deferrals == 0 || st.Forced == 0 {
		t.Errorf("stats %+v: chaos run should defer, grant, and force", st)
	}
}
