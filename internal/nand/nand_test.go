package nand

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sdf/internal/sim"
)

// tinyParams is a small chip for fast tests, data mode on.
func tinyParams() Params {
	return Params{
		PageSize:       512,
		PagesPerBlock:  4,
		BlocksPerPlane: 8,
		Planes:         2,
		TRead:          75 * time.Microsecond,
		TProg:          1400 * time.Microsecond,
		TErase:         3 * time.Millisecond,
		EraseLimit:     50,
		RetainData:     true,
		Seed:           1,
	}
}

// runOp executes fn as a single simulation process and returns after
// the environment drains.
func runOp(t *testing.T, fn func(env *sim.Env, p *sim.Proc)) time.Duration {
	t.Helper()
	env := sim.NewEnv()
	env.Go("test", func(p *sim.Proc) { fn(env, p) })
	env.Run()
	return env.Now()
}

func TestGeometry(t *testing.T) {
	p := MLC25nm()
	if p.BlockBytes() != 2<<20 {
		t.Fatalf("block = %d, want 2 MiB", p.BlockBytes())
	}
	if p.ChipBytes() != 8<<30 {
		t.Fatalf("chip = %d, want 8 GiB", p.ChipBytes())
	}
}

func TestProgramRequiresErase(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		err := pl.Program(p, 0, 0, make([]byte, 512))
		if !errors.Is(err, ErrNotErased) {
			t.Errorf("program without erase: %v, want ErrNotErased", err)
		}
	})
}

func TestProgramSequentialOrder(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if err := pl.Erase(p, 0); err != nil {
			t.Fatal(err)
		}
		if err := pl.Program(p, 0, 0, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		err := pl.Program(p, 0, 2, make([]byte, 512))
		if !errors.Is(err, ErrOutOfOrder) {
			t.Errorf("out-of-order program: %v, want ErrOutOfOrder", err)
		}
		if err := pl.Program(p, 0, 1, make([]byte, 512)); err != nil {
			t.Errorf("in-order program: %v", err)
		}
	})
}

func TestReadBackRoundTrip(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if err := pl.Erase(p, 3); err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{0xAB}, 512)
		if err := pl.Program(p, 3, 0, want); err != nil {
			t.Fatal(err)
		}
		got, err := pl.ReadPage(p, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("read-back mismatch")
		}
	})
}

func TestReadUnwrittenFails(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if _, err := pl.ReadPage(p, 0, 0); !errors.Is(err, ErrUnwritten) {
			t.Errorf("read unwritten: %v, want ErrUnwritten", err)
		}
		if err := pl.Erase(p, 0); err != nil {
			t.Fatal(err)
		}
		if err := pl.Program(p, 0, 0, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		if _, err := pl.ReadPage(p, 0, 1); !errors.Is(err, ErrUnwritten) {
			t.Errorf("read beyond write pointer: %v, want ErrUnwritten", err)
		}
	})
}

func TestEraseClearsData(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if err := pl.Erase(p, 0); err != nil {
			t.Fatal(err)
		}
		if err := pl.Program(p, 0, 0, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		if err := pl.Erase(p, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := pl.ReadPage(p, 0, 0); !errors.Is(err, ErrUnwritten) {
			t.Errorf("read after erase: %v, want ErrUnwritten", err)
		}
	})
}

func TestOperationTiming(t *testing.T) {
	elapsed := runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if err := pl.Erase(p, 0); err != nil { // 3 ms
			t.Fatal(err)
		}
		if err := pl.Program(p, 0, 0, make([]byte, 512)); err != nil { // 1.4 ms
			t.Fatal(err)
		}
		if _, err := pl.ReadPage(p, 0, 0); err != nil { // 75 µs
			t.Fatal(err)
		}
	})
	want := 3*time.Millisecond + 1400*time.Microsecond + 75*time.Microsecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestPlanesOperateInParallel(t *testing.T) {
	env := sim.NewEnv()
	c := New(env, tinyParams())
	for i := 0; i < 2; i++ {
		plane := c.Plane(i)
		env.Go("eraser", func(p *sim.Proc) {
			if err := plane.Erase(p, 0); err != nil {
				t.Error(err)
			}
		})
	}
	env.Run()
	// Two planes erase concurrently: total time is one erase, not two.
	if env.Now() != 3*time.Millisecond {
		t.Fatalf("elapsed = %v, want 3ms (parallel)", env.Now())
	}
}

func TestPlaneSerializesOps(t *testing.T) {
	env := sim.NewEnv()
	c := New(env, tinyParams())
	pl := c.Plane(0)
	for i := 0; i < 2; i++ {
		blockIdx := i
		env.Go("eraser", func(p *sim.Proc) {
			if err := pl.Erase(p, blockIdx); err != nil {
				t.Error(err)
			}
		})
	}
	env.Run()
	if env.Now() != 6*time.Millisecond {
		t.Fatalf("elapsed = %v, want 6ms (serialized)", env.Now())
	}
}

func TestWearOutTurnsBlockBad(t *testing.T) {
	params := tinyParams()
	params.EraseLimit = 10
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, params)
		pl := c.Plane(0)
		var wornErr error
		for i := 0; i < 100; i++ {
			if err := pl.Erase(p, 0); err != nil {
				wornErr = err
				break
			}
		}
		if !errors.Is(wornErr, ErrWornOut) {
			t.Fatalf("block never wore out: %v", wornErr)
		}
		if !pl.Bad(0) {
			t.Fatal("worn block not marked bad")
		}
		if err := pl.Erase(p, 0); !errors.Is(err, ErrBadBlock) {
			t.Errorf("erase of bad block: %v, want ErrBadBlock", err)
		}
	})
}

// countBitErrors programs an all-zero page, reads it back, and counts
// flipped bits, repeating the read n times (reads are non-destructive).
func countBitErrors(t *testing.T, p *sim.Proc, pl *Plane, reads int) int {
	t.Helper()
	if err := pl.Erase(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := pl.Program(p, 1, 0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	flips := 0
	for trial := 0; trial < reads; trial++ {
		got, err := pl.ReadPage(p, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			for ; b != 0; b &= b - 1 {
				flips++
			}
		}
	}
	return flips
}

func TestNoErrorInjectionWhenBERZero(t *testing.T) {
	params := tinyParams()
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, params)
		if n := countBitErrors(t, p, c.Plane(0), 50); n != 0 {
			t.Fatalf("BER=0 produced %d bit flips", n)
		}
	})
}

func TestErrorInjectionAtBaseBER(t *testing.T) {
	params := tinyParams()
	params.BaseBER = 1e-3 // ~4 flips per 512B read
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, params)
		n := countBitErrors(t, p, c.Plane(0), 100)
		// Expect ~410 flips over 100 reads; allow a wide band.
		if n < 200 || n > 700 {
			t.Fatalf("flips = %d, want ~410", n)
		}
	})
}

func TestErrorInjectionGrowsWithWear(t *testing.T) {
	params := tinyParams()
	params.WearBER = 1e-2
	params.EraseLimit = 1000
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, params)
		pl := c.Plane(0)
		fresh := countBitErrors(t, p, pl, 50)
		for pl.EraseCount(1) < 500 { // wear to half the limit
			if err := pl.Erase(p, 1); err != nil {
				t.Fatal(err)
			}
		}
		worn := countBitErrors(t, p, pl, 50)
		if worn <= fresh {
			t.Fatalf("worn flips %d not greater than fresh flips %d", worn, fresh)
		}
	})
}

func TestAddressValidation(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if _, err := pl.ReadPage(p, 99, 0); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("bad block index: %v", err)
		}
		if err := pl.Erase(p, -1); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative block index: %v", err)
		}
		if err := pl.Program(p, 0, 99, nil); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("bad page index: %v", err)
		}
	})
}

func TestCounters(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(0)
		if err := pl.Erase(p, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := pl.Program(p, 0, i, make([]byte, 512)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := pl.ReadPage(p, 0, 0); err != nil {
			t.Fatal(err)
		}
		r, w, e := c.Counters()
		if r != 1 || w != 3 || e != 1 {
			t.Fatalf("counters = %d/%d/%d, want 1/3/1", r, w, e)
		}
	})
}

func TestTimingOnlyMode(t *testing.T) {
	params := tinyParams()
	params.RetainData = false
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, params)
		pl := c.Plane(0)
		if err := pl.Erase(p, 0); err != nil {
			t.Fatal(err)
		}
		if err := pl.Program(p, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
		data, err := pl.ReadPage(p, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if data != nil {
			t.Fatal("timing-only mode returned data")
		}
	})
}

func TestMarkBad(t *testing.T) {
	runOp(t, func(env *sim.Env, p *sim.Proc) {
		c := New(env, tinyParams())
		pl := c.Plane(1)
		pl.MarkBad(5)
		if !pl.Bad(5) || pl.BadBlocks() != 1 {
			t.Fatal("MarkBad did not take effect")
		}
		if err := pl.Erase(p, 5); !errors.Is(err, ErrBadBlock) {
			t.Errorf("erase of marked-bad block: %v", err)
		}
	})
}
