// Package nand models NAND flash chips: the timing, geometry, and
// reliability behaviour of the 25 nm MLC parts on the SDF card (two
// chips per channel, two planes per chip, 8 KB pages, 2 MB erase
// blocks; Table 3 of the paper).
//
// The model enforces real NAND constraints — erase-before-program,
// strictly sequential page programming within a block, plane-level
// operation serialization — and provides wear tracking, endurance-
// driven bad-block conversion, and wear-dependent bit-error injection
// for exercising the BCH path.
package nand

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Operation errors.
var (
	ErrBadBlock   = errors.New("nand: block is marked bad")
	ErrNotErased  = errors.New("nand: programming a page in a non-erased slot")
	ErrOutOfOrder = errors.New("nand: pages must be programmed sequentially within a block")
	ErrUnwritten  = errors.New("nand: reading an unwritten page")
	ErrOutOfRange = errors.New("nand: address out of range")
	ErrWornOut    = errors.New("nand: block exceeded its program/erase endurance")
)

// Params describes a chip's geometry, timing, and reliability model.
type Params struct {
	PageSize       int // bytes per page
	PagesPerBlock  int
	BlocksPerPlane int
	Planes         int // planes per chip

	TRead  time.Duration // array read: cell to page register
	TProg  time.Duration // program: page register to cells
	TErase time.Duration // block erase

	// EraseLimit is the nominal P/E endurance. Individual blocks get an
	// endurance sampled around this value; exceeding it turns the block
	// bad at the next erase. Zero disables wear-out.
	EraseLimit int

	// RetainData stores page payloads so reads return real bytes.
	// When false the chip is timing-only (large sweeps stay cheap).
	RetainData bool

	// BaseBER and WearBER set the raw bit error rate injected into
	// reads in data mode: BER = BaseBER + WearBER * (wear/EraseLimit)^2.
	// Zero disables error injection.
	BaseBER float64
	WearBER float64

	// InitialBadPPM is the manufacturing bad-block rate in parts per
	// million (typical MLC parts ship with up to 2% bad blocks).
	InitialBadPPM int

	Seed int64
}

// MLC25nm returns parameters for the paper's 25 nm MLC parts: 8 KB
// pages, 2 MB blocks, 2 planes, 8 GB per chip, tR=75 µs (§4.3),
// tErase=3 ms (§2.3). tProg is calibrated at 1.4 ms so that a
// channel's four planes sustain the paper's 1.01 GB/s aggregate raw
// write bandwidth (§3.2).
func MLC25nm() Params {
	return Params{
		PageSize:       8 << 10,
		PagesPerBlock:  256,  // 2 MB erase block
		BlocksPerPlane: 2048, // 4 GB plane, 8 GB chip
		Planes:         2,
		TRead:          75 * time.Microsecond,
		TProg:          1400 * time.Microsecond,
		TErase:         3 * time.Millisecond,
		EraseLimit:     3000,
	}
}

// BlockBytes returns the erase-block size in bytes.
func (p Params) BlockBytes() int { return p.PageSize * p.PagesPerBlock }

// PlaneBytes returns one plane's capacity in bytes.
func (p Params) PlaneBytes() int64 {
	return int64(p.BlockBytes()) * int64(p.BlocksPerPlane)
}

// ChipBytes returns the chip's raw capacity in bytes.
func (p Params) ChipBytes() int64 { return p.PlaneBytes() * int64(p.Planes) }

// block is the per-erase-block state.
type block struct {
	eraseCount int
	endurance  int // this block's individual P/E limit
	writePtr   int // next programmable page index; -1 if never erased
	bad        bool
}

// Plane is an independently operable flash plane. At most one array
// operation (read, program, erase) is active per plane at a time; the
// page cache register lets the controller overlap the next array read
// with the previous bus transfer, which the channel engine exploits.
type Plane struct {
	chip   *Chip
	index  int
	tl     *sim.Timeline
	blocks []block
	data   map[int64][]byte // pageIndex -> payload (RetainData mode)
}

// Chip is a NAND flash chip with Params.Planes independent planes.
type Chip struct {
	env      *sim.Env
	params   Params
	planes   []*Plane
	rng      *rand.Rand
	berBoost float64 // injected extra raw BER (uncorrectable-ECC bursts)

	reads    int64
	programs int64
	erases   int64
}

// New creates a chip. New blocks start un-erased (writePtr = -1): real
// flash ships erased, but requiring an explicit initial erase keeps the
// accounting uniform; FTLs erase blocks before first use anyway.
func New(env *sim.Env, params Params) *Chip {
	c := &Chip{
		env:    env,
		params: params,
		rng:    rand.New(rand.NewSource(params.Seed)),
	}
	for i := 0; i < params.Planes; i++ {
		pl := &Plane{
			chip:   c,
			index:  i,
			tl:     sim.NewTimeline(env, 1),
			blocks: make([]block, params.BlocksPerPlane),
		}
		if params.RetainData {
			pl.data = make(map[int64][]byte)
		}
		for b := range pl.blocks {
			pl.blocks[b].writePtr = -1
			pl.blocks[b].endurance = c.sampleEndurance()
			if params.InitialBadPPM > 0 && c.rng.Intn(1_000_000) < params.InitialBadPPM {
				pl.blocks[b].bad = true
			}
		}
		c.planes = append(c.planes, pl)
	}
	return c
}

// sampleEndurance draws a per-block endurance around EraseLimit
// (normal, sigma = 10%), reflecting process variation.
func (c *Chip) sampleEndurance() int {
	if c.params.EraseLimit <= 0 {
		return math.MaxInt
	}
	e := float64(c.params.EraseLimit) * (1 + 0.1*c.rng.NormFloat64())
	if e < 1 {
		e = 1
	}
	return int(e)
}

// Params returns the chip's construction parameters.
func (c *Chip) Params() Params { return c.params }

// SetBERBoost adds an extra raw bit error rate on top of the wear
// model, independent of RetainData. Fault plans use it to simulate an
// uncorrectable-ECC burst (read-disturb storm, marginal cell
// population); setting it back to 0 ends the burst. Requires data
// mode for the errors to materialize in payloads.
func (c *Chip) SetBERBoost(ber float64) {
	if ber < 0 {
		ber = 0
	}
	c.berBoost = ber
}

// BERBoost returns the currently injected extra raw BER.
func (c *Chip) BERBoost() float64 { return c.berBoost }

// Plane returns plane i.
func (c *Chip) Plane(i int) *Plane { return c.planes[i] }

// Planes returns the number of planes.
func (c *Chip) Planes() int { return len(c.planes) }

// Counters returns cumulative (reads, programs, erases) across planes.
func (c *Chip) Counters() (reads, programs, erases int64) {
	return c.reads, c.programs, c.erases
}

func (pl *Plane) checkAddr(blockIdx, page int) error {
	if blockIdx < 0 || blockIdx >= len(pl.blocks) {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, blockIdx, len(pl.blocks))
	}
	if page < 0 || page >= pl.chip.params.PagesPerBlock {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, pl.chip.params.PagesPerBlock)
	}
	return nil
}

func (pl *Plane) pageIndex(blockIdx, page int) int64 {
	return int64(blockIdx)*int64(pl.chip.params.PagesPerBlock) + int64(page)
}

// ReadPage performs an array read of one page, taking TRead of plane
// time. In data mode it returns the stored payload with wear-dependent
// bit errors injected; in timing-only mode it returns nil.
func (pl *Plane) ReadPage(p *sim.Proc, blockIdx, page int) ([]byte, error) {
	if err := pl.checkAddr(blockIdx, page); err != nil {
		return nil, err
	}
	b := &pl.blocks[blockIdx]
	if page >= b.writePtr {
		return nil, fmt.Errorf("%w: plane %d block %d page %d", ErrUnwritten, pl.index, blockIdx, page)
	}
	pl.tl.Occupy(p, pl.chip.params.TRead)
	pl.chip.reads++
	if pl.data == nil {
		return nil, nil
	}
	stored := pl.data[pl.pageIndex(blockIdx, page)]
	out := append([]byte(nil), stored...)
	pl.injectErrors(out, b.eraseCount)
	return out, nil
}

// injectErrors flips a Poisson-distributed number of random bits, with
// rate growing quadratically in wear.
func (pl *Plane) injectErrors(data []byte, wear int) {
	pp := pl.chip.params
	ber := pp.BaseBER + pl.chip.berBoost
	if pp.WearBER > 0 && pp.EraseLimit > 0 {
		frac := float64(wear) / float64(pp.EraseLimit)
		ber += pp.WearBER * frac * frac
	}
	if ber <= 0 || len(data) == 0 {
		return
	}
	bits := float64(len(data) * 8)
	n := poisson(pl.chip.rng, ber*bits)
	for i := 0; i < n; i++ {
		pos := pl.chip.rng.Intn(len(data) * 8)
		data[pos/8] ^= 1 << (7 - uint(pos%8))
	}
}

// poisson samples a Poisson variate by Knuth's method (lambda is small
// here: a raw BER of 1e-4 on an 8 KB page gives lambda ~ 6.5).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Program writes one page, taking TProg of plane time. Pages within a
// block must be programmed strictly in order into an erased block, as
// on real NAND. data may be nil in timing-only mode.
func (pl *Plane) Program(p *sim.Proc, blockIdx, page int, data []byte) error {
	if err := pl.checkAddr(blockIdx, page); err != nil {
		return err
	}
	b := &pl.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	if b.writePtr < 0 {
		return fmt.Errorf("%w: plane %d block %d", ErrNotErased, pl.index, blockIdx)
	}
	if page != b.writePtr {
		return fmt.Errorf("%w: plane %d block %d page %d, expected %d",
			ErrOutOfOrder, pl.index, blockIdx, page, b.writePtr)
	}
	if data != nil && len(data) != pl.chip.params.PageSize {
		return fmt.Errorf("nand: program payload %d bytes, want %d", len(data), pl.chip.params.PageSize)
	}
	pl.tl.Occupy(p, pl.chip.params.TProg)
	b.writePtr++
	pl.chip.programs++
	if pl.data != nil && data != nil {
		pl.data[pl.pageIndex(blockIdx, page)] = append([]byte(nil), data...)
	}
	return nil
}

// Erase erases a block, taking TErase of plane time. A block whose
// erase count passes its endurance becomes bad and returns ErrWornOut;
// the caller (the channel engine's bad block manager) must retire it.
func (pl *Plane) Erase(p *sim.Proc, blockIdx int) error {
	if err := pl.checkAddr(blockIdx, 0); err != nil {
		return err
	}
	b := &pl.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	env := pl.chip.env
	span := env.Tracer().Begin(env.Now(), p.Span(), "nand/erase", trace.PhaseFlash)
	pl.tl.Occupy(p, pl.chip.params.TErase)
	env.Tracer().End(env.Now(), span)
	pl.chip.erases++
	b.eraseCount++
	if pl.data != nil {
		base := pl.pageIndex(blockIdx, 0)
		for i := 0; i < pl.chip.params.PagesPerBlock; i++ {
			delete(pl.data, base+int64(i))
		}
	}
	if b.eraseCount > b.endurance {
		b.bad = true
		b.writePtr = -1
		return fmt.Errorf("%w: plane %d block %d after %d cycles",
			ErrWornOut, pl.index, blockIdx, b.eraseCount)
	}
	b.writePtr = 0
	return nil
}

// Preload marks a block as erased and its first pageCount pages as
// programmed, in zero simulated time and without payloads. It exists
// so experiments can start from a pre-filled device (e.g. "almost
// full", as in the paper's Figure 8 setup) without simulating hours of
// fill traffic. It must not be used in RetainData mode.
func (pl *Plane) Preload(blockIdx, pageCount int) error {
	if err := pl.checkAddr(blockIdx, 0); err != nil {
		return err
	}
	if pageCount < 0 || pageCount > pl.chip.params.PagesPerBlock {
		return fmt.Errorf("%w: preload %d pages", ErrOutOfRange, pageCount)
	}
	if pl.data != nil {
		return errors.New("nand: Preload is incompatible with RetainData")
	}
	b := &pl.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	b.writePtr = pageCount
	return nil
}

// EraseCount returns a block's cumulative program/erase cycles.
func (pl *Plane) EraseCount(blockIdx int) int { return pl.blocks[blockIdx].eraseCount }

// Bad reports whether a block is marked bad.
func (pl *Plane) Bad(blockIdx int) bool { return pl.blocks[blockIdx].bad }

// MarkBad retires a block explicitly (e.g. after persistent program
// failures observed by the controller).
func (pl *Plane) MarkBad(blockIdx int) { pl.blocks[blockIdx].bad = true }

// WritePtr returns the next programmable page index of a block, or -1
// if the block needs an erase first.
func (pl *Plane) WritePtr(blockIdx int) int { return pl.blocks[blockIdx].writePtr }

// BadBlocks returns the number of bad blocks in the plane.
func (pl *Plane) BadBlocks() int {
	n := 0
	for i := range pl.blocks {
		if pl.blocks[i].bad {
			n++
		}
	}
	return n
}

// MaxWear returns the highest erase count in the plane.
func (pl *Plane) MaxWear() int {
	max := 0
	for i := range pl.blocks {
		if pl.blocks[i].eraseCount > max {
			max = pl.blocks[i].eraseCount
		}
	}
	return max
}

// Blocks returns the number of blocks in the plane.
func (pl *Plane) Blocks() int { return len(pl.blocks) }
