// Package nand models NAND flash chips: the timing, geometry, and
// reliability behaviour of the 25 nm MLC parts on the SDF card (two
// chips per channel, two planes per chip, 8 KB pages, 2 MB erase
// blocks; Table 3 of the paper).
//
// The model enforces real NAND constraints — erase-before-program,
// strictly sequential page programming within a block, plane-level
// operation serialization — and provides wear tracking, endurance-
// driven bad-block conversion, and wear-dependent bit-error injection
// for exercising the BCH path.
//
// Cell state lives in a Media object separable from the Chip: a chip
// is the powered controller-facing view, the media is what the cells
// retain across power loss. PowerOff halts a chip mid-operation
// (tearing in-flight programs and erases); Mount rebuilds a fresh
// chip over the surviving media in a new simulation environment.
package nand

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Operation errors.
var (
	ErrBadBlock   = errors.New("nand: block is marked bad")
	ErrNotErased  = errors.New("nand: programming a page in a non-erased slot")
	ErrOutOfOrder = errors.New("nand: pages must be programmed sequentially within a block")
	ErrUnwritten  = errors.New("nand: reading an unwritten page")
	ErrOutOfRange = errors.New("nand: address out of range")
	ErrWornOut    = errors.New("nand: block exceeded its program/erase endurance")
	ErrPowerLoss  = errors.New("nand: chip lost power")
	ErrTornPage   = errors.New("nand: page program was cut by power loss")
)

// Params describes a chip's geometry, timing, and reliability model.
type Params struct {
	PageSize       int // bytes per page
	PagesPerBlock  int
	BlocksPerPlane int
	Planes         int // planes per chip

	TRead  time.Duration // array read: cell to page register
	TProg  time.Duration // program: page register to cells
	TErase time.Duration // block erase

	// EraseLimit is the nominal P/E endurance. Individual blocks get an
	// endurance sampled around this value; exceeding it turns the block
	// bad at the next erase. Zero disables wear-out.
	EraseLimit int

	// RetainData stores page payloads so reads return real bytes.
	// When false the chip is timing-only (large sweeps stay cheap).
	RetainData bool

	// BaseBER and WearBER set the raw bit error rate injected into
	// reads in data mode: BER = BaseBER + WearBER * (wear/EraseLimit)^2.
	// Zero disables error injection.
	BaseBER float64
	WearBER float64

	// InitialBadPPM is the manufacturing bad-block rate in parts per
	// million (typical MLC parts ship with up to 2% bad blocks).
	InitialBadPPM int

	Seed int64
}

// MLC25nm returns parameters for the paper's 25 nm MLC parts: 8 KB
// pages, 2 MB blocks, 2 planes, 8 GB per chip, tR=75 µs (§4.3),
// tErase=3 ms (§2.3). tProg is calibrated at 1.4 ms so that a
// channel's four planes sustain the paper's 1.01 GB/s aggregate raw
// write bandwidth (§3.2).
func MLC25nm() Params {
	return Params{
		PageSize:       8 << 10,
		PagesPerBlock:  256,  // 2 MB erase block
		BlocksPerPlane: 2048, // 4 GB plane, 8 GB chip
		Planes:         2,
		TRead:          75 * time.Microsecond,
		TProg:          1400 * time.Microsecond,
		TErase:         3 * time.Millisecond,
		EraseLimit:     3000,
	}
}

// BlockBytes returns the erase-block size in bytes.
func (p Params) BlockBytes() int { return p.PageSize * p.PagesPerBlock }

// PlaneBytes returns one plane's capacity in bytes.
func (p Params) PlaneBytes() int64 {
	return int64(p.BlockBytes()) * int64(p.BlocksPerPlane)
}

// ChipBytes returns the chip's raw capacity in bytes.
func (p Params) ChipBytes() int64 { return p.PlaneBytes() * int64(p.Planes) }

// block is the per-erase-block state.
type block struct {
	eraseCount int
	endurance  int // this block's individual P/E limit
	writePtr   int // next programmable page index; -1 if never erased
	bad        bool
}

// planeMedia is one plane's persistent cell state: what the silicon
// retains when power is cut.
type planeMedia struct {
	blocks        []block
	pagesPerBlock int
	data          map[int64][]byte // pageIndex -> payload (RetainData mode)
	// spares holds out-of-band recovery metadata per block as a lazily
	// allocated page->bytes slab; the byte payloads are carved out of
	// arena in bulk, so programming a page's ~41-byte OOB area costs no
	// per-page allocation or map churn on the simulator's hottest write
	// path.
	spares [][][]byte
	arena  []byte
	torn   map[int64]bool // pages whose program pulse power loss cut
	// interruptedErases counts erase pulses cut by power loss; the
	// recovery scan reports them as partially-erased blocks.
	interruptedErases int
}

// setSpare retains a copy of a page's out-of-band bytes, appending the
// payload to the plane's spare arena.
func (pm *planeMedia) setSpare(blockIdx, page int, sp []byte) {
	sl := pm.spares[blockIdx]
	if sl == nil {
		sl = make([][]byte, pm.pagesPerBlock)
		pm.spares[blockIdx] = sl
	}
	if len(sp) > cap(pm.arena)-len(pm.arena) {
		size := 64 << 10
		if len(sp) > size {
			size = len(sp)
		}
		pm.arena = make([]byte, 0, size)
	}
	n := len(pm.arena)
	pm.arena = append(pm.arena, sp...)
	sl[page] = pm.arena[n : n+len(sp) : n+len(sp)]
}

// getSpare returns the retained out-of-band bytes, nil if none. The
// returned slice aliases the arena; callers copy before exposing it.
func (pm *planeMedia) getSpare(blockIdx, page int) []byte {
	sl := pm.spares[blockIdx]
	if sl == nil {
		return nil
	}
	return sl[page]
}

// wipe clears one block's retained pages (payloads, spares, torn
// marks), as an erase pulse does. The per-page map walks are guarded
// so the common case — timing-only media with no torn pages — erases
// in O(pagesPerBlock) pointer stores with no map traffic.
func (pm *planeMedia) wipe(blockIdx, pagesPerBlock int) {
	if sl := pm.spares[blockIdx]; sl != nil {
		for i := range sl {
			sl[i] = nil
		}
	}
	base := int64(blockIdx) * int64(pagesPerBlock)
	if pm.data != nil {
		for i := 0; i < pagesPerBlock; i++ {
			delete(pm.data, base+int64(i))
		}
	}
	if len(pm.torn) > 0 {
		for i := 0; i < pagesPerBlock; i++ {
			delete(pm.torn, base+int64(i))
		}
	}
}

// Media is a chip's persistent state. It survives Env teardown: after
// a power loss, hand the Media of the dead chip to Mount to rebuild a
// chip over the same cells in a fresh environment.
type Media struct {
	params Params
	planes []*planeMedia
}

// Params returns the geometry the media was manufactured with.
func (m *Media) Params() Params { return m.params }

// Plane is an independently operable flash plane. At most one array
// operation (read, program, erase) is active per plane at a time; the
// page cache register lets the controller overlap the next array read
// with the previous bus transfer, which the channel engine exploits.
type Plane struct {
	chip  *Chip
	index int
	tl    *sim.Timeline
	m     *planeMedia
}

// Chip is a NAND flash chip with Params.Planes independent planes.
type Chip struct {
	env      *sim.Env
	params   Params
	media    *Media
	planes   []*Plane
	rng      *rand.Rand
	berBoost float64 // injected extra raw BER (uncorrectable-ECC bursts)

	off   bool          // power has been cut
	offAt time.Duration // instant the power died

	reads    int64
	programs int64
	erases   int64
}

// New creates a chip. New blocks start un-erased (writePtr = -1): real
// flash ships erased, but requiring an explicit initial erase keeps the
// accounting uniform; FTLs erase blocks before first use anyway.
func New(env *sim.Env, params Params) *Chip {
	rng := rand.New(rand.NewSource(params.Seed))
	m := &Media{params: params}
	for i := 0; i < params.Planes; i++ {
		pm := &planeMedia{
			blocks:        make([]block, params.BlocksPerPlane),
			pagesPerBlock: params.PagesPerBlock,
			spares:        make([][][]byte, params.BlocksPerPlane),
			torn:          make(map[int64]bool),
		}
		if params.RetainData {
			pm.data = make(map[int64][]byte)
		}
		for b := range pm.blocks {
			pm.blocks[b].writePtr = -1
			pm.blocks[b].endurance = sampleEndurance(params, rng)
			if params.InitialBadPPM > 0 && rng.Intn(1_000_000) < params.InitialBadPPM {
				pm.blocks[b].bad = true
			}
		}
		m.planes = append(m.planes, pm)
	}
	return mount(env, params, m, rng)
}

// Mount rebuilds a chip over media that survived a power loss, in a
// fresh environment. Geometry must match the media's; endurance and
// bad-block state are not re-sampled — they live in the media. The
// error-injection RNG restarts from Seed, which is itself
// deterministic: the same pre-crash run plus the same crash instant
// replays to the same post-mount error stream.
func Mount(env *sim.Env, params Params, m *Media) (*Chip, error) {
	mp := m.params
	if mp.PageSize != params.PageSize || mp.PagesPerBlock != params.PagesPerBlock ||
		mp.BlocksPerPlane != params.BlocksPerPlane || mp.Planes != params.Planes ||
		mp.RetainData != params.RetainData {
		return nil, fmt.Errorf("nand: mount geometry mismatch: media %dx%dx%d planes=%d data=%v, params %dx%dx%d planes=%d data=%v",
			mp.PageSize, mp.PagesPerBlock, mp.BlocksPerPlane, mp.Planes, mp.RetainData,
			params.PageSize, params.PagesPerBlock, params.BlocksPerPlane, params.Planes, params.RetainData)
	}
	return mount(env, params, m, rand.New(rand.NewSource(params.Seed))), nil
}

func mount(env *sim.Env, params Params, m *Media, rng *rand.Rand) *Chip {
	c := &Chip{
		env:    env,
		params: params,
		media:  m,
		rng:    rng,
	}
	for i := 0; i < params.Planes; i++ {
		c.planes = append(c.planes, &Plane{
			chip:  c,
			index: i,
			tl:    sim.NewTimeline(env, 1),
			m:     m.planes[i],
		})
	}
	return c
}

// sampleEndurance draws a per-block endurance around EraseLimit
// (normal, sigma = 10%), reflecting process variation.
func sampleEndurance(params Params, rng *rand.Rand) int {
	if params.EraseLimit <= 0 {
		return math.MaxInt
	}
	e := float64(params.EraseLimit) * (1 + 0.1*rng.NormFloat64())
	if e < 1 {
		e = 1
	}
	return int(e)
}

// Params returns the chip's construction parameters.
func (c *Chip) Params() Params { return c.params }

// Media returns the chip's persistent cell state, for handing to
// Mount after a power loss.
func (c *Chip) Media() *Media { return c.media }

// PowerOff cuts the chip's power at the current instant; there is no
// power-on — recovery is by Mount-ing the Media into a fresh chip.
// Operations already past their admission check resolve when their
// array pulse would have completed: a program whose pulse had begun
// leaves a torn page (counted in the write pointer, no payload or
// spare retained, reads as ErrTornPage after remount), an erase
// mid-pulse leaves a partially-erased block (wear charged, retained
// pages gone, block needs a fresh erase). Pulses that had not started
// leave no trace. All resolutions return ErrPowerLoss.
func (c *Chip) PowerOff() {
	if !c.off {
		c.off = true
		c.offAt = c.env.Now()
	}
}

// PoweredOff reports whether the chip's power has been cut.
func (c *Chip) PoweredOff() bool { return c.off }

// SetBERBoost adds an extra raw bit error rate on top of the wear
// model, independent of RetainData. Fault plans use it to simulate an
// uncorrectable-ECC burst (read-disturb storm, marginal cell
// population); setting it back to 0 ends the burst. Requires data
// mode for the errors to materialize in payloads.
func (c *Chip) SetBERBoost(ber float64) {
	if ber < 0 {
		ber = 0
	}
	c.berBoost = ber
}

// BERBoost returns the currently injected extra raw BER.
func (c *Chip) BERBoost() float64 { return c.berBoost }

// Plane returns plane i.
func (c *Chip) Plane(i int) *Plane { return c.planes[i] }

// Planes returns the number of planes.
func (c *Chip) Planes() int { return len(c.planes) }

// Counters returns cumulative (reads, programs, erases) across planes.
func (c *Chip) Counters() (reads, programs, erases int64) {
	return c.reads, c.programs, c.erases
}

// RegisterMetrics exports the chip's command counters and media
// health against r. The callbacks read plain fields and per-plane
// media state — they must stay park-free, per the registry's
// callback contract.
func (c *Chip) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.CounterFunc("nand_reads_total", func() int64 { return c.reads }, labels...)
	r.CounterFunc("nand_programs_total", func() int64 { return c.programs }, labels...)
	r.CounterFunc("nand_erases_total", func() int64 { return c.erases }, labels...)
	r.GaugeFunc("nand_bad_blocks", func() float64 {
		var n int
		for _, pl := range c.planes {
			n += pl.BadBlocks()
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("nand_interrupted_erases", func() float64 {
		var n int
		for _, pl := range c.planes {
			n += pl.InterruptedErases()
		}
		return float64(n)
	}, labels...)
}

func (pl *Plane) checkAddr(blockIdx, page int) error {
	if blockIdx < 0 || blockIdx >= len(pl.m.blocks) {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, blockIdx, len(pl.m.blocks))
	}
	if page < 0 || page >= pl.chip.params.PagesPerBlock {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, pl.chip.params.PagesPerBlock)
	}
	return nil
}

func (pl *Plane) pageIndex(blockIdx, page int) int64 {
	return int64(blockIdx)*int64(pl.chip.params.PagesPerBlock) + int64(page)
}

// ReadPage performs an array read of one page, taking TRead of plane
// time. In data mode it returns the stored payload with wear-dependent
// bit errors injected; in timing-only mode it returns nil.
func (pl *Plane) ReadPage(p *sim.Proc, blockIdx, page int) ([]byte, error) {
	if err := pl.checkAddr(blockIdx, page); err != nil {
		return nil, err
	}
	if pl.chip.off {
		return nil, fmt.Errorf("%w: plane %d", ErrPowerLoss, pl.index)
	}
	b := &pl.m.blocks[blockIdx]
	if page >= b.writePtr {
		return nil, fmt.Errorf("%w: plane %d block %d page %d", ErrUnwritten, pl.index, blockIdx, page)
	}
	pl.tl.Occupy(p, pl.chip.params.TRead)
	if pl.chip.off {
		return nil, fmt.Errorf("%w: plane %d", ErrPowerLoss, pl.index)
	}
	if pl.m.torn[pl.pageIndex(blockIdx, page)] {
		return nil, fmt.Errorf("%w: plane %d block %d page %d", ErrTornPage, pl.index, blockIdx, page)
	}
	pl.chip.reads++
	if pl.m.data == nil {
		return nil, nil
	}
	stored := pl.m.data[pl.pageIndex(blockIdx, page)]
	out := append([]byte(nil), stored...)
	pl.injectErrors(out, b.eraseCount)
	return out, nil
}

// injectErrors flips a Poisson-distributed number of random bits, with
// rate growing quadratically in wear.
func (pl *Plane) injectErrors(data []byte, wear int) {
	pp := pl.chip.params
	ber := pp.BaseBER + pl.chip.berBoost
	if pp.WearBER > 0 && pp.EraseLimit > 0 {
		frac := float64(wear) / float64(pp.EraseLimit)
		ber += pp.WearBER * frac * frac
	}
	if ber <= 0 || len(data) == 0 {
		return
	}
	bits := float64(len(data) * 8)
	n := poisson(pl.chip.rng, ber*bits)
	for i := 0; i < n; i++ {
		pos := pl.chip.rng.Intn(len(data) * 8)
		data[pos/8] ^= 1 << (7 - uint(pos%8))
	}
}

// poisson samples a Poisson variate by Knuth's method (lambda is small
// here: a raw BER of 1e-4 on an 8 KB page gives lambda ~ 6.5).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Program writes one page, taking TProg of plane time. Pages within a
// block must be programmed strictly in order into an erased block, as
// on real NAND. data may be nil in timing-only mode.
func (pl *Plane) Program(p *sim.Proc, blockIdx, page int, data []byte) error {
	return pl.ProgramOOB(p, blockIdx, page, data, nil)
}

// ProgramOOB writes one page plus its out-of-band spare-area bytes —
// the channel FTL's recovery metadata (write ID, sequence, CRC). The
// spare is programmed in the same pulse as the page, so power loss
// either retains both or tears both; a torn page retains neither.
func (pl *Plane) ProgramOOB(p *sim.Proc, blockIdx, page int, data, spare []byte) error {
	if err := pl.checkAddr(blockIdx, page); err != nil {
		return err
	}
	if pl.chip.off {
		return fmt.Errorf("%w: plane %d", ErrPowerLoss, pl.index)
	}
	b := &pl.m.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	if b.writePtr < 0 {
		return fmt.Errorf("%w: plane %d block %d", ErrNotErased, pl.index, blockIdx)
	}
	if page != b.writePtr {
		return fmt.Errorf("%w: plane %d block %d page %d, expected %d",
			ErrOutOfOrder, pl.index, blockIdx, page, b.writePtr)
	}
	if data != nil && len(data) != pl.chip.params.PageSize {
		return fmt.Errorf("nand: program payload %d bytes, want %d", len(data), pl.chip.params.PageSize)
	}
	pl.tl.Occupy(p, pl.chip.params.TProg)
	if pl.chip.off {
		// The plane timeline put this pulse at [Now-TProg, Now). If it
		// began before the power died, the cells saw a partial pulse:
		// the page is torn — occupied but unreadable. Otherwise the
		// pulse never started and the block is untouched.
		if pl.chip.env.Now()-pl.chip.params.TProg < pl.chip.offAt {
			b.writePtr++
			pl.m.torn[pl.pageIndex(blockIdx, page)] = true
		}
		return fmt.Errorf("%w: plane %d block %d page %d", ErrPowerLoss, pl.index, blockIdx, page)
	}
	b.writePtr++
	pl.chip.programs++
	if pl.m.data != nil && data != nil {
		pl.m.data[pl.pageIndex(blockIdx, page)] = append([]byte(nil), data...)
	}
	if spare != nil {
		pl.m.setSpare(blockIdx, page, spare)
	}
	return nil
}

// Erase erases a block, taking TErase of plane time. A block whose
// erase count passes its endurance becomes bad and returns ErrWornOut;
// the caller (the channel engine's bad block manager) must retire it.
func (pl *Plane) Erase(p *sim.Proc, blockIdx int) error {
	if err := pl.checkAddr(blockIdx, 0); err != nil {
		return err
	}
	b := &pl.m.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	if pl.chip.off {
		return fmt.Errorf("%w: plane %d", ErrPowerLoss, pl.index)
	}
	env := pl.chip.env
	span := env.Tracer().Begin(env.Now(), p.Span(), "nand/erase", trace.PhaseFlash)
	pl.tl.Occupy(p, pl.chip.params.TErase)
	env.Tracer().End(env.Now(), span)
	if pl.chip.off {
		// Pulse at [Now-TErase, Now): if it began before the power
		// died, the cells are partially erased — retained pages are
		// gone, wear is charged, and the block needs a fresh erase
		// before reuse. A pulse that never started leaves no trace.
		if env.Now()-pl.chip.params.TErase < pl.chip.offAt {
			b.eraseCount++
			pl.m.wipe(blockIdx, pl.chip.params.PagesPerBlock)
			b.writePtr = -1
			pl.m.interruptedErases++
			if b.eraseCount > b.endurance {
				b.bad = true
			}
		}
		return fmt.Errorf("%w: plane %d block %d", ErrPowerLoss, pl.index, blockIdx)
	}
	pl.chip.erases++
	b.eraseCount++
	pl.m.wipe(blockIdx, pl.chip.params.PagesPerBlock)
	if b.eraseCount > b.endurance {
		b.bad = true
		b.writePtr = -1
		return fmt.Errorf("%w: plane %d block %d after %d cycles",
			ErrWornOut, pl.index, blockIdx, b.eraseCount)
	}
	b.writePtr = 0
	return nil
}

// Preload marks a block as erased and its first pageCount pages as
// programmed, in zero simulated time and without payloads. It exists
// so experiments can start from a pre-filled device (e.g. "almost
// full", as in the paper's Figure 8 setup) without simulating hours of
// fill traffic. It must not be used in RetainData mode.
func (pl *Plane) Preload(blockIdx, pageCount int) error {
	if err := pl.checkAddr(blockIdx, 0); err != nil {
		return err
	}
	if pageCount < 0 || pageCount > pl.chip.params.PagesPerBlock {
		return fmt.Errorf("%w: preload %d pages", ErrOutOfRange, pageCount)
	}
	if pl.m.data != nil {
		return errors.New("nand: Preload is incompatible with RetainData")
	}
	b := &pl.m.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	b.writePtr = pageCount
	return nil
}

// PreloadSpares marks a block as erased with its first len(spares)
// pages programmed and carrying the given out-of-band bytes, in zero
// simulated time and without payloads (timing-only mode, like
// Preload). The recovery experiment uses it to stage a pre-crash fill
// whose mount-time scan finds real metadata, without simulating the
// fill traffic.
func (pl *Plane) PreloadSpares(blockIdx int, spares [][]byte) error {
	if err := pl.checkAddr(blockIdx, 0); err != nil {
		return err
	}
	if len(spares) > pl.chip.params.PagesPerBlock {
		return fmt.Errorf("%w: preload %d spares", ErrOutOfRange, len(spares))
	}
	if pl.m.data != nil {
		return errors.New("nand: PreloadSpares is incompatible with RetainData")
	}
	b := &pl.m.blocks[blockIdx]
	if b.bad {
		return fmt.Errorf("%w: plane %d block %d", ErrBadBlock, pl.index, blockIdx)
	}
	pl.m.wipe(blockIdx, pl.chip.params.PagesPerBlock)
	b.writePtr = len(spares)
	for i, sp := range spares {
		pl.m.setSpare(blockIdx, i, sp)
	}
	return nil
}

// Spare returns the out-of-band bytes programmed with a page, or nil
// if the page is unwritten, torn, or carries no metadata. It costs no
// simulated time: recovery scans charge their own probe timing in
// bulk (flashchan.Recover).
func (pl *Plane) Spare(blockIdx, page int) []byte {
	if err := pl.checkAddr(blockIdx, page); err != nil {
		return nil
	}
	sp := pl.m.getSpare(blockIdx, page)
	if sp == nil {
		return nil
	}
	return append([]byte(nil), sp...)
}

// Torn reports whether a page's program pulse was cut by power loss.
func (pl *Plane) Torn(blockIdx, page int) bool {
	if err := pl.checkAddr(blockIdx, page); err != nil {
		return false
	}
	return pl.m.torn[pl.pageIndex(blockIdx, page)]
}

// InterruptedErases returns how many erase pulses power loss has cut
// on this plane.
func (pl *Plane) InterruptedErases() int { return pl.m.interruptedErases }

// EraseCount returns a block's cumulative program/erase cycles.
func (pl *Plane) EraseCount(blockIdx int) int { return pl.m.blocks[blockIdx].eraseCount }

// Bad reports whether a block is marked bad.
func (pl *Plane) Bad(blockIdx int) bool { return pl.m.blocks[blockIdx].bad }

// MarkBad retires a block explicitly (e.g. after persistent program
// failures observed by the controller).
func (pl *Plane) MarkBad(blockIdx int) { pl.m.blocks[blockIdx].bad = true }

// WritePtr returns the next programmable page index of a block, or -1
// if the block needs an erase first.
func (pl *Plane) WritePtr(blockIdx int) int { return pl.m.blocks[blockIdx].writePtr }

// BadBlocks returns the number of bad blocks in the plane.
func (pl *Plane) BadBlocks() int {
	n := 0
	for i := range pl.m.blocks {
		if pl.m.blocks[i].bad {
			n++
		}
	}
	return n
}

// MaxWear returns the highest erase count in the plane.
func (pl *Plane) MaxWear() int {
	max := 0
	for i := range pl.m.blocks {
		if pl.m.blocks[i].eraseCount > max {
			max = pl.m.blocks[i].eraseCount
		}
	}
	return max
}

// Blocks returns the number of blocks in the plane.
func (pl *Plane) Blocks() int { return len(pl.m.blocks) }

// Timeline returns the plane's occupancy timeline (the channel
// recovery scan charges bulk probe time on it).
func (pl *Plane) Timeline() *sim.Timeline { return pl.tl }
