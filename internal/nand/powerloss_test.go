package nand

import (
	"errors"
	"testing"

	"sdf/internal/sim"
)

// plParams is a one-plane data-mode chip with error injection off, so
// the power-loss tests see only crash damage.
func plParams() Params {
	p := MLC25nm()
	p.BlocksPerPlane = 4
	p.PagesPerBlock = 4
	p.Planes = 1
	p.RetainData = true
	p.BaseBER = 0
	p.WearBER = 0
	p.InitialBadPPM = 0
	p.Seed = 1
	return p
}

// TestPowerLossTearsProgram cuts power inside a program pulse: the
// page must come back occupied but unreadable (torn), and the tear
// must survive a remount.
func TestPowerLossTearsProgram(t *testing.T) {
	params := plParams()
	env := sim.NewEnv()
	chip := New(env, params)
	pl := chip.Plane(0)
	data := make([]byte, params.PageSize)
	var progErr error
	env.Go("t", func(p *sim.Proc) {
		if err := pl.Erase(p, 0); err != nil {
			t.Error(err)
			return
		}
		// The pulse spans [TErase, TErase+TProg); the cut lands inside.
		progErr = pl.ProgramOOB(p, 0, 0, data, []byte{1, 2, 3})
	})
	env.Schedule(params.TErase+params.TProg/2, chip.PowerOff)
	env.Run()
	if !errors.Is(progErr, ErrPowerLoss) {
		t.Fatalf("program under power loss: %v, want ErrPowerLoss", progErr)
	}
	if pl.WritePtr(0) != 1 {
		t.Fatalf("writePtr = %d, want 1 (torn page occupies its slot)", pl.WritePtr(0))
	}
	if !pl.Torn(0, 0) {
		t.Fatal("page not marked torn")
	}
	env.Close()

	env2 := sim.NewEnv()
	defer env2.Close()
	chip2, err := Mount(env2, params, chip.Media())
	if err != nil {
		t.Fatal(err)
	}
	pl2 := chip2.Plane(0)
	if !pl2.Torn(0, 0) {
		t.Fatal("tear lost across remount")
	}
	if pl2.Spare(0, 0) != nil {
		t.Fatal("torn page retained its spare")
	}
	r := env2.Go("t", func(p *sim.Proc) {
		if _, err := pl2.ReadPage(p, 0, 0); !errors.Is(err, ErrTornPage) {
			t.Errorf("read of torn page: %v, want ErrTornPage", err)
		}
	})
	env2.RunUntilDone(r)
}

// TestPowerLossQueuedProgramLeavesNoTrace queues programs to two
// blocks on one plane and cuts power inside the first pulse: the
// first page tears, but the second pulse never started and must leave
// its block untouched.
func TestPowerLossQueuedProgramLeavesNoTrace(t *testing.T) {
	params := plParams()
	env := sim.NewEnv()
	defer env.Close()
	chip := New(env, params)
	pl := chip.Plane(0)
	data := make([]byte, params.PageSize)
	prep := env.Go("prep", func(p *sim.Proc) {
		for b := 0; b < 2; b++ {
			if err := pl.Erase(p, b); err != nil {
				t.Error(err)
			}
		}
	})
	env.RunUntilDone(prep)
	var err0, err1 error
	env.Go("w0", func(p *sim.Proc) { err0 = pl.ProgramOOB(p, 0, 0, data, nil) })
	env.Go("w1", func(p *sim.Proc) { err1 = pl.ProgramOOB(p, 1, 0, data, nil) })
	env.Schedule(params.TProg/2, chip.PowerOff)
	env.Run()
	if !errors.Is(err0, ErrPowerLoss) || !errors.Is(err1, ErrPowerLoss) {
		t.Fatalf("programs under power loss: %v, %v, want ErrPowerLoss", err0, err1)
	}
	if pl.WritePtr(0) != 1 || !pl.Torn(0, 0) {
		t.Fatalf("block 0: writePtr=%d torn=%v, want a torn page", pl.WritePtr(0), pl.Torn(0, 0))
	}
	if pl.WritePtr(1) != 0 || pl.Torn(1, 0) {
		t.Fatalf("block 1: writePtr=%d torn=%v, want untouched (pulse never started)", pl.WritePtr(1), pl.Torn(1, 0))
	}
}

// TestPowerLossInterruptsErase cuts power inside an erase pulse: wear
// is charged, retained pages are gone, the block needs a fresh erase,
// and the interruption is counted for the recovery scan.
func TestPowerLossInterruptsErase(t *testing.T) {
	params := plParams()
	env := sim.NewEnv()
	chip := New(env, params)
	pl := chip.Plane(0)
	data := make([]byte, params.PageSize)
	prep := env.Go("prep", func(p *sim.Proc) {
		if err := pl.Erase(p, 0); err != nil {
			t.Error(err)
			return
		}
		if err := pl.Program(p, 0, 0, data); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(prep)
	wearBefore := pl.EraseCount(0)
	var eraseErr error
	env.Go("e", func(p *sim.Proc) { eraseErr = pl.Erase(p, 0) })
	env.Schedule(params.TErase/2, chip.PowerOff)
	env.Run()
	if !errors.Is(eraseErr, ErrPowerLoss) {
		t.Fatalf("erase under power loss: %v, want ErrPowerLoss", eraseErr)
	}
	if pl.WritePtr(0) != -1 {
		t.Fatalf("writePtr = %d, want -1 (partially erased)", pl.WritePtr(0))
	}
	if pl.EraseCount(0) != wearBefore+1 {
		t.Fatalf("eraseCount = %d, want %d (partial pulse still wears)", pl.EraseCount(0), wearBefore+1)
	}
	if pl.InterruptedErases() != 1 {
		t.Fatalf("interruptedErases = %d, want 1", pl.InterruptedErases())
	}
	env.Close()

	// A fresh erase after remount restores the block to service.
	env2 := sim.NewEnv()
	defer env2.Close()
	chip2, err := Mount(env2, params, chip.Media())
	if err != nil {
		t.Fatal(err)
	}
	pl2 := chip2.Plane(0)
	w := env2.Go("t", func(p *sim.Proc) {
		if err := pl2.Erase(p, 0); err != nil {
			t.Error(err)
			return
		}
		if err := pl2.Program(p, 0, 0, data); err != nil {
			t.Error(err)
		}
	})
	env2.RunUntilDone(w)
	if pl2.WritePtr(0) != 1 {
		t.Fatalf("writePtr after re-erase = %d, want 1", pl2.WritePtr(0))
	}
}

// TestPowerOffRejectsCommands verifies a dead chip fails every
// command with ErrPowerLoss, instantly and without mutating media.
func TestPowerOffRejectsCommands(t *testing.T) {
	params := plParams()
	env := sim.NewEnv()
	defer env.Close()
	chip := New(env, params)
	pl := chip.Plane(0)
	chip.PowerOff()
	if !chip.PoweredOff() {
		t.Fatal("PoweredOff() = false after PowerOff")
	}
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		if err := pl.Erase(p, 0); !errors.Is(err, ErrPowerLoss) {
			t.Errorf("erase on dead chip: %v", err)
		}
		if err := pl.Program(p, 0, 0, nil); !errors.Is(err, ErrPowerLoss) {
			t.Errorf("program on dead chip: %v", err)
		}
		if _, err := pl.ReadPage(p, 0, 0); !errors.Is(err, ErrPowerLoss) {
			t.Errorf("read on dead chip: %v", err)
		}
		if env.Now() != start {
			t.Errorf("dead-chip commands consumed %v of virtual time", env.Now()-start)
		}
	})
	env.RunUntilDone(w)
}

// TestMountGeometryMismatch rejects media mounted under different
// parameters — silently reinterpreting pages would corrupt recovery.
func TestMountGeometryMismatch(t *testing.T) {
	params := plParams()
	env := sim.NewEnv()
	defer env.Close()
	chip := New(env, params)
	bad := params
	bad.PagesPerBlock *= 2
	if _, err := Mount(env, bad, chip.Media()); err == nil {
		t.Fatal("mount with mismatched geometry succeeded")
	}
}
