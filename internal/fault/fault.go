package fault

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Handler applies one injection to its target and returns the revert
// that undoes it, or nil when the fault has nothing to undo (a
// permanent kill, grown bad blocks, a hang that times out on its own).
type Handler func(in Injection) (revert func())

// Injector binds a Plan to a simulation. Attach helpers (AttachDevice,
// AttachGroup, AttachNetwork) register handlers under target names;
// Arm schedules every injection on the virtual clock. Each timed fault
// opens a fault-phase span from apply to revert, so the trace shows
// exactly which window of the run was degraded.
type Injector struct {
	env      *sim.Env
	handlers map[string]Handler

	applied  int
	reverted int
}

// NewInjector builds an empty injector on env.
func NewInjector(env *sim.Env) *Injector {
	return &Injector{env: env, handlers: make(map[string]Handler)}
}

// Register installs the handler for a target name, replacing any
// previous registration.
func (inj *Injector) Register(target string, h Handler) {
	inj.handlers[target] = h
}

// Targets returns the registered target names, sorted.
func (inj *Injector) Targets() []string {
	ts := make([]string, 0, len(inj.handlers))
	for t := range inj.handlers {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// Stats returns how many injections have fired and how many timed
// faults have been reverted so far.
func (inj *Injector) Stats() (applied, reverted int) {
	return inj.applied, inj.reverted
}

// RegisterMetrics exports the injector's counters plus an
// active-injections gauge (applied minus reverted: the timed faults
// currently degrading the run, plus any permanent ones). Sampled over
// time, the gauge marks exactly which windows of a run were under
// fault — the time axis SLO violations line up against.
func (inj *Injector) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.CounterFunc("fault_applied_total", func() int64 { return int64(inj.applied) }, labels...)
	r.CounterFunc("fault_reverted_total", func() int64 { return int64(inj.reverted) }, labels...)
	r.GaugeFunc("fault_active_injections", func() float64 {
		return float64(inj.applied - inj.reverted)
	}, labels...)
}

// Arm validates the plan against the registered targets and schedules
// every injection. Injection times are relative to the moment Arm is
// called, so a simulation can finish its setup phase (preload, warm
// fill) first and the plan still fires at the intended offsets into
// the measured run.
func (inj *Injector) Arm(pl *Plan) error {
	if err := pl.Validate(); err != nil {
		return err
	}
	var missing []string
	for _, in := range pl.Injections {
		if _, ok := inj.handlers[in.Target]; !ok {
			missing = append(missing, in.Target)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("fault: no handler for target(s) %s (registered: %s)",
			strings.Join(missing, ", "), strings.Join(inj.Targets(), ", "))
	}
	for _, in := range pl.Injections {
		// A recurring injection expands into its occurrences here, each
		// scheduled as an ordinary one-shot: the fire order is fixed at
		// arm time, so a recurring plan replays as deterministically as
		// a flat one.
		for k := 0; k < in.occurrences(); k++ {
			occ := in
			occ.At = in.At + time.Duration(k)*in.Every
			occ.Every, occ.Repeat = 0, 0
			inj.env.Schedule(occ.At, func() { inj.apply(occ) })
		}
	}
	return nil
}

func (inj *Injector) apply(in Injection) {
	t := inj.env.Tracer()
	name := "fault/" + string(in.Kind) + ":" + in.Target
	span := t.Begin(inj.env.Now(), 0, name, trace.PhaseFault)
	revert := inj.handlers[in.Target](in)
	inj.applied++
	if in.Duration > 0 && revert != nil {
		inj.env.Schedule(in.Duration, func() {
			revert()
			inj.reverted++
			t.End(inj.env.Now(), span)
		})
		return
	}
	t.End(inj.env.Now(), span)
}
