package fault

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

func testPlan() *Plan {
	return &Plan{
		Seed: 7,
		Injections: []Injection{
			{At: 10 * time.Millisecond, Kind: ChannelKill, Target: "sdf0/chan1", Duration: 20 * time.Millisecond},
			{At: 5 * time.Millisecond, Kind: ECCBurst, Target: "sdf0/chan0", Duration: time.Millisecond, Rate: 1e-2},
			{At: 40 * time.Millisecond, Kind: GrownBadBlocks, Target: "sdf0/chan2", Count: 4},
		},
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	pl := testPlan()
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := pl.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pl) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, pl)
	}
	// Validate sorted by fire time.
	for i := 1; i < len(got.Injections); i++ {
		if got.Injections[i].At < got.Injections[i-1].At {
			t.Fatalf("injections not sorted: %v after %v",
				got.Injections[i].At, got.Injections[i-1].At)
		}
	}
	if s := pl.String(); !strings.Contains(s, "channel-kill") || !strings.Contains(s, "sdf0/chan1") {
		t.Fatalf("String() missing schedule content:\n%s", s)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Injection{
		{At: 0, Kind: "meteor-strike", Target: "x"},
		{At: -time.Second, Kind: ChannelKill, Target: "x"},
		{At: 0, Kind: ChannelKill, Target: ""},
		{At: 0, Kind: ChannelHang, Target: "x"},                             // no duration
		{At: 0, Kind: GrownBadBlocks, Target: "x"},                          // no count
		{At: 0, Kind: ECCBurst, Target: "x", Duration: time.Second},         // no rate
		{At: 0, Kind: LinkDegrade, Target: "x", Factor: 1.5},                // factor > 1
		{At: 0, Kind: PacketLoss, Target: "x", Rate: 2},                     // rate > 1
		{At: 0, Kind: ChannelKill, Target: "x", Duration: -time.Nanosecond}, // negative duration
	}
	for i, in := range bad {
		pl := &Plan{Injections: []Injection{in}}
		if err := pl.Validate(); err == nil {
			t.Errorf("case %d (%s): Validate accepted %+v", i, in.Kind, in)
		}
	}
}

func TestArmUnknownTarget(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	inj := NewInjector(env)
	inj.Register("known", func(Injection) func() { return nil })
	err := inj.Arm(&Plan{Injections: []Injection{
		{At: 0, Kind: ChannelKill, Target: "ghost"},
	}})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Arm = %v, want error naming the missing target", err)
	}
}

func newTestDevice(t *testing.T, env *sim.Env) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 16
	cfg.Channel.Nand.PagesPerBlock = 16
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.ECC = true
	cfg.Channel.SparePerPlane = 2
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestInjectorAppliesAndReverts(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	dev := newTestDevice(t, env)
	inj := NewInjector(env)
	AttachDevice(inj, "sdf0", dev)

	pl := &Plan{Injections: []Injection{
		{At: 10 * time.Millisecond, Kind: ChannelKill, Target: "sdf0/chan1", Duration: 20 * time.Millisecond},
		{At: 10 * time.Millisecond, Kind: ChannelKill, Target: "sdf0/chan2"}, // permanent
		{At: 15 * time.Millisecond, Kind: LinkDegrade, Target: "sdf0/pcie", Duration: 5 * time.Millisecond, Factor: 0.25},
	}}
	if err := inj.Arm(pl); err != nil {
		t.Fatal(err)
	}

	env.RunUntil(12 * time.Millisecond)
	if dev.Channel(1).Alive() || dev.Channel(2).Alive() {
		t.Fatal("channels 1 and 2 should be dead at t=12ms")
	}
	env.RunUntil(17 * time.Millisecond)
	if f := dev.PCIe().RateFactor(); f != 0.25 {
		t.Fatalf("PCIe factor = %v at t=17ms, want 0.25", f)
	}
	env.RunUntil(50 * time.Millisecond)
	if !dev.Channel(1).Alive() {
		t.Fatal("channel 1 should have revived at t=30ms")
	}
	if dev.Channel(2).Alive() {
		t.Fatal("channel 2 kill was permanent, but it revived")
	}
	if f := dev.PCIe().RateFactor(); f != 1 {
		t.Fatalf("PCIe factor = %v after revert, want 1", f)
	}
	if applied, reverted := inj.Stats(); applied != 3 || reverted != 2 {
		t.Fatalf("stats = %d applied / %d reverted, want 3/2", applied, reverted)
	}
}

// chaosWorkload writes and repeatedly reads through a block layer
// while faults fire, exercising retry/quarantine paths.
func chaosWorkload(t *testing.T, env *sim.Env, dev *core.Device) *sim.Proc {
	t.Helper()
	bl := blocklayer.New(env, dev, blocklayer.DefaultConfig())
	return env.Go("workload", func(p *sim.Proc) {
		buf := make([]byte, bl.BlockSize())
		for i := range buf {
			buf[i] = byte(i)
		}
		for i := 0; i < 8; i++ {
			if _, err := bl.Write(p, blocklayer.BlockID(i), buf); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		for round := 0; round < 6; round++ {
			p.Wait(8 * time.Millisecond)
			for i := 0; i < 8; i++ {
				// Errors are fine here (a replica-less block layer can
				// lose access to a dead channel); determinism is what
				// the trace hash checks.
				bl.Read(p, blocklayer.BlockID(i), 0, 512)
			}
		}
	})
}

// TestDeterministicReplay is the core contract: same seed, same plan,
// byte-identical trace.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		env := sim.NewEnv()
		defer env.Close()
		tr := trace.NewCollector()
		env.SetTracer(tr)
		dev := newTestDevice(t, env)
		inj := NewInjector(env)
		AttachDevice(inj, "sdf0", dev)
		pl := &Plan{Injections: []Injection{
			{At: 5 * time.Millisecond, Kind: ECCBurst, Target: "sdf0/chan0", Duration: 10 * time.Millisecond, Rate: 5e-3},
			{At: 12 * time.Millisecond, Kind: ChannelHang, Target: "sdf0/chan1", Duration: 6 * time.Millisecond},
			{At: 20 * time.Millisecond, Kind: ChannelKill, Target: "sdf0/chan2", Duration: 15 * time.Millisecond},
			{At: 30 * time.Millisecond, Kind: LinkDegrade, Target: "sdf0/pcie", Duration: 8 * time.Millisecond, Factor: 0.5},
		}}
		if err := inj.Arm(pl); err != nil {
			t.Fatal(err)
		}
		w := chaosWorkload(t, env, dev)
		env.RunUntilDone(w)
		env.Run() // drain revert events so both runs end identically
		return tr.Hash()
	}
	h1, h2 := run(), run()
	if h1 != h2 {
		t.Fatalf("fault-injected replay diverged: %s vs %s", h1, h2)
	}
	if h1 == trace.Hash(nil) {
		t.Fatal("trace is empty; workload produced no events")
	}
}

func TestRandomPlanReproducibleAndBounded(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	pl1 := RandomPlan(99, nodes, 4, 1200*time.Millisecond)
	pl2 := RandomPlan(99, nodes, 4, 1200*time.Millisecond)
	if !reflect.DeepEqual(pl1, pl2) {
		t.Fatal("same seed produced different plans")
	}
	if reflect.DeepEqual(pl1, RandomPlan(100, nodes, 4, 1200*time.Millisecond)) {
		t.Fatal("different seeds produced identical plans")
	}
	if err := pl1.Validate(); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	if len(pl1.Injections) == 0 {
		t.Fatal("random plan is empty")
	}
	// Epoch containment: every fault ends before the next begins, so at
	// most one node is impaired at any instant (the RF>=2 safety
	// argument).
	for i, in := range pl1.Injections {
		if in.Duration == 0 {
			t.Fatalf("injection %d is permanent; random plans must self-heal", i)
		}
		if i > 0 {
			prev := pl1.Injections[i-1]
			if prev.At+prev.Duration > in.At {
				t.Fatalf("injection %d overlaps %d: [%v+%v] vs %v",
					i-1, i, prev.At, prev.Duration, in.At)
			}
		}
	}
}
