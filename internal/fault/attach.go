package fault

import (
	"fmt"

	"sdf/internal/cluster"
	"sdf/internal/core"
	"sdf/internal/rpcnet"
	"sdf/internal/sim"
	"sdf/internal/ssd"
)

// AttachDevice registers an SDF device's fault surfaces under
// "<name>/chan<i>" (channel kill/hang/bad-block/ECC targets),
// "<name>/pcie" (link degradation), and the bare "<name>" for whole-
// device power loss.
func AttachDevice(inj *Injector, name string, dev *core.Device) {
	inj.Register(name, func(in Injection) func() {
		if in.Kind == Powerloss {
			// Permanent by definition at the device level: bringing the
			// device back requires core.Mount plus the recovery scan,
			// which the owner of the device state must drive (see
			// cluster power hooks for the node-level restart path).
			dev.PowerLoss()
		}
		return nil
	})
	for i := 0; i < dev.Channels(); i++ {
		ch := dev.Channel(i)
		inj.Register(fmt.Sprintf("%s/chan%d", name, i), func(in Injection) func() {
			switch in.Kind {
			case ChannelKill:
				ch.Kill()
				if in.Duration > 0 {
					return ch.Revive
				}
			case ChannelHang:
				ch.Hang(in.Duration)
				// The hang expires inside the channel engine; the no-op
				// revert just holds the injector's fault span open for
				// the hang window.
				return func() {}
			case GrownBadBlocks:
				ch.GrowBadBlocks(in.Count)
			case ECCBurst:
				ch.SetBERBoost(in.Rate)
				if in.Duration > 0 {
					return func() { ch.SetBERBoost(0) }
				}
			}
			return nil
		})
	}
	pcie := dev.PCIe()
	inj.Register(name+"/pcie", func(in Injection) func() {
		if in.Kind != LinkDegrade {
			return nil
		}
		old := pcie.RateFactor()
		pcie.SetRateFactor(in.Factor)
		if in.Duration > 0 {
			return func() { pcie.SetRateFactor(old) }
		}
		return nil
	})
}

// AttachSSD registers a conventional SSD's fault surfaces under
// "<name>/chan<i>" and "<name>/pcie", mirroring AttachDevice so the
// same plan can drive either device kind. A channel kill or hang puts
// the channel into degraded-parity mode — the drive's internal RAID
// masks the loss and serves reconstruction reads — permanently for a
// kill (or until its Duration elapses), and for the hang window for a
// hang. Bad-block and ECC injections have no conventional-SSD surface
// (the FTL hides media management entirely) and are ignored.
func AttachSSD(inj *Injector, name string, dev *ssd.SSD) {
	for i := 0; i < dev.Channels(); i++ {
		ch := i
		inj.Register(fmt.Sprintf("%s/chan%d", name, ch), func(in Injection) func() {
			switch in.Kind {
			case ChannelKill, ChannelHang:
				dev.DegradeChannel(ch)
				if in.Duration > 0 {
					return func() { dev.RestoreChannel(ch) }
				}
			}
			return nil
		})
	}
	pcie := dev.PCIe()
	inj.Register(name+"/pcie", func(in Injection) func() {
		if in.Kind != LinkDegrade {
			return nil
		}
		old := pcie.RateFactor()
		pcie.SetRateFactor(in.Factor)
		if in.Duration > 0 {
			return func() { pcie.SetRateFactor(old) }
		}
		return nil
	})
}

// AttachGroup registers every node of a replica group: the node name
// itself takes node-crash/node-restart/powerloss, and "<node>/nic"
// takes link-degrade on the node's NIC.
func AttachGroup(inj *Injector, g *cluster.Group) {
	for _, node := range g.Nodes() {
		node := node
		inj.Register(node.Name, func(in Injection) func() {
			switch in.Kind {
			case NodeCrash:
				g.CrashNode(node.Name)
				if in.Duration > 0 {
					return func() { g.RestartNode(node.Name) }
				}
			case NodeRestart:
				g.RestartNode(node.Name)
			case Powerloss:
				g.PowerLossNode(node.Name)
				if in.Duration > 0 {
					return func() { g.RestartNode(node.Name) }
				}
			}
			return nil
		})
		inj.Register(node.Name+"/nic", linkHandler(node.NIC()))
	}
}

// AttachLink registers a bare link under the given target name for
// link-degrade injections.
func AttachLink(inj *Injector, target string, l *sim.SharedLink) {
	inj.Register(target, linkHandler(l))
}

func linkHandler(l *sim.SharedLink) Handler {
	return func(in Injection) func() {
		if in.Kind != LinkDegrade {
			return nil
		}
		old := l.RateFactor()
		l.SetRateFactor(in.Factor)
		if in.Duration > 0 {
			return func() { l.SetRateFactor(old) }
		}
		return nil
	}
}

// AttachNetwork registers an RPC network under the given target name:
// packet-loss flips the wire loss probability, link-degrade throttles
// the server NIC pool.
func AttachNetwork(inj *Injector, target string, n *rpcnet.Network) {
	inj.Register(target, func(in Injection) func() {
		switch in.Kind {
		case PacketLoss:
			old := n.LossRate()
			n.InjectLoss(in.Rate)
			if in.Duration > 0 {
				return func() { n.InjectLoss(old) }
			}
		case LinkDegrade:
			srv := n.ServerLink()
			old := srv.RateFactor()
			srv.SetRateFactor(in.Factor)
			if in.Duration > 0 {
				return func() { srv.SetRateFactor(old) }
			}
		}
		return nil
	})
}
