package fault

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/cluster"
	"sdf/internal/core"
	"sdf/internal/sim"
)

// chaosRun builds a 3-replica cluster of data-retaining SDF nodes,
// preloads it, then runs closed-loop readers while the seed's
// RandomPlan fires. It returns an error describing the first safety
// violation: a read that failed or returned wrong bytes, or a nonzero
// lost-read count. RandomPlan impairs at most one node at a time, so
// with RF=3 every read has a healthy replica to fail over to.
func chaosRun(t *testing.T, seed int64) error {
	t.Helper()
	// Sized to bound the BCH decode work that dominates wall time:
	// one-page values, paced readers, and a horizon short enough to
	// keep each seed under a few seconds while still spanning all six
	// fault epochs.
	const (
		channels = 8
		horizon  = 400 * time.Millisecond
		nKeys    = 32
		valSize  = 8 << 10
	)
	env := sim.NewEnv()
	defer env.Close()
	inj := NewInjector(env)
	names := []string{"n1", "n2", "n3"}
	var nodes []*cluster.Node
	var slices []*ccdb.Slice
	for _, name := range names {
		cfg := core.DefaultConfig()
		cfg.Channels = channels
		cfg.Channel.Nand.BlocksPerPlane = 16
		cfg.Channel.Nand.PagesPerBlock = 4
		cfg.Channel.Nand.RetainData = true
		cfg.Channel.ECC = true
		cfg.Channel.SparePerPlane = 2
		dev, err := core.New(env, cfg)
		if err != nil {
			t.Fatal(err)
		}
		AttachDevice(inj, name, dev)
		store := ccdb.NewSDFStore(blocklayer.New(env, dev, blocklayer.DefaultConfig()))
		slice := ccdb.NewSlice(env, store, ccdb.Config{
			PatchBytes:  store.BlockSize(),
			RunsPerTier: 8,
			DataMode:    true,
		})
		nodes = append(nodes, cluster.NewNode(env, name, slice))
		slices = append(slices, slice)
	}
	group, err := cluster.NewGroup(env, cluster.DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	AttachGroup(inj, group)

	rng := rand.New(rand.NewSource(seed))
	values := make(map[string][]byte, nKeys)
	keys := make([]string, nKeys)
	boot := env.Go("preload", func(p *sim.Proc) {
		for i := range keys {
			keys[i] = fmt.Sprintf("k%03d", i)
			val := make([]byte, valSize)
			rng.Read(val)
			if err := group.Put(p, keys[i], val, len(val)); err != nil {
				panic(err)
			}
			values[keys[i]] = val
		}
		for _, s := range slices {
			if err := s.Flush(p); err != nil {
				panic(err)
			}
		}
	})
	env.RunUntilDone(boot)

	pl := RandomPlan(seed, names, channels, horizon)
	if err := pl.Validate(); err != nil {
		return fmt.Errorf("seed %d: invalid plan: %v", seed, err)
	}
	t0 := env.Now()
	if err := inj.Arm(pl); err != nil {
		return fmt.Errorf("seed %d: %v", seed, err)
	}

	var violation error
	var readers []*sim.Proc
	for r := 0; r < 2; r++ {
		krng := rand.New(rand.NewSource(seed ^ int64(r+1)))
		readers = append(readers, env.Go("reader", func(p *sim.Proc) {
			for env.Now() < t0+horizon && violation == nil {
				key := keys[krng.Intn(len(keys))]
				got, _, err := group.Get(p, key)
				if err != nil {
					violation = fmt.Errorf("seed %d: read %s at %v: %v (plan:\n%s)",
						seed, key, env.Now()-t0, err, pl)
					return
				}
				if !bytes.Equal(got, values[key]) {
					violation = fmt.Errorf("seed %d: read %s at %v returned wrong bytes",
						seed, key, env.Now()-t0)
					return
				}
				p.Wait(time.Millisecond)
			}
		}))
	}
	// A writer keeps the divergence/repair machinery busy; its errors
	// (puts rejected by a crashed node) are expected.
	env.Go("writer", func(p *sim.Proc) {
		for i := 0; env.Now() < t0+horizon; i++ {
			group.Put(p, fmt.Sprintf("w%04d", i), nil, 8<<10)
			p.Wait(20 * time.Millisecond)
		}
	})
	join := env.Go("join", func(p *sim.Proc) {
		for _, r := range readers {
			p.Join(r)
		}
	})
	env.RunUntilDone(join)
	env.Run() // drain reverts, repairs, re-replication
	if violation != nil {
		return violation
	}
	if st := group.Stats(); st.Lost != 0 {
		return fmt.Errorf("seed %d: %d lost reads (plan:\n%s)", seed, st.Lost, pl)
	}
	return nil
}

// TestChaosRandomPlansLoseNoReads is the randomized form of the
// degraded-mode contract: for any RandomPlan seed, a replica group
// with RF >= 2 serves every read correctly while the plan's channel
// kills, hangs, ECC bursts, NIC brown-outs, and node crashes fire.
// The generator is seeded, so failures reproduce exactly.
func TestChaosRandomPlansLoseNoReads(t *testing.T) {
	f := func(seed int64) bool {
		if err := chaosRun(t, seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 3,
		Rand:     rand.New(rand.NewSource(11)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
