// Package fault is the deterministic fault-injection subsystem
// (DESIGN.md §9). A Plan is a seed-reproducible schedule of
// injections at virtual instants; an Injector arms the plan against a
// running simulation through per-target handlers registered by the
// attach helpers. Because every injection fires from the discrete
// event scheduler and every random choice comes from a seeded stream,
// the same plan and seed produce a byte-identical trace — availability
// experiments replay exactly.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// Kind names one failure mode.
type Kind string

// Injection kinds.
const (
	// ChannelKill takes a flash channel engine offline (ErrChannelDead
	// until revival). Duration 0 means permanent.
	ChannelKill Kind = "channel-kill"
	// ChannelHang stalls a channel engine for Duration; queued
	// commands wait it out.
	ChannelHang Kind = "channel-hang"
	// GrownBadBlocks retires Count spare blocks on a channel, as
	// field-grown defects.
	GrownBadBlocks Kind = "grown-bad-blocks"
	// ECCBurst adds Rate of raw bit error rate to a channel's chips
	// for Duration (uncorrectable reads when pushed past BCH t).
	ECCBurst Kind = "ecc-burst"
	// LinkDegrade multiplies a link's data rate by Factor for
	// Duration (a PCIe lane or NIC dropping to a degraded speed).
	LinkDegrade Kind = "link-degrade"
	// PacketLoss sets an RPC network's wire loss probability to Rate
	// for Duration.
	PacketLoss Kind = "packet-loss"
	// NodeCrash takes a cluster node out of service; with Duration it
	// restarts (and re-replicates) automatically.
	NodeCrash Kind = "node-crash"
	// NodeRestart explicitly restarts a crashed node.
	NodeRestart Kind = "node-restart"
	// Powerloss cuts power at the fire instant: a device target halts
	// with its media frozen mid-operation (torn pages, partial
	// erases); a node target additionally halts the node's journal
	// and, with a Duration, restarts the node through the mount-time
	// recovery path instead of a plain revive.
	Powerloss Kind = "powerloss"
)

var kinds = map[Kind]bool{
	ChannelKill: true, ChannelHang: true, GrownBadBlocks: true,
	ECCBurst: true, LinkDegrade: true, PacketLoss: true,
	NodeCrash: true, NodeRestart: true, Powerloss: true,
}

// kindNames returns the valid kinds, sorted, for error messages.
func kindNames() []string {
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, string(k))
	}
	sort.Strings(names)
	return names
}

// Injection is one scheduled fault.
type Injection struct {
	// At is the virtual instant the fault fires, relative to the
	// moment the plan is armed.
	At time.Duration `json:"at"`
	// Kind selects the failure mode.
	Kind Kind `json:"kind"`
	// Target names the victim, as registered with the Injector
	// ("sdf0/chan3", "node1", "node1/nic", "net").
	Target string `json:"target"`
	// Duration is how long the fault lasts before its revert runs;
	// 0 means permanent (or instantaneous for kinds with no revert).
	Duration time.Duration `json:"duration,omitempty"`
	// Factor is the link-degrade rate multiplier (0 < Factor <= 1).
	Factor float64 `json:"factor,omitempty"`
	// Rate is the packet-loss probability or ECC-burst raw BER.
	Rate float64 `json:"rate,omitempty"`
	// Count is how many blocks grown-bad-blocks retires.
	Count int `json:"count,omitempty"`
	// Every and Repeat make the injection recurring: it fires Repeat
	// times, at At, At+Every, At+2·Every, … — a scheduled chaos
	// cadence (periodic power cuts, repeated bursts). Repeat <= 1 with
	// Every unset is the ordinary one-shot. A timed recurring fault
	// must fully revert before its next occurrence (Duration < Every).
	Every  time.Duration `json:"every,omitempty"`
	Repeat int           `json:"repeat,omitempty"`
}

// occurrences is how many times the injection fires when armed.
func (in Injection) occurrences() int {
	if in.Repeat > 1 {
		return in.Repeat
	}
	return 1
}

// Plan is a reproducible fault schedule.
type Plan struct {
	Seed       int64       `json:"seed"`
	Injections []Injection `json:"injections"`
}

// Validate checks every injection and normalizes the plan: injections
// are sorted by fire time (stable, so equal-time order is the plan's
// own order).
func (pl *Plan) Validate() error {
	for i, in := range pl.Injections {
		if !kinds[in.Kind] {
			return fmt.Errorf("fault: injection %d: unknown kind %q (valid kinds: %s)",
				i, in.Kind, strings.Join(kindNames(), ", "))
		}
		if in.At < 0 {
			return fmt.Errorf("fault: injection %d: negative time %v", i, in.At)
		}
		if in.Target == "" {
			return fmt.Errorf("fault: injection %d: empty target", i)
		}
		if in.Duration < 0 {
			return fmt.Errorf("fault: injection %d: negative duration", i)
		}
		if in.Every < 0 {
			return fmt.Errorf("fault: injection %d: negative every %v", i, in.Every)
		}
		if in.Repeat < 0 {
			return fmt.Errorf("fault: injection %d: negative repeat %d", i, in.Repeat)
		}
		if in.Repeat > 1 && in.Every <= 0 {
			return fmt.Errorf("fault: injection %d: repeat %d needs every > 0", i, in.Repeat)
		}
		if in.Every > 0 && in.Repeat <= 1 {
			return fmt.Errorf("fault: injection %d: every %v needs repeat > 1", i, in.Every)
		}
		if in.Repeat > 1 && in.Duration >= in.Every {
			return fmt.Errorf("fault: injection %d: duration %v must be shorter than every %v",
				i, in.Duration, in.Every)
		}
		switch in.Kind {
		case ChannelHang:
			if in.Duration == 0 {
				return fmt.Errorf("fault: injection %d: %s needs a duration", i, in.Kind)
			}
		case GrownBadBlocks:
			if in.Count <= 0 {
				return fmt.Errorf("fault: injection %d: %s needs count > 0", i, in.Kind)
			}
		case ECCBurst:
			if in.Rate <= 0 {
				return fmt.Errorf("fault: injection %d: %s needs rate > 0", i, in.Kind)
			}
		case LinkDegrade:
			if in.Factor <= 0 || in.Factor > 1 {
				return fmt.Errorf("fault: injection %d: %s needs 0 < factor <= 1", i, in.Kind)
			}
		case PacketLoss:
			if in.Rate < 0 || in.Rate > 1 {
				return fmt.Errorf("fault: injection %d: %s needs rate in [0,1]", i, in.Kind)
			}
		}
	}
	sort.SliceStable(pl.Injections, func(i, j int) bool {
		return pl.Injections[i].At < pl.Injections[j].At
	})
	return nil
}

// Parse decodes a plan from JSON and validates it.
func Parse(data []byte) (*Plan, error) {
	var pl Plan
	if err := json.Unmarshal(data, &pl); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &pl, nil
}

// Load reads and validates a plan file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(data)
}

// Save writes the plan as indented JSON.
func (pl *Plan) Save(path string) error {
	data, err := json.MarshalIndent(pl, "", "  ")
	if err != nil {
		return fmt.Errorf("fault: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// String renders the plan as an aligned human-readable schedule.
func (pl *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan: seed %d, %d injections\n", pl.Seed, len(pl.Injections))
	rows := make([][]string, 0, len(pl.Injections))
	for _, in := range pl.Injections {
		detail := "permanent"
		if in.Duration > 0 {
			detail = fmt.Sprintf("for %v", in.Duration)
		}
		switch in.Kind {
		case GrownBadBlocks:
			detail = fmt.Sprintf("%d blocks", in.Count)
		case ECCBurst:
			detail += fmt.Sprintf(", ber %.1e", in.Rate)
		case LinkDegrade:
			detail += fmt.Sprintf(", rate x%.2f", in.Factor)
		case PacketLoss:
			detail += fmt.Sprintf(", loss %.0f%%", in.Rate*100)
		case NodeRestart:
			detail = ""
		case Powerloss:
			if in.Duration > 0 {
				detail = fmt.Sprintf("restart after %v", in.Duration)
			}
		}
		if in.Repeat > 1 {
			if detail != "" {
				detail += ", "
			}
			detail += fmt.Sprintf("x%d every %v", in.Repeat, in.Every)
		}
		rows = append(rows, []string{
			"t=+" + in.At.String(), string(in.Kind), in.Target, detail,
		})
	}
	widths := make([]int, 4)
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		b.WriteString(" ")
		for i, cell := range row {
			fmt.Fprintf(&b, " %-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RandomPlan builds a reproducible chaos schedule over the named
// nodes: the horizon splits into six epochs and each epoch impairs
// exactly one victim node (a channel kill, hang, or ECC burst on one
// of its channels, a NIC degrade, or a whole-node crash), with every
// fault reverted well before the epoch ends. At most one node is ever
// impaired at a time, so a group with replication factor >= 2 always
// has a healthy replica — the invariant the chaos property test
// asserts.
func RandomPlan(seed int64, nodes []string, channels int, horizon time.Duration) *Plan {
	pl := &Plan{Seed: seed}
	if len(nodes) == 0 || channels <= 0 || horizon <= 0 {
		return pl
	}
	rng := rand.New(rand.NewSource(seed))
	const epochs = 6
	epoch := horizon / epochs
	if epoch <= 0 {
		return pl
	}
	for e := 0; e < epochs; e++ {
		at := time.Duration(e)*epoch + epoch/4
		dur := epoch / 2
		victim := nodes[rng.Intn(len(nodes))]
		chanTarget := fmt.Sprintf("%s/chan%d", victim, rng.Intn(channels))
		var in Injection
		switch rng.Intn(5) {
		case 0:
			in = Injection{At: at, Kind: ChannelKill, Target: chanTarget, Duration: dur}
		case 1:
			in = Injection{At: at, Kind: ChannelHang, Target: chanTarget, Duration: dur}
		case 2:
			in = Injection{At: at, Kind: ECCBurst, Target: chanTarget, Duration: dur, Rate: 1e-2}
		case 3:
			in = Injection{At: at, Kind: LinkDegrade, Target: victim + "/nic", Duration: dur, Factor: 0.05}
		case 4:
			in = Injection{At: at, Kind: NodeCrash, Target: victim, Duration: dur}
		}
		pl.Injections = append(pl.Injections, in)
	}
	return pl
}
