package crash

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/cluster"
	"sdf/internal/coord"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/sim"
)

// TestClusterPowerLossRemount drives the node-level recovery path: a
// powerloss injection with a duration cuts one replica's power
// mid-run, the group keeps serving from its peers, and the scheduled
// restart brings the node back through device recovery and journal
// replay — not an empty slice. The finale crashes the two healthy
// peers and reads everything from the remounted node alone.
func TestClusterPowerLossRemount(t *testing.T) {
	cfg := DefaultConfig(3)
	env := sim.NewEnv()
	defer env.Close()
	inj := fault.NewInjector(env)

	names := []string{"n1", "n2", "n3"}
	var nodes []*cluster.Node
	for _, name := range names {
		dev, err := core.New(env, cfg.devConfig())
		if err != nil {
			t.Fatal(err)
		}
		journal := ccdb.NewJournal()
		layer := blocklayer.New(env, dev, blocklayer.DefaultConfig())
		slice := ccdb.NewSlice(env, ccdb.NewSDFStore(layer), cfg.sliceConfig(journal))
		node := cluster.NewNode(env, name, slice)
		// The holder lets the remount hook hand the next cycle the
		// remounted device rather than the dead one.
		holder := dev
		node.SetPowerHooks(
			func() {
				holder.PowerLoss()
				journal.Halt()
			},
			func(p *sim.Proc) (*ccdb.Slice, error) {
				mounted, err := core.Mount(env, cfg.devConfig(), holder.State())
				if err != nil {
					return nil, err
				}
				l, _, err := blocklayer.Mount(p, env, mounted, blocklayer.DefaultConfig())
				if err != nil {
					return nil, err
				}
				s, _, err := ccdb.MountSlice(p, env, ccdb.NewSDFStore(l), cfg.sliceConfig(journal))
				if err != nil {
					return nil, err
				}
				holder = mounted
				return s, nil
			},
		)
		nodes = append(nodes, node)
	}
	group, err := cluster.NewGroup(env, cluster.DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	fault.AttachGroup(inj, group)

	rng := rand.New(rand.NewSource(cfg.Seed))
	want := make(map[string][]byte)
	preload := env.Go("preload", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("k%03d", i)
			val := make([]byte, cfg.ValueBytes)
			rng.Read(val)
			if err := group.Put(p, key, val, len(val)); err != nil {
				t.Errorf("preload %s: %v", key, err)
				return
			}
			want[key] = val
		}
	})
	env.RunUntilDone(preload)

	pl := &fault.Plan{Seed: cfg.Seed, Injections: []fault.Injection{
		{At: 10 * time.Millisecond, Kind: fault.Powerloss, Target: "n2", Duration: 20 * time.Millisecond},
	}}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(pl); err != nil {
		t.Fatal(err)
	}

	// Writes spanning the outage: puts while n2 is down return an
	// error (the caller is told the group diverged) but land on the
	// healthy replicas and mark n2 dirty for re-replication.
	writer := env.Go("writer", func(p *sim.Proc) {
		for i := 0; env.Now() < 60*time.Millisecond; i++ {
			key := fmt.Sprintf("w%03d", i)
			val := make([]byte, cfg.ValueBytes)
			rng.Read(val)
			group.Put(p, key, val, len(val))
			want[key] = val
			p.Wait(2 * time.Millisecond)
		}
	})
	env.RunUntilDone(writer)
	env.Run() // drain the restart, remount, and re-replication

	st := group.Stats()
	if st.Remounts != 1 || st.FailedRemounts != 0 {
		t.Fatalf("remounts = %d, failed = %d, want 1 and 0", st.Remounts, st.FailedRemounts)
	}
	if !nodes[1].Alive() {
		t.Fatal("n2 did not come back")
	}

	// Only the remounted node survives; every key must be served from
	// its recovered state, byte for byte.
	group.CrashNode("n1")
	group.CrashNode("n3")
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	reader := env.Go("reader", func(p *sim.Proc) {
		for _, key := range keys {
			got, _, err := group.Get(p, key)
			if err != nil {
				t.Errorf("read %s from remounted node: %v", key, err)
				return
			}
			if !bytes.Equal(got, want[key]) {
				t.Errorf("read %s from remounted node: wrong bytes", key)
				return
			}
		}
	})
	env.RunUntilDone(reader)
}

// TestClusterPowerLossRemountCoordinated reruns the acknowledged-
// durability oracle with the whole co-scheduling stack live: erase
// windows behind a per-slice coordinator, SLO write admission control
// in front of every Put, and static wear leveling migrating cold
// blocks in the background. None of these may cost a byte: every
// write the cluster acknowledged before the finale must be served,
// byte for byte, from the replica that recovered through power loss.
func TestClusterPowerLossRemountCoordinated(t *testing.T) {
	cfg := DefaultConfig(3)
	env := sim.NewEnv()
	defer env.Close()
	inj := fault.NewInjector(env)
	co := coord.New(env, coord.Config{
		Window:          2 * time.Millisecond,
		MaxWait:         20 * time.Millisecond,
		ForceFreeBlocks: 1,
	})

	names := []string{"n1", "n2", "n3"}
	var nodes []*cluster.Node
	for _, name := range names {
		dev, err := core.New(env, cfg.devConfig())
		if err != nil {
			t.Fatal(err)
		}
		member := co.Register(name)
		blCfg := blocklayer.DefaultConfig()
		blCfg.EraseGate = member
		blCfg.StaticWL = true
		blCfg.WearSpreadThreshold = 4
		journal := ccdb.NewJournal()
		layer := blocklayer.New(env, dev, blCfg)
		slice := ccdb.NewSlice(env, ccdb.NewSDFStore(layer), cfg.sliceConfig(journal))
		node := cluster.NewNode(env, name, slice)
		node.SetWindow(member)
		holder := dev
		node.SetPowerHooks(
			func() {
				holder.PowerLoss()
				journal.Halt()
			},
			func(p *sim.Proc) (*ccdb.Slice, error) {
				mounted, err := core.Mount(env, cfg.devConfig(), holder.State())
				if err != nil {
					return nil, err
				}
				// The remounted layer rejoins the same erase-window
				// membership and keeps wear leveling on.
				l, _, err := blocklayer.Mount(p, env, mounted, blCfg)
				if err != nil {
					return nil, err
				}
				s, _, err := ccdb.MountSlice(p, env, ccdb.NewSDFStore(l), cfg.sliceConfig(journal))
				if err != nil {
					return nil, err
				}
				holder = mounted
				return s, nil
			},
		)
		nodes = append(nodes, node)
	}
	ccfg := cluster.DefaultConfig()
	// A rate well above the offered load: the oracle checks that the
	// admission path (token accounting, best-effort degradation while
	// a replica is down) is durability-neutral, not that it throttles.
	ccfg.Admission = coord.NewAdmission(env, coord.DefaultAdmissionConfig(2000), func() float64 { return 0 })
	group, err := cluster.NewGroup(env, ccfg, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	fault.AttachGroup(inj, group)

	rng := rand.New(rand.NewSource(cfg.Seed))
	want := make(map[string][]byte)
	preload := env.Go("preload", func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			key := fmt.Sprintf("k%03d", i)
			val := make([]byte, cfg.ValueBytes)
			rng.Read(val)
			if err := group.Put(p, key, val, len(val)); err != nil {
				t.Errorf("preload %s: %v", key, err)
				return
			}
			want[key] = val
		}
	})
	env.RunUntilDone(preload)

	pl := &fault.Plan{Seed: cfg.Seed, Injections: []fault.Injection{
		{At: 10 * time.Millisecond, Kind: fault.Powerloss, Target: "n2", Duration: 20 * time.Millisecond},
	}}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(pl); err != nil {
		t.Fatal(err)
	}

	// Writes spanning the outage. Only acknowledged writes join the
	// oracle: with admission control in the path a Put can now also be
	// shed, and a shed write is not durable anywhere by design.
	writer := env.Go("writer", func(p *sim.Proc) {
		for i := 0; env.Now() < 60*time.Millisecond; i++ {
			key := fmt.Sprintf("w%03d", i)
			val := make([]byte, cfg.ValueBytes)
			rng.Read(val)
			if err := group.Put(p, key, val, len(val)); err == nil || !errors.Is(err, cluster.ErrWriteShed) {
				want[key] = val
			}
			p.Wait(2 * time.Millisecond)
		}
	})
	env.RunUntilDone(writer)
	env.Run() // drain the restart, remount, and re-replication

	st := group.Stats()
	if st.Remounts != 1 || st.FailedRemounts != 0 {
		t.Fatalf("remounts = %d, failed = %d, want 1 and 0", st.Remounts, st.FailedRemounts)
	}
	if !nodes[1].Alive() {
		t.Fatal("n2 did not come back")
	}
	if cs := co.Stats(); cs.Grants == 0 {
		t.Errorf("coordinator stats %+v: the gated erasers never took a window", cs)
	}

	group.CrashNode("n1")
	group.CrashNode("n3")
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	reader := env.Go("reader", func(p *sim.Proc) {
		for _, key := range keys {
			got, _, err := group.Get(p, key)
			if err != nil {
				t.Errorf("read %s from remounted node: %v", key, err)
				return
			}
			if !bytes.Equal(got, want[key]) {
				t.Errorf("read %s from remounted node: wrong bytes", key)
				return
			}
		}
	})
	env.RunUntilDone(reader)
}
