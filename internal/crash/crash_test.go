package crash

import (
	"math/rand"
	"testing"
	"time"
)

// instants builds the oracle's crash schedule for one seed: uniform
// instants across the horizon plus instants aimed inside program,
// erase, and checkpoint-write pulse windows from the crash-free
// profile, so the suite provably covers mid-8 MB-write, mid-erase,
// and mid-checkpoint cuts — plus instants at program-window ends,
// where flush completion truncates the write-ahead log, racing the
// cut against the truncation.
func instants(t *testing.T, cfg Config, uniform, inProg, inErase, inCkpt int) []time.Duration {
	t.Helper()
	prog, erase, ckpt, err := Windows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) == 0 || len(erase) == 0 || len(ckpt) == 0 {
		t.Fatalf("profile found %d program, %d erase, and %d checkpoint windows; the workload must exercise all three", len(prog), len(erase), len(ckpt))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var at []time.Duration
	span := cfg.Horizon - 2*time.Millisecond
	for i := 0; i < uniform; i++ {
		at = append(at, time.Millisecond+time.Duration(rng.Int63n(int64(span))))
	}
	pick := func(ws []Window, n int, aim func(Window) time.Duration) {
		// Background erases drain past the horizon; only windows whose
		// aim point is a legal crash instant qualify.
		var ok []time.Duration
		for _, w := range ws {
			if p := aim(w); p > 0 && p < cfg.Horizon {
				ok = append(ok, p)
			}
		}
		if len(ok) == 0 {
			t.Fatalf("no pulse window inside the horizon")
		}
		for i := 0; i < n; i++ {
			at = append(at, ok[i*len(ok)/n])
		}
	}
	inside := func(w Window) time.Duration { return w.Instant() }
	pick(prog, inProg, inside)
	pick(erase, inErase, inside)
	pick(ckpt, inCkpt, inside)
	// Truncation instants: the log truncates in the completion chain of
	// the flush's block write, so cuts at program-window ends land on
	// that boundary.
	pick(prog, inProg/2, func(w Window) time.Duration { return w.End })
	return at
}

// TestDurabilityOracle is the tentpole property test: >= 100 seeded
// crash instants per run — including cuts inside NAND program, erase,
// and FTL checkpoint-write pulses, and at the flush-completion
// boundaries where the journal truncates — each followed by a full
// remount and the acknowledged-durability check. Any acked-but-lost,
// unacked-but-visible, or corrupt read fails with the offending
// (seed, instant).
func TestDurabilityOracle(t *testing.T) {
	cfg := DefaultConfig(7)
	at := instants(t, cfg, 60, 20, 20, 12)
	if len(at) < 100 {
		t.Fatalf("only %d crash instants", len(at))
	}
	var torn, partial, acked int
	for _, crashAt := range at {
		out, err := CrashAndRecover(cfg, crashAt)
		if err != nil {
			t.Fatalf("seed %d: %v", cfg.Seed, err)
		}
		if out.Verified != out.Acked {
			t.Fatalf("seed %d crash at %v: %d acked but %d verified", cfg.Seed, crashAt, out.Acked, out.Verified)
		}
		torn += out.Mount.TornDiscarded
		partial += out.Mount.PartialErases
		acked += out.Acked
	}
	// The schedule aims inside pulses, so across the suite both tear
	// modes must actually occur — otherwise the windows (or the media
	// model) regressed and the oracle is vacuous.
	if torn == 0 {
		t.Error("no crash instant produced a torn block")
	}
	if partial == 0 {
		t.Error("no crash instant produced a partially erased block")
	}
	if acked == 0 {
		t.Error("no crash instant had any acknowledged writes to verify")
	}
}

// TestCrashDeterminism reruns a few crash instants and requires
// byte-identical outcomes: same recovery stats, same virtual recovery
// time, and the same post-recovery trace hash.
func TestCrashDeterminism(t *testing.T) {
	cfg := DefaultConfig(11)
	prog, erase, ckpt, err := Windows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) == 0 || len(erase) == 0 || len(ckpt) == 0 {
		t.Fatalf("profile found %d program, %d erase, and %d checkpoint windows", len(prog), len(erase), len(ckpt))
	}
	// Background work (and the checkpoints it triggers) drains past the
	// horizon; only in-horizon instants are legal cuts.
	var ckptIn []time.Duration
	for _, w := range ckpt {
		if p := w.Instant(); p > 0 && p < cfg.Horizon {
			ckptIn = append(ckptIn, p)
		}
	}
	if len(ckptIn) == 0 {
		t.Fatal("no checkpoint window inside the horizon")
	}
	at := []time.Duration{
		17 * time.Millisecond,
		prog[len(prog)/2].Instant(),
		erase[len(erase)/3].Instant(),
		ckptIn[len(ckptIn)/2],
	}
	for _, crashAt := range at {
		a, err := CrashAndRecover(cfg, crashAt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CrashAndRecover(cfg, crashAt)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("crash at %v: outcomes differ between runs:\n  %+v\n  %+v", crashAt, a, b)
		}
	}
}
