package crash

import (
	"math/rand"
	"testing"
	"time"
)

// instants builds the oracle's crash schedule for one seed: uniform
// instants across the horizon plus instants aimed inside program and
// erase pulse windows from the crash-free profile, so the suite
// provably covers mid-8 MB-write and mid-erase cuts.
func instants(t *testing.T, cfg Config, uniform, inProg, inErase int) []time.Duration {
	t.Helper()
	prog, erase, err := Windows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) == 0 || len(erase) == 0 {
		t.Fatalf("profile found %d program and %d erase windows; the workload must exercise both", len(prog), len(erase))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var at []time.Duration
	span := cfg.Horizon - 2*time.Millisecond
	for i := 0; i < uniform; i++ {
		at = append(at, time.Millisecond+time.Duration(rng.Int63n(int64(span))))
	}
	pick := func(ws []Window, n int) {
		// Background erases drain past the horizon; only windows whose
		// aim point is a legal crash instant qualify.
		var ok []time.Duration
		for _, w := range ws {
			if p := w.Instant(); p > 0 && p < cfg.Horizon {
				ok = append(ok, p)
			}
		}
		if len(ok) == 0 {
			t.Fatalf("no pulse window inside the horizon")
		}
		for i := 0; i < n; i++ {
			at = append(at, ok[i*len(ok)/n])
		}
	}
	pick(prog, inProg)
	pick(erase, inErase)
	return at
}

// TestDurabilityOracle is the tentpole property test: >= 100 seeded
// crash instants per run — including cuts inside NAND program and
// erase pulses — each followed by a full remount and the
// acknowledged-durability check. Any acked-but-lost, unacked-but-
// visible, or corrupt read fails with the offending (seed, instant).
func TestDurabilityOracle(t *testing.T) {
	cfg := DefaultConfig(7)
	at := instants(t, cfg, 60, 20, 20)
	if len(at) < 100 {
		t.Fatalf("only %d crash instants", len(at))
	}
	var torn, partial, acked int
	for _, crashAt := range at {
		out, err := CrashAndRecover(cfg, crashAt)
		if err != nil {
			t.Fatalf("seed %d: %v", cfg.Seed, err)
		}
		if out.Verified != out.Acked {
			t.Fatalf("seed %d crash at %v: %d acked but %d verified", cfg.Seed, crashAt, out.Acked, out.Verified)
		}
		torn += out.Mount.TornDiscarded
		partial += out.Mount.PartialErases
		acked += out.Acked
	}
	// The schedule aims inside pulses, so across the suite both tear
	// modes must actually occur — otherwise the windows (or the media
	// model) regressed and the oracle is vacuous.
	if torn == 0 {
		t.Error("no crash instant produced a torn block")
	}
	if partial == 0 {
		t.Error("no crash instant produced a partially erased block")
	}
	if acked == 0 {
		t.Error("no crash instant had any acknowledged writes to verify")
	}
}

// TestCrashDeterminism reruns a few crash instants and requires
// byte-identical outcomes: same recovery stats, same virtual recovery
// time, and the same post-recovery trace hash.
func TestCrashDeterminism(t *testing.T) {
	cfg := DefaultConfig(11)
	prog, erase, err := Windows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) == 0 || len(erase) == 0 {
		t.Fatalf("profile found %d program and %d erase windows", len(prog), len(erase))
	}
	at := []time.Duration{
		17 * time.Millisecond,
		prog[len(prog)/2].Instant(),
		erase[len(erase)/3].Instant(),
	}
	for _, crashAt := range at {
		a, err := CrashAndRecover(cfg, crashAt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CrashAndRecover(cfg, crashAt)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("crash at %v: outcomes differ between runs:\n  %+v\n  %+v", crashAt, a, b)
		}
	}
}
