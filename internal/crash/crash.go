// Package crash is the acknowledged-durability oracle: it runs a
// single-device CCDB workload, cuts power at an arbitrary virtual
// instant (including mid-program and mid-erase, tearing blocks in the
// media model), remounts the surviving media through the full
// recovery path — channel OOB scans, block-map rebuild, journal
// replay — and verifies the crash-consistency contract: every write
// acknowledged before the crash instant is readable byte-for-byte
// after remount, and writes that were never acknowledged must be
// absent — corrupt data must never surface.
//
// Everything is seeded and runs in virtual time, so a given (seed,
// crash instant) pair reproduces the same torn pages, the same
// recovery scan, and the same post-recovery trace hash on every run.
package crash

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/ccdb"
	"sdf/internal/core"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Config sizes the workload. The geometry is deliberately small so a
// property test can afford hundreds of crash instants: a few channels
// of short blocks keep each run cheap while still exercising flushes,
// compactions, background erases, and stale generations.
type Config struct {
	Seed           int64
	Channels       int
	BlocksPerPlane int
	PagesPerBlock  int
	// Keys is the size of the cyclically overwritten key space;
	// ValueBytes is the value size (one page by default).
	Keys       int
	ValueBytes int
	// WriteEvery paces the writer; Horizon ends the pre-crash run.
	WriteEvery time.Duration
	Horizon    time.Duration
}

// DefaultConfig returns the oracle's standard small-geometry rig.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Channels:       4,
		BlocksPerPlane: 16,
		PagesPerBlock:  4,
		Keys:           48,
		ValueBytes:     8 << 10,
		WriteEvery:     150 * time.Microsecond,
		Horizon:        120 * time.Millisecond,
	}
}

// devConfig builds the device: data-retaining NAND with error
// injection off (the oracle checks payload bytes, not the ECC path)
// and the OOB payload-CRC check on — the "never surface corrupt
// data" tripwire.
func (c Config) devConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Channels = c.Channels
	cfg.Channel.Nand.BlocksPerPlane = c.BlocksPerPlane
	cfg.Channel.Nand.PagesPerBlock = c.PagesPerBlock
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.Nand.BaseBER = 0
	cfg.Channel.Nand.WearBER = 0
	// Checkpointing is on (with spares for the two checkpoint home
	// blocks), so every crash instant also exercises checkpoint-aware
	// recovery, and instants aimed inside "chan/checkpoint" windows cut
	// power mid-checkpoint-write — the remount must then fall back to
	// the previous image (or a full scan) without losing an acked byte.
	cfg.Channel.SparePerPlane = 4
	cfg.Channel.CheckpointEvery = 2
	cfg.Channel.VerifyCRC = true
	return cfg
}

func (c Config) sliceConfig(j *ccdb.Journal) ccdb.Config {
	return ccdb.Config{RunsPerTier: 4, DataMode: true, Journal: j}
}

// rig is one running pre-crash workload.
type rig struct {
	env     *sim.Env
	journal *ccdb.Journal
	dev     *core.Device
	writer  *sim.Proc
	// acked maps each key to the last value whose Put returned nil;
	// attempted also includes keys every Put tried and lost.
	acked     map[string][]byte
	attempted map[string]bool
}

// start builds the device stack and spawns the paced writer. The
// writer keeps issuing Puts for the whole horizon; Puts rejected
// after a power cut fail fast and count as attempted-but-unacked.
func (c Config) start(col *trace.Collector) (*rig, error) {
	env := sim.NewEnv()
	if col != nil {
		env.SetTracer(col)
	}
	dev, err := core.New(env, c.devConfig())
	if err != nil {
		env.Close()
		return nil, err
	}
	journal := ccdb.NewJournal()
	layer := blocklayer.New(env, dev, blocklayer.DefaultConfig())
	slice := ccdb.NewSlice(env, ccdb.NewSDFStore(layer), c.sliceConfig(journal))
	r := &rig{
		env:       env,
		journal:   journal,
		dev:       dev,
		acked:     make(map[string][]byte),
		attempted: make(map[string]bool),
	}
	rng := rand.New(rand.NewSource(c.Seed))
	r.writer = env.Go("crash/writer", func(p *sim.Proc) {
		for i := 0; env.Now() < c.Horizon; i++ {
			key := fmt.Sprintf("k%03d", i%c.Keys)
			val := make([]byte, c.ValueBytes)
			rng.Read(val)
			r.attempted[key] = true
			if err := slice.Put(p, key, val, len(val)); err == nil {
				r.acked[key] = val
			}
			p.Wait(c.WriteEvery)
		}
	})
	return r, nil
}

// Outcome reports one crash-and-remount cycle. Every field is
// deterministic in (Config, CrashAt): the determinism test compares
// whole Outcomes, trace hash included, across independent runs.
type Outcome struct {
	CrashAt time.Duration
	// Attempted and Acked count distinct keys; Verified counts acked
	// keys proven byte-identical after remount.
	Attempted int
	Acked     int
	Verified  int
	// Mount and Replay are the recovery-path reports.
	Mount  blocklayer.MountStats
	Replay ccdb.ReplayReport
	// RecoveryTime is the virtual time the remount consumed.
	RecoveryTime time.Duration
	// TraceHash fingerprints the post-recovery trace stream.
	TraceHash string
}

// CrashAndRecover runs the workload, cuts power at crashAt, remounts
// the surviving media in a fresh environment, and verifies the
// durability contract. A contract violation (or any recovery failure)
// is the returned error.
func CrashAndRecover(cfg Config, crashAt time.Duration) (Outcome, error) {
	out := Outcome{CrashAt: crashAt}
	if crashAt <= 0 || crashAt >= cfg.Horizon {
		return out, fmt.Errorf("crash: instant %v outside (0, %v)", crashAt, cfg.Horizon)
	}
	r, err := cfg.start(nil)
	if err != nil {
		return out, err
	}
	// The cut is one scheduler callback: the device freezes (tearing
	// whatever pulses are in flight) and the journal stops accepting
	// appends, so no write racing the cut can be acknowledged.
	r.env.Schedule(crashAt, func() {
		r.dev.PowerLoss()
		r.journal.Halt()
	})
	r.env.RunUntilDone(r.writer)
	r.env.Run()
	state := r.dev.State()
	r.env.Close()
	out.Attempted = len(r.attempted)
	out.Acked = len(r.acked)

	// Remount in a fresh environment: same config, surviving media.
	env := sim.NewEnv()
	defer env.Close()
	col := trace.NewCollector()
	env.SetTracer(col)
	dev, err := core.Mount(env, cfg.devConfig(), state)
	if err != nil {
		return out, err
	}
	var slice *ccdb.Slice
	var mountErr error
	boot := env.Go("crash/mount", func(p *sim.Proc) {
		layer, mst, err := blocklayer.Mount(p, env, dev, blocklayer.DefaultConfig())
		if err != nil {
			mountErr = err
			return
		}
		out.Mount = mst
		s, rr, err := ccdb.MountSlice(p, env, ccdb.NewSDFStore(layer), cfg.sliceConfig(r.journal))
		if err != nil {
			mountErr = err
			return
		}
		out.Replay = rr
		slice = s
	})
	env.RunUntilDone(boot)
	if mountErr != nil {
		return out, fmt.Errorf("crash: remount at %v: %w", crashAt, mountErr)
	}
	out.RecoveryTime = env.Now()

	// The oracle proper. With the write-ahead journal, acknowledged
	// and visible coincide exactly: an acked key must come back
	// byte-for-byte, a never-acked key must be absent (its append was
	// rejected, so no durable state can hold it), and keys never
	// written must stay absent.
	keys := make([]string, 0, len(r.attempted))
	for k := range r.attempted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var verr error
	verify := env.Go("crash/verify", func(p *sim.Proc) {
		for _, k := range keys {
			got, _, err := slice.Get(p, k)
			want, ok := r.acked[k]
			switch {
			case ok && err != nil:
				verr = fmt.Errorf("crash at %v: acked key %q unreadable after remount: %w", crashAt, k, err)
			case ok && !bytes.Equal(got, want):
				verr = fmt.Errorf("crash at %v: acked key %q returned wrong bytes after remount", crashAt, k)
			case !ok && err == nil:
				verr = fmt.Errorf("crash at %v: unacked key %q surfaced after remount", crashAt, k)
			case !ok && !errors.Is(err, ccdb.ErrNotFound):
				verr = fmt.Errorf("crash at %v: unacked key %q: want not-found, got: %v", crashAt, k, err)
			}
			if verr != nil {
				return
			}
			if ok {
				out.Verified++
			}
		}
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("absent%02d", i)
			if _, _, err := slice.Get(p, k); !errors.Is(err, ccdb.ErrNotFound) {
				verr = fmt.Errorf("crash at %v: phantom key %q after remount: %v", crashAt, k, err)
				return
			}
		}
	})
	env.RunUntilDone(verify)
	env.Run()
	if verr != nil {
		return out, verr
	}
	out.TraceHash = col.Hash()
	return out, nil
}

// Window is one interval during which a NAND pulse was in flight in
// the crash-free profile of the workload. Because the simulation is
// deterministic, the crashing run is identical to the profile up to
// the crash instant — so an instant inside a profile window lands the
// cut on an in-flight program or erase.
type Window struct {
	Start, End time.Duration
}

// Instant returns a point late in the window, biased toward the pulse
// itself (the tail of the span) rather than any queueing at its head.
func (w Window) Instant() time.Duration {
	return w.Start + 3*(w.End-w.Start)/4
}

// Windows profiles the workload without a crash and returns the
// program and erase pulse windows plus the FTL checkpoint-write
// windows, in completion order.
func Windows(cfg Config) (prog, erase, ckpt []Window, err error) {
	col := trace.NewCollector()
	r, err := cfg.start(col)
	if err != nil {
		return nil, nil, nil, err
	}
	defer r.env.Close()
	r.env.RunUntilDone(r.writer)
	r.env.Run()
	begins := make(map[trace.SpanID]trace.Event)
	for _, ev := range col.Events() {
		switch ev.Kind {
		case trace.KindSpanBegin:
			begins[ev.Span] = ev
		case trace.KindSpanEnd:
			b, ok := begins[ev.Span]
			if !ok {
				continue
			}
			delete(begins, ev.Span)
			w := Window{Start: b.At, End: ev.At}
			switch b.Name {
			case "nand/program":
				prog = append(prog, w)
			case "nand/erase":
				erase = append(erase, w)
			case "chan/checkpoint":
				ckpt = append(ckpt, w)
			}
		}
	}
	return prog, erase, ckpt, nil
}
