package blocklayer

import (
	"testing"
	"time"

	"sdf/internal/coord"
	"sdf/internal/sim"
)

// overlapGate wraps a coordinator member as an EraseGate and records,
// via shared state, whether two layers ever ran granted erases
// concurrently. It forwards PoolLow so the urgency path stays wired.
type overlapGate struct {
	m       *coord.Member
	idx     int
	active  *[2]int
	overlap *int
}

func (g *overlapGate) AcquireErase(p *sim.Proc, free int) (func(), bool) {
	release, forced := g.m.AcquireErase(p, free)
	if forced {
		return release, true
	}
	g.active[g.idx]++
	if g.active[1-g.idx] > 0 {
		*g.overlap++
	}
	done := false
	return func() {
		if !done {
			done = true
			g.active[g.idx]--
		}
		release()
	}, false
}

func (g *overlapGate) PoolLow(free int) { g.m.PoolLow(free) }

// TestEraseGateSerializesAcrossLayers: two independent block layers
// (two replicas of a slice) share one coordinator; under concurrent
// write/free churn on both, their background erases must never
// overlap — the cluster-level half of the no-overlap invariant that
// internal/coord's chaos test checks at the protocol level.
func TestEraseGateSerializesAcrossLayers(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	co := coord.New(env, coord.Config{Window: 2 * time.Millisecond, MaxWait: time.Second})
	var active [2]int
	overlap := 0
	var layers [2]*Layer
	for i := 0; i < 2; i++ {
		d := smallDevice(t, env, false)
		cfg := DefaultConfig()
		cfg.EraseGate = &overlapGate{
			m:       co.Register([]string{"r1", "r2"}[i]),
			idx:     i,
			active:  &active,
			overlap: &overlap,
		}
		layers[i] = New(env, d, cfg)
	}
	for i := 0; i < 2; i++ {
		l := layers[i]
		env.Go("churn", func(p *sim.Proc) {
			for k := 0; k < 60; k++ {
				id := BlockID(k)
				if _, err := l.Write(p, id, nil); err != nil {
					t.Errorf("write %d: %v", k, err)
					return
				}
				if err := l.Free(p, id); err != nil {
					t.Errorf("free %d: %v", k, err)
					return
				}
			}
		})
	}
	env.Run()
	if overlap != 0 {
		t.Errorf("%d overlapping granted erases between the two layers", overlap)
	}
	st := co.Stats()
	if st.Grants < 2 {
		t.Fatalf("stats %+v: churn on both layers should grant windows to both", st)
	}
}

// TestForcedHatchKeepsWritesOffInlineErases: a peer replica holds the
// erase window indefinitely (MaxWait is effectively infinite), so the
// victim's background reclaim can only proceed through the pool-low
// forced hatch. The starvation bound must keep the foreground write
// path supplied with pre-erased blocks: no write may fail and none
// may degrade to an ungated inline erase.
func TestForcedHatchKeepsWritesOffInlineErases(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	// ForceFreeBlocks leaves headroom for the erase latency itself: the
	// hatch opens while enough pre-erased blocks remain to cover writes
	// issued during the in-flight forced erase.
	co := coord.New(env, coord.Config{Window: time.Millisecond, MaxWait: time.Hour, ForceFreeBlocks: 4})
	hog := co.Register("hog")
	victim := co.Register("victim")
	env.Go("hog", func(p *sim.Proc) {
		// Grabs the window at t=0 and never releases: the victim can
		// win a grant only through the forced hatch.
		release, _ := hog.AcquireErase(p, 10)
		defer release()
		p.Wait(time.Hour)
	})
	d := smallDevice(t, env, false)
	cfg := DefaultConfig()
	cfg.EraseGate = victim
	l := New(env, d, cfg)
	w := env.Go("churn", func(p *sim.Proc) {
		// All blocks start dirty; the startup erasers run forced (pool
		// at zero) until they climb past the floor and park. Start the
		// churn once the pools are primed — from here on, every erase
		// the churn needs must come through a PoolLow forced wake.
		p.Wait(40 * time.Millisecond)
		// 8 blocks/plane and 4 channels: 100 write/free cycles recycle
		// the pools many times over, so reclaim must keep pace.
		for k := 0; k < 100; k++ {
			id := BlockID(k)
			if _, err := l.Write(p, id, nil); err != nil {
				t.Fatalf("write %d starved: %v", k, err)
			}
			if err := l.Free(p, id); err != nil {
				t.Fatalf("free %d: %v", k, err)
			}
		}
	})
	env.RunUntilDone(w)
	if _, _, inline, _ := l.Stats(); inline != 0 {
		t.Errorf("%d inline erases: the write path fell behind the gated eraser", inline)
	}
	st := co.Stats()
	if st.Forced == 0 {
		t.Error("victim never forced an erase despite a starved window")
	}
	if st.Timeouts != 0 {
		t.Errorf("stats %+v: forced erases should come from pool urgency, not MaxWait", st)
	}
}
