package blocklayer

import (
	"bytes"
	"math/rand"
	"testing"

	"sdf/internal/sim"
)

// TestStaticWearLevelingMigratesColdBlock: a block written once and
// never touched again pins its physical media at the minimum erase
// count while write/free churn wears out the rest of the channel. With
// StaticWL on, the idle eraser must migrate the cold block to fresh
// media (counting blocklayer_static_wl_migrations_total), return its
// cold media to circulation, and keep the data readable at its new
// home.
func TestStaticWearLevelingMigratesColdBlock(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, true)
	cfg := DefaultConfig()
	cfg.StaticWL = true
	cfg.WearSpreadThreshold = 5
	l := New(env, d, cfg)

	cold := make([]byte, l.BlockSize())
	rand.New(rand.NewSource(3)).Read(cold)
	churn := make([]byte, l.BlockSize())

	w := env.Go("t", func(p *sim.Proc) {
		// The victim: written once on channel 0, then never rewritten.
		if _, err := l.Write(p, 0, cold); err != nil {
			t.Error(err)
			return
		}
		// Churn the same channel (even IDs hash to channel 0 on a
		// 4-channel device) until the erase-count spread is wide.
		for i := 0; i < 120; i++ {
			id := BlockID(4 * (i + 1))
			if _, err := l.Write(p, id, churn); err != nil {
				t.Error(err)
				return
			}
			if err := l.Free(p, id); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	before, spread := l.WearLevelStats()
	if spread < cfg.WearSpreadThreshold {
		t.Fatalf("churn produced spread %d, below threshold %d — test setup too weak", spread, cfg.WearSpreadThreshold)
	}
	// Drain the idle phase: the eraser clears its backlog, then spends
	// its migration credits on the cold block.
	env.Run()
	migrations, _ := l.WearLevelStats()
	if migrations <= before {
		t.Fatalf("no static WL migration during idle time (spread %d >= threshold %d)", spread, cfg.WearSpreadThreshold)
	}

	// The data must have followed the migration.
	r := env.Go("read", func(p *sim.Proc) {
		got, err := l.Read(p, 0, 0, l.BlockSize())
		if err != nil {
			t.Errorf("read after migration: %v", err)
			return
		}
		if !bytes.Equal(got, cold) {
			t.Error("cold block corrupted by static WL migration")
		}
	})
	env.RunUntilDone(r)
	env.Close()
}

// TestStaticWLOffNoMigrations: the default configuration must never
// migrate — the knob is strictly opt-in.
func TestStaticWLOffNoMigrations(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			id := BlockID(4 * (i + 1))
			if _, err := l.Write(p, id, nil); err != nil {
				t.Error(err)
				return
			}
			if err := l.Free(p, id); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Run()
	env.Close()
	if migrations, _ := l.WearLevelStats(); migrations != 0 {
		t.Fatalf("migrations = %d with StaticWL off, want 0", migrations)
	}
}
