// Package blocklayer implements the unified user-space block layer
// that sits between CCDB's slices and the SDF device (§2.4).
//
// Writes arrive as fixed 8 MB blocks tagged with a unique ID (the low
// 64 bits of the 128-bit write ID in the production system). The layer
// hashes consecutive IDs round-robin over the device's 44 channels,
// manages per-channel free-space (which blocks are erased and ready,
// which still need an erase), and schedules erase commands into
// channel idle periods so they do not delay foreground requests.
package blocklayer

import (
	"errors"
	"fmt"
	"time"

	"sdf/internal/core"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Layer errors.
var (
	ErrNoSpace     = errors.New("blocklayer: channel has no free blocks")
	ErrUnknownID   = errors.New("blocklayer: no block with this ID")
	ErrDuplicateID = errors.New("blocklayer: ID already written")
)

// BlockID identifies one 8 MB write. The production system uses
// 128-bit IDs of which the low 64 bits are significant (§2.4); we
// model exactly those 64 bits.
type BlockID uint64

// Handle locates a written block on the device.
type Handle struct {
	Channel int
	LBN     int
}

// Placement selects how write IDs map to channels.
type Placement int

// Placement policies.
const (
	// PlacementHash is the production policy: consecutive IDs walk
	// the channels round-robin (§2.4).
	PlacementHash Placement = iota
	// PlacementLeastLoaded picks the channel with the fewest writes
	// in flight (ties broken by the largest pre-erased pool) — the
	// load-balance-aware scheduler the paper names as future work
	// (§3.3.1, §5). Reads still follow where the block was written.
	PlacementLeastLoaded
)

// Config tunes the layer.
type Config struct {
	// BackgroundErase schedules erases of freed blocks into channel
	// idle time, so writes usually find a pre-erased block. Disabling
	// it forces every write to pay an inline erase (ablation A3).
	BackgroundErase bool
	// IdlePollInterval is how often the eraser re-checks a busy
	// channel.
	IdlePollInterval time.Duration
	// Placement selects the write-placement policy.
	Placement Placement
}

// DefaultConfig enables idle-time erase scheduling with the
// production round-robin hash placement.
func DefaultConfig() Config {
	return Config{BackgroundErase: true, IdlePollInterval: time.Millisecond}
}

// chanState tracks free space of one channel.
type chanState struct {
	erased []int // erased, ready to program
	dirty  []int // invalidated, erase pending
	work   *sim.Signal
}

// Layer is the block layer instance bound to one SDF device.
type Layer struct {
	cfg      Config
	env      *sim.Env
	dev      *core.Device
	chans    []*chanState
	blocks   map[BlockID]Handle
	inflight []int // writes in flight per channel

	inlineErases     int64
	backgroundErases int64
	writes           int64
	reads            int64
}

// New builds the layer; all device blocks start as dirty (needing an
// initial erase) and the per-channel erasers start immediately.
func New(env *sim.Env, dev *core.Device, cfg Config) *Layer {
	if cfg.IdlePollInterval <= 0 {
		cfg.IdlePollInterval = time.Millisecond
	}
	l := &Layer{
		cfg:      cfg,
		env:      env,
		dev:      dev,
		blocks:   make(map[BlockID]Handle),
		inflight: make([]int, dev.Channels()),
	}
	for c := 0; c < dev.Channels(); c++ {
		cs := &chanState{work: sim.NewSignal(env)}
		for lbn := 0; lbn < dev.BlocksPerChannel(); lbn++ {
			cs.dirty = append(cs.dirty, lbn)
		}
		l.chans = append(l.chans, cs)
		if cfg.BackgroundErase {
			c := c
			env.Go(fmt.Sprintf("blocklayer/eraser.%d", c), func(p *sim.Proc) {
				l.eraseLoop(p, c)
			})
			cs.work.Fire() // initial pool needs erasing
		}
	}
	return l
}

// Device returns the underlying SDF device.
func (l *Layer) Device() *core.Device { return l.dev }

// ChannelOf returns the channel an ID hashes to: consecutive IDs walk
// the channels round-robin (§2.4).
func (l *Layer) ChannelOf(id BlockID) int {
	return int(uint64(id) % uint64(l.dev.Channels()))
}

// BlockSize returns the fixed write unit (8 MB).
func (l *Layer) BlockSize() int { return l.dev.BlockSize() }

// PageSize returns the read unit (8 KB).
func (l *Layer) PageSize() int { return l.dev.PageSize() }

// beginOp opens a root span for one block-layer request, reparenting
// p under it for the duration. The returned func closes it.
func (l *Layer) beginOp(p *sim.Proc, name string) func() {
	t := l.env.Tracer()
	if t == nil {
		return func() {}
	}
	prev := p.Span()
	op := t.Begin(l.env.Now(), prev, name, trace.PhaseOp)
	p.SetSpan(op)
	return func() {
		p.SetSpan(prev)
		t.End(l.env.Now(), op)
	}
}

// pickChannel applies the placement policy for a new write.
func (l *Layer) pickChannel(id BlockID) int {
	if l.cfg.Placement == PlacementHash {
		return l.ChannelOf(id)
	}
	best := -1
	for c := range l.chans {
		if len(l.chans[c].erased)+len(l.chans[c].dirty) == 0 {
			continue // no space on this channel
		}
		if best < 0 {
			best = c
			continue
		}
		bi, ci := l.inflight[best], l.inflight[c]
		if ci < bi || (ci == bi && len(l.chans[c].erased) > len(l.chans[best].erased)) {
			best = c
		}
	}
	if best < 0 {
		best = l.ChannelOf(id) // let the hash channel report ErrNoSpace
	}
	return best
}

// Write stores one block under id. data must be BlockSize long, or
// nil in timing-only mode. If the channel has a pre-erased block the
// write programs directly; otherwise it pays an inline erase.
func (l *Layer) Write(p *sim.Proc, id BlockID, data []byte) (Handle, error) {
	if _, ok := l.blocks[id]; ok {
		return Handle{}, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	end := l.beginOp(p, "blocklayer/write")
	defer end()
	c := l.pickChannel(id)
	cs := l.chans[c]
	l.inflight[c]++
	defer func() { l.inflight[c]-- }()
	var lbn int
	switch {
	case len(cs.erased) > 0:
		lbn = cs.erased[len(cs.erased)-1]
		cs.erased = cs.erased[:len(cs.erased)-1]
		if err := l.dev.Write(p, c, lbn, data); err != nil {
			return Handle{}, err
		}
	case len(cs.dirty) > 0:
		lbn = cs.dirty[len(cs.dirty)-1]
		cs.dirty = cs.dirty[:len(cs.dirty)-1]
		l.inlineErases++
		if err := l.dev.EraseWrite(p, c, lbn, data); err != nil {
			return Handle{}, err
		}
	default:
		return Handle{}, fmt.Errorf("%w: channel %d", ErrNoSpace, c)
	}
	h := Handle{Channel: c, LBN: lbn}
	l.blocks[id] = h
	l.writes++
	return h, nil
}

// Read returns size bytes at byte offset off within the block written
// under id. off and size must be page aligned.
func (l *Layer) Read(p *sim.Proc, id BlockID, off, size int) ([]byte, error) {
	h, ok := l.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	end := l.beginOp(p, "blocklayer/read")
	defer end()
	l.reads++
	return l.dev.Read(p, h.Channel, h.LBN, off, size)
}

// Lookup returns the handle for id.
func (l *Layer) Lookup(id BlockID) (Handle, bool) {
	h, ok := l.blocks[id]
	return h, ok
}

// Free releases the block written under id. The space returns to the
// channel's dirty pool; the background eraser reclaims it during idle
// time (or the next write to the channel pays an inline erase).
func (l *Layer) Free(p *sim.Proc, id BlockID) error {
	h, ok := l.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	delete(l.blocks, id)
	cs := l.chans[h.Channel]
	cs.dirty = append(cs.dirty, h.LBN)
	cs.work.Fire()
	return nil
}

// FreeBlocks returns (erased, dirty) block counts for a channel.
func (l *Layer) FreeBlocks(c int) (erased, dirty int) {
	return len(l.chans[c].erased), len(l.chans[c].dirty)
}

// Stats returns (writes, reads, inline erases, background erases).
func (l *Layer) Stats() (writes, reads, inline, background int64) {
	return l.writes, l.reads, l.inlineErases, l.backgroundErases
}

// eraseLoop is the per-channel idle-time eraser: it drains the dirty
// pool whenever the channel engine is idle, deferring to foreground
// traffic otherwise.
func (l *Layer) eraseLoop(p *sim.Proc, c int) {
	cs := l.chans[c]
	for {
		if len(cs.dirty) == 0 {
			if !cs.work.Fired() {
				p.Await(cs.work)
			}
			cs.work = sim.NewSignal(l.env)
			continue
		}
		if !l.dev.Channel(c).Idle() {
			p.Wait(l.cfg.IdlePollInterval)
			continue
		}
		lbn := cs.dirty[len(cs.dirty)-1]
		cs.dirty = cs.dirty[:len(cs.dirty)-1]
		if err := l.dev.Erase(p, c, lbn); err != nil {
			// The block could not be prepared (e.g. worn out); it is
			// dropped from circulation.
			continue
		}
		cs.erased = append(cs.erased, lbn)
		l.backgroundErases++
	}
}
