// Package blocklayer implements the unified user-space block layer
// that sits between CCDB's slices and the SDF device (§2.4).
//
// Writes arrive as fixed 8 MB blocks tagged with a unique ID (the low
// 64 bits of the 128-bit write ID in the production system). The layer
// hashes consecutive IDs round-robin over the device's 44 channels,
// manages per-channel free-space (which blocks are erased and ready,
// which still need an erase), and schedules erase commands into
// channel idle periods so they do not delay foreground requests.
package blocklayer

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdf/internal/core"
	"sdf/internal/flashchan"
	"sdf/internal/metrics"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Layer errors.
var (
	ErrNoSpace     = errors.New("blocklayer: channel has no free blocks")
	ErrUnknownID   = errors.New("blocklayer: no block with this ID")
	ErrDuplicateID = errors.New("blocklayer: ID already written")
)

// BlockID identifies one 8 MB write. The production system uses
// 128-bit IDs of which the low 64 bits are significant (§2.4); we
// model exactly those 64 bits.
type BlockID uint64

// Handle locates a written block on the device.
type Handle struct {
	Channel int
	LBN     int
}

// Placement selects how write IDs map to channels.
type Placement int

// Placement policies.
const (
	// PlacementHash is the production policy: consecutive IDs walk
	// the channels round-robin (§2.4).
	PlacementHash Placement = iota
	// PlacementLeastLoaded picks the channel with the fewest writes
	// in flight (ties broken by the largest pre-erased pool) — the
	// load-balance-aware scheduler the paper names as future work
	// (§3.3.1, §5). Reads still follow where the block was written.
	PlacementLeastLoaded
)

// EraseGate coordinates background erases across the replicas of a
// slice (internal/coord, DESIGN.md §16). AcquireErase is called with
// the channel's pre-erased pool depth before every background erase;
// it may park the eraser until this replica is granted an erase
// window, and reports whether the forced-erase escape hatch fired
// instead. The returned release must be called (idempotently) once
// the erase completes.
type EraseGate interface {
	AcquireErase(p *sim.Proc, free int) (release func(), forced bool)
}

// PoolNotifier is an optional EraseGate extension: a gate that also
// implements it is told, park-free, whenever a write consumes from a
// channel's pre-erased pool. The gate uses the updated depth to wake
// parked erase requests whose urgency has changed since they queued —
// without it, a request parked while the pool was deep would sleep
// through the pool draining to empty beneath it, degrading foreground
// writes to ungated inline erases.
type PoolNotifier interface {
	PoolLow(free int)
}

// Config tunes the layer.
type Config struct {
	// BackgroundErase schedules erases of freed blocks into channel
	// idle time, so writes usually find a pre-erased block. Disabling
	// it forces every write to pay an inline erase (ablation A3).
	BackgroundErase bool
	// IdlePollInterval is how often the eraser re-checks a busy
	// channel.
	IdlePollInterval time.Duration
	// Placement selects the write-placement policy.
	Placement Placement

	// EraseGate, when non-nil, gates every background erase (and the
	// scrub backlog) behind the replica's erase-window coordinator, so
	// no two replicas of a slice pay their 3 ms erases at once. Nil
	// keeps the layer's standalone behavior exactly.
	EraseGate EraseGate

	// StaticWL enables static wear leveling: when a channel's erase
	// count spread exceeds WearSpreadThreshold, the eraser migrates
	// the coldest mapped block (lowest physical erase count — e.g. a
	// recovered block that has sat unmodified since mount) to a fresh
	// block, returning its cold media to the erase pools. Migrations
	// are credited by foreground writes, so an idle device performs
	// none and the event queue still drains.
	StaticWL bool
	// WearSpreadThreshold is the max-minus-min erase count spread on
	// one channel that triggers a migration. Defaults to 8.
	WearSpreadThreshold int

	// QuarantineThreshold is how many consecutive command failures on
	// one channel put it into quarantine. A dead-engine error
	// quarantines immediately regardless of the count.
	QuarantineThreshold int
	// QuarantineWindow is how long a quarantined channel is excluded
	// from write placement. Reads still go to it (the data lives
	// there), and a read success ends the suspicion early.
	QuarantineWindow time.Duration
	// ReadRetries bounds how many times a failed read is retried
	// before the error surfaces to the caller. Negative disables
	// retries.
	ReadRetries int
	// RetryBackoff is the virtual-time wait before the first read
	// retry; it doubles per attempt.
	RetryBackoff time.Duration
}

// DefaultConfig enables idle-time erase scheduling with the
// production round-robin hash placement.
func DefaultConfig() Config {
	return Config{BackgroundErase: true, IdlePollInterval: time.Millisecond}
}

// chanState tracks free space and health of one channel.
type chanState struct {
	erased []int // erased, ready to program
	dirty  []int // invalidated, erase pending
	work   *sim.Signal

	// scrubBacklog is how many of the channel's pending erases are
	// crash-suspect blocks (torn writes, partial erases) queued by
	// Mount for an eager scrub: while it is positive the eraser does
	// not wait for channel idle time.
	scrubBacklog int

	// wlCredits bounds static wear leveling: each foreground write
	// earns the channel one migration credit (capped), so migrations
	// can never outpace the workload — and stop when it stops.
	wlCredits int

	consecErrs       int
	quarantinedUntil time.Duration // virtual instant quarantine lifts
	quarantines      metrics.Counter
}

// Layer is the block layer instance bound to one SDF device.
type Layer struct {
	cfg      Config
	env      *sim.Env
	dev      *core.Device
	chans    []*chanState
	blocks   map[BlockID]Handle
	inflight []int // writes in flight per channel

	// Counters are metrics.Counter so RegisterMetrics can adopt the
	// same storage into a registry (the exported series and the Stats
	// accessors cannot drift).
	inlineErases     metrics.Counter
	backgroundErases metrics.Counter
	writes           metrics.Counter
	reads            metrics.Counter
	readRetries      metrics.Counter
	placementSkips   metrics.Counter
	scrubs           metrics.Counter
	wlMigrations     metrics.Counter

	// poolLow is EraseGate's PoolLow when the gate implements
	// PoolNotifier, else nil; resolved once at construction.
	poolLow func(free int)
}

// New builds the layer; all device blocks start as dirty (needing an
// initial erase) and the per-channel erasers start immediately.
func New(env *sim.Env, dev *core.Device, cfg Config) *Layer {
	l := newLayer(env, dev, cfg)
	for _, cs := range l.chans {
		for lbn := 0; lbn < dev.BlocksPerChannel(); lbn++ {
			cs.dirty = append(cs.dirty, lbn)
		}
	}
	l.startErasers()
	return l
}

// newLayer builds the layer skeleton: defaults applied, channel state
// allocated, pools empty, erasers not yet running. New and Mount fill
// the pools their own way before calling startErasers.
func newLayer(env *sim.Env, dev *core.Device, cfg Config) *Layer {
	if cfg.IdlePollInterval <= 0 {
		cfg.IdlePollInterval = time.Millisecond
	}
	if cfg.QuarantineThreshold <= 0 {
		cfg.QuarantineThreshold = 3
	}
	if cfg.QuarantineWindow <= 0 {
		cfg.QuarantineWindow = 100 * time.Millisecond
	}
	if cfg.ReadRetries == 0 {
		cfg.ReadRetries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Microsecond
	}
	if cfg.WearSpreadThreshold <= 0 {
		cfg.WearSpreadThreshold = 8
	}
	l := &Layer{
		cfg:      cfg,
		env:      env,
		dev:      dev,
		blocks:   make(map[BlockID]Handle),
		inflight: make([]int, dev.Channels()),
	}
	for c := 0; c < dev.Channels(); c++ {
		l.chans = append(l.chans, &chanState{work: sim.NewSignal(env)})
	}
	if n, ok := cfg.EraseGate.(PoolNotifier); ok {
		l.poolLow = n.PoolLow
	}
	return l
}

// startErasers launches the per-channel idle-time erasers and kicks
// any channel that already has an erase backlog.
func (l *Layer) startErasers() {
	if !l.cfg.BackgroundErase {
		return
	}
	for c, cs := range l.chans {
		c := c
		l.env.Go(fmt.Sprintf("blocklayer/eraser.%d", c), func(p *sim.Proc) {
			l.eraseLoop(p, c)
		})
		if len(cs.dirty) > 0 {
			cs.work.Fire()
		}
	}
}

// Device returns the underlying SDF device.
func (l *Layer) Device() *core.Device { return l.dev }

// ChannelOf returns the channel an ID hashes to: consecutive IDs walk
// the channels round-robin (§2.4).
func (l *Layer) ChannelOf(id BlockID) int {
	return int(uint64(id) % uint64(l.dev.Channels()))
}

// BlockSize returns the fixed write unit (8 MB).
func (l *Layer) BlockSize() int { return l.dev.BlockSize() }

// PageSize returns the read unit (8 KB).
func (l *Layer) PageSize() int { return l.dev.PageSize() }

// beginOp opens a root span for one block-layer request, reparenting
// p under it for the duration. The returned func closes it.
func (l *Layer) beginOp(p *sim.Proc, name string) func() {
	t := l.env.Tracer()
	if t == nil {
		return func() {}
	}
	prev := p.Span()
	op := t.Begin(l.env.Now(), prev, name, trace.PhaseOp)
	p.SetSpan(op)
	return func() {
		p.SetSpan(prev)
		t.End(l.env.Now(), op)
	}
}

// Healthy reports whether channel c should receive new writes: its
// engine is alive and it is not inside a quarantine window.
func (l *Layer) Healthy(c int) bool {
	return l.dev.Channel(c).Alive() && l.env.Now() >= l.chans[c].quarantinedUntil
}

// recordSuccess clears the consecutive-error count after a completed
// command. A success on a channel with an erase backlog also wakes the
// background eraser: it parks while the engine is offline, and a
// served command is the proof of revival it waits for.
func (l *Layer) recordSuccess(c int) {
	cs := l.chans[c]
	cs.consecErrs = 0
	if len(cs.dirty) > 0 {
		cs.work.Fire()
	}
}

// recordError counts one command failure. A dead engine quarantines
// the channel immediately; other errors quarantine after
// QuarantineThreshold consecutive failures.
func (l *Layer) recordError(c int, err error) {
	cs := l.chans[c]
	cs.consecErrs++
	if errors.Is(err, flashchan.ErrChannelDead) || cs.consecErrs >= l.cfg.QuarantineThreshold {
		l.quarantine(c)
	}
}

// quarantine excludes channel c from write placement for one window,
// emitting a fault-phase span covering it. Re-quarantine on each
// failed probe is how a permanently dead channel stays excluded — and
// how a revived one is naturally readmitted when the window lapses.
func (l *Layer) quarantine(c int) {
	cs := l.chans[c]
	until := l.env.Now() + l.cfg.QuarantineWindow
	if until <= cs.quarantinedUntil {
		return // an open window already covers this failure
	}
	cs.quarantinedUntil = until
	cs.quarantines.Inc()
	cs.consecErrs = 0
	if t := l.env.Tracer(); t != nil {
		span := t.Begin(l.env.Now(), 0, fmt.Sprintf("blocklayer/quarantine.%d", c), trace.PhaseFault)
		l.env.Schedule(l.cfg.QuarantineWindow, func() { t.End(l.env.Now(), span) })
	}
}

// pickChannel applies the placement policy, then degrades around
// unhealthy channels: if the policy's pick is offline or quarantined,
// probe forward for the nearest healthy channel with space. When every
// channel is healthy this is exactly the policy's answer.
func (l *Layer) pickChannel(id BlockID) int {
	c := l.policyChannel(id)
	if l.Healthy(c) {
		return c
	}
	n := len(l.chans)
	for i := 1; i < n; i++ {
		alt := (c + i) % n
		if l.Healthy(alt) && len(l.chans[alt].erased)+len(l.chans[alt].dirty) > 0 {
			l.placementSkips.Inc()
			return alt
		}
	}
	return c // nothing healthy: let the policy channel report the error
}

// policyChannel is the placement policy proper, health-blind.
func (l *Layer) policyChannel(id BlockID) int {
	if l.cfg.Placement == PlacementHash {
		return l.ChannelOf(id)
	}
	best := -1
	for c := range l.chans {
		if len(l.chans[c].erased)+len(l.chans[c].dirty) == 0 {
			continue // no space on this channel
		}
		if best < 0 {
			best = c
			continue
		}
		bi, ci := l.inflight[best], l.inflight[c]
		if ci < bi || (ci == bi && len(l.chans[c].erased) > len(l.chans[best].erased)) {
			best = c
		}
	}
	if best < 0 {
		best = l.ChannelOf(id) // let the hash channel report ErrNoSpace
	}
	return best
}

// Write stores one block under id. data must be BlockSize long, or
// nil in timing-only mode. If the channel has a pre-erased block the
// write programs directly; otherwise it pays an inline erase.
func (l *Layer) Write(p *sim.Proc, id BlockID, data []byte) (Handle, error) {
	if _, ok := l.blocks[id]; ok {
		return Handle{}, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	end := l.beginOp(p, "blocklayer/write")
	defer end()
	c := l.pickChannel(id)
	cs := l.chans[c]
	l.inflight[c]++
	defer func() { l.inflight[c]-- }()
	// Every write carries its ID in the pages' out-of-band area (the
	// paper's 128-bit write IDs, low 64 bits significant), so a
	// mount-time scan can rebuild this map after power loss.
	tag := flashchan.WriteID{Lo: uint64(id)}
	var lbn int
	switch {
	case len(cs.erased) > 0:
		lbn = cs.erased[len(cs.erased)-1]
		cs.erased = cs.erased[:len(cs.erased)-1]
		if l.poolLow != nil {
			// Parked erase requests re-evaluate their urgency against
			// the shrinking pool (see PoolNotifier).
			l.poolLow(len(cs.erased))
		}
		if err := l.dev.WriteTagged(p, c, lbn, data, tag); err != nil {
			// Block state is uncertain after a failed program; return
			// it via the dirty pool so it is re-erased before reuse.
			cs.dirty = append(cs.dirty, lbn)
			cs.work.Fire()
			l.recordError(c, err)
			return Handle{}, err
		}
	case len(cs.dirty) > 0:
		lbn = cs.dirty[len(cs.dirty)-1]
		cs.dirty = cs.dirty[:len(cs.dirty)-1]
		l.inlineErases.Inc()
		if err := l.dev.EraseWriteTagged(p, c, lbn, data, tag); err != nil {
			if !errors.Is(err, flashchan.ErrOutOfSpace) {
				// Keep the block in circulation unless its spares are
				// exhausted; previously a failure here leaked the lbn.
				cs.dirty = append(cs.dirty, lbn)
				cs.work.Fire()
			}
			l.recordError(c, err)
			return Handle{}, err
		}
	default:
		return Handle{}, fmt.Errorf("%w: channel %d", ErrNoSpace, c)
	}
	l.recordSuccess(c)
	if l.cfg.StaticWL && cs.wlCredits < 4 {
		// Each foreground write earns one static-WL migration credit,
		// bounding background churn by the workload itself.
		cs.wlCredits++
	}
	h := Handle{Channel: c, LBN: lbn}
	l.blocks[id] = h
	l.writes.Inc()
	return h, nil
}

// Read returns size bytes at byte offset off within the block written
// under id. off and size must be page aligned. Transient failures
// (an ECC burst, a dead-then-revived engine) are retried up to
// ReadRetries times with exponential virtual-time backoff before the
// error surfaces.
func (l *Layer) Read(p *sim.Proc, id BlockID, off, size int) ([]byte, error) {
	h, ok := l.blocks[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	end := l.beginOp(p, "blocklayer/read")
	defer end()
	l.reads.Inc()
	for attempt := 0; ; attempt++ {
		// Re-resolve per attempt: a static-WL migration may have moved
		// the block between retries, and the retry must follow it.
		if cur, ok := l.blocks[id]; ok {
			h = cur
		}
		data, err := l.dev.Read(p, h.Channel, h.LBN, off, size)
		if err == nil {
			l.recordSuccess(h.Channel)
			return data, nil
		}
		l.recordError(h.Channel, err)
		if attempt >= l.cfg.ReadRetries || !retryable(err) {
			return nil, err
		}
		l.readRetries.Inc()
		backoff := l.cfg.RetryBackoff << uint(attempt)
		t := l.env.Tracer()
		span := t.Begin(l.env.Now(), p.Span(), "blocklayer/read-retry", trace.PhaseFault)
		p.Wait(backoff)
		t.End(l.env.Now(), span)
	}
}

// retryable reports whether a read failure might clear on retry: a
// random ECC burst redraws per read, and a dead engine may be revived.
// Addressing and state errors are permanent.
func retryable(err error) bool {
	return errors.Is(err, flashchan.ErrUncorrectable) || errors.Is(err, flashchan.ErrChannelDead)
}

// Lookup returns the handle for id.
func (l *Layer) Lookup(id BlockID) (Handle, bool) {
	h, ok := l.blocks[id]
	return h, ok
}

// IDs returns every live block ID in ascending order.
func (l *Layer) IDs() []BlockID {
	ids := make([]BlockID, 0, len(l.blocks))
	for id := range l.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MaxID returns the highest live block ID, if any. ID allocators
// resume past it after a remount so recovered blocks are never
// re-addressed.
func (l *Layer) MaxID() (BlockID, bool) {
	var max BlockID
	ok := false
	for id := range l.blocks {
		if !ok || id > max {
			max = id
			ok = true
		}
	}
	return max, ok
}

// Free releases the block written under id. The space returns to the
// channel's dirty pool; the background eraser reclaims it during idle
// time (or the next write to the channel pays an inline erase).
func (l *Layer) Free(p *sim.Proc, id BlockID) error {
	h, ok := l.blocks[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	delete(l.blocks, id)
	cs := l.chans[h.Channel]
	cs.dirty = append(cs.dirty, h.LBN)
	cs.work.Fire()
	return nil
}

// FreeBlocks returns (erased, dirty) block counts for a channel.
func (l *Layer) FreeBlocks(c int) (erased, dirty int) {
	return len(l.chans[c].erased), len(l.chans[c].dirty)
}

// Stats returns (writes, reads, inline erases, background erases).
func (l *Layer) Stats() (writes, reads, inline, background int64) {
	return l.writes.Value(), l.reads.Value(), l.inlineErases.Value(), l.backgroundErases.Value()
}

// ScrubStats returns (blocks scrubbed so far, suspect blocks still
// awaiting their eager re-erase).
func (l *Layer) ScrubStats() (scrubbed int64, pending int) {
	for _, cs := range l.chans {
		pending += cs.scrubBacklog
	}
	return l.scrubs.Value(), pending
}

// HealthStats returns aggregate degraded-mode counters: quarantine
// events across all channels, read retries performed, and writes
// placed away from their policy channel because it was unhealthy.
func (l *Layer) HealthStats() (quarantines, readRetries, placementSkips int64) {
	for _, cs := range l.chans {
		quarantines += cs.quarantines.Value()
	}
	return quarantines, l.readRetries.Value(), l.placementSkips.Value()
}

// wearSpread returns the widest erase-count spread (max minus min)
// across the device's channels — the quantity static wear leveling
// drives back under WearSpreadThreshold. Park-free (gauge-safe).
func (l *Layer) wearSpread() int {
	spread := 0
	for c := range l.chans {
		ws := l.dev.Channel(c).Wear()
		if s := ws.MaxErase - ws.MinErase; s > spread {
			spread = s
		}
	}
	return spread
}

// WearLevelStats returns (static wear-leveling migrations performed,
// current worst per-channel erase-count spread).
func (l *Layer) WearLevelStats() (migrations int64, spread int) {
	return l.wlMigrations.Value(), l.wearSpread()
}

// RegisterMetrics adopts the layer's counters into r and installs
// free-space and health gauges. Per-channel quarantine counters keep
// their channel identity via a chan label; the gauges reduce channel
// state to the numbers the availability experiments watch (erased
// blocks ready for writes, blocks awaiting erase, channels currently
// inside a quarantine window). Gauge callbacks read in-memory slices
// only — they must stay park-free, per the GaugeFunc contract.
func (l *Layer) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	r.RegisterCounter("blocklayer_writes_total", &l.writes, labels...)
	r.RegisterCounter("blocklayer_reads_total", &l.reads, labels...)
	r.RegisterCounter("blocklayer_inline_erases_total", &l.inlineErases, labels...)
	r.RegisterCounter("blocklayer_background_erases_total", &l.backgroundErases, labels...)
	r.RegisterCounter("blocklayer_read_retries_total", &l.readRetries, labels...)
	r.RegisterCounter("blocklayer_placement_skips_total", &l.placementSkips, labels...)
	r.RegisterCounter("blocklayer_scrubbed_blocks_total", &l.scrubs, labels...)
	r.RegisterCounter("blocklayer_static_wl_migrations_total", &l.wlMigrations, labels...)
	r.GaugeFunc("blocklayer_wear_spread", func() float64 {
		return float64(l.wearSpread())
	}, labels...)
	for c, cs := range l.chans {
		r.RegisterCounter("blocklayer_quarantines_total", &cs.quarantines,
			append(append([]metrics.Label(nil), labels...), metrics.L("chan", fmt.Sprint(c)))...)
	}
	r.GaugeFunc("blocklayer_free_blocks", func() float64 {
		var n int
		for _, cs := range l.chans {
			n += len(cs.erased)
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("blocklayer_dirty_blocks", func() float64 {
		var n int
		for _, cs := range l.chans {
			n += len(cs.dirty)
		}
		return float64(n)
	}, labels...)
	r.GaugeFunc("blocklayer_quarantined_channels", func() float64 {
		var n int
		now := l.env.Now()
		for _, cs := range l.chans {
			if now < cs.quarantinedUntil {
				n++
			}
		}
		return float64(n)
	}, labels...)
}

// eraseLoop is the per-channel idle-time eraser: it drains the dirty
// pool whenever the channel engine is idle, deferring to foreground
// traffic otherwise. With an EraseGate configured, each erase first
// acquires the replica's erase window (or the forced hatch); with
// StaticWL, idle time with a wide wear spread triggers cold-block
// migrations whose freed media re-enters this same loop.
func (l *Layer) eraseLoop(p *sim.Proc, c int) {
	cs := l.chans[c]
	for {
		if len(cs.dirty) == 0 || !l.dev.Channel(c).Alive() {
			if l.maybeStaticWL(p, c) {
				continue // the migration queued the cold block for erase
			}
			// Nothing to do — or the engine is offline and a timer poll
			// would keep the event queue alive forever on a channel
			// that never comes back. Park until more blocks are freed
			// or a served command proves the engine revived
			// (recordSuccess fires the signal).
			if !cs.work.Fired() {
				p.Await(cs.work)
			}
			cs.work = sim.NewSignal(l.env)
			continue
		}
		// A scrub backlog (crash-suspect blocks queued by Mount) is
		// drained eagerly — suspect media must not sit in the pool
		// waiting for an idle window.
		scrub := cs.scrubBacklog > 0
		if !scrub && !l.dev.Channel(c).Idle() {
			p.Wait(l.cfg.IdlePollInterval)
			continue
		}
		release := func() {}
		if l.cfg.EraseGate != nil {
			release, _ = l.cfg.EraseGate.AcquireErase(p, len(cs.erased))
			// The grant may have parked this eraser for a while:
			// re-validate the work before touching the pools.
			if len(cs.dirty) == 0 || !l.dev.Channel(c).Alive() {
				release()
				continue
			}
			scrub = cs.scrubBacklog > 0
		}
		lbn := cs.dirty[len(cs.dirty)-1]
		cs.dirty = cs.dirty[:len(cs.dirty)-1]
		err := l.dev.Erase(p, c, lbn)
		release()
		if err != nil {
			if errors.Is(err, flashchan.ErrChannelDead) || errors.Is(err, flashchan.ErrPowerLoss) {
				// Killed between the aliveness check and the command
				// (or power died mid-erase): keep the backlog for
				// after revival or remount.
				cs.dirty = append(cs.dirty, lbn)
				l.recordError(c, err)
				continue
			}
			// Worn out or spare-exhausted; dropped from circulation —
			// a dropped suspect block shrinks the scrub backlog too.
			if scrub {
				cs.scrubBacklog--
			}
			continue
		}
		cs.erased = append(cs.erased, lbn)
		if scrub {
			cs.scrubBacklog--
			l.scrubs.Inc()
		} else {
			l.backgroundErases.Inc()
		}
	}
}

// maybeStaticWL performs at most one static wear-leveling migration
// on channel c: when the channel's erase-count spread exceeds the
// threshold, the coldest mapped block (deterministically: sorted ID
// order, lowest mean physical erase count, lowest ID breaking ties)
// is rewritten to a fresh block and its cold media queued for erase —
// recovered blocks that sat unmodified since mount finally rejoin
// circulation. Runs only on an idle, live channel with migration
// credits (earned by foreground writes) and at least two pre-erased
// blocks, so it never starves the foreground write path and never
// keeps an idle simulation alive. Reports whether it migrated.
func (l *Layer) maybeStaticWL(p *sim.Proc, c int) bool {
	if !l.cfg.StaticWL {
		return false
	}
	cs := l.chans[c]
	ch := l.dev.Channel(c)
	if cs.wlCredits <= 0 || len(cs.erased) < 2 || !ch.Alive() || !ch.Idle() {
		return false
	}
	ws := ch.Wear()
	if ws.MaxErase-ws.MinErase < l.cfg.WearSpreadThreshold {
		return false
	}
	victim, wear := BlockID(0), -1
	for _, id := range l.IDs() {
		h := l.blocks[id]
		if h.Channel != c {
			continue
		}
		w, ok := ch.LBNWear(h.LBN)
		if !ok {
			continue
		}
		if wear < 0 || w < wear {
			victim, wear = id, w
		}
	}
	// Only data parked on genuinely cold media is worth moving: the
	// victim must sit in the bottom half of the spread, or migration
	// would churn blocks the dynamic wear heap already rotates.
	if wear < 0 || wear > ws.MinErase+l.cfg.WearSpreadThreshold/2 {
		return false
	}
	h := l.blocks[victim]
	end := l.beginOp(p, "blocklayer/static-wl")
	defer end()
	data, err := l.dev.Read(p, c, h.LBN, 0, l.BlockSize())
	if err != nil {
		l.recordError(c, err)
		return false
	}
	dst := cs.erased[len(cs.erased)-1]
	cs.erased = cs.erased[:len(cs.erased)-1]
	if l.poolLow != nil {
		l.poolLow(len(cs.erased))
	}
	if err := l.dev.WriteTagged(p, c, dst, data, flashchan.WriteID{Lo: uint64(victim)}); err != nil {
		cs.dirty = append(cs.dirty, dst)
		cs.work.Fire()
		l.recordError(c, err)
		return false
	}
	// The new copy supersedes the old by write sequence, so a crash
	// between this program and the erase below recovers the fresh copy
	// and stale-discards the cold one — the oracle's remount path
	// already resolves exactly this shape.
	l.blocks[victim] = Handle{Channel: c, LBN: dst}
	cs.dirty = append(cs.dirty, h.LBN)
	cs.wlCredits--
	l.wlMigrations.Inc()
	l.recordSuccess(c)
	return true
}
