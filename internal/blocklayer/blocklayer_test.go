package blocklayer

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/core"
	"sdf/internal/sim"
)

// smallDevice returns a 4-channel SDF with tiny blocks; data mode if
// retain is true.
func smallDevice(t *testing.T, env *sim.Env, retain bool) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 8
	cfg.Channel.Nand.PagesPerBlock = 8
	cfg.Channel.Nand.RetainData = retain
	cfg.Channel.SparePerPlane = 2
	d, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, true)
	l := New(env, d, DefaultConfig())
	data := make([]byte, l.BlockSize())
	rand.New(rand.NewSource(1)).Read(data)
	w := env.Go("t", func(p *sim.Proc) {
		h, err := l.Write(p, 42, data)
		if err != nil {
			t.Error(err)
			return
		}
		if h.Channel != 42%4 {
			t.Errorf("channel = %d, want %d", h.Channel, 42%4)
		}
		got, err := l.Read(p, 42, 0, l.BlockSize())
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("read-back mismatch")
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestConsecutiveIDsRoundRobin(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	defer env.Close()
	for id := BlockID(0); id < 8; id++ {
		if got := l.ChannelOf(id); got != int(id)%4 {
			t.Fatalf("ChannelOf(%d) = %d, want %d", id, got, id%4)
		}
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 7, nil); err != nil {
			t.Error(err)
		}
		if _, err := l.Write(p, 7, nil); !errors.Is(err, ErrDuplicateID) {
			t.Errorf("duplicate write: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestUnknownIDErrors(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Read(p, 99, 0, l.PageSize()); !errors.Is(err, ErrUnknownID) {
			t.Errorf("read unknown: %v", err)
		}
		if err := l.Free(p, 99); !errors.Is(err, ErrUnknownID) {
			t.Errorf("free unknown: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestBackgroundEraseAvoidsInlineErase(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	// Give the erasers idle time to prepare the initial pool.
	env.RunUntil(2 * time.Second)
	w := env.Go("t", func(p *sim.Proc) {
		for id := BlockID(0); id < 8; id++ {
			if _, err := l.Write(p, id, nil); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	_, _, inline, background := l.Stats()
	env.Close()
	if inline != 0 {
		t.Fatalf("inline erases = %d, want 0 (pool was pre-erased)", inline)
	}
	if background == 0 {
		t.Fatal("background eraser never ran")
	}
}

func TestInlineEraseWithoutBackground(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	cfg := DefaultConfig()
	cfg.BackgroundErase = false
	l := New(env, d, cfg)
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 1, nil); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(w)
	_, _, inline, background := l.Stats()
	env.Close()
	if inline != 1 || background != 0 {
		t.Fatalf("erases inline/background = %d/%d, want 1/0", inline, background)
	}
}

func TestEraseAheadShortensWriteLatency(t *testing.T) {
	// A write into a pre-erased block skips the ~6 ms erase. The
	// difference is visible in single-write latency.
	measure := func(background bool) time.Duration {
		env := sim.NewEnv()
		d := smallDevice(t, env, false)
		cfg := DefaultConfig()
		cfg.BackgroundErase = background
		l := New(env, d, cfg)
		if background {
			env.RunUntil(time.Second) // let the eraser prepare blocks
		}
		var lat time.Duration
		w := env.Go("t", func(p *sim.Proc) {
			start := env.Now()
			if _, err := l.Write(p, 3, nil); err != nil {
				t.Error(err)
			}
			lat = env.Now() - start
		})
		env.RunUntilDone(w)
		env.Close()
		return lat
	}
	withBg := measure(true)
	without := measure(false)
	if without-withBg < 5*time.Millisecond {
		t.Fatalf("erase-ahead saved only %v, want ~6 ms (with=%v, without=%v)",
			without-withBg, withBg, without)
	}
}

func TestFreeAndRecycle(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	blocks := d.BlocksPerChannel()
	w := env.Go("t", func(p *sim.Proc) {
		// Write and free more blocks than one channel holds: IDs all
		// hash to channel 0 (multiples of 4).
		for i := 0; i < 3*blocks; i++ {
			id := BlockID(i * 4)
			if _, err := l.Write(p, id, nil); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if err := l.Free(p, id); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestChannelExhaustion(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	blocks := d.BlocksPerChannel()
	w := env.Go("t", func(p *sim.Proc) {
		var err error
		for i := 0; ; i++ {
			if _, err = l.Write(p, BlockID(i*4), nil); err != nil {
				break
			}
			if i > blocks+1 {
				t.Error("wrote more blocks than the channel holds")
				return
			}
		}
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("exhaustion error = %v, want ErrNoSpace", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestLookup(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		if _, ok := l.Lookup(5); ok {
			t.Error("lookup of unwritten ID succeeded")
		}
		h, err := l.Write(p, 5, nil)
		if err != nil {
			t.Error(err)
			return
		}
		got, ok := l.Lookup(5)
		if !ok || got != h {
			t.Errorf("Lookup = %v/%v, want %v", got, ok, h)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestLeastLoadedPlacementSpreadsWriters(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	cfg := DefaultConfig()
	cfg.Placement = PlacementLeastLoaded
	l := New(env, d, cfg)
	env.RunUntil(time.Second) // pre-erase
	// 4 concurrent writers whose IDs all HASH to channel 0; the
	// least-loaded policy must still use all 4 channels.
	var handles []Handle
	var workers []*sim.Proc
	for i := 0; i < 4; i++ {
		id := BlockID(i * 4) // all ≡ 0 mod 4
		w := env.Go("writer", func(p *sim.Proc) {
			h, err := l.Write(p, id, nil)
			if err != nil {
				t.Error(err)
				return
			}
			handles = append(handles, h)
		})
		workers = append(workers, w)
	}
	waiter := env.Go("wait", func(p *sim.Proc) {
		for _, w := range workers {
			p.Join(w)
		}
	})
	env.RunUntilDone(waiter)
	env.Close()
	channels := make(map[int]bool)
	for _, h := range handles {
		channels[h.Channel] = true
	}
	if len(channels) != 4 {
		t.Fatalf("least-loaded used %d channels, want 4 (handles %v)", len(channels), handles)
	}
}

func TestLeastLoadedFasterThanHashUnderCollisions(t *testing.T) {
	measure := func(policy Placement) time.Duration {
		env := sim.NewEnv()
		d := smallDevice(t, env, false)
		cfg := DefaultConfig()
		cfg.Placement = policy
		l := New(env, d, cfg)
		env.RunUntil(time.Second)
		start := env.Now()
		var workers []*sim.Proc
		for i := 0; i < 4; i++ {
			id := BlockID(i * 4) // colliding hash
			w := env.Go("writer", func(p *sim.Proc) {
				if _, err := l.Write(p, id, nil); err != nil {
					t.Error(err)
				}
			})
			workers = append(workers, w)
		}
		waiter := env.Go("wait", func(p *sim.Proc) {
			for _, w := range workers {
				p.Join(w)
			}
		})
		env.RunUntilDone(waiter)
		elapsed := env.Now() - start
		env.Close()
		return elapsed
	}
	hash := measure(PlacementHash)
	lb := measure(PlacementLeastLoaded)
	// Hash serializes 4 writes on one channel; least-loaded runs them
	// in parallel on 4 channels: ~4x faster.
	if lb*3 > hash {
		t.Fatalf("least-loaded %v not ~4x faster than hash %v", lb, hash)
	}
}

func TestLeastLoadedReadsFollowPlacement(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, true)
	cfg := DefaultConfig()
	cfg.Placement = PlacementLeastLoaded
	l := New(env, d, cfg)
	data := make([]byte, l.BlockSize())
	for i := range data {
		data[i] = byte(i * 7)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 99, data); err != nil {
			t.Error(err)
			return
		}
		got, err := l.Read(p, 99, 0, l.BlockSize())
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read-back under least-loaded placement: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
