package blocklayer

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/core"
	"sdf/internal/sim"
)

// smallDevice returns a 4-channel SDF with tiny blocks; data mode if
// retain is true.
func smallDevice(t *testing.T, env *sim.Env, retain bool) *core.Device {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 8
	cfg.Channel.Nand.PagesPerBlock = 8
	cfg.Channel.Nand.RetainData = retain
	cfg.Channel.SparePerPlane = 2
	d, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, true)
	l := New(env, d, DefaultConfig())
	data := make([]byte, l.BlockSize())
	rand.New(rand.NewSource(1)).Read(data)
	w := env.Go("t", func(p *sim.Proc) {
		h, err := l.Write(p, 42, data)
		if err != nil {
			t.Error(err)
			return
		}
		if h.Channel != 42%4 {
			t.Errorf("channel = %d, want %d", h.Channel, 42%4)
		}
		got, err := l.Read(p, 42, 0, l.BlockSize())
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("read-back mismatch")
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestConsecutiveIDsRoundRobin(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	defer env.Close()
	for id := BlockID(0); id < 8; id++ {
		if got := l.ChannelOf(id); got != int(id)%4 {
			t.Fatalf("ChannelOf(%d) = %d, want %d", id, got, id%4)
		}
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 7, nil); err != nil {
			t.Error(err)
		}
		if _, err := l.Write(p, 7, nil); !errors.Is(err, ErrDuplicateID) {
			t.Errorf("duplicate write: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestUnknownIDErrors(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Read(p, 99, 0, l.PageSize()); !errors.Is(err, ErrUnknownID) {
			t.Errorf("read unknown: %v", err)
		}
		if err := l.Free(p, 99); !errors.Is(err, ErrUnknownID) {
			t.Errorf("free unknown: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestBackgroundEraseAvoidsInlineErase(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	// Give the erasers idle time to prepare the initial pool.
	env.RunUntil(2 * time.Second)
	w := env.Go("t", func(p *sim.Proc) {
		for id := BlockID(0); id < 8; id++ {
			if _, err := l.Write(p, id, nil); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	_, _, inline, background := l.Stats()
	env.Close()
	if inline != 0 {
		t.Fatalf("inline erases = %d, want 0 (pool was pre-erased)", inline)
	}
	if background == 0 {
		t.Fatal("background eraser never ran")
	}
}

func TestInlineEraseWithoutBackground(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	cfg := DefaultConfig()
	cfg.BackgroundErase = false
	l := New(env, d, cfg)
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 1, nil); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(w)
	_, _, inline, background := l.Stats()
	env.Close()
	if inline != 1 || background != 0 {
		t.Fatalf("erases inline/background = %d/%d, want 1/0", inline, background)
	}
}

func TestEraseAheadShortensWriteLatency(t *testing.T) {
	// A write into a pre-erased block skips the ~6 ms erase. The
	// difference is visible in single-write latency.
	measure := func(background bool) time.Duration {
		env := sim.NewEnv()
		d := smallDevice(t, env, false)
		cfg := DefaultConfig()
		cfg.BackgroundErase = background
		l := New(env, d, cfg)
		if background {
			env.RunUntil(time.Second) // let the eraser prepare blocks
		}
		var lat time.Duration
		w := env.Go("t", func(p *sim.Proc) {
			start := env.Now()
			if _, err := l.Write(p, 3, nil); err != nil {
				t.Error(err)
			}
			lat = env.Now() - start
		})
		env.RunUntilDone(w)
		env.Close()
		return lat
	}
	withBg := measure(true)
	without := measure(false)
	if without-withBg < 5*time.Millisecond {
		t.Fatalf("erase-ahead saved only %v, want ~6 ms (with=%v, without=%v)",
			without-withBg, withBg, without)
	}
}

func TestFreeAndRecycle(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	blocks := d.BlocksPerChannel()
	w := env.Go("t", func(p *sim.Proc) {
		// Write and free more blocks than one channel holds: IDs all
		// hash to channel 0 (multiples of 4).
		for i := 0; i < 3*blocks; i++ {
			id := BlockID(i * 4)
			if _, err := l.Write(p, id, nil); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			if err := l.Free(p, id); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestChannelExhaustion(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	blocks := d.BlocksPerChannel()
	w := env.Go("t", func(p *sim.Proc) {
		var err error
		for i := 0; ; i++ {
			if _, err = l.Write(p, BlockID(i*4), nil); err != nil {
				break
			}
			if i > blocks+1 {
				t.Error("wrote more blocks than the channel holds")
				return
			}
		}
		if !errors.Is(err, ErrNoSpace) {
			t.Errorf("exhaustion error = %v, want ErrNoSpace", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestLookup(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	w := env.Go("t", func(p *sim.Proc) {
		if _, ok := l.Lookup(5); ok {
			t.Error("lookup of unwritten ID succeeded")
		}
		h, err := l.Write(p, 5, nil)
		if err != nil {
			t.Error(err)
			return
		}
		got, ok := l.Lookup(5)
		if !ok || got != h {
			t.Errorf("Lookup = %v/%v, want %v", got, ok, h)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestQuarantineWindowExcludesWrites(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	cfg := DefaultConfig()
	cfg.QuarantineWindow = 10 * time.Millisecond
	cfg.ReadRetries = -1 // surface the failure fast; quarantine still fires
	l := New(env, d, cfg)
	env.RunUntil(2 * time.Second) // pre-erase
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 2, nil); err != nil {
			t.Error(err)
			return
		}
		d.Channel(2).Kill()
		if _, err := l.Read(p, 2, 0, l.PageSize()); err == nil {
			t.Error("read on dead channel succeeded")
		}
		d.Channel(2).Revive()
		// Still inside the quarantine window: the hash channel (2) is
		// skipped even though the engine is back.
		h, err := l.Write(p, 6, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if h.Channel == 2 {
			t.Error("write placed on quarantined channel")
		}
		p.Wait(cfg.QuarantineWindow)
		h2, err := l.Write(p, 10, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if h2.Channel != 2 {
			t.Errorf("write after window placed on channel %d, want 2", h2.Channel)
		}
	})
	env.RunUntilDone(w)
	env.Close()
	q, _, skips := l.HealthStats()
	if q == 0 || skips == 0 {
		t.Fatalf("HealthStats quarantines=%d placementSkips=%d, want both > 0", q, skips)
	}
}

func TestReadRetryRecoversRevivedChannel(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, true)
	l := New(env, d, DefaultConfig())
	data := make([]byte, l.BlockSize())
	rand.New(rand.NewSource(3)).Read(data)
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 1, data); err != nil {
			t.Error(err)
			return
		}
		d.Channel(1).Kill()
		// Revive mid-backoff: the first retry (after the default 50 µs)
		// must find the engine back and serve the data.
		env.Schedule(40*time.Microsecond, func() { d.Channel(1).Revive() })
		got, err := l.Read(p, 1, 0, l.PageSize())
		if err != nil {
			t.Errorf("read with retry: %v", err)
			return
		}
		if !bytes.Equal(got, data[:l.PageSize()]) {
			t.Error("read-back mismatch after revival")
		}
	})
	env.RunUntilDone(w)
	env.Close()
	_, retries, _ := l.HealthStats()
	if retries == 0 {
		t.Fatal("no read retries recorded")
	}
}

func TestEraserSurvivesDeadChannel(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	l := New(env, d, DefaultConfig())
	env.RunUntil(2 * time.Second) // pre-erase
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 0, nil); err != nil {
			t.Error(err)
			return
		}
		d.Channel(0).Kill()
		if err := l.Free(p, 0); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(w)
	// The freed block cannot be erased while the engine is dead. The
	// eraser must park rather than poll, or this Run would never
	// return; the backlog must survive, not be dropped.
	env.Run()
	if _, dirty := l.FreeBlocks(0); dirty != 1 {
		t.Fatalf("dirty pool = %d while dead, want 1 (block dropped?)", dirty)
	}
	d.Channel(0).Revive()
	w2 := env.Go("t2", func(p *sim.Proc) {
		// A served command on the revived channel is what wakes the
		// parked eraser.
		if _, err := l.Write(p, 4, nil); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(w2)
	env.Run() // idle time for the eraser to drain the backlog
	if _, dirty := l.FreeBlocks(0); dirty != 0 {
		t.Fatalf("dirty pool = %d after revival, want 0", dirty)
	}
	env.Close()
}

func TestLeastLoadedPlacementSpreadsWriters(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, false)
	cfg := DefaultConfig()
	cfg.Placement = PlacementLeastLoaded
	l := New(env, d, cfg)
	env.RunUntil(time.Second) // pre-erase
	// 4 concurrent writers whose IDs all HASH to channel 0; the
	// least-loaded policy must still use all 4 channels.
	var handles []Handle
	var workers []*sim.Proc
	for i := 0; i < 4; i++ {
		id := BlockID(i * 4) // all ≡ 0 mod 4
		w := env.Go("writer", func(p *sim.Proc) {
			h, err := l.Write(p, id, nil)
			if err != nil {
				t.Error(err)
				return
			}
			handles = append(handles, h)
		})
		workers = append(workers, w)
	}
	waiter := env.Go("wait", func(p *sim.Proc) {
		for _, w := range workers {
			p.Join(w)
		}
	})
	env.RunUntilDone(waiter)
	env.Close()
	channels := make(map[int]bool)
	for _, h := range handles {
		channels[h.Channel] = true
	}
	if len(channels) != 4 {
		t.Fatalf("least-loaded used %d channels, want 4 (handles %v)", len(channels), handles)
	}
}

func TestLeastLoadedFasterThanHashUnderCollisions(t *testing.T) {
	measure := func(policy Placement) time.Duration {
		env := sim.NewEnv()
		d := smallDevice(t, env, false)
		cfg := DefaultConfig()
		cfg.Placement = policy
		l := New(env, d, cfg)
		env.RunUntil(time.Second)
		start := env.Now()
		var workers []*sim.Proc
		for i := 0; i < 4; i++ {
			id := BlockID(i * 4) // colliding hash
			w := env.Go("writer", func(p *sim.Proc) {
				if _, err := l.Write(p, id, nil); err != nil {
					t.Error(err)
				}
			})
			workers = append(workers, w)
		}
		waiter := env.Go("wait", func(p *sim.Proc) {
			for _, w := range workers {
				p.Join(w)
			}
		})
		env.RunUntilDone(waiter)
		elapsed := env.Now() - start
		env.Close()
		return elapsed
	}
	hash := measure(PlacementHash)
	lb := measure(PlacementLeastLoaded)
	// Hash serializes 4 writes on one channel; least-loaded runs them
	// in parallel on 4 channels: ~4x faster.
	if lb*3 > hash {
		t.Fatalf("least-loaded %v not ~4x faster than hash %v", lb, hash)
	}
}

func TestLeastLoadedReadsFollowPlacement(t *testing.T) {
	env := sim.NewEnv()
	d := smallDevice(t, env, true)
	cfg := DefaultConfig()
	cfg.Placement = PlacementLeastLoaded
	l := New(env, d, cfg)
	data := make([]byte, l.BlockSize())
	for i := range data {
		data[i] = byte(i * 7)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if _, err := l.Write(p, 99, data); err != nil {
			t.Error(err)
			return
		}
		got, err := l.Read(p, 99, 0, l.BlockSize())
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("read-back under least-loaded placement: %v", err)
		}
	})
	env.RunUntilDone(w)
	env.Close()
}
