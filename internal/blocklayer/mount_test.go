package blocklayer

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/core"
	"sdf/internal/sim"
)

// smallCoreConfig mirrors smallDevice's geometry, for core.Mount.
func smallCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Channels = 4
	cfg.Channel.Nand.BlocksPerPlane = 8
	cfg.Channel.Nand.PagesPerBlock = 8
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.SparePerPlane = 2
	return cfg
}

// TestMountRecoversTaggedBlocks crashes a device mid-write and
// remounts it through the block layer: completed blocks come back
// addressable under their IDs with intact payloads, the in-flight
// block is discarded as torn, and the layer serves new writes with
// fresh IDs past the recovered ones.
func TestMountRecoversTaggedBlocks(t *testing.T) {
	env := sim.NewEnv()
	dev := smallDevice(t, env, true)
	l := New(env, dev, DefaultConfig())
	rng := rand.New(rand.NewSource(6))
	vals := make(map[BlockID][]byte)
	w := env.Go("w", func(p *sim.Proc) {
		for id := BlockID(0); id < 3; id++ {
			data := make([]byte, l.BlockSize())
			rng.Read(data)
			h, err := l.Write(p, id, data)
			if err != nil {
				t.Error(err)
				return
			}
			if h.Channel != int(id)%dev.Channels() {
				t.Errorf("id %d on channel %d", id, h.Channel)
			}
			vals[id] = data
		}
	})
	env.RunUntilDone(w)
	// One more write, torn by a power cut mid-stream.
	torn := make([]byte, l.BlockSize())
	rng.Read(torn)
	env.Go("torn", func(p *sim.Proc) {
		l.Write(p, 3, torn)
	})
	env.Schedule(10*time.Millisecond, dev.PowerLoss)
	env.Run()
	state := dev.State()
	env.Close()

	env2 := sim.NewEnv()
	defer env2.Close()
	mounted, err := core.Mount(env2, smallCoreConfig(), state)
	if err != nil {
		t.Fatal(err)
	}
	var l2 *Layer
	var st MountStats
	boot := env2.Go("mount", func(p *sim.Proc) {
		layer, mst, err := Mount(p, env2, mounted, DefaultConfig())
		if err != nil {
			t.Error(err)
			return
		}
		l2, st = layer, mst
	})
	env2.RunUntilDone(boot)
	if l2 == nil {
		t.Fatal("mount failed")
	}
	if st.RecoveredBlocks != 3 {
		t.Fatalf("recovered %d blocks, want 3", st.RecoveredBlocks)
	}
	if st.TornDiscarded == 0 {
		t.Fatal("the in-flight write was not discarded as torn")
	}
	if st.QuarantinedChannels == 0 {
		t.Fatal("crash damage did not quarantine the channel")
	}
	if max, ok := l2.MaxID(); !ok || max != 2 {
		t.Fatalf("MaxID = %d,%v, want 2,true", max, ok)
	}
	r := env2.Go("r", func(p *sim.Proc) {
		for id, want := range vals {
			got, err := l2.Read(p, id, 0, l2.BlockSize())
			if err != nil {
				t.Errorf("read id %d after remount: %v", id, err)
				return
			}
			if !bytes.Equal(got, want) {
				t.Errorf("id %d read wrong bytes after remount", id)
			}
		}
		if _, ok := l2.Lookup(3); ok {
			t.Error("torn write came back addressable")
		}
		// The layer must keep serving: a fresh write past the
		// recovered IDs round-trips.
		data := make([]byte, l2.BlockSize())
		rng.Read(data)
		if _, err := l2.Write(p, 4, data); err != nil {
			t.Errorf("write after remount: %v", err)
			return
		}
		got, err := l2.Read(p, 4, 0, l2.BlockSize())
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("post-remount write round-trip failed: %v", err)
		}
	})
	env2.RunUntilDone(r)
	env2.Run()
}
