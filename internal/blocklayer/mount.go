// Mount-time recovery of the block layer after power loss.
package blocklayer

import (
	"fmt"

	"sdf/internal/core"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// MountStats summarizes a remount.
type MountStats struct {
	// RecoveredBlocks is how many tagged blocks came back addressable.
	RecoveredBlocks int
	// TornDiscarded counts physical blocks the channel scans dropped
	// as incomplete (torn writes); StaleDiscarded counts superseded
	// generations; UntaggedDiscarded counts complete blocks written
	// without a write ID, which the layer cannot address and frees.
	TornDiscarded     int
	StaleDiscarded    int
	UntaggedDiscarded int
	// PartialErases counts erase pulses the power loss interrupted.
	PartialErases int
	// ScannedBlocks and ProbedPages size the device-wide scan.
	ScannedBlocks int
	ProbedPages   int64
	// QuarantinedChannels is how many channels entered an initial
	// quarantine window because their media held crash damage.
	QuarantinedChannels int
	// CheckpointsFound counts channels that mounted from a valid FTL
	// checkpoint; CheckpointHits counts physical blocks those
	// checkpoints vouched for (single-probe validation instead of a
	// full out-of-band walk — DESIGN.md §14).
	CheckpointsFound int
	CheckpointHits   int
	// ScrubQueued is how many crash-suspect blocks (torn writes,
	// partial erases) were queued for an eager background re-erase
	// before rejoining the free pool.
	ScrubQueued int
}

// Mount rebuilds a block layer over a remounted device: it runs every
// channel's recovery scan, readdresses the tagged blocks it reports,
// returns everything else (untagged, torn, stale, and empty blocks)
// to the erase pools, and puts channels whose media shows crash
// damage into an initial quarantine window — suspect blocks must
// survive a fresh erase before they rejoin circulation, and a suspect
// channel must prove itself before taking new writes. The erasers
// start only after the pools are rebuilt.
func Mount(p *sim.Proc, env *sim.Env, dev *core.Device, cfg Config) (*Layer, MountStats, error) {
	l := newLayer(env, dev, cfg)
	var st MountStats
	end := l.beginOp(p, "blocklayer/mount")
	defer end()
	if t := env.Tracer(); t != nil {
		span := t.Begin(env.Now(), p.Span(), "blocklayer/rebuild", trace.PhaseRecovery)
		defer func() { t.End(env.Now(), span) }()
	}
	reports, err := dev.Recover(p)
	if err != nil {
		return nil, st, fmt.Errorf("blocklayer: mount: %w", err)
	}
	for c, rep := range reports {
		cs := l.chans[c]
		st.TornDiscarded += rep.TornBlocks
		st.StaleDiscarded += rep.StaleBlocks
		st.PartialErases += rep.PartialErases
		st.ScannedBlocks += rep.ScannedBlocks
		st.ProbedPages += rep.ProbedPages
		if rep.CheckpointFound {
			st.CheckpointsFound++
		}
		st.CheckpointHits += rep.CheckpointHits
		recovered := make(map[int]bool, len(rep.Recovered))
		for _, rb := range rep.Recovered {
			if !rb.Tagged {
				// Complete but anonymous: nothing can ever read it
				// through this layer, so reclaim the space.
				st.UntaggedDiscarded++
				continue
			}
			id := BlockID(rb.ID.Lo)
			if _, dup := l.blocks[id]; dup {
				// Two channels claiming one ID cannot happen through
				// this layer's write path; keep the first (lowest
				// channel) deterministically and reclaim the other.
				continue
			}
			l.blocks[id] = Handle{Channel: c, LBN: rb.LBN}
			recovered[rb.LBN] = true
			st.RecoveredBlocks++
		}
		for lbn := 0; lbn < dev.BlocksPerChannel(); lbn++ {
			if !recovered[lbn] {
				cs.dirty = append(cs.dirty, lbn)
			}
		}
		if rep.TornBlocks > 0 || rep.PartialErases > 0 {
			l.quarantine(c)
			st.QuarantinedChannels++
			// Torn-block scrubbing: crash-damaged media gets that many
			// eager re-erases — the eraser skips its idle wait until
			// the suspect backlog is scrubbed, so partially-programmed
			// and partially-erased blocks are cleaned before the pool
			// re-enters steady-state circulation.
			suspect := rep.TornBlocks + rep.PartialErases
			if suspect > len(cs.dirty) {
				suspect = len(cs.dirty)
			}
			cs.scrubBacklog = suspect
			st.ScrubQueued += suspect
		}
	}
	l.startErasers()
	return l, st, nil
}
