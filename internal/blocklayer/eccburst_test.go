package blocklayer_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/blocklayer"
	"sdf/internal/core"
	"sdf/internal/fault"
	"sdf/internal/sim"
)

// TestReadRetryUnderECCBurst drives a read into a transient ECC burst
// and pins the degraded-mode counters: the read must retry (not fail
// fast), the repeated failures must quarantine the channel, and once
// the burst lapses the data must come back intact.
func TestReadRetryUnderECCBurst(t *testing.T) {
	env := sim.NewEnv()
	defer env.Close()
	cfg := core.DefaultConfig()
	cfg.Channels = 2
	cfg.Channel.Nand.BlocksPerPlane = 8
	cfg.Channel.Nand.PagesPerBlock = 4
	cfg.Channel.Nand.RetainData = true
	cfg.Channel.SparePerPlane = 2
	cfg.Channel.ECC = true
	dev, err := core.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := blocklayer.DefaultConfig()
	lcfg.ReadRetries = 4
	lcfg.RetryBackoff = 200 * time.Microsecond
	lcfg.QuarantineThreshold = 2
	lcfg.QuarantineWindow = 5 * time.Millisecond
	l := blocklayer.New(env, dev, lcfg)

	data := make([]byte, l.BlockSize())
	rand.New(rand.NewSource(9)).Read(data)
	writer := env.Go("t/write", func(p *sim.Proc) {
		// ID 0 places on channel 0, the burst target.
		if _, err := l.Write(p, 0, data); err != nil {
			t.Error(err)
		}
	})
	env.RunUntilDone(writer)
	// Drain the background erasers so the channel is idle: the read
	// must meet the burst at the media, not queue past it.
	env.Run()

	inj := fault.NewInjector(env)
	fault.AttachDevice(inj, "sdf0", dev)
	// Injection instants are relative to the arm time.
	burstAt := env.Now() + time.Millisecond
	pl := &fault.Plan{Seed: 9, Injections: []fault.Injection{
		{At: time.Millisecond, Kind: fault.ECCBurst, Target: "sdf0/chan0", Rate: 1e-2, Duration: time.Millisecond},
	}}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(pl); err != nil {
		t.Fatal(err)
	}

	reader := env.Go("t/read", func(p *sim.Proc) {
		// Land the read just inside the burst: the first attempts hit
		// the boosted bit-error rate, the later retries outlive it.
		p.Wait(burstAt + 50*time.Microsecond - env.Now())
		got, err := l.Read(p, 0, 0, l.BlockSize())
		if err != nil {
			t.Errorf("read under burst: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("read under burst returned wrong bytes")
		}
	})
	env.RunUntilDone(reader)
	env.Run()

	quarantines, readRetries, _ := l.HealthStats()
	if readRetries < 2 {
		t.Errorf("readRetries = %d, want >= 2 (burst must force retries)", readRetries)
	}
	if quarantines < 1 {
		t.Errorf("quarantines = %d, want >= 1 (consecutive failures must quarantine)", quarantines)
	}
}
