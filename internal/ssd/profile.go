// Package ssd models conventional SSDs — the baselines the paper
// measures SDF against (Intel 320, Huawei Gen3, and a high-end PCIe
// drive; Tables 1 and 4, Figures 1, 8, 10-14).
//
// Unlike SDF, a conventional SSD hides its channels behind a single
// controller: logical addresses are striped across channels in 8 KB
// units, a page-level FTL performs out-of-place writes, background
// garbage collection compacts blocks (consuming the over-provisioned
// space), a DRAM buffer absorbs write bursts, and one channel per
// parity group stores RAID-style parity. All of this is executed
// algorithmically against the same NAND timing model used by the SDF
// channels, so bandwidth loss and latency variance emerge from the
// event timeline rather than from closed-form formulas.
package ssd

import (
	"time"

	"sdf/internal/hostif"
	"sdf/internal/nand"
	"sdf/internal/sim"
)

// InterfaceKind selects the host link.
type InterfaceKind int

// Host link kinds.
const (
	SATA InterfaceKind = iota
	PCIe
)

// Profile describes one SSD model. Controller costs are calibrated so
// the simulated devices reproduce the measured bandwidths of Table 1
// (see EXPERIMENTS.md for the fit).
type Profile struct {
	Name      string
	Interface InterfaceKind

	Channels int
	Chips    int // chips per channel
	Nand     nand.Params

	BusRate     float64       // per-channel bus, bytes/s
	BusOverhead time.Duration // per page transaction

	// StripePages is the striping unit in pages (1 = 8 KB, the unit
	// used by the Huawei Gen3; §3.1).
	StripePages int

	// OverProvision is the fraction of raw data-channel capacity
	// reserved for garbage collection.
	OverProvision float64

	// ParityRatio N means every N data channels are protected by one
	// parity channel (the paper's ~10% parity reservation; §2.2).
	// Zero disables parity.
	ParityRatio int

	// BufferBytes is the battery-backed DRAM write buffer (1 GB on the
	// Huawei Gen3; §3.2). Zero means write-through.
	BufferBytes int64

	// Controller pipeline costs (single FTL engine, serialized):
	// per request, per page read, per page write (flush), and per
	// page ingest into the DRAM buffer.
	ReqProc       time.Duration
	ReadPageProc  time.Duration
	WritePageProc time.Duration
	IngestProc    time.Duration

	// GCLowWater starts background GC when a plane's free-block count
	// drops to it; host allocation stalls at GCReserve.
	GCLowWater int
	GCReserve  int

	// StaticWL enables background static wear leveling (conventional
	// drives have it; SDF deliberately does not; §2.2).
	StaticWL bool
	// StaticWLSpread is the erase-count imbalance that triggers a
	// migration (default 16).
	StaticWLSpread int

	Stack hostif.StackParams

	// RetainData stores payloads (functional tests only).
	RetainData bool

	Seed int64
}

// Intel320 is the paper's low-end drive: SATA 2.0, 10 channels, 40
// planes, 300/300 MB/s raw, measured 219/153 MB/s at 20% OP (Table 1).
func Intel320(overProvision float64) Profile {
	n := nand.MLC25nm()
	n.TProg = 1090 * time.Microsecond // 30 MB/s raw write per channel
	n.BlocksPerPlane = 128
	return Profile{
		Name:          "Intel 320",
		Interface:     SATA,
		Channels:      10,
		Chips:         2,
		Nand:          n,
		BusRate:       30e6, // 300 MB/s raw read over 10 channels
		BusOverhead:   10 * time.Microsecond,
		StripePages:   1,
		OverProvision: overProvision,
		ParityRatio:   9, // 1 of 10 channels stores parity
		BufferBytes:   32 << 20,
		ReqProc:       14 * time.Microsecond,
		ReadPageProc:  34 * time.Microsecond,
		WritePageProc: 48 * time.Microsecond,
		IngestProc:    2 * time.Microsecond,
		GCLowWater:    3,
		GCReserve:     1,
		StaticWL:      true,
		Stack:         hostif.KernelStack(),
	}
}

// HuaweiGen3 is the paper's mid-range drive and SDF's direct
// predecessor: same channel count, NAND, and FPGA hardware as SDF
// (Table 3) but a conventional single-controller architecture.
// Raw 1600/950 MB/s, measured 1200/460 MB/s at 25% OP (Table 1).
func HuaweiGen3(overProvision float64) Profile {
	n := nand.MLC25nm()
	n.BlocksPerPlane = 128
	return Profile{
		Name:          "Huawei Gen3",
		Interface:     PCIe,
		Channels:      44,
		Chips:         2,
		Nand:          n,
		BusRate:       40e6,
		BusOverhead:   10 * time.Microsecond,
		StripePages:   1,
		OverProvision: overProvision,
		ParityRatio:   10, // 44 channels: 4 parity
		BufferBytes:   1 << 30,
		ReqProc:       2 * time.Microsecond,
		ReadPageProc:  7200 * time.Nanosecond,
		WritePageProc: 15 * time.Microsecond,
		IngestProc:    1 * time.Microsecond,
		GCLowWater:    3,
		GCReserve:     1,
		StaticWL:      true,
		Stack:         hostif.KernelStack(),
	}
}

// HighEnd is the paper's high-end drive (Memblaze Q520 class): PCIe,
// 32 channels with 16 planes each, 34 nm MLC. Raw 1600/1500 MB/s,
// measured 1300/620 MB/s at 20% OP (Table 1).
func HighEnd(overProvision float64) Profile {
	n := nand.MLC25nm()
	n.Planes = 4
	n.TProg = 2800 * time.Microsecond // slower 34 nm MLC program
	n.TRead = 50 * time.Microsecond
	n.BlocksPerPlane = 64
	return Profile{
		Name:          "High-end",
		Interface:     PCIe,
		Channels:      32,
		Chips:         4, // 4 chips x 4 planes = 16 planes per channel
		Nand:          n,
		BusRate:       50e6, // 1600 MB/s raw read over 32 channels
		BusOverhead:   10 * time.Microsecond,
		StripePages:   1,
		OverProvision: overProvision,
		ParityRatio:   15, // 32 channels: 2 parity
		BufferBytes:   512 << 20,
		ReqProc:       2 * time.Microsecond,
		ReadPageProc:  6300 * time.Nanosecond,
		WritePageProc: 12 * time.Microsecond,
		IngestProc:    1 * time.Microsecond,
		GCLowWater:    3,
		GCReserve:     1,
		StaticWL:      true,
		Stack:         hostif.KernelStack(),
	}
}

// ScaleBlocks returns a copy of the profile with n erase blocks per
// plane, shrinking the device so experiments that must fill it (GC
// steady state, near-full latency traces) stay fast. Bandwidth
// characteristics are unchanged.
func (p Profile) ScaleBlocks(n int) Profile {
	p.Nand.BlocksPerPlane = n
	return p
}

// RawBytes returns raw capacity across all channels (including parity
// channels).
func (p Profile) RawBytes() int64 {
	return p.Nand.ChipBytes() * int64(p.Chips) * int64(p.Channels)
}

// newInterface builds the profile's host link on env.
func (p Profile) newInterface(env *sim.Env) *hostif.Interface {
	if p.Interface == SATA {
		return hostif.SATA2(env)
	}
	return hostif.PCIe11x8(env)
}
