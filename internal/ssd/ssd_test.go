package ssd

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"sdf/internal/metrics"
	"sdf/internal/sim"
)

// seqBandwidth measures sequential throughput in MB/s with requests of
// reqSize issued by k concurrent workers (modelling the paper's
// deep-queue microbenchmark), after warming up.
func seqBandwidth(t *testing.T, prof Profile, write bool, reqSize int64, k int) float64 {
	t.Helper()
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if !write {
		if err := s.WarmFill(0.9); err != nil {
			t.Fatal(err)
		}
	}
	const warmup = 500 * time.Millisecond
	deadline := 4 * time.Second
	meter := metrics.NewMeter(warmup)
	span := s.Capacity() / int64(k) / reqSize * reqSize
	if span < reqSize {
		t.Fatalf("device too small for %d workers", k)
	}
	for w := 0; w < k; w++ {
		base := int64(w) * span
		env.Go("worker", func(p *sim.Proc) {
			off := base
			for env.Now() < deadline {
				start := env.Now()
				if write {
					err = s.Write(p, off, reqSize)
				} else {
					err = s.Read(p, off, reqSize)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if start >= warmup {
					meter.Add(reqSize)
				}
				off += reqSize
				if off+reqSize > base+span {
					off = base
				}
			}
		})
	}
	env.RunUntil(deadline)
	mbps := meter.Rate(deadline) / 1e6
	env.Close()
	return mbps
}

func TestTable1Intel320Read(t *testing.T) {
	prof := Intel320(0.20).ScaleBlocks(24)
	mbps := seqBandwidth(t, prof, false, 2<<20, 8)
	// Paper Table 1: 219 MB/s measured (73% of 300 raw).
	if mbps < 190 || mbps < 195 || mbps > 245 {
		t.Fatalf("Intel 320 seq read %.0f MB/s, want ~219", mbps)
	}
}

func TestTable1Intel320Write(t *testing.T) {
	prof := Intel320(0.20).ScaleBlocks(24)
	mbps := seqBandwidth(t, prof, true, 2<<20, 8)
	// Paper Table 1: 153 MB/s measured (51% of 300 raw).
	if mbps < 125 || mbps > 180 {
		t.Fatalf("Intel 320 seq write %.0f MB/s, want ~153", mbps)
	}
}

func TestTable1HuaweiGen3Read(t *testing.T) {
	prof := HuaweiGen3(0.25).ScaleBlocks(16)
	mbps := seqBandwidth(t, prof, false, 2<<20, 16)
	// Paper Table 1: 1200 MB/s measured (75% of 1600 raw).
	if mbps < 1050 || mbps > 1350 {
		t.Fatalf("Huawei Gen3 seq read %.0f MB/s, want ~1200", mbps)
	}
}

func TestTable1HuaweiGen3Write(t *testing.T) {
	prof := HuaweiGen3(0.25).ScaleBlocks(16)
	prof.BufferBytes = 64 << 20 // scale with the shrunken device
	mbps := seqBandwidth(t, prof, true, 2<<20, 16)
	// Paper Table 1: 460 MB/s measured (48% of 950 raw).
	if mbps < 390 || mbps > 530 {
		t.Fatalf("Huawei Gen3 seq write %.0f MB/s, want ~460", mbps)
	}
}

func TestTable1HighEndRead(t *testing.T) {
	prof := HighEnd(0.20).ScaleBlocks(12)
	mbps := seqBandwidth(t, prof, false, 2<<20, 16)
	// Paper Table 1: 1300 MB/s measured (81% of 1600 raw).
	if mbps < 1130 || mbps > 1470 {
		t.Fatalf("High-end seq read %.0f MB/s, want ~1300", mbps)
	}
}

func TestTable1HighEndWrite(t *testing.T) {
	prof := HighEnd(0.20).ScaleBlocks(12)
	prof.BufferBytes = 64 << 20 // scale with the shrunken device
	mbps := seqBandwidth(t, prof, true, 2<<20, 16)
	// Paper Table 1: 620 MB/s measured (41% of 1500 raw).
	if mbps < 520 || mbps > 720 {
		t.Fatalf("High-end seq write %.0f MB/s, want ~620", mbps)
	}
}

func TestCapacityAccounting(t *testing.T) {
	noOP := Intel320(0).ScaleBlocks(32)
	withOP := Intel320(0.25).ScaleBlocks(32)
	env := sim.NewEnv()
	a, err := New(env, noOP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(env, withOP)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if a.Capacity() <= b.Capacity() {
		t.Fatalf("capacity with OP (%d) >= without (%d)", b.Capacity(), a.Capacity())
	}
	// Parity (1 of 10 channels) plus hidden reserve: usable well below raw.
	if frac := float64(a.Capacity()) / float64(a.RawCapacity()); frac > 0.90 {
		t.Fatalf("0%%-OP usable fraction %.2f; parity+reserve should cap it below 0.90", frac)
	}
}

// randomWriteThroughput measures steady-state 4 KB random write
// throughput (MB/s) on a pre-filled device — the Figure 1 experiment.
func randomWriteThroughput(t *testing.T, prof Profile, seed int64) float64 {
	t.Helper()
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmFillRandom(1.0, seed); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	const warmup = 5 * time.Second
	deadline := 8 * time.Second
	meter := metrics.NewMeter(warmup)
	slots := s.Capacity() / 4096
	for w := 0; w < 32; w++ {
		env.Go("writer", func(p *sim.Proc) {
			for env.Now() < deadline {
				start := env.Now()
				off := rng.Int63n(slots) * 4096
				if err := s.Write(p, off, 4096); err != nil {
					t.Error(err)
					return
				}
				if start >= warmup {
					meter.Add(4096)
				}
			}
		})
	}
	env.RunUntil(deadline)
	mbps := meter.Rate(deadline) / 1e6
	env.Close()
	return mbps
}

func TestFigure1OverProvisioningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long steady-state GC run")
	}
	// Figure 1: random-write throughput grows with over-provisioning,
	// steeply at low OP (>400% from 0% to 25%, +21% from 7% to 25%).
	var results []float64
	for _, op := range []float64{0.01, 0.07, 0.25, 0.50} {
		prof := Intel320(op).ScaleBlocks(64)
		prof.BufferBytes = 0 // sustained rate: buffer only hides the ramp
		results = append(results, randomWriteThroughput(t, prof, 42))
	}
	for i := 1; i < len(results); i++ {
		if results[i] <= results[i-1] {
			t.Fatalf("throughput not monotone in OP: %v", results)
		}
	}
	if ratio := results[2] / results[0]; ratio < 3 {
		t.Fatalf("25%%/1%% OP ratio %.1f, want > 3 (paper: >4x)", ratio)
	}
}

func TestWriteAmplificationUnderRandomWrites(t *testing.T) {
	prof := Intel320(0.25).ScaleBlocks(24)
	prof.BufferBytes = 0 // write through so WA is measured directly
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmFillRandom(1.0, 5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	slots := s.Capacity() / int64(s.PageSize())
	writer := env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 3000; i++ {
			off := rng.Int63n(slots) * int64(s.PageSize())
			if err := s.Write(p, off, int64(s.PageSize())); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(writer)
	st := s.Stats()
	env.Close()
	wa := st.WriteAmplification()
	// Greedy GC at 25% OP under uniform random: WA roughly 1.5-4.
	if wa < 1.2 || wa > 5 {
		t.Fatalf("write amplification %.2f, want 1.2-5 at 25%% OP", wa)
	}
	if st.GCMovedPages == 0 {
		t.Fatal("GC never ran despite full device")
	}
}

func TestBufferAbsorbsBurst(t *testing.T) {
	prof := HuaweiGen3(0.25).ScaleBlocks(16)
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	var lat time.Duration
	w := env.Go("w", func(p *sim.Proc) {
		start := env.Now()
		if err := s.Write(p, 0, 8<<20); err != nil {
			t.Error(err)
		}
		lat = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// 8 MB into an empty 1 GB buffer: PCIe (~6 ms) + ingest; far below
	// the ~70 ms flash program time.
	if lat > 15*time.Millisecond {
		t.Fatalf("buffered 8 MB write took %v, want < 15 ms", lat)
	}
}

func TestWriteLatencyVarianceNearFullGen3(t *testing.T) {
	if testing.Short() {
		t.Skip("long near-full trace")
	}
	// Figure 8 (left): sustained 8 MB writes to a nearly full Gen3
	// swing between buffer hits and GC-throttled stalls.
	prof := HuaweiGen3(0.10).ScaleBlocks(16) // "almost full" (Figure 8 setup)
	prof.BufferBytes = 64 << 20              // scaled with the scaled device
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmFillRandom(1.0, 6); err != nil {
		t.Fatal(err)
	}
	var series metrics.Series
	rng := rand.New(rand.NewSource(4))
	slots := s.Capacity() / (8 << 20)
	writer := env.Go("writer", func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			off := rng.Int63n(slots) * (8 << 20)
			start := env.Now()
			if err := s.Write(p, off, 8<<20); err != nil {
				t.Error(err)
				return
			}
			series.Observe(env.Now() - start)
		}
	})
	env.RunUntilDone(writer)
	env.Close()
	if series.Min() >= 30*time.Millisecond {
		t.Fatalf("min latency %v; buffer hits should be fast", series.Min())
	}
	if series.Max() < 6*series.Min() {
		t.Fatalf("latency spread max/min = %.1f, want >= 6x (paper: 7 ms .. 650 ms)",
			float64(series.Max())/float64(series.Min()))
	}
}

func TestTrimEnablesReclaim(t *testing.T) {
	prof := Intel320(0.10).ScaleBlocks(24)
	prof.BufferBytes = 0 // write through for determinism
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Write(p, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		if err := s.Trim(p, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		// All pages invalid; rewriting must succeed indefinitely.
		for i := 0; i < 8; i++ {
			if err := s.Write(p, 0, 4<<20); err != nil {
				t.Fatal(err)
			}
			if err := s.Trim(p, 0, 4<<20); err != nil {
				t.Fatal(err)
			}
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestRangeValidation(t *testing.T) {
	prof := Intel320(0.10).ScaleBlocks(24)
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Read(p, -1, 4096); err == nil {
			t.Error("negative offset accepted")
		}
		if err := s.Write(p, s.Capacity(), 4096); !errors.Is(err, ErrDeviceFull) {
			t.Errorf("write past capacity: %v", err)
		}
		if err := s.Read(p, 0, 0); err == nil {
			t.Error("zero-size read accepted")
		}
	})
	env.RunUntilDone(w)
	env.Close()
}

func TestSubPageWriteCausesRMW(t *testing.T) {
	prof := Intel320(0.10).ScaleBlocks(24)
	prof.BufferBytes = 0 // write through so the mapping exists at once
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		// First write maps the page; second partial write must RMW.
		if err := s.Write(p, 0, int64(s.PageSize())); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(p, 0, 4096); err != nil {
			t.Fatal(err)
		}
	})
	env.RunUntilDone(w)
	st := s.Stats()
	env.Close()
	if st.RMWReads != 1 {
		t.Fatalf("RMW reads = %d, want 1", st.RMWReads)
	}
}

func TestUnwrittenReadIsFast(t *testing.T) {
	prof := HuaweiGen3(0.25).ScaleBlocks(16)
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	var lat time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		if err := s.Read(p, 0, int64(s.PageSize())); err != nil {
			t.Error(err)
		}
		lat = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// No flash involved: just the stack, controller, and PCIe.
	if lat > 100*time.Microsecond {
		t.Fatalf("unmapped read took %v, want < 100µs", lat)
	}
}

func TestWarmFillMakesDataReadable(t *testing.T) {
	prof := HuaweiGen3(0.25).ScaleBlocks(16)
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmFill(0.5); err != nil {
		t.Fatal(err)
	}
	var lat time.Duration
	w := env.Go("t", func(p *sim.Proc) {
		start := env.Now()
		if err := s.Read(p, 0, int64(s.PageSize())); err != nil {
			t.Error(err)
		}
		lat = env.Now() - start
	})
	env.RunUntilDone(w)
	env.Close()
	// Mapped page: must pay the flash read (~300µs+).
	if lat < 200*time.Microsecond {
		t.Fatalf("warm-filled read took only %v; flash not exercised", lat)
	}
}

func TestWarmFillRejectsDirtyDevice(t *testing.T) {
	prof := Intel320(0.10).ScaleBlocks(24)
	prof.BufferBytes = 0
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	w := env.Go("t", func(p *sim.Proc) {
		if err := s.Write(p, 0, int64(s.PageSize())); err != nil {
			t.Fatal(err)
		}
	})
	env.RunUntilDone(w)
	defer env.Close()
	if err := s.WarmFill(0.5); err == nil {
		t.Fatal("WarmFill on dirty device accepted")
	}
}
