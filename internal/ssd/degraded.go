package ssd

import (
	"sdf/internal/hostif"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// Degraded-parity mode. The conventional SSD hides channel failures
// behind its internal RAID (§2.2): when a channel dies, the drive
// keeps serving, but every read of a page stored there is rebuilt by
// reading the surviving stripe peers of its parity group, and every
// write bound for the dead channel is redirected to a surviving
// member. The masking is real — no data is lost — and so is its cost:
// reconstruction multiplies flash reads and controller work by the
// group width, which is exactly the latency tax SDF avoids by
// dropping parity and failing over to a replica instead.

// Channels returns the channel count, data and parity together.
func (s *SSD) Channels() int { return len(s.channels) }

// PCIe returns the host link, the degradation surface for link-level
// fault injection.
func (s *SSD) PCIe() *hostif.Interface { return s.iface }

// DegradeChannel puts channel c into degraded-parity mode: its flash
// becomes unreachable, reads of pages mapped there reconstruct from
// the parity group, writes placed there redirect, and its background
// GC parks. Degrading an already-degraded channel is a no-op.
func (s *SSD) DegradeChannel(c int) {
	if c < 0 || c >= len(s.channels) {
		return
	}
	if s.degraded == nil {
		s.degraded = make([]bool, len(s.channels))
	}
	s.degraded[c] = true
}

// RestoreChannel ends degraded mode for channel c (a firmware stall
// that cleared, or a replaced channel after rebuild). Pages written
// while degraded stay where they were redirected; pages still mapped
// to c simply become readable again.
func (s *SSD) RestoreChannel(c int) {
	if s.degraded == nil || c < 0 || c >= len(s.channels) {
		return
	}
	s.degraded[c] = false
}

// channelDegraded reports whether channel c is in degraded mode.
func (s *SSD) channelDegraded(c int) bool {
	return s.degraded != nil && c >= 0 && c < len(s.degraded) && s.degraded[c]
}

// DegradedChannels returns how many channels are currently degraded.
func (s *SSD) DegradedChannels() int {
	n := 0
	for _, d := range s.degraded {
		if d {
			n++
		}
	}
	return n
}

// parityGroup returns the parity-group index of channel c, or -1 when
// the profile has no parity.
func (s *SSD) parityGroup(c int) int {
	if s.prof.ParityRatio <= 0 || len(s.parityCh) == 0 {
		return -1
	}
	g := c / (s.prof.ParityRatio + 1)
	if g >= len(s.parityCh) {
		g = len(s.parityCh) - 1
	}
	return g
}

// reconstructPage rebuilds one page of a degraded channel: the
// controller reads the same stripe row from every surviving data
// channel of the parity group plus the group's parity row, XORs them
// (free in a timing model), and returns the result. The peer reads
// run through the normal per-page path, so they are charged
// controller processing, flash occupancy, and bus time — and they
// load the surviving channels, which is why one dead channel degrades
// the whole group's tail latency.
func (s *SSD) reconstructPage(p *sim.Proc, dead int, lpn int64) {
	g := s.parityGroup(dead)
	if g < 0 {
		return // no parity: the read simply returns no data (timing model)
	}
	t := s.env.Tracer()
	span := t.Begin(s.env.Now(), p.Span(), "parity-rebuild", trace.PhaseFlash)
	defer t.End(s.env.Now(), span)
	s.rebuiltPages++

	nData := int64(len(s.dataCh))
	unit := int64(s.prof.StripePages)
	row := lpn / (nData * unit)
	within := lpn % unit
	for idx, c := range s.dataCh {
		if c == dead || s.channelDegraded(c) || s.parityGroup(c) != g {
			continue
		}
		peer := (row*nData+int64(idx))*unit + within
		if peer >= s.logicalPages {
			continue // incomplete tail stripe
		}
		s.readPageMode(p, peer, false)
	}
	if pc := s.parityCh[g]; pc != dead && !s.channelDegraded(pc) {
		prow := s.logicalPages + int64(g)*s.parityRows + row%s.parityRows
		s.readPageMode(p, prow, false)
	}
}

// redirectChannel picks the surviving channel that absorbs a write
// bound for degraded channel c: the group's parity channel when it is
// alive (RAID write-around — the slot's redundancy stands in for the
// data), else the first live channel of the group, else the first
// live channel of the device. Returns -1 when every channel is down.
func (s *SSD) redirectChannel(c int) int {
	if g := s.parityGroup(c); g >= 0 {
		if pc := s.parityCh[g]; pc != c && !s.channelDegraded(pc) {
			return pc
		}
		for _, dc := range s.dataCh {
			if dc != c && dc/(s.prof.ParityRatio+1) == g && !s.channelDegraded(dc) {
				return dc
			}
		}
	}
	for i := range s.channels {
		if i != c && !s.channelDegraded(i) {
			return i
		}
	}
	return -1
}
