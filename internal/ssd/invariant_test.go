package ssd

import (
	"math/rand"
	"testing"

	"sdf/internal/sim"
)

// checkInvariants validates the FTL's internal consistency:
//   - every mapped lpn points at a programmed page whose reverse entry
//     agrees;
//   - per-block valid counts equal the number of mapping-confirmed
//     reverse entries;
//   - no block is both in the free pool and open;
//   - free-pool entries are unique.
func checkInvariants(t *testing.T, s *SSD) {
	t.Helper()
	type key struct{ ch, pl, b int }
	validCount := make(map[key]int32)
	for lpn, l := range s.mapping {
		if l == unmapped {
			continue
		}
		ch, pl, b, pg := unpackLoc(l)
		pf := s.channels[ch].planes[pl]
		if pf.rev[b][pg] != int64(lpn) {
			t.Fatalf("lpn %d maps to (%d,%d,%d,%d) but reverse entry is %d",
				lpn, ch, pl, b, pg, pf.rev[b][pg])
		}
		if wp := pf.plane.WritePtr(b); wp >= 0 && pg >= wp {
			t.Fatalf("lpn %d maps past the write pointer (%d >= %d)", lpn, pg, wp)
		}
		validCount[key{ch, pl, b}]++
	}
	for c, ch := range s.channels {
		for pi, pf := range ch.planes {
			seen := make(map[int]bool)
			for _, b := range pf.free {
				if seen[b] {
					t.Fatalf("ch%d.p%d: block %d twice in the free pool", c, pi, b)
				}
				seen[b] = true
				if !pf.pooled[b] {
					t.Fatalf("ch%d.p%d: block %d in pool but not flagged", c, pi, b)
				}
				if b == pf.hostOpen || b == pf.gcOpen {
					t.Fatalf("ch%d.p%d: open block %d in the free pool", c, pi, b)
				}
			}
			for b := 0; b < pf.plane.Blocks(); b++ {
				if pf.pooled[b] && !seen[b] {
					t.Fatalf("ch%d.p%d: block %d flagged pooled but absent", c, pi, b)
				}
				if got := validCount[key{c, pi, b}]; pf.valid[b] != got {
					t.Fatalf("ch%d.p%d block %d: valid=%d, mapping says %d",
						c, pi, b, pf.valid[b], got)
				}
			}
		}
	}
}

func TestFTLInvariantsUnderRandomTraffic(t *testing.T) {
	prof := Intel320(0.20).ScaleBlocks(16)
	prof.BufferBytes = 0
	prof.StaticWL = false
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pageSize := int64(s.PageSize())
	slots := s.Capacity() / pageSize
	w := env.Go("driver", func(p *sim.Proc) {
		for op := 0; op < 4000; op++ {
			off := rng.Int63n(slots) * pageSize
			switch rng.Intn(10) {
			case 0:
				n := 1 + rng.Int63n(4)
				if off+n*pageSize > s.Capacity() {
					n = 1
				}
				if err := s.Trim(p, off, n*pageSize); err != nil {
					t.Error(err)
					return
				}
			case 1, 2:
				if err := s.Read(p, off, pageSize); err != nil {
					t.Error(err)
					return
				}
			default:
				if err := s.Write(p, off, pageSize); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	env.RunUntilDone(w)
	checkInvariants(t, s)
	env.Close()
}

func TestFTLInvariantsAfterWarmFillRandom(t *testing.T) {
	prof := HuaweiGen3(0.25).ScaleBlocks(16)
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmFillRandom(1.0, 3); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, s)
	env.Close()
}

func TestFTLInvariantsAfterGCChurn(t *testing.T) {
	prof := Intel320(0.10).ScaleBlocks(16)
	prof.BufferBytes = 0
	env := sim.NewEnv()
	s, err := New(env, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WarmFillRandom(1.0, 21); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	pageSize := int64(s.PageSize())
	slots := s.Capacity() / pageSize
	w := env.Go("driver", func(p *sim.Proc) {
		for op := 0; op < 5000; op++ {
			off := rng.Int63n(slots) * pageSize
			if err := s.Write(p, off, pageSize); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.RunUntilDone(w)
	if s.Stats().GCMovedPages == 0 {
		t.Fatal("GC never ran; churn test ineffective")
	}
	checkInvariants(t, s)
	env.Close()
}
