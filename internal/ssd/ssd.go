package ssd

import (
	"errors"
	"fmt"
	"math"

	"sdf/internal/hostif"
	"sdf/internal/metrics"
	"sdf/internal/nand"
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// ErrDeviceFull is returned when a write would exceed logical capacity.
var ErrDeviceFull = errors.New("ssd: write beyond logical capacity")

// unmapped marks a logical page with no flash location.
const unmapped = ^uint64(0)

// loc packs a flash location: channel(8) | plane(8) | block(32) | page(16).
func packLoc(ch, plane, block, page int) uint64 {
	return uint64(ch)<<56 | uint64(plane)<<48 | uint64(block)<<16 | uint64(page)
}

func unpackLoc(l uint64) (ch, plane, block, page int) {
	return int(l >> 56), int(l >> 48 & 0xff), int(l >> 16 & 0xffffffff), int(l & 0xffff)
}

// revInvalid and revParity are sentinel owners in the reverse map.
const (
	revInvalid int64 = -1
)

// planeFTL is the per-plane slice of the page-mapped FTL: free block
// pool, open blocks for host and GC writes, and the reverse map that
// GC uses to find the owners of valid pages.
type planeFTL struct {
	ssd      *SSD
	ch       int
	pi       int
	plane    *nand.Plane
	free     []int
	pooled   []bool // block is in the free pool (not a GC candidate)
	hostOpen int
	gcOpen   int
	rev      [][]int64 // [block][page] -> lpn, or revInvalid
	valid    []int32   // valid pages per block
	writeMu  *sim.Resource
	gcMu     *sim.Resource // serializes GC and static-WL moves
	gcKick   *sim.Signal
	space    *sim.Signal
}

// channel groups the planes behind one flash bus.
type channel struct {
	bus    *sim.Link
	planes []*planeFTL
	next   int // round-robin plane cursor for allocation
}

// SSD is a conventional SSD: one controller, striped channels, page
// FTL with garbage collection. It is a timing model; payloads are not
// stored (the functional data path is exercised on the SDF side).
type SSD struct {
	prof  Profile
	env   *sim.Env
	iface *hostif.Interface
	stack *hostif.Stack
	ctrl  *sim.Resource // FTL engine: page processing, flush, GC
	front *sim.Resource // host front-end: request intake, buffer ingest

	channels     []*channel
	degraded     []bool // per-channel degraded-parity mode (see degraded.go)
	dataCh       []int
	parityCh     []int
	chips        []*nand.Chip
	mapping      []uint64
	logicalPages int64
	parityRows   int64 // rows per parity channel

	buffer *writeBuffer

	// Parity row cursors, one per parity group.
	parityAcc []int
	parityCur []int64

	// Statistics.
	hostReadBytes  int64
	hostWriteBytes int64
	hostPages      int64
	gcMoved        int64
	parityPages    int64
	rmwReads       int64
	gcRuns         int64
	wlMoves        int64
	rebuiltPages   int64
}

// New builds the SSD and starts its background processes (per-plane
// GC, buffer flusher, optional static wear leveler).
func New(env *sim.Env, prof Profile) (*SSD, error) {
	if prof.Channels < 1 || prof.Chips < 1 {
		return nil, fmt.Errorf("ssd: bad geometry")
	}
	if prof.Nand.RetainData {
		return nil, fmt.Errorf("ssd: the conventional SSD model is timing-only")
	}
	s := &SSD{
		prof:  prof,
		env:   env,
		iface: prof.newInterface(env),
		stack: hostif.NewStack(env, prof.Stack),
		ctrl:  sim.NewResource(env, 1),
		front: sim.NewResource(env, 1),
	}
	for c := 0; c < prof.Channels; c++ {
		ch := &channel{bus: sim.NewLink(env, prof.BusRate, prof.BusOverhead)}
		for i := 0; i < prof.Chips; i++ {
			np := prof.Nand
			np.Seed = prof.Seed*7919 + int64(c*prof.Chips+i)
			chip := nand.New(env, np)
			s.chips = append(s.chips, chip)
			for pl := 0; pl < chip.Planes(); pl++ {
				pf := &planeFTL{
					ssd:      s,
					ch:       c,
					pi:       len(ch.planes),
					plane:    chip.Plane(pl),
					hostOpen: -1,
					gcOpen:   -1,
					writeMu:  sim.NewResource(env, 1),
					gcMu:     sim.NewResource(env, 1),
					gcKick:   sim.NewSignal(env),
					space:    sim.NewSignal(env),
				}
				nb := pf.plane.Blocks()
				pf.rev = make([][]int64, nb)
				pf.valid = make([]int32, nb)
				pf.pooled = make([]bool, nb)
				for b := 0; b < nb; b++ {
					if !pf.plane.Bad(b) {
						pf.free = append(pf.free, b)
						pf.pooled[b] = true
					}
					row := make([]int64, prof.Nand.PagesPerBlock)
					for i := range row {
						row[i] = revInvalid
					}
					pf.rev[b] = row
				}
				ch.planes = append(ch.planes, pf)
				env.Go(fmt.Sprintf("ssd/gc/%d.%d", c, pf.pi), pf.gcLoop)
			}
		}
		s.channels = append(s.channels, ch)
	}
	// Partition channels into parity groups: with ratio N, every
	// (N+1)-th channel stores parity.
	for c := 0; c < prof.Channels; c++ {
		if prof.ParityRatio > 0 && (c+1)%(prof.ParityRatio+1) == 0 {
			s.parityCh = append(s.parityCh, c)
		} else {
			s.dataCh = append(s.dataCh, c)
		}
	}
	groups := len(s.parityCh)
	if groups > 0 {
		s.parityAcc = make([]int, groups)
		s.parityCur = make([]int64, groups)
	}
	// Logical capacity: data-channel raw minus over-provisioning,
	// minus a hidden reserve so GC can run even at "0%" OP.
	pagesPerChannel := int64(prof.Nand.PagesPerBlock) * int64(prof.Nand.BlocksPerPlane) *
		int64(prof.Nand.Planes) * int64(prof.Chips)
	rawDataPages := pagesPerChannel * int64(len(s.dataCh))
	reserveBlocks := int64(prof.GCLowWater+3) * int64(len(s.dataCh)) * int64(prof.Nand.Planes*prof.Chips)
	s.logicalPages = int64(math.Floor(float64(rawDataPages)*(1-prof.OverProvision))) -
		reserveBlocks*int64(prof.Nand.PagesPerBlock)
	if s.logicalPages < 1 {
		return nil, fmt.Errorf("ssd: over-provisioning leaves no logical space")
	}
	if groups > 0 {
		s.parityRows = (s.logicalPages + int64(len(s.dataCh)) - 1) / int64(len(s.dataCh))
	}
	s.mapping = make([]uint64, s.logicalPages+s.parityRows*int64(groups))
	for i := range s.mapping {
		s.mapping[i] = unmapped
	}
	if prof.BufferBytes > 0 {
		s.buffer = newWriteBuffer(s, int(prof.BufferBytes/int64(prof.Nand.PageSize)))
		env.Go("ssd/flusher", s.buffer.flushLoop)
	}
	if prof.StaticWL {
		env.Go("ssd/staticwl", s.staticWLLoop)
	}
	return s, nil
}

// Profile returns the device profile.
func (s *SSD) Profile() Profile { return s.prof }

// beginOp opens the root span of one host request and reparents p
// under it. The returned func closes the span.
func (s *SSD) beginOp(p *sim.Proc, name string) func() {
	t := s.env.Tracer()
	if t == nil {
		return func() {}
	}
	prev := p.Span()
	op := t.Begin(s.env.Now(), prev, name, trace.PhaseOp)
	p.SetSpan(op)
	return func() {
		p.SetSpan(prev)
		t.End(s.env.Now(), op)
	}
}

// PageSize returns the flash page size in bytes.
func (s *SSD) PageSize() int { return s.prof.Nand.PageSize }

// Capacity returns the logical (host-visible) capacity in bytes.
func (s *SSD) Capacity() int64 { return s.logicalPages * int64(s.PageSize()) }

// RawCapacity returns total flash bytes including parity channels and
// over-provisioned space.
func (s *SSD) RawCapacity() int64 { return s.prof.RawBytes() }

// placement returns the channel and lpn-independent plane cursor for a
// logical page: data pages stripe over data channels; parity rows live
// on their group's parity channel.
func (s *SSD) placement(lpn int64) int {
	if lpn >= s.logicalPages {
		g := (lpn - s.logicalPages) / s.parityRows
		return s.parityCh[g]
	}
	unit := int64(s.prof.StripePages)
	return s.dataCh[(lpn/unit)%int64(len(s.dataCh))]
}

// Read services a host read of size bytes at byte offset off. Pages
// spread across channels are fetched concurrently; the controller
// pipeline serializes per-page processing (the architectural
// bottleneck of single-FTL designs; §3.2).
func (s *SSD) Read(p *sim.Proc, off, size int64) error {
	if err := s.checkRange(off, size); err != nil {
		return err
	}
	end := s.beginOp(p, "ssd/read")
	defer end()
	s.stack.Submit(p)
	s.ctrl.Use(p, func() { p.Wait(s.prof.ReqProc) })
	op := p.Span()
	first := off / int64(s.PageSize())
	last := (off + size - 1) / int64(s.PageSize())
	groups := make(map[int][]int64)
	for lpn := first; lpn <= last; lpn++ {
		c := s.placement(lpn)
		groups[c] = append(groups[c], lpn)
	}
	var workers []*sim.Proc
	for c := 0; c < len(s.channels); c++ { // deterministic order
		lpns, ok := groups[c]
		if !ok {
			continue
		}
		w := s.env.Go("ssd/read", func(wp *sim.Proc) {
			wp.SetSpan(op)
			for _, lpn := range lpns {
				s.readPage(wp, lpn)
			}
		})
		workers = append(workers, w)
	}
	done := s.env.Go("ssd/readjoin", func(wp *sim.Proc) {
		for _, w := range workers {
			wp.Join(w)
		}
	})
	t := s.env.Tracer()
	xfer := t.Begin(s.env.Now(), op, "host-xfer", trace.PhaseBus)
	s.iface.ToHost(p, int(size))
	t.End(s.env.Now(), xfer)
	p.Join(done)
	s.stack.Complete(p)
	s.hostReadBytes += size
	return nil
}

// readPage fetches one page: controller processing, then flash read
// and bus transfer (skipped on buffer hits and unmapped pages). A
// page whose flash sits on a degraded channel is reconstructed from
// its parity group instead (degraded.go).
func (s *SSD) readPage(p *sim.Proc, lpn int64) {
	s.readPageMode(p, lpn, true)
}

// readPageMode is readPage with reconstruction control: peer reads
// issued by a rebuild must not themselves rebuild, or two degraded
// stripe members would recurse into each other forever. A peer that
// is also unreachable contributes nothing beyond its controller tick
// — in a timing model the XOR that covers it is free.
func (s *SSD) readPageMode(p *sim.Proc, lpn int64, rebuild bool) {
	s.ctrl.Use(p, func() { p.Wait(s.prof.ReadPageProc) })
	if s.buffer != nil && s.buffer.contains(lpn) {
		return // served from DRAM
	}
	l := s.mapping[lpn]
	if l == unmapped {
		return // never written: controller returns zeros
	}
	chIdx, plane, block, page := unpackLoc(l)
	if s.channelDegraded(chIdx) {
		if rebuild {
			s.reconstructPage(p, chIdx, lpn)
		}
		return
	}
	ch := s.channels[chIdx]
	pf := ch.planes[plane]
	if _, err := pf.plane.ReadPage(p, block, page); err != nil {
		// The mapping may have moved under concurrent GC; retry once
		// at the new location.
		if l2 := s.mapping[lpn]; l2 != l && l2 != unmapped {
			_, plane2, block2, page2 := unpackLoc(l2)
			//sdflint:allow errdrop best-effort retry at the page GC relocated; the read path models timing, and the bus transfer below is charged either way
			_, _ = ch.planes[plane2].plane.ReadPage(p, block2, page2)
		}
	}
	ch.bus.Transfer(p, s.PageSize())
}

// Write services a host write of size bytes at byte offset off.
// Partial pages incur a read-modify-write. With a DRAM buffer the
// write completes once ingested; otherwise it is written through.
func (s *SSD) Write(p *sim.Proc, off, size int64) error {
	if err := s.checkRange(off, size); err != nil {
		return err
	}
	end := s.beginOp(p, "ssd/write")
	defer end()
	s.stack.Submit(p)
	t := s.env.Tracer()
	xfer := t.Begin(s.env.Now(), p.Span(), "host-xfer", trace.PhaseBus)
	s.iface.ToDevice(p, int(size))
	t.End(s.env.Now(), xfer)
	pageSize := int64(s.PageSize())
	first := off / pageSize
	last := (off + size - 1) / pageSize
	for lpn := first; lpn <= last; lpn++ {
		pageStart := lpn * pageSize
		pageEnd := pageStart + pageSize
		partial := off > pageStart || off+size < pageEnd
		if partial && s.mapping[lpn] != unmapped {
			// Read-modify-write: fetch the old page content first.
			s.rmwReads++
			s.readPage(p, lpn)
		}
		if s.buffer != nil {
			s.front.Use(p, func() { p.Wait(s.prof.IngestProc) })
			s.buffer.insert(p, lpn)
		} else {
			s.ctrl.Use(p, func() { p.Wait(s.prof.WritePageProc) })
			s.flashWrite(p, lpn)
		}
		s.hostPages++
	}
	s.stack.Complete(p)
	s.hostWriteBytes += size
	return nil
}

// Trim invalidates the page range, releasing it for garbage
// collection without writing.
func (s *SSD) Trim(p *sim.Proc, off, size int64) error {
	if err := s.checkRange(off, size); err != nil {
		return err
	}
	pageSize := int64(s.PageSize())
	first := off / pageSize
	last := (off + size - 1) / pageSize
	s.ctrl.Use(p, func() { p.Wait(s.prof.ReqProc) })
	for lpn := first; lpn <= last; lpn++ {
		s.invalidate(lpn)
	}
	return nil
}

func (s *SSD) checkRange(off, size int64) error {
	if off < 0 || size <= 0 {
		return fmt.Errorf("ssd: bad range off=%d size=%d", off, size)
	}
	if off+size > s.Capacity() {
		return fmt.Errorf("%w: off=%d size=%d capacity=%d", ErrDeviceFull, off, size, s.Capacity())
	}
	return nil
}

// invalidate drops the flash mapping of lpn, if any.
func (s *SSD) invalidate(lpn int64) {
	l := s.mapping[lpn]
	if l == unmapped {
		return
	}
	ch, plane, block, _ := unpackLoc(l)
	pf := s.channels[ch].planes[plane]
	pf.valid[block]--
	// The reverse entry is left stale; GC validates against mapping.
	s.mapping[lpn] = unmapped
}

// flashWrite programs one logical page to flash through the striped
// placement, then accounts parity traffic. Placement onto a degraded
// channel is redirected to a surviving group member; parity is still
// accounted against the original group.
func (s *SSD) flashWrite(p *sim.Proc, lpn int64) {
	c := s.placement(lpn)
	group := c
	if s.channelDegraded(c) {
		r := s.redirectChannel(c)
		if r < 0 {
			return // every channel is down: the write is unserviceable
		}
		c = r
	}
	ch := s.channels[c]
	pf := ch.planes[ch.next%len(ch.planes)]
	ch.next++
	pf.hostProgram(p, lpn)
	s.parityTick(p, group)
}

// parityTick emits one parity-page write per ParityRatio data pages
// written into a group (RAID4-style dedicated parity channel; §2.2).
func (s *SSD) parityTick(p *sim.Proc, c int) {
	if len(s.parityCh) == 0 {
		return
	}
	g := c / (s.prof.ParityRatio + 1)
	if g >= len(s.parityAcc) {
		g = len(s.parityAcc) - 1
	}
	s.parityAcc[g]++
	if s.parityAcc[g] < s.prof.ParityRatio {
		return
	}
	s.parityAcc[g] = 0
	row := s.logicalPages + int64(g)*s.parityRows + s.parityCur[g]
	s.parityCur[g] = (s.parityCur[g] + 1) % s.parityRows
	s.ctrl.Use(p, func() { p.Wait(s.prof.WritePageProc) })
	pc := s.placement(row)
	if s.channelDegraded(pc) {
		pc = s.redirectChannel(pc)
		if pc < 0 {
			return
		}
	}
	ch := s.channels[pc]
	pf := ch.planes[ch.next%len(ch.planes)]
	ch.next++
	pf.hostProgram(p, row)
	s.parityPages++
}

// hostProgram appends one page for lpn into the plane's host-open
// block: bus transfer, program, mapping update.
func (pf *planeFTL) hostProgram(p *sim.Proc, lpn int64) {
	pf.writeMu.Acquire(p)
	defer pf.writeMu.Release()
	block, page := pf.allocHost(p)
	pf.ssd.channels[pf.ch].bus.Transfer(p, pf.ssd.PageSize())
	if err := pf.plane.Program(p, block, page, nil); err != nil {
		// Program failure: retire the block and retry once elsewhere.
		pf.plane.MarkBad(block)
		pf.hostOpen = -1
		block, page = pf.allocHost(p)
		if err := pf.plane.Program(p, block, page, nil); err != nil {
			panic(fmt.Sprintf("ssd: program retry failed: %v", err))
		}
	}
	pf.ssd.invalidate(lpn)
	pf.rev[block][page] = lpn
	pf.valid[block]++
	pf.ssd.mapping[lpn] = packLoc(pf.ch, pf.pi, block, page)
}

// allocHost returns the next (block, page) slot for host writes,
// opening (and erasing) a fresh block when needed and stalling while
// the free pool is at the GC reserve.
func (pf *planeFTL) allocHost(p *sim.Proc) (block, page int) {
	prof := &pf.ssd.prof
	for {
		if pf.hostOpen >= 0 {
			wp := pf.plane.WritePtr(pf.hostOpen)
			if wp >= 0 && wp < prof.Nand.PagesPerBlock {
				return pf.hostOpen, wp
			}
			pf.hostOpen = -1
		}
		if len(pf.free) <= prof.GCReserve {
			// The stall behind garbage collection — the dominant term
			// of the Gen3's worst-case write latency (Figure 8).
			env := pf.ssd.env
			span := env.Tracer().Begin(env.Now(), p.Span(), "gc-stall", trace.PhaseQueue)
			for len(pf.free) <= prof.GCReserve {
				pf.kickGC()
				p.Await(pf.space)
			}
			env.Tracer().End(env.Now(), span)
		}
		b := pf.popFree()
		if len(pf.free) <= prof.GCLowWater {
			pf.kickGC()
		}
		if pf.eraseFresh(p, b) {
			pf.hostOpen = b
		}
	}
}

// eraseFresh erases a block popped from the free pool, retiring it on
// wear-out. Reports whether the block is usable.
func (pf *planeFTL) eraseFresh(p *sim.Proc, b int) bool {
	if err := pf.plane.Erase(p, b); err != nil {
		return false // worn out or bad: drop from circulation
	}
	row := pf.rev[b]
	for i := range row {
		row[i] = revInvalid
	}
	pf.valid[b] = 0
	return true
}

func (pf *planeFTL) popFree() int {
	b := pf.free[len(pf.free)-1]
	pf.free = pf.free[:len(pf.free)-1]
	pf.pooled[b] = false
	return b
}

// pushFree returns a block to the free pool.
func (pf *planeFTL) pushFree(b int) {
	if pf.pooled[b] {
		panic("ssd: double free of physical block")
	}
	pf.free = append(pf.free, b)
	pf.pooled[b] = true
}

func (pf *planeFTL) kickGC() {
	pf.gcKick.Fire()
}

func (pf *planeFTL) signalSpace() {
	pf.space.Fire()
	pf.space = sim.NewSignal(pf.ssd.env)
}

// gcLoop is the plane's background garbage collector: when the free
// pool runs low it greedily picks the fully-written block with the
// fewest valid pages, moves those pages to the GC-open block, and
// reclaims the victim.
func (pf *planeFTL) gcLoop(p *sim.Proc) {
	prof := &pf.ssd.prof
	for {
		if !pf.gcKick.Fired() {
			p.Await(pf.gcKick)
		}
		pf.gcKick = sim.NewSignal(pf.ssd.env)
		for len(pf.free) <= prof.GCLowWater {
			if pf.ssd.channelDegraded(pf.ch) {
				break // dead channel: its flash is unreachable, GC parks
			}
			pf.gcMu.Acquire(p)
			victim := pf.pickVictim()
			if victim < 0 {
				pf.gcMu.Release()
				break
			}
			pf.ssd.gcRuns++
			pf.moveValid(p, victim)
			pf.pushFree(victim)
			pf.signalSpace()
			pf.gcMu.Release()
		}
	}
}

// pickVictim returns the fully-written, non-open block with the
// fewest valid pages, or -1 if no block would yield free space.
func (pf *planeFTL) pickVictim() int {
	best := -1
	bestValid := int32(pf.ssd.prof.Nand.PagesPerBlock)
	for b := 0; b < pf.plane.Blocks(); b++ {
		if b == pf.hostOpen || b == pf.gcOpen || pf.pooled[b] || pf.plane.Bad(b) {
			continue
		}
		if pf.plane.WritePtr(b) != pf.ssd.prof.Nand.PagesPerBlock {
			continue
		}
		if pf.valid[b] < bestValid {
			bestValid = pf.valid[b]
			best = b
		}
	}
	if best >= 0 && bestValid >= int32(pf.ssd.prof.Nand.PagesPerBlock) {
		return -1 // nothing reclaimable
	}
	return best
}

// moveValid relocates every still-valid page of the victim block into
// the GC-open block. Each move costs a flash read, a bus round trip,
// controller processing, and a program — this is the write
// amplification that over-provisioning exists to bound.
func (pf *planeFTL) moveValid(p *sim.Proc, victim int) {
	s := pf.ssd
	prof := &s.prof
	for pg := 0; pg < prof.Nand.PagesPerBlock; pg++ {
		lpn := pf.rev[victim][pg]
		if lpn < 0 {
			continue
		}
		if s.mapping[lpn] != packLoc(pf.ch, pf.pi, victim, pg) {
			continue // stale reverse entry
		}
		if _, err := pf.plane.ReadPage(p, victim, pg); err != nil {
			continue
		}
		bus := s.channels[pf.ch].bus
		bus.Transfer(p, s.PageSize())
		s.ctrl.Use(p, func() { p.Wait(prof.WritePageProc) })
		block, page := pf.allocGC(p)
		bus.Transfer(p, s.PageSize())
		if err := pf.plane.Program(p, block, page, nil); err != nil {
			pf.plane.MarkBad(block)
			pf.gcOpen = -1
			continue
		}
		pf.valid[victim]--
		pf.rev[victim][pg] = revInvalid
		pf.rev[block][page] = lpn
		pf.valid[block]++
		s.mapping[lpn] = packLoc(pf.ch, pf.pi, block, page)
		s.gcMoved++
	}
}

// allocGC returns the next slot in the GC-open block; GC may dip into
// the reserve that host writes cannot touch.
func (pf *planeFTL) allocGC(p *sim.Proc) (block, page int) {
	prof := &pf.ssd.prof
	for {
		if pf.gcOpen >= 0 {
			wp := pf.plane.WritePtr(pf.gcOpen)
			if wp >= 0 && wp < prof.Nand.PagesPerBlock {
				return pf.gcOpen, wp
			}
			pf.gcOpen = -1
		}
		if len(pf.free) == 0 {
			panic("ssd: GC starved of free blocks (reserve misconfigured)")
		}
		b := pf.popFree()
		if pf.eraseFresh(p, b) {
			pf.gcOpen = b
		}
	}
}

// Stats summarizes device activity.
type Stats struct {
	HostReadBytes  int64
	HostWriteBytes int64
	HostPages      int64 // pages written by the host
	GCMovedPages   int64
	RebuiltPages   int64 // pages served by degraded-parity reconstruction
	ParityPages    int64
	RMWReads       int64
	GCRuns         int64
	StaticWLMoves  int64
	FlashReads     int64
	FlashPrograms  int64
	FlashErases    int64
}

// WriteAmplification is total flash programs per host page written.
func (st Stats) WriteAmplification() float64 {
	if st.HostPages == 0 {
		return 0
	}
	return float64(st.FlashPrograms) / float64(st.HostPages)
}

// Wear returns the minimum and maximum per-block erase counts across
// all planes (bad blocks excluded).
func (s *SSD) Wear() (min, max int) {
	min = 1 << 30
	for _, ch := range s.channels {
		for _, pf := range ch.planes {
			for b := 0; b < pf.plane.Blocks(); b++ {
				if pf.plane.Bad(b) {
					continue
				}
				ec := pf.plane.EraseCount(b)
				if ec < min {
					min = ec
				}
				if ec > max {
					max = ec
				}
			}
		}
	}
	if min == 1<<30 {
		min = 0
	}
	return min, max
}

// RegisterMetrics exports the SSD's controller counters and degraded-
// parity state against r: host traffic, GC and parity activity, pages
// served by stripe reconstruction, write-buffer depth, and how many
// channels are currently running degraded. Callbacks read plain
// fields only — park-free, per the registry's callback contract.
func (s *SSD) RegisterMetrics(r *metrics.Registry, labels ...metrics.Label) {
	if r == nil {
		return
	}
	s.iface.RegisterMetrics(r, labels...)
	s.stack.RegisterMetrics(r, labels...)
	r.CounterFunc("ssd_host_read_bytes_total", func() int64 { return s.hostReadBytes }, labels...)
	r.CounterFunc("ssd_host_write_bytes_total", func() int64 { return s.hostWriteBytes }, labels...)
	r.CounterFunc("ssd_gc_moved_pages_total", func() int64 { return s.gcMoved }, labels...)
	r.CounterFunc("ssd_gc_runs_total", func() int64 { return s.gcRuns }, labels...)
	r.CounterFunc("ssd_parity_pages_total", func() int64 { return s.parityPages }, labels...)
	r.CounterFunc("ssd_rmw_reads_total", func() int64 { return s.rmwReads }, labels...)
	r.CounterFunc("ssd_rebuilt_pages_total", func() int64 { return s.rebuiltPages }, labels...)
	r.GaugeFunc("ssd_buffer_depth_pages", func() float64 { return float64(s.buffer.depth()) }, labels...)
	r.GaugeFunc("ssd_degraded_channels", func() float64 { return float64(s.DegradedChannels()) }, labels...)
}

// Stats returns a snapshot of device counters.
func (s *SSD) Stats() Stats {
	st := Stats{
		HostReadBytes:  s.hostReadBytes,
		HostWriteBytes: s.hostWriteBytes,
		HostPages:      s.hostPages,
		GCMovedPages:   s.gcMoved,
		RebuiltPages:   s.rebuiltPages,
		ParityPages:    s.parityPages,
		RMWReads:       s.rmwReads,
		GCRuns:         s.gcRuns,
		StaticWLMoves:  s.wlMoves,
	}
	for _, c := range s.chips {
		r, w, e := c.Counters()
		st.FlashReads += r
		st.FlashPrograms += w
		st.FlashErases += e
	}
	return st
}
