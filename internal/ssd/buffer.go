package ssd

import (
	"sdf/internal/sim"
	"sdf/internal/trace"
)

// writeBuffer models the battery-backed DRAM write cache of a
// conventional SSD (1 GB on the Huawei Gen3). Host writes complete as
// soon as they are ingested; a background flusher drains pages to
// flash. When the buffer is full, host writes stall until the flusher
// frees space — the mechanism behind the Gen3's enormous write-latency
// spread in Figure 8 (7 ms buffer hits vs 650 ms GC-throttled stalls).
//
// A page rewritten while still buffered is absorbed in place. The
// model is timing-only, so absorption during an in-flight flush is
// treated as a no-op rather than a re-dirty.
type writeBuffer struct {
	s        *SSD
	capPages int
	refs     map[int64]bool
	queue    *sim.Queue[int64]
	used     int
	space    *sim.Signal
	inflight *sim.Resource
}

func newWriteBuffer(s *SSD, capPages int) *writeBuffer {
	if capPages < 1 {
		capPages = 1
	}
	// The flusher must keep every plane's program pipeline fed, so the
	// in-flight window scales with the number of planes.
	planes := 0
	for _, ch := range s.channels {
		planes += len(ch.planes)
	}
	inflight := 2 * planes
	if inflight < 64 {
		inflight = 64
	}
	return &writeBuffer{
		s:        s,
		capPages: capPages,
		refs:     make(map[int64]bool),
		queue:    sim.NewQueue[int64](s.env),
		space:    sim.NewSignal(s.env),
		inflight: sim.NewResource(s.env, inflight),
	}
}

// contains reports whether lpn is currently buffered (read hits are
// served from DRAM).
func (b *writeBuffer) contains(lpn int64) bool { return b.refs[lpn] }

// insert adds a page, blocking while the buffer is full.
func (b *writeBuffer) insert(p *sim.Proc, lpn int64) {
	if b.refs[lpn] {
		return // absorbed in place
	}
	if b.used >= b.capPages {
		// Host write throttled by a full DRAM buffer, waiting on the
		// flusher (and transitively on GC) to free space.
		env := b.s.env
		span := env.Tracer().Begin(env.Now(), p.Span(), "buffer-full", trace.PhaseQueue)
		for b.used >= b.capPages {
			p.Await(b.space)
		}
		env.Tracer().End(env.Now(), span)
	}
	b.refs[lpn] = true
	b.used++
	b.queue.Put(lpn)
}

// flushLoop drains the buffer to flash: controller processing is
// serialized, the flash programs themselves proceed in parallel
// (bounded) across planes. Space is released only once a page is
// durably programmed.
func (b *writeBuffer) flushLoop(p *sim.Proc) {
	for {
		lpn := b.queue.Get(p)
		b.s.ctrl.Use(p, func() { p.Wait(b.s.prof.WritePageProc) })
		b.inflight.Acquire(p)
		b.s.env.Go("ssd/flush", func(wp *sim.Proc) {
			b.s.flashWrite(wp, lpn)
			delete(b.refs, lpn)
			b.used--
			b.space.Fire()
			b.space = sim.NewSignal(b.s.env)
			b.inflight.Release()
		})
	}
}

// depth returns the number of pages queued or in flight.
func (b *writeBuffer) depth() int { return b.used }
