package ssd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sdf/internal/sim"
)

// staticWLPeriod is how often the static wear leveler scans the
// device; defaultWLSpread is the erase-count imbalance that triggers a
// migration unless the profile overrides it.
const (
	staticWLPeriod  = 2 * time.Second
	defaultWLSpread = 16
)

// wlSpread returns the configured trigger threshold.
func (s *SSD) wlSpread() int {
	if s.prof.StaticWLSpread > 0 {
		return s.prof.StaticWLSpread
	}
	return defaultWLSpread
}

// staticWLLoop periodically migrates cold blocks with low erase counts
// so their wear headroom becomes available. SDF deliberately omits
// this feature: the sporadic data movement causes the performance
// variation conventional SSDs exhibit (§2.2).
func (s *SSD) staticWLLoop(p *sim.Proc) {
	for {
		p.Wait(staticWLPeriod)
		for c, ch := range s.channels {
			if s.channelDegraded(c) {
				continue // unreachable flash: nothing to level
			}
			for _, pf := range ch.planes {
				pf.maybeLevel(p)
			}
		}
	}
}

// maybeLevel migrates the coldest full block of the plane if the wear
// spread exceeds the threshold.
func (pf *planeFTL) maybeLevel(p *sim.Proc) {
	minEC, maxEC := 1<<30, 0
	coldest := -1
	for b := 0; b < pf.plane.Blocks(); b++ {
		if pf.plane.Bad(b) {
			continue
		}
		ec := pf.plane.EraseCount(b)
		if ec > maxEC {
			maxEC = ec
		}
		if ec < minEC {
			minEC = ec
		}
		if b == pf.hostOpen || b == pf.gcOpen || pf.pooled[b] {
			continue
		}
		if pf.plane.WritePtr(b) != pf.ssd.prof.Nand.PagesPerBlock {
			continue
		}
		if coldest < 0 || ec < pf.plane.EraseCount(coldest) {
			coldest = b
		}
	}
	if coldest < 0 || maxEC-minEC < pf.ssd.wlSpread() {
		return
	}
	pf.gcMu.Acquire(p)
	defer pf.gcMu.Release()
	if pf.plane.WritePtr(coldest) != pf.ssd.prof.Nand.PagesPerBlock || coldest == pf.gcOpen {
		return // state moved while we waited for the lock
	}
	pf.moveValid(p, coldest)
	pf.pushFree(coldest)
	pf.signalSpace()
	pf.ssd.wlMoves++
}

// WarmFill populates the first frac of the logical space in zero
// simulated time, as if it had been written sequentially. Experiments
// use it to start from a realistic device state (e.g. "almost full";
// Figure 8) without simulating the fill traffic.
func (s *SSD) WarmFill(frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("ssd: WarmFill fraction %v out of [0,1]", frac)
	}
	n := int64(frac * float64(s.logicalPages))
	fill := make(map[*planeFTL][]int64)
	for lpn := int64(0); lpn < n; lpn++ {
		if s.mapping[lpn] != unmapped {
			return fmt.Errorf("ssd: WarmFill on a non-empty device")
		}
		c := s.placement(lpn)
		ch := s.channels[c]
		pf := ch.planes[ch.next%len(ch.planes)]
		ch.next++
		fill[pf] = append(fill[pf], lpn)
	}
	for _, ch := range s.channels {
		for _, pf := range ch.planes {
			lpns, ok := fill[pf]
			if !ok {
				continue
			}
			if err := pf.warmFill(lpns); err != nil {
				return err
			}
		}
	}
	return nil
}

// WarmFillRandom populates frac of the logical space in zero simulated
// time with pages scattered uniformly over (nearly) all physical
// blocks — the steady-state block occupancy a long uniform-random
// write history produces. Unlike WarmFill, this leaves every block
// partially invalid and the free pool at the GC watermark, so garbage
// collection is active from the first simulated write (Figures 1
// and 8 start from this state).
func (s *SSD) WarmFillRandom(frac float64, seed int64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("ssd: WarmFillRandom fraction %v out of [0,1]", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	n := int64(frac * float64(s.logicalPages))
	fill := make(map[*planeFTL][]int64)
	for lpn := int64(0); lpn < n; lpn++ {
		if s.mapping[lpn] != unmapped {
			return fmt.Errorf("ssd: WarmFillRandom on a non-empty device")
		}
		c := s.placement(lpn)
		ch := s.channels[c]
		pf := ch.planes[ch.next%len(ch.planes)]
		ch.next++
		fill[pf] = append(fill[pf], lpn)
	}
	for _, ch := range s.channels {
		for _, pf := range ch.planes {
			if err := pf.warmFillRandom(fill[pf], rng); err != nil {
				return err
			}
		}
	}
	return nil
}

// warmFillRandom distributes lpns over all blocks except a small free
// reserve. Per-block fullness is drawn from the steady-state
// distribution of greedy garbage collection under uniform random
// writes: a block of age a retains v(a) = e^(-la) of its pages and is
// collected at fullness m, giving density proportional to 1/v on
// [m, 1], where m solves (1-m)/ln(1/m) = u (u = occupied fraction of
// usable slots). Starting from this distribution, GC exhibits its
// steady-state write amplification immediately instead of only after
// a device-sized turnover.
func (pf *planeFTL) warmFillRandom(lpns []int64, rng *rand.Rand) error {
	prof := &pf.ssd.prof
	ppb := prof.Nand.PagesPerBlock
	keep := prof.GCLowWater + 1
	use := len(pf.free) - keep
	if use < 1 {
		return fmt.Errorf("ssd: plane %d.%d has no blocks to warm-fill", pf.ch, pf.pi)
	}
	slots := use * ppb
	if len(lpns) > slots {
		return fmt.Errorf("ssd: plane %d.%d warm-fill overflow: %d pages into %d slots",
			pf.ch, pf.pi, len(lpns), slots)
	}
	if len(lpns) == 0 {
		return nil // nothing stored on this plane; leave all blocks free
	}
	blocks := make([]int, use)
	copy(blocks, pf.free[len(pf.free)-use:])
	pf.free = pf.free[:len(pf.free)-use]
	for _, b := range blocks {
		pf.pooled[b] = false
		if err := pf.plane.Preload(b, ppb); err != nil {
			return err
		}
	}
	u := float64(len(lpns)) / float64(slots)
	if u > 0.99 {
		u = 0.99
	}
	m := victimFullness(u)
	// Draw per-block fullness by inverse CDF: v = m * (1/m)^r.
	counts := make([]int, use)
	total := 0
	for i := range counts {
		v := m * math.Pow(1/m, rng.Float64())
		counts[i] = int(v * float64(ppb))
		total += counts[i]
	}
	// Adjust to the exact page count.
	for total < len(lpns) {
		i := rng.Intn(use)
		if counts[i] < ppb {
			counts[i]++
			total++
		}
	}
	for total > len(lpns) {
		i := rng.Intn(use)
		if counts[i] > 0 {
			counts[i]--
			total--
		}
	}
	next := 0
	for i, b := range blocks {
		for pg := 0; pg < counts[i]; pg++ {
			lpn := lpns[next]
			next++
			pf.rev[b][pg] = lpn
			pf.ssd.mapping[lpn] = packLoc(pf.ch, pf.pi, b, pg)
		}
		pf.valid[b] = int32(counts[i])
	}
	return nil
}

// victimFullness solves (1-m)/ln(1/m) = u for m by bisection: the
// steady-state fullness at which greedy GC collects victim blocks.
func victimFullness(u float64) float64 {
	lo, hi := 1e-9, 1-1e-9
	f := func(m float64) float64 { return (1 - m) / math.Log(1/m) }
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// warmFill lays lpns into fresh blocks sequentially, leaving the last
// (possibly partial) block open for further host writes.
func (pf *planeFTL) warmFill(lpns []int64) error {
	prof := &pf.ssd.prof
	perBlock := prof.Nand.PagesPerBlock
	for start := 0; start < len(lpns); start += perBlock {
		if len(pf.free) <= prof.GCReserve {
			return fmt.Errorf("ssd: WarmFill exhausted free blocks on channel %d plane %d", pf.ch, pf.pi)
		}
		b := pf.popFree()
		end := start + perBlock
		if end > len(lpns) {
			end = len(lpns)
		}
		count := end - start
		if err := pf.plane.Preload(b, count); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			lpn := lpns[start+i]
			pf.rev[b][i] = lpn
			pf.ssd.mapping[lpn] = packLoc(pf.ch, pf.pi, b, i)
		}
		pf.valid[b] = int32(count)
		if count < perBlock {
			pf.hostOpen = b
		}
	}
	return nil
}
