package sim

import (
	"runtime"
	"testing"
	"time"
)

// The BenchmarkKernel* set measures the scheduler primitives that
// bound experiment wall-clock (DESIGN.md "Kernel performance"): run
// with
//
//	go test ./internal/sim -bench=BenchmarkKernel -benchmem
//
// The fast paths (timed callbacks, typed process resumes, timeline
// occupancy) must stay allocation-free per event;
// TestKernelFastPathAllocs pins that down numerically.

// BenchmarkKernelScheduleFire measures the inline-callback fast path:
// a self-rescheduling timed callback, the shape of every link
// completion and timer pop after the overhaul.
func BenchmarkKernelScheduleFire(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	remaining := b.N
	var fire func()
	fire = func() {
		remaining--
		if remaining > 0 {
			env.Schedule(time.Microsecond, fire)
		}
	}
	env.Schedule(time.Microsecond, fire)
	env.Run()
}

// BenchmarkKernelParkResume measures a full process park/resume cycle
// (Proc.Wait): one typed event plus two goroutine handoffs. This is
// the remaining process path, kept for state-dependent waits.
func BenchmarkKernelParkResume(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	env.Go("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(time.Microsecond)
		}
	})
	env.Run()
}

// BenchmarkKernelTimelineOccupy measures timed occupancy under
// contention: four processes sharing a capacity-1 timeline, each op
// one park.
func BenchmarkKernelTimelineOccupy(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	tl := NewTimeline(env, 1)
	for w := 0; w < 4; w++ {
		n := b.N / 4
		if w == 0 {
			n += b.N % 4
		}
		iters := n
		env.Go("worker", func(p *Proc) {
			for i := 0; i < iters; i++ {
				tl.Occupy(p, time.Microsecond)
			}
		})
	}
	env.Run()
}

// BenchmarkKernelResourceContention measures the same contention
// pattern on the process-path primitive the timeline replaced:
// Acquire/Wait/Release on a capacity-1 Resource.
func BenchmarkKernelResourceContention(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	res := NewResource(env, 1)
	for w := 0; w < 4; w++ {
		n := b.N / 4
		if w == 0 {
			n += b.N % 4
		}
		iters := n
		env.Go("worker", func(p *Proc) {
			for i := 0; i < iters; i++ {
				res.Acquire(p)
				p.Wait(time.Microsecond)
				res.Release()
			}
		})
	}
	env.Run()
}

// BenchmarkKernelHeapChurn measures heap push/pop with a deep queue:
// 512 outstanding callbacks at staggered delays keep the 4-ary heap
// exercising multi-level sift-downs.
func BenchmarkKernelHeapChurn(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	remaining := b.N
	var fire func()
	delay := time.Duration(0)
	fire = func() {
		remaining--
		if remaining > 0 {
			// Vary the delay deterministically so pushed events land
			// throughout the queue, not always at its tail.
			delay = (delay*131 + 7) % 509
			env.Schedule(delay*time.Microsecond, fire)
		}
	}
	outstanding := 512
	if b.N < outstanding {
		outstanding = b.N
	}
	for i := 0; i < outstanding; i++ {
		env.Schedule(time.Duration(i)*time.Microsecond, fire)
	}
	env.Run()
}

// BenchmarkKernelSameInstantChurn measures the calendar queue at its
// bucket boundaries: 64 workers on a capacity-64 timeline all complete
// each round at one shared instant, so every round coalesces into a
// single batched grant, fully drains the current bucket (retiring it
// to the free list), and opens the next — the heaviest tie-churn shape
// the device models generate, at maximum pooling-path pressure.
func BenchmarkKernelSameInstantChurn(b *testing.B) {
	b.ReportAllocs()
	env := NewEnv()
	const workers = 64
	tl := NewTimeline(env, workers)
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w == 0 {
			n += b.N % workers
		}
		iters := n
		env.Go("worker", func(p *Proc) {
			for i := 0; i < iters; i++ {
				tl.Occupy(p, time.Microsecond)
			}
		})
	}
	env.Run()
}

// allocsPerEvent builds a workload on a fresh Env, runs it to
// completion, and returns heap allocations per dispatched event.
func allocsPerEvent(build func(env *Env)) float64 {
	env := NewEnv()
	build(env)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	env.Run()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(env.Events())
}

// TestKernelFastPathAllocs asserts the -benchmem property the
// benchmarks report: steady-state fast-path traffic does not allocate.
// Bounds are loose (0.05 allocs/event) to absorb one-time costs —
// heap growth, goroutine stacks — without letting a per-event closure
// (1+ allocs/event) sneak back in.
func TestKernelFastPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	const bound = 0.05
	cases := []struct {
		name  string
		build func(env *Env)
	}{
		{"timed-callback-chain", func(env *Env) {
			remaining := 200000
			var fire func()
			fire = func() {
				remaining--
				if remaining > 0 {
					env.Schedule(time.Microsecond, fire)
				}
			}
			env.Schedule(time.Microsecond, fire)
		}},
		{"proc-wait-loop", func(env *Env) {
			env.Go("worker", func(p *Proc) {
				for i := 0; i < 100000; i++ {
					p.Wait(time.Microsecond)
				}
			})
		}},
		{"timeline-occupy", func(env *Env) {
			tl := NewTimeline(env, 2)
			for w := 0; w < 3; w++ {
				env.Go("worker", func(p *Proc) {
					for i := 0; i < 50000; i++ {
						tl.Occupy(p, time.Microsecond)
					}
				})
			}
		}},
		// The two pooled structures under maximum pressure: every round
		// batches 64 wakeups into one grant (grant pool) and drains one
		// bucket per instant (bucket free list). Steady state must
		// recycle both — a leak here shows up as ~1/64 allocs/event.
		{"same-instant-grant-burst", func(env *Env) {
			tl := NewTimeline(env, 64)
			for w := 0; w < 64; w++ {
				env.Go("worker", func(p *Proc) {
					for i := 0; i < 3000; i++ {
						tl.Occupy(p, time.Microsecond)
					}
				})
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := allocsPerEvent(tc.build)
			if got > bound {
				t.Errorf("%s: %.4f allocs/event, want <= %.2f", tc.name, got, bound)
			}
		})
	}
}
