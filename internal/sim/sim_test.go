package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestWaitAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.Go("w", func(p *Proc) {
		p.Wait(5 * time.Millisecond)
		at = e.Now()
	})
	e.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestSequentialWaits(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.Go("w", func(p *Proc) {
		p.Wait(time.Millisecond)
		p.Wait(2 * time.Millisecond)
		p.Wait(3 * time.Millisecond)
		at = e.Now()
	})
	e.Run()
	if at != 6*time.Millisecond {
		t.Fatalf("woke at %v, want 6ms", at)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var order []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Wait(time.Millisecond)
					order = append(order, name)
				}
			})
		}
		e.Run()
		return order
	}
	first := run()
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 5; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic order: %v vs %v", got, first)
			}
		}
	}
}

func TestZeroDelayEventsFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Go("t", func(p *Proc) {
		for {
			p.Wait(time.Second)
			ticks++
		}
	})
	e.RunUntil(5500 * time.Millisecond)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 5500*time.Millisecond {
		t.Fatalf("Now() = %v, want 5.5s", e.Now())
	}
	e.Close()
}

func TestRunUntilThenResume(t *testing.T) {
	e := NewEnv()
	ticks := 0
	e.Go("t", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Wait(time.Second)
			ticks++
		}
	})
	e.RunUntil(3 * time.Second)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	e.Run()
	if ticks != 10 {
		t.Fatalf("ticks = %d after full run, want 10", ticks)
	}
}

func TestSignalReleasesAllWaiters(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	woke := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			p.Await(s)
			woke++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Wait(time.Millisecond)
		s.Fire()
	})
	e.Run()
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestAwaitFiredSignalReturnsImmediately(t *testing.T) {
	e := NewEnv()
	s := NewSignal(e)
	s.Fire()
	var at time.Duration
	e.Go("w", func(p *Proc) {
		p.Await(s)
		at = e.Now()
	})
	e.Run()
	if at != 0 {
		t.Fatalf("woke at %v, want 0", at)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("u", func(p *Proc) {
			r.Acquire(p)
			p.Wait(10 * time.Millisecond)
			r.Release()
			ends = append(ends, e.Now())
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 2)
	var ends []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("u", func(p *Proc) {
			r.Acquire(p)
			p.Wait(10 * time.Millisecond)
			r.Release()
			ends = append(ends, e.Now())
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("u", func(p *Proc) {
			p.Wait(time.Duration(i) * time.Microsecond) // arrival order 0..4
			r.Acquire(p)
			order = append(order, i)
			p.Wait(time.Millisecond)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on full resource")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(time.Millisecond)
			q.Put(i)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want FIFO 0..4", got)
		}
	}
}

func TestQueueBurstPutWakesAllGetters(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	served := 0
	for i := 0; i < 3; i++ {
		e.Go("c", func(p *Proc) {
			q.Get(p)
			served++
		})
	}
	e.Go("p", func(p *Proc) {
		p.Wait(time.Millisecond)
		q.Put(1)
		q.Put(2)
		q.Put(3)
	})
	e.Run()
	if served != 3 {
		t.Fatalf("served = %d, want 3", served)
	}
}

func TestJoin(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	worker := e.Go("worker", func(p *Proc) {
		p.Wait(7 * time.Millisecond)
	})
	e.Go("joiner", func(p *Proc) {
		p.Join(worker)
		at = e.Now()
	})
	e.Run()
	if at != 7*time.Millisecond {
		t.Fatalf("join returned at %v, want 7ms", at)
	}
}

func TestJoinFinishedProcess(t *testing.T) {
	e := NewEnv()
	worker := e.Go("worker", func(p *Proc) {})
	joined := false
	e.Go("joiner", func(p *Proc) {
		p.Wait(time.Millisecond)
		p.Join(worker)
		joined = true
	})
	e.Run()
	if !joined {
		t.Fatal("join on finished process did not return")
	}
}

func TestCloseUnwindsBlockedProcesses(t *testing.T) {
	e := NewEnv()
	cleaned := 0
	for i := 0; i < 3; i++ {
		e.Go("stuck", func(p *Proc) {
			defer func() { cleaned++ }()
			p.Wait(time.Hour)
		})
	}
	e.RunUntil(time.Second)
	e.Close()
	if cleaned != 3 {
		t.Fatalf("cleaned = %d, want 3", cleaned)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Go("boom", func(p *Proc) {
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Run did not propagate process panic")
		}
	}()
	e.Run()
}

func TestUseReleasesOnReturn(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, 1)
	e.Go("u", func(p *Proc) {
		r.Use(p, func() { p.Wait(time.Millisecond) })
		if r.InUse() != 0 {
			t.Errorf("InUse = %d after Use, want 0", r.InUse())
		}
	})
	e.Run()
}

func TestByteTime(t *testing.T) {
	if got := ByteTime(1000, 1000); got != time.Second {
		t.Fatalf("ByteTime(1000, 1000) = %v, want 1s", got)
	}
	if got := ByteTime(0, 1000); got != 0 {
		t.Fatalf("ByteTime(0, _) = %v, want 0", got)
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	e := NewEnv()
	l := NewLink(e, 1e6, 0) // 1 MB/s
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("x", func(p *Proc) {
			l.Transfer(p, 1e5) // 100ms each
			ends = append(ends, e.Now())
		})
	}
	e.Run()
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if l.Moved() != 3e5 {
		t.Fatalf("Moved = %d, want 3e5", l.Moved())
	}
}

func TestLinkOverhead(t *testing.T) {
	e := NewEnv()
	l := NewLink(e, 1e6, 10*time.Millisecond)
	var end time.Duration
	e.Go("x", func(p *Proc) {
		l.Transfer(p, 1e5)
		end = e.Now()
	})
	e.Run()
	if end != 110*time.Millisecond {
		t.Fatalf("end = %v, want 110ms", end)
	}
}

func TestSharedLinkFairSharing(t *testing.T) {
	e := NewEnv()
	l := NewSharedLink(e, 1e6) // 1 MB/s
	var ends [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		e.Go("x", func(p *Proc) {
			l.Transfer(p, 1e5)
			ends[i] = e.Now()
		})
	}
	e.Run()
	// Two equal transfers sharing the link finish together at 2x the
	// solo duration.
	for i, end := range ends {
		if d := end - 200*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("transfer %d ended at %v, want ~200ms", i, end)
		}
	}
}

func TestSharedLinkLateArrival(t *testing.T) {
	e := NewEnv()
	l := NewSharedLink(e, 1e6)
	var endA, endB time.Duration
	e.Go("a", func(p *Proc) {
		l.Transfer(p, 1e5) // alone for 50ms (50KB), then shared
		endA = e.Now()
	})
	e.Go("b", func(p *Proc) {
		p.Wait(50 * time.Millisecond)
		l.Transfer(p, 1e5)
		endB = e.Now()
	})
	e.Run()
	// A: 50KB alone (50ms) + 50KB shared (100ms) = done at t=150ms.
	// B: 50KB shared during those 100ms + 50KB alone (50ms) = done at t=200ms.
	if d := endA - 150*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("A ended at %v, want ~150ms", endA)
	}
	if d := endB - 200*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("B ended at %v, want ~200ms", endB)
	}
}

func TestSharedLinkSequentialTransfers(t *testing.T) {
	e := NewEnv()
	l := NewSharedLink(e, 1e6)
	var end time.Duration
	e.Go("x", func(p *Proc) {
		l.Transfer(p, 1e5)
		l.Transfer(p, 1e5)
		end = e.Now()
	})
	e.Run()
	if d := end - 200*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("end = %v, want ~200ms", end)
	}
}

func TestSharedLinkManyConcurrent(t *testing.T) {
	e := NewEnv()
	l := NewSharedLink(e, 44e6)
	done := 0
	for i := 0; i < 44; i++ {
		e.Go("x", func(p *Proc) {
			l.Transfer(p, 1e6)
			done++
		})
	}
	e.Run()
	if done != 44 {
		t.Fatalf("done = %d, want 44", done)
	}
	// 44 x 1MB at 44 MB/s aggregate: all finish together at ~1s.
	if d := e.Now() - time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("finished at %v, want ~1s", e.Now())
	}
}
