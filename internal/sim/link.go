package sim

import (
	"time"

	"sdf/internal/trace"
)

// ByteTime returns the virtual time needed to move n bytes at rate
// bytesPerSec.
func ByteTime(n int, bytesPerSec float64) time.Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// Link is a store-and-forward bandwidth resource: transfers are
// serialized FIFO and each occupies the link for overhead + bytes/rate.
// It models command/data buses where one transaction owns the wires at
// a time (a NAND channel bus, a SATA link).
type Link struct {
	env      *Env
	name     string
	tl       *Timeline
	rate     float64 // bytes per second
	factor   float64 // degradation multiplier (1 = healthy)
	overhead time.Duration
	moved    int64
}

// NewLink returns a serialized link with the given data rate in bytes
// per second and a fixed per-transfer overhead (command/address cycles,
// protocol framing).
func NewLink(env *Env, bytesPerSec float64, overhead time.Duration) *Link {
	return &Link{env: env, tl: NewTimeline(env, 1), rate: bytesPerSec, factor: 1, overhead: overhead}
}

// SetName labels the link in trace output.
func (l *Link) SetName(name string) { l.name = name }

// SetRateFactor scales the link's effective data rate by f (0 < f <= 1
// degrades, 1 restores). Fault injection uses it to model a slow bus
// or a flapping interconnect; transfers admitted after the change see
// the new rate, transfers already admitted (on the wire or queued, the
// wire-ownership model does not re-time a queued command) keep theirs.
func (l *Link) SetRateFactor(f float64) {
	if f <= 0 {
		panic("sim: link rate factor must be positive")
	}
	l.factor = f
}

// RateFactor returns the current degradation multiplier.
func (l *Link) RateFactor() float64 { return l.factor }

// holdFor returns the wire-occupancy time of an n-byte transfer at the
// current effective rate.
func (l *Link) holdFor(n int) time.Duration {
	return l.overhead + ByteTime(n, l.rate*l.factor)
}

// Transfer moves n bytes across the link, blocking for queueing plus
// transmission time.
func (l *Link) Transfer(p *Proc, n int) {
	full := l.env.tracer.Full()
	if full {
		l.env.tracer.Emit(l.env.Now(), trace.KindXferBegin, 0, 0, l.name, "", int64(n))
	}
	l.tl.Occupy(p, l.holdFor(n))
	l.moved += int64(n)
	if full {
		l.env.tracer.Emit(l.env.Now(), trace.KindXferEnd, 0, 0, l.name, "", int64(n))
	}
}

// Reserve claims the link's next FIFO slot for an n-byte transfer
// without blocking and returns the slot's wire-occupancy bounds.
// The transfer is committed: callers that care about completion wait
// with Proc.WaitUntil(end). This is the zero-park form device models
// use on their hottest paths.
func (l *Link) Reserve(n int) (start, end time.Duration) {
	l.moved += int64(n)
	return l.tl.Reserve(l.holdFor(n))
}

// Rate returns the link data rate in bytes per second.
func (l *Link) Rate() float64 { return l.rate }

// Moved returns the total bytes transferred so far.
func (l *Link) Moved() int64 { return l.moved }

// Busy reports whether a transfer is in progress or queued.
func (l *Link) Busy() bool { return l.tl.Busy() }

// SharedLink is a processor-sharing bandwidth resource: all in-flight
// transfers progress simultaneously, each receiving an equal share of
// the link rate. It models DMA engines that interleave transactions at
// fine granularity (PCIe, 10 GbE).
type SharedLink struct {
	env    *Env
	name   string
	rate   float64 // bytes per second
	factor float64 // degradation multiplier (1 = healthy)
	active []*xfer
	last   int64  // virtual time of last progress update
	gen    uint64 // invalidates stale completion events
	moved  int64
}

type xfer struct {
	remaining float64 // bytes
	done      *Signal
}

// NewSharedLink returns a fair-share link with the given aggregate data
// rate in bytes per second.
func NewSharedLink(env *Env, bytesPerSec float64) *SharedLink {
	if bytesPerSec <= 0 {
		panic("sim: shared link rate must be positive")
	}
	return &SharedLink{env: env, rate: bytesPerSec, factor: 1}
}

// SetRateFactor scales the link's effective aggregate rate by f
// (0 < f <= 1 degrades, 1 restores). In-flight transfers keep the
// progress they have made and continue at the new rate — the model of
// a NIC or PCIe lane dropping to a degraded speed mid-stream.
func (l *SharedLink) SetRateFactor(f float64) {
	if f <= 0 {
		panic("sim: shared link rate factor must be positive")
	}
	l.advance()
	l.factor = f
	l.reschedule()
}

// RateFactor returns the current degradation multiplier.
func (l *SharedLink) RateFactor() float64 { return l.factor }

// Rate returns the aggregate link rate in bytes per second.
func (l *SharedLink) Rate() float64 { return l.rate }

// Moved returns the total bytes transferred so far.
func (l *SharedLink) Moved() int64 { return l.moved }

// InFlight returns the number of concurrent transfers.
func (l *SharedLink) InFlight() int { return len(l.active) }

// SetName labels the link in trace output.
func (l *SharedLink) SetName(name string) { l.name = name }

// Transfer moves n bytes across the link, blocking until completion.
// With k concurrent transfers each progresses at rate/k.
func (l *SharedLink) Transfer(p *Proc, n int) {
	if n <= 0 {
		return
	}
	full := l.env.tracer.Full()
	if full {
		l.env.tracer.Emit(l.env.Now(), trace.KindXferBegin, 0, 0, l.name, "", int64(n))
	}
	l.advance()
	x := &xfer{remaining: float64(n), done: NewSignal(l.env)}
	l.active = append(l.active, x)
	l.reschedule()
	p.Await(x.done)
	l.moved += int64(n)
	if full {
		l.env.tracer.Emit(l.env.Now(), trace.KindXferEnd, 0, 0, l.name, "", int64(n))
	}
}

// advance applies progress for the time elapsed since the last update.
func (l *SharedLink) advance() {
	now := int64(l.env.Now())
	if now == l.last {
		return
	}
	elapsed := float64(now-l.last) / float64(time.Second)
	l.last = now
	if len(l.active) == 0 {
		return
	}
	each := elapsed * l.rate * l.factor / float64(len(l.active))
	for _, x := range l.active {
		x.remaining -= each
		if x.remaining < 0 {
			x.remaining = 0
		}
	}
}

// reschedule computes the next completion instant and schedules a
// progress event for it, invalidating any previously scheduled one.
func (l *SharedLink) reschedule() {
	l.gen++
	if len(l.active) == 0 {
		return
	}
	minRem := l.active[0].remaining
	for _, x := range l.active[1:] {
		if x.remaining < minRem {
			minRem = x.remaining
		}
	}
	share := l.rate * l.factor / float64(len(l.active))
	eta := time.Duration(minRem / share * float64(time.Second))
	// Round up one nanosecond so the completion check sees zero
	// remaining despite floating-point truncation.
	eta++
	gen := l.gen
	l.env.Schedule(eta, func() {
		if gen != l.gen {
			return
		}
		l.complete()
	})
}

// complete finishes all transfers that have drained and reschedules.
func (l *SharedLink) complete() {
	l.advance()
	kept := l.active[:0]
	for _, x := range l.active {
		// One virtual nanosecond of budget is less than one byte at any
		// realistic rate, so treat sub-byte residue as done.
		if x.remaining < 1 {
			x.done.Fire()
		} else {
			kept = append(kept, x)
		}
	}
	l.active = kept
	l.reschedule()
}
