// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// All timing in the SDF reproduction is virtual: device models advance a
// simulated clock instead of sleeping on the wall clock, so results are
// bit-reproducible for a given seed and immune to host scheduling or
// garbage-collection jitter.
//
// The kernel follows the classic process-interaction style (cf. SimPy):
// a simulation is a set of processes, each a goroutine, of which exactly
// one runs at any instant. A process blocks by waiting for virtual time
// to pass (Proc.Wait), for a Signal to fire (Proc.Await), or for a
// Resource or Queue to become available. The scheduler resumes processes
// in strict (time, sequence) order, so event ordering is deterministic.
package sim

import (
	"fmt"
	"time"

	"sdf/internal/trace"
)

// event is a scheduled occurrence in virtual time. Events with equal
// time fire in the order they were scheduled (seq breaks ties).
//
// The two hottest event shapes — resuming a parked process and
// launching a spawned one — are encoded by the proc field instead of a
// closure, so timer fires, resource grants, and process starts cost no
// heap allocation. fn is the general inline-callback form (Schedule,
// Timeline.OccupyAsync); it runs in scheduler context and must not
// block.
type event struct {
	at   int64 // virtual nanoseconds
	seq  uint64
	proc *Proc  // non-nil: resume (or start) this process
	fn   func() // proc == nil: run this callback inline
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). The wider
// fan-out halves the depth of the binary heap it replaces: sift-downs
// touch fewer cache lines per level, which dominates pop cost once the
// queue holds a few hundred events (44 channels of in-flight NAND and
// bus activity easily do).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	// Zero the vacated tail slot so a completed event's closure and
	// process pointers do not stay reachable through the heap's spare
	// capacity for the rest of the run.
	old[n] = event{}
	s := old[:n]
	*h = s
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		smallest := i
		for ; c < end; c++ {
			if s.less(c, smallest) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Env is a simulation environment: a virtual clock plus an event queue.
// An Env and everything scheduled on it must be used from a single
// logical thread of control; the kernel guarantees that by running at
// most one process at a time.
type Env struct {
	now    int64
	seq    uint64
	fired  uint64 // events dispatched so far
	heap   eventHeap
	yield  chan struct{}
	procs  []*Proc
	closed bool
	fail   *procPanic
	tracer *trace.Collector
}

type procPanic struct {
	proc  string
	value any
}

// errStopped is panicked inside a blocked process when the environment
// is closed, unwinding the process goroutine cleanly.
type stopSentinel struct{}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time as an offset from simulation start.
func (e *Env) Now() time.Duration { return time.Duration(e.now) }

// Events returns the number of events the scheduler has dispatched —
// the denominator of the events/sec throughput figure the bench
// harness records per experiment.
func (e *Env) Events() uint64 { return e.fired }

// SetTracer attaches an event collector. A nil tracer (the default)
// keeps every instrumentation site on a single-branch fast path, so
// tracing is strictly pay-for-what-you-use.
func (e *Env) SetTracer(t *trace.Collector) { e.tracer = t }

// Tracer returns the attached collector, or nil. All trace.Collector
// methods are nil-safe, so callers may emit through the returned
// value unconditionally.
func (e *Env) Tracer() *trace.Collector { return e.tracer }

// Schedule runs fn after the given virtual delay. fn executes in
// scheduler context and must not block; use Go for blocking work.
func (e *Env) Schedule(after time.Duration, fn func()) {
	if after < 0 {
		after = 0
	}
	e.scheduleAt(e.now+int64(after), event{fn: fn})
}

// scheduleAt enqueues ev to fire at absolute virtual nanosecond at,
// stamping the tie-break sequence. It is the single point every
// scheduling path funnels through, so (time, sequence) ordering is
// uniform across callbacks, process resumes, and timeline grants.
func (e *Env) scheduleAt(at int64, ev event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at, ev.seq = at, e.seq
	e.heap.push(ev)
}

// dispatch fires one popped event: the typed fast paths (process
// start/resume) avoid any closure, everything else runs fn inline.
func (e *Env) dispatch(ev event) {
	e.fired++
	if p := ev.proc; p != nil {
		if p.fn != nil {
			fn := p.fn
			p.fn = nil
			e.start(p, fn)
			return
		}
		e.resumeProc(p)
		return
	}
	ev.fn()
}

// Proc is a simulation process. Methods on Proc may only be called from
// the goroutine running that process.
type Proc struct {
	env     *Env
	name    string
	resume  chan struct{}
	fn      func(*Proc) // body, pending until the start event fires
	started bool
	done    bool
	doneSig *Signal
	span    trace.SpanID
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// SetSpan records the trace span the process is currently working
// under, so deeper layers can parent their spans to it. Spawned
// worker processes do not inherit the spawner's span; instrumented
// code propagates it explicitly.
func (p *Proc) SetSpan(s trace.SpanID) { p.span = s }

// Span returns the process's current trace span (0 if none).
func (p *Proc) Span() trace.SpanID { return p.span }

// Go spawns a new process. The process starts at the current virtual
// time (after already-scheduled events at that time). Go may be called
// before Run or from inside another process.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{}), fn: fn}
	e.procs = append(e.procs, p)
	e.scheduleAt(e.now, event{proc: p})
	return p
}

// start launches the process goroutine and hands control to it until it
// blocks or finishes. Runs in scheduler context.
func (e *Env) start(p *Proc, fn func(*Proc)) {
	if e.closed {
		p.done = true
		return
	}
	if e.tracer.Full() {
		e.tracer.Emit(e.Now(), trace.KindProcSpawn, 0, 0, p.name, "", 0)
	}
	p.started = true
	go func() {
		defer func() {
			r := recover()
			if _, stopped := r.(stopSentinel); r != nil && !stopped && e.fail == nil {
				e.fail = &procPanic{proc: p.name, value: r}
			}
			p.done = true
			if p.doneSig != nil {
				p.doneSig.Fire()
			}
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	<-e.yield
}

// park blocks the current process until another component wakes it via
// env.wake. It is the single low-level blocking primitive; all public
// blocking operations are built on it.
func (p *Proc) park() {
	if p.env.tracer.Full() {
		p.env.tracer.Emit(p.env.Now(), trace.KindProcPark, 0, 0, p.name, "", 0)
	}
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.closed {
		panic(stopSentinel{})
	}
	if p.env.tracer.Full() {
		p.env.tracer.Emit(p.env.Now(), trace.KindProcResume, 0, 0, p.name, "", 0)
	}
}

// wake schedules p to resume at the current virtual time. It must only
// be called for a process that is parked or about to park (the handoff
// is mediated by the event queue, so wake-before-park is safe as long
// as both happen before the scheduler regains control).
func (e *Env) wake(p *Proc) {
	e.scheduleAt(e.now, event{proc: p})
}

// resumeProc hands control to a parked process until it blocks again or
// finishes. Runs in scheduler context.
func (e *Env) resumeProc(p *Proc) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-e.yield
}

// Wait advances the process by d of virtual time.
func (p *Proc) Wait(d time.Duration) {
	e := p.env
	if d < 0 {
		d = 0
	}
	e.scheduleAt(e.now+int64(d), event{proc: p})
	p.park()
}

// WaitUntil blocks the process until the given virtual instant. It
// returns immediately when the instant is not in the future, so
// callers can pass completion times from reservation APIs
// (Link.Reserve, Timeline.Reserve) without checking the clock first.
func (p *Proc) WaitUntil(at time.Duration) {
	e := p.env
	if int64(at) <= e.now {
		return
	}
	e.scheduleAt(int64(at), event{proc: p})
	p.park()
}

// Done reports whether the process has finished.
func (p *Proc) Done() bool { return p.done }

// DoneSignal returns a Signal that fires when the process finishes. The
// same signal is returned on every call.
func (p *Proc) DoneSignal() *Signal {
	if p.doneSig == nil {
		p.doneSig = NewSignal(p.env)
		if p.done {
			p.doneSig.Fire()
		}
	}
	return p.doneSig
}

// Join blocks until the other process finishes.
func (p *Proc) Join(other *Proc) {
	if other.done {
		return
	}
	p.Await(other.DoneSignal())
}

// Run processes events until the queue is empty. It panics with the
// original value if any process panicked.
func (e *Env) Run() { e.run(-1) }

// RunUntil processes events up to and including virtual time limit.
// Later events remain queued; the clock is left at limit.
func (e *Env) RunUntil(limit time.Duration) { e.run(int64(limit)) }

// RunUntilDone processes events until proc finishes (or the event
// queue empties). Use it to drive a finite workload in the presence of
// perpetual background processes (garbage collectors, wear levelers)
// whose timer events would keep Run from ever returning.
func (e *Env) RunUntilDone(proc *Proc) {
	if e.closed {
		panic("sim: Run on closed Env")
	}
	for len(e.heap) > 0 && !proc.done {
		ev := e.heap.pop()
		e.now = ev.at
		e.dispatch(ev)
		if e.fail != nil {
			f := e.fail
			panic(fmt.Sprintf("sim: process %q panicked: %v", f.proc, f.value))
		}
	}
}

func (e *Env) run(limit int64) {
	if e.closed {
		panic("sim: Run on closed Env")
	}
	for len(e.heap) > 0 {
		if limit >= 0 && e.heap[0].at > limit {
			e.now = limit
			return
		}
		ev := e.heap.pop()
		e.now = ev.at
		e.dispatch(ev)
		if e.fail != nil {
			f := e.fail
			panic(fmt.Sprintf("sim: process %q panicked: %v", f.proc, f.value))
		}
	}
	if limit >= 0 && limit > e.now {
		e.now = limit
	}
}

// Close terminates all blocked processes, unwinding their goroutines.
// After Close the environment must not be used. Close is idempotent.
// It must be called from outside Run (not from a process).
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if p.started && !p.done {
			e.resumeProc(p)
		}
	}
}

// Signal is a one-shot broadcast event: processes Await it, and a later
// Fire releases all of them. Awaiting an already-fired signal returns
// immediately.
type Signal struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fire triggers the signal, releasing current and future waiters.
// Firing twice is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		s.env.wake(w)
	}
	s.waiters = nil
}

// Fired reports whether the signal has been triggered.
func (s *Signal) Fired() bool { return s.fired }

// Await blocks the process until the signal fires.
func (p *Proc) Await(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Resource is a counting semaphore with FIFO admission. It models a
// device that can serve a bounded number of operations concurrently
// (a flash plane, a controller pipeline slot, a NIC DMA engine).
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// SetName labels the resource in trace output.
func (r *Resource) SetName(name string) { r.name = name }

// Acquire obtains one unit of the resource, blocking FIFO if none free.
func (r *Resource) Acquire(p *Proc) {
	if r.env.tracer.Full() {
		r.env.tracer.Emit(r.env.Now(), trace.KindAcquire, 0, 0, r.name, "", int64(len(r.waiters)))
	}
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// TryAcquire obtains a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If a process is waiting, the unit transfers
// directly to the head of the queue.
func (r *Resource) Release() {
	if r.env.tracer.Full() {
		r.env.tracer.Emit(r.env.Now(), trace.KindRelease, 0, 0, r.name, "", int64(len(r.waiters)))
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.env.wake(w)
		return
	}
	if r.inUse == 0 {
		panic("sim: Release of idle resource")
	}
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Idle reports whether no units are held and nobody is waiting.
func (r *Resource) Idle() bool { return r.inUse == 0 && len(r.waiters) == 0 }

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// Queue is an unbounded FIFO channel between processes. Put never
// blocks; Get blocks while the queue is empty.
type Queue[T any] struct {
	env     *Env
	items   []T
	getters []*Proc
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] { return &Queue[T]{env: env} }

// Put appends an item and wakes one waiting getter, if any.
func (q *Queue[T]) Put(x T) {
	q.items = append(q.items, x)
	if len(q.getters) > 0 {
		w := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters = q.getters[:len(q.getters)-1]
		q.env.wake(w)
	}
}

// Get removes and returns the head item, blocking while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.park()
	}
	x := q.items[0]
	copy(q.items, q.items[1:])
	var zero T
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	// If items remain and other getters wait, propagate the wakeup so a
	// burst of Puts cannot strand a parked getter.
	if len(q.items) > 0 && len(q.getters) > 0 {
		w := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters = q.getters[:len(q.getters)-1]
		q.env.wake(w)
	}
	return x
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
