// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// All timing in the SDF reproduction is virtual: device models advance a
// simulated clock instead of sleeping on the wall clock, so results are
// bit-reproducible for a given seed and immune to host scheduling or
// garbage-collection jitter.
//
// The kernel follows the classic process-interaction style (cf. SimPy):
// a simulation is a set of processes, each a goroutine, of which exactly
// one runs at any instant. A process blocks by waiting for virtual time
// to pass (Proc.Wait), for a Signal to fire (Proc.Await), or for a
// Resource or Queue to become available. The scheduler resumes processes
// in strict (time, sequence) order, so event ordering is deterministic.
//
// Two structural choices make the hot loop cheap (DESIGN.md "Kernel
// round 2"):
//
//   - The pending-event set is a calendar queue: one FIFO bucket per
//     distinct virtual instant, with the buckets themselves in a small
//     min-heap. Pushes append (seq order is append order), pops read the
//     bucket head, and the heavy same-instant tie load the device models
//     generate costs O(1) per event instead of a heap sift. Bucket
//     backing arrays are recycled through a free list, so steady-state
//     scheduling allocates nothing.
//
//   - Control moves between processes by runtime coroutine switch
//     (iter.Pull): each process is a pull-iterator coroutine, and a
//     handoff is a direct stack switch — no channel, no scheduler pass,
//     no goroutine ready/park round trip. The goroutine that holds
//     control pops and dispatches events itself; when a process's own
//     resume event is next, it keeps running with no switch at all.
//     All coroutine resumes are trampolined through the driver
//     goroutine (the Run caller), so next/stop are never invoked from
//     inside a coroutine.
package sim

import (
	"fmt"
	"iter"
	"time"

	"sdf/internal/trace"
)

// event is a scheduled occurrence in virtual time. Events with equal
// time fire in the order they were scheduled (seq breaks ties).
//
// The two hottest event shapes — resuming a parked process and
// launching a spawned one — are encoded by the proc field instead of a
// closure, so timer fires, resource grants, and process starts cost no
// heap allocation. fn is the general inline-callback form (Schedule,
// Timeline.OccupyAsync); it runs in scheduler context and must not
// block. grant is a batched set of same-instant wakeups occupying
// consecutive sequence slots (see tlGrant).
type event struct {
	at    int64 // virtual nanoseconds
	seq   uint64
	proc  *Proc  // non-nil: resume (or start) this process
	fn    func() // proc == nil: run this callback inline
	grant *tlGrant
}

// bucket holds every pending event at one virtual instant. Events are
// appended in scheduling order, and the global sequence counter is
// monotonic, so a bucket's append order IS its (time, seq) dispatch
// order: within a bucket, FIFO replaces the heap's tie-break compare.
type bucket struct {
	at   int64
	head int
	evs  []event
}

// calendarQueue is the pending-event set: an index of instant-keyed
// FIFO buckets plus a 4-ary min-heap of the non-current buckets. cur
// caches the earliest bucket so the two hot paths — push at the
// current minimum instant (wakes, coalesced grants) and pop — touch
// neither the map nor the heap.
//
// Invariants: size > 0 iff cur != nil and cur has unpopped events;
// cur.at is strictly below every heap bucket's instant; every live
// bucket (cur included) is in index.
type calendarQueue struct {
	size  int
	cur   *bucket
	heap  []*bucket
	index map[int64]*bucket
	free  []*bucket
}

func (q *calendarQueue) init() { q.index = make(map[int64]*bucket) }

// minAt returns the earliest pending instant; size must be > 0.
func (q *calendarQueue) minAt() int64 { return q.cur.at }

func (q *calendarQueue) push(ev event) {
	q.size++
	c := q.cur
	if c == nil {
		b := q.newBucket(ev)
		q.cur = b
		q.index[ev.at] = b
		return
	}
	if ev.at == c.at {
		c.evs = append(c.evs, ev)
		return
	}
	if ev.at < c.at {
		// A push below the cached minimum happens when the clock sits
		// behind cur (the instant just drained fully, promoting a later
		// bucket) and dispatch work schedules at now: demote cur back
		// into the heap and open a fresh earliest bucket.
		q.heapPush(c)
		b := q.newBucket(ev)
		q.cur = b
		q.index[ev.at] = b
		return
	}
	if b := q.index[ev.at]; b != nil {
		b.evs = append(b.evs, ev)
		return
	}
	b := q.newBucket(ev)
	q.heapPush(b)
	q.index[ev.at] = b
}

func (q *calendarQueue) pop() event {
	c := q.cur
	ev := c.evs[c.head]
	// Zero the vacated slot so a completed event's closure, process,
	// and grant pointers do not stay reachable through the bucket's
	// recycled backing array.
	c.evs[c.head] = event{}
	c.head++
	q.size--
	if c.head == len(c.evs) {
		delete(q.index, c.at)
		c.evs = c.evs[:0]
		c.head = 0
		q.free = append(q.free, c)
		q.cur = q.heapPop()
	}
	return ev
}

// newBucket takes a bucket from the free list (retaining its backing
// array — the event "arena") or allocates one, seeding it with ev.
func (q *calendarQueue) newBucket(ev event) *bucket {
	var b *bucket
	if n := len(q.free); n > 0 {
		b = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		b = &bucket{evs: make([]event, 0, 8)}
	}
	b.at = ev.at
	b.evs = append(b.evs, ev)
	return b
}

// heapPush inserts b into the 4-ary min-heap of non-current buckets.
// Instants are unique across live buckets, so there are no ties.
func (q *calendarQueue) heapPush(b *bucket) {
	q.heap = append(q.heap, b)
	s := q.heap
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if s[i].at >= s[parent].at {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// heapPop removes and returns the earliest non-current bucket, or nil.
func (q *calendarQueue) heapPop() *bucket {
	n := len(q.heap)
	if n == 0 {
		return nil
	}
	top := q.heap[0]
	n--
	q.heap[0] = q.heap[n]
	q.heap[n] = nil
	s := q.heap[:n]
	q.heap = s
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		smallest := i
		for ; c < end; c++ {
			if s[c].at < s[smallest].at {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// grantEntry is one wakeup inside a batched grant: a process resume or
// an inline callback, exactly the two shapes of a plain event.
type grantEntry struct {
	proc *Proc
	fn   func()
}

// tlGrant batches wakeups that would otherwise be scheduled as
// back-to-back events at one instant — a Timeline lane completing a
// burst, a Signal releasing all its waiters — into a single queue
// entry. Absorption is only legal while the grant is the most recently
// scheduled thing on the whole environment (its seq still equals the
// global counter) and the instants match: then the batched entries
// provably occupy the consecutive sequence slots they would have had
// as individual events, and in-order delivery of the batch reproduces
// the unbatched dispatch order exactly.
type tlGrant struct {
	at      int64
	seq     uint64
	next    int
	fired   bool
	entries []grantEntry
}

// Env is a simulation environment: a virtual clock plus an event queue.
// An Env and everything scheduled on it must be used from a single
// logical thread of control; the kernel guarantees that by running at
// most one process at a time.
type Env struct {
	now   int64
	seq   uint64
	fired uint64 // events dispatched so far
	q     calendarQueue
	// xfer is the process the driver must switch into next: a parking
	// process deposits the successor here before yielding, and the
	// driver loop trampolines into it. nil means re-evaluate the stop
	// conditions and dispatch from the queue.
	xfer   *Proc
	procs  []*Proc
	closed bool
	fail   *procPanic
	tracer *trace.Collector
	// limit and stopProc are the active run bounds; activeGrant is a
	// partially delivered batched grant; lastGrant and grantPool back
	// grant absorption and recycling.
	limit       int64
	stopProc    *Proc
	activeGrant *tlGrant
	lastGrant   *tlGrant
	grantPool   []*tlGrant
}

type procPanic struct {
	proc  string
	value any
}

// stopSentinel is panicked inside a blocked process when the
// environment is closed, unwinding the process goroutine cleanly.
type stopSentinel struct{}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	e := &Env{}
	e.q.init()
	return e
}

// Now returns the current virtual time as an offset from simulation start.
func (e *Env) Now() time.Duration { return time.Duration(e.now) }

// Events returns the number of events the scheduler has dispatched —
// the denominator of the events/sec throughput figure the bench
// harness records per experiment. Batched grants count one dispatch
// per wakeup delivered, so the figure stays comparable across kernel
// generations.
func (e *Env) Events() uint64 { return e.fired }

// SetTracer attaches an event collector. A nil tracer (the default)
// keeps every instrumentation site on a single-branch fast path, so
// tracing is strictly pay-for-what-you-use.
func (e *Env) SetTracer(t *trace.Collector) { e.tracer = t }

// Tracer returns the attached collector, or nil. All trace.Collector
// methods are nil-safe, so callers may emit through the returned
// value unconditionally.
func (e *Env) Tracer() *trace.Collector { return e.tracer }

// Schedule runs fn after the given virtual delay. fn executes in
// scheduler context and must not block; use Go for blocking work.
func (e *Env) Schedule(after time.Duration, fn func()) {
	if after < 0 {
		after = 0
	}
	e.scheduleAt(e.now+int64(after), event{fn: fn})
}

// scheduleAt enqueues ev to fire at absolute virtual nanosecond at,
// stamping the tie-break sequence. Together with scheduleWake it is
// the funnel every scheduling path goes through, so (time, sequence)
// ordering is uniform across callbacks, process resumes, and grants.
func (e *Env) scheduleAt(at int64, ev event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev.at, ev.seq = at, e.seq
	e.q.push(ev)
}

// scheduleWake enqueues a wakeup — a process resume (fn nil) or an
// inline callback (proc nil) — at absolute instant at, coalescing it
// into the previous grant when nothing else has been scheduled since
// and the instant matches (see tlGrant for why that preserves order).
func (e *Env) scheduleWake(at int64, p *Proc, fn func()) {
	if at < e.now {
		at = e.now
	}
	if g := e.lastGrant; g != nil && !g.fired && g.at == at && g.seq == e.seq {
		g.entries = append(g.entries, grantEntry{proc: p, fn: fn})
		return
	}
	var g *tlGrant
	if n := len(e.grantPool); n > 0 {
		g = e.grantPool[n-1]
		e.grantPool[n-1] = nil
		e.grantPool = e.grantPool[:n-1]
		g.entries = g.entries[:0]
		g.fired = false
		g.next = 0
	} else {
		g = &tlGrant{entries: make([]grantEntry, 0, 4)}
	}
	g.entries = append(g.entries, grantEntry{proc: p, fn: fn})
	e.seq++
	g.at, g.seq = at, e.seq
	e.q.push(event{at: at, seq: e.seq, grant: g})
	e.lastGrant = g
}

// runEvents dispatches events while the caller holds control. self is
// the process currently running (nil when the driver loop dispatches).
// It returns the process control must transfer to: self (the caller's
// own resume came up — keep running, no switch), another process
// (deposit it in e.xfer and yield to the driver, which switches in),
// or nil (yield to the driver to re-evaluate its stop conditions).
func (e *Env) runEvents(self *Proc) *Proc {
	for {
		if e.fail != nil || e.closed {
			return nil
		}
		if sp := e.stopProc; sp != nil && sp.done {
			return nil
		}
		// A partially delivered grant resumes before any queue pop: its
		// entries hold the sequence slots directly after the popped
		// grant event.
		if g := e.activeGrant; g != nil {
			ent := g.entries[g.next]
			g.entries[g.next] = grantEntry{}
			g.next++
			if g.next == len(g.entries) {
				e.activeGrant = nil
				e.grantPool = append(e.grantPool, g)
			}
			if ent.fn != nil {
				ent.fn()
				continue
			}
			if p := ent.proc; p != nil && !p.done {
				return p
			}
			continue
		}
		if e.q.size == 0 {
			return nil
		}
		if e.limit >= 0 && e.q.minAt() > e.limit {
			return nil
		}
		ev := e.q.pop()
		e.now = ev.at
		if g := ev.grant; g != nil {
			e.fired += uint64(len(g.entries))
			g.fired = true
			g.next = 0
			e.activeGrant = g
			continue
		}
		e.fired++
		if p := ev.proc; p != nil {
			if p.fn != nil {
				fn := p.fn
				p.fn = nil
				e.spawn(p, fn)
				return p
			}
			if p.done {
				continue
			}
			return p
		}
		ev.fn()
	}
}

// drive is the driver loop body of Run/RunUntil/RunUntilDone: the
// coroutine trampoline. Every process yield lands here; the loop
// switches into the deposited successor (if any), otherwise
// re-evaluates the stop conditions and dispatches from the queue.
func (e *Env) drive() {
	for {
		if p := e.xfer; p != nil {
			e.xfer = nil
			p.resumeFn()
			continue
		}
		if f := e.fail; f != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", f.proc, f.value))
		}
		if sp := e.stopProc; sp != nil && sp.done {
			return
		}
		if e.activeGrant == nil {
			if e.q.size == 0 {
				return
			}
			if e.limit >= 0 && e.q.minAt() > e.limit {
				return
			}
		}
		if next := e.runEvents(nil); next != nil {
			next.resumeFn()
		}
	}
}

// Proc is a simulation process: a coroutine created with iter.Pull.
// Methods on Proc may only be called from the goroutine running that
// process. resumeFn/stopFn switch into the coroutine and are invoked
// only from the driver goroutine; yieldFn switches back out and is
// invoked only from inside the coroutine.
type Proc struct {
	env      *Env
	name     string
	fn       func(*Proc) // body, pending until the start event fires
	resumeFn func() (struct{}, bool)
	stopFn   func()
	yieldFn  func(struct{}) bool
	started  bool
	done     bool
	doneSig  *Signal
	span     trace.SpanID
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment this process runs in.
func (p *Proc) Env() *Env { return p.env }

// SetSpan records the trace span the process is currently working
// under, so deeper layers can parent their spans to it. Spawned
// worker processes do not inherit the spawner's span; instrumented
// code propagates it explicitly.
func (p *Proc) SetSpan(s trace.SpanID) { p.span = s }

// Span returns the process's current trace span (0 if none).
func (p *Proc) Span() trace.SpanID { return p.span }

// Go spawns a new process. The process starts at the current virtual
// time (after already-scheduled events at that time). Go may be called
// before Run or from inside another process.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{env: e, name: name, fn: fn}
	e.procs = append(e.procs, p)
	e.scheduleAt(e.now, event{proc: p})
	return p
}

// spawn creates the process coroutine; control then transfers to it
// like any other resume, and the body starts on that first switch.
// The dispatch chain between spawn and first resume is unbroken (the
// driver trampolines the deposited transfer before checking any stop
// condition), so a started process always enters its body.
func (e *Env) spawn(p *Proc, fn func(*Proc)) {
	if e.tracer.Full() {
		e.tracer.Emit(e.Now(), trace.KindProcSpawn, 0, 0, p.name, "", 0)
	}
	p.started = true
	p.resumeFn, p.stopFn = iter.Pull(func(yield func(struct{}) bool) {
		p.yieldFn = yield
		p.main(fn)
	})
}

// main is the body of a process coroutine: run the user function, then
// unwind through exit. When it returns, control switches back to the
// driver's pending resumeFn/stopFn call.
func (p *Proc) main(fn func(*Proc)) {
	defer p.exit()
	fn(p)
}

// exit runs as the process coroutine unwinds: it records a panic (if
// any) and completes the process. Control returns to the driver when
// the coroutine body finishes; the driver re-evaluates its stop
// conditions and continues dispatch.
func (p *Proc) exit() {
	e := p.env
	r := recover()
	_, stopped := r.(stopSentinel)
	if r != nil && !stopped && e.fail == nil {
		e.fail = &procPanic{proc: p.name, value: r}
	}
	p.done = true
	if p.doneSig != nil {
		p.doneSig.Fire()
	}
}

// park blocks the current process until another component wakes it via
// env.wake (or a scheduled resume event fires). It is the single
// low-level blocking primitive; all public blocking operations are
// built on it. The parking process keeps dispatching events until
// control must move: if its own resume is next, it never switches.
// Otherwise it deposits the successor for the driver trampoline and
// yields — one coroutine switch out, one back in on resume.
func (p *Proc) park() {
	e := p.env
	if e.tracer.Full() {
		e.tracer.Emit(e.Now(), trace.KindProcPark, 0, 0, p.name, "", 0)
	}
	if next := e.runEvents(p); next != p {
		e.xfer = next
		if !p.yieldFn(struct{}{}) || e.closed {
			// stopFn was called: Close is draining this coroutine.
			panic(stopSentinel{})
		}
	}
	if e.tracer.Full() {
		e.tracer.Emit(e.Now(), trace.KindProcResume, 0, 0, p.name, "", 0)
	}
}

// wake schedules p to resume at the current virtual time. It must only
// be called for a process that is parked or about to park (the handoff
// is mediated by the event queue, so wake-before-park is safe as long
// as both happen before the scheduler regains control). Consecutive
// wakes at one instant coalesce into a single batched grant.
func (e *Env) wake(p *Proc) {
	e.scheduleWake(e.now, p, nil)
}

// Wait advances the process by d of virtual time.
func (p *Proc) Wait(d time.Duration) {
	e := p.env
	if d < 0 {
		d = 0
	}
	e.scheduleAt(e.now+int64(d), event{proc: p})
	p.park()
}

// WaitUntil blocks the process until the given virtual instant. It
// returns immediately when the instant is not in the future, so
// callers can pass completion times from reservation APIs
// (Link.Reserve, Timeline.Reserve) without checking the clock first.
func (p *Proc) WaitUntil(at time.Duration) {
	e := p.env
	if int64(at) <= e.now {
		return
	}
	e.scheduleAt(int64(at), event{proc: p})
	p.park()
}

// Done reports whether the process has finished.
func (p *Proc) Done() bool { return p.done }

// DoneSignal returns a Signal that fires when the process finishes. The
// same signal is returned on every call.
func (p *Proc) DoneSignal() *Signal {
	if p.doneSig == nil {
		p.doneSig = NewSignal(p.env)
		if p.done {
			p.doneSig.Fire()
		}
	}
	return p.doneSig
}

// Join blocks until the other process finishes.
func (p *Proc) Join(other *Proc) {
	if other.done {
		return
	}
	p.Await(other.DoneSignal())
}

// Run processes events until the queue is empty. It panics with the
// original value if any process panicked.
func (e *Env) Run() { e.run(-1) }

// RunUntil processes events up to and including virtual time limit.
// Later events remain queued; the clock is left at limit.
func (e *Env) RunUntil(limit time.Duration) { e.run(int64(limit)) }

// RunUntilDone processes events until proc finishes (or the event
// queue empties). Use it to drive a finite workload in the presence of
// perpetual background processes (garbage collectors, wear levelers)
// whose timer events would keep Run from ever returning.
func (e *Env) RunUntilDone(proc *Proc) {
	if e.closed {
		panic("sim: Run on closed Env")
	}
	e.limit, e.stopProc = -1, proc
	e.drive()
	e.stopProc = nil
}

func (e *Env) run(limit int64) {
	if e.closed {
		panic("sim: Run on closed Env")
	}
	e.limit, e.stopProc = limit, nil
	e.drive()
	if limit >= 0 && limit > e.now {
		e.now = limit
	}
}

// Close terminates all blocked processes, unwinding their coroutines.
// After Close the environment must not be used. Close is idempotent.
// It must be called from outside Run (not from a process).
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if p.started && !p.done {
			// stopFn switches in with yield returning false; park panics
			// the stop sentinel and the coroutine unwinds through its
			// deferred exit before control returns here.
			p.stopFn()
		}
	}
}

// Signal is a one-shot broadcast event: processes Await it, and a later
// Fire releases all of them. Awaiting an already-fired signal returns
// immediately.
type Signal struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fire triggers the signal, releasing current and future waiters.
// Firing twice is a no-op. A burst of waiters coalesces into one
// batched grant.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		s.env.wake(w)
	}
	s.waiters = nil
}

// Fired reports whether the signal has been triggered.
func (s *Signal) Fired() bool { return s.fired }

// Await blocks the process until the signal fires.
func (p *Proc) Await(s *Signal) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Resource is a counting semaphore with FIFO admission. It models a
// device that can serve a bounded number of operations concurrently
// (a flash plane, a controller pipeline slot, a NIC DMA engine).
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given concurrency capacity.
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// SetName labels the resource in trace output.
func (r *Resource) SetName(name string) { r.name = name }

// Acquire obtains one unit of the resource, blocking FIFO if none free.
func (r *Resource) Acquire(p *Proc) {
	if r.env.tracer.Full() {
		r.env.tracer.Emit(r.env.Now(), trace.KindAcquire, 0, 0, r.name, "", int64(len(r.waiters)))
	}
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
}

// TryAcquire obtains a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If a process is waiting, the unit transfers
// directly to the head of the queue.
func (r *Resource) Release() {
	if r.env.tracer.Full() {
		r.env.tracer.Emit(r.env.Now(), trace.KindRelease, 0, 0, r.name, "", int64(len(r.waiters)))
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.env.wake(w)
		return
	}
	if r.inUse == 0 {
		panic("sim: Release of idle resource")
	}
	r.inUse--
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Idle reports whether no units are held and nobody is waiting.
func (r *Resource) Idle() bool { return r.inUse == 0 && len(r.waiters) == 0 }

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// Queue is an unbounded FIFO channel between processes. Put never
// blocks; Get blocks while the queue is empty.
type Queue[T any] struct {
	env     *Env
	items   []T
	getters []*Proc
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] { return &Queue[T]{env: env} }

// Put appends an item and wakes one waiting getter, if any.
func (q *Queue[T]) Put(x T) {
	q.items = append(q.items, x)
	if len(q.getters) > 0 {
		w := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters = q.getters[:len(q.getters)-1]
		q.env.wake(w)
	}
}

// Get removes and returns the head item, blocking while the queue is
// empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.getters = append(q.getters, p)
		p.park()
	}
	x := q.items[0]
	copy(q.items, q.items[1:])
	var zero T
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	// If items remain and other getters wait, propagate the wakeup so a
	// burst of Puts cannot strand a parked getter.
	if len(q.items) > 0 && len(q.getters) > 0 {
		w := q.getters[0]
		copy(q.getters, q.getters[1:])
		q.getters = q.getters[:len(q.getters)-1]
		q.env.wake(w)
	}
	return x
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
