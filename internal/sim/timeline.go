package sim

import "time"

// Timeline is the kernel's timed-occupancy fast path: a FIFO resource
// whose every hold is a pure virtual-time delay known at admission.
// Because the whole occupancy schedule is computable the moment a
// request arrives, the kernel assigns each requester its busy interval
// immediately and delivers the completion inline in the scheduler loop
// — one park for a blocking caller instead of the up-to-two of
// Acquire+Wait, zero parks and zero closures for the reservation and
// callback forms.
//
// It replaces the Resource.Acquire / Proc.Wait / Resource.Release
// pattern wherever the hold never depends on state discovered while
// holding: NAND array operations, serialized bus transfers, host-stack
// CPU charges. Semantics match a FIFO Resource of the same capacity
// whose holders sleep for their hold and release: with k lanes, a
// request admitted at time T starts at max(T, earliest lane-free
// instant) and completes at start+hold. Rate or duration changes apply
// to holds admitted after the change; already-admitted slots keep
// their interval (a Resource queue behaves the same for in-service
// holds, and no model re-times a queued command).
type Timeline struct {
	env   *Env
	lanes []int64 // virtual instant each lane next frees
}

// NewTimeline returns a timeline with the given concurrency capacity.
func NewTimeline(env *Env, capacity int) *Timeline {
	if capacity < 1 {
		panic("sim: timeline capacity must be >= 1")
	}
	return &Timeline{env: env, lanes: make([]int64, capacity)}
}

// claim assigns the next FIFO slot of length hold and returns its
// bounds. The earliest-free lane wins; ties break toward the lowest
// lane index, keeping assignment deterministic.
func (t *Timeline) claim(hold time.Duration) (start, end int64) {
	if hold < 0 {
		hold = 0
	}
	best := 0
	for i := 1; i < len(t.lanes); i++ {
		if t.lanes[i] < t.lanes[best] {
			best = i
		}
	}
	start = t.lanes[best]
	if now := t.env.now; start < now {
		start = now
	}
	end = start + int64(hold)
	t.lanes[best] = end
	return start, end
}

// Occupy blocks p for queueing plus hold — the blocking fast-path
// form. The process parks exactly once, resumed at the end of its
// slot; back-to-back completions at one instant coalesce into a single
// batched grant (see tlGrant), one scheduler operation for the burst.
func (t *Timeline) Occupy(p *Proc, hold time.Duration) {
	_, end := t.claim(hold)
	t.env.scheduleWake(end, p, nil)
	p.park()
}

// Reserve assigns the next FIFO slot without blocking and returns its
// bounds as virtual instants. Callers observe completion with
// Proc.WaitUntil(end) — or not at all, for fire-and-forget occupancy.
func (t *Timeline) Reserve(hold time.Duration) (start, end time.Duration) {
	s, e := t.claim(hold)
	return time.Duration(s), time.Duration(e)
}

// OccupyAsync assigns the next FIFO slot and runs fn inline in the
// scheduler loop when it completes. fn runs in scheduler context and
// must not call blocking Proc APIs (sdflint's inlinepark check
// enforces this outside the kernel).
func (t *Timeline) OccupyAsync(hold time.Duration, fn func()) {
	_, end := t.claim(hold)
	t.env.scheduleWake(end, nil, fn)
}

// Busy reports whether any lane is occupied at the current instant.
func (t *Timeline) Busy() bool {
	now := t.env.now
	for _, l := range t.lanes {
		if l > now {
			return true
		}
	}
	return false
}

// FreeAt returns the earliest virtual instant at which a new hold
// could start.
func (t *Timeline) FreeAt() time.Duration {
	best := t.lanes[0]
	for _, l := range t.lanes[1:] {
		if l < best {
			best = l
		}
	}
	if best < t.env.now {
		best = t.env.now
	}
	return time.Duration(best)
}
