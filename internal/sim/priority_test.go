package sim

import (
	"testing"
	"time"
)

func TestPriorityResourceOrdersByPriority(t *testing.T) {
	e := NewEnv()
	r := NewPriorityResource(e, 1)
	var order []string
	hold := func(name string, prio int, arrive time.Duration) {
		e.Go(name, func(p *Proc) {
			p.Wait(arrive)
			r.Acquire(p, prio)
			order = append(order, name)
			p.Wait(10 * time.Millisecond)
			r.Release()
		})
	}
	hold("first", 1, 0)                  // holds the resource
	hold("low-a", 1, time.Millisecond)   // queues at prio 1
	hold("low-b", 1, 2*time.Millisecond) // queues at prio 1
	hold("high", 0, 3*time.Millisecond)  // arrives last, overtakes
	e.Run()
	want := []string{"first", "high", "low-a", "low-b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityResourceFIFOWithinClass(t *testing.T) {
	e := NewEnv()
	r := NewPriorityResource(e, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Wait(time.Duration(i) * time.Microsecond)
			r.Acquire(p, 0)
			order = append(order, i)
			p.Wait(time.Millisecond)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestPriorityResourceNonPreemptive(t *testing.T) {
	e := NewEnv()
	r := NewPriorityResource(e, 1)
	var lowDone, highDone time.Duration
	e.Go("low", func(p *Proc) {
		r.Acquire(p, 1)
		p.Wait(100 * time.Millisecond)
		r.Release()
		lowDone = e.Now()
	})
	e.Go("high", func(p *Proc) {
		p.Wait(time.Millisecond)
		r.Acquire(p, 0)
		p.Wait(time.Millisecond)
		r.Release()
		highDone = e.Now()
	})
	e.Run()
	// The low-priority holder finishes its service; high runs after.
	if lowDone != 100*time.Millisecond {
		t.Fatalf("low done at %v", lowDone)
	}
	if highDone != 101*time.Millisecond {
		t.Fatalf("high done at %v, want 101ms", highDone)
	}
}

func TestPriorityResourceCapacity(t *testing.T) {
	e := NewEnv()
	r := NewPriorityResource(e, 2)
	done := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			r.Acquire(p, 0)
			p.Wait(10 * time.Millisecond)
			r.Release()
			done++
		})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("elapsed = %v, want 20ms", e.Now())
	}
}

func TestPriorityResourceIdleAndWaiting(t *testing.T) {
	e := NewEnv()
	r := NewPriorityResource(e, 1)
	if !r.Idle() {
		t.Fatal("fresh resource not idle")
	}
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 0)
		p.Wait(10 * time.Millisecond)
		if r.Waiting() != 1 {
			t.Errorf("Waiting = %d, want 1", r.Waiting())
		}
		r.Release()
	})
	e.Go("waiter", func(p *Proc) {
		p.Wait(time.Millisecond)
		r.Acquire(p, 0)
		r.Release()
	})
	e.Run()
	if !r.Idle() {
		t.Fatal("resource not idle after drain")
	}
}
