package sim

import "sdf/internal/trace"

// PriorityResource is a counting semaphore whose waiters are admitted
// lowest-priority-value first (FIFO within a priority class). It is
// non-preemptive: holders run to completion. The SDF block layer uses
// it to let on-demand reads overtake queued writes and erases — the
// request-scheduling direction the paper leaves as future work (§2.4,
// §5).
type PriorityResource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	seq     uint64
	waiters []prioWaiter
}

type prioWaiter struct {
	proc *Proc
	prio int
	seq  uint64
}

// NewPriorityResource returns a resource with the given capacity.
func NewPriorityResource(env *Env, capacity int) *PriorityResource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &PriorityResource{env: env, cap: capacity}
}

// SetName labels the resource in trace output.
func (r *PriorityResource) SetName(name string) { r.name = name }

// Acquire obtains one unit at the given priority (lower value is
// served first), blocking while the resource is saturated.
func (r *PriorityResource) Acquire(p *Proc, prio int) {
	if r.env.tracer.Full() {
		r.env.tracer.Emit(r.env.Now(), trace.KindAcquire, 0, 0, r.name, "", int64(len(r.waiters)))
	}
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.seq++
	w := prioWaiter{proc: p, prio: prio, seq: r.seq}
	// Insert keeping (prio, seq) order.
	i := len(r.waiters)
	for i > 0 {
		prev := r.waiters[i-1]
		if prev.prio < w.prio || (prev.prio == w.prio && prev.seq < w.seq) {
			break
		}
		i--
	}
	r.waiters = append(r.waiters, prioWaiter{})
	copy(r.waiters[i+1:], r.waiters[i:])
	r.waiters[i] = w
	p.park()
}

// Release returns one unit, handing it to the best-priority waiter.
func (r *PriorityResource) Release() {
	if r.env.tracer.Full() {
		r.env.tracer.Emit(r.env.Now(), trace.KindRelease, 0, 0, r.name, "", int64(len(r.waiters)))
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.env.wake(w.proc)
		return
	}
	if r.inUse == 0 {
		panic("sim: Release of idle resource")
	}
	r.inUse--
}

// InUse returns the number of units held.
func (r *PriorityResource) InUse() int { return r.inUse }

// Idle reports whether nothing is held or queued.
func (r *PriorityResource) Idle() bool { return r.inUse == 0 && len(r.waiters) == 0 }

// Waiting returns the queue length.
func (r *PriorityResource) Waiting() int { return len(r.waiters) }
