// Package reliability implements the flash data-reliability model the
// paper names as its final future-work item (§5): "we believe that it
// would be both possible and useful to incorporate, and expose, a
// data reliability model for flash memory in our infrastructure."
//
// The model follows the stack's actual protection mechanism: each
// 512-byte sector is guarded by a t-error-correcting BCH code, and raw
// bit errors arrive independently at a wear-dependent rate (the same
// curve internal/nand injects). A sector read is uncorrectable when
// more than t of its bits flip, so
//
//	P(sector UCE) = P(Binomial(n, ber) > t)
//
// with n the codeword length in bits. The package exposes this
// per-sector probability, aggregates it to device and fleet scale,
// and inverts it to answer operational questions: what raw BER (and
// hence what wear) a fleet can tolerate before uncorrectable errors
// become routine, and whether the paper's field anecdote — one
// uncorrectable error across 2000+ cards in six months (§2.2) — is
// consistent with healthy flash.
package reliability

import (
	"fmt"
	"math"
)

// Model describes the protection applied to every sector.
type Model struct {
	// SectorBytes is the BCH payload (512 B on the SDF card).
	SectorBytes int
	// ParityBits is the redundancy per sector (m*t = 104 for the
	// t=8, m=13 code).
	ParityBits int
	// T is the correctable bit errors per sector.
	T int
	// BaseBER and WearBER define the raw bit error rate as a function
	// of wear: ber = BaseBER + WearBER*(wear/EraseLimit)^2, matching
	// internal/nand's injection model.
	BaseBER    float64
	WearBER    float64
	EraseLimit int
}

// SDFModel returns the production card's protection: BCH t=8 over
// 512 B sectors on 25 nm MLC with 3000 P/E endurance. WearBER is
// calibrated so a 2000-card fleet at mid-life wear reading ~1 TB per
// device-day expects an uncorrectable error count of order one over
// six months — the paper's field observation (§2.2). The implied
// end-of-life raw BER (~1.4e-4) sits inside the published range for
// worn 25 nm MLC.
func SDFModel() Model {
	return Model{
		SectorBytes: 512,
		ParityBits:  104,
		T:           8,
		BaseBER:     1e-8,
		WearBER:     1.4e-4,
		EraseLimit:  3000,
	}
}

// codewordBits is the protected length: payload plus parity.
func (m Model) codewordBits() int { return m.SectorBytes*8 + m.ParityBits }

// BER returns the raw bit error rate at the given wear (P/E cycles).
func (m Model) BER(wear int) float64 {
	ber := m.BaseBER
	if m.WearBER > 0 && m.EraseLimit > 0 {
		frac := float64(wear) / float64(m.EraseLimit)
		ber += m.WearBER * frac * frac
	}
	return ber
}

// SectorUCE returns the probability that one sector read is
// uncorrectable at the given wear: P(Binomial(n, ber) > t), computed
// through the complementary CDF in log space for numerical range.
func (m Model) SectorUCE(wear int) float64 {
	ber := m.BER(wear)
	if ber <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	n := m.codewordBits()
	// Sum P(k) for k = t+1 .. n. Terms decay geometrically (ber is
	// tiny), so a few hundred terms are overkill; stop when the term
	// underflows relative to the accumulated sum.
	logBer := math.Log(ber)
	logQ := math.Log1p(-ber)
	sum := 0.0
	for k := m.T + 1; k <= n; k++ {
		logTerm := logChoose(n, k) + float64(k)*logBer + float64(n-k)*logQ
		term := math.Exp(logTerm)
		sum += term
		if term < sum*1e-16 {
			break
		}
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// logChoose returns log(n choose k) via log-gamma.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// DeviceUCEPerRead returns the probability that a page-sized read
// (pageBytes of payload) hits at least one uncorrectable sector.
func (m Model) DeviceUCEPerRead(wear, pageBytes int) float64 {
	sectors := pageBytes / m.SectorBytes
	if sectors < 1 {
		sectors = 1
	}
	p := m.SectorUCE(wear)
	return 1 - math.Pow(1-p, float64(sectors))
}

// FleetUCEs returns the expected number of uncorrectable events for a
// fleet reading readBytesPerDay per device across devices for days,
// with every block at the given wear.
func (m Model) FleetUCEs(wear int, readBytesPerDay float64, devices, days int) float64 {
	sectorsPerDay := readBytesPerDay / float64(m.SectorBytes)
	return m.SectorUCE(wear) * sectorsPerDay * float64(devices) * float64(days)
}

// MaxWearFor returns the highest wear at which the expected fleet
// UCE count stays at or below budget, by bisection over wear.
func (m Model) MaxWearFor(budget, readBytesPerDay float64, devices, days int) int {
	if m.EraseLimit <= 0 {
		return 0
	}
	lo, hi := 0, 4*m.EraseLimit
	if m.FleetUCEs(lo, readBytesPerDay, devices, days) > budget {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.FleetUCEs(mid, readBytesPerDay, devices, days) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// String summarizes the model.
func (m Model) String() string {
	return fmt.Sprintf("BCH t=%d over %d B sectors, BER %.1e..%.1e across 0..%d P/E",
		m.T, m.SectorBytes, m.BER(0), m.BER(m.EraseLimit), m.EraseLimit)
}
