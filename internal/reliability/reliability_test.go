package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBERGrowsWithWear(t *testing.T) {
	m := SDFModel()
	prev := -1.0
	for wear := 0; wear <= m.EraseLimit; wear += 500 {
		ber := m.BER(wear)
		if ber <= prev {
			t.Fatalf("BER not increasing at wear %d", wear)
		}
		prev = ber
	}
	if got := m.BER(0); got != m.BaseBER {
		t.Fatalf("BER(0) = %g, want BaseBER", got)
	}
}

func TestSectorUCEMonotoneInWear(t *testing.T) {
	m := SDFModel()
	prev := -1.0
	for wear := 0; wear <= 2*m.EraseLimit; wear += 250 {
		p := m.SectorUCE(wear)
		if p < prev {
			t.Fatalf("UCE probability decreased at wear %d", wear)
		}
		if p < 0 || p > 1 {
			t.Fatalf("UCE probability %g out of range", p)
		}
		prev = p
	}
}

func TestSectorUCEEdgeCases(t *testing.T) {
	m := SDFModel()
	m.BaseBER = 0
	m.WearBER = 0
	if p := m.SectorUCE(0); p != 0 {
		t.Fatalf("zero BER gives UCE %g", p)
	}
	m.BaseBER = 1
	if p := m.SectorUCE(0); p != 1 {
		t.Fatalf("BER=1 gives UCE %g", p)
	}
}

// TestSectorUCEMatchesMonteCarlo cross-checks the analytic binomial
// tail against direct simulation at a BER high enough to sample.
func TestSectorUCEMatchesMonteCarlo(t *testing.T) {
	m := SDFModel()
	m.BaseBER = 2e-3 // ~8.5 expected errors/codeword: near the t=8 cliff
	analytic := m.SectorUCE(0)
	rng := rand.New(rand.NewSource(1))
	n := m.codewordBits()
	const trials = 20000
	fails := 0
	for i := 0; i < trials; i++ {
		errs := 0
		// Binomial sampling via Poisson approximation is inaccurate
		// here; sample the binomial directly but cheaply using the
		// normal-region shortcut is unsafe too, so count Bernoulli
		// successes in blocks of geometric skips.
		for pos := nextErr(rng, m.BaseBER); pos < n; pos += nextErr(rng, m.BaseBER) {
			errs++
		}
		if errs > m.T {
			fails++
		}
	}
	got := float64(fails) / trials
	if analytic <= 0 {
		t.Fatalf("analytic = %g", analytic)
	}
	ratio := got / analytic
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("Monte Carlo %.4g vs analytic %.4g (ratio %.2f)", got, analytic, ratio)
	}
}

// nextErr samples the geometric gap to the next bit error.
func nextErr(rng *rand.Rand, p float64) int {
	u := rng.Float64()
	return 1 + int(math.Log(1-u)/math.Log1p(-p))
}

func TestFieldAnecdoteConsistency(t *testing.T) {
	// §2.2: 2000+ cards over six months produced exactly one
	// uncorrectable error. At moderate wear, the model's expectation
	// for that fleet must be of order one — neither ~zero nor huge.
	m := SDFModel()
	// Each 704 GB card reading ~1 TB/day (half its peak for ~2 hours).
	perDay := 1e12
	expected := m.FleetUCEs(1200, perDay, 2000, 180)
	if expected < 1e-3 || expected > 1e3 {
		t.Fatalf("fleet expectation %.3g at wear 1200; model inconsistent with the field anecdote", expected)
	}
}

func TestDeviceUCEPerReadScalesWithSectors(t *testing.T) {
	m := SDFModel()
	m.BaseBER = 1e-4
	one := m.DeviceUCEPerRead(0, 512)
	page := m.DeviceUCEPerRead(0, 8192) // 16 sectors
	if page <= one {
		t.Fatalf("page UCE %g not above sector UCE %g", page, one)
	}
	// For small p, 16 sectors ~ 16x the probability.
	if ratio := page / one; ratio < 14 || ratio > 16.1 {
		t.Fatalf("sector scaling ratio %.2f, want ~16", ratio)
	}
}

func TestMaxWearForInvertsFleetUCEs(t *testing.T) {
	m := SDFModel()
	budget := 1.0
	perDay := 1e12
	wear := m.MaxWearFor(budget, perDay, 2000, 180)
	if wear <= 0 {
		t.Fatal("MaxWearFor returned 0 for a sane budget")
	}
	at := m.FleetUCEs(wear, perDay, 2000, 180)
	above := m.FleetUCEs(wear+1, perDay, 2000, 180)
	if at > budget {
		t.Fatalf("expectation %.3g at returned wear exceeds budget", at)
	}
	if above <= budget {
		t.Fatalf("wear+1 still within budget (%.3g); not maximal", above)
	}
}

func TestMaxWearForProperty(t *testing.T) {
	m := SDFModel()
	f := func(budgetSeed uint8) bool {
		budget := 0.1 + float64(budgetSeed)
		wear := m.MaxWearFor(budget, 1e12, 1000, 365)
		return m.FleetUCEs(wear, 1e12, 1000, 365) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLogChoose(t *testing.T) {
	// log C(10, 3) = log 120.
	if got := math.Exp(logChoose(10, 3)); math.Abs(got-120) > 1e-9*120 {
		t.Fatalf("C(10,3) = %g", got)
	}
	if got := math.Exp(logChoose(5, 0)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("C(5,0) = %g", got)
	}
}
