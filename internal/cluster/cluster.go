// Package cluster implements the system-level data replication that
// lets SDF drop cross-channel parity (§2.2): "in our large-scale
// Internet service infrastructure, data reliability is provided by
// data replication across multiple racks ... SDF excludes the
// parity-based data protection and relies on BCH ECC and
// software-managed data replication."
//
// A replica Group spans several storage nodes (each a CCDB slice on
// its own device). Writes go to every replica; reads are served by
// the primary, and when a node reports an uncorrectable BCH error —
// the rare event the paper saw once across 2000+ cards in six months
// — the group transparently recovers the value from another replica
// and repairs the failed node.
package cluster

import (
	"errors"
	"fmt"

	"sdf/internal/ccdb"
	"sdf/internal/sim"
)

// ErrAllReplicasFailed is returned when no replica can serve a read.
var ErrAllReplicasFailed = errors.New("cluster: all replicas failed")

// Node is one storage server holding a replica: a CCDB slice plus the
// NIC that replication traffic crosses.
type Node struct {
	Name  string
	Slice *ccdb.Slice
	nic   *sim.SharedLink
}

// NewNode wraps a slice as a replica node with a 10 GbE NIC.
func NewNode(env *sim.Env, name string, slice *ccdb.Slice) *Node {
	return &Node{Name: name, Slice: slice, nic: sim.NewSharedLink(env, 1.25e9)}
}

// Config tunes a replica group.
type Config struct {
	// RepairOnRead rewrites a value to a replica that failed to serve
	// it (read-repair). Disable to observe bare failover.
	RepairOnRead bool
}

// DefaultConfig enables read-repair.
func DefaultConfig() Config { return Config{RepairOnRead: true} }

// Group is a replicated keyspace across nodes; nodes[0] is the
// preferred (primary) read target.
type Group struct {
	env   *sim.Env
	cfg   Config
	nodes []*Node

	puts      int64
	gets      int64
	failovers int64
	repairs   int64
	lost      int64
}

// NewGroup builds a group over the given nodes.
func NewGroup(env *sim.Env, cfg Config, nodes ...*Node) (*Group, error) {
	if len(nodes) < 1 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	return &Group{env: env, cfg: cfg, nodes: nodes}, nil
}

// Replicas returns the replication factor.
func (g *Group) Replicas() int { return len(g.nodes) }

// Stats returns (puts, gets, failovers, repairs, lost reads).
func (g *Group) Stats() (puts, gets, failovers, repairs, lost int64) {
	return g.puts, g.gets, g.failovers, g.repairs, g.lost
}

// Put stores the value on every replica in parallel and returns when
// all acknowledge — write availability follows the slowest node, as
// in a synchronously replicated store. The value crosses each node's
// NIC before the slice write.
func (g *Group) Put(p *sim.Proc, key string, value []byte, size int) error {
	errs := make([]error, len(g.nodes))
	var workers []*sim.Proc
	for i, node := range g.nodes {
		i, node := i, node
		w := g.env.Go("cluster/put", func(wp *sim.Proc) {
			node.nic.Transfer(wp, size)
			errs[i] = node.Slice.Put(wp, key, value, size)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		p.Join(w)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	g.puts++
	return nil
}

// Get reads from the primary and fails over to the other replicas on
// any read error (uncorrectable ECC, worn-out blocks). With
// RepairOnRead, a recovered value is written back to the nodes that
// failed to serve it.
func (g *Group) Get(p *sim.Proc, key string) ([]byte, int, error) {
	g.gets++
	var failed []*Node
	for i, node := range g.nodes {
		value, size, err := node.Slice.Get(p, key)
		if err == nil {
			if i > 0 {
				g.failovers++
			}
			node.nic.Transfer(p, size)
			if len(failed) > 0 && g.cfg.RepairOnRead {
				g.repair(p, failed, key, value, size)
			}
			return value, size, nil
		}
		if errors.Is(err, ccdb.ErrNotFound) {
			// A key absent at the primary is absent everywhere
			// (replication is synchronous); report it directly.
			return nil, 0, err
		}
		// Device-level failure (most prominently an uncorrectable
		// BCH sector, flashchan.ErrUncorrectable): try the next
		// replica and remember this node for read-repair.
		failed = append(failed, node)
	}
	g.lost++
	return nil, 0, fmt.Errorf("%w: %q", ErrAllReplicasFailed, key)
}

// repair rewrites a recovered value to the replicas that failed.
func (g *Group) repair(p *sim.Proc, failed []*Node, key string, value []byte, size int) {
	for _, node := range failed {
		node := node
		g.env.Go("cluster/repair", func(wp *sim.Proc) {
			node.nic.Transfer(wp, size)
			if err := node.Slice.Put(wp, key, value, size); err == nil {
				g.repairs++
			}
		})
	}
}
